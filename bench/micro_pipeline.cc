/**
 * @file
 * Micro-benchmarks (google-benchmark) for whole-pipeline simulation
 * throughput: how fast the simulator itself runs, per configuration —
 * the number a user planning a large sweep cares about.
 */

#include <benchmark/benchmark.h>

#include "core/gpu.hh"
#include "workloads/scenegen.hh"

namespace {

using namespace dtexl;

GpuConfig
smallCfg()
{
    GpuConfig cfg;
    cfg.screenWidth = 320;
    cfg.screenHeight = 160;
    return cfg;
}

void
BM_RenderFrameBaseline(benchmark::State &state)
{
    GpuConfig cfg = smallCfg();
    const Scene scene = generateScene(benchmarkByAlias("SoD"), cfg);
    GpuSimulator gpu(cfg, scene);
    std::uint64_t quads = 0;
    for (auto _ : state) {
        const FrameStats fs = gpu.renderFrame();
        quads = fs.quadsRasterized;
        benchmark::DoNotOptimize(fs.totalCycles);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations() * quads));
    state.SetLabel("items = rasterized quads");
}
BENCHMARK(BM_RenderFrameBaseline)->Unit(benchmark::kMillisecond);

void
BM_RenderFrameDTexL(benchmark::State &state)
{
    GpuConfig cfg = makeDTexLConfig();
    cfg.screenWidth = 320;
    cfg.screenHeight = 160;
    const Scene scene = generateScene(benchmarkByAlias("SoD"), cfg);
    GpuSimulator gpu(cfg, scene);
    for (auto _ : state) {
        benchmark::DoNotOptimize(gpu.renderFrame().totalCycles);
    }
}
BENCHMARK(BM_RenderFrameDTexL)->Unit(benchmark::kMillisecond);

void
BM_SceneGeneration(benchmark::State &state)
{
    const GpuConfig cfg = smallCfg();
    const BenchmarkParams &p = benchmarkByAlias("RoK");
    std::uint32_t frame = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            generateScene(p, cfg, frame++).draws.size());
    }
}
BENCHMARK(BM_SceneGeneration)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();

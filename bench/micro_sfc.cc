/**
 * @file
 * Micro-benchmarks (google-benchmark) for the space-filling-curve
 * primitives: Morton coding, Hilbert conversion and whole-grid
 * traversal construction.
 */

#include <benchmark/benchmark.h>

#include "sfc/hilbert.hh"
#include "sfc/morton.hh"
#include "sfc/tile_order.hh"

namespace {

void
BM_MortonEncode(benchmark::State &state)
{
    std::uint32_t x = 12345, y = 67890;
    for (auto _ : state) {
        benchmark::DoNotOptimize(dtexl::mortonEncode(x, y));
        ++x;
        ++y;
    }
}
BENCHMARK(BM_MortonEncode);

void
BM_MortonRoundTrip(benchmark::State &state)
{
    std::uint64_t code = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(dtexl::mortonDecodeX(code));
        benchmark::DoNotOptimize(dtexl::mortonDecodeY(code));
        ++code;
    }
}
BENCHMARK(BM_MortonRoundTrip);

void
BM_HilbertD2XY(benchmark::State &state)
{
    const auto side = static_cast<std::uint32_t>(state.range(0));
    std::uint64_t d = 0;
    const std::uint64_t n = std::uint64_t{side} * side;
    for (auto _ : state) {
        std::uint32_t x, y;
        dtexl::hilbertD2XY(side, d, x, y);
        benchmark::DoNotOptimize(x + y);
        d = (d + 1) % n;
    }
}
BENCHMARK(BM_HilbertD2XY)->Arg(8)->Arg(64)->Arg(1024);

void
BM_MakeTileOrder(benchmark::State &state)
{
    const auto order = static_cast<dtexl::TileOrder>(state.range(0));
    for (auto _ : state) {
        // Table II grid: 62x24 tiles.
        benchmark::DoNotOptimize(dtexl::makeTileOrder(order, 62, 24));
    }
}
BENCHMARK(BM_MakeTileOrder)
    ->Arg(static_cast<int>(dtexl::TileOrder::Scanline))
    ->Arg(static_cast<int>(dtexl::TileOrder::ZOrder))
    ->Arg(static_cast<int>(dtexl::TileOrder::RectHilbert));

} // namespace

BENCHMARK_MAIN();

/**
 * @file
 * Micro-benchmarks (google-benchmark) for the SIMD lane kernels: each
 * vectorized hot path runs against its scalar twin so the speedup the
 * lane layer buys is measured directly (scripts/run_perf.py gates on
 * the geometric mean of the lanes/scalar pairs). The pairs compute
 * bit-identical results — tests/test_simd.cc enforces that; this file
 * only times them.
 */

#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "common/serial.hh"
#include "raster/quad_stream.hh"
#include "raster/rasterizer.hh"
#include "sfc/tile_order.hh"
#include "texture/sampler.hh"
#include "texture/texture.hh"

namespace {

using namespace dtexl;

// ---------------------------------------------------------------------
// Rasterizer: edge coverage + attribute interpolation
// ---------------------------------------------------------------------

Primitive
tileTriangle()
{
    Primitive p;
    p.v[0].screen = {1.0f, 1.0f};
    p.v[1].screen = {31.0f, 2.0f};
    p.v[2].screen = {4.0f, 30.0f};
    p.v[0].uv = {0.0f, 0.0f};
    p.v[1].uv = {0.1f, 0.0f};
    p.v[2].uv = {0.0f, 0.1f};
    p.v[0].depth = 0.2f;
    p.v[1].depth = 0.4f;
    p.v[2].depth = 0.9f;
    return p;
}

void
BM_Rasterize(benchmark::State &state, SimdMode mode)
{
    GpuConfig cfg;
    cfg.simdMode = mode;
    Rasterizer rast(cfg);
    const Primitive prim = tileTriangle();
    std::vector<Quad> quads;
    for (auto _ : state) {
        quads.clear();
        benchmark::DoNotOptimize(rast.rasterize(prim, {0, 0}, quads));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(
        state.iterations() * quads.size()));
}
BENCHMARK_CAPTURE(BM_Rasterize, scalar, SimdMode::Scalar);
BENCHMARK_CAPTURE(BM_Rasterize, lanes, SimdMode::Auto);

// ---------------------------------------------------------------------
// Batched LOD (QuadStream::lod4 vs lod)
// ---------------------------------------------------------------------

QuadStream
lodStream(const Primitive *prim)
{
    QuadStream qs;
    std::uint64_t rng = 0x243f6a8885a308d3ull;
    auto uniform = [&rng]() {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        return static_cast<float>(rng >> 40) /
               static_cast<float>(1u << 24);
    };
    // 128 primitives x 32 quads. Affine texture mapping makes uv
    // derivatives constant across a primitive, so a real batch is runs
    // of quads with identical rho; sizing d so rho lands in [0.5, 2.0]
    // at side 256 mixes magnified runs (lod == 0) and minified runs
    // (scalar log2 tail) like mipmapped content does. Uniform-random
    // per-quad derivatives would instead take the log2 tail almost
    // every group, which is scalar in both implementations.
    for (int p = 0; p < 128; ++p) {
        const float d = (0.5f + 1.5f * uniform()) / 256.0f;
        for (int i = 0; i < 32; ++i) {
            const Vec2f base{uniform(), uniform()};
            std::array<Fragment, 4> frags;
            for (int k = 0; k < 4; ++k)
                frags[k].uv =
                    Vec2f{base.x + d * static_cast<float>(k % 2),
                          base.y + d * static_cast<float>(k / 2)};
            qs.push(prim, Coord2{0, 0}, 0xF, frags);
        }
    }
    return qs;
}

void
BM_LodBatch(benchmark::State &state, SimdMode mode)
{
    const Primitive prim = tileTriangle();
    const QuadStream qs = lodStream(&prim);
    const auto n = static_cast<std::uint32_t>(qs.size());
    for (auto _ : state) {
        float acc = 0.0f;
        if (mode == SimdMode::Auto) {
            std::uint32_t idx[4];
            const std::uint32_t side[4] = {256, 256, 256, 256};
            float out[4];
            for (std::uint32_t i = 0; i + 4 <= n; i += 4) {
                for (int j = 0; j < 4; ++j)
                    idx[j] = i + static_cast<std::uint32_t>(j);
                qs.lod4(idx, side, out);
                acc += out[0] + out[1] + out[2] + out[3];
            }
        } else {
            for (std::uint32_t i = 0; i < n; ++i)
                acc += qs.lod(i, 256);
        }
        benchmark::DoNotOptimize(acc);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations() * n));
}
BENCHMARK_CAPTURE(BM_LodBatch, scalar, SimdMode::Scalar);
BENCHMARK_CAPTURE(BM_LodBatch, lanes, SimdMode::Auto);

// ---------------------------------------------------------------------
// Texel footprints (quadSampleFootprints vs 4x sampleFootprint)
// ---------------------------------------------------------------------

void
BM_Footprints(benchmark::State &state, SimdMode mode, FilterMode filter)
{
    const TextureDesc tex(0, 0, 256);
    std::vector<Vec2f> uv(4 * 1024);
    std::uint64_t rng = 0x13198a2e03707344ull;
    for (auto &p : uv) {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        p = Vec2f{static_cast<float>(rng >> 40) /
                      static_cast<float>(1u << 24),
                  static_cast<float>((rng << 8) >> 40) /
                      static_cast<float>(1u << 24)};
    }
    SampleFootprint fp[4];
    for (auto _ : state) {
        std::uint64_t acc = 0;
        for (std::size_t q = 0; q < uv.size(); q += 4) {
            if (mode == SimdMode::Auto) {
                quadSampleFootprints(tex, filter, &uv[q], 0.4f, fp);
                for (int k = 0; k < 4; ++k)
                    acc += fp[k].texels[0];
            } else {
                for (int k = 0; k < 4; ++k) {
                    fp[k] = sampleFootprint(tex, filter, uv[q + k].x,
                                            uv[q + k].y, 0.4f);
                    acc += fp[k].texels[0];
                }
            }
            for (auto &f : fp)
                f.count = 0;
        }
        benchmark::DoNotOptimize(acc);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(
        state.iterations() * uv.size()));
}
BENCHMARK_CAPTURE(BM_Footprints, bilinear_scalar, SimdMode::Scalar,
                  FilterMode::Bilinear);
BENCHMARK_CAPTURE(BM_Footprints, bilinear_lanes, SimdMode::Auto,
                  FilterMode::Bilinear);
BENCHMARK_CAPTURE(BM_Footprints, trilinear_scalar, SimdMode::Scalar,
                  FilterMode::Trilinear);
BENCHMARK_CAPTURE(BM_Footprints, trilinear_lanes, SimdMode::Auto,
                  FilterMode::Trilinear);

// ---------------------------------------------------------------------
// Tile traversals (Morton decode / Hilbert table, 4 cells per lane op)
// ---------------------------------------------------------------------

void
BM_TileOrder(benchmark::State &state, TileOrder order, SimdMode mode)
{
    // The full-screen grid of the paper's Table II machine (62x24).
    for (auto _ : state) {
        benchmark::DoNotOptimize(makeTileOrder(order, 62, 24, mode));
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations() * 62 * 24));
}
BENCHMARK_CAPTURE(BM_TileOrder, zorder_scalar, TileOrder::ZOrder,
                  SimdMode::Scalar);
BENCHMARK_CAPTURE(BM_TileOrder, zorder_lanes, TileOrder::ZOrder,
                  SimdMode::Auto);
BENCHMARK_CAPTURE(BM_TileOrder, hilbert_scalar, TileOrder::RectHilbert,
                  SimdMode::Scalar);
BENCHMARK_CAPTURE(BM_TileOrder, hilbert_lanes, TileOrder::RectHilbert,
                  SimdMode::Auto);

// ---------------------------------------------------------------------
// Artifact checksum: striped FNV (parallel chains) vs the serial digest
// ---------------------------------------------------------------------

std::vector<std::uint8_t>
checksumBuffer()
{
    std::vector<std::uint8_t> buf(1 << 20);
    std::uint64_t rng = 0xa4093822299f31d0ull;
    for (auto &b : buf) {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        b = static_cast<std::uint8_t>(rng);
    }
    return buf;
}

/** The old serial checksum the striped digest replaced (baseline). */
void
BM_ChecksumSerial(benchmark::State &state)
{
    const std::vector<std::uint8_t> buf = checksumBuffer();
    for (auto _ : state)
        benchmark::DoNotOptimize(fnv1a64(buf));
    state.SetBytesProcessed(static_cast<std::int64_t>(
        state.iterations() * buf.size()));
}
BENCHMARK(BM_ChecksumSerial);

/**
 * The striped 4-chain digest that replaced it. The chains break the
 * serial digest's multiply-latency dependency; they run as unrolled
 * scalar code on purpose — a U64x4 lane loop measured slower on every
 * backend, AVX2 included (the FNV recurrence is latency-bound and the
 * emulated 64-bit lane multiply has ~3x the chain latency of four
 * pipelined imuls).
 */
void
BM_ChecksumStriped(benchmark::State &state)
{
    const std::vector<std::uint8_t> buf = checksumBuffer();
    for (auto _ : state)
        benchmark::DoNotOptimize(fnv1a64Striped(buf));
    state.SetBytesProcessed(static_cast<std::int64_t>(
        state.iterations() * buf.size()));
}
BENCHMARK(BM_ChecksumStriped);

} // namespace

BENCHMARK_MAIN();

/**
 * @file
 * Figure 13: speedup of CG-square and CG-yrect over FG-xshift2 on the
 * NON-decoupled pipeline. The paper's point: despite ~47% fewer L2
 * accesses, the coupled barriers turn the load imbalance into idle
 * time and the speedup evaporates (~1.0x, some benchmarks below 1).
 */

#include <cstdio>

#include "harness.hh"

using namespace dtexl;
using namespace dtexl::bench;

int
benchMain(int argc, char **argv)
{
    const BenchOptions opt = BenchOptions::parse(argc, argv);

    printHeader("Figure 13: speedup w.r.t. FG-xshift2 (non-decoupled; "
                "paper: ~1.0x)",
                {"CG-square", "CG-yrect"});
    std::vector<double> sq, yr;
    for (const BenchmarkParams &b : opt.benchmarks()) {
        const RunOutput base = runOne(b, opt.baseline());

        GpuConfig cfg_sq = opt.baseline();
        cfg_sq.grouping = QuadGrouping::CGSquare;
        GpuConfig cfg_yr = opt.baseline();
        cfg_yr.grouping = QuadGrouping::CGYRect;

        const double s_sq =
            static_cast<double>(base.fs.totalCycles) /
            static_cast<double>(runOne(b, cfg_sq).fs.totalCycles);
        const double s_yr =
            static_cast<double>(base.fs.totalCycles) /
            static_cast<double>(runOne(b, cfg_yr).fs.totalCycles);
        sq.push_back(s_sq);
        yr.push_back(s_yr);
        printRow(b.alias, {s_sq, s_yr});
    }
    printRow("geomean", {geoMeanRatio(sq), geoMeanRatio(yr)});
    return 0;
}

int
main(int argc, char **argv)
{
    return dtexl::runGuardedMain([&] { return benchMain(argc, argv); });
}

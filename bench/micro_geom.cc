/**
 * @file
 * Micro-benchmarks (google-benchmark) for the intra-job parallelism
 * work, in serial/parallel and AoS/SoA pairs:
 *
 *  - BM_GeometryFrontEnd/N: one full geometry/tiling front-end pass
 *    (vertex transforms, assembly, overlap binning, Parameter Buffer
 *    writes) over a generated benchmark scene with N host threads
 *    (N = 1 is the serial path, N > 1 the fan-out + serial replay).
 *    The outputs are bit-identical; only host time differs.
 *  - BM_QuadTraversalAoS / BM_QuadTraversalSoA: the raster hot path's
 *    per-quad walk (coverage, depth, LOD reads) over the same quads in
 *    array-of-structs Quad form vs the QuadStream structure-of-arrays
 *    layout the pipeline now uses.
 *
 * The perf CI job runs this binary and uploads its JSON next to
 * BENCH_perf.json.
 */

#include <benchmark/benchmark.h>

#include <vector>

#include "core/geometry_phase.hh"
#include "raster/quad_stream.hh"
#include "raster/rasterizer.hh"
#include "workloads/scenegen.hh"

namespace {

using namespace dtexl;

const Scene &
benchScene(const GpuConfig &cfg)
{
    static const Scene scene =
        generateScene(benchmarkByAlias("GTr"), cfg, 0);
    return scene;
}

GpuConfig
benchCfg()
{
    GpuConfig cfg = makeDTexLConfig();
    cfg.screenWidth = 512;
    cfg.screenHeight = 256;
    return cfg;
}

void
BM_GeometryFrontEnd(benchmark::State &state)
{
    GpuConfig cfg = benchCfg();
    cfg.geomThreads = static_cast<std::uint32_t>(state.range(0));
    const Scene &scene = benchScene(cfg);
    MemHierarchy mem(cfg);
    ParamBuffer pb(cfg.numTiles());
    GeometryPhase geom(cfg, mem, pb);
    std::uint64_t prims = 0;
    for (auto _ : state) {
        // Caches stay warm across iterations, like frames of a session;
        // run() itself clears and refills the Parameter Buffer.
        const GeometryPhase::Result r = geom.run(scene);
        prims = r.primitives;
        benchmark::DoNotOptimize(r.cycles);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(
        state.iterations() * prims));
}
BENCHMARK(BM_GeometryFrontEnd)->Arg(1)->Arg(2)->Arg(4);

/** Quads of one busy tile, in both layouts, for the traversal pair. */
struct TileQuads
{
    std::vector<Quad> aos;
    QuadStream soa;
};

const TileQuads &
tileQuads()
{
    static const TileQuads tq = [] {
        const GpuConfig cfg = benchCfg();
        Rasterizer rast(cfg);
        Primitive prim;
        prim.v[0].screen = {1.0f, 1.0f};
        prim.v[1].screen = {31.0f, 2.0f};
        prim.v[2].screen = {4.0f, 30.0f};
        prim.v[0].uv = {0.0f, 0.0f};
        prim.v[1].uv = {0.1f, 0.0f};
        prim.v[2].uv = {0.0f, 0.1f};
        prim.v[0].depth = 0.25f;
        prim.v[1].depth = 0.5f;
        prim.v[2].depth = 0.75f;
        TileQuads out;
        // Several overlapping rasterizations approximate a busy
        // tile's worth of quads in submission order.
        for (int i = 0; i < 8; ++i)
            rast.rasterize(prim, {0, 0}, out.aos);
        for (const Quad &q : out.aos)
            out.soa.push(q);
        return out;
    }();
    return tq;
}

void
BM_QuadTraversalAoS(benchmark::State &state)
{
    const std::vector<Quad> &quads = tileQuads().aos;
    for (auto _ : state) {
        float acc = 0.0f;
        std::uint32_t covered = 0;
        for (const Quad &q : quads) {
            for (int k = 0; k < 4; ++k) {
                if (!q.covered(k))
                    continue;
                ++covered;
                acc += q.frags[k].depth;
            }
            acc += q.lod(256);
        }
        benchmark::DoNotOptimize(acc);
        benchmark::DoNotOptimize(covered);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(
        state.iterations() * quads.size()));
}
BENCHMARK(BM_QuadTraversalAoS);

void
BM_QuadTraversalSoA(benchmark::State &state)
{
    const QuadStream &qs = tileQuads().soa;
    for (auto _ : state) {
        float acc = 0.0f;
        std::uint32_t covered = 0;
        const auto n = static_cast<std::uint32_t>(qs.size());
        for (std::uint32_t i = 0; i < n; ++i) {
            for (int k = 0; k < 4; ++k) {
                if (!qs.covered(i, k))
                    continue;
                ++covered;
                acc += qs.depth(i, k);
            }
            acc += qs.lod(i, 256);
        }
        benchmark::DoNotOptimize(acc);
        benchmark::DoNotOptimize(covered);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(
        state.iterations() * qs.size()));
}
BENCHMARK(BM_QuadTraversalSoA);

} // namespace

BENCHMARK_MAIN();

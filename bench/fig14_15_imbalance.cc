/**
 * @file
 * Figures 14 and 15: violin summaries of per-tile imbalance across
 * the four SCs, FG-xshift2 vs CG-square (non-decoupled pipeline).
 *
 *  - Figure 14: mean deviation in SC execution time per tile (% of the
 *    mean). Paper: FG averages ~5%; CG is far higher, up to 150% on
 *    TRu.
 *  - Figure 15: mean deviation in quads per SC per tile.
 */

#include <cstdio>

#include "harness.hh"

using namespace dtexl;
using namespace dtexl::bench;

namespace {

void
printViolin(const char *alias, const char *cfg, const Distribution &d)
{
    if (d.count() == 0) {
        std::printf("%-8s %-10s (no samples)\n", alias, cfg);
        return;
    }
    std::printf("%-8s %-10s min=%6.1f%% p25=%6.1f%% mean=%6.1f%% "
                "p75=%6.1f%% max=%6.1f%%\n",
                alias, cfg, d.min() * 100, d.quantile(0.25) * 100,
                d.mean() * 100, d.quantile(0.75) * 100, d.max() * 100);
}

} // namespace

int
benchMain(int argc, char **argv)
{
    const BenchOptions opt = BenchOptions::parse(argc, argv);

    std::printf("== Figure 14: SC execution-time imbalance per tile "
                "(FG vs CG, paper: FG ~5%% mean, CG up to 150%%) ==\n");
    std::vector<std::pair<Distribution, Distribution>> quad_devs;
    std::vector<std::string> aliases;
    for (const BenchmarkParams &b : opt.benchmarks()) {
        GpuConfig fg = opt.baseline();
        GpuConfig cg = opt.baseline();
        cg.grouping = QuadGrouping::CGSquare;
        const RunOutput a = runOne(b, fg);
        const RunOutput c = runOne(b, cg);
        printViolin(b.alias.c_str(), "FG-xshift2",
                    a.fs.tileTimeDeviation);
        printViolin(b.alias.c_str(), "CG-square",
                    c.fs.tileTimeDeviation);
        quad_devs.emplace_back(a.fs.tileQuadDeviation,
                               c.fs.tileQuadDeviation);
        aliases.push_back(b.alias);
    }

    std::printf("\n== Figure 15: quad-distribution imbalance per tile "
                "==\n");
    for (std::size_t i = 0; i < quad_devs.size(); ++i) {
        printViolin(aliases[i].c_str(), "FG-xshift2",
                    quad_devs[i].first);
        printViolin(aliases[i].c_str(), "CG-square",
                    quad_devs[i].second);
    }
    return 0;
}

int
main(int argc, char **argv)
{
    return dtexl::runGuardedMain([&] { return benchMain(argc, argv); });
}

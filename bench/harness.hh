/**
 * @file
 * Shared experiment harness for the figure/table reproduction
 * binaries: option parsing (--full, --scale, --benchmarks), scene
 * caching, config construction for the paper's named configurations,
 * and table formatting.
 */

#ifndef DTEXL_BENCH_HARNESS_HH
#define DTEXL_BENCH_HARNESS_HH

#include <map>
#include <string>
#include <vector>

#include "core/dtexl.hh"
#include "power/energy_model.hh"
#include "workloads/scenegen.hh"

namespace dtexl {
namespace bench {

/** Command-line options common to every experiment binary. */
struct BenchOptions
{
    /** Screen size; default is a half-scale screen for fast runs,
     *  --full selects the paper's Table II 1960x768. */
    std::uint32_t width = 640;
    std::uint32_t height = 288;
    /** Benchmarks to run; default: the whole Table I suite. */
    std::vector<std::string> aliases;
    /** When set (--csv=FILE), tables are also appended as CSV. */
    std::string csvPath;

    /** Parse argv; exits with a message on --help or bad input. */
    static BenchOptions parse(int argc, char **argv);

    /** GpuConfig preset resized to the selected screen. */
    GpuConfig baseline() const;
    GpuConfig dtexl() const;
    GpuConfig upperBound() const;

    const std::vector<BenchmarkParams> &benchmarks() const;

  private:
    mutable std::vector<BenchmarkParams> selected;
};

/** One simulated run. */
struct RunOutput
{
    FrameStats fs;
    EnergyBreakdown energy;
};

/**
 * Render one frame of a benchmark under a configuration. Scenes are
 * cached per (alias, screen), so successive configs over the same
 * benchmark reuse the generated scene.
 */
RunOutput runOne(const BenchmarkParams &params, const GpuConfig &cfg);

/** Geometric mean of speedups / ratios. */
double geoMeanRatio(const std::vector<double> &ratios);

/** Print a header row followed by a separator. */
void printHeader(const std::string &title,
                 const std::vector<std::string> &columns);

/** Print one row: label + formatted numeric cells. */
void printRow(const std::string &label,
              const std::vector<double> &cells, int precision = 3);

/** Route printHeader/printRow copies to a CSV file ("" disables). */
void setCsvOutput(const std::string &path);

} // namespace bench
} // namespace dtexl

#endif // DTEXL_BENCH_HARNESS_HH

/**
 * @file
 * Shared experiment harness for the figure/table reproduction
 * binaries: option parsing (--full, --scale, --benchmarks, --jobs,
 * --trace), a thread-safe scene cache, config construction for the
 * paper's named configurations, the parallel grid runner the figure
 * binaries fan their (benchmark x config) matrices over, and table
 * formatting.
 */

#ifndef DTEXL_BENCH_HARNESS_HH
#define DTEXL_BENCH_HARNESS_HH

#include <map>
#include <string>
#include <vector>

#include "core/dtexl.hh"
#include "power/energy_model.hh"
#include "telemetry/cli_options.hh"
#include "workloads/scenegen.hh"

namespace dtexl {
namespace bench {

/** Command-line options common to every experiment binary. */
struct BenchOptions
{
    /** Screen size; default is a half-scale screen for fast runs,
     *  --full selects the paper's Table II 1960x768. */
    std::uint32_t width = 640;
    std::uint32_t height = 288;
    /** Benchmarks to run; default: the whole Table I suite. */
    std::vector<std::string> aliases;
    /** When set (--csv=FILE), tables are also appended as CSV. */
    std::string csvPath;
    /** Worker threads for the batch driver (--jobs=N). */
    unsigned jobs = 1;
    /** When set (--trace=FILE), write a Chrome-trace JSON on exit. */
    std::string tracePath;
    /**
     * Simulator hot-path selector (see GpuConfig::simFastPath);
     * --reference-path clears it to run the original implementations
     * for A/B equivalence checks — results are bit-identical.
     */
    bool fastPath = true;
    /**
     * The shared flags as parsed (--geom-threads in particular);
     * baseline()/dtexl()/upperBound() resolve them into each config,
     * including the jobs x geom-threads oversubscription clamp.
     */
    CommonCliOptions common;

    /**
     * Parse argv; exits 0 after printing --help, throws
     * SimError{UserInput} on an unknown option or malformed value
     * (the guarded main maps it to kExitUserError).
     */
    static BenchOptions parse(int argc, char **argv);

    /** GpuConfig preset resized to the selected screen. */
    GpuConfig baseline() const;
    GpuConfig dtexl() const;
    GpuConfig upperBound() const;

    const std::vector<BenchmarkParams> &benchmarks() const;

  private:
    mutable std::vector<BenchmarkParams> selected;
};

/** One simulated run. */
struct RunOutput
{
    FrameStats fs;
    EnergyBreakdown energy;
};

/**
 * Render one frame of a benchmark under a configuration. Scenes are
 * cached per (alias, screen), so successive configs over the same
 * benchmark reuse the generated scene. Thread-safe.
 */
RunOutput runOne(const BenchmarkParams &params, const GpuConfig &cfg);

/**
 * The scene the harness would simulate for (params, cfg): served from
 * the shared mutex-guarded cache, generated on first touch. The
 * returned reference is stable for the process lifetime. Thread-safe.
 */
const Scene &sceneFor(const BenchmarkParams &params,
                      const GpuConfig &cfg);

/** One cell of an experiment grid for runGrid(). */
struct GridJob
{
    BenchmarkParams bench;
    GpuConfig cfg;
    /** Trace/stat label; defaults to the benchmark alias. */
    std::string label;
};

/**
 * Run every grid job, fanned over opt.jobs worker threads via the
 * engine's runBatch() (each worker owns its own GpuSimulator; the
 * scene cache is shared). Results are returned in job order and are
 * bit-identical for any --jobs value.
 *
 * A figure binary cannot use a grid with holes, so any failed job
 * aborts the run: failures are summarized on stderr, the exporters
 * flushed, and the first failure rethrown as SimError for the guarded
 * main (distinct exit code per failure kind).
 */
std::vector<RunOutput> runGrid(const std::vector<GridJob> &jobs,
                               const BenchOptions &opt);

/** Geometric mean of speedups / ratios. */
double geoMeanRatio(const std::vector<double> &ratios);

/** Print a header row followed by a separator. */
void printHeader(const std::string &title,
                 const std::vector<std::string> &columns);

/** Print one row: label + formatted numeric cells. */
void printRow(const std::string &label,
              const std::vector<double> &cells, int precision = 3);

/** Route printHeader/printRow copies to a CSV file ("" disables). */
void setCsvOutput(const std::string &path);

} // namespace bench
} // namespace dtexl

#endif // DTEXL_BENCH_HARNESS_HH

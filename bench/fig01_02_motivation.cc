/**
 * @file
 * Figures 1 and 2 (motivation): a load-balancing scheduler
 * (FG-xshift2) versus a texture-locality scheduler (CG-square), both
 * on the non-decoupled baseline pipeline.
 *
 *  - Figure 1: normalized mean deviation of threads (quads) per SC per
 *    tile, averaged over tiles — locality scheduling is far worse.
 *  - Figure 2: L2 accesses of the locality scheduler normalized to the
 *    load-balancing one — locality scheduling roughly halves them.
 */

#include <cstdio>

#include "harness.hh"

using namespace dtexl;
using namespace dtexl::bench;

int
benchMain(int argc, char **argv)
{
    const BenchOptions opt = BenchOptions::parse(argc, argv);

    GpuConfig lb = opt.baseline();               // FG-xshift2
    GpuConfig tl = opt.baseline();
    tl.grouping = QuadGrouping::CGSquare;        // texture locality

    printHeader("Figure 1: mean deviation of threads per SC "
                "(normalized to Load Balancing)",
                {"LoadBal", "TexLocal", "ratio"});
    std::vector<double> dev_ratios, l2_ratios;
    std::vector<std::vector<double>> l2_rows;
    for (const BenchmarkParams &b : opt.benchmarks()) {
        const RunOutput a = runOne(b, lb);
        const RunOutput c = runOne(b, tl);
        const double da = a.fs.tileQuadDeviation.mean();
        const double dc = c.fs.tileQuadDeviation.mean();
        const double ratio = da > 0 ? dc / da : 0.0;
        dev_ratios.push_back(ratio);
        printRow(b.alias, {da, dc, ratio});
        l2_ratios.push_back(static_cast<double>(c.fs.l2Accesses) /
                            static_cast<double>(a.fs.l2Accesses));
        l2_rows.push_back({static_cast<double>(a.fs.l2Accesses),
                           static_cast<double>(c.fs.l2Accesses),
                           l2_ratios.back()});
    }
    printRow("geomean", {0.0, 0.0, geoMeanRatio(dev_ratios)});

    printHeader("Figure 2: L2 accesses of TexLocal normalized to "
                "LoadBal (paper: ~0.5)",
                {"LB_L2", "TL_L2", "norm"});
    std::size_t i = 0;
    for (const BenchmarkParams &b : opt.benchmarks())
        printRow(b.alias, l2_rows[i++], 3);
    printRow("geomean", {0.0, 0.0, geoMeanRatio(l2_ratios)});
    std::printf("\npaper reference: locality scheduler ~0.53x L2 "
                "accesses, but several-fold worse thread balance\n");
    return 0;
}

int
main(int argc, char **argv)
{
    return dtexl::runGuardedMain([&] { return benchMain(argc, argv); });
}

/**
 * @file
 * Figure 18: percent decrease in total GPU energy w.r.t. the
 * non-decoupled FG-xshift2 baseline for DTexL (HLB-flp2, decoupled)
 * and for FG-xshift2 + decoupled barriers.
 *
 * Paper: DTexL -6.3% average (-8.8% CCS, -10.6% GTr); FG+decoupled
 * -3%.
 *
 * The (benchmark x config) grid is fanned over the batch driver; pass
 * --jobs=N to use N worker threads (results are identical for any N).
 */

#include <cstdio>

#include "harness.hh"

using namespace dtexl;
using namespace dtexl::bench;

int
benchMain(int argc, char **argv)
{
    const BenchOptions opt = BenchOptions::parse(argc, argv);

    GpuConfig fg_dec = opt.baseline();
    fg_dec.decoupledBarriers = true;

    std::vector<GridJob> jobs;
    for (const BenchmarkParams &b : opt.benchmarks()) {
        jobs.push_back({b, opt.baseline(), b.alias + "/base"});
        jobs.push_back({b, opt.dtexl(), b.alias + "/dtexl"});
        jobs.push_back({b, fg_dec, b.alias + "/fg+dec"});
    }
    const std::vector<RunOutput> runs = runGrid(jobs, opt);

    printHeader("Figure 18: %decrease in total GPU energy vs baseline",
                {"DTexL%", "FG+dec%"});
    std::vector<double> dt, fgd;
    std::size_t i = 0;
    for (const BenchmarkParams &b : opt.benchmarks()) {
        const RunOutput &base = runs[i++];
        const RunOutput &d = runs[i++];
        const RunOutput &f = runs[i++];

        const double e_base = base.energy.total();
        const double dec_d = 100.0 * (1.0 - d.energy.total() / e_base);
        const double dec_f = 100.0 * (1.0 - f.energy.total() / e_base);
        dt.push_back(dec_d);
        fgd.push_back(dec_f);
        printRow(b.alias, {dec_d, dec_f}, 1);
    }
    printRow("average", {mean(dt), mean(fgd)}, 1);
    std::printf("\npaper reference: DTexL -6.3%% avg, FG+decoupled "
                "-3%%\n");
    return 0;
}

int
main(int argc, char **argv)
{
    return dtexl::runGuardedMain([&] { return benchMain(argc, argv); });
}

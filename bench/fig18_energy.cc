/**
 * @file
 * Figure 18: percent decrease in total GPU energy w.r.t. the
 * non-decoupled FG-xshift2 baseline for DTexL (HLB-flp2, decoupled)
 * and for FG-xshift2 + decoupled barriers.
 *
 * Paper: DTexL -6.3% average (-8.8% CCS, -10.6% GTr); FG+decoupled
 * -3%.
 */

#include <cstdio>

#include "harness.hh"

using namespace dtexl;
using namespace dtexl::bench;

int
main(int argc, char **argv)
{
    const BenchOptions opt = BenchOptions::parse(argc, argv);

    printHeader("Figure 18: %decrease in total GPU energy vs baseline",
                {"DTexL%", "FG+dec%"});
    std::vector<double> dt, fgd;
    for (const BenchmarkParams &b : opt.benchmarks()) {
        const RunOutput base = runOne(b, opt.baseline());
        const RunOutput d = runOne(b, opt.dtexl());
        GpuConfig fg_dec = opt.baseline();
        fg_dec.decoupledBarriers = true;
        const RunOutput f = runOne(b, fg_dec);

        const double e_base = base.energy.total();
        const double dec_d = 100.0 * (1.0 - d.energy.total() / e_base);
        const double dec_f = 100.0 * (1.0 - f.energy.total() / e_base);
        dt.push_back(dec_d);
        fgd.push_back(dec_f);
        printRow(b.alias, {dec_d, dec_f}, 1);
    }
    printRow("average", {mean(dt), mean(fgd)}, 1);
    std::printf("\npaper reference: DTexL -6.3%% avg, FG+decoupled "
                "-3%%\n");
    return 0;
}

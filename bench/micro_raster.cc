/**
 * @file
 * Micro-benchmarks (google-benchmark) for the raster substrate:
 * triangle rasterization throughput and scheduler mapping cost.
 */

#include <benchmark/benchmark.h>

#include "raster/rasterizer.hh"
#include "sched/subtile_assigner.hh"
#include "sched/subtile_layout.hh"
#include "sfc/tile_order.hh"

namespace {

using namespace dtexl;

Primitive
tileTriangle()
{
    Primitive p;
    p.v[0].screen = {1.0f, 1.0f};
    p.v[1].screen = {31.0f, 2.0f};
    p.v[2].screen = {4.0f, 30.0f};
    p.v[0].uv = {0.0f, 0.0f};
    p.v[1].uv = {0.1f, 0.0f};
    p.v[2].uv = {0.0f, 0.1f};
    return p;
}

void
BM_RasterizeTileTriangle(benchmark::State &state)
{
    GpuConfig cfg;
    Rasterizer rast(cfg);
    const Primitive prim = tileTriangle();
    std::vector<Quad> quads;
    for (auto _ : state) {
        quads.clear();
        benchmark::DoNotOptimize(rast.rasterize(prim, {0, 0}, quads));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(
        state.iterations() * quads.size()));
}
BENCHMARK(BM_RasterizeTileTriangle);

void
BM_SubtileLayoutBuild(benchmark::State &state)
{
    const auto g = static_cast<QuadGrouping>(state.range(0));
    for (auto _ : state) {
        SubtileLayout layout(g, 16);
        benchmark::DoNotOptimize(layout.quadsPerSubtile());
    }
}
BENCHMARK(BM_SubtileLayoutBuild)
    ->Arg(static_cast<int>(QuadGrouping::FGXShift2))
    ->Arg(static_cast<int>(QuadGrouping::CGSquare))
    ->Arg(static_cast<int>(QuadGrouping::CGTriangle));

void
BM_AssignerTraversal(benchmark::State &state)
{
    SubtileLayout layout(QuadGrouping::CGSquare, 16);
    const auto trav = makeTileOrder(TileOrder::RectHilbert, 62, 24);
    for (auto _ : state) {
        SubtileAssigner assigner(SubtileAssignment::Flip2, layout);
        std::uint32_t acc = 0;
        for (TileId t : trav)
            acc += assigner.next(tileCoord(t, 62))[0];
        benchmark::DoNotOptimize(acc);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(
        state.iterations() * trav.size()));
}
BENCHMARK(BM_AssignerTraversal);

} // namespace

BENCHMARK_MAIN();

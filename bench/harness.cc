#include "harness.hh"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>

namespace dtexl {
namespace bench {

namespace {
/** Optional CSV sink for printHeader/printRow. */
FILE *csv_file = nullptr;
} // namespace

void
setCsvOutput(const std::string &path)
{
    if (csv_file) {
        std::fclose(csv_file);
        csv_file = nullptr;
    }
    if (!path.empty()) {
        csv_file = std::fopen(path.c_str(), "a");
        if (!csv_file)
            fatal("cannot open CSV file '%s'", path.c_str());
    }
}

BenchOptions
BenchOptions::parse(int argc, char **argv)
{
    BenchOptions opt;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--full") {
            opt.width = 1960;
            opt.height = 768;
        } else if (arg.rfind("--scale=", 0) == 0) {
            const double s = std::atof(arg.c_str() + 8);
            if (s <= 0.0 || s > 1.0)
                fatal("--scale must be in (0, 1]");
            opt.width = static_cast<std::uint32_t>(1960 * s) & ~31u;
            opt.height = static_cast<std::uint32_t>(768 * s) & ~31u;
            if (opt.width == 0 || opt.height == 0)
                fatal("--scale too small");
        } else if (arg.rfind("--csv=", 0) == 0) {
            opt.csvPath = arg.substr(6);
            setCsvOutput(opt.csvPath);
        } else if (arg.rfind("--benchmarks=", 0) == 0) {
            std::string list = arg.substr(13);
            std::size_t pos = 0;
            while (pos != std::string::npos) {
                const std::size_t comma = list.find(',', pos);
                opt.aliases.push_back(list.substr(
                    pos, comma == std::string::npos ? comma
                                                    : comma - pos));
                pos = comma == std::string::npos ? comma : comma + 1;
            }
        } else if (arg == "--help" || arg == "-h") {
            std::printf(
                "options:\n"
                "  --full              Table II screen (1960x768)\n"
                "  --scale=F           fraction of the full screen\n"
                "  --benchmarks=A,B,.. subset of Table I aliases\n"
                "  --csv=FILE          append tables as CSV\n");
            std::exit(0);
        } else {
            fatal("unknown option '%s'", arg.c_str());
        }
    }
    return opt;
}

const std::vector<BenchmarkParams> &
BenchOptions::benchmarks() const
{
    if (!selected.empty())
        return selected;
    if (aliases.empty()) {
        selected = tableOneBenchmarks();
    } else {
        for (const std::string &a : aliases)
            selected.push_back(benchmarkByAlias(a));
    }
    return selected;
}

GpuConfig
BenchOptions::baseline() const
{
    GpuConfig cfg = makeBaselineConfig();
    cfg.screenWidth = width;
    cfg.screenHeight = height;
    return cfg;
}

GpuConfig
BenchOptions::dtexl() const
{
    GpuConfig cfg = makeDTexLConfig();
    cfg.screenWidth = width;
    cfg.screenHeight = height;
    return cfg;
}

GpuConfig
BenchOptions::upperBound() const
{
    GpuConfig cfg = makeUpperBoundConfig();
    cfg.screenWidth = width;
    cfg.screenHeight = height;
    return cfg;
}

RunOutput
runOne(const BenchmarkParams &params, const GpuConfig &cfg)
{
    // Scene cache: key on alias + screen; configs share the scene.
    static std::map<std::string, Scene> cache;
    const std::string key = params.alias + ":" +
                            std::to_string(cfg.screenWidth) + "x" +
                            std::to_string(cfg.screenHeight);
    auto it = cache.find(key);
    if (it == cache.end())
        it = cache.emplace(key, generateScene(params, cfg)).first;

    GpuSimulator gpu(cfg, it->second);
    RunOutput out;
    out.fs = gpu.renderFrame();
    out.energy = EnergyModel{}.compute(cfg, out.fs);
    return out;
}

double
geoMeanRatio(const std::vector<double> &ratios)
{
    return geoMean(ratios);
}

void
printHeader(const std::string &title,
            const std::vector<std::string> &columns)
{
    std::printf("\n== %s ==\n", title.c_str());
    std::printf("%-10s", "benchmark");
    for (const std::string &c : columns)
        std::printf(" %12s", c.c_str());
    std::printf("\n");
    for (std::size_t i = 0; i < 10 + 13 * columns.size(); ++i)
        std::printf("-");
    std::printf("\n");
    if (csv_file) {
        std::fprintf(csv_file, "# %s\nlabel", title.c_str());
        for (const std::string &c : columns)
            std::fprintf(csv_file, ",%s", c.c_str());
        std::fprintf(csv_file, "\n");
    }
}

void
printRow(const std::string &label, const std::vector<double> &cells,
         int precision)
{
    std::printf("%-10s", label.c_str());
    for (double c : cells)
        std::printf(" %12.*f", precision, c);
    std::printf("\n");
    if (csv_file) {
        std::fprintf(csv_file, "%s", label.c_str());
        for (double c : cells)
            std::fprintf(csv_file, ",%.*f", precision + 3, c);
        std::fprintf(csv_file, "\n");
        std::fflush(csv_file);
    }
}

} // namespace bench
} // namespace dtexl

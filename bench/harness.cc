#include "harness.hh"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <sstream>

#include "telemetry/cli_options.hh"
#include "telemetry/export.hh"

namespace dtexl {
namespace bench {

namespace {
/**
 * CSV sink for printHeader/printRow. Guarded by a mutex so rows from
 * concurrent writers cannot interleave mid-line; the figure binaries
 * print from the collector after the batch completes, but the sink
 * must stay safe if a binary reports progress from workers.
 */
std::mutex csv_mu;
FILE *csv_file = nullptr;
} // namespace

void
setCsvOutput(const std::string &path)
{
    std::lock_guard<std::mutex> lock(csv_mu);
    if (csv_file) {
        std::fclose(csv_file);
        csv_file = nullptr;
    }
    if (!path.empty()) {
        csv_file = std::fopen(path.c_str(), "a");
        if (!csv_file)
            fatal("cannot open CSV file '%s'", path.c_str());
    }
}

BenchOptions
BenchOptions::parse(int argc, char **argv)
{
    BenchOptions opt;
    CommonCliOptions common;
    CommonCliOptions::noteInvocation(argc, argv);
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (common.tryParse(arg)) {
            // Shared flag (--jobs, --trace, --stats-json,
            // --timeline-csv, --reference-path); copied below.
        } else if (arg == "--full") {
            opt.width = 1960;
            opt.height = 768;
        } else if (arg.rfind("--scale=", 0) == 0) {
            const char *value = arg.c_str() + 8;
            char *end = nullptr;
            const double s = std::strtod(value, &end);
            if (end == value || *end != '\0' || s <= 0.0 || s > 1.0)
                fatal("--scale must be a number in (0, 1], got '%s'",
                      value);
            opt.width = static_cast<std::uint32_t>(1960 * s) & ~31u;
            opt.height = static_cast<std::uint32_t>(768 * s) & ~31u;
            if (opt.width == 0 || opt.height == 0)
                fatal("--scale too small");
        } else if (arg.rfind("--csv=", 0) == 0) {
            opt.csvPath = arg.substr(6);
            setCsvOutput(opt.csvPath);
        } else if (arg.rfind("--benchmarks=", 0) == 0) {
            const std::string list = arg.substr(13);
            std::size_t pos = 0;
            while (pos <= list.size()) {
                const std::size_t comma = list.find(',', pos);
                const std::size_t end =
                    comma == std::string::npos ? list.size() : comma;
                // Skip empty segments (trailing comma, ",,").
                if (end > pos)
                    opt.aliases.push_back(list.substr(pos, end - pos));
                if (comma == std::string::npos)
                    break;
                pos = comma + 1;
            }
            if (opt.aliases.empty())
                fatal("--benchmarks needs at least one alias");
            // Validate every alias now, with the full list in the
            // message, instead of dying on first lookup mid-run.
            std::string valid;
            for (const BenchmarkParams &b : tableOneBenchmarks())
                valid += (valid.empty() ? "" : ", ") + b.alias;
            for (const std::string &a : opt.aliases) {
                bool known = false;
                for (const BenchmarkParams &b : tableOneBenchmarks())
                    known |= b.alias == a;
                if (!known)
                    fatal("unknown benchmark alias '%s' (valid: %s)",
                          a.c_str(), valid.c_str());
            }
        } else if (arg == "--help" || arg == "-h") {
            std::printf(
                "options:\n"
                "  --full              Table II screen (1960x768)\n"
                "  --scale=F           fraction of the full screen\n"
                "  --benchmarks=A,B,.. subset of Table I aliases\n"
                "  --csv=FILE          append tables as CSV\n"
                "%s",
                CommonCliOptions::helpText());
            std::exit(0);
        } else {
            CommonCliOptions::rejectUnknown(
                arg, "run with --help for the option list");
        }
    }
    opt.jobs = common.jobs;
    opt.fastPath = common.fastPath;
    opt.tracePath = common.tracePath;
    opt.common = common;
    return opt;
}

const std::vector<BenchmarkParams> &
BenchOptions::benchmarks() const
{
    if (!selected.empty())
        return selected;
    if (aliases.empty()) {
        selected = tableOneBenchmarks();
    } else {
        for (const std::string &a : aliases)
            selected.push_back(benchmarkByAlias(a));
    }
    return selected;
}

GpuConfig
BenchOptions::baseline() const
{
    GpuConfig cfg = makeBaselineConfig();
    cfg.screenWidth = width;
    cfg.screenHeight = height;
    cfg.simFastPath = fastPath;
    common.applyThreadKnobs(cfg);
    return cfg;
}

GpuConfig
BenchOptions::dtexl() const
{
    GpuConfig cfg = makeDTexLConfig();
    cfg.screenWidth = width;
    cfg.screenHeight = height;
    cfg.simFastPath = fastPath;
    common.applyThreadKnobs(cfg);
    return cfg;
}

GpuConfig
BenchOptions::upperBound() const
{
    GpuConfig cfg = makeUpperBoundConfig();
    cfg.screenWidth = width;
    cfg.screenHeight = height;
    cfg.simFastPath = fastPath;
    common.applyThreadKnobs(cfg);
    return cfg;
}

const Scene &
sceneFor(const BenchmarkParams &params, const GpuConfig &cfg)
{
    // Scene cache: key on alias + screen; configs share the scene.
    // Shared across worker threads: the mutex covers lookup AND
    // generation, so a scene is generated exactly once and concurrent
    // first-touchers of the same key wait for it. std::map nodes are
    // stable, so returned references survive later insertions.
    static std::mutex mu;
    static std::map<std::string, Scene> cache;
    const std::string key = params.alias + ":" +
                            std::to_string(cfg.screenWidth) + "x" +
                            std::to_string(cfg.screenHeight);
    std::lock_guard<std::mutex> lock(mu);
    auto it = cache.find(key);
    if (it == cache.end())
        it = cache.emplace(key, generateScene(params, cfg)).first;
    return it->second;
}

RunOutput
runOne(const BenchmarkParams &params, const GpuConfig &cfg)
{
    GpuSimulator gpu(cfg, sceneFor(params, cfg));
    RunOutput out;
    out.fs = gpu.renderFrame();
    out.energy = EnergyModel{}.compute(cfg, out.fs);
    return out;
}

std::vector<RunOutput>
runGrid(const std::vector<GridJob> &jobs, const BenchOptions &opt)
{
    std::vector<BatchJob> batch;
    batch.reserve(jobs.size());
    for (const GridJob &j : jobs) {
        BatchJob bj;
        bj.label = j.label.empty() ? j.bench.alias : j.label;
        bj.cfg = j.cfg;
        // The provider captures by value; generation happens on the
        // worker through the shared cache.
        const BenchmarkParams bench = j.bench;
        const GpuConfig cfg = j.cfg;
        bj.scene = [bench, cfg](std::uint32_t) -> const Scene & {
            return sceneFor(bench, cfg);
        };
        bj.frames = 1;
        batch.push_back(std::move(bj));
    }

    // Process-lifetime registry so the figure binaries' per-job phase
    // and telemetry counters are visible to --stats-json (the exporter
    // holds a pointer until its final flush).
    static StatRegistry registry("bench");
    TelemetryExport::global().attachRegistry(&registry);

    const std::vector<BatchResult> raw =
        runBatch(batch, opt.jobs, &registry);

    // A figure's table is meaningless with holes, so any failed grid
    // job aborts the whole binary: summarize every failure, flush the
    // exporters, and rethrow the first failure's classification so the
    // guarded main exits with its kind's code.
    if (reportBatchFailures(raw) > 0) {
        TelemetryExport::global().flush();
        TraceWriter::global().flush();
        for (const BatchResult &r : raw) {
            if (!r.ok) {
                throw SimError(r.errorKind,
                               "grid job '" + r.label +
                                   "' failed: " + r.error);
            }
        }
    }

    std::vector<RunOutput> out(jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        dtexl_assert(!raw[i].frames.empty(),
                     "batch job '%s' produced no frames",
                     raw[i].label.c_str());
        out[i].fs = raw[i].frames.front();
        out[i].energy = EnergyModel{}.compute(jobs[i].cfg, out[i].fs);
    }
    return out;
}

double
geoMeanRatio(const std::vector<double> &ratios)
{
    return geoMean(ratios);
}

void
printHeader(const std::string &title,
            const std::vector<std::string> &columns)
{
    std::printf("\n== %s ==\n", title.c_str());
    std::printf("%-10s", "benchmark");
    for (const std::string &c : columns)
        std::printf(" %12s", c.c_str());
    std::printf("\n");
    for (std::size_t i = 0; i < 10 + 13 * columns.size(); ++i)
        std::printf("-");
    std::printf("\n");
    std::lock_guard<std::mutex> lock(csv_mu);
    if (csv_file) {
        std::fprintf(csv_file, "# %s\nlabel", title.c_str());
        for (const std::string &c : columns)
            std::fprintf(csv_file, ",%s", c.c_str());
        std::fprintf(csv_file, "\n");
    }
}

void
printRow(const std::string &label, const std::vector<double> &cells,
         int precision)
{
    std::printf("%-10s", label.c_str());
    for (double c : cells)
        std::printf(" %12.*f", precision, c);
    std::printf("\n");
    std::lock_guard<std::mutex> lock(csv_mu);
    if (csv_file) {
        // Build the whole row first so one fprintf hits the stream:
        // rows stay atomic even with FILE-level buffering quirks.
        std::ostringstream row;
        row << label;
        char cell[64];
        for (double c : cells) {
            std::snprintf(cell, sizeof cell, ",%.*f", precision + 3, c);
            row << cell;
        }
        row << "\n";
        std::fputs(row.str().c_str(), csv_file);
        std::fflush(csv_file);
    }
}

} // namespace bench
} // namespace dtexl

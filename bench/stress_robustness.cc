/**
 * @file
 * Robustness check beyond the paper's suite: DTexL against the
 * baseline on adversarial stress scenes. The question a deployer would
 * ask: does the locality scheduler ever lose badly when the workload
 * does not cooperate (hot-spot clustering, no locality to exploit,
 * degenerate geometry)?
 */

#include <cstdio>

#include "harness.hh"
#include "workloads/stress.hh"

using namespace dtexl;
using namespace dtexl::bench;

int
benchMain(int argc, char **argv)
{
    const BenchOptions opt = BenchOptions::parse(argc, argv);
    const GpuConfig base = opt.baseline();
    GpuConfig dtexl_cfg = opt.dtexl();

    std::printf("== Stress robustness: DTexL vs baseline on "
                "adversarial scenes ==\n");
    std::printf("%-18s %10s %10s %9s %9s  %s\n", "scene", "base_L2",
                "dtexl_L2", "dL2%", "speedup", "notes");

    for (const StressCase &c : makeStressSuite(base)) {
        GpuSimulator a(base, c.scene);
        GpuSimulator b(dtexl_cfg, c.scene);
        const FrameStats fa = a.renderFrame();
        const FrameStats fb = b.renderFrame();
        if (fa.imageHash != fb.imageHash)
            fatal("image mismatch on stress scene %s", c.name.c_str());
        std::printf("%-18s %10llu %10llu %8.1f%% %8.3fx  %s\n",
                    c.name.c_str(),
                    static_cast<unsigned long long>(fa.l2Accesses),
                    static_cast<unsigned long long>(fb.l2Accesses),
                    100.0 * (static_cast<double>(fb.l2Accesses) /
                                 static_cast<double>(fa.l2Accesses) -
                             1.0),
                    static_cast<double>(fa.totalCycles) /
                        static_cast<double>(fb.totalCycles),
                    c.description.c_str());
    }
    std::printf("\nall images identical to the baseline renders\n");
    return 0;
}

int
main(int argc, char **argv)
{
    return dtexl::runGuardedMain([&] { return benchMain(argc, argv); });
}

/**
 * @file
 * Table I: the benchmark suite. Prints the published characteristics
 * next to the realised properties of the synthetic scenes (texture
 * footprint, draws, primitives, overdraw) so the substitution can be
 * audited.
 */

#include <cstdio>

#include "harness.hh"

using namespace dtexl;
using namespace dtexl::bench;

int
benchMain(int argc, char **argv)
{
    const BenchOptions opt = BenchOptions::parse(argc, argv);
    const GpuConfig cfg = opt.baseline();

    std::printf("== Table I: evaluated benchmarks (synthetic "
                "reproduction at %ux%u) ==\n",
                cfg.screenWidth, cfg.screenHeight);
    std::printf("%-32s %-6s %-5s %10s %10s %8s %8s %9s\n", "Benchmark",
                "Alias", "Type", "paper MiB", "real MiB", "draws",
                "prims", "quads");
    for (const BenchmarkParams &b : opt.benchmarks()) {
        const Scene scene = generateScene(b, cfg);
        std::size_t prims = 0;
        for (const DrawCommand &d : scene.draws)
            prims += d.indices.size() / 3;
        const RunOutput r = runOne(b, cfg);
        std::printf("%-32s %-6s %-5s %10.1f %10.1f %8zu %8zu %9llu\n",
                    b.name.c_str(), b.alias.c_str(),
                    b.is3D ? "3D" : "2D", b.textureFootprintMiB,
                    static_cast<double>(scene.textureFootprintBytes()) /
                        (1024.0 * 1024.0),
                    scene.draws.size(), prims,
                    static_cast<unsigned long long>(
                        r.fs.quadsRasterized));
    }
    return 0;
}

int
main(int argc, char **argv)
{
    return dtexl::runGuardedMain([&] { return benchMain(argc, argv); });
}

/**
 * @file
 * Ablation: sensitivity of the DTexL result to the machine parameters
 * DESIGN.md calls out — warps per core (occupancy), inter-stage FIFO
 * depth (decoupled run-ahead), and L1 texture cache size. Run on a
 * subset by default (--benchmarks=... to change).
 */

#include <cstdio>

#include "harness.hh"

using namespace dtexl;
using namespace dtexl::bench;

namespace {

/** Geomean DTexL speedup + L2 decrease over the selected suite. */
void
sweepPoint(const BenchOptions &opt, const char *label,
           void (*tweak)(GpuConfig &, std::uint32_t),
           std::uint32_t value)
{
    std::vector<double> speedups, l2dec;
    for (const BenchmarkParams &b : opt.benchmarks()) {
        GpuConfig base = opt.baseline();
        tweak(base, value);
        GpuConfig dt = opt.dtexl();
        tweak(dt, value);
        const RunOutput a = runOne(b, base);
        const RunOutput d = runOne(b, dt);
        speedups.push_back(static_cast<double>(a.fs.totalCycles) /
                           static_cast<double>(d.fs.totalCycles));
        l2dec.push_back(
            100.0 * (1.0 - static_cast<double>(d.fs.l2Accesses) /
                               static_cast<double>(a.fs.l2Accesses)));
    }
    std::printf("%-10s %6u %12.3f %11.1f\n", label, value,
                geoMeanRatio(speedups), mean(l2dec));
}

void
setWarps(GpuConfig &cfg, std::uint32_t v)
{
    cfg.maxWarpsPerCore = v;
}

void
setFifo(GpuConfig &cfg, std::uint32_t v)
{
    cfg.stageFifoDepth = v;
}

void
setL1(GpuConfig &cfg, std::uint32_t kib)
{
    cfg.textureCache.sizeBytes = kib * 1024;
}

void
setWarpSched(GpuConfig &cfg, std::uint32_t v)
{
    cfg.warpScheduler = static_cast<WarpSched>(v);
}

} // namespace

int
benchMain(int argc, char **argv)
{
    BenchOptions opt = BenchOptions::parse(argc, argv);
    if (opt.aliases.empty())
        opt.aliases = {"CCS", "TRu", "GTr"};

    std::printf("== Machine ablations: DTexL speedup & L2 decrease vs "
                "baseline (same machine) ==\n");
    std::printf("%-10s %6s %12s %11s\n", "knob", "value", "speedup",
                "L2dec%");

    for (std::uint32_t w : {2u, 4u, 6u, 8u, 16u, 32u})
        sweepPoint(opt, "warps", setWarps, w);
    std::printf("\n");
    for (std::uint32_t d : {8u, 32u, 64u, 128u, 256u})
        sweepPoint(opt, "fifo", setFifo, d);
    std::printf("\n");
    for (std::uint32_t k : {4u, 8u, 16u, 32u})
        sweepPoint(opt, "l1KiB", setL1, k);
    std::printf("\n(warp_sched: 0=earliest 1=oldest 2=greedy)\n");
    for (std::uint32_t w : {0u, 1u, 2u})
        sweepPoint(opt, "warp_sched", setWarpSched, w);
    return 0;
}

int
main(int argc, char **argv)
{
    return dtexl::runGuardedMain([&] { return benchMain(argc, argv); });
}

/**
 * @file
 * Throughput micro-benchmarks (google-benchmark) for the simulator
 * hot-path overhaul, each run with both implementations: every
 * benchmark takes the fastPath knob as its argument (0 = reference,
 * 1 = optimized), so `--benchmark_filter=...` output shows the two
 * side by side. The pairs are bit-exact (tests/test_fastpath_equiv.cc);
 * these benchmarks measure only how fast the identical answer is
 * produced. scripts/run_perf.py measures the end-to-end analogue on
 * the figure benches.
 */

#include <benchmark/benchmark.h>

#include <cstdint>

#include "common/config.hh"
#include "mem/cache.hh"
#include "mem/dram.hh"
#include "mem/hierarchy.hh"
#include "mem/rate_window.hh"

namespace {

using namespace dtexl;

/** Deterministic xorshift for out-of-order access jitter. */
class Rng
{
  public:
    std::uint64_t
    next()
    {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        return state;
    }

  private:
    std::uint64_t state = 0x9e3779b97f4a7c15ull;
};

/** Fixed-latency backing store (cache benches need a next level). */
class PerfectMem : public MemLevel
{
  public:
    Cycle
    access(Addr, AccessType, Cycle now) override
    {
        return now + 80;
    }
};

/**
 * The RateWindow is the port/bandwidth primitive every cache and DRAM
 * channel arbitrates through — the hottest single object in profiles.
 * Mostly-ordered request stream with jitter, like real pipeline
 * traffic.
 */
void
BM_RateWindowReserve(benchmark::State &state)
{
    RateWindow win(4 * 8, 8, state.range(0) != 0);
    Rng rng;
    Cycle base = 0;
    bool stalled = false;
    for (auto _ : state) {
        base += rng.next() % 3;
        const Cycle jitter = rng.next() % 17;
        const Cycle now = base > jitter ? base - jitter : Cycle{0};
        benchmark::DoNotOptimize(win.reserve(now, stalled));
    }
}
BENCHMARK(BM_RateWindowReserve)->Arg(0)->Arg(1);

/**
 * L1-shaped access stream: high hit rate over a small working set with
 * runs of consecutive same-line hits (what the last-line-hit filter
 * targets), plus a steady trickle of conflict misses.
 */
void
BM_CacheHitStream(benchmark::State &state)
{
    PerfectMem backing;
    CacheConfig cfg;
    cfg.sizeBytes = 16 * 1024;
    cfg.lineBytes = 64;
    cfg.ways = 4;
    cfg.numMshrs = 16;
    cfg.fastPath = state.range(0) != 0;
    Cache cache("bm", cfg, 4, backing);

    Rng rng;
    Cycle now = 0;
    for (auto _ : state) {
        // ~4 accesses per line before moving on: bilinear footprints.
        const Addr line = (rng.next() % 256) * 64;
        for (int k = 0; k < 4; ++k) {
            benchmark::DoNotOptimize(
                cache.access(line + k * 8, AccessType::Read, now));
        }
        now += 1;
    }
}
BENCHMARK(BM_CacheHitStream)->Arg(0)->Arg(1);

/**
 * MSHR pressure: a tiny MSHR pool and a miss-heavy out-of-order stream
 * keep acquireMshr()'s occupancy scan and purge on the critical path.
 */
void
BM_CacheMshrPressure(benchmark::State &state)
{
    PerfectMem backing;
    CacheConfig cfg;
    cfg.sizeBytes = 4 * 1024;
    cfg.lineBytes = 64;
    cfg.ways = 2;
    cfg.numMshrs = 4;
    cfg.fastPath = state.range(0) != 0;
    Cache cache("bm", cfg, 4, backing);

    Rng rng;
    Cycle base = 0;
    Addr sweep = 0;
    for (auto _ : state) {
        base += 2;
        const Cycle jitter = rng.next() % 65;
        const Cycle now = base > jitter ? base - jitter : Cycle{0};
        // A wide sweep so most accesses miss.
        sweep += 64 * 7;
        benchmark::DoNotOptimize(
            cache.access(sweep & 0xFFFFFF, AccessType::Read, now));
    }
}
BENCHMARK(BM_CacheMshrPressure)->Arg(0)->Arg(1);

/** Banked DRAM with row-buffer locality and channel arbitration. */
void
BM_DramStream(benchmark::State &state)
{
    DramConfig cfg;
    cfg.fastPath = state.range(0) != 0;
    Dram dram(cfg);
    Rng rng;
    Cycle now = 0;
    Addr row_base = 0;
    for (auto _ : state) {
        if (rng.next() % 8 == 0)
            row_base = (rng.next() % 4096) * 2048;
        benchmark::DoNotOptimize(dram.access(
            row_base + (rng.next() % 32) * 64, AccessType::Read, now));
        now += 3;
    }
}
BENCHMARK(BM_DramStream)->Arg(0)->Arg(1);

/**
 * End-to-end memory path as the shader cores drive it: per-core L1
 * texture reads that spill into the shared L2 and DRAM.
 */
void
BM_HierarchyTextureRead(benchmark::State &state)
{
    GpuConfig cfg;
    // MemHierarchy propagates the master knob into every cache/DRAM
    // config it instantiates.
    cfg.simFastPath = state.range(0) != 0;
    MemHierarchy mem(cfg);

    Rng rng;
    Cycle now = 0;
    for (auto _ : state) {
        const CoreId core = static_cast<CoreId>(rng.next() % 4);
        const Addr line = (rng.next() % 8192) * 64;
        benchmark::DoNotOptimize(mem.textureRead(core, line, now));
        now += 1;
    }
}
BENCHMARK(BM_HierarchyTextureRead)->Arg(0)->Arg(1);

} // namespace

BENCHMARK_MAIN();

/**
 * @file
 * Micro-benchmarks (google-benchmark) for the memory hierarchy:
 * cache hit path, miss path through L2+DRAM, and texture-sampler
 * footprint resolution.
 */

#include <benchmark/benchmark.h>

#include "common/config.hh"
#include "mem/hierarchy.hh"
#include "texture/sampler.hh"

namespace {

using namespace dtexl;

void
BM_CacheHit(benchmark::State &state)
{
    GpuConfig cfg;
    MemHierarchy mem(cfg);
    mem.textureRead(0, 0x1000, 0);
    Cycle now = 1000;
    for (auto _ : state) {
        benchmark::DoNotOptimize(mem.textureRead(0, 0x1000, now));
        now += 2;
    }
}
BENCHMARK(BM_CacheHit);

void
BM_CacheMissChain(benchmark::State &state)
{
    GpuConfig cfg;
    MemHierarchy mem(cfg);
    Addr a = 0;
    Cycle now = 0;
    for (auto _ : state) {
        now = mem.textureRead(0, a, now);
        a += 64;  // every access a cold miss
    }
}
BENCHMARK(BM_CacheMissChain);

void
BM_SamplerFootprint(benchmark::State &state)
{
    const TextureDesc tex(0, 0x1000'0000, 1024);
    const auto mode = static_cast<FilterMode>(state.range(0));
    float u = 0.1f;
    std::array<Addr, SampleFootprint::kMaxTexels> lines;
    for (auto _ : state) {
        const SampleFootprint fp =
            sampleFootprint(tex, mode, u, 0.5f, 0.7f);
        benchmark::DoNotOptimize(footprintLines(fp, 64, lines));
        u += 0.001f;
        if (u >= 1.0f)
            u = 0.0f;
    }
}
BENCHMARK(BM_SamplerFootprint)
    ->Arg(static_cast<int>(FilterMode::Bilinear))
    ->Arg(static_cast<int>(FilterMode::Trilinear))
    ->Arg(static_cast<int>(FilterMode::Aniso2x));

} // namespace

BENCHMARK_MAIN();

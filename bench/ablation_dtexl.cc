/**
 * @file
 * Ablation: decompose DTexL's benefit into its four ingredients by
 * enabling them cumulatively over the baseline —
 *   baseline -> +CG-square grouping -> +Hilbert order -> +Flip2
 *   assignment -> +decoupled barriers (= full DTexL)
 * and also each ingredient alone, reporting L2 accesses and speedup.
 */

#include <cstdio>

#include "harness.hh"

using namespace dtexl;
using namespace dtexl::bench;

namespace {

struct Step
{
    const char *name;
    GpuConfig (*make)(const BenchOptions &);
};

GpuConfig
stepBase(const BenchOptions &opt)
{
    return opt.baseline();
}

GpuConfig
stepCg(const BenchOptions &opt)
{
    GpuConfig cfg = opt.baseline();
    cfg.grouping = QuadGrouping::CGSquare;
    return cfg;
}

GpuConfig
stepHlb(const BenchOptions &opt)
{
    GpuConfig cfg = stepCg(opt);
    cfg.tileOrder = TileOrder::RectHilbert;
    return cfg;
}

GpuConfig
stepFlp(const BenchOptions &opt)
{
    GpuConfig cfg = stepHlb(opt);
    cfg.assignment = SubtileAssignment::Flip2;
    return cfg;
}

GpuConfig
stepDec(const BenchOptions &opt)
{
    GpuConfig cfg = stepFlp(opt);
    cfg.decoupledBarriers = true;
    return cfg;
}

GpuConfig
onlyDecoupled(const BenchOptions &opt)
{
    GpuConfig cfg = opt.baseline();
    cfg.decoupledBarriers = true;
    return cfg;
}

GpuConfig
onlyHilbert(const BenchOptions &opt)
{
    GpuConfig cfg = opt.baseline();
    cfg.tileOrder = TileOrder::RectHilbert;
    return cfg;
}

GpuConfig
onlyHiZ(const BenchOptions &opt)
{
    GpuConfig cfg = opt.baseline();
    cfg.hierarchicalZ = true;
    return cfg;
}

GpuConfig
dtexlPlusHiZ(const BenchOptions &opt)
{
    GpuConfig cfg = stepDec(opt);
    cfg.hierarchicalZ = true;
    return cfg;
}

GpuConfig
onlyPrefetch(const BenchOptions &opt)
{
    GpuConfig cfg = opt.baseline();
    cfg.texturePrefetch = true;
    return cfg;
}

GpuConfig
dtexlPlusPrefetch(const BenchOptions &opt)
{
    GpuConfig cfg = stepDec(opt);
    cfg.texturePrefetch = true;
    return cfg;
}

const Step kCumulative[] = {
    {"baseline", stepBase},       {"+CG-square", stepCg},
    {"+Hilbert order", stepHlb},  {"+Flip2 assign", stepFlp},
    {"+decoupled=DTexL", stepDec},
};

const Step kIsolated[] = {
    {"decoupled only", onlyDecoupled},
    {"Hilbert only", onlyHilbert},
    {"HiZ only", onlyHiZ},
    {"DTexL+HiZ", dtexlPlusHiZ},
    {"prefetch only", onlyPrefetch},
    {"DTexL+prefetch", dtexlPlusPrefetch},
};

} // namespace

int
main(int argc, char **argv)
{
    const BenchOptions opt = BenchOptions::parse(argc, argv);

    printHeader("DTexL ablation: cumulative ingredients "
                "(geomean over suite)",
                {"normL2", "speedup"});
    std::vector<std::vector<double>> l2(std::size(kCumulative) +
                                        std::size(kIsolated));
    std::vector<std::vector<double>> sp(l2.size());

    for (const BenchmarkParams &b : opt.benchmarks()) {
        const RunOutput base = runOne(b, opt.baseline());
        const double base_l2 = static_cast<double>(base.fs.l2Accesses);
        const double base_cy =
            static_cast<double>(base.fs.totalCycles);
        std::size_t idx = 0;
        for (const Step &s : kCumulative) {
            const RunOutput r = runOne(b, s.make(opt));
            l2[idx].push_back(
                static_cast<double>(r.fs.l2Accesses) / base_l2);
            sp[idx].push_back(
                base_cy / static_cast<double>(r.fs.totalCycles));
            ++idx;
        }
        for (const Step &s : kIsolated) {
            const RunOutput r = runOne(b, s.make(opt));
            l2[idx].push_back(
                static_cast<double>(r.fs.l2Accesses) / base_l2);
            sp[idx].push_back(
                base_cy / static_cast<double>(r.fs.totalCycles));
            ++idx;
        }
    }

    std::size_t idx = 0;
    for (const Step &s : kCumulative) {
        printRow(s.name, {geoMeanRatio(l2[idx]), geoMeanRatio(sp[idx])});
        ++idx;
    }
    std::printf("--- isolated ---\n");
    for (const Step &s : kIsolated) {
        printRow(s.name, {geoMeanRatio(l2[idx]), geoMeanRatio(sp[idx])});
        ++idx;
    }
    return 0;
}

/**
 * @file
 * Ablation: decompose DTexL's benefit into its four ingredients by
 * enabling them cumulatively over the baseline —
 *   baseline -> +CG-square grouping -> +Hilbert order -> +Flip2
 *   assignment -> +decoupled barriers (= full DTexL)
 * and also each ingredient alone, reporting L2 accesses and speedup.
 */

#include <cstdio>

#include "harness.hh"

using namespace dtexl;
using namespace dtexl::bench;

namespace {

struct Step
{
    const char *name;
    GpuConfig (*make)(const BenchOptions &);
};

GpuConfig
stepBase(const BenchOptions &opt)
{
    return opt.baseline();
}

GpuConfig
stepCg(const BenchOptions &opt)
{
    GpuConfig cfg = opt.baseline();
    cfg.grouping = QuadGrouping::CGSquare;
    return cfg;
}

GpuConfig
stepHlb(const BenchOptions &opt)
{
    GpuConfig cfg = stepCg(opt);
    cfg.tileOrder = TileOrder::RectHilbert;
    return cfg;
}

GpuConfig
stepFlp(const BenchOptions &opt)
{
    GpuConfig cfg = stepHlb(opt);
    cfg.assignment = SubtileAssignment::Flip2;
    return cfg;
}

GpuConfig
stepDec(const BenchOptions &opt)
{
    GpuConfig cfg = stepFlp(opt);
    cfg.decoupledBarriers = true;
    return cfg;
}

GpuConfig
onlyDecoupled(const BenchOptions &opt)
{
    GpuConfig cfg = opt.baseline();
    cfg.decoupledBarriers = true;
    return cfg;
}

GpuConfig
onlyHilbert(const BenchOptions &opt)
{
    GpuConfig cfg = opt.baseline();
    cfg.tileOrder = TileOrder::RectHilbert;
    return cfg;
}

GpuConfig
onlyHiZ(const BenchOptions &opt)
{
    GpuConfig cfg = opt.baseline();
    cfg.hierarchicalZ = true;
    return cfg;
}

GpuConfig
dtexlPlusHiZ(const BenchOptions &opt)
{
    GpuConfig cfg = stepDec(opt);
    cfg.hierarchicalZ = true;
    return cfg;
}

GpuConfig
onlyPrefetch(const BenchOptions &opt)
{
    GpuConfig cfg = opt.baseline();
    cfg.texturePrefetch = true;
    return cfg;
}

GpuConfig
dtexlPlusPrefetch(const BenchOptions &opt)
{
    GpuConfig cfg = stepDec(opt);
    cfg.texturePrefetch = true;
    return cfg;
}

const Step kCumulative[] = {
    {"baseline", stepBase},       {"+CG-square", stepCg},
    {"+Hilbert order", stepHlb},  {"+Flip2 assign", stepFlp},
    {"+decoupled=DTexL", stepDec},
};

const Step kIsolated[] = {
    {"decoupled only", onlyDecoupled},
    {"Hilbert only", onlyHilbert},
    {"HiZ only", onlyHiZ},
    {"DTexL+HiZ", dtexlPlusHiZ},
    {"prefetch only", onlyPrefetch},
    {"DTexL+prefetch", dtexlPlusPrefetch},
};

} // namespace

int
benchMain(int argc, char **argv)
{
    const BenchOptions opt = BenchOptions::parse(argc, argv);

    // Every (benchmark x step) cell is an independent job; fan the
    // whole grid over the batch driver (--jobs=N; identical results
    // for any N). The cumulative "baseline" step doubles as the
    // normalization run.
    std::vector<GridJob> jobs;
    for (const BenchmarkParams &b : opt.benchmarks()) {
        for (const Step &s : kCumulative)
            jobs.push_back({b, s.make(opt),
                            b.alias + "/" + s.name});
        for (const Step &s : kIsolated)
            jobs.push_back({b, s.make(opt),
                            b.alias + "/" + s.name});
    }
    const std::vector<RunOutput> runs = runGrid(jobs, opt);

    printHeader("DTexL ablation: cumulative ingredients "
                "(geomean over suite)",
                {"normL2", "speedup"});
    const std::size_t steps_per_bench =
        std::size(kCumulative) + std::size(kIsolated);
    std::vector<std::vector<double>> l2(steps_per_bench);
    std::vector<std::vector<double>> sp(l2.size());

    for (std::size_t bi = 0; bi < opt.benchmarks().size(); ++bi) {
        const RunOutput &base = runs[bi * steps_per_bench];
        const double base_l2 = static_cast<double>(base.fs.l2Accesses);
        const double base_cy =
            static_cast<double>(base.fs.totalCycles);
        for (std::size_t idx = 0; idx < steps_per_bench; ++idx) {
            const RunOutput &r = runs[bi * steps_per_bench + idx];
            l2[idx].push_back(
                static_cast<double>(r.fs.l2Accesses) / base_l2);
            sp[idx].push_back(
                base_cy / static_cast<double>(r.fs.totalCycles));
        }
    }

    std::size_t idx = 0;
    for (const Step &s : kCumulative) {
        printRow(s.name, {geoMeanRatio(l2[idx]), geoMeanRatio(sp[idx])});
        ++idx;
    }
    std::printf("--- isolated ---\n");
    for (const Step &s : kIsolated) {
        printRow(s.name, {geoMeanRatio(l2[idx]), geoMeanRatio(sp[idx])});
        ++idx;
    }
    return 0;
}

int
main(int argc, char **argv)
{
    return dtexl::runGuardedMain([&] { return benchMain(argc, argv); });
}

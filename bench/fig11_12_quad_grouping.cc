/**
 * @file
 * Figures 11 and 12: the quad-grouping design space of Figure 6.
 *
 *  - Figure 11: average L2 accesses of each grouping normalized to
 *    FG-xshift2 (paper: CG-xrect ~0.60, CG-yrect ~0.55, CG-square
 *    ~0.53).
 *  - Figure 12: average normalized mean deviation in quad distribution
 *    normalized to FG-xshift2 (paper: CG-xrect ~6x, CG-yrect ~10x).
 *
 * All runs use the non-decoupled pipeline with Z-order tiles and the
 * constant subtile assignment.
 */

#include <cstdio>

#include "harness.hh"

using namespace dtexl;
using namespace dtexl::bench;

int
benchMain(int argc, char **argv)
{
    const BenchOptions opt = BenchOptions::parse(argc, argv);

    struct Row
    {
        QuadGrouping g;
        std::vector<double> l2_ratio;
        std::vector<double> dev_ratio;
    };
    std::vector<Row> rows;
    for (QuadGrouping g : kAllQuadGroupings)
        rows.push_back({g, {}, {}});

    for (const BenchmarkParams &b : opt.benchmarks()) {
        const RunOutput ref = runOne(b, opt.baseline());
        const double ref_l2 = static_cast<double>(ref.fs.l2Accesses);
        const double ref_dev = ref.fs.tileQuadDeviation.mean();
        for (Row &row : rows) {
            GpuConfig cfg = opt.baseline();
            cfg.grouping = row.g;
            const RunOutput r = runOne(b, cfg);
            row.l2_ratio.push_back(
                static_cast<double>(r.fs.l2Accesses) / ref_l2);
            row.dev_ratio.push_back(
                ref_dev > 0 ? r.fs.tileQuadDeviation.mean() / ref_dev
                            : 0.0);
        }
    }

    printHeader("Figure 11: avg L2 accesses normalized to FG-xshift2",
                {"normL2", "paper"});
    auto paper_l2 = [](QuadGrouping g) {
        switch (g) {
          case QuadGrouping::CGXRect:  return 0.60;
          case QuadGrouping::CGYRect:  return 0.55;
          case QuadGrouping::CGSquare: return 0.53;
          case QuadGrouping::CGTriangle: return 0.57;
          default: return 1.0;  // fine-grained cluster near 1
        }
    };
    for (const Row &row : rows)
        printRow(toString(row.g), {geoMeanRatio(row.l2_ratio),
                                   paper_l2(row.g)});

    printHeader("Figure 12: avg quad-distribution mean deviation "
                "normalized to FG-xshift2",
                {"normDev"});
    for (const Row &row : rows)
        printRow(toString(row.g), {geoMeanRatio(row.dev_ratio)}, 2);
    std::printf("\npaper reference: coarse groupings trade ~45%% fewer "
                "L2 accesses for ~6-10x worse quad balance\n");
    return 0;
}

int
main(int argc, char **argv)
{
    return dtexl::runGuardedMain([&] { return benchMain(argc, argv); });
}

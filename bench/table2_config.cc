/**
 * @file
 * Table II: the GPU simulation parameters. Prints the configured
 * machine and validates it; with --full the screen matches the paper
 * exactly.
 */

#include <cstdio>

#include "harness.hh"

using namespace dtexl;
using namespace dtexl::bench;

int
benchMain(int argc, char **argv)
{
    const BenchOptions opt = BenchOptions::parse(argc, argv);
    GpuConfig cfg = opt.baseline();
    cfg.validate();
    std::printf("== Table II: GPU simulation parameters ==\n%s",
                cfg.describe().c_str());

    GpuConfig paper = makeBaselineConfig();
    paper.validate();
    std::printf("\n== Paper-exact machine (as with --full) ==\n%s",
                paper.describe().c_str());
    std::printf("\nDTexL preset:\n%s",
                makeDTexLConfig().describe().c_str());
    return 0;
}

int
main(int argc, char **argv)
{
    return dtexl::runGuardedMain([&] { return benchMain(argc, argv); });
}

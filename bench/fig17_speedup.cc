/**
 * @file
 * Figure 17: speedup w.r.t. the non-decoupled FG-xshift2 baseline for
 *  (a) DTexL = CG-square + Hilbert order + flp2 + decoupled barriers
 *      (paper: 1.2x average, ~1.4x on GTr), and
 *  (b) FG-xshift2 + Z-order with decoupled barriers (paper: 1.09x).
 *
 * The (benchmark x config) grid is fanned over the batch driver; pass
 * --jobs=N to use N worker threads (results are identical for any N).
 */

#include <cstdio>

#include "harness.hh"

using namespace dtexl;
using namespace dtexl::bench;

int
benchMain(int argc, char **argv)
{
    const BenchOptions opt = BenchOptions::parse(argc, argv);

    GpuConfig fg_dec = opt.baseline();
    fg_dec.decoupledBarriers = true;

    // Three configs per benchmark, in a fixed per-benchmark order.
    std::vector<GridJob> jobs;
    for (const BenchmarkParams &b : opt.benchmarks()) {
        jobs.push_back({b, opt.baseline(), b.alias + "/base"});
        jobs.push_back({b, opt.dtexl(), b.alias + "/dtexl"});
        jobs.push_back({b, fg_dec, b.alias + "/fg+dec"});
    }
    const std::vector<RunOutput> runs = runGrid(jobs, opt);

    printHeader("Figure 17: speedup w.r.t. non-decoupled FG-xshift2",
                {"DTexL", "FG+dec"});
    std::vector<double> dt, fgd;
    std::size_t i = 0;
    for (const BenchmarkParams &b : opt.benchmarks()) {
        const RunOutput &base = runs[i++];
        const RunOutput &d = runs[i++];
        const RunOutput &f = runs[i++];

        const double s_d = static_cast<double>(base.fs.totalCycles) /
                           static_cast<double>(d.fs.totalCycles);
        const double s_f = static_cast<double>(base.fs.totalCycles) /
                           static_cast<double>(f.fs.totalCycles);
        dt.push_back(s_d);
        fgd.push_back(s_f);
        printRow(b.alias, {s_d, s_f});
    }
    printRow("geomean", {geoMeanRatio(dt), geoMeanRatio(fgd)});
    std::printf("\npaper reference: DTexL 1.2x average (1.4x GTr), "
                "FG decoupled 1.09x\n");
    return 0;
}

int
main(int argc, char **argv)
{
    return dtexl::runGuardedMain([&] { return benchMain(argc, argv); });
}

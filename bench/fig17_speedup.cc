/**
 * @file
 * Figure 17: speedup w.r.t. the non-decoupled FG-xshift2 baseline for
 *  (a) DTexL = CG-square + Hilbert order + flp2 + decoupled barriers
 *      (paper: 1.2x average, ~1.4x on GTr), and
 *  (b) FG-xshift2 + Z-order with decoupled barriers (paper: 1.09x).
 */

#include <cstdio>

#include "harness.hh"

using namespace dtexl;
using namespace dtexl::bench;

int
main(int argc, char **argv)
{
    const BenchOptions opt = BenchOptions::parse(argc, argv);

    printHeader("Figure 17: speedup w.r.t. non-decoupled FG-xshift2",
                {"DTexL", "FG+dec"});
    std::vector<double> dt, fgd;
    for (const BenchmarkParams &b : opt.benchmarks()) {
        const RunOutput base = runOne(b, opt.baseline());

        const RunOutput d = runOne(b, opt.dtexl());
        GpuConfig fg_dec = opt.baseline();
        fg_dec.decoupledBarriers = true;
        const RunOutput f = runOne(b, fg_dec);

        const double s_d = static_cast<double>(base.fs.totalCycles) /
                           static_cast<double>(d.fs.totalCycles);
        const double s_f = static_cast<double>(base.fs.totalCycles) /
                           static_cast<double>(f.fs.totalCycles);
        dt.push_back(s_d);
        fgd.push_back(s_f);
        printRow(b.alias, {s_d, s_f});
    }
    printRow("geomean", {geoMeanRatio(dt), geoMeanRatio(fgd)});
    std::printf("\npaper reference: DTexL 1.2x average (1.4x GTr), "
                "FG decoupled 1.09x\n");
    return 0;
}

/**
 * @file
 * Figure 16: percent decrease in L2 accesses w.r.t. the non-decoupled
 * FG-xshift2 baseline, for the eight subtile-mapping configurations of
 * Figure 8 plus the conservative upper bound (one SC with a 4x L1).
 *
 * Paper: Zorder-const / HLB-const ~40.7%; HLB-flp1/2/3 ~46.5%;
 * Sorder-const / Sorder-flp ~46.8%; the mappings close ~80% of the
 * gap between the baseline and the upper bound.
 */

#include <cstdio>

#include "harness.hh"

using namespace dtexl;
using namespace dtexl::bench;

namespace {

struct Mapping
{
    const char *name;
    QuadGrouping grouping;
    TileOrder order;
    SubtileAssignment assignment;
};

const Mapping kMappings[] = {
    {"Zorder-const", QuadGrouping::CGSquare, TileOrder::ZOrder,
     SubtileAssignment::Constant},
    {"Zorder-flp1", QuadGrouping::CGSquare, TileOrder::ZOrder,
     SubtileAssignment::Flip1},
    {"HLB-const", QuadGrouping::CGSquare, TileOrder::RectHilbert,
     SubtileAssignment::Constant},
    {"HLB-flp1", QuadGrouping::CGSquare, TileOrder::RectHilbert,
     SubtileAssignment::Flip1},
    {"HLB-flp2", QuadGrouping::CGSquare, TileOrder::RectHilbert,
     SubtileAssignment::Flip2},
    {"HLB-flp3", QuadGrouping::CGSquare, TileOrder::RectHilbert,
     SubtileAssignment::Flip3},
    {"Sorder-const", QuadGrouping::CGYRect, TileOrder::SOrder,
     SubtileAssignment::Constant},
    {"Sorder-flp", QuadGrouping::CGYRect, TileOrder::SOrder,
     SubtileAssignment::Flip1},
};

} // namespace

int
benchMain(int argc, char **argv)
{
    const BenchOptions opt = BenchOptions::parse(argc, argv);

    // Per benchmark: baseline, the eight mappings, the upper bound —
    // fanned over the batch driver (--jobs=N; identical for any N).
    std::vector<GridJob> jobs;
    for (const BenchmarkParams &b : opt.benchmarks()) {
        jobs.push_back({b, opt.baseline(), b.alias + "/base"});
        for (const Mapping &m : kMappings) {
            GpuConfig cfg = opt.baseline();
            cfg.grouping = m.grouping;
            cfg.tileOrder = m.order;
            cfg.assignment = m.assignment;
            jobs.push_back({b, cfg, b.alias + "/" + m.name});
        }
        jobs.push_back({b, opt.upperBound(), b.alias + "/bound"});
    }
    const std::vector<RunOutput> runs = runGrid(jobs, opt);

    std::vector<std::vector<double>> decreases(std::size(kMappings));
    std::vector<double> bound_decrease;
    std::size_t i = 0;
    for (std::size_t bi = 0; bi < opt.benchmarks().size(); ++bi) {
        const RunOutput &base = runs[i++];
        const double base_l2 = static_cast<double>(base.fs.l2Accesses);
        for (std::size_t m = 0; m < std::size(kMappings); ++m) {
            const RunOutput &r = runs[i++];
            decreases[m].push_back(
                100.0 *
                (1.0 - static_cast<double>(r.fs.l2Accesses) / base_l2));
        }
        const RunOutput &ub = runs[i++];
        bound_decrease.push_back(
            100.0 *
            (1.0 - static_cast<double>(ub.fs.l2Accesses) / base_l2));
    }

    printHeader("Figure 16: %decrease in L2 accesses vs non-decoupled "
                "FG-xshift2",
                {"avg%", "paper%"});
    const double paper[] = {40.7, 44.0, 40.7, 46.5, 46.5, 46.5,
                            46.8, 46.8};
    double best = 0.0;
    for (std::size_t m = 0; m < std::size(kMappings); ++m) {
        const double avg = mean(decreases[m]);
        best = std::max(best, avg);
        printRow(kMappings[m].name, {avg, paper[m]}, 1);
    }
    const double bound = mean(bound_decrease);
    printRow("UpperBound", {bound, 50.9}, 1);
    std::printf("\ngap to upper bound closed: %.0f%% (paper: ~80%%)\n",
                100.0 * best / bound);
    return 0;
}

int
main(int argc, char **argv)
{
    return dtexl::runGuardedMain([&] { return benchMain(argc, argv); });
}

/**
 * @file
 * The Tile Fetcher (Figure 3): walks tiles in the configured traversal
 * order and reads each tile's primitive list + attribute records back
 * from the Parameter Buffer, producing the primitive stream the Raster
 * Pipeline consumes.
 */

#ifndef DTEXL_TILING_TILE_FETCHER_HH
#define DTEXL_TILING_TILE_FETCHER_HH

#include <vector>

#include "common/config.hh"
#include "mem/hierarchy.hh"
#include "sfc/tile_order.hh"
#include "tiling/param_buffer.hh"

namespace dtexl {

/** One fetched tile: its identity and primitive stream. */
struct FetchedTile
{
    TileId tile = 0;
    Coord2 coord;
    std::uint32_t sequence = 0;  ///< position in the traversal
    std::vector<const Primitive *> prims;
    Cycle readyAt = 0;  ///< cycle the last attribute read completed
};

/** Timed tile fetching in traversal order. */
class TileFetcher
{
  public:
    TileFetcher(const GpuConfig &cfg, MemHierarchy &mem,
                const ParamBuffer &pb);

    /** True when every tile of the frame has been fetched. */
    bool done() const { return cursor >= traversal.size(); }

    /** Number of tiles in the traversal. */
    std::size_t numTiles() const { return traversal.size(); }

    /**
     * Fetch the next tile in traversal order.
     *
     * @param now Cycle the fetch may start.
     * @return The fetched tile; readyAt gives its availability.
     */
    FetchedTile fetchNext(Cycle now);

    const std::vector<TileId> &order() const { return traversal; }

  private:
    /** Fixed per-primitive fetch/decode cost. */
    static constexpr Cycle kDecodeCost = 1;

    const GpuConfig &cfg;
    MemHierarchy &mem;
    const ParamBuffer &pb;
    std::vector<TileId> traversal;
    std::size_t cursor = 0;
};

} // namespace dtexl

#endif // DTEXL_TILING_TILE_FETCHER_HH

/**
 * @file
 * The Polygon List Builder (Figure 3): bins each assembled primitive
 * into the per-tile lists of the Parameter Buffer, writing attribute
 * records and list entries through the Tile Cache.
 */

#ifndef DTEXL_TILING_POLY_LIST_BUILDER_HH
#define DTEXL_TILING_POLY_LIST_BUILDER_HH

#include "common/config.hh"
#include "mem/hierarchy.hh"
#include "tiling/param_buffer.hh"

namespace dtexl {

/** Timed primitive binning. */
class PolyListBuilder
{
  public:
    PolyListBuilder(const GpuConfig &cfg, MemHierarchy &mem,
                    ParamBuffer &pb)
        : cfg(cfg), mem(mem), pb(pb)
    {}

    /**
     * Bin one primitive: exact-overlap test against every tile in its
     * bounding box, attribute record written once, a list entry per
     * overlapped tile.
     *
     * @param prim Assembled primitive (in submission order).
     * @param now  Cycle binning may start.
     * @return Cycle the last write retires.
     */
    Cycle binPrimitive(const Primitive &prim, Cycle now);

    std::uint64_t tileEntriesWritten() const { return entriesWritten; }

  private:
    /** Fixed cost of the overlap/setup logic per candidate tile. */
    static constexpr Cycle kBinTestCost = 1;

    const GpuConfig &cfg;
    MemHierarchy &mem;
    ParamBuffer &pb;
    std::uint64_t entriesWritten = 0;
};

} // namespace dtexl

#endif // DTEXL_TILING_POLY_LIST_BUILDER_HH

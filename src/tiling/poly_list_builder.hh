/**
 * @file
 * The Polygon List Builder (Figure 3): bins each assembled primitive
 * into the per-tile lists of the Parameter Buffer, writing attribute
 * records and list entries through the Tile Cache.
 *
 * Like the Vertex Stage, binning is split into a pure half
 * (overlapTiles(): which tiles a primitive lands in — geometry only)
 * and a timed half (binPrecomputed(): Parameter Buffer writes and
 * per-candidate test cost), so the parallel front-end can run the
 * overlap tests off-thread and replay the memory traffic serially.
 * binPrimitive() composes the two, keeping the serial path identical
 * by construction.
 */

#ifndef DTEXL_TILING_POLY_LIST_BUILDER_HH
#define DTEXL_TILING_POLY_LIST_BUILDER_HH

#include <vector>

#include "common/config.hh"
#include "mem/hierarchy.hh"
#include "tiling/param_buffer.hh"

namespace dtexl {

/** Timed primitive binning. */
class PolyListBuilder
{
  public:
    PolyListBuilder(const GpuConfig &cfg, MemHierarchy &mem,
                    ParamBuffer &pb)
        : cfg(cfg), mem(mem), pb(pb)
    {}

    /**
     * Bin one primitive: exact-overlap test against every tile in its
     * bounding box, attribute record written once, a list entry per
     * overlapped tile.
     *
     * @param prim Assembled primitive (in submission order).
     * @param now  Cycle binning may start.
     * @return Cycle the last write retires.
     */
    Cycle binPrimitive(const Primitive &prim, Cycle now);

    /**
     * The tiles @p prim overlaps, in bounding-box scan order (the
     * order binPrimitive() appends them). Pure: no Parameter Buffer or
     * memory side effects.
     */
    static void overlapTiles(const GpuConfig &cfg, const Primitive &prim,
                             std::vector<TileId> &out);

    /**
     * Timed half of binPrimitive() for a primitive whose overlap set
     * was precomputed with overlapTiles(): walks the same bounding-box
     * candidates charging kBinTestCost each, and appends + writes a
     * list entry when the candidate matches the next precomputed
     * overlap. Cursor arithmetic is identical to binPrimitive().
     */
    Cycle binPrecomputed(const Primitive &prim,
                         const std::vector<TileId> &overlaps, Cycle now);

    std::uint64_t tileEntriesWritten() const { return entriesWritten; }

  private:
    /** Fixed cost of the overlap/setup logic per candidate tile. */
    static constexpr Cycle kBinTestCost = 1;

    const GpuConfig &cfg;
    MemHierarchy &mem;
    ParamBuffer &pb;
    std::uint64_t entriesWritten = 0;
    /** binPrimitive() scratch (capacity persists across primitives). */
    std::vector<TileId> overlapScratch;
};

} // namespace dtexl

#endif // DTEXL_TILING_POLY_LIST_BUILDER_HH

#include "tiling/tile_fetcher.hh"

#include <algorithm>

#include "common/log.hh"

namespace dtexl {

TileFetcher::TileFetcher(const GpuConfig &cfg, MemHierarchy &mem,
                         const ParamBuffer &pb)
    : cfg(cfg), mem(mem), pb(pb),
      traversal(makeTileOrder(cfg.tileOrder, cfg.tilesX(), cfg.tilesY(),
                              cfg.simdMode))
{}

FetchedTile
TileFetcher::fetchNext(Cycle now)
{
    dtexl_assert(!done(), "fetchNext past the end of the frame");
    FetchedTile out;
    out.tile = traversal[cursor];
    out.coord = tileCoord(out.tile, cfg.tilesX());
    out.sequence = static_cast<std::uint32_t>(cursor);
    ++cursor;

    Cycle cursor_cycle = now;
    const auto &list = pb.tileList(out.tile);
    out.prims.reserve(list.size());
    for (std::size_t n = 0; n < list.size(); ++n) {
        // Read the list entry, then the attribute record it names.
        cursor_cycle = std::max(
            cursor_cycle + kDecodeCost,
            mem.tileAccess(pb.listEntryAddr(out.tile, n),
                           AccessType::Read, cursor_cycle));
        cursor_cycle = std::max(
            cursor_cycle,
            mem.tileAccess(pb.attrAddr(list[n]), AccessType::Read,
                           cursor_cycle));
        out.prims.push_back(&pb.primitive(list[n]));
    }
    out.readyAt = cursor_cycle;
    return out;
}

} // namespace dtexl

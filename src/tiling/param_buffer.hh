/**
 * @file
 * The Parameter Buffer (Section II-A): per-tile lists of primitive IDs
 * plus a single shared attribute record per primitive. Built by the
 * Polygon List Builder during the geometry phase, consumed by the Tile
 * Fetcher during the raster phase, and discarded at frame end.
 */

#ifndef DTEXL_TILING_PARAM_BUFFER_HH
#define DTEXL_TILING_PARAM_BUFFER_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "geom/primitive.hh"
#include "mem/address_map.hh"

namespace dtexl {

/**
 * Frame-lifetime storage for the binned primitive stream. The class
 * both holds the functional data (primitive structs, per-tile ID lists)
 * and computes the memory addresses the timing model touches when the
 * structure is written and read back.
 */
class ParamBuffer
{
  public:
    /** Bytes of one attribute record (3 vertices + shader state). */
    static constexpr std::uint32_t kAttrRecordBytes = 64;
    /** Bytes of one per-tile list entry (a primitive ID). */
    static constexpr std::uint32_t kListEntryBytes = 4;
    /** Capacity reserved for each tile's list region, in entries. */
    static constexpr std::uint32_t kListRegionEntries = 1 << 16;

    explicit ParamBuffer(std::uint32_t num_tiles);

    /** Store a primitive's attributes; returns its index (== prim.id). */
    std::size_t addPrimitive(const Primitive &prim);

    /** Append primitive @p index to tile @p tile's list. */
    void appendToTile(TileId tile, std::size_t index);

    const Primitive &primitive(std::size_t index) const
    {
        return prims[index];
    }
    const std::vector<std::uint32_t> &tileList(TileId tile) const
    {
        return lists[tile];
    }
    std::size_t numPrimitives() const { return prims.size(); }
    std::uint32_t numTiles() const
    {
        return static_cast<std::uint32_t>(lists.size());
    }

    /** Address of a primitive's attribute record. */
    Addr
    attrAddr(std::size_t index) const
    {
        return addr_map::kParamBufferBase +
               static_cast<Addr>(index) * kAttrRecordBytes;
    }

    /** Address of entry @p n of tile @p tile's list. */
    Addr
    listEntryAddr(TileId tile, std::size_t n) const
    {
        return listsBase +
               (static_cast<Addr>(tile) * kListRegionEntries + n) *
                   kListEntryBytes;
    }

    /** Total footprint in bytes (attribute records + list entries). */
    std::uint64_t footprintBytes() const;

    /** Drop all contents for the next frame. */
    void clear();

  private:
    std::vector<Primitive> prims;
    std::vector<std::vector<std::uint32_t>> lists;
    Addr listsBase;
};

} // namespace dtexl

#endif // DTEXL_TILING_PARAM_BUFFER_HH

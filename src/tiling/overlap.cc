#include "tiling/overlap.hh"

#include <algorithm>

namespace dtexl {

namespace {

/** Project the triangle and rectangle on an axis; true if disjoint. */
bool
separatedOnAxis(const Vec2f &axis, const Vec2f &a, const Vec2f &b,
                const Vec2f &c, const RectF &r)
{
    const float ta = dot(axis, a);
    const float tb = dot(axis, b);
    const float tc = dot(axis, c);
    const float tri_min = std::min({ta, tb, tc});
    const float tri_max = std::max({ta, tb, tc});

    const Vec2f corners[4] = {
        {r.x0, r.y0}, {r.x1, r.y0}, {r.x0, r.y1}, {r.x1, r.y1}};
    float rect_min = dot(axis, corners[0]);
    float rect_max = rect_min;
    for (int i = 1; i < 4; ++i) {
        const float t = dot(axis, corners[i]);
        rect_min = std::min(rect_min, t);
        rect_max = std::max(rect_max, t);
    }
    return tri_max <= rect_min || rect_max <= tri_min;
}

} // namespace

bool
triangleOverlapsRect(const Vec2f &a, const Vec2f &b, const Vec2f &c,
                     const RectF &r)
{
    // Rectangle axes (x, y), then the three edge normals.
    if (separatedOnAxis({1.0f, 0.0f}, a, b, c, r))
        return false;
    if (separatedOnAxis({0.0f, 1.0f}, a, b, c, r))
        return false;
    const Vec2f edges[3] = {b - a, c - b, a - c};
    for (const Vec2f &e : edges) {
        if (e.x == 0.0f && e.y == 0.0f)
            continue;
        if (separatedOnAxis({-e.y, e.x}, a, b, c, r))
            return false;
    }
    return true;
}

} // namespace dtexl

#include "tiling/param_buffer.hh"

#include "common/log.hh"

namespace dtexl {

ParamBuffer::ParamBuffer(std::uint32_t num_tiles)
    : lists(num_tiles)
{
    // List regions start after a generous attribute area so the two
    // classes of traffic never alias.
    listsBase = addr_map::kParamBufferBase + (Addr{1} << 28);
}

std::size_t
ParamBuffer::addPrimitive(const Primitive &prim)
{
    prims.push_back(prim);
    return prims.size() - 1;
}

void
ParamBuffer::appendToTile(TileId tile, std::size_t index)
{
    dtexl_assert(tile < lists.size(), "tile out of range");
    dtexl_assert(lists[tile].size() < kListRegionEntries,
                 "per-tile list region overflow");
    lists[tile].push_back(static_cast<std::uint32_t>(index));
}

std::uint64_t
ParamBuffer::footprintBytes() const
{
    std::uint64_t bytes =
        static_cast<std::uint64_t>(prims.size()) * kAttrRecordBytes;
    for (const auto &l : lists)
        bytes += static_cast<std::uint64_t>(l.size()) * kListEntryBytes;
    return bytes;
}

void
ParamBuffer::clear()
{
    prims.clear();
    for (auto &l : lists)
        l.clear();
}

} // namespace dtexl

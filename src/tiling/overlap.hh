/**
 * @file
 * Exact triangle-vs-axis-aligned-rectangle overlap test used by the
 * Polygon List Builder so per-tile lists contain only primitives that
 * truly overlap the tile (Section II-A).
 */

#ifndef DTEXL_TILING_OVERLAP_HH
#define DTEXL_TILING_OVERLAP_HH

#include "geom/vec.hh"

namespace dtexl {

/** Axis-aligned rectangle in pixel coordinates, [x0,x1) x [y0,y1). */
struct RectF
{
    float x0 = 0.0f;
    float y0 = 0.0f;
    float x1 = 0.0f;
    float y1 = 0.0f;
};

/**
 * Separating-axis triangle/rectangle overlap. Shared edges count as
 * overlap only if interiors intersect (half-open rectangle).
 */
bool triangleOverlapsRect(const Vec2f &a, const Vec2f &b, const Vec2f &c,
                          const RectF &r);

} // namespace dtexl

#endif // DTEXL_TILING_OVERLAP_HH

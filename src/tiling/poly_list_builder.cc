#include "tiling/poly_list_builder.hh"

#include <algorithm>
#include <cmath>

#include "tiling/overlap.hh"

namespace dtexl {

Cycle
PolyListBuilder::binPrimitive(const Primitive &prim, Cycle now)
{
    const float ts = static_cast<float>(cfg.tileSize);
    const auto tiles_x = static_cast<std::int32_t>(cfg.tilesX());
    const auto tiles_y = static_cast<std::int32_t>(cfg.tilesY());

    const auto tx0 = std::max<std::int32_t>(
        0, static_cast<std::int32_t>(std::floor(prim.minX() / ts)));
    const auto ty0 = std::max<std::int32_t>(
        0, static_cast<std::int32_t>(std::floor(prim.minY() / ts)));
    const auto tx1 = std::min<std::int32_t>(
        tiles_x - 1,
        static_cast<std::int32_t>(std::floor(prim.maxX() / ts)));
    const auto ty1 = std::min<std::int32_t>(
        tiles_y - 1,
        static_cast<std::int32_t>(std::floor(prim.maxY() / ts)));

    Cycle cursor = now;
    const std::size_t index = pb.addPrimitive(prim);

    // The attribute record is written once per primitive.
    cursor = std::max(cursor, mem.tileAccess(pb.attrAddr(index),
                                             AccessType::Write, cursor));

    for (std::int32_t ty = ty0; ty <= ty1; ++ty) {
        for (std::int32_t tx = tx0; tx <= tx1; ++tx) {
            cursor += kBinTestCost;
            const RectF rect{static_cast<float>(tx) * ts,
                             static_cast<float>(ty) * ts,
                             static_cast<float>(tx + 1) * ts,
                             static_cast<float>(ty + 1) * ts};
            if (!triangleOverlapsRect(prim.v[0].screen, prim.v[1].screen,
                                      prim.v[2].screen, rect)) {
                continue;
            }
            const TileId tile =
                static_cast<TileId>(ty) * cfg.tilesX() +
                static_cast<TileId>(tx);
            const std::size_t n = pb.tileList(tile).size();
            pb.appendToTile(tile, index);
            cursor = std::max(
                cursor, mem.tileAccess(pb.listEntryAddr(tile, n),
                                       AccessType::Write, cursor));
            ++entriesWritten;
        }
    }
    return cursor;
}

} // namespace dtexl

#include "tiling/poly_list_builder.hh"

#include <algorithm>
#include <cmath>

#include "common/log.hh"
#include "tiling/overlap.hh"

namespace dtexl {

namespace {

/** Tile-index bounding box of a primitive, clamped to the screen. */
struct TileBounds
{
    std::int32_t tx0, ty0, tx1, ty1;
};

TileBounds
tileBounds(const GpuConfig &cfg, const Primitive &prim)
{
    const float ts = static_cast<float>(cfg.tileSize);
    const auto tiles_x = static_cast<std::int32_t>(cfg.tilesX());
    const auto tiles_y = static_cast<std::int32_t>(cfg.tilesY());

    TileBounds b;
    b.tx0 = std::max<std::int32_t>(
        0, static_cast<std::int32_t>(std::floor(prim.minX() / ts)));
    b.ty0 = std::max<std::int32_t>(
        0, static_cast<std::int32_t>(std::floor(prim.minY() / ts)));
    b.tx1 = std::min<std::int32_t>(
        tiles_x - 1,
        static_cast<std::int32_t>(std::floor(prim.maxX() / ts)));
    b.ty1 = std::min<std::int32_t>(
        tiles_y - 1,
        static_cast<std::int32_t>(std::floor(prim.maxY() / ts)));
    return b;
}

} // namespace

void
PolyListBuilder::overlapTiles(const GpuConfig &cfg, const Primitive &prim,
                              std::vector<TileId> &out)
{
    out.clear();
    const float ts = static_cast<float>(cfg.tileSize);
    const TileBounds b = tileBounds(cfg, prim);
    for (std::int32_t ty = b.ty0; ty <= b.ty1; ++ty) {
        for (std::int32_t tx = b.tx0; tx <= b.tx1; ++tx) {
            const RectF rect{static_cast<float>(tx) * ts,
                             static_cast<float>(ty) * ts,
                             static_cast<float>(tx + 1) * ts,
                             static_cast<float>(ty + 1) * ts};
            if (!triangleOverlapsRect(prim.v[0].screen, prim.v[1].screen,
                                      prim.v[2].screen, rect)) {
                continue;
            }
            out.push_back(static_cast<TileId>(ty) * cfg.tilesX() +
                          static_cast<TileId>(tx));
        }
    }
}

Cycle
PolyListBuilder::binPrecomputed(const Primitive &prim,
                                const std::vector<TileId> &overlaps,
                                Cycle now)
{
    const TileBounds b = tileBounds(cfg, prim);

    Cycle cursor = now;
    const std::size_t index = pb.addPrimitive(prim);

    // The attribute record is written once per primitive.
    cursor = std::max(cursor, mem.tileAccess(pb.attrAddr(index),
                                             AccessType::Write, cursor));

    // Hardware still tests every candidate tile in the bounding box —
    // precomputing the outcome saves host time, not modelled cycles.
    std::size_t next = 0;
    for (std::int32_t ty = b.ty0; ty <= b.ty1; ++ty) {
        for (std::int32_t tx = b.tx0; tx <= b.tx1; ++tx) {
            cursor += kBinTestCost;
            const TileId tile =
                static_cast<TileId>(ty) * cfg.tilesX() +
                static_cast<TileId>(tx);
            if (next >= overlaps.size() || overlaps[next] != tile)
                continue;
            ++next;
            const std::size_t n = pb.tileList(tile).size();
            pb.appendToTile(tile, index);
            cursor = std::max(
                cursor, mem.tileAccess(pb.listEntryAddr(tile, n),
                                       AccessType::Write, cursor));
            ++entriesWritten;
        }
    }
    dtexl_assert(next == overlaps.size(),
                 "overlap set does not match primitive bounds");
    return cursor;
}

Cycle
PolyListBuilder::binPrimitive(const Primitive &prim, Cycle now)
{
    overlapTiles(cfg, prim, overlapScratch);
    return binPrecomputed(prim, overlapScratch, now);
}

} // namespace dtexl

#include "power/energy_model.hh"

#include <sstream>

namespace dtexl {

std::string
EnergyBreakdown::describe() const
{
    std::ostringstream os;
    os.precision(3);
    os << std::fixed;
    auto row = [&](const char *name, double j) {
        os << "  " << name << ": " << j * 1e6 << " uJ ("
           << (total() > 0 ? 100.0 * j / total() : 0.0) << "%)\n";
    };
    row("shader dynamic", shaderDynamic);
    row("L1 caches     ", l1);
    row("L2 cache      ", l2);
    row("DRAM          ", dram);
    row("fixed function", fixedFunction);
    row("static        ", staticEnergy);
    os << "  total         : " << total() * 1e6 << " uJ\n";
    return os.str();
}

EnergyBreakdown
EnergyModel::compute(const GpuConfig &cfg, const FrameStats &fs) const
{
    constexpr double pj = 1e-12;
    EnergyBreakdown e;

    e.shaderDynamic =
        pj * (params.aluOpPj * static_cast<double>(fs.shaderInstructions) +
              params.texFilterPj * static_cast<double>(fs.textureSamples));

    const double l1_accesses =
        static_cast<double>(fs.l1TexAccesses) +
        static_cast<double>(fs.l1VertexAccesses) +
        static_cast<double>(fs.l1TileAccesses);
    e.l1 = pj * params.l1AccessPj * l1_accesses;
    e.l2 = pj * params.l2AccessPj * static_cast<double>(fs.l2Accesses);
    e.dram =
        pj * params.dramAccessPj * static_cast<double>(fs.dramAccesses);

    e.fixedFunction =
        pj * (params.rasterQuadPj *
                  static_cast<double>(fs.quadsRasterized) +
              params.earlyZTestPj * static_cast<double>(fs.earlyZTests) +
              params.blendOpPj * static_cast<double>(fs.blendOps) +
              params.vertexPj *
                  static_cast<double>(fs.verticesProcessed) +
              params.binEntryPj *
                  static_cast<double>(fs.primitivesBinned));

    e.staticEnergy = params.staticWatts *
                     static_cast<double>(fs.totalCycles) /
                     static_cast<double>(cfg.clockHz);
    return e;
}

} // namespace dtexl

/**
 * @file
 * GPU energy model: the McPAT substitute (see DESIGN.md). Dynamic
 * energy is per-event (instruction, cache access, DRAM transfer,
 * fixed-function op) with constants in the published range for a 32 nm
 * 600 MHz mobile GPU; static energy is leakage + clock power times the
 * frame's cycle count. The paper's Figure 18 compares total GPU energy
 * across schedulers, which this model reproduces from the frame
 * statistics alone.
 */

#ifndef DTEXL_POWER_ENERGY_MODEL_HH
#define DTEXL_POWER_ENERGY_MODEL_HH

#include <string>

#include "common/config.hh"
#include "core/frame_stats.hh"

namespace dtexl {

/** Per-event energies (picojoules) and static power (watts). */
struct EnergyParams
{
    double aluOpPj = 6.0;          ///< scalar ALU op incl. registers
    double texFilterPj = 14.0;     ///< filtering one fragment sample
    double l1AccessPj = 12.0;      ///< any L1 (vertex/texture/tile)
    double l2AccessPj = 65.0;      ///< shared L2 bank access
    double dramAccessPj = 3200.0;  ///< one 64 B LPDDR transfer
    double earlyZTestPj = 4.0;     ///< quad depth test vs Z bank
    double blendOpPj = 10.0;       ///< quad blend + color bank write
    double rasterQuadPj = 12.0;    ///< edge eval + attribute interp
    double vertexPj = 45.0;        ///< fetch + transform one vertex
    double binEntryPj = 8.0;       ///< one Polygon List Builder entry
    /** Leakage + clock distribution of the whole GPU. */
    double staticWatts = 0.05;
};

/** Energy of one frame, by component (joules). */
struct EnergyBreakdown
{
    double shaderDynamic = 0.0;  ///< ALU + texture filtering
    double l1 = 0.0;
    double l2 = 0.0;
    double dram = 0.0;
    double fixedFunction = 0.0;  ///< raster, Z, blend, vertex, binning
    double staticEnergy = 0.0;

    double
    total() const
    {
        return shaderDynamic + l1 + l2 + dram + fixedFunction +
               staticEnergy;
    }

    /** Multi-line human-readable table. */
    std::string describe() const;
};

/** Computes frame energy from frame statistics. */
class EnergyModel
{
  public:
    explicit EnergyModel(EnergyParams params = EnergyParams{})
        : params(params)
    {}

    /**
     * @param cfg Machine configuration (clock, for static energy).
     * @param fs  Statistics of the rendered frame.
     */
    EnergyBreakdown compute(const GpuConfig &cfg,
                            const FrameStats &fs) const;

  private:
    EnergyParams params;
};

} // namespace dtexl

#endif // DTEXL_POWER_ENERGY_MODEL_HH

/**
 * @file
 * Layout of the simulated physical address space (paper Figure 5,
 * right): textures, vertex buffers, the Parameter Buffer and the Frame
 * Buffer each live in a dedicated region so traffic classes never
 * alias.
 */

#ifndef DTEXL_MEM_ADDRESS_MAP_HH
#define DTEXL_MEM_ADDRESS_MAP_HH

#include "common/types.hh"

namespace dtexl {
namespace addr_map {

inline constexpr Addr kTextureBase = 0x1000'0000;
inline constexpr Addr kVertexBase = 0x4000'0000;
inline constexpr Addr kParamBufferBase = 0x5000'0000;
inline constexpr Addr kFrameBufferBase = 0x7000'0000;

} // namespace addr_map
} // namespace dtexl

#endif // DTEXL_MEM_ADDRESS_MAP_HH

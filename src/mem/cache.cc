#include "mem/cache.hh"

#include <algorithm>

#include "common/log.hh"

namespace dtexl {

Cache::Cache(std::string name, const CacheConfig &cfg,
             std::uint32_t accesses_per_cycle, MemLevel &next)
    : name(std::move(name)), cfg(cfg), portsPerCycle(accesses_per_cycle),
      nextLevel(next), lines(std::size_t{cfg.numSets()} * cfg.ways),
      port(accesses_per_cycle * kPortWindow, kPortWindow),
      stats_(this->name)
{
    dtexl_assert(portsPerCycle > 0);
    dtexl_assert(cfg.numSets() > 0 && (cfg.numSets() &
                 (cfg.numSets() - 1)) == 0,
                 "set count must be a power of two");
}

std::size_t
Cache::setIndex(Addr line_addr) const
{
    return (line_addr / cfg.lineBytes) & (cfg.numSets() - 1);
}

Cache::Line &
Cache::findVictim(std::size_t set)
{
    Line *victim = nullptr;
    for (std::uint32_t w = 0; w < cfg.ways; ++w) {
        Line &l = lines[set * cfg.ways + w];
        if (!l.valid)
            return l;
        if (!victim || l.lruStamp < victim->lruStamp)
            victim = &l;
    }
    return *victim;
}

void
Cache::purgeMshrs(Cycle)
{
    // Bound the interval history; only recent misses can overlap
    // future queries in a roughly time-ordered access stream.
    const std::size_t cap = std::size_t{cfg.numMshrs} * 8;
    while (mshrIntervals.size() > cap)
        mshrIntervals.pop_front();
}

Cycle
Cache::acquireMshr(Cycle ready)
{
    purgeMshrs(ready);
    Cycle start = ready;
    for (;;) {
        std::uint32_t occupied = 0;
        Cycle next_free = kCycleNever;
        for (const MshrInterval &iv : mshrIntervals) {
            if (iv.start <= start && start < iv.fill) {
                ++occupied;
                next_free = std::min(next_free, iv.fill);
            }
        }
        if (occupied < cfg.numMshrs)
            break;
        stats_.inc("mshr_stall");
        start = next_free;
    }
    return start;
}

Cycle
Cache::arbitratePort(Cycle now)
{
    bool stalled = false;
    const Cycle start = port.reserve(now, stalled);
    if (stalled)
        stats_.inc("port_stall");
    return start;
}

Cache::Line *
Cache::lookup(Addr line_addr, AccessType type)
{
    const std::size_t set = setIndex(line_addr);
    for (std::uint32_t w = 0; w < cfg.ways; ++w) {
        Line &l = lines[set * cfg.ways + w];
        if (l.valid && l.tag == line_addr) {
            l.lruStamp = ++lruCounter;
            if (type == AccessType::Write)
                l.dirty = true;
            return &l;
        }
    }
    return nullptr;
}

Cycle
Cache::access(Addr addr, AccessType type, Cycle now)
{
    const Addr la = lineAddr(addr);
    stats_.inc(type == AccessType::Read ? "read" : "write");

    const Cycle start = arbitratePort(now);

    // Lazily retire completed fills for this line.
    if (auto it = pendingFills.find(la);
        it != pendingFills.end() && it->second <= start) {
        pendingFills.erase(it);
    }

    if (Line *line = lookup(la, type)) {
        (void)line;
        Cycle done = start + cfg.hitLatency;
        if (auto it = pendingFills.find(la); it != pendingFills.end()) {
            stats_.inc("hit_under_fill");
            done = std::max(done, it->second);
        } else {
            stats_.inc(type == AccessType::Read ? "read_hit"
                                                : "write_hit");
        }
        return done;
    }

    // Miss: allocate an MSHR and fetch the line from below.
    stats_.inc(type == AccessType::Read ? "read_miss" : "write_miss");
    Cycle issue = acquireMshr(start) + cfg.hitLatency;

    const std::size_t set = setIndex(la);
    Line &victim = findVictim(set);
    if (victim.valid && victim.dirty) {
        stats_.inc("writeback");
        nextLevel.access(victim.tag, AccessType::Write, issue);
    }
    if (victim.valid)
        pendingFills.erase(victim.tag);

    Cycle fill = nextLevel.access(la, AccessType::Read, issue);
    victim.valid = true;
    victim.tag = la;
    victim.dirty = (type == AccessType::Write);
    victim.lruStamp = ++lruCounter;
    pendingFills[la] = fill;
    mshrIntervals.push_back({issue, fill});

    // Optional next-line prefetch: ride the demand miss with a fetch
    // of the following line (the next Morton block of the texture),
    // if it is not already resident or in flight.
    if (cfg.prefetchNextLine) {
        const Addr nla = la + cfg.lineBytes;
        if (!contains(nla) && pendingFills.find(nla) ==
                                  pendingFills.end()) {
            stats_.inc("prefetch_issued");
            const Cycle pf_issue = acquireMshr(issue);
            Line &pf_victim = findVictim(setIndex(nla));
            if (pf_victim.valid && pf_victim.dirty) {
                stats_.inc("writeback");
                nextLevel.access(pf_victim.tag, AccessType::Write,
                                 pf_issue);
            }
            if (pf_victim.valid)
                pendingFills.erase(pf_victim.tag);
            const Cycle pf_fill =
                nextLevel.access(nla, AccessType::Read, pf_issue);
            pf_victim.valid = true;
            pf_victim.tag = nla;
            pf_victim.dirty = false;
            pf_victim.lruStamp = ++lruCounter;
            pendingFills[nla] = pf_fill;
            mshrIntervals.push_back({pf_issue, pf_fill});
        }
    }
    return fill;
}

Cycle
Cache::writeLine(Addr addr, Cycle now)
{
    const Addr la = lineAddr(addr);
    stats_.inc("write");

    const Cycle start = arbitratePort(now);
    if (lookup(la, AccessType::Write)) {
        stats_.inc("write_hit");
        return start + cfg.hitLatency;
    }

    // Write-validate: the whole line is produced here, so no fill is
    // needed — allocate the tag and dirty it.
    stats_.inc("write_validate");
    const std::size_t set = setIndex(la);
    Line &victim = findVictim(set);
    if (victim.valid && victim.dirty) {
        stats_.inc("writeback");
        nextLevel.access(victim.tag, AccessType::Write,
                         start + cfg.hitLatency);
    }
    if (victim.valid)
        pendingFills.erase(victim.tag);
    victim.valid = true;
    victim.tag = la;
    victim.dirty = true;
    victim.lruStamp = ++lruCounter;
    return start + cfg.hitLatency;
}

bool
Cache::contains(Addr addr) const
{
    const Addr la = lineAddr(addr);
    const std::size_t set = setIndex(la);
    for (std::uint32_t w = 0; w < cfg.ways; ++w) {
        const Line &l = lines[set * cfg.ways + w];
        if (l.valid && l.tag == la)
            return true;
    }
    return false;
}

void
Cache::resetTiming()
{
    pendingFills.clear();
    mshrIntervals.clear();
    port.clear();
}

void
Cache::flushAll()
{
    for (Line &l : lines)
        l = Line{};
    pendingFills.clear();
    mshrIntervals.clear();
    lruCounter = 0;
    port.clear();
}

} // namespace dtexl

#include "mem/cache.hh"

#include <algorithm>

#include "common/log.hh"
#include "common/serial.hh"
#include "common/sim_error.hh"

namespace dtexl {

Cache::Cache(std::string name, const CacheConfig &cfg,
             std::uint32_t accesses_per_cycle, MemLevel &next)
    : name(std::move(name)), cfg(cfg), portsPerCycle(accesses_per_cycle),
      nextLevel(next), lines(std::size_t{cfg.numSets()} * cfg.ways),
      port(accesses_per_cycle * kPortWindow, kPortWindow, cfg.fastPath),
      stats_(this->name)
{
    dtexl_assert(portsPerCycle > 0);
    dtexl_assert(cfg.numSets() > 0 && (cfg.numSets() &
                 (cfg.numSets() - 1)) == 0,
                 "set count must be a power of two");
    hot.read = &stats_.handle("read");
    hot.write = &stats_.handle("write");
    hot.readHit = &stats_.handle("read_hit");
    hot.writeHit = &stats_.handle("write_hit");
    hot.readMiss = &stats_.handle("read_miss");
    hot.writeMiss = &stats_.handle("write_miss");
    hot.hitUnderFill = &stats_.handle("hit_under_fill");
    hot.mshrStall = &stats_.handle("mshr_stall");
    hot.portStall = &stats_.handle("port_stall");
    hot.writeback = &stats_.handle("writeback");
    hot.writeValidate = &stats_.handle("write_validate");
    hot.prefetchIssued = &stats_.handle("prefetch_issued");
}

std::size_t
Cache::setIndex(Addr line_addr) const
{
    return (line_addr / cfg.lineBytes) & (cfg.numSets() - 1);
}

Cache::Line &
Cache::findVictim(std::size_t set)
{
    Line *victim = nullptr;
    for (std::uint32_t w = 0; w < cfg.ways; ++w) {
        Line &l = lines[set * cfg.ways + w];
        if (!l.valid)
            return l;
        if (!victim || l.lruStamp < victim->lruStamp)
            victim = &l;
    }
    return *victim;
}

void
Cache::purgeMshrs(Cycle now)
{
    // Retire intervals whose fill completed at or before `now`: the
    // occupancy scan only counts intervals with start <= t < fill at
    // query times t that never go below `now` (the retry loop only
    // advances), so a completed interval can never contribute again.
    // The previous oldest-first size-capped eviction could drop
    // still-in-flight intervals under MSHR pressure and under-count
    // occupancy across the prune boundary (see
    // Cache.PrunedIntervalsKeepBlocking).
    std::size_t keep = 0;
    for (std::size_t i = 0; i < mshrIntervals.size(); ++i) {
        if (mshrIntervals[i].fill > now)
            mshrIntervals[keep++] = mshrIntervals[i];
    }
    mshrIntervals.resize(keep);

    // Backstop for pathologically out-of-order access streams: only
    // in-flight intervals remain, so exceeding the cap means more
    // concurrent fills than the bounded history can distinguish.
    const std::size_t cap = std::size_t{cfg.numMshrs} * 8;
    if (mshrIntervals.size() > cap) {
        mshrIntervals.erase(mshrIntervals.begin(),
                            mshrIntervals.begin() +
                                static_cast<std::ptrdiff_t>(
                                    mshrIntervals.size() - cap));
    }
}

Cycle
Cache::acquireMshr(Cycle ready)
{
    // Purging is part of the model's semantics, not just a memory
    // bound: access times are out-of-order, so an interval dropped at
    // one access's (later) timestamp may have overlapped a subsequent
    // access's (earlier) timestamp. Both hot-path settings therefore
    // purge at exactly the same points — unconditionally, here.
    purgeMshrs(ready);
    if (cfg.fastPath) {
        // Early exit, bit-exact with the scan below: with fewer
        // retained intervals than MSHRs, every window the scan could
        // count is under capacity, so the access starts at `ready`.
        if (mshrIntervals.size() < cfg.numMshrs)
            return ready;
    }
    Cycle start = ready;
    for (;;) {
        std::uint32_t occupied = 0;
        Cycle next_free = kCycleNever;
        for (const MshrInterval &iv : mshrIntervals) {
            if (iv.start <= start && start < iv.fill) {
                ++occupied;
                next_free = std::min(next_free, iv.fill);
            }
        }
        if (occupied < cfg.numMshrs)
            break;
        ++*hot.mshrStall;
        start = next_free;
    }
    if (telemetry && start > ready)
        telemetry->span(ready, start, StallReason::MshrFull);
    return start;
}

Cycle
Cache::arbitratePort(Cycle now)
{
    bool stalled = false;
    const Cycle start = port.reserve(now, stalled);
    if (stalled)
        ++*hot.portStall;
    if (telemetry) {
        if (start > now)
            telemetry->span(now, start, StallReason::BankConflict);
        telemetry->busy(start, start + 1);
    }
    return start;
}

Cache::Line *
Cache::lookup(Addr line_addr, AccessType type)
{
    // One-entry last-hit filter: a line address lives in exactly one
    // way of exactly one set, so a tag match here returns precisely
    // the line the way loop below would find.
    if (cfg.fastPath && lastHit && lastHit->valid &&
        lastHit->tag == line_addr) {
        lastHit->lruStamp = ++lruCounter;
        if (type == AccessType::Write)
            lastHit->dirty = true;
        return lastHit;
    }
    const std::size_t set = setIndex(line_addr);
    for (std::uint32_t w = 0; w < cfg.ways; ++w) {
        Line &l = lines[set * cfg.ways + w];
        if (l.valid && l.tag == line_addr) {
            l.lruStamp = ++lruCounter;
            if (type == AccessType::Write)
                l.dirty = true;
            lastHit = &l;
            return &l;
        }
    }
    return nullptr;
}

Cycle
Cache::access(Addr addr, AccessType type, Cycle now)
{
    const Addr la = lineAddr(addr);
    ++*(type == AccessType::Read ? hot.read : hot.write);

    const Cycle start = arbitratePort(now);

    // One pending-fill lookup serves both the lazy retire and the
    // hit-under-fill check below (the double find showed in profiles).
    auto pending = pendingFills.find(la);
    if (pending != pendingFills.end() && pending->second <= start) {
        pendingFills.erase(pending);
        pending = pendingFills.end();
    }

    if (Line *line = lookup(la, type)) {
        (void)line;
        Cycle done = start + cfg.hitLatency;
        if (pending != pendingFills.end()) {
            ++*hot.hitUnderFill;
            done = std::max(done, pending->second);
        } else {
            ++*(type == AccessType::Read ? hot.readHit : hot.writeHit);
        }
        return done;
    }

    // Miss: allocate an MSHR and fetch the line from below.
    ++*(type == AccessType::Read ? hot.readMiss : hot.writeMiss);
    Cycle issue = acquireMshr(start) + cfg.hitLatency;

    const std::size_t set = setIndex(la);
    Line &victim = findVictim(set);
    if (victim.valid && victim.dirty) {
        ++*hot.writeback;
        nextLevel.access(victim.tag, AccessType::Write, issue);
    }
    if (victim.valid)
        pendingFills.erase(victim.tag);

    Cycle fill = nextLevel.access(la, AccessType::Read, issue);
    victim.valid = true;
    victim.tag = la;
    victim.dirty = (type == AccessType::Write);
    victim.lruStamp = ++lruCounter;
    lastHit = &victim;
    pendingFills[la] = fill;
    mshrIntervals.push_back({issue, fill});

    // Optional next-line prefetch: ride the demand miss with a fetch
    // of the following line (the next Morton block of the texture),
    // if it is not already resident or in flight.
    if (cfg.prefetchNextLine) {
        const Addr nla = la + cfg.lineBytes;
        if (!contains(nla) && pendingFills.find(nla) ==
                                  pendingFills.end()) {
            ++*hot.prefetchIssued;
            const Cycle pf_issue = acquireMshr(issue);
            Line &pf_victim = findVictim(setIndex(nla));
            if (pf_victim.valid && pf_victim.dirty) {
                ++*hot.writeback;
                nextLevel.access(pf_victim.tag, AccessType::Write,
                                 pf_issue);
            }
            if (pf_victim.valid)
                pendingFills.erase(pf_victim.tag);
            const Cycle pf_fill =
                nextLevel.access(nla, AccessType::Read, pf_issue);
            pf_victim.valid = true;
            pf_victim.tag = nla;
            pf_victim.dirty = false;
            pf_victim.lruStamp = ++lruCounter;
            pendingFills[nla] = pf_fill;
            mshrIntervals.push_back({pf_issue, pf_fill});
        }
    }
    return fill;
}

Cycle
Cache::writeLine(Addr addr, Cycle now)
{
    const Addr la = lineAddr(addr);
    ++*hot.write;

    const Cycle start = arbitratePort(now);
    if (lookup(la, AccessType::Write)) {
        ++*hot.writeHit;
        return start + cfg.hitLatency;
    }

    // Write-validate: the whole line is produced here, so no fill is
    // needed — allocate the tag and dirty it.
    ++*hot.writeValidate;
    const std::size_t set = setIndex(la);
    Line &victim = findVictim(set);
    if (victim.valid && victim.dirty) {
        ++*hot.writeback;
        nextLevel.access(victim.tag, AccessType::Write,
                         start + cfg.hitLatency);
    }
    if (victim.valid)
        pendingFills.erase(victim.tag);
    victim.valid = true;
    victim.tag = la;
    victim.dirty = true;
    victim.lruStamp = ++lruCounter;
    lastHit = &victim;
    return start + cfg.hitLatency;
}

bool
Cache::contains(Addr addr) const
{
    const Addr la = lineAddr(addr);
    const std::size_t set = setIndex(la);
    for (std::uint32_t w = 0; w < cfg.ways; ++w) {
        const Line &l = lines[set * cfg.ways + w];
        if (l.valid && l.tag == la)
            return true;
    }
    return false;
}

void
Cache::resetTiming()
{
    pendingFills.clear();
    mshrIntervals.clear();
    port.clear();
    // lastHit stays warm like the tags: it only short-circuits the
    // way loop, never changes its result.
}

void
Cache::saveWarmState(ByteWriter &w) const
{
    w.u64(lines.size());
    for (const Line &l : lines) {
        w.u64(l.tag);
        w.u8(static_cast<std::uint8_t>((l.valid ? 1 : 0) |
                                       (l.dirty ? 2 : 0)));
        w.u64(l.lruStamp);
    }
    w.u64(lruCounter);
}

void
Cache::restoreWarmState(ByteReader &r)
{
    const std::uint64_t count = r.u64();
    if (count != lines.size())
        throwIoError("cache '%s': checkpoint has %llu line(s), "
                     "geometry wants %zu",
                     name.c_str(),
                     static_cast<unsigned long long>(count),
                     lines.size());
    for (Line &l : lines) {
        l.tag = r.u64();
        const std::uint8_t flags = r.u8();
        l.valid = (flags & 1) != 0;
        l.dirty = (flags & 2) != 0;
        l.lruStamp = r.u64();
    }
    lruCounter = r.u64();
    lastHit = nullptr;
    resetTiming();
}

void
Cache::flushAll()
{
    for (Line &l : lines)
        l = Line{};
    pendingFills.clear();
    mshrIntervals.clear();
    lastHit = nullptr;
    lruCounter = 0;
    port.clear();
}

std::string
Cache::dumpInFlight() const
{
    std::string s = name + ": " +
                    std::to_string(pendingFills.size()) +
                    " pending fill(s), " +
                    std::to_string(mshrIntervals.size()) +
                    " MSHR interval(s)";
    Cycle last_fill = 0;
    for (const MshrInterval &iv : mshrIntervals)
        last_fill = std::max(last_fill, iv.fill);
    if (last_fill > 0)
        s += ", last fill at " + std::to_string(last_fill);
    return s;
}

} // namespace dtexl

#include "mem/dram.hh"

#include <algorithm>

#include "common/log.hh"

namespace dtexl {

Dram::Dram(const DramConfig &cfg)
    : cfg(cfg), banks(cfg.numBanks),
      channel(kChannelWindow,
              kChannelWindow *
                  std::max<Cycle>(1, 64 / cfg.bytesPerCycle),
              cfg.fastPath),
      stats_("dram")
{
    dtexl_assert(cfg.numBanks > 0 && cfg.rowBytes > 0);
    hot.read = &stats_.handle("read");
    hot.write = &stats_.handle("write");
    hot.rowHit = &stats_.handle("row_hit");
    hot.rowMiss = &stats_.handle("row_miss");
    hot.channelStall = &stats_.handle("channel_stall");
}

Cycle
Dram::access(Addr addr, AccessType type, Cycle now)
{
    ++*(type == AccessType::Read ? hot.read : hot.write);

    // XOR-folded bank hashing (standard in memory controllers) so
    // strided or Morton-patterned address streams spread over banks.
    const std::uint64_t row_linear = addr / cfg.rowBytes;
    const std::uint64_t fold = row_linear ^ (row_linear / cfg.numBanks) ^
                               (row_linear /
                                (std::uint64_t{cfg.numBanks} *
                                 cfg.numBanks));
    const std::size_t bank_idx = fold % cfg.numBanks;
    const std::uint64_t row_id = row_linear / cfg.numBanks;
    Bank &bank = banks[bank_idx];

    // Row state is tracked in simulation order: with out-of-order
    // access times this is an approximation of the open-row history.
    const bool row_hit = bank.rowOpen && bank.openRow == row_id;
    ++*(row_hit ? hot.rowHit : hot.rowMiss);

    // Open-row accesses occupy the bank for just the burst and
    // pipeline behind each other; a row miss also holds the bank for
    // the precharge+activate window.
    const Cycle burst = std::max<Cycle>(1, 64 / cfg.bytesPerCycle);
    const Cycle occupancy =
        burst + (row_hit ? 0 : cfg.rowMissLatency - cfg.rowHitLatency);
    Cycle start = bank.busy.reserve(now, occupancy);
    if (telemetry && start > now)
        telemetry->span(now, start, StallReason::BankConflict);

    bool stalled = false;
    const Cycle bank_start = start;
    start = channel.reserve(start, stalled);
    if (stalled)
        ++*hot.channelStall;
    if (telemetry) {
        if (start > bank_start)
            telemetry->span(bank_start, start, StallReason::ChannelBusy);
        telemetry->busy(start, start + burst);
    }

    const Cycle latency =
        row_hit ? cfg.rowHitLatency : cfg.rowMissLatency;
    const Cycle done = start + latency;
    bank.rowOpen = true;
    bank.openRow = row_id;
    return done;
}

void
Dram::reset()
{
    for (Bank &b : banks)
        b = Bank{};
    channel.clear();
}

} // namespace dtexl

/**
 * @file
 * The full memory hierarchy of the paper's Figure 5: per-SC L1 texture
 * caches, an L1 vertex cache, an L1 tile cache (parameter buffer and
 * framebuffer traffic), a shared L2, and DRAM.
 */

#ifndef DTEXL_MEM_HIERARCHY_HH
#define DTEXL_MEM_HIERARCHY_HH

#include <memory>
#include <vector>

#include "common/channel.hh"
#include "common/config.hh"
#include "common/fault_inject.hh"
#include "common/serial.hh"
#include "common/sim_error.hh"
#include "mem/cache.hh"
#include "mem/dram.hh"
#include "telemetry/telemetry.hh"

namespace dtexl {

/**
 * Channel endpoint between one pipeline's private L1 texture cache and
 * the shared L2: every texture-L1 miss (fill, write-back, prefetch)
 * crosses domain boundaries here. Serial execution forwards straight
 * through; when a DomainMerge is armed (the raster event loop is
 * partitioned into execution domains, core/exec_domain.hh), the gate
 * first waits until its domain holds the globally minimal event key,
 * so the shared L2/DRAM observe accesses in exactly the serial order.
 */
class L2Gate : public MemLevel
{
  public:
    explicit L2Gate(MemLevel &shared) : shared(shared) {}

    /** Arm the merge protocol for this gate's owning domain. */
    void
    arm(const DomainMerge *m, std::uint32_t domainIdx)
    {
        merge = m;
        domain = domainIdx;
    }

    void disarm() { merge = nullptr; }

    Cycle
    access(Addr addr, AccessType type, Cycle now) override
    {
        if (merge)
            merge->awaitTurn(domain);
        return shared.access(addr, type, now);
    }

  private:
    MemLevel &shared;
    const DomainMerge *merge = nullptr;
    std::uint32_t domain = 0;
};

/**
 * Owns and wires all memory levels. The number of L1 texture caches
 * follows GpuConfig::numPipelines (1 for the Figure 16 upper bound).
 */
class MemHierarchy
{
  public:
    explicit MemHierarchy(const GpuConfig &cfg);

    /** Texture read by shader core @p core. */
    Cycle
    textureRead(CoreId core, Addr addr, Cycle now)
    {
        // Fault harness: a dropped completion parks the requester on a
        // fill that never arrives; the forward-progress watchdog must
        // catch it (disarmed cost: one relaxed load).
        if (FaultInject::global().fire(FaultSite::DropMemCompletion))
            return kFaultStallCycle;
        return texL1s[core]->access(addr, AccessType::Read, now);
    }

    /** Vertex attribute fetch by the Geometry Pipeline. */
    Cycle
    vertexRead(Addr addr, Cycle now)
    {
        return vertexL1->access(addr, AccessType::Read, now);
    }

    /** Parameter-buffer / framebuffer traffic through the Tile Cache. */
    Cycle
    tileAccess(Addr addr, AccessType type, Cycle now)
    {
        return tileL1->access(addr, type, now);
    }

    Cache &textureCache(CoreId core) { return *texL1s[core]; }
    const Cache &textureCache(CoreId core) const { return *texL1s[core]; }
    /** Per-pipe L2 channel endpoint (execution-domain merge point). */
    L2Gate &textureL2Gate(std::uint32_t pipe) { return *texGates[pipe]; }
    Cache &vertexCache() { return *vertexL1; }
    Cache &tileCache() { return *tileL1; }
    Cache &l2() { return *l2Cache; }
    const Cache &l2() const { return *l2Cache; }
    Dram &dram() { return *dramModel; }
    const Dram &dram() const { return *dramModel; }
    std::size_t numTextureCaches() const { return texL1s.size(); }

    /** Total accesses reaching the shared L2 (the paper's key metric). */
    std::uint64_t l2Accesses() const { return l2Cache->accesses(); }

    /** In-flight miss state of every level (watchdog crash report). */
    std::string
    dumpInFlight() const
    {
        std::string s;
        for (const auto &l1 : texL1s)
            s += "  " + l1->dumpInFlight() + "\n";
        s += "  " + vertexL1->dumpInFlight() + "\n";
        s += "  " + tileL1->dumpInFlight() + "\n";
        s += "  " + l2Cache->dumpInFlight() + "\n";
        return s;
    }

    /**
     * Texture-block replication snapshot (the paper's Section II-B
     * mechanism): of the lines currently resident in the private L1
     * texture caches, the average number of L1s holding each distinct
     * line. 1.0 = no replication; up to numPipelines.
     */
    double textureReplicationFactor() const;

    /** Invalidate all cache contents and timing state (not stats). */
    void flushAll();

    /** Reset timing only, keeping contents warm (frame boundary). */
    void resetTiming();

    /**
     * Serialize every level's frame-boundary warm state in fixed order
     * (texture L1s, vertex L1, tile L1, L2). DRAM is excluded: it is
     * reset at every frame boundary and holds no warm state.
     */
    void
    saveWarmState(ByteWriter &w) const
    {
        w.u32(static_cast<std::uint32_t>(texL1s.size()));
        for (const auto &l1 : texL1s)
            l1->saveWarmState(w);
        vertexL1->saveWarmState(w);
        tileL1->saveWarmState(w);
        l2Cache->saveWarmState(w);
    }

    /** Inverse of saveWarmState(); throws SimError{Io} on mismatch. */
    void
    restoreWarmState(ByteReader &r)
    {
        const std::uint32_t count = r.u32();
        if (count != texL1s.size())
            throwIoError("checkpoint has %u texture L1(s), config "
                         "wants %zu",
                         count, texL1s.size());
        for (auto &l1 : texL1s)
            l1->restoreWarmState(r);
        vertexL1->restoreWarmState(r);
        tileL1->restoreWarmState(r);
        l2Cache->restoreWarmState(r);
        dramModel->reset();
    }

    /**
     * Wire every level's stall-attribution track (nullptr detaches).
     * The simulator arms this only around the raster phase, so
     * geometry-phase traffic is not attributed.
     */
    void
    attachTelemetry(Telemetry *t)
    {
        dramModel->setTelemetry(
            t ? &t->track(TelemetryUnit::Dram) : nullptr);
        l2Cache->setTelemetry(
            t ? &t->track(TelemetryUnit::L2) : nullptr);
        vertexL1->setTelemetry(
            t ? &t->track(TelemetryUnit::L1Vtx) : nullptr);
        tileL1->setTelemetry(
            t ? &t->track(TelemetryUnit::L1Tile) : nullptr);
        for (std::size_t i = 0; i < texL1s.size(); ++i)
            texL1s[i]->setTelemetry(
                t ? &t->track(texUnit(static_cast<std::uint32_t>(i)))
                  : nullptr);
    }

  private:
    std::unique_ptr<Dram> dramModel;
    std::unique_ptr<Cache> l2Cache;
    std::unique_ptr<Cache> vertexL1;
    std::unique_ptr<Cache> tileL1;
    /**
     * One gate per texture L1, interposed as its next level; the
     * vertex/tile L1s keep their direct L2 wiring because they are
     * only touched in the serial sections of the raster loop (tile
     * fetch, flush) and in the geometry phase's serial timed replay.
     */
    std::vector<std::unique_ptr<L2Gate>> texGates;
    std::vector<std::unique_ptr<Cache>> texL1s;
};

} // namespace dtexl

#endif // DTEXL_MEM_HIERARCHY_HH

/**
 * @file
 * Interface of one level of the simulated memory hierarchy.
 *
 * Timing uses completion futures: an access issued "now" returns the
 * cycle at which its data is available, after queueing behind the
 * level's bandwidth and (for misses) the levels below. This keeps the
 * pipeline model simple — a warp blocked on texture data just sleeps
 * until the returned cycle — while still modelling latency, bandwidth
 * and miss-status merging.
 */

#ifndef DTEXL_MEM_MEM_LEVEL_HH
#define DTEXL_MEM_MEM_LEVEL_HH

#include "common/types.hh"

namespace dtexl {

/** Kind of access, for stats and row-buffer policy. */
enum class AccessType { Read, Write };

/** One level (cache or DRAM) of the hierarchy. */
class MemLevel
{
  public:
    virtual ~MemLevel() = default;

    /**
     * Perform a timed access.
     *
     * @param addr Byte address (the level aligns it to its granule).
     * @param type Read or write.
     * @param now  Cycle at which the access is issued.
     * @return Cycle at which the access completes (data available /
     *         write retired). Never earlier than @p now.
     */
    virtual Cycle access(Addr addr, AccessType type, Cycle now) = 0;
};

} // namespace dtexl

#endif // DTEXL_MEM_MEM_LEVEL_HH

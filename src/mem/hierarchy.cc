#include "mem/hierarchy.hh"

#include <map>
#include <string>

namespace dtexl {

namespace {

/** Port widths: L1s are banked 4-wide; the shared L2 is dual-ported. */
constexpr std::uint32_t kL1Ports = 4;
constexpr std::uint32_t kL2Ports = 2;

} // namespace

MemHierarchy::MemHierarchy(const GpuConfig &cfg)
{
    // The master hot-path knob overrides the per-level selectors so
    // one GpuConfig bit flips the whole hierarchy for A/B validation.
    DramConfig dram_cfg = cfg.dram;
    dram_cfg.fastPath = cfg.simFastPath;
    CacheConfig l2_cfg = cfg.l2Cache;
    l2_cfg.fastPath = cfg.simFastPath;
    CacheConfig vtx_cfg = cfg.vertexCache;
    vtx_cfg.fastPath = cfg.simFastPath;
    CacheConfig tile_cfg = cfg.tileCache;
    tile_cfg.fastPath = cfg.simFastPath;

    dramModel = std::make_unique<Dram>(dram_cfg);
    l2Cache = std::make_unique<Cache>("l2", l2_cfg, kL2Ports,
                                      *dramModel);
    vertexL1 = std::make_unique<Cache>("l1vertex", vtx_cfg,
                                       kL1Ports, *l2Cache);
    tileL1 = std::make_unique<Cache>("l1tile", tile_cfg, kL1Ports,
                                     *l2Cache);
    texGates.reserve(cfg.numPipelines);
    texL1s.reserve(cfg.numPipelines);
    CacheConfig tex_cfg = cfg.textureCache;
    tex_cfg.fastPath = cfg.simFastPath;
    tex_cfg.prefetchNextLine |= cfg.texturePrefetch;
    for (std::uint32_t i = 0; i < cfg.numPipelines; ++i) {
        // Each texture L1 reaches the shared L2 through its own gate,
        // the merge point when the raster loop runs partitioned into
        // execution domains; disarmed it forwards straight through.
        texGates.push_back(std::make_unique<L2Gate>(*l2Cache));
        texL1s.push_back(std::make_unique<Cache>(
            "l1tex" + std::to_string(i), tex_cfg, kL1Ports,
            *texGates[i]));
    }
}

double
MemHierarchy::textureReplicationFactor() const
{
    std::map<Addr, std::uint32_t> copies;
    for (const auto &c : texL1s)
        c->forEachResident([&](Addr line) { ++copies[line]; });
    if (copies.empty())
        return 1.0;
    std::uint64_t total = 0;
    for (const auto &[line, n] : copies)
        total += n;
    return static_cast<double>(total) /
           static_cast<double>(copies.size());
}

void
MemHierarchy::resetTiming()
{
    for (auto &c : texL1s)
        c->resetTiming();
    vertexL1->resetTiming();
    tileL1->resetTiming();
    l2Cache->resetTiming();
    dramModel->reset();
}

void
MemHierarchy::flushAll()
{
    for (auto &c : texL1s)
        c->flushAll();
    vertexL1->flushAll();
    tileL1->flushAll();
    l2Cache->flushAll();
    dramModel->reset();
}

} // namespace dtexl

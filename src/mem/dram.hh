/**
 * @file
 * Banked DRAM with per-bank row buffers and a shared data channel.
 *
 * Substitute for DRAMSim2 (see DESIGN.md): Table II only constrains the
 * latency window (50-100 cycles); open-row accesses see the low bound,
 * row conflicts the high bound, and the channel enforces a bytes/cycle
 * bandwidth ceiling.
 */

#ifndef DTEXL_MEM_DRAM_HH
#define DTEXL_MEM_DRAM_HH

#include <deque>
#include <vector>

#include "common/config.hh"
#include "common/stats.hh"
#include "mem/mem_level.hh"
#include "mem/rate_window.hh"
#include "telemetry/unit_track.hh"

namespace dtexl {

/** Main memory: the bottom of the hierarchy. */
class Dram : public MemLevel
{
  public:
    explicit Dram(const DramConfig &cfg);

    Cycle access(Addr addr, AccessType type, Cycle now) override;

    const StatSet &stats() const { return stats_; }
    std::uint64_t accesses() const
    {
        return stats_.get("read") + stats_.get("write");
    }

    /** Reset bank/channel timing state (not the stats). */
    void reset();

    /**
     * Attach (or detach, with nullptr) the telemetry track: bank-busy
     * waits as BankConflict, channel waits as ChannelBusy, the burst
     * as busy cycles.
     */
    void setTelemetry(UnitTrack *t) { telemetry = t; }

  private:
    struct Bank
    {
        bool rowOpen = false;
        std::uint64_t openRow = 0;
        IntervalResource busy;
    };

    DramConfig cfg;
    std::vector<Bank> banks;
    /**
     * Channel occupancy: kChannelWindow transfers per kChannelWindow *
     * burst cycles, enforced out-of-order-tolerantly (see RateWindow).
     */
    static constexpr std::uint32_t kChannelWindow = 16;
    RateWindow channel;
    StatSet stats_;

    /**
     * Cached references into stats_ for the per-access counters (see
     * Cache::HotStats); DRAM stats are never cleared, so binding once
     * at construction is safe.
     */
    struct HotStats
    {
        std::uint64_t *read = nullptr;
        std::uint64_t *write = nullptr;
        std::uint64_t *rowHit = nullptr;
        std::uint64_t *rowMiss = nullptr;
        std::uint64_t *channelStall = nullptr;
    };
    HotStats hot;

    /** Stall/busy attribution sink; null (and inert) below level 1. */
    UnitTrack *telemetry = nullptr;
};

} // namespace dtexl

#endif // DTEXL_MEM_DRAM_HH

/**
 * @file
 * Bandwidth rate limiter tolerant of out-of-order reservation times.
 *
 * The pipeline model simulates components in code order, so accesses
 * reach a shared resource with non-monotonic timestamps. A monotonic
 * "next free cycle" cursor would falsely serialize a logically-early
 * access behind later ones; this limiter instead enforces the actual
 * bandwidth invariant — at most `capacity` reservations within any
 * `window`-cycle span — by searching the recorded start times.
 *
 * Two implementations live behind the `fast_path` constructor flag
 * (see CacheConfig::fastPath): the reference one keeps the history in
 * a std::deque exactly as originally written, the fast one keeps it
 * in a contiguous ring (a vector with a dead prefix) so the binary
 * search and window scans run on cache-friendly memory, with an O(1)
 * append check for the common in-order case. Both grant bit-identical
 * start cycles for any request sequence (tests/test_rate_window.cc,
 * tests/test_fastpath_equiv.cc).
 */

#ifndef DTEXL_MEM_RATE_WINDOW_HH
#define DTEXL_MEM_RATE_WINDOW_HH

#include <algorithm>
#include <deque>
#include <vector>

#include "common/log.hh"
#include "common/types.hh"

namespace dtexl {

/** Sliding-window bandwidth reservation. */
class RateWindow
{
  public:
    /**
     * @param capacity  Reservations allowed per window.
     * @param window    Window length in cycles.
     * @param fast_path Contiguous-storage implementation (default) or
     *                  the deque reference implementation.
     */
    RateWindow(std::uint32_t capacity, Cycle window,
               bool fast_path = true)
        : cap(capacity), win(window), fast(fast_path)
    {
        dtexl_assert(capacity > 0 && window > 0);
    }

    /**
     * Reserve a slot at the earliest cycle >= now satisfying the rate
     * invariant: no window of `win` cycles ever contains more than
     * `cap` reservations, counting reservations made both before and
     * after this one in simulation order (requests arrive with
     * out-of-order timestamps).
     *
     * @param now     Requested start cycle.
     * @param stalled Set true when the reservation had to be delayed.
     * @return Granted start cycle.
     */
    Cycle
    reserve(Cycle now, bool &stalled)
    {
        return fast ? reserveFast(now, stalled)
                    : reserveReference(now, stalled);
    }

    void
    clear()
    {
        starts.clear();
        ring.clear();
        head = 0;
    }

  private:
    /** Retained history, in windows behind the newest reservation. */
    static constexpr Cycle kHorizonWindows = 64;

    /** The original implementation, kept as the equivalence oracle. */
    Cycle
    reserveReference(Cycle now, bool &stalled)
    {
        // Bound the history by a time horizon: entries more than
        // kHorizonWindows windows older than the newest reservation
        // can no longer constrain any request we guarantee the
        // invariant for. Because granted density is at most cap/win,
        // this also bounds memory to ~kHorizonWindows * cap entries.
        if (!starts.empty()) {
            const Cycle newest = starts.back();
            const Cycle horizon = win * kHorizonWindows;
            while (!starts.empty() &&
                   starts.front() + horizon < newest) {
                starts.pop_front();
            }
        }

        stalled = false;
        Cycle start = now;
        for (;;) {
            // Inserting `start` must not create any run of cap+1
            // reservations spanning fewer than `win` cycles. Examine
            // every window of cap existing entries that could combine
            // with `start`.
            const auto pos = std::lower_bound(starts.begin(),
                                              starts.end(), start);
            const std::size_t idx =
                static_cast<std::size_t>(pos - starts.begin());
            bool violates = false;
            Cycle retry = start;
            // k = entries at or before `start` included in the run.
            for (std::size_t k = 0; k <= cap; ++k) {
                if (k > idx)
                    break;  // not enough earlier entries
                const std::size_t first = idx - k;
                const std::size_t last = first + cap;  // cap existing
                if (last > starts.size())
                    continue;  // not enough later entries
                // Run = entries [first, last) plus `start`.
                const Cycle run_first =
                    k > 0 ? std::min(starts[first], start) : start;
                const Cycle run_last =
                    last > first
                        ? std::max(starts[last - 1], start)
                        : start;
                if (run_last - run_first < win) {
                    violates = true;
                    // Escape past the earliest entry of the crowd.
                    retry = std::max(retry, run_first + win);
                }
            }
            if (!violates) {
                starts.insert(
                    std::lower_bound(starts.begin(), starts.end(),
                                     start),
                    start);
                return start;
            }
            stalled = true;
            dtexl_assert(retry > start, "rate window failed to advance");
            start = retry;
        }
    }

    /**
     * Same algorithm on contiguous storage: `ring` holds the sorted
     * history in [head, ring.size()), pruning advances `head`, and the
     * dead prefix is compacted in bulk. Appends (the in-order common
     * case) skip the binary search entirely.
     */
    Cycle
    reserveFast(Cycle now, bool &stalled)
    {
        const std::size_t live = ring.size() - head;
        if (live > 0) {
            const Cycle newest = ring.back();
            const Cycle horizon = win * kHorizonWindows;
            while (head < ring.size() &&
                   ring[head] + horizon < newest) {
                ++head;
            }
            // Compact once the dead prefix dominates; amortized O(1).
            if (head > 1024 && head * 2 > ring.size()) {
                ring.erase(ring.begin(),
                           ring.begin() +
                               static_cast<std::ptrdiff_t>(head));
                head = 0;
            }
        }

        stalled = false;
        const Cycle *base = ring.data() + head;
        Cycle start = now;
        {
            // Append fast path, O(1): with nothing after `start`, the
            // only candidate run the k loop below could flag is `start`
            // plus the newest `cap` entries (k = cap is the only k with
            // first + cap <= n), so the whole violation scan collapses
            // to one comparison against base[n - cap]. After one
            // advance to base[n - cap] + win the run spans exactly
            // `win` cycles — no violation — and `start` only grew, so
            // the append precondition still holds.
            const std::size_t n = ring.size() - head;
            if (n == 0 || start >= base[n - 1]) {
                if (n >= cap && start < base[n - cap] + win) {
                    stalled = true;
                    start = base[n - cap] + win;
                }
                ring.push_back(start);
                return start;
            }
        }
        for (;;) {
            const std::size_t n = ring.size() - head;
            // Append fast path: nothing after `start`, so the only
            // candidate run is `start` plus the newest cap entries.
            std::size_t idx;
            if (n == 0 || start >= base[n - 1]) {
                idx = n;
            } else {
                idx = static_cast<std::size_t>(
                    std::lower_bound(base, base + n, start) - base);
            }
            bool violates = false;
            Cycle retry = start;
            for (std::size_t k = 0; k <= cap; ++k) {
                if (k > idx)
                    break;
                const std::size_t first = idx - k;
                const std::size_t last = first + cap;
                if (last > n)
                    continue;
                const Cycle run_first =
                    k > 0 ? std::min(base[first], start) : start;
                const Cycle run_last =
                    last > first ? std::max(base[last - 1], start)
                                 : start;
                if (run_last - run_first < win) {
                    violates = true;
                    retry = std::max(retry, run_first + win);
                }
            }
            if (!violates) {
                if (idx == n) {
                    ring.push_back(start);
                } else {
                    ring.insert(ring.begin() +
                                    static_cast<std::ptrdiff_t>(
                                        head + idx),
                                start);
                }
                return start;
            }
            stalled = true;
            dtexl_assert(retry > start, "rate window failed to advance");
            start = retry;
        }
    }

    std::uint32_t cap;
    Cycle win;
    bool fast;
    std::deque<Cycle> starts;   ///< reference history, sorted
    std::vector<Cycle> ring;    ///< fast history; live part sorted
    std::size_t head = 0;       ///< first live entry of `ring`
};

/**
 * Single-server resource reserved for variable-length intervals, also
 * tolerant of out-of-order reservation times (used for DRAM banks: a
 * bank is occupied for a burst on a row hit, burst + activate on a
 * miss).
 */
class IntervalResource
{
  public:
    /**
     * Reserve the earliest interval of @p duration starting at or
     * after @p now that does not overlap an existing reservation.
     */
    Cycle
    reserve(Cycle now, Cycle duration)
    {
        dtexl_assert(duration > 0);
        while (busy.size() > 64)
            busy.pop_front();

        Cycle start = now;
        for (const auto &[s, e] : busy) {
            if (e <= start)
                continue;
            if (s >= start + duration)
                break;  // fits in the gap before this interval
            start = e;
        }
        // Insert sorted by start.
        auto it = std::lower_bound(
            busy.begin(), busy.end(), start,
            [](const std::pair<Cycle, Cycle> &iv, Cycle v) {
                return iv.first < v;
            });
        busy.insert(it, {start, start + duration});
        return start;
    }

    void clear() { busy.clear(); }

  private:
    /** Sorted, non-overlapping [start, end) reservations. */
    std::deque<std::pair<Cycle, Cycle>> busy;
};

} // namespace dtexl

#endif // DTEXL_MEM_RATE_WINDOW_HH

/**
 * @file
 * Set-associative write-back cache with LRU replacement and MSHRs.
 * Models all the L1 caches (Vertex, Texture x4, Tile) and the shared L2
 * of the paper's Figure 5 / Table II.
 */

#ifndef DTEXL_MEM_CACHE_HH
#define DTEXL_MEM_CACHE_HH

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/config.hh"
#include "common/stats.hh"
#include "mem/mem_level.hh"
#include "mem/rate_window.hh"
#include "telemetry/unit_track.hh"

namespace dtexl {

class ByteReader;
class ByteWriter;

/**
 * A timed cache level. Misses allocate an MSHR and fetch from the next
 * level; accesses to a line with a pending miss merge into its MSHR
 * (secondary misses cost no extra downstream traffic). Dirty victims
 * write back to the next level.
 */
class Cache : public MemLevel
{
  public:
    /**
     * @param name Stats prefix, e.g. "l1tex0".
     * @param cfg  Geometry and latency.
     * @param accesses_per_cycle Port throughput (banked caches >1).
     * @param next Lower level servicing misses and write-backs.
     */
    Cache(std::string name, const CacheConfig &cfg,
          std::uint32_t accesses_per_cycle, MemLevel &next);

    Cycle access(Addr addr, AccessType type, Cycle now) override;

    /**
     * Full-line streaming store (write-validate): allocates the line
     * and marks it dirty without fetching it from below, since every
     * byte is being written. Used for Color Buffer flushes of fully
     * covered lines.
     */
    Cycle writeLine(Addr addr, Cycle now);

    /**
     * Tag-only presence probe (no side effects, no timing). Used by
     * tests and by replication analysis.
     */
    bool contains(Addr addr) const;

    /**
     * Visit the line address of every valid resident line (no side
     * effects). Used by the replication analysis.
     */
    template <typename Fn>
    void
    forEachResident(Fn &&fn) const
    {
        for (const Line &l : lines)
            if (l.valid)
                fn(l.tag);
    }

    /** Drop all contents and pending state (not the stats). */
    void flushAll();

    /**
     * Reset timing state only (ports, MSHRs, pending fills), keeping
     * tag contents warm. Used between frames: each frame restarts its
     * cycle count at zero.
     */
    void resetTiming();

    /**
     * Serialize the frame-boundary warm state: tag array (tag, valid,
     * dirty, lruStamp per line) and the LRU clock. Timing state is
     * empty at a frame boundary (resetTiming()), so this is the whole
     * result-affecting state. Stats are excluded — the checkpoint
     * layer captures them registry-wide instead.
     */
    void saveWarmState(ByteWriter &w) const;

    /**
     * Inverse of saveWarmState(). Throws SimError{Io} when the payload
     * disagrees with this cache's geometry; leaves timing state reset
     * and the hit filter cold (both bit-exact no-ops).
     */
    void restoreWarmState(ByteReader &r);

    const StatSet &stats() const { return stats_; }
    StatSet &stats() { return stats_; }

    /**
     * One-line summary of in-flight miss state (pending fills and
     * MSHR intervals) for the watchdog's crash report.
     */
    std::string dumpInFlight() const;

    /**
     * Attach (or detach, with nullptr) the telemetry track this cache
     * attributes cycles into: port-arbitration gaps as BankConflict,
     * MSHR waits as MshrFull, one busy cycle per accepted access.
     */
    void setTelemetry(UnitTrack *t) { telemetry = t; }

    std::uint64_t reads() const { return stats_.get("read"); }
    std::uint64_t writes() const { return stats_.get("write"); }
    std::uint64_t accesses() const { return reads() + writes(); }
    std::uint64_t misses() const
    {
        return stats_.get("read_miss") + stats_.get("write_miss");
    }
    double
    missRate() const
    {
        std::uint64_t a = accesses();
        return a == 0 ? 0.0 : static_cast<double>(misses()) /
                              static_cast<double>(a);
    }

  private:
    struct Line
    {
        Addr tag = 0;
        bool valid = false;
        bool dirty = false;
        std::uint64_t lruStamp = 0;
    };

    Addr lineAddr(Addr a) const { return a & ~Addr{cfg.lineBytes - 1}; }
    std::size_t setIndex(Addr line_addr) const;
    Line &findVictim(std::size_t set);

    /** Reserve an MSHR; returns the cycle the access may start. */
    Cycle acquireMshr(Cycle ready);
    /** Retire interval history that can no longer block any access. */
    void purgeMshrs(Cycle now);
    /** Port arbitration; returns the access start cycle. */
    Cycle arbitratePort(Cycle now);
    /** Tag lookup + LRU/dirty update; null if not resident. */
    Line *lookup(Addr line_addr, AccessType type);

    std::string name;
    CacheConfig cfg;
    std::uint32_t portsPerCycle;
    MemLevel &nextLevel;

    std::vector<Line> lines;      ///< numSets * ways, set-major
    std::uint64_t lruCounter = 0;

    /**
     * One-entry most-recently-hit filter checked in front of the way
     * loop (fast path only). A line address lives in exactly one way
     * of exactly one set, so a tag match here returns precisely the
     * line the way loop would find — bit-exact by construction.
     */
    Line *lastHit = nullptr;

    /**
     * Pending line fills: line address -> fill completion cycle. Only
     * ever point-queried (find/erase/insert), so the hash container is
     * invisible to results; it replaces a std::map that showed up in
     * profiles at one find per access.
     */
    std::unordered_map<Addr, Cycle> pendingFills;

    /**
     * In-flight miss intervals [start, fill). MSHR capacity is
     * enforced by interval overlap at the access's own issue time, so
     * an access that logically precedes already-simulated misses is
     * not falsely blocked by them (the sequential pipeline model
     * produces out-of-order issue times).
     */
    struct MshrInterval
    {
        Cycle start;
        Cycle fill;
    };
    std::vector<MshrInterval> mshrIntervals;

    /**
     * Port occupancy: portsPerCycle * kPortWindow accesses per
     * kPortWindow-cycle span, enforced out-of-order-tolerantly (see
     * RateWindow).
     */
    static constexpr std::uint32_t kPortWindow = 8;
    RateWindow port;

    StatSet stats_;

    /**
     * Cached references into stats_ for the per-access counters,
     * bound once at construction (cache stats are never cleared), so
     * the hot path skips the string-keyed map lookup. Binding happens
     * under both hot-path settings, so both expose the same key set.
     */
    struct HotStats
    {
        std::uint64_t *read = nullptr;
        std::uint64_t *write = nullptr;
        std::uint64_t *readHit = nullptr;
        std::uint64_t *writeHit = nullptr;
        std::uint64_t *readMiss = nullptr;
        std::uint64_t *writeMiss = nullptr;
        std::uint64_t *hitUnderFill = nullptr;
        std::uint64_t *mshrStall = nullptr;
        std::uint64_t *portStall = nullptr;
        std::uint64_t *writeback = nullptr;
        std::uint64_t *writeValidate = nullptr;
        std::uint64_t *prefetchIssued = nullptr;
    };
    HotStats hot;

    /** Stall/busy attribution sink; null (and inert) below level 1. */
    UnitTrack *telemetry = nullptr;
};

} // namespace dtexl

#endif // DTEXL_MEM_CACHE_HH

/**
 * @file
 * The Primitive Assembler (Figure 3): joins transformed vertices into
 * triangles in program order, culls trivially-invisible ones, and
 * computes each primitive's sampling level of detail.
 */

#ifndef DTEXL_GEOM_PRIM_ASSEMBLER_HH
#define DTEXL_GEOM_PRIM_ASSEMBLER_HH

#include <vector>

#include "common/config.hh"
#include "geom/primitive.hh"

namespace dtexl {

/** Assembles the primitive stream of a frame across draws. */
class PrimAssembler
{
  public:
    explicit PrimAssembler(const GpuConfig &cfg) : cfg(cfg) {}

    /**
     * Assemble the triangles of one draw and append them to @p out.
     *
     * @param draw         Source draw (indices, shader, texture).
     * @param transformed  Output of the Vertex Stage for this draw.
     * @param texture_side Side of the bound texture, for LOD setup.
     * @param out          Frame primitive list (appended in order).
     * @return Number of primitives emitted (after culling).
     */
    std::size_t assemble(const DrawCommand &draw,
                         const std::vector<TransformedVertex> &transformed,
                         std::uint32_t texture_side,
                         std::vector<Primitive> &out);

    std::uint64_t culled() const { return culledCount; }

    /**
     * LOD from the uv-to-screen mapping: log2 of the texel footprint of
     * one pixel step, clamped at 0 (magnification samples mip 0).
     */
    static float computeLod(const Primitive &prim,
                            std::uint32_t texture_side);

  private:
    const GpuConfig &cfg;
    PrimId nextId = 0;
    std::uint64_t culledCount = 0;
};

} // namespace dtexl

#endif // DTEXL_GEOM_PRIM_ASSEMBLER_HH

/**
 * @file
 * The Vertex Stage of the Geometry Pipeline (Figure 3): fetches vertex
 * attributes through the L1 Vertex Cache, applies the draw's transform,
 * and maps clip space to screen space.
 */

#ifndef DTEXL_GEOM_VERTEX_STAGE_HH
#define DTEXL_GEOM_VERTEX_STAGE_HH

#include <vector>

#include "common/config.hh"
#include "geom/vertex.hh"
#include "mem/hierarchy.hh"

namespace dtexl {

/**
 * Timed vertex processing. One instance per GPU; it advances a cycle
 * cursor as it consumes draws, so the geometry phase contributes its
 * real cost to the frame time.
 *
 * The stage walks the index stream, as hardware does, with a FIFO
 * post-transform cache: an index hit reuses the transformed vertex, a
 * miss fetches the attributes through the L1 Vertex Cache and runs the
 * vertex program.
 */
class VertexStage
{
  public:
    VertexStage(const GpuConfig &cfg, MemHierarchy &mem)
        : cfg(cfg), mem(mem)
    {}

    /**
     * Process the index stream of a draw.
     *
     * @param draw The draw command.
     * @param now  Cycle at which processing may start.
     * @param out  Transformed vertices, indexed like draw.vertices.
     * @return Cycle at which the last vertex is ready.
     */
    Cycle processDraw(const DrawCommand &draw, Cycle now,
                      std::vector<TransformedVertex> &out);

    /** Vertex-program invocations (post-transform-cache misses). */
    std::uint64_t verticesProcessed() const { return vertexCount; }
    /** Index-stream entries that reused a transformed vertex. */
    std::uint64_t transformsReused() const { return reuseCount; }

    /** Entries in the FIFO post-transform cache. */
    static constexpr std::size_t kPostTransformEntries = 16;

  private:
    /** Cycles the vector unit spends transforming one vertex. */
    static constexpr Cycle kTransformCost = 4;

    const GpuConfig &cfg;
    MemHierarchy &mem;
    std::uint64_t vertexCount = 0;
    std::uint64_t reuseCount = 0;
};

} // namespace dtexl

#endif // DTEXL_GEOM_VERTEX_STAGE_HH

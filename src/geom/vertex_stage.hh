/**
 * @file
 * The Vertex Stage of the Geometry Pipeline (Figure 3): fetches vertex
 * attributes through the L1 Vertex Cache, applies the draw's transform,
 * and maps clip space to screen space.
 *
 * The stage is split into pure and timed halves so the parallel
 * front-end (core/geometry_phase.cc) can fan the pure work out across
 * threads and replay only the timed memory traffic serially:
 *  - shadeSequence(): which indices get shaded, in stream order — a
 *    pure function of the index stream (the FIFO post-transform cache
 *    hits/misses do not depend on timing);
 *  - transformVertex(): the floating-point vertex program;
 *  - replayTiming(): the timed attribute fetches and transform-cost
 *    cursor arithmetic for a precomputed shade sequence.
 * processDraw() composes all three, so the serial path and the
 * parallel path execute identical arithmetic by construction.
 */

#ifndef DTEXL_GEOM_VERTEX_STAGE_HH
#define DTEXL_GEOM_VERTEX_STAGE_HH

#include <vector>

#include "common/config.hh"
#include "geom/vertex.hh"
#include "mem/hierarchy.hh"

namespace dtexl {

/**
 * Timed vertex processing. One instance per GPU; it advances a cycle
 * cursor as it consumes draws, so the geometry phase contributes its
 * real cost to the frame time.
 *
 * The stage walks the index stream, as hardware does, with a FIFO
 * post-transform cache: an index hit reuses the transformed vertex, a
 * miss fetches the attributes through the L1 Vertex Cache and runs the
 * vertex program.
 */
class VertexStage
{
  public:
    VertexStage(const GpuConfig &cfg, MemHierarchy &mem)
        : cfg(cfg), mem(mem)
    {}

    /**
     * Process the index stream of a draw.
     *
     * @param draw The draw command.
     * @param now  Cycle at which processing may start.
     * @param out  Transformed vertices, indexed like draw.vertices.
     * @return Cycle at which the last vertex is ready.
     */
    Cycle processDraw(const DrawCommand &draw, Cycle now,
                      std::vector<TransformedVertex> &out);

    /**
     * The vertex indices that run the vertex program for this draw, in
     * stream order (post-transform-cache misses), plus the number of
     * stream entries that reuse a cached transform. Pure: independent
     * of timing and of any VertexStage instance state.
     */
    static void shadeSequence(const DrawCommand &draw,
                              std::vector<std::uint32_t> &order,
                              std::uint64_t &reuse);

    /** The vertex program: transform + viewport mapping. Pure. */
    static TransformedVertex transformVertex(const GpuConfig &cfg,
                                             const DrawCommand &draw,
                                             std::uint32_t i);

    /**
     * Replay the timed part of a draw whose shade sequence was
     * precomputed with shadeSequence(): the Vertex Cache attribute
     * fetches and the per-vertex transform cost, with cursor
     * arithmetic identical to processDraw(). Updates the stage's
     * shade/reuse counters.
     *
     * @return Cycle at which the last vertex is ready.
     */
    Cycle replayTiming(const DrawCommand &draw,
                       const std::vector<std::uint32_t> &order,
                       std::uint64_t reuse, Cycle now);

    /** Vertex-program invocations (post-transform-cache misses). */
    std::uint64_t verticesProcessed() const { return vertexCount; }
    /** Index-stream entries that reused a transformed vertex. */
    std::uint64_t transformsReused() const { return reuseCount; }

    /** Entries in the FIFO post-transform cache. */
    static constexpr std::size_t kPostTransformEntries = 16;

  private:
    /** Cycles the vector unit spends transforming one vertex. */
    static constexpr Cycle kTransformCost = 4;

    const GpuConfig &cfg;
    MemHierarchy &mem;
    std::uint64_t vertexCount = 0;
    std::uint64_t reuseCount = 0;
    /** processDraw() scratch (capacity persists across draws). */
    std::vector<std::uint32_t> orderScratch;
};

} // namespace dtexl

#endif // DTEXL_GEOM_VERTEX_STAGE_HH

/**
 * @file
 * Screen-space primitives: the unit the Tiling Engine bins and the
 * Rasterizer consumes.
 */

#ifndef DTEXL_GEOM_PRIMITIVE_HH
#define DTEXL_GEOM_PRIMITIVE_HH

#include <algorithm>
#include <cstdint>

#include "common/types.hh"
#include "geom/vertex.hh"

namespace dtexl {

/**
 * A screen-space triangle with interpolation setup, the shader program
 * that shades its fragments, and its submission-order id (the Raster
 * Pipeline must shade primitives in this order within a tile).
 */
struct Primitive
{
    PrimId id = 0;
    TransformedVertex v[3];
    TextureId texture = 0;
    ShaderDesc shader;
    /** Level-of-detail the sampler uses (from the uv-to-screen scale). */
    float lod = 0.0f;

    float minX() const
    {
        return std::min({v[0].screen.x, v[1].screen.x, v[2].screen.x});
    }
    float maxX() const
    {
        return std::max({v[0].screen.x, v[1].screen.x, v[2].screen.x});
    }
    float minY() const
    {
        return std::min({v[0].screen.y, v[1].screen.y, v[2].screen.y});
    }
    float maxY() const
    {
        return std::max({v[0].screen.y, v[1].screen.y, v[2].screen.y});
    }

    /** Twice the signed screen-space area. */
    float
    signedArea2() const
    {
        const Vec2f e0 = v[1].screen - v[0].screen;
        const Vec2f e1 = v[2].screen - v[0].screen;
        return cross2(e0, e1);
    }
};

} // namespace dtexl

#endif // DTEXL_GEOM_PRIMITIVE_HH

/**
 * @file
 * Minimal vector/matrix math for the Geometry Pipeline: 2/3/4-component
 * float vectors and 4x4 matrices (row-major), just enough for vertex
 * transforms, viewport mapping and barycentric setup.
 */

#ifndef DTEXL_GEOM_VEC_HH
#define DTEXL_GEOM_VEC_HH

#include <array>
#include <cmath>

namespace dtexl {

struct Vec2f
{
    float x = 0.0f;
    float y = 0.0f;

    Vec2f operator+(const Vec2f &o) const { return {x + o.x, y + o.y}; }
    Vec2f operator-(const Vec2f &o) const { return {x - o.x, y - o.y}; }
    Vec2f operator*(float s) const { return {x * s, y * s}; }
    bool operator==(const Vec2f &o) const = default;
};

struct Vec3f
{
    float x = 0.0f;
    float y = 0.0f;
    float z = 0.0f;

    Vec3f operator+(const Vec3f &o) const
    {
        return {x + o.x, y + o.y, z + o.z};
    }
    Vec3f operator-(const Vec3f &o) const
    {
        return {x - o.x, y - o.y, z - o.z};
    }
    Vec3f operator*(float s) const { return {x * s, y * s, z * s}; }
    bool operator==(const Vec3f &o) const = default;
};

struct Vec4f
{
    float x = 0.0f;
    float y = 0.0f;
    float z = 0.0f;
    float w = 1.0f;

    bool operator==(const Vec4f &o) const = default;
};

inline float dot(const Vec2f &a, const Vec2f &b)
{
    return a.x * b.x + a.y * b.y;
}

inline float dot(const Vec3f &a, const Vec3f &b)
{
    return a.x * b.x + a.y * b.y + a.z * b.z;
}

/** 2D cross product (signed parallelogram area / edge function). */
inline float cross2(const Vec2f &a, const Vec2f &b)
{
    return a.x * b.y - a.y * b.x;
}

/** Row-major 4x4 matrix. */
struct Mat4
{
    std::array<float, 16> m{};

    static Mat4
    identity()
    {
        Mat4 r;
        r.m[0] = r.m[5] = r.m[10] = r.m[15] = 1.0f;
        return r;
    }

    /** Translation by (tx, ty, tz). */
    static Mat4
    translate(float tx, float ty, float tz)
    {
        Mat4 r = identity();
        r.m[3] = tx;
        r.m[7] = ty;
        r.m[11] = tz;
        return r;
    }

    /** Non-uniform scale. */
    static Mat4
    scale(float sx, float sy, float sz)
    {
        Mat4 r;
        r.m[0] = sx;
        r.m[5] = sy;
        r.m[10] = sz;
        r.m[15] = 1.0f;
        return r;
    }

    Vec4f
    apply(const Vec4f &v) const
    {
        return {
            m[0] * v.x + m[1] * v.y + m[2] * v.z + m[3] * v.w,
            m[4] * v.x + m[5] * v.y + m[6] * v.z + m[7] * v.w,
            m[8] * v.x + m[9] * v.y + m[10] * v.z + m[11] * v.w,
            m[12] * v.x + m[13] * v.y + m[14] * v.z + m[15] * v.w,
        };
    }

    Mat4
    operator*(const Mat4 &o) const
    {
        Mat4 r;
        for (int i = 0; i < 4; ++i) {
            for (int j = 0; j < 4; ++j) {
                float s = 0.0f;
                for (int k = 0; k < 4; ++k)
                    s += m[i * 4 + k] * o.m[k * 4 + j];
                r.m[i * 4 + j] = s;
            }
        }
        return r;
    }
};

} // namespace dtexl

#endif // DTEXL_GEOM_VEC_HH

#include "geom/prim_assembler.hh"

#include <cmath>

#include "common/log.hh"

namespace dtexl {

float
PrimAssembler::computeLod(const Primitive &prim, std::uint32_t texture_side)
{
    // Affine uv gradient over screen space from the triangle's three
    // vertices: solve  d(uv)/d(screen)  and take the larger axis.
    const Vec2f p0 = prim.v[0].screen;
    const Vec2f e1 = prim.v[1].screen - p0;
    const Vec2f e2 = prim.v[2].screen - p0;
    const float det = cross2(e1, e2);
    if (det == 0.0f)
        return 0.0f;
    const float inv_det = 1.0f / det;
    const Vec2f t1 = prim.v[1].uv - prim.v[0].uv;
    const Vec2f t2 = prim.v[2].uv - prim.v[0].uv;
    // du/dx etc. via the inverse of the 2x2 screen-edge matrix.
    const float dudx = (t1.x * e2.y - t2.x * e1.y) * inv_det;
    const float dudy = (t2.x * e1.x - t1.x * e2.x) * inv_det;
    const float dvdx = (t1.y * e2.y - t2.y * e1.y) * inv_det;
    const float dvdy = (t2.y * e1.x - t1.y * e2.x) * inv_det;
    const float s = static_cast<float>(texture_side);
    const float fx = std::sqrt(dudx * dudx + dvdx * dvdx) * s;
    const float fy = std::sqrt(dudy * dudy + dvdy * dvdy) * s;
    const float rho = std::max(fx, fy);
    if (rho <= 1.0f)
        return 0.0f;
    return std::log2(rho);
}

std::size_t
PrimAssembler::assemble(const DrawCommand &draw,
                        const std::vector<TransformedVertex> &transformed,
                        std::uint32_t texture_side,
                        std::vector<Primitive> &out)
{
    dtexl_assert(draw.indices.size() % 3 == 0,
                 "triangle list must have 3N indices");
    const float w = static_cast<float>(cfg.screenWidth);
    const float h = static_cast<float>(cfg.screenHeight);

    std::size_t emitted = 0;
    for (std::size_t i = 0; i + 2 < draw.indices.size(); i += 3) {
        Primitive prim;
        for (int k = 0; k < 3; ++k) {
            const std::uint32_t idx = draw.indices[i + k];
            dtexl_assert(idx < transformed.size(),
                         "index out of range");
            prim.v[k] = transformed[idx];
        }
        // Trivial culls: degenerate area, fully offscreen bbox.
        if (prim.signedArea2() == 0.0f ||
            prim.maxX() <= 0.0f || prim.minX() >= w ||
            prim.maxY() <= 0.0f || prim.minY() >= h) {
            ++culledCount;
            continue;
        }
        prim.id = nextId++;
        prim.texture = draw.texture;
        prim.shader = draw.shader;
        prim.lod = computeLod(prim, texture_side);
        out.push_back(prim);
        ++emitted;
    }
    return emitted;
}

} // namespace dtexl

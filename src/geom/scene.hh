/**
 * @file
 * A renderable scene: the draw commands of one frame plus the texture
 * table they reference. Produced by the workload generators, consumed
 * by the GPU simulator.
 */

#ifndef DTEXL_GEOM_SCENE_HH
#define DTEXL_GEOM_SCENE_HH

#include <vector>

#include "common/log.hh"
#include "geom/vertex.hh"
#include "texture/texture.hh"

namespace dtexl {

/** Frame input: draws in submission order + bound textures. */
struct Scene
{
    std::vector<DrawCommand> draws;
    std::vector<TextureDesc> textures;  ///< indexed by TextureId

    const TextureDesc &
    texture(TextureId id) const
    {
        dtexl_assert(id < textures.size(), "unknown texture id %u", id);
        return textures[id];
    }

    /** Total texture footprint in bytes (mip chains included). */
    std::uint64_t
    textureFootprintBytes() const
    {
        std::uint64_t total = 0;
        for (const auto &t : textures)
            total += t.totalBytes();
        return total;
    }
};

} // namespace dtexl

#endif // DTEXL_GEOM_SCENE_HH

#include "geom/vertex_stage.hh"

#include <algorithm>
#include <array>

namespace dtexl {

void
VertexStage::shadeSequence(const DrawCommand &draw,
                           std::vector<std::uint32_t> &order,
                           std::uint64_t &reuse)
{
    order.clear();
    reuse = 0;

    // Hardware walks the index stream; non-indexed access to unused
    // vertices never happens.
    if (draw.indices.empty()) {
        order.reserve(draw.vertices.size());
        for (std::uint32_t i = 0; i < draw.vertices.size(); ++i)
            order.push_back(i);
        return;
    }

    // FIFO post-transform cache of recently shaded indices, kept in a
    // fixed ring (capacity is a compile-time constant): overwriting
    // the oldest slot when full is push_back + pop_front, and
    // membership only needs the live set, not its order.
    std::array<std::uint32_t, kPostTransformEntries> ptc;
    std::size_t ptcHead = 0;  // next slot to overwrite
    std::size_t ptcSize = 0;
    for (std::uint32_t idx : draw.indices) {
        bool hit = false;
        for (std::size_t k = 0; k < ptcSize; ++k) {
            if (ptc[k] == idx) {
                hit = true;
                break;
            }
        }
        if (hit) {
            ++reuse;
            continue;
        }
        // Miss: the vertex program runs (idempotent, so re-shading an
        // index evicted from the FIFO is functionally harmless and
        // pays the realistic re-fetch + re-transform cost).
        order.push_back(idx);
        ptc[ptcHead] = idx;
        ptcHead = (ptcHead + 1) % kPostTransformEntries;
        ptcSize = std::min(ptcSize + 1, kPostTransformEntries);
    }
}

TransformedVertex
VertexStage::transformVertex(const GpuConfig &cfg,
                             const DrawCommand &draw, std::uint32_t i)
{
    const float half_w = static_cast<float>(cfg.screenWidth) * 0.5f;
    const float half_h = static_cast<float>(cfg.screenHeight) * 0.5f;

    const Vertex &v = draw.vertices[i];
    const Vec4f clip = draw.transform.apply(v.pos);
    const float inv_w = clip.w != 0.0f ? 1.0f / clip.w : 1.0f;

    TransformedVertex tv;
    tv.screen.x = (clip.x * inv_w * 0.5f + 0.5f) * 2.0f * half_w;
    tv.screen.y = (clip.y * inv_w * 0.5f + 0.5f) * 2.0f * half_h;
    tv.depth = std::clamp(clip.z * inv_w * 0.5f + 0.5f, 0.0f, 1.0f);
    tv.uv = v.uv;
    return tv;
}

Cycle
VertexStage::replayTiming(const DrawCommand &draw,
                          const std::vector<std::uint32_t> &order,
                          std::uint64_t reuse, Cycle now)
{
    Cycle cursor = now;
    for (std::uint32_t i : order) {
        // Attribute fetch through the Vertex Cache; a vertex record may
        // straddle a line boundary, touch both lines.
        const Addr a = draw.vertexBufferAddr + i * kVertexFetchBytes;
        Cycle data = mem.vertexRead(a, cursor);
        const Addr last = a + kVertexFetchBytes - 1;
        if ((a / cfg.vertexCache.lineBytes) !=
            (last / cfg.vertexCache.lineBytes)) {
            data = std::max(data, mem.vertexRead(last, cursor));
        }
        cursor = std::max(data, cursor + kTransformCost);
        ++vertexCount;
    }
    reuseCount += reuse;
    return cursor;
}

Cycle
VertexStage::processDraw(const DrawCommand &draw, Cycle now,
                         std::vector<TransformedVertex> &out)
{
    out.clear();
    out.resize(draw.vertices.size());

    std::uint64_t reuse = 0;
    shadeSequence(draw, orderScratch, reuse);
    for (std::uint32_t i : orderScratch)
        out[i] = transformVertex(cfg, draw, i);
    return replayTiming(draw, orderScratch, reuse, now);
}

} // namespace dtexl

#include "geom/vertex_stage.hh"

#include <algorithm>
#include <deque>

namespace dtexl {

Cycle
VertexStage::processDraw(const DrawCommand &draw, Cycle now,
                         std::vector<TransformedVertex> &out)
{
    out.clear();
    out.resize(draw.vertices.size());

    Cycle cursor = now;
    const float half_w = static_cast<float>(cfg.screenWidth) * 0.5f;
    const float half_h = static_cast<float>(cfg.screenHeight) * 0.5f;

    // FIFO post-transform cache of recently shaded indices.
    std::deque<std::uint32_t> ptc;
    auto in_ptc = [&](std::uint32_t idx) {
        return std::find(ptc.begin(), ptc.end(), idx) != ptc.end();
    };

    auto shade = [&](std::uint32_t i) {
        // Attribute fetch through the Vertex Cache; a vertex record may
        // straddle a line boundary, touch both lines.
        const Addr a = draw.vertexBufferAddr + i * kVertexFetchBytes;
        Cycle data = mem.vertexRead(a, cursor);
        const Addr last = a + kVertexFetchBytes - 1;
        if ((a / cfg.vertexCache.lineBytes) !=
            (last / cfg.vertexCache.lineBytes)) {
            data = std::max(data, mem.vertexRead(last, cursor));
        }

        const Vertex &v = draw.vertices[i];
        const Vec4f clip = draw.transform.apply(v.pos);
        const float inv_w = clip.w != 0.0f ? 1.0f / clip.w : 1.0f;

        TransformedVertex tv;
        tv.screen.x = (clip.x * inv_w * 0.5f + 0.5f) * 2.0f * half_w;
        tv.screen.y = (clip.y * inv_w * 0.5f + 0.5f) * 2.0f * half_h;
        tv.depth = std::clamp(clip.z * inv_w * 0.5f + 0.5f, 0.0f, 1.0f);
        tv.uv = v.uv;
        out[i] = tv;

        cursor = std::max(data, cursor + kTransformCost);
        ++vertexCount;

        ptc.push_back(i);
        if (ptc.size() > kPostTransformEntries)
            ptc.pop_front();
    };

    // Hardware walks the index stream; non-indexed access to unused
    // vertices never happens.
    if (draw.indices.empty()) {
        for (std::uint32_t i = 0; i < draw.vertices.size(); ++i)
            shade(i);
        return cursor;
    }
    for (std::uint32_t idx : draw.indices) {
        if (in_ptc(idx)) {
            ++reuseCount;
            continue;
        }
        // Miss: run the vertex program (idempotent, so re-shading an
        // index evicted from the FIFO is functionally harmless and
        // pays the realistic re-fetch + re-transform cost).
        shade(idx);
    }
    return cursor;
}

} // namespace dtexl

/**
 * @file
 * Vertex and draw-command input of the Graphics Pipeline (Figure 3).
 */

#ifndef DTEXL_GEOM_VERTEX_HH
#define DTEXL_GEOM_VERTEX_HH

#include <cstdint>
#include <vector>

#include "geom/vec.hh"
#include "texture/sampler.hh"
#include "texture/texture.hh"

namespace dtexl {

/** An input vertex: clip-space position plus texture coordinates. */
struct Vertex
{
    Vec4f pos;  ///< clip-space position (w = 1: affine content)
    Vec2f uv;   ///< texture coordinates
};

/** Bytes fetched per vertex through the Vertex Cache (pos + uv). */
inline constexpr std::uint32_t kVertexFetchBytes = 24;

/**
 * Per-draw fragment-shader characterisation: the synthetic stand-in for
 * a real shader program (see DESIGN.md substitutions). The Fragment
 * Stage models it as alu_ops scalar instructions plus tex_samples
 * texture instructions per fragment.
 */
struct ShaderDesc
{
    std::uint16_t aluOps = 16;      ///< non-memory instructions/fragment
    std::uint8_t texSamples = 1;    ///< texture instructions/fragment
    FilterMode filter = FilterMode::Bilinear;
    bool blends = false;            ///< transparent: cannot early-Z cull
    /**
     * Shader writes gl_FragDepth: Early-Z must be disabled and the
     * Late Z-Test used for the whole tile (Section II-C).
     */
    bool modifiesDepth = false;
};

/**
 * A draw command: an indexed triangle list with one bound texture, a
 * model transform and a shader characterisation. Triggers the Geometry
 * Pipeline (Section II-A).
 */
struct DrawCommand
{
    std::vector<Vertex> vertices;
    std::vector<std::uint32_t> indices;  ///< triangle list, 3 per tri
    Mat4 transform = Mat4::identity();
    TextureId texture = 0;
    ShaderDesc shader;
    Addr vertexBufferAddr = 0;  ///< where the vertex data lives in memory
};

/** A vertex after transform + viewport mapping. */
struct TransformedVertex
{
    Vec2f screen;  ///< pixel coordinates
    float depth = 0.0f;
    Vec2f uv;
};

} // namespace dtexl

#endif // DTEXL_GEOM_VERTEX_HH

#include "serve/daemon.hh"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <utility>

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "cache/result_store.hh"
#include "common/log.hh"
#include "common/signals.hh"
#include "common/sim_error.hh"
#include "core/engine.hh"
#include "obs/event_bus.hh"
#include "obs/run_event.hh"
#include "workloads/scene_io.hh"
#include "workloads/scenegen.hh"

namespace dtexl {

namespace {

/** Monotonic milliseconds (retry due times, deadlines). */
double
steadyNowMs()
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/**
 * Write all of @p data to @p fd. MSG_NOSIGNAL (plus the process-wide
 * SIGPIPE ignore) turns a dead peer into an error return, never a
 * signal. Returns false once the peer is gone.
 */
bool
writeAll(int fd, const std::string &data)
{
    std::size_t off = 0;
    while (off < data.size()) {
        const ssize_t n = ::send(fd, data.data() + off,
                                 data.size() - off, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        off += static_cast<std::size_t>(n);
    }
    return true;
}

/** One error-response line. */
std::string
errorLine(const std::string &message)
{
    JsonWriter w;
    w.boolean("ok", false).str("error", message);
    return w.finish();
}

/**
 * Buffered '\n'-framed reads from a socket. Handles EINTR (the drain
 * handler installs without SA_RESTART on purpose) and treats EOF /
 * errors as end-of-stream.
 */
class LineReader
{
  public:
    explicit LineReader(int fd) : fd_(fd) {}

    bool
    next(std::string &line)
    {
        for (;;) {
            const std::size_t nl = buf.find('\n');
            if (nl != std::string::npos) {
                line = buf.substr(0, nl);
                buf.erase(0, nl + 1);
                if (!line.empty() && line.back() == '\r')
                    line.pop_back();
                return true;
            }
            if (buf.size() > kMaxLine) {
                warn("dtexld: dropping connection with an over-long "
                     "request line (%zu bytes)", buf.size());
                return false;
            }
            char chunk[4096];
            const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
            if (n > 0) {
                buf.append(chunk, static_cast<std::size_t>(n));
                continue;
            }
            if (n < 0 && errno == EINTR)
                continue;
            return false;
        }
    }

  private:
    static constexpr std::size_t kMaxLine = 1u << 20;

    int fd_;
    std::string buf;
};

/**
 * Bind and listen on @p path. A stale socket file from a crashed
 * daemon is detected by probing it: connect() succeeding means a live
 * daemon owns it (refuse to double-serve), anything else means stale
 * (unlink and take over).
 */
int
listenUnix(const std::string &path)
{
    sockaddr_un addr{};
    if (path.size() >= sizeof(addr.sun_path))
        throwUserError("socket path '%s' is longer than sun_path "
                       "(%zu bytes)", path.c_str(),
                       sizeof(addr.sun_path) - 1);
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

    const int probe = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (probe >= 0) {
        if (::connect(probe, reinterpret_cast<sockaddr *>(&addr),
                      sizeof(addr)) == 0) {
            ::close(probe);
            throwUserError("another daemon is already serving '%s'",
                           path.c_str());
        }
        ::close(probe);
    }
    ::unlink(path.c_str());

    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        throwIoError("socket(AF_UNIX): %s", std::strerror(errno));
    if (::bind(fd, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0) {
        const int e = errno;
        ::close(fd);
        throwIoError("bind('%s'): %s", path.c_str(),
                     std::strerror(e));
    }
    if (::listen(fd, 64) != 0) {
        const int e = errno;
        ::close(fd);
        ::unlink(path.c_str());
        throwIoError("listen('%s'): %s", path.c_str(),
                     std::strerror(e));
    }
    return fd;
}

} // namespace

Daemon::Daemon(DaemonConfig cfg)
    : cfg_(std::move(cfg)),
      journal_(cfg_.stateDir + "/jobs.journal"),
      runq_(std::max<std::size_t>(cfg_.queueDepth, 1))
{
    if (cfg_.workers < 1)
        cfg_.workers = 1;
    if (cfg_.workers > 64)
        cfg_.workers = 64;
    if (cfg_.queueDepth < 1)
        cfg_.queueDepth = 1;
}

Daemon::~Daemon()
{
    if (listenFd_ >= 0)
        ::close(listenFd_);
    for (int i = 0; i < 2; ++i) {
        if (wakePipe_[i] >= 0)
            ::close(wakePipe_[i]);
    }
}

// ---- job execution ------------------------------------------------

GpuConfig
Daemon::buildJobConfig(const JobSpec &spec) const
{
    GpuConfig cfg = cfg_.baseCfg;
    if (spec.preset == "dtexl" || spec.preset == "baseline") {
        // Same semantics as sim_cli --preset=...: the preset replaces
        // the machine model but keeps the screen geometry, so a sweep
        // compares configurations at one resolution.
        const std::uint32_t w = cfg.screenWidth;
        const std::uint32_t h = cfg.screenHeight;
        cfg = spec.preset == "dtexl" ? makeDTexLConfig()
                                     : makeBaselineConfig();
        cfg.screenWidth = w;
        cfg.screenHeight = h;
    } else if (!spec.preset.empty()) {
        throwUserError("unknown preset '%s' (want baseline|dtexl)",
                       spec.preset.c_str());
    }
    for (const auto &kv : spec.options)
        applyConfigOption(cfg, kv.first, kv.second);
    cfg.validate();
    return cfg;
}

std::uint32_t
Daemon::retryMaxFor(const JobRecord *rec) const
{
    if (rec->spec.retryMax >= 0)
        return static_cast<std::uint32_t>(rec->spec.retryMax);
    return cfg_.retryMax;
}

void
Daemon::runAttempt(JobRecord *rec, unsigned worker)
{
    BatchResult res;
    try {
        // Scenes are regenerated per attempt: a retry after a
        // watchdog kill must not trust any state the failed attempt
        // touched, and generation is deterministic anyway.
        std::vector<Scene> scenes;
        if (!rec->spec.scenePath.empty()) {
            scenes.push_back(loadSceneFile(rec->spec.scenePath));
        } else {
            const BenchmarkParams &bench =
                benchmarkByAlias(rec->spec.bench);
            scenes.reserve(rec->spec.frames);
            for (std::uint32_t f = 0; f < rec->spec.frames; ++f)
                scenes.push_back(generateScene(bench, rec->cfg, f));
        }

        BatchJob job;
        job.label = rec->spec.label;
        job.cfg = rec->cfg;
        job.frames = rec->spec.frames;
        const std::vector<Scene> *sp = &scenes;
        job.scene = [sp](std::uint32_t f) -> const Scene & {
            return (*sp)[f];
        };
        job.cancel = &rec->token;
        job.deadlineMs = rec->spec.deadlineMs > 0.0
                             ? rec->spec.deadlineMs
                             : cfg_.defaultDeadlineMs;
        // The daemon escalates drains itself (level 2 interrupts the
        // tokens); level 1 lets in-flight jobs finish.
        job.stopOnDrain = false;

        // Fresh registry per attempt: counters from a failed attempt
        // must not leak into the retry's cached stats fragment — the
        // cache entry has to be byte-identical to a clean run's.
        StatRegistry attemptStats("dtexld");
        res = runSingleJob(job, &attemptStats, worker);
    } catch (const SimError &e) {
        // Scene building failed outside runSingleJob's own fault
        // isolation; report it through the same shape.
        res.label = rec->spec.label;
        res.ok = false;
        res.errorKind = e.kind();
        res.error = e.describe();
        if (EventBus::armed()) {
            RunEvent ev(EventKind::JobError, rec->spec.label);
            ev.str("kind", toString(e.kind())).str("error", res.error);
            EventBus::global().emit(std::move(ev));
        }
    }
    finishAttempt(rec, res);
}

void
Daemon::finishAttempt(JobRecord *rec, const BatchResult &res)
{
    const char *journalState = nullptr;
    {
        std::lock_guard<std::mutex> lk(table_.mutex());
        rec->framesDone = res.frames.size();
        rec->wallMs = res.wallMs;
        rec->cacheHit = res.cacheHit;
        std::uint64_t cycles = 0;
        for (const FrameStats &fs : res.frames)
            cycles += fs.totalCycles;
        rec->cycles = cycles;
        rec->imageHash =
            res.frames.empty() ? 0 : res.frames.back().imageHash;

        if (res.ok) {
            rec->state = JobState::Done;
            rec->error.clear();
            rec->errorKind.clear();
            journalState = "done";
        } else {
            rec->error = res.error;
            rec->errorKind = toString(res.errorKind);
            if (res.errorKind == ErrorKind::Cancelled) {
                const CancelToken::State ts = rec->token.state();
                if (ts == CancelToken::State::Cancel) {
                    rec->state = JobState::Cancelled;
                    journalState = "cancelled";
                } else if (ts == CancelToken::State::Interrupt ||
                           drainLevel_.load(
                               std::memory_order_relaxed) >= 1) {
                    // Drain checkpoint-stop: deliberately NOT
                    // journaled done — staying pending is what makes
                    // the job resume after a restart.
                    rec->state = JobState::Interrupted;
                } else {
                    rec->state = JobState::Expired;
                    journalState = "expired";
                }
            } else if (isTransientErrorKind(res.errorKind) &&
                       rec->attempts < retryMaxFor(rec) &&
                       drainLevel_.load(std::memory_order_relaxed) ==
                           0) {
                rec->state = JobState::RetryWait;
                const std::uint32_t delay = backoffDelayMs(
                    cfg_.backoff, rec->attempts - 1);
                rec->nextRetryAtMs = steadyNowMs() + delay;
                warn("dtexld: job '%s' attempt %u failed (%s); "
                     "retrying in %u ms",
                     rec->spec.label.c_str(), rec->attempts,
                     rec->error.c_str(), delay);
            } else {
                rec->state = JobState::Failed;
                journalState = "failed";
            }
        }
    }
    if (journalState)
        journal_.recordDone(rec->spec.label, journalState);
}

void
Daemon::workerLoop(unsigned worker)
{
    while (std::optional<JobRecord *> item = runq_.pop()) {
        JobRecord *rec = *item;
        queuedCount_.fetch_sub(1, std::memory_order_relaxed);
        {
            std::lock_guard<std::mutex> lk(table_.mutex());
            if (rec->state == JobState::Cancelled) {
                // Cancelled while queued; already journaled.
                continue;
            }
            if (drainLevel_.load(std::memory_order_relaxed) >= 1) {
                // Draining: leave the record Queued — pending in the
                // journal, re-queued by the next daemon.
                continue;
            }
            rec->state = JobState::Running;
            ++rec->attempts;
        }
        runAttempt(rec, worker);
    }
    liveWorkers_.fetch_sub(1, std::memory_order_relaxed);
    cv_.notify_all();
}

void
Daemon::retryLoop()
{
    std::unique_lock<std::mutex> lk(mu_);
    while (!stopThreads_) {
        cv_.wait_for(lk, std::chrono::milliseconds(20));
        if (stopThreads_)
            break;
        if (drainLevel_.load(std::memory_order_relaxed) >= 1)
            continue;
        lk.unlock();
        const double now = steadyNowMs();
        for (JobRecord *rec : table_.all()) {
            bool due = false;
            {
                std::lock_guard<std::mutex> tl(table_.mutex());
                if (rec->state == JobState::RetryWait &&
                    rec->nextRetryAtMs <= now) {
                    // Respect the admission bound: a retry is a
                    // re-admission, not a queue jump. Full queue →
                    // stay RetryWait, try again next tick.
                    const std::size_t q = queuedCount_.fetch_add(
                        1, std::memory_order_relaxed);
                    if (q + 1 > cfg_.queueDepth) {
                        queuedCount_.fetch_sub(
                            1, std::memory_order_relaxed);
                    } else {
                        rec->state = JobState::Queued;
                        due = true;
                    }
                }
            }
            if (due && !runq_.push(rec)) {
                // Queue closed (drain won the race): put the count
                // back; the record stays Queued, hence pending.
                queuedCount_.fetch_sub(1, std::memory_order_relaxed);
            }
        }
        lk.lock();
    }
}

// ---- admission ----------------------------------------------------

void
Daemon::emitSubmitEvent(const JobRecord *rec)
{
    if (!EventBus::armed())
        return;
    RunEvent ev(EventKind::JobSubmit, rec->spec.label);
    ev.u64("index", admitted_.fetch_add(1, std::memory_order_relaxed))
        .u64("frames", rec->spec.frames);
    EventBus::global().emit(std::move(ev));
}

std::string
Daemon::admit(JobSpec spec, bool recovered)
{
    std::lock_guard<std::mutex> alk(admitMu_);
    {
        std::lock_guard<std::mutex> lk(mu_);
        if (!admitting_)
            return errorLine("draining; not accepting jobs");
    }

    if (spec.label.empty()) {
        std::uint64_t n = table_.size() + 1;
        while (table_.find("job-" + std::to_string(n)))
            ++n;
        spec.label = "job-" + std::to_string(n);
    }

    // Validate everything a worker would trust, so a doomed job is
    // rejected here with a message instead of burning an attempt:
    // bench alias, scene readability, preset, options, config.
    GpuConfig cfg;
    try {
        if (!spec.bench.empty())
            (void)benchmarkByAlias(spec.bench);
        if (!spec.scenePath.empty()) {
            std::ifstream probe(spec.scenePath);
            if (!probe.is_open())
                throwUserError("scene file '%s' is not readable",
                               spec.scenePath.c_str());
        }
        cfg = buildJobConfig(spec);
    } catch (const SimError &e) {
        return errorLine(e.describe());
    }

    // Bounded admission: the queue never grows past queueDepth, and
    // an overflowing submit is REJECTED with a retry hint — pushback,
    // not an unbounded in-memory backlog.
    const std::size_t q =
        queuedCount_.fetch_add(1, std::memory_order_relaxed);
    if (!recovered && q + 1 > cfg_.queueDepth) {
        queuedCount_.fetch_sub(1, std::memory_order_relaxed);
        JsonWriter w;
        w.boolean("ok", false)
            .str("error", "queue full")
            .u64("retry_after_ms", cfg_.retryAfterMs);
        return w.finish();
    }

    JobRecord *rec = table_.insert(std::move(spec), std::move(cfg));
    if (!rec) {
        queuedCount_.fetch_sub(1, std::memory_order_relaxed);
        return errorLine("job label already in use");
    }

    // Journal before acking: a daemon that dies after this line owes
    // the job and will re-queue it on restart. Recovered jobs are
    // already in the freshly compacted journal.
    if (!recovered)
        journal_.recordSubmit(rec->spec);
    emitSubmitEvent(rec);

    if (!runq_.push(rec)) {
        // Queue closed under us: drain started mid-admission.
        queuedCount_.fetch_sub(1, std::memory_order_relaxed);
        return errorLine("draining; not accepting jobs");
    }

    JsonWriter w;
    w.boolean("ok", true)
        .str("job", rec->spec.label)
        .u64("queued", static_cast<std::uint64_t>(q + 1));
    return w.finish();
}

// ---- command handlers ---------------------------------------------

std::string
Daemon::handleSubmit(const JsonValue &req)
{
    JobSpec spec;
    std::string err;
    const JsonValue *specv = req.find("spec");
    if (!parseJobSpec(specv ? *specv : req, spec, err))
        return errorLine(err);
    return admit(std::move(spec), /*recovered=*/false);
}

std::string
Daemon::renderJobStatus(const JobRecord *rec)
{
    JsonWriter w;
    std::lock_guard<std::mutex> lk(table_.mutex());
    w.str("job", rec->spec.label)
        .str("state", toString(rec->state))
        .u64("frames", rec->spec.frames)
        .u64("attempts", rec->attempts)
        .u64("frames_done", rec->framesDone);
    if (!rec->spec.bench.empty())
        w.str("bench", rec->spec.bench);
    if (!rec->spec.scenePath.empty())
        w.str("scene", rec->spec.scenePath);
    if (rec->state == JobState::Done) {
        char hex[17];
        std::snprintf(hex, sizeof(hex), "%016llx",
                      static_cast<unsigned long long>(rec->imageHash));
        w.u64("cycles", rec->cycles)
            .f64("wall_ms", rec->wallMs)
            .boolean("cached", rec->cacheHit)
            .str("image_hash", hex);
    }
    if (!rec->error.empty())
        w.str("error", rec->error).str("error_kind", rec->errorKind);
    if (rec->state == JobState::RetryWait) {
        const double wait = rec->nextRetryAtMs - steadyNowMs();
        w.f64("retry_in_ms", wait > 0.0 ? wait : 0.0);
    }
    std::string line = w.finish();
    line.pop_back(); // embedded in the status array / response
    return line;
}

std::string
Daemon::handleStatus(const JsonValue &req)
{
    const std::string label = req.str("job");
    if (!label.empty()) {
        JobRecord *rec = table_.find(label);
        if (!rec)
            return errorLine("unknown job '" + label + "'");
        JsonWriter w;
        w.boolean("ok", true).raw("status", renderJobStatus(rec));
        return w.finish();
    }
    std::string jobs = "[";
    bool first = true;
    for (JobRecord *rec : table_.all()) {
        if (!first)
            jobs += ',';
        first = false;
        jobs += renderJobStatus(rec);
    }
    jobs += ']';
    JsonWriter w;
    w.boolean("ok", true)
        .u64("queued", queuedCount_.load(std::memory_order_relaxed))
        .raw("jobs", jobs);
    return w.finish();
}

std::string
Daemon::handleCancel(const JsonValue &req)
{
    const std::string label = req.str("job");
    if (label.empty())
        return errorLine("cancel needs a \"job\" label");
    JobRecord *rec = table_.find(label);
    if (!rec)
        return errorLine("unknown job '" + label + "'");

    const char *journalState = nullptr;
    std::string state;
    {
        std::lock_guard<std::mutex> lk(table_.mutex());
        switch (rec->state) {
        case JobState::Queued:
        case JobState::RetryWait:
            // Not running: retire it right here. A worker that later
            // pops the record sees Cancelled and skips it.
            rec->state = JobState::Cancelled;
            rec->token.requestCancel();
            journalState = "cancelled";
            break;
        case JobState::Running:
            // Cooperative: the attempt notices at its next frame
            // boundary and unwinds with SimError{Cancelled}.
            rec->token.requestCancel();
            break;
        default:
            state = toString(rec->state);
            break;
        }
    }
    if (!state.empty())
        return errorLine("job '" + label + "' is already " + state);
    if (journalState)
        journal_.recordDone(label, journalState);
    JsonWriter w;
    w.boolean("ok", true).str("job", label);
    return w.finish();
}

std::string
Daemon::handleGc(const JsonValue &req)
{
    const ResultStore *store = ResultCache::global().store();
    if (!store)
        return errorLine("no cache directory configured");
    const double age = req.num("age_s", 0.0);
    if (age < 0.0)
        return errorLine("\"age_s\" must be >= 0");
    const CheckpointGcReport rep = pruneStaleCheckpoints(
        store->dir(), static_cast<std::uint64_t>(age));
    JsonWriter w;
    w.boolean("ok", true)
        .u64("scanned", rep.scanned)
        .u64("removed", rep.removed)
        .u64("bytes", rep.bytes);
    return w.finish();
}

std::string
Daemon::handlePing()
{
    std::size_t running = 0;
    for (JobRecord *rec : table_.all()) {
        std::lock_guard<std::mutex> lk(table_.mutex());
        if (rec->state == JobState::Running)
            ++running;
    }
    JsonWriter w;
    w.boolean("ok", true)
        .str("state",
             drainLevel_.load(std::memory_order_relaxed) > 0
                 ? "draining"
                 : "serving")
        .u64("jobs", table_.size())
        .u64("queued", queuedCount_.load(std::memory_order_relaxed))
        .u64("running", static_cast<std::uint64_t>(running))
        .u64("workers", cfg_.workers)
        .u64("queue_depth",
             static_cast<std::uint64_t>(cfg_.queueDepth));
    return w.finish();
}

std::string
Daemon::handleDrain(int level)
{
    {
        std::lock_guard<std::mutex> lk(mu_);
        cmdDrain_ = true;
    }
    // Route through the signal counter so socket- and signal-
    // initiated drains exercise one path (the accept loop maps the
    // count onto a drain level).
    while (drainSignalCount() < level)
        requestDrain();
    std::unique_lock<std::mutex> lk(mu_);
    cv_.wait(lk, [&] { return reportReady_; });
    return reportJson_;
}

void
Daemon::handleSubscribe(int fd)
{
    const std::string ledger = EventBus::global().path();
    if (ledger.empty()) {
        writeAll(fd, errorLine("no event ledger armed"));
        return;
    }
    {
        // Replay under the subscriber lock: the tap blocks on it, so
        // no line can land between the replay and the registration;
        // nextSeq dedups any line that hit disk mid-replay.
        std::lock_guard<std::mutex> lk(subMu_);
        std::ifstream in(ledger);
        std::string line;
        std::uint64_t n = 0;
        while (std::getline(in, line)) {
            line += '\n';
            if (!writeAll(fd, line))
                return;
            ++n;
        }
        subs_.push_back(Subscriber{fd, n});
    }
    // Park until the client hangs up (or the drain shuts the socket);
    // the tap delivers events from here on.
    char sink[256];
    for (;;) {
        const ssize_t n = ::read(fd, sink, sizeof(sink));
        if (n > 0)
            continue;
        if (n < 0 && errno == EINTR)
            continue;
        break;
    }
    std::lock_guard<std::mutex> lk(subMu_);
    subs_.erase(std::remove_if(subs_.begin(), subs_.end(),
                               [&](const Subscriber &s) {
                                   return s.fd == fd;
                               }),
                subs_.end());
}

std::string
Daemon::dispatch(const std::string &line)
{
    JsonValue req;
    std::string err;
    if (!parseJson(line, req, err))
        return errorLine("bad request: " + err);
    const std::string cmd = req.str("cmd");
    if (cmd == "ping")
        return handlePing();
    if (cmd == "submit")
        return handleSubmit(req);
    if (cmd == "status")
        return handleStatus(req);
    if (cmd == "cancel")
        return handleCancel(req);
    if (cmd == "gc")
        return handleGc(req);
    if (cmd == "drain")
        return handleDrain(1);
    if (cmd == "shutdown")
        return handleDrain(2);
    return errorLine("unknown command '" + cmd + "'");
}

// ---- connection & accept loops ------------------------------------

void
Daemon::connLoop(int fd)
{
    LineReader reader(fd);
    std::string line;
    while (reader.next(line)) {
        if (line.empty())
            continue;
        // subscribe switches the connection into streaming mode; it
        // returns only when the subscription ends.
        JsonValue probe;
        std::string perr;
        if (parseJson(line, probe, perr) &&
            probe.str("cmd") == "subscribe") {
            handleSubscribe(fd);
            break;
        }
        const std::string resp = dispatch(line);
        const bool wasDrain =
            resp.find("\"drained\":true") != std::string::npos;
        if (!writeAll(fd, resp) || wasDrain)
            break;
    }
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
    std::lock_guard<std::mutex> lk(connMu_);
    connFds_.erase(std::remove(connFds_.begin(), connFds_.end(), fd),
                   connFds_.end());
}

void
Daemon::noteDrainSignals()
{
    const int count = drainSignalCount();
    if (count > 0)
        beginDrain(count >= 2 ? 2 : 1);
}

void
Daemon::beginDrain(int level)
{
    int cur = drainLevel_.load();
    while (cur < level &&
           !drainLevel_.compare_exchange_weak(cur, level)) {
    }
    if (cur >= level)
        return; // someone else already escalated this far

    if (level >= 1 && !queueClosed_.exchange(true)) {
        {
            std::lock_guard<std::mutex> lk(mu_);
            admitting_ = false;
        }
        inform("dtexld: drain requested; no longer accepting jobs");
        // Workers finish their current job, then see the closed
        // channel and exit; still-queued records stay Queued.
        runq_.close();
    }
    if (level >= 2) {
        // Checkpoint-and-stop: interrupt every running attempt at its
        // next frame boundary. Interrupt never overrides a Cancel.
        inform("dtexld: interrupting in-flight jobs (checkpoint)");
        for (JobRecord *rec : table_.all())
            rec->token.requestInterrupt();
    }
}

std::string
Daemon::buildDrainReport()
{
    std::uint64_t done = 0, failed = 0, cancelled = 0, expired = 0;
    std::uint64_t interrupted = 0, pending = 0;
    for (JobRecord *rec : table_.all()) {
        std::lock_guard<std::mutex> lk(table_.mutex());
        switch (rec->state) {
        case JobState::Done: ++done; break;
        case JobState::Failed: ++failed; break;
        case JobState::Cancelled: ++cancelled; break;
        case JobState::Expired: ++expired; break;
        case JobState::Interrupted: ++interrupted; break;
        default: ++pending; break;
        }
    }
    JsonWriter w;
    w.boolean("ok", true)
        .boolean("drained", true)
        .u64("jobs", table_.size())
        .u64("done", done)
        .u64("failed", failed)
        .u64("cancelled", cancelled)
        .u64("expired", expired)
        .u64("interrupted", interrupted)
        .u64("pending", pending);
    return w.finish();
}

void
Daemon::acceptLoop()
{
    pollfd fds[2];
    fds[0].fd = listenFd_;
    fds[0].events = POLLIN;
    fds[1].fd = wakePipe_[0];
    fds[1].events = POLLIN;

    for (;;) {
        noteDrainSignals();
        if (drainLevel_.load(std::memory_order_relaxed) >= 1)
            return;
        // The 200 ms timeout is a backstop; signals poke the wake
        // pipe so a drain is noticed immediately.
        const int n = ::poll(fds, 2, 200);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            warn("dtexld: poll: %s", std::strerror(errno));
            return;
        }
        if (fds[1].revents & POLLIN) {
            char sink[64];
            while (::read(wakePipe_[0], sink, sizeof(sink)) > 0) {
            }
        }
        if (fds[0].revents & POLLIN) {
            const int fd = ::accept(listenFd_, nullptr, nullptr);
            if (fd < 0)
                continue;
            {
                std::lock_guard<std::mutex> lk(connMu_);
                connFds_.push_back(fd);
            }
            connThreads_.emplace_back(
                [this, fd] { connLoop(fd); });
        }
    }
}

// ---- lifecycle ----------------------------------------------------

int
Daemon::run()
{
    // 1. Journal recovery happens before the socket exists, so no
    //    client can race the compaction.
    const std::vector<JobSpec> pending =
        JobJournal::loadPending(journal_.path());
    journal_.reset(pending);

    // 2. Socket + signal plumbing.
    listenFd_ = listenUnix(cfg_.socketPath);
    if (::pipe(wakePipe_) != 0)
        throwIoError("pipe: %s", std::strerror(errno));
    // Non-blocking read end: the accept loop drains wake bytes with a
    // read-until-empty loop that must not park.
    ::fcntl(wakePipe_[0], F_SETFL, O_NONBLOCK);
    ignoreSigpipe();
    setSignalWakeFd(wakePipe_[1]);
    if (cfg_.installSignals) {
        // Threshold 3: signal 1 = graceful drain, 2 = checkpoint-and-
        // stop, 3 = force exit.
        installDrainHandlers(/*forceExitAt=*/3);
    }

    // 3. Live event streaming for subscribers.
    EventBus::global().setTap([this](std::uint64_t seq,
                                     const std::string &line) {
        std::lock_guard<std::mutex> lk(subMu_);
        for (auto it = subs_.begin(); it != subs_.end();) {
            if (seq < it->nextSeq) {
                ++it; // already delivered by the replay
                continue;
            }
            if (!writeAll(it->fd, line)) {
                ::shutdown(it->fd, SHUT_RDWR);
                it = subs_.erase(it);
                continue;
            }
            it->nextSeq = seq + 1;
            ++it;
        }
    });

    // 4. Execution machinery, then the recovered backlog (workers
    //    are already popping, so a backlog deeper than the queue
    //    drains instead of deadlocking the blocking pushes).
    liveWorkers_.store(cfg_.workers, std::memory_order_relaxed);
    for (unsigned w = 0; w < cfg_.workers; ++w)
        workers_.emplace_back([this, w] { workerLoop(w); });
    retryThread_ = std::thread([this] { retryLoop(); });
    if (!pending.empty()) {
        inform("dtexld: re-queueing %zu journaled job(s)",
               pending.size());
        for (const JobSpec &spec : pending) {
            const std::string resp = admit(spec, /*recovered=*/true);
            if (resp.find("\"ok\":true") == std::string::npos) {
                warn("dtexld: could not re-queue job '%s': %s",
                     spec.label.c_str(), resp.c_str());
                journal_.recordDone(spec.label, "failed");
            }
        }
    }

    inform("dtexld: serving on %s (%u worker(s), queue depth %zu)",
           cfg_.socketPath.c_str(), cfg_.workers, cfg_.queueDepth);
    acceptLoop();

    // ---- drain sequence (DESIGN.md "Service daemon") ----
    // Admission is already off and the queue closed (beginDrain).
    ::close(listenFd_);
    listenFd_ = -1;
    ::unlink(cfg_.socketPath.c_str());

    // Escalation watch: the accept loop is gone, but a second signal
    // (checkpoint-and-stop) or a `shutdown` command must still take
    // effect while in-flight jobs finish. (A third signal force-exits
    // from the handler itself.)
    {
        std::unique_lock<std::mutex> lk(mu_);
        while (liveWorkers_.load(std::memory_order_relaxed) > 0) {
            cv_.wait_for(lk, std::chrono::milliseconds(50));
            lk.unlock();
            noteDrainSignals();
            lk.lock();
        }
    }
    for (std::thread &t : workers_)
        t.join();
    workers_.clear();
    {
        std::lock_guard<std::mutex> lk(mu_);
        stopThreads_ = true;
    }
    cv_.notify_all();
    if (retryThread_.joinable())
        retryThread_.join();

    // Flush + close the ledger: run_end reaches disk AND the
    // subscribers (the tap runs on the writer thread) before any
    // socket is torn down.
    if (EventBus::armed()) {
        EventBus::global().flush();
        EventBus::global().finish();
    }

    const std::string report = buildDrainReport();
    {
        std::lock_guard<std::mutex> lk(mu_);
        reportJson_ = report;
        reportReady_ = true;
    }
    cv_.notify_all();

    // Unblock every connection reader; drain responders are awake and
    // writing their report (SHUT_RD leaves the write side alone).
    {
        std::lock_guard<std::mutex> lk(connMu_);
        for (int fd : connFds_)
            ::shutdown(fd, SHUT_RD);
    }
    for (std::thread &t : connThreads_)
        t.join();
    connThreads_.clear();
    EventBus::global().setTap(nullptr);
    setSignalWakeFd(-1);
    journal_.close();

    std::fputs(report.c_str(), stdout);
    std::fflush(stdout);

    bool byCommand;
    {
        std::lock_guard<std::mutex> lk(mu_);
        byCommand = cmdDrain_;
    }
    return byCommand ? kExitSuccess : kExitInterrupted;
}

} // namespace dtexl

/**
 * @file
 * Line-framed JSON wire format for the dtexld control socket.
 *
 * Every request and response on the Unix-domain socket is exactly one
 * JSON object on one '\n'-terminated line (JSONL, same framing as the
 * event ledger), so the protocol needs no length prefixes and a shell
 * user can drive the daemon with `nc -U`. This header provides the
 * three pieces the daemon and its tests need:
 *
 *  - JsonValue / parseJson(): a small recursive-descent parser for one
 *    request line, tolerant of whitespace, strict about everything
 *    else (trailing junk after the value is an error — a second
 *    request must live on its own line);
 *  - typed accessors that read optional object members with defaults,
 *    so command handlers stay short;
 *  - JsonWriter: an append-only object builder for responses, reusing
 *    jsonEscape() from common/trace.hh so string escaping matches the
 *    ledger's.
 *
 * See DESIGN.md "Service daemon (dtexld)" for the protocol grammar.
 */

#ifndef DTEXL_SERVE_WIRE_HH
#define DTEXL_SERVE_WIRE_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace dtexl {

/** One parsed JSON value (tree-owning; copies are deep). */
struct JsonValue
{
    enum class Kind : std::uint8_t
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string text;                ///< Kind::String payload
    std::vector<JsonValue> items;    ///< Kind::Array payload
    /** Kind::Object payload, insertion-ordered (duplicates kept). */
    std::vector<std::pair<std::string, JsonValue>> members;

    bool isObject() const { return kind == Kind::Object; }
    bool isArray() const { return kind == Kind::Array; }
    bool isString() const { return kind == Kind::String; }
    bool isNumber() const { return kind == Kind::Number; }

    /** First member named @p key, or null when absent / not object. */
    const JsonValue *find(const std::string &key) const;

    /** Member @p key as a string; @p dflt when absent or not string. */
    std::string str(const std::string &key,
                    const std::string &dflt = "") const;

    /** Member @p key as a number; @p dflt when absent or not number. */
    double num(const std::string &key, double dflt = 0.0) const;

    /** Member @p key as a bool; @p dflt when absent or not bool. */
    bool flag(const std::string &key, bool dflt = false) const;
};

/**
 * Parse @p text (one request line) into @p out. Returns false and
 * fills @p err with a position-tagged message on malformed input;
 * never throws — a bad request must produce an error *response*, not
 * kill the connection handler.
 */
bool parseJson(const std::string &text, JsonValue &out,
               std::string &err);

/**
 * Append-only JSON object builder for one response line. Values are
 * rendered immediately into an internal buffer; finish() closes the
 * object and appends the line terminator. Number formatting matches
 * the ledger writer (integers raw, doubles with 3 decimals) so the
 * two streams read alike.
 */
class JsonWriter
{
  public:
    JsonWriter() : buf("{") {}

    JsonWriter &str(const char *key, const std::string &value);
    JsonWriter &u64(const char *key, std::uint64_t value);
    JsonWriter &i64(const char *key, std::int64_t value);
    JsonWriter &f64(const char *key, double value);
    JsonWriter &boolean(const char *key, bool value);
    /** Append @p json verbatim (pre-rendered array/object value). */
    JsonWriter &raw(const char *key, const std::string &json);

    /** Close the object; returns the '\n'-terminated line. */
    std::string finish();

  private:
    void sep(const char *key);

    std::string buf;
    bool first = true;
};

} // namespace dtexl

#endif // DTEXL_SERVE_WIRE_HH

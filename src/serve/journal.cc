#include "serve/journal.hh"

#include <fstream>

#include "common/log.hh"
#include "common/sim_error.hh"

namespace dtexl {

std::vector<JobSpec>
JobJournal::loadPending(const std::string &path)
{
    std::vector<JobSpec> pending;
    std::ifstream in(path);
    if (!in.is_open())
        return pending;

    // Submission order matters for recovery fairness, so keep a
    // vector and mark completions instead of erasing.
    std::vector<bool> done;
    std::string line;
    std::size_t lineNo = 0;
    bool sawJunk = false;
    while (std::getline(in, line)) {
        ++lineNo;
        if (line.empty())
            continue;
        JsonValue v;
        std::string err;
        if (!parseJson(line, v, err)) {
            // A crash can shear exactly one line: the last. Junk
            // earlier than that means the file was damaged some other
            // way — recover what parses, but say so.
            if (in.peek() != std::ifstream::traits_type::eof())
                warn("journal %s line %zu unreadable (%s); skipped",
                     path.c_str(), lineNo, err.c_str());
            sawJunk = true;
            continue;
        }
        const std::string op = v.str("op");
        if (op == "submit") {
            const JsonValue *specv = v.find("spec");
            JobSpec spec;
            std::string serr;
            if (!specv || !parseJobSpec(*specv, spec, serr)) {
                warn("journal %s line %zu: bad spec (%s); skipped",
                     path.c_str(), lineNo, serr.c_str());
                continue;
            }
            pending.push_back(std::move(spec));
            done.push_back(false);
        } else if (op == "done") {
            const std::string label = v.str("job");
            for (std::size_t i = 0; i < pending.size(); ++i) {
                if (!done[i] && pending[i].label == label) {
                    done[i] = true;
                    break;
                }
            }
        } else {
            warn("journal %s line %zu: unknown op '%s'; skipped",
                 path.c_str(), lineNo, op.c_str());
        }
    }
    (void)sawJunk;

    std::vector<JobSpec> out;
    for (std::size_t i = 0; i < pending.size(); ++i) {
        if (!done[i])
            out.push_back(std::move(pending[i]));
    }
    return out;
}

void
JobJournal::reset(const std::vector<JobSpec> &pending)
{
    std::lock_guard<std::mutex> lk(mu);
    if (f_) {
        std::fclose(f_);
        f_ = nullptr;
    }
    std::FILE *f = std::fopen(path_.c_str(), "w");
    if (!f)
        throwIoError("cannot open job journal '%s'", path_.c_str());
    f_ = f;
    for (const JobSpec &spec : pending) {
        JsonWriter w;
        w.str("op", "submit").raw("spec", renderJobSpec(spec));
        const std::string line = w.finish();
        std::fwrite(line.data(), 1, line.size(), f_);
    }
    std::fflush(f_);
}

void
JobJournal::appendLine(const std::string &line)
{
    std::lock_guard<std::mutex> lk(mu);
    if (!f_)
        return;
    std::fwrite(line.data(), 1, line.size(), f_);
    // Per-line flush: the whole point is surviving a hard death.
    std::fflush(f_);
}

void
JobJournal::recordSubmit(const JobSpec &spec)
{
    JsonWriter w;
    w.str("op", "submit").raw("spec", renderJobSpec(spec));
    appendLine(w.finish());
}

void
JobJournal::recordDone(const std::string &label, const char *state)
{
    JsonWriter w;
    w.str("op", "done").str("job", label).str("state", state);
    appendLine(w.finish());
}

void
JobJournal::close()
{
    std::lock_guard<std::mutex> lk(mu);
    if (f_) {
        std::fclose(f_);
        f_ = nullptr;
    }
}

} // namespace dtexl

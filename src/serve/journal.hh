/**
 * @file
 * Crash-recovery journal for dtexld: an append-only JSONL file under
 * the daemon's state directory recording every admitted job and every
 * terminal outcome, so a daemon that dies hard (OOM-kill, power loss)
 * can re-queue exactly the jobs that were still owed a result.
 *
 * Two line shapes:
 *
 *   {"op":"submit","spec":{...JobSpec...}}
 *   {"op":"done","job":"<label>","state":"done|failed|cancelled|..."}
 *
 * A job is *pending* when its submit line has no matching done line.
 * Interrupted jobs (drain checkpoint-stop) deliberately get no done
 * line — staying pending IS the recovery contract. Each line is
 * fflush()ed as written; loadPending() tolerates a torn final line
 * (the one write a crash can shear) and warns on anything malformed
 * earlier. On startup the daemon compacts the journal down to the
 * still-pending specs before appending to it again.
 */

#ifndef DTEXL_SERVE_JOURNAL_HH
#define DTEXL_SERVE_JOURNAL_HH

#include <cstdio>
#include <mutex>
#include <string>
#include <vector>

#include "serve/job_table.hh"

namespace dtexl {

class JobJournal
{
  public:
    explicit JobJournal(std::string path) : path_(std::move(path)) {}
    ~JobJournal() { close(); }

    JobJournal(const JobJournal &) = delete;
    JobJournal &operator=(const JobJournal &) = delete;

    /**
     * Read @p path and return the specs still owed a result, in
     * submission order. Missing file = empty. Never throws: recovery
     * must not prevent a daemon from starting — a corrupt line is
     * warn()-logged and skipped, a torn tail silently tolerated.
     */
    static std::vector<JobSpec> loadPending(const std::string &path);

    /**
     * Truncate the journal to exactly @p pending submit lines (startup
     * compaction after recovery) and leave it open for appending.
     * Throws SimError{Io} when the state directory is unwritable —
     * a daemon that cannot journal cannot honour its durability
     * contract, so this is fatal at startup.
     */
    void reset(const std::vector<JobSpec> &pending);

    /** Append one submit line (fflushed before returning). */
    void recordSubmit(const JobSpec &spec);

    /** Append one done line (fflushed before returning). */
    void recordDone(const std::string &label, const char *state);

    void close();

    const std::string &path() const { return path_; }

  private:
    void appendLine(const std::string &line);

    std::string path_;
    std::FILE *f_ = nullptr;
    std::mutex mu;
};

} // namespace dtexl

#endif // DTEXL_SERVE_JOURNAL_HH

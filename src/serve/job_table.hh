/**
 * @file
 * dtexld's in-memory job registry: the JobSpec a client submitted, the
 * retry/cancel state machine each job walks through, and the
 * mutex-guarded table the daemon threads share.
 *
 * State machine (see DESIGN.md "Service daemon (dtexld)"):
 *
 *           submit                    transient error,
 *             v                       attempts left
 *   Queued ----> Running ----------------> RetryWait
 *     |            |    \                      |
 *     |  cancel    |     \ ok                  | backoff elapsed
 *     v            v      v                    v
 *  Cancelled   (classify)  Done            Queued (again)
 *                  |
 *                  +-> Failed      non-transient, or retries spent
 *                  +-> Cancelled   client cancel mid-run
 *                  +-> Expired     per-job deadline at a frame boundary
 *                  +-> Interrupted drain/SIGTERM checkpoint-stop; the
 *                                  job stays pending in the journal
 *                                  and is re-queued on restart
 *
 * Records are never removed once admitted (the table IS the `status`
 * surface for the daemon's lifetime), except for the backpressure
 * path: a submit that finds the run queue full is rejected and erased
 * before any worker could have seen it.
 */

#ifndef DTEXL_SERVE_JOB_TABLE_HH
#define DTEXL_SERVE_JOB_TABLE_HH

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/cancel.hh"
#include "common/config.hh"
#include "serve/wire.hh"

namespace dtexl {

/** Where a job is in its lifecycle. */
enum class JobState : std::uint8_t
{
    Queued,      ///< admitted, waiting for a worker
    Running,     ///< an attempt is executing
    RetryWait,   ///< transient failure; waiting out the backoff
    Done,        ///< completed OK
    Failed,      ///< permanent failure (retries spent or non-transient)
    Cancelled,   ///< client cancel honoured
    Expired,     ///< per-job deadline elapsed
    Interrupted, ///< drain stopped it at a checkpoint; resumes on restart
};

/** Wire/journal spelling ("queued", "retry_wait", ...). */
const char *toString(JobState state);

/** True for states a job never leaves (Interrupted is NOT terminal:
 *  a daemon restart re-queues it). */
bool jobStateTerminal(JobState state);

/**
 * What a client asked for: everything needed to rebuild the job's
 * GpuConfig and scenes, and nothing host-specific — the spec is the
 * unit the crash-recovery journal persists, so it must survive a
 * daemon restart verbatim.
 */
struct JobSpec
{
    /** Unique job name; auto-assigned ("job-N") when not given. */
    std::string label;
    /** Benchmark alias (workloads/benchmarks.hh); "" with scenePath. */
    std::string bench;
    /** Scene file to load instead of a generated benchmark. */
    std::string scenePath;
    std::uint32_t frames = 1;
    /** "" (daemon base config), "baseline" or "dtexl". */
    std::string preset;
    /** key=value GpuConfig overrides, applied in order. */
    std::vector<std::pair<std::string, std::string>> options;
    /** Wall-clock deadline, ms from pickup (0 = daemon default). */
    double deadlineMs = 0.0;
    /** Max attempts for transient failures (-1 = daemon default). */
    std::int32_t retryMax = -1;
};

/** Render @p spec as one JSON object (journal line / status echo). */
std::string renderJobSpec(const JobSpec &spec);

/**
 * Read a JobSpec from a parsed submit request or journal line.
 * Returns false with a client-facing message in @p err on a malformed
 * spec (wrong types, absurd frame counts, missing bench AND scene).
 * Config-level validation (unknown bench alias, bad option values) is
 * the admission path's job — it needs the daemon's base config.
 */
bool parseJobSpec(const JsonValue &v, JobSpec &out, std::string &err);

/**
 * One admitted job. The record outlives every queue it passes through
 * (workers receive stable pointers), and its CancelToken is the single
 * cancellation channel shared by the connection threads (writers) and
 * the running attempt (reader). All other fields are guarded by the
 * owning JobTable's mutex.
 */
struct JobRecord
{
    JobSpec spec;
    /** Resolved at admission: base config + preset + options. */
    GpuConfig cfg;
    JobState state = JobState::Queued;
    /** Attempts started (1 on the first pickup). */
    std::uint32_t attempts = 0;
    /** Last failure, SimError::describe() form ("" while clean). */
    std::string error;
    std::string errorKind;
    std::uint64_t framesDone = 0;
    std::uint64_t cycles = 0;
    double wallMs = 0.0;
    bool cacheHit = false;
    std::uint64_t imageHash = 0;
    /** steadyNowMs() timestamp the next retry becomes due
     *  (RetryWait only). */
    double nextRetryAtMs = 0.0;
    CancelToken token;
};

/**
 * The daemon's job registry: label-keyed, insertion-ordered, pointer-
 * stable. Locking is exposed rather than hidden because most daemon
 * operations are compound (find + inspect + transition); callers hold
 * mutex() across the whole step. TSan runs the full daemon test
 * (tests/test_serve.cc) to keep this honest.
 */
class JobTable
{
  public:
    /** Admit a record. Returns null when @p label is already taken. */
    JobRecord *insert(JobSpec spec, GpuConfig cfg);

    /** Erase @p label (backpressure-reject path only). */
    void erase(const std::string &label);

    /** Find by label; null when unknown. */
    JobRecord *find(const std::string &label);

    /** All records, admission order (pointers stay valid). */
    std::vector<JobRecord *> all();

    std::size_t size() const;

    /** The table lock; held by callers across compound operations. */
    std::mutex &mutex() { return mu; }

  private:
    mutable std::mutex mu;
    std::vector<std::unique_ptr<JobRecord>> order;
    std::unordered_map<std::string, JobRecord *> byLabel;
};

} // namespace dtexl

#endif // DTEXL_SERVE_JOB_TABLE_HH

#include "serve/wire.hh"

#include <cctype>
#include <cstdio>
#include <cstdlib>

#include "common/trace.hh"

namespace dtexl {

// ---- JsonValue accessors ------------------------------------------

const JsonValue *
JsonValue::find(const std::string &key) const
{
    if (kind != Kind::Object)
        return nullptr;
    for (const auto &m : members) {
        if (m.first == key)
            return &m.second;
    }
    return nullptr;
}

std::string
JsonValue::str(const std::string &key, const std::string &dflt) const
{
    const JsonValue *v = find(key);
    return (v && v->kind == Kind::String) ? v->text : dflt;
}

double
JsonValue::num(const std::string &key, double dflt) const
{
    const JsonValue *v = find(key);
    return (v && v->kind == Kind::Number) ? v->number : dflt;
}

bool
JsonValue::flag(const std::string &key, bool dflt) const
{
    const JsonValue *v = find(key);
    return (v && v->kind == Kind::Bool) ? v->boolean : dflt;
}

// ---- Parser -------------------------------------------------------

namespace {

/**
 * Recursive-descent JSON parser over one request line. Depth is
 * bounded so a pathological client cannot blow the connection
 * thread's stack with ten thousand '['s.
 */
class JsonParser
{
  public:
    JsonParser(const std::string &text, std::string &err)
        : s(text), err_(err)
    {}

    bool
    parse(JsonValue &out)
    {
        if (!value(out, 0))
            return false;
        skipWs();
        if (pos != s.size())
            return fail("trailing data after JSON value");
        return true;
    }

  private:
    static constexpr int kMaxDepth = 32;

    bool
    fail(const char *what)
    {
        char buf[96];
        std::snprintf(buf, sizeof(buf), "%s at offset %zu", what, pos);
        err_ = buf;
        return false;
    }

    void
    skipWs()
    {
        while (pos < s.size() &&
               (s[pos] == ' ' || s[pos] == '\t' || s[pos] == '\n' ||
                s[pos] == '\r'))
            ++pos;
    }

    bool
    literal(const char *word, std::size_t n)
    {
        if (s.compare(pos, n, word) != 0)
            return fail("invalid literal");
        pos += n;
        return true;
    }

    bool
    value(JsonValue &out, int depth)
    {
        if (depth > kMaxDepth)
            return fail("nesting too deep");
        skipWs();
        if (pos >= s.size())
            return fail("unexpected end of input");
        const char c = s[pos];
        switch (c) {
        case '{':
            return object(out, depth);
        case '[':
            return array(out, depth);
        case '"':
            out.kind = JsonValue::Kind::String;
            return string(out.text);
        case 't':
            out.kind = JsonValue::Kind::Bool;
            out.boolean = true;
            return literal("true", 4);
        case 'f':
            out.kind = JsonValue::Kind::Bool;
            out.boolean = false;
            return literal("false", 5);
        case 'n':
            out.kind = JsonValue::Kind::Null;
            return literal("null", 4);
        default:
            return number(out);
        }
    }

    bool
    object(JsonValue &out, int depth)
    {
        out.kind = JsonValue::Kind::Object;
        ++pos; // '{'
        skipWs();
        if (pos < s.size() && s[pos] == '}') {
            ++pos;
            return true;
        }
        for (;;) {
            skipWs();
            if (pos >= s.size() || s[pos] != '"')
                return fail("expected member name");
            std::string key;
            if (!string(key))
                return false;
            skipWs();
            if (pos >= s.size() || s[pos] != ':')
                return fail("expected ':'");
            ++pos;
            JsonValue member;
            if (!value(member, depth + 1))
                return false;
            out.members.emplace_back(std::move(key),
                                     std::move(member));
            skipWs();
            if (pos < s.size() && s[pos] == ',') {
                ++pos;
                continue;
            }
            if (pos < s.size() && s[pos] == '}') {
                ++pos;
                return true;
            }
            return fail("expected ',' or '}'");
        }
    }

    bool
    array(JsonValue &out, int depth)
    {
        out.kind = JsonValue::Kind::Array;
        ++pos; // '['
        skipWs();
        if (pos < s.size() && s[pos] == ']') {
            ++pos;
            return true;
        }
        for (;;) {
            JsonValue item;
            if (!value(item, depth + 1))
                return false;
            out.items.push_back(std::move(item));
            skipWs();
            if (pos < s.size() && s[pos] == ',') {
                ++pos;
                continue;
            }
            if (pos < s.size() && s[pos] == ']') {
                ++pos;
                return true;
            }
            return fail("expected ',' or ']'");
        }
    }

    bool
    string(std::string &out)
    {
        ++pos; // opening quote
        out.clear();
        while (pos < s.size()) {
            const char c = s[pos];
            if (c == '"') {
                ++pos;
                return true;
            }
            if (static_cast<unsigned char>(c) < 0x20)
                return fail("raw control character in string");
            if (c != '\\') {
                out += c;
                ++pos;
                continue;
            }
            ++pos;
            if (pos >= s.size())
                return fail("truncated escape");
            const char e = s[pos++];
            switch (e) {
            case '"': out += '"'; break;
            case '\\': out += '\\'; break;
            case '/': out += '/'; break;
            case 'b': out += '\b'; break;
            case 'f': out += '\f'; break;
            case 'n': out += '\n'; break;
            case 'r': out += '\r'; break;
            case 't': out += '\t'; break;
            case 'u': {
                if (!unicodeEscape(out))
                    return false;
                break;
            }
            default:
                return fail("unknown escape");
            }
        }
        return fail("unterminated string");
    }

    /** Decode \uXXXX (with surrogate pairs) to UTF-8. */
    bool
    unicodeEscape(std::string &out)
    {
        unsigned cp = 0;
        if (!hex4(cp))
            return false;
        if (cp >= 0xd800 && cp <= 0xdbff) {
            // High surrogate: a low surrogate must follow.
            if (pos + 1 >= s.size() || s[pos] != '\\' ||
                s[pos + 1] != 'u')
                return fail("unpaired surrogate");
            pos += 2;
            unsigned lo = 0;
            if (!hex4(lo))
                return false;
            if (lo < 0xdc00 || lo > 0xdfff)
                return fail("invalid low surrogate");
            cp = 0x10000 + ((cp - 0xd800) << 10) + (lo - 0xdc00);
        } else if (cp >= 0xdc00 && cp <= 0xdfff) {
            return fail("unpaired surrogate");
        }
        appendUtf8(out, cp);
        return true;
    }

    bool
    hex4(unsigned &out)
    {
        if (pos + 4 > s.size())
            return fail("truncated \\u escape");
        out = 0;
        for (int i = 0; i < 4; ++i) {
            const char c = s[pos++];
            out <<= 4;
            if (c >= '0' && c <= '9')
                out |= static_cast<unsigned>(c - '0');
            else if (c >= 'a' && c <= 'f')
                out |= static_cast<unsigned>(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F')
                out |= static_cast<unsigned>(c - 'A' + 10);
            else
                return fail("bad hex digit in \\u escape");
        }
        return true;
    }

    static void
    appendUtf8(std::string &out, unsigned cp)
    {
        if (cp < 0x80) {
            out += static_cast<char>(cp);
        } else if (cp < 0x800) {
            out += static_cast<char>(0xc0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3f));
        } else if (cp < 0x10000) {
            out += static_cast<char>(0xe0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (cp & 0x3f));
        } else {
            out += static_cast<char>(0xf0 | (cp >> 18));
            out += static_cast<char>(0x80 | ((cp >> 12) & 0x3f));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (cp & 0x3f));
        }
    }

    bool
    number(JsonValue &out)
    {
        const std::size_t start = pos;
        if (pos < s.size() && s[pos] == '-')
            ++pos;
        while (pos < s.size() &&
               (std::isdigit(static_cast<unsigned char>(s[pos])) ||
                s[pos] == '.' || s[pos] == 'e' || s[pos] == 'E' ||
                s[pos] == '+' || s[pos] == '-'))
            ++pos;
        if (pos == start)
            return fail("expected value");
        const std::string tok = s.substr(start, pos - start);
        char *end = nullptr;
        out.number = std::strtod(tok.c_str(), &end);
        if (end == nullptr || *end != '\0')
            return fail("malformed number");
        out.kind = JsonValue::Kind::Number;
        return true;
    }

    const std::string &s;
    std::string &err_;
    std::size_t pos = 0;
};

} // namespace

bool
parseJson(const std::string &text, JsonValue &out, std::string &err)
{
    out = JsonValue{};
    err.clear();
    return JsonParser(text, err).parse(out);
}

// ---- JsonWriter ---------------------------------------------------

void
JsonWriter::sep(const char *key)
{
    if (!first)
        buf += ',';
    first = false;
    buf += '"';
    buf += jsonEscape(key);
    buf += "\":";
}

JsonWriter &
JsonWriter::str(const char *key, const std::string &value)
{
    sep(key);
    buf += '"';
    buf += jsonEscape(value);
    buf += '"';
    return *this;
}

JsonWriter &
JsonWriter::u64(const char *key, std::uint64_t value)
{
    sep(key);
    buf += std::to_string(value);
    return *this;
}

JsonWriter &
JsonWriter::i64(const char *key, std::int64_t value)
{
    sep(key);
    buf += std::to_string(value);
    return *this;
}

JsonWriter &
JsonWriter::f64(const char *key, double value)
{
    sep(key);
    char tmp[48];
    std::snprintf(tmp, sizeof(tmp), "%.3f", value);
    buf += tmp;
    return *this;
}

JsonWriter &
JsonWriter::boolean(const char *key, bool value)
{
    sep(key);
    buf += value ? "true" : "false";
    return *this;
}

JsonWriter &
JsonWriter::raw(const char *key, const std::string &json)
{
    sep(key);
    buf += json;
    return *this;
}

std::string
JsonWriter::finish()
{
    buf += "}\n";
    return std::move(buf);
}

} // namespace dtexl

/**
 * @file
 * dtexld — the persistent simulation-service daemon. One process
 * listens on a Unix-domain socket, admits simulation jobs into a
 * bounded queue with real backpressure, runs them on a worker pool
 * via runSingleJob(), retries transient failures with exponential
 * backoff (resuming from checkpoints), and drains gracefully on
 * SIGTERM/SIGINT or the `drain`/`shutdown` commands.
 *
 * Protocol: newline-framed JSON objects both directions (serve/
 * wire.hh). Commands: ping, submit, status, cancel, gc, drain,
 * shutdown, subscribe. See DESIGN.md "Service daemon (dtexld)" for
 * the full grammar and the drain sequence; scripts/dtexl_client.py is
 * the reference client.
 *
 * Crash tolerance: every admission is journaled (serve/journal.hh)
 * before the client is acked, every terminal outcome is journaled as
 * it lands, and jobs interrupted by a drain checkpoint first — so a
 * restarted daemon re-queues exactly the owed jobs and resumes them
 * from their checkpoints instead of recomputing.
 */

#ifndef DTEXL_SERVE_DAEMON_HH
#define DTEXL_SERVE_DAEMON_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/channel.hh"
#include "common/config.hh"
#include "common/retry.hh"
#include "serve/job_table.hh"
#include "serve/journal.hh"

namespace dtexl {

struct BatchResult;

/** Everything dtexld needs to serve; built by examples/dtexld.cpp. */
struct DaemonConfig
{
    /** Unix-domain socket path (length-checked against sun_path). */
    std::string socketPath;
    /** Journal + default socket/cache/ledger home; created. */
    std::string stateDir;
    /** Base GpuConfig jobs start from (already validated). */
    GpuConfig baseCfg;
    /** Worker threads executing jobs ([1, 64]). */
    unsigned workers = 1;
    /** Admission-queue depth; beyond it submits are rejected with
     *  retry_after_ms (bounded memory, real backpressure). */
    std::size_t queueDepth = 8;
    /** Default per-job deadline, ms (0 = none). */
    double defaultDeadlineMs = 0.0;
    /** Default max attempts per job for transient failures. */
    std::uint32_t retryMax = 3;
    /** Backoff between attempts (retry.hh); attempts field unused
     *  here — retryMax governs. */
    RetryPolicy backoff{3, 250, 10000, 25, 0x9e3779b9u};
    /** Hint returned with queue-full rejections. */
    std::uint32_t retryAfterMs = 500;
    /** Install SIGINT/SIGTERM drain handlers (tests disable this and
     *  drive requestDrain() directly). */
    bool installSignals = true;
};

/**
 * The daemon. Construct, then run() — which owns the calling thread
 * until the daemon drains. Internally: an accept loop (poll on the
 * listen socket + a signal wake pipe), one thread per connection, a
 * worker pool popping the admission queue, and a retry timer thread
 * re-queueing RetryWait jobs when their backoff elapses.
 */
class Daemon
{
  public:
    explicit Daemon(DaemonConfig cfg);
    ~Daemon();

    Daemon(const Daemon &) = delete;
    Daemon &operator=(const Daemon &) = delete;

    /**
     * Bind, recover journaled jobs, serve until a drain completes.
     * Returns the process exit code: 0 after a command-initiated
     * drain/shutdown, kExitInterrupted (130) after a signal-initiated
     * one. Throws SimError{Io} when the socket or journal cannot be
     * set up.
     */
    int run();

  private:
    // -- threads --
    void acceptLoop();
    void connLoop(int fd);
    void workerLoop(unsigned worker);
    void retryLoop();

    // -- command handlers (return one '\n'-terminated response) --
    std::string dispatch(const std::string &line);
    std::string handleSubmit(const JsonValue &req);
    std::string handleStatus(const JsonValue &req);
    std::string handleCancel(const JsonValue &req);
    std::string handleGc(const JsonValue &req);
    std::string handlePing();
    std::string handleDrain(int level);
    void handleSubscribe(int fd);

    // -- job execution --
    void runAttempt(JobRecord *rec, unsigned worker);
    void finishAttempt(JobRecord *rec, const BatchResult &res);
    GpuConfig buildJobConfig(const JobSpec &spec) const;
    std::uint32_t retryMaxFor(const JobRecord *rec) const;

    // -- drain orchestration --
    void noteDrainSignals();
    void beginDrain(int level);
    std::string buildDrainReport();

    // -- admission --
    std::string admit(JobSpec spec, bool recovered);
    void emitSubmitEvent(const JobRecord *rec);

    std::string renderJobStatus(const JobRecord *rec);

    DaemonConfig cfg_;
    JobTable table_;
    JobJournal journal_;
    Channel<JobRecord *> runq_;

    std::vector<std::thread> workers_;
    std::thread retryThread_;
    std::vector<std::thread> connThreads_;

    // Daemon-wide state under mu_ (cv_ signals drain progress).
    std::mutex mu_;
    std::condition_variable cv_;
    bool admitting_ = true;
    bool cmdDrain_ = false;
    bool reportReady_ = false;
    bool stopThreads_ = false;
    std::string reportJson_;

    /** Serializes admissions so queuedCount_ vs queueDepth is exact. */
    std::mutex admitMu_;
    std::atomic<std::size_t> queuedCount_{0};
    std::atomic<unsigned> liveWorkers_{0};
    std::atomic<std::uint64_t> admitted_{0};
    std::atomic<int> drainLevel_{0};
    std::atomic<bool> queueClosed_{false};

    int listenFd_ = -1;
    int wakePipe_[2] = {-1, -1};
    std::mutex connMu_;
    std::vector<int> connFds_;

    struct Subscriber
    {
        int fd;
        /** Next ledger seq this subscriber expects (replay dedup). */
        std::uint64_t nextSeq;
    };
    std::mutex subMu_;
    std::vector<Subscriber> subs_;
};

} // namespace dtexl

#endif // DTEXL_SERVE_DAEMON_HH

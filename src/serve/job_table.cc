#include "serve/job_table.hh"

#include <algorithm>

namespace dtexl {

const char *
toString(JobState state)
{
    switch (state) {
    case JobState::Queued: return "queued";
    case JobState::Running: return "running";
    case JobState::RetryWait: return "retry_wait";
    case JobState::Done: return "done";
    case JobState::Failed: return "failed";
    case JobState::Cancelled: return "cancelled";
    case JobState::Expired: return "expired";
    case JobState::Interrupted: return "interrupted";
    }
    return "?";
}

bool
jobStateTerminal(JobState state)
{
    return state == JobState::Done || state == JobState::Failed ||
           state == JobState::Cancelled || state == JobState::Expired;
}

// ---- JobSpec <-> JSON ---------------------------------------------

std::string
renderJobSpec(const JobSpec &spec)
{
    JsonWriter w;
    w.str("job", spec.label);
    if (!spec.bench.empty())
        w.str("bench", spec.bench);
    if (!spec.scenePath.empty())
        w.str("scene", spec.scenePath);
    w.u64("frames", spec.frames);
    if (!spec.preset.empty())
        w.str("preset", spec.preset);
    if (!spec.options.empty()) {
        std::string opts = "[";
        bool first = true;
        for (const auto &kv : spec.options) {
            if (!first)
                opts += ',';
            first = false;
            JsonWriter one;
            one.str("k", kv.first).str("v", kv.second);
            std::string line = one.finish();
            line.pop_back(); // strip the '\n' line terminator
            opts += line;
        }
        opts += ']';
        w.raw("options", opts);
    }
    if (spec.deadlineMs > 0.0)
        w.f64("deadline_ms", spec.deadlineMs);
    if (spec.retryMax >= 0)
        w.i64("retry_max", spec.retryMax);
    std::string line = w.finish();
    line.pop_back(); // embedded object: caller adds framing
    return line;
}

bool
parseJobSpec(const JsonValue &v, JobSpec &out, std::string &err)
{
    out = JobSpec{};
    if (!v.isObject()) {
        err = "job spec must be a JSON object";
        return false;
    }
    out.label = v.str("job");
    out.bench = v.str("bench");
    out.scenePath = v.str("scene");
    out.preset = v.str("preset");
    if (out.bench.empty() && out.scenePath.empty()) {
        err = "job spec needs a \"bench\" alias or a \"scene\" path";
        return false;
    }
    if (!out.bench.empty() && !out.scenePath.empty()) {
        err = "\"bench\" and \"scene\" are mutually exclusive";
        return false;
    }

    const double frames = v.num("frames", 1.0);
    if (frames < 1.0 || frames > 100000.0 ||
        frames != static_cast<double>(
                      static_cast<std::uint32_t>(frames))) {
        err = "\"frames\" must be an integer in [1, 100000]";
        return false;
    }
    out.frames = static_cast<std::uint32_t>(frames);
    // A scene file is a single frame; rendering it N times would just
    // repeat frame 0, so pin the count rather than surprise the meter.
    if (!out.scenePath.empty())
        out.frames = 1;

    const double deadline = v.num("deadline_ms", 0.0);
    if (deadline < 0.0) {
        err = "\"deadline_ms\" must be >= 0";
        return false;
    }
    out.deadlineMs = deadline;

    const double retryMax = v.num("retry_max", -1.0);
    if (retryMax < -1.0 || retryMax > 100.0) {
        err = "\"retry_max\" must be in [-1, 100]";
        return false;
    }
    out.retryMax = static_cast<std::int32_t>(retryMax);

    if (const JsonValue *opts = v.find("options")) {
        if (!opts->isArray()) {
            err = "\"options\" must be an array of {\"k\",\"v\"}";
            return false;
        }
        for (const JsonValue &o : opts->items) {
            const std::string k = o.str("k");
            if (!o.isObject() || k.empty()) {
                err = "each option needs a non-empty \"k\" and a "
                      "\"v\" string";
                return false;
            }
            out.options.emplace_back(k, o.str("v"));
        }
    }
    return true;
}

// ---- JobTable -----------------------------------------------------

JobRecord *
JobTable::insert(JobSpec spec, GpuConfig cfg)
{
    std::lock_guard<std::mutex> lk(mu);
    if (byLabel.count(spec.label))
        return nullptr;
    auto rec = std::make_unique<JobRecord>();
    rec->spec = std::move(spec);
    rec->cfg = std::move(cfg);
    JobRecord *raw = rec.get();
    byLabel.emplace(raw->spec.label, raw);
    order.push_back(std::move(rec));
    return raw;
}

void
JobTable::erase(const std::string &label)
{
    std::lock_guard<std::mutex> lk(mu);
    auto it = byLabel.find(label);
    if (it == byLabel.end())
        return;
    JobRecord *rec = it->second;
    byLabel.erase(it);
    order.erase(std::remove_if(order.begin(), order.end(),
                               [&](const auto &p) {
                                   return p.get() == rec;
                               }),
                order.end());
}

JobRecord *
JobTable::find(const std::string &label)
{
    std::lock_guard<std::mutex> lk(mu);
    auto it = byLabel.find(label);
    return it == byLabel.end() ? nullptr : it->second;
}

std::vector<JobRecord *>
JobTable::all()
{
    std::lock_guard<std::mutex> lk(mu);
    std::vector<JobRecord *> out;
    out.reserve(order.size());
    for (const auto &p : order)
        out.push_back(p.get());
    return out;
}

std::size_t
JobTable::size() const
{
    std::lock_guard<std::mutex> lk(mu);
    return order.size();
}

} // namespace dtexl

/**
 * @file
 * Texture sampling footprints. The fragment stage does not need texel
 * values — only which memory a sample touches — so a sample resolves to
 * the set of texel addresses required by the filter (Heckbert-style
 * footprints: 1 for nearest, 4 for bilinear, 8 for trilinear, 8 for the
 * 2-tap anisotropic approximation). The paper (Section II-B) notes that
 * wider filters increase cross-quad reuse; the filter mix is a workload
 * parameter.
 */

#ifndef DTEXL_TEXTURE_SAMPLER_HH
#define DTEXL_TEXTURE_SAMPLER_HH

#include <array>
#include <cstdint>

#include "geom/vec.hh"
#include "texture/texture.hh"

namespace dtexl {

/** Texture filter kind (Table/Section II-B: bilinear..anisotropic). */
enum class FilterMode : std::uint8_t
{
    Nearest,
    Bilinear,
    Trilinear,
    Aniso2x,
};

/** Texel addresses touched by one fragment's sample. */
struct SampleFootprint
{
    static constexpr std::uint32_t kMaxTexels = 16;
    std::array<Addr, kMaxTexels> texels;
    std::uint32_t count = 0;

    void
    add(Addr a)
    {
        if (count < kMaxTexels)
            texels[count++] = a;
    }
};

/** Number of texel reads a filter performs per fragment. */
std::uint32_t texelsPerSample(FilterMode mode);

/**
 * Resolve a sample to its texel footprint.
 *
 * @param tex  Sampled texture.
 * @param mode Filter.
 * @param u,v  Normalized coordinates; wrapped (repeat addressing).
 * @param lod  Level of detail; fractional part drives trilinear.
 */
SampleFootprint sampleFootprint(const TextureDesc &tex, FilterMode mode,
                                float u, float v, float lod);

/**
 * Lane twin of sampleFootprint for the four fragments of one quad,
 * which share texture, filter and lod: the uv-to-texel arithmetic and
 * the Morton texel addressing run one fragment per lane
 * (common/simd.hh), with the float->int conversion scalar per lane.
 * fp[k] is bit-identical to sampleFootprint(tex, mode, uv[k].x,
 * uv[k].y, lod) — texels in the same order — for every fragment,
 * covered or not (tests/test_simd.cc); the caller applies its
 * coverage mask to the results.
 */
void quadSampleFootprints(const TextureDesc &tex, FilterMode mode,
                          const Vec2f uv[4], float lod,
                          SampleFootprint fp[4]);

/**
 * Deduplicate a footprint to cache-line granularity.
 *
 * @param fp         Texel footprint.
 * @param line_bytes Cache line size.
 * @param lines      Output array (size >= kMaxTexels).
 * @return Number of distinct lines.
 */
std::uint32_t footprintLines(const SampleFootprint &fp,
                             std::uint32_t line_bytes,
                             std::array<Addr, SampleFootprint::kMaxTexels>
                                 &lines);

} // namespace dtexl

#endif // DTEXL_TEXTURE_SAMPLER_HH

#include "texture/texture.hh"

#include "common/log.hh"
#include "common/sim_error.hh"

namespace dtexl {

std::string
toString(TexFormat fmt)
{
    switch (fmt) {
      case TexFormat::RGBA8:  return "RGBA8";
      case TexFormat::RGB565: return "RGB565";
      case TexFormat::ETC2:   return "ETC2";
    }
    panic("unknown TexFormat %d", static_cast<int>(fmt));
}

TextureDesc::TextureDesc(TextureId id, Addr base_addr, std::uint32_t side,
                         TexFormat fmt)
    : id_(id), base(base_addr), side_(side), fmt(fmt)
{
    // Structured error, not an assert: the sampler's repeat addressing
    // wraps coordinates with a pow2 mask (texture/sampler.cc wrap(), and
    // its lane twin), so a non-pow2 side would silently alias texels.
    // Sides come from scene files, making this user input, not an
    // internal invariant.
    if (side == 0 || (side & (side - 1)) != 0)
        throwUserError("texture %u: side %u is not a power of two "
                       "(repeat addressing wraps texel coordinates "
                       "with a pow2 mask, so texture sides must be "
                       "powers of two)",
                       id, side);
    Addr a = base_addr;
    for (std::uint32_t s = side; ; s /= 2) {
        mipBases.push_back(a);
        a += levelBytes(fmt, s);
        if (s == 1)
            break;
    }
    total = a - base_addr;
}

} // namespace dtexl

#include "texture/texture.hh"

#include "common/log.hh"

namespace dtexl {

std::string
toString(TexFormat fmt)
{
    switch (fmt) {
      case TexFormat::RGBA8:  return "RGBA8";
      case TexFormat::RGB565: return "RGB565";
      case TexFormat::ETC2:   return "ETC2";
    }
    panic("unknown TexFormat %d", static_cast<int>(fmt));
}

TextureDesc::TextureDesc(TextureId id, Addr base_addr, std::uint32_t side,
                         TexFormat fmt)
    : id_(id), base(base_addr), side_(side), fmt(fmt)
{
    dtexl_assert(side > 0 && (side & (side - 1)) == 0,
                 "texture side must be a power of two");
    Addr a = base_addr;
    for (std::uint32_t s = side; ; s /= 2) {
        mipBases.push_back(a);
        a += levelBytes(fmt, s);
        if (s == 1)
            break;
    }
    total = a - base_addr;
}

} // namespace dtexl

#include "texture/texture.hh"

#include "common/log.hh"
#include "sfc/morton.hh"

namespace dtexl {

std::string
toString(TexFormat fmt)
{
    switch (fmt) {
      case TexFormat::RGBA8:  return "RGBA8";
      case TexFormat::RGB565: return "RGB565";
      case TexFormat::ETC2:   return "ETC2";
    }
    panic("unknown TexFormat %d", static_cast<int>(fmt));
}

TextureDesc::TextureDesc(TextureId id, Addr base_addr, std::uint32_t side,
                         TexFormat fmt)
    : id_(id), base(base_addr), side_(side), fmt(fmt)
{
    dtexl_assert(side > 0 && (side & (side - 1)) == 0,
                 "texture side must be a power of two");
    Addr a = base_addr;
    for (std::uint32_t s = side; ; s /= 2) {
        mipBases.push_back(a);
        a += levelBytes(fmt, s);
        if (s == 1)
            break;
    }
    total = a - base_addr;
}

Addr
TextureDesc::texelAddr(std::uint32_t level, std::uint32_t x,
                       std::uint32_t y) const
{
    dtexl_assert(level < mipBases.size(), "mip level out of range");
    const std::uint32_t s = levelSide(level);
    dtexl_assert(x < s && y < s, "texel out of range");
    const std::uint32_t bs = blockSide(fmt);
    if (bs > 1) {
        // Compressed: address the 4x4 block in block-Morton order;
        // each ETC2 block is 8 bytes.
        return mipBases[level] + mortonEncode(x / bs, y / bs) * 8;
    }
    const TexelRate r = texelRate(fmt);
    return mipBases[level] + mortonEncode(x, y) * r.bytesNum;
}

} // namespace dtexl

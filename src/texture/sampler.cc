#include "texture/sampler.hh"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/log.hh"
#include "common/simd.hh"
#include "sfc/morton_lanes.hh"

namespace dtexl {

namespace {

/**
 * Wrap a texel coordinate into [0, side) for repeat addressing. Sides
 * are powers of two (asserted by TextureDesc), so the Euclidean
 * remainder is the low bits of the two's-complement representation —
 * a mask instead of a 64-bit division.
 */
std::uint32_t
wrap(std::int64_t c, std::uint32_t side)
{
    return static_cast<std::uint32_t>(c) & (side - 1);
}

/** Add the 2x2 bilinear tap around (u, v) at the given level. */
void
addBilinearTap(const TextureDesc &tex, std::uint32_t level, float u,
               float v, SampleFootprint &fp)
{
    const std::uint32_t side = tex.levelSide(level);
    // Texel-centre convention: the tap spans floor(x-0.5)..+1.
    const float x = u * static_cast<float>(side) - 0.5f;
    const float y = v * static_cast<float>(side) - 0.5f;
    const auto x0 = static_cast<std::int64_t>(std::floor(x));
    const auto y0 = static_cast<std::int64_t>(std::floor(y));
    for (int dy = 0; dy < 2; ++dy) {
        for (int dx = 0; dx < 2; ++dx) {
            fp.add(tex.texelAddr(level, wrap(x0 + dx, side),
                                 wrap(y0 + dy, side)));
        }
    }
}

/**
 * Lane twin of TextureDesc::texelAddr: four texel addresses per call,
 * one fragment per lane. Same arithmetic — Morton code times the
 * format's bytes-per-unit plus the level base — as lane integer ops,
 * so each lane equals the scalar call exactly.
 */
U64x4
texelAddr4(const TextureDesc &tex, std::uint32_t level, U32x4 x, U32x4 y)
{
    const std::uint32_t bs = blockSide(tex.format());
    const U64x4 base = splatU64x4(tex.mipBase(level));
    if (bs > 1) {
        // Compressed: address the block (x/bs, y/bs); each ETC2 block
        // is 8 bytes. bs is a power of two, so the divides are shifts.
        const int sh = std::countr_zero(bs);
        const U64x4 code = mortonEncode4(shrU4(x, sh), shrU4(y, sh));
        return base + shlU64x4(code, 3);
    }
    // Uncompressed bytes/texel (4 for RGBA8, 2 for RGB565) is a power
    // of two, so the multiply is a lane shift — mulU64x4 is slow on
    // backends without a native 64-bit lane multiply.
    const TexelRate r = texelRate(tex.format());
    return base +
           shlU64x4(mortonEncode4(x, y), std::countr_zero(r.bytesNum));
}

/**
 * Lane twin of addBilinearTap for four fragments sharing a level: the
 * texel-centre offset runs 4-wide; floor and the float->int conversion
 * stay scalar per lane (no bit-exact vector floor on the SSE2
 * baseline). Truncating the int64 texel coordinate to u32 up front is
 * exact because wrap() keeps only the low bits and u32 lane adds agree
 * with int64 adds mod 2^32. Taps append to each fragment's footprint
 * in the same (dy, dx) order as the scalar loop.
 */
void
addBilinearTap4(const TextureDesc &tex, std::uint32_t level, F32x4 u,
                F32x4 v, SampleFootprint fp[4])
{
    const std::uint32_t side = tex.levelSide(level);
    const F32x4 sv = splatF4(static_cast<float>(side));
    const F32x4 half = splatF4(0.5f);
    float xs[4], ys[4];
    storeF4(xs, u * sv - half);
    storeF4(ys, v * sv - half);
    std::uint32_t xi[4], yi[4];
    for (int k = 0; k < 4; ++k) {
        xi[k] = static_cast<std::uint32_t>(
            static_cast<std::int64_t>(std::floor(xs[k])));
        yi[k] = static_cast<std::uint32_t>(
            static_cast<std::int64_t>(std::floor(ys[k])));
    }
    const U32x4 mask = splatU4(side - 1);
    const U32x4 x0 = makeU4(xi[0], xi[1], xi[2], xi[3]);
    const U32x4 y0 = makeU4(yi[0], yi[1], yi[2], yi[3]);
    for (int dy = 0; dy < 2; ++dy) {
        for (int dx = 0; dx < 2; ++dx) {
            const U32x4 wx =
                (x0 + splatU4(static_cast<std::uint32_t>(dx))) & mask;
            const U32x4 wy =
                (y0 + splatU4(static_cast<std::uint32_t>(dy))) & mask;
            Addr a[4];
            storeU64x4(a, texelAddr4(tex, level, wx, wy));
            for (int k = 0; k < 4; ++k)
                fp[k].add(a[k]);
        }
    }
}

} // namespace

std::uint32_t
texelsPerSample(FilterMode mode)
{
    switch (mode) {
      case FilterMode::Nearest:   return 1;
      case FilterMode::Bilinear:  return 4;
      case FilterMode::Trilinear: return 8;
      case FilterMode::Aniso2x:   return 8;
    }
    panic("unknown FilterMode %d", static_cast<int>(mode));
}

SampleFootprint
sampleFootprint(const TextureDesc &tex, FilterMode mode, float u, float v,
                float lod)
{
    SampleFootprint fp;
    const auto max_level =
        static_cast<float>(tex.numMipLevels() - 1);
    const float clamped = std::clamp(lod, 0.0f, max_level);
    const auto l0 = static_cast<std::uint32_t>(clamped);

    switch (mode) {
      case FilterMode::Nearest: {
        const std::uint32_t side = tex.levelSide(l0);
        const auto x = static_cast<std::int64_t>(
            std::floor(u * static_cast<float>(side)));
        const auto y = static_cast<std::int64_t>(
            std::floor(v * static_cast<float>(side)));
        fp.add(tex.texelAddr(l0, wrap(x, side), wrap(y, side)));
        break;
      }
      case FilterMode::Bilinear:
        addBilinearTap(tex, l0, u, v, fp);
        break;
      case FilterMode::Trilinear: {
        addBilinearTap(tex, l0, u, v, fp);
        const std::uint32_t l1 =
            std::min(l0 + 1, tex.numMipLevels() - 1);
        addBilinearTap(tex, l1, u, v, fp);
        break;
      }
      case FilterMode::Aniso2x: {
        // Two bilinear taps spread along the axis of anisotropy
        // (approximated as u); Heckbert-style elliptical footprint.
        const float du =
            0.5f / static_cast<float>(tex.levelSide(l0));
        addBilinearTap(tex, l0, u - du, v, fp);
        addBilinearTap(tex, l0, u + du, v, fp);
        break;
      }
    }
    return fp;
}

void
quadSampleFootprints(const TextureDesc &tex, FilterMode mode,
                     const Vec2f uv[4], float lod, SampleFootprint fp[4])
{
    float us[4], vs[4];
    for (int k = 0; k < 4; ++k) {
        us[k] = uv[k].x;
        vs[k] = uv[k].y;
    }
    const F32x4 u = loadF4(us);
    const F32x4 v = loadF4(vs);
    // The level selection is shared by the whole quad (one lod), so it
    // stays scalar — identical to sampleFootprint.
    const auto max_level = static_cast<float>(tex.numMipLevels() - 1);
    const float clamped = std::clamp(lod, 0.0f, max_level);
    const auto l0 = static_cast<std::uint32_t>(clamped);

    switch (mode) {
      case FilterMode::Nearest: {
        const std::uint32_t side = tex.levelSide(l0);
        float xs[4], ys[4];
        const F32x4 sv = splatF4(static_cast<float>(side));
        storeF4(xs, u * sv);
        storeF4(ys, v * sv);
        std::uint32_t xi[4], yi[4];
        for (int k = 0; k < 4; ++k) {
            xi[k] = static_cast<std::uint32_t>(
                static_cast<std::int64_t>(std::floor(xs[k])));
            yi[k] = static_cast<std::uint32_t>(
                static_cast<std::int64_t>(std::floor(ys[k])));
        }
        const U32x4 mask = splatU4(side - 1);
        const U32x4 wx = makeU4(xi[0], xi[1], xi[2], xi[3]) & mask;
        const U32x4 wy = makeU4(yi[0], yi[1], yi[2], yi[3]) & mask;
        Addr a[4];
        storeU64x4(a, texelAddr4(tex, l0, wx, wy));
        for (int k = 0; k < 4; ++k)
            fp[k].add(a[k]);
        break;
      }
      case FilterMode::Bilinear:
        addBilinearTap4(tex, l0, u, v, fp);
        break;
      case FilterMode::Trilinear: {
        addBilinearTap4(tex, l0, u, v, fp);
        const std::uint32_t l1 =
            std::min(l0 + 1, tex.numMipLevels() - 1);
        addBilinearTap4(tex, l1, u, v, fp);
        break;
      }
      case FilterMode::Aniso2x: {
        const float du =
            0.5f / static_cast<float>(tex.levelSide(l0));
        const F32x4 duv = splatF4(du);
        addBilinearTap4(tex, l0, u - duv, v, fp);
        addBilinearTap4(tex, l0, u + duv, v, fp);
        break;
      }
    }
}

std::uint32_t
footprintLines(const SampleFootprint &fp, std::uint32_t line_bytes,
               std::array<Addr, SampleFootprint::kMaxTexels> &lines)
{
    std::uint32_t n = 0;
    for (std::uint32_t i = 0; i < fp.count; ++i) {
        const Addr line = fp.texels[i] & ~Addr{line_bytes - 1};
        bool seen = false;
        for (std::uint32_t j = 0; j < n; ++j) {
            if (lines[j] == line) {
                seen = true;
                break;
            }
        }
        if (!seen)
            lines[n++] = line;
    }
    return n;
}

} // namespace dtexl

#include "texture/sampler.hh"

#include <algorithm>
#include <cmath>

#include "common/log.hh"

namespace dtexl {

namespace {

/**
 * Wrap a texel coordinate into [0, side) for repeat addressing. Sides
 * are powers of two (asserted by TextureDesc), so the Euclidean
 * remainder is the low bits of the two's-complement representation —
 * a mask instead of a 64-bit division.
 */
std::uint32_t
wrap(std::int64_t c, std::uint32_t side)
{
    return static_cast<std::uint32_t>(c) & (side - 1);
}

/** Add the 2x2 bilinear tap around (u, v) at the given level. */
void
addBilinearTap(const TextureDesc &tex, std::uint32_t level, float u,
               float v, SampleFootprint &fp)
{
    const std::uint32_t side = tex.levelSide(level);
    // Texel-centre convention: the tap spans floor(x-0.5)..+1.
    const float x = u * static_cast<float>(side) - 0.5f;
    const float y = v * static_cast<float>(side) - 0.5f;
    const auto x0 = static_cast<std::int64_t>(std::floor(x));
    const auto y0 = static_cast<std::int64_t>(std::floor(y));
    for (int dy = 0; dy < 2; ++dy) {
        for (int dx = 0; dx < 2; ++dx) {
            fp.add(tex.texelAddr(level, wrap(x0 + dx, side),
                                 wrap(y0 + dy, side)));
        }
    }
}

} // namespace

std::uint32_t
texelsPerSample(FilterMode mode)
{
    switch (mode) {
      case FilterMode::Nearest:   return 1;
      case FilterMode::Bilinear:  return 4;
      case FilterMode::Trilinear: return 8;
      case FilterMode::Aniso2x:   return 8;
    }
    panic("unknown FilterMode %d", static_cast<int>(mode));
}

SampleFootprint
sampleFootprint(const TextureDesc &tex, FilterMode mode, float u, float v,
                float lod)
{
    SampleFootprint fp;
    const auto max_level =
        static_cast<float>(tex.numMipLevels() - 1);
    const float clamped = std::clamp(lod, 0.0f, max_level);
    const auto l0 = static_cast<std::uint32_t>(clamped);

    switch (mode) {
      case FilterMode::Nearest: {
        const std::uint32_t side = tex.levelSide(l0);
        const auto x = static_cast<std::int64_t>(
            std::floor(u * static_cast<float>(side)));
        const auto y = static_cast<std::int64_t>(
            std::floor(v * static_cast<float>(side)));
        fp.add(tex.texelAddr(l0, wrap(x, side), wrap(y, side)));
        break;
      }
      case FilterMode::Bilinear:
        addBilinearTap(tex, l0, u, v, fp);
        break;
      case FilterMode::Trilinear: {
        addBilinearTap(tex, l0, u, v, fp);
        const std::uint32_t l1 =
            std::min(l0 + 1, tex.numMipLevels() - 1);
        addBilinearTap(tex, l1, u, v, fp);
        break;
      }
      case FilterMode::Aniso2x: {
        // Two bilinear taps spread along the axis of anisotropy
        // (approximated as u); Heckbert-style elliptical footprint.
        const float du =
            0.5f / static_cast<float>(tex.levelSide(l0));
        addBilinearTap(tex, l0, u - du, v, fp);
        addBilinearTap(tex, l0, u + du, v, fp);
        break;
      }
    }
    return fp;
}

std::uint32_t
footprintLines(const SampleFootprint &fp, std::uint32_t line_bytes,
               std::array<Addr, SampleFootprint::kMaxTexels> &lines)
{
    std::uint32_t n = 0;
    for (std::uint32_t i = 0; i < fp.count; ++i) {
        const Addr line = fp.texels[i] & ~Addr{line_bytes - 1};
        bool seen = false;
        for (std::uint32_t j = 0; j < n; ++j) {
            if (lines[j] == line) {
                seen = true;
                break;
            }
        }
        if (!seen)
            lines[n++] = line;
    }
    return n;
}

} // namespace dtexl

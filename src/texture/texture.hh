/**
 * @file
 * Texture map descriptors and their memory layout.
 *
 * Textures are stored mip-chained with each level laid out in Morton
 * (tiled) order, the standard layout in mobile GPUs: with RGBA8 texels
 * a 64 B cache line holds a 4x4 texel block, so the footprints of
 * adjacent screen quads land in the same line — the physical mechanism
 * behind the paper's replication/locality trade-off. Compressed
 * formats (see format.hh) pack a wider screen region per line.
 */

#ifndef DTEXL_TEXTURE_TEXTURE_HH
#define DTEXL_TEXTURE_TEXTURE_HH

#include <cstdint>
#include <vector>

#include "common/log.hh"
#include "common/types.hh"
#include "sfc/morton.hh"
#include "texture/format.hh"

namespace dtexl {

/** Identifier of a texture within a scene. */
using TextureId = std::uint32_t;

/**
 * An immutable texture map: square, power-of-two side, full mip chain,
 * Morton-tiled per level (block-Morton for compressed formats).
 */
class TextureDesc
{
  public:
    /**
     * @param id        Scene-unique texture id.
     * @param base_addr Byte address of mip level 0.
     * @param side      Texels per side; must be a power of two.
     * @param fmt       Texel storage format.
     */
    TextureDesc(TextureId id, Addr base_addr, std::uint32_t side,
                TexFormat fmt = TexFormat::RGBA8);

    TextureId id() const { return id_; }
    Addr baseAddr() const { return base; }
    std::uint32_t side() const { return side_; }
    TexFormat format() const { return fmt; }
    std::uint32_t numMipLevels() const
    {
        return static_cast<std::uint32_t>(mipBases.size());
    }

    /** Side length of mip level @p level (>= 1). */
    std::uint32_t
    levelSide(std::uint32_t level) const
    {
        return side_ >> level ? side_ >> level : 1u;
    }

    /**
     * Byte address of texel (x, y) at the given mip level. For
     * compressed formats this is the address of the texel's block (the
     * unit actually fetched). Defined inline: this is the innermost
     * call of the texture-sampling hot path (four calls per bilinear
     * tap).
     */
    Addr
    texelAddr(std::uint32_t level, std::uint32_t x,
              std::uint32_t y) const
    {
        dtexl_assert(level < mipBases.size(), "mip level out of range");
        dtexl_assert(x < levelSide(level) && y < levelSide(level),
                     "texel out of range");
        const std::uint32_t bs = blockSide(fmt);
        if (bs > 1) {
            // Compressed: address the 4x4 block in block-Morton order;
            // each ETC2 block is 8 bytes.
            return mipBases[level] + mortonEncode(x / bs, y / bs) * 8;
        }
        const TexelRate r = texelRate(fmt);
        return mipBases[level] + mortonEncode(x, y) * r.bytesNum;
    }

    /**
     * Byte address of mip level @p level; the batched address
     * generator (texture/sampler.cc) adds lane-computed Morton offsets
     * to this base.
     */
    Addr
    mipBase(std::uint32_t level) const
    {
        dtexl_assert(level < mipBases.size(), "mip level out of range");
        return mipBases[level];
    }

    /** Total bytes of the whole mip chain. */
    std::uint64_t totalBytes() const { return total; }

    /** Bytes per RGBA8 texel (compatibility constant). */
    static constexpr std::uint32_t kTexelBytes = 4;

  private:
    TextureId id_;
    Addr base;
    std::uint32_t side_;
    TexFormat fmt;
    std::vector<Addr> mipBases;  ///< absolute base address per level
    std::uint64_t total = 0;
};

} // namespace dtexl

#endif // DTEXL_TEXTURE_TEXTURE_HH

/**
 * @file
 * Texel storage formats. Mobile GPUs ship most textures block-
 * compressed (ETC2/ASTC), which packs more texels into each cache line
 * and therefore changes the locality economics this paper is about:
 * one 64 B line holds a 4x4 block of RGBA8 texels but an 8x8 region of
 * ETC2 texels, so compressed textures widen the screen area whose
 * quads share a line — raising both the replication cost of
 * fine-grained grouping and the benefit of coarse-grained grouping.
 */

#ifndef DTEXL_TEXTURE_FORMAT_HH
#define DTEXL_TEXTURE_FORMAT_HH

#include <cstdint>
#include <string>

namespace dtexl {

/** Texel storage format. */
enum class TexFormat : std::uint8_t
{
    RGBA8,   ///< 4 bytes/texel, uncompressed
    RGB565,  ///< 2 bytes/texel, uncompressed
    ETC2,    ///< 8 bytes per 4x4 block = 0.5 bytes/texel
};

/** Short name for reports. */
std::string toString(TexFormat fmt);

/**
 * Numerator/denominator of bytes per texel (ETC2 is sub-byte, so the
 * rate is expressed as a fraction).
 */
struct TexelRate
{
    std::uint32_t bytesNum;
    std::uint32_t texelsDen;
};

/** Storage rate of a format. */
constexpr TexelRate
texelRate(TexFormat fmt)
{
    switch (fmt) {
      case TexFormat::RGBA8:  return {4, 1};
      case TexFormat::RGB565: return {2, 1};
      case TexFormat::ETC2:   return {1, 2};
    }
    return {4, 1};
}

/**
 * Side of the square block that a format addresses atomically:
 * 1 for uncompressed formats, 4 for ETC2 (an 8-byte unit decodes a
 * whole 4x4 block).
 */
constexpr std::uint32_t
blockSide(TexFormat fmt)
{
    return fmt == TexFormat::ETC2 ? 4u : 1u;
}

/** Bytes of one mip level of the given side under a format. */
constexpr std::uint64_t
levelBytes(TexFormat fmt, std::uint32_t side)
{
    const TexelRate r = texelRate(fmt);
    const std::uint64_t texels = std::uint64_t{side} * side;
    // Round up to whole blocks for compressed formats.
    const std::uint32_t bs = blockSide(fmt);
    const std::uint64_t blocks_side = (side + bs - 1) / bs;
    const std::uint64_t padded = blocks_side * bs * blocks_side * bs;
    return (fmt == TexFormat::ETC2 ? padded : texels) * r.bytesNum /
           r.texelsDen;
}

} // namespace dtexl

#endif // DTEXL_TEXTURE_FORMAT_HH

/**
 * @file
 * Morton (Z-order) curve encoding. Used both for the Z-order tile
 * traversal (Figure 7a) and for the tiled texel layout of textures in
 * memory (a 64 B cache line holds a Morton-ordered 4x4 texel block).
 */

#ifndef DTEXL_SFC_MORTON_HH
#define DTEXL_SFC_MORTON_HH

#include <cstdint>

namespace dtexl {

/** Spread the low 32 bits of x so bit i lands at bit 2i. */
inline constexpr std::uint64_t
mortonSpread(std::uint64_t x)
{
    x &= 0xffffffffull;
    x = (x | (x << 16)) & 0x0000ffff0000ffffull;
    x = (x | (x << 8))  & 0x00ff00ff00ff00ffull;
    x = (x | (x << 4))  & 0x0f0f0f0f0f0f0f0full;
    x = (x | (x << 2))  & 0x3333333333333333ull;
    x = (x | (x << 1))  & 0x5555555555555555ull;
    return x;
}

/** Inverse of mortonSpread. */
inline constexpr std::uint64_t
mortonCompact(std::uint64_t x)
{
    x &= 0x5555555555555555ull;
    x = (x | (x >> 1))  & 0x3333333333333333ull;
    x = (x | (x >> 2))  & 0x0f0f0f0f0f0f0f0full;
    x = (x | (x >> 4))  & 0x00ff00ff00ff00ffull;
    x = (x | (x >> 8))  & 0x0000ffff0000ffffull;
    x = (x | (x >> 16)) & 0x00000000ffffffffull;
    return x;
}

/** Interleave (x, y) into a Morton code; x occupies the even bits. */
inline constexpr std::uint64_t
mortonEncode(std::uint32_t x, std::uint32_t y)
{
    return mortonSpread(x) | (mortonSpread(y) << 1);
}

/** Extract x (even bits) from a Morton code. */
inline constexpr std::uint32_t
mortonDecodeX(std::uint64_t code)
{
    return static_cast<std::uint32_t>(mortonCompact(code));
}

/** Extract y (odd bits) from a Morton code. */
inline constexpr std::uint32_t
mortonDecodeY(std::uint64_t code)
{
    return static_cast<std::uint32_t>(mortonCompact(code >> 1));
}

} // namespace dtexl

#endif // DTEXL_SFC_MORTON_HH

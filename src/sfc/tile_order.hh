/**
 * @file
 * Tile traversal orders for the Tile Fetcher (paper Figure 7).
 *
 * A traversal is a permutation of the WxH tile grid. Z-order and the
 * rectangle-adapted Hilbert order are locality-preserving; Scanline and
 * S-order are the conventional raster traversals.
 */

#ifndef DTEXL_SFC_TILE_ORDER_HH
#define DTEXL_SFC_TILE_ORDER_HH

#include <cstdint>
#include <vector>

#include "common/policies.hh"
#include "common/types.hh"

namespace dtexl {

/**
 * Build the traversal for the given order over a tilesX x tilesY grid.
 *
 * @param simd Auto decodes the Z-order and RectHilbert curves four
 *             cells per lane op (common/simd.hh); Scalar keeps the
 *             original per-cell loops. The traversal is bit-identical
 *             either way (tests/test_simd.cc).
 * @return Tile IDs (id = y * tilesX + x) in processing order; every tile
 *         appears exactly once.
 */
std::vector<TileId> makeTileOrder(TileOrder order, std::uint32_t tiles_x,
                                  std::uint32_t tiles_y,
                                  SimdMode simd = SimdMode::Auto);

/** Grid coordinates of a tile ID. */
inline Coord2
tileCoord(TileId id, std::uint32_t tiles_x)
{
    return Coord2{static_cast<std::int32_t>(id % tiles_x),
                  static_cast<std::int32_t>(id / tiles_x)};
}

/**
 * Locality figure of merit: the fraction of consecutive traversal steps
 * that move to an edge-adjacent tile. 1.0 means the traversal never
 * jumps; higher is better for cross-tile texture reuse.
 */
double adjacencyFraction(const std::vector<TileId> &order,
                         std::uint32_t tiles_x);

/**
 * Side length of the square sub-frame the paper's rectangular Hilbert
 * adaptation uses (Section III-C: "a square sub-frame with 8x8 tiles").
 */
inline constexpr std::uint32_t kHilbertSubframeSide = 8;

} // namespace dtexl

#endif // DTEXL_SFC_TILE_ORDER_HH

#include "sfc/hilbert.hh"

#include "common/log.hh"
#include "common/simd.hh"

namespace dtexl {

namespace {

/** One quadrant rotation/reflection step of the classic iterative form. */
void
rot(std::uint32_t n, std::uint32_t &x, std::uint32_t &y,
    std::uint32_t rx, std::uint32_t ry)
{
    if (ry == 0) {
        if (rx == 1) {
            x = n - 1 - x;
            y = n - 1 - y;
        }
        std::uint32_t t = x;
        x = y;
        y = t;
    }
}

bool
isPow2(std::uint32_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

} // namespace

void
hilbertD2XY(std::uint32_t side, std::uint64_t d,
            std::uint32_t &x, std::uint32_t &y)
{
    dtexl_assert(isPow2(side), "hilbert side must be a power of two");
    dtexl_assert(d < std::uint64_t{side} * side, "hilbert d out of range");
    std::uint64_t t = d;
    x = y = 0;
    for (std::uint32_t s = 1; s < side; s *= 2) {
        std::uint32_t rx = 1 & static_cast<std::uint32_t>(t / 2);
        std::uint32_t ry = 1 & static_cast<std::uint32_t>(t ^ rx);
        rot(s, x, y, rx, ry);
        x += s * rx;
        y += s * ry;
        t /= 4;
    }
}

void
hilbertD2XY4(std::uint32_t side, const std::uint32_t d[4],
             std::uint32_t x[4], std::uint32_t y[4])
{
    dtexl_assert(isPow2(side), "hilbert side must be a power of two");
    for (int j = 0; j < 4; ++j)
        dtexl_assert(d[j] < side * side, "hilbert d out of range");
    const U32x4 one = splatU4(1);
    U32x4 t = makeU4(d[0], d[1], d[2], d[3]);
    U32x4 xv = splatU4(0);
    U32x4 yv = splatU4(0);
    for (std::uint32_t s = 1; s < side; s *= 2) {
        const U32x4 rx = shrU4(t, 1) & one;
        const U32x4 ry = (t ^ rx) & one;
        // rot(), lane form: where ry == 0, reflect (if rx == 1) and
        // swap x/y. cmpEqU4 yields all-ones masks, so the reflected
        // and swapped values route through bitwise selects.
        const U32x4 ry0 = cmpEqU4(ry, splatU4(0));
        const U32x4 refl = ry0 & cmpEqU4(rx, one);
        const U32x4 sm1 = splatU4(s - 1);
        xv = selectU4(refl, sm1 - xv, xv);
        yv = selectU4(refl, sm1 - yv, yv);
        const U32x4 nx = selectU4(ry0, yv, xv);
        const U32x4 ny = selectU4(ry0, xv, yv);
        // x += s * rx; y += s * ry — rx/ry are 0/1, so mask s in.
        const U32x4 sv = splatU4(s);
        xv = nx + (sv & cmpEqU4(rx, one));
        yv = ny + (sv & cmpEqU4(ry, one));
        t = shrU4(t, 2);
    }
    storeU4(x, xv);
    storeU4(y, yv);
}

std::uint64_t
hilbertXY2D(std::uint32_t side, std::uint32_t x, std::uint32_t y)
{
    dtexl_assert(isPow2(side), "hilbert side must be a power of two");
    dtexl_assert(x < side && y < side, "hilbert coordinate out of range");
    std::uint64_t d = 0;
    for (std::uint32_t s = side / 2; s > 0; s /= 2) {
        std::uint32_t rx = (x & s) > 0 ? 1 : 0;
        std::uint32_t ry = (y & s) > 0 ? 1 : 0;
        d += std::uint64_t{s} * s * ((3 * rx) ^ ry);
        rot(s, x, y, rx, ry);
    }
    return d;
}

} // namespace dtexl

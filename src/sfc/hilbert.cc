#include "sfc/hilbert.hh"

#include "common/log.hh"

namespace dtexl {

namespace {

/** One quadrant rotation/reflection step of the classic iterative form. */
void
rot(std::uint32_t n, std::uint32_t &x, std::uint32_t &y,
    std::uint32_t rx, std::uint32_t ry)
{
    if (ry == 0) {
        if (rx == 1) {
            x = n - 1 - x;
            y = n - 1 - y;
        }
        std::uint32_t t = x;
        x = y;
        y = t;
    }
}

bool
isPow2(std::uint32_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

} // namespace

void
hilbertD2XY(std::uint32_t side, std::uint64_t d,
            std::uint32_t &x, std::uint32_t &y)
{
    dtexl_assert(isPow2(side), "hilbert side must be a power of two");
    dtexl_assert(d < std::uint64_t{side} * side, "hilbert d out of range");
    std::uint64_t t = d;
    x = y = 0;
    for (std::uint32_t s = 1; s < side; s *= 2) {
        std::uint32_t rx = 1 & static_cast<std::uint32_t>(t / 2);
        std::uint32_t ry = 1 & static_cast<std::uint32_t>(t ^ rx);
        rot(s, x, y, rx, ry);
        x += s * rx;
        y += s * ry;
        t /= 4;
    }
}

std::uint64_t
hilbertXY2D(std::uint32_t side, std::uint32_t x, std::uint32_t y)
{
    dtexl_assert(isPow2(side), "hilbert side must be a power of two");
    dtexl_assert(x < side && y < side, "hilbert coordinate out of range");
    std::uint64_t d = 0;
    for (std::uint32_t s = side / 2; s > 0; s /= 2) {
        std::uint32_t rx = (x & s) > 0 ? 1 : 0;
        std::uint32_t ry = (y & s) > 0 ? 1 : 0;
        d += std::uint64_t{s} * s * ((3 * rx) ^ ry);
        rot(s, x, y, rx, ry);
    }
    return d;
}

} // namespace dtexl

#include "sfc/tile_order.hh"

#include <algorithm>

#include "common/log.hh"
#include "common/simd.hh"
#include "sfc/hilbert.hh"
#include "sfc/morton.hh"
#include "sfc/morton_lanes.hh"

namespace dtexl {

namespace {

std::vector<TileId>
scanlineOrder(std::uint32_t tx, std::uint32_t ty)
{
    std::vector<TileId> out;
    out.reserve(std::size_t{tx} * ty);
    for (std::uint32_t y = 0; y < ty; ++y)
        for (std::uint32_t x = 0; x < tx; ++x)
            out.push_back(y * tx + x);
    return out;
}

std::vector<TileId>
sOrder(std::uint32_t tx, std::uint32_t ty)
{
    std::vector<TileId> out;
    out.reserve(std::size_t{tx} * ty);
    for (std::uint32_t y = 0; y < ty; ++y) {
        if (y % 2 == 0) {
            for (std::uint32_t x = 0; x < tx; ++x)
                out.push_back(y * tx + x);
        } else {
            for (std::uint32_t x = tx; x-- > 0;)
                out.push_back(y * tx + x);
        }
    }
    return out;
}

/**
 * Z-order generalized to rectangles: enumerate Morton codes of the
 * enclosing power-of-two square and drop out-of-grid cells. This is the
 * conventional way GPUs walk non-square grids in Morton order.
 */
std::vector<TileId>
zOrder(std::uint32_t tx, std::uint32_t ty, SimdMode simd)
{
    std::uint32_t side = 1;
    while (side < tx || side < ty)
        side *= 2;
    std::vector<TileId> out;
    out.reserve(std::size_t{tx} * ty);
    const std::uint64_t total = std::uint64_t{side} * side;
    std::uint64_t code = 0;
    if (simd == SimdMode::Auto) {
        // Decode four consecutive codes per lane op; the in-grid
        // filter and push stay scalar so the emission order is
        // untouched.
        for (; code + 4 <= total; code += 4) {
            const U64x4 c =
                makeU64x4(code, code + 1, code + 2, code + 3);
            std::uint32_t xs[4], ys[4];
            storeU4(xs, mortonDecodeX4(c));
            storeU4(ys, mortonDecodeY4(c));
            for (int j = 0; j < 4; ++j)
                if (xs[j] < tx && ys[j] < ty)
                    out.push_back(ys[j] * tx + xs[j]);
        }
    }
    for (; code < total; ++code) {
        std::uint32_t x = mortonDecodeX(code);
        std::uint32_t y = mortonDecodeY(code);
        if (x < tx && y < ty)
            out.push_back(y * tx + x);
    }
    return out;
}

/**
 * The paper's rectangular Hilbert adaptation: Hilbert order inside 8x8
 * tile sub-frames, sub-frames visited boustrophedonically ("in the shape
 * of an S"). Cells outside the grid (partial edge sub-frames) are
 * skipped. Odd sub-frame rows also mirror the intra-sub-frame curve
 * horizontally so the traversal stays near the sub-frame seam.
 */
std::vector<TileId>
rectHilbertOrder(std::uint32_t tx, std::uint32_t ty, SimdMode simd)
{
    const std::uint32_t side = kHilbertSubframeSide;
    const std::uint32_t sfx = divCeil(tx, side);
    const std::uint32_t sfy = divCeil(ty, side);
    const std::uint32_t total = side * side;
    // Under --simd=auto, resolve the intra-sub-frame curve once, four
    // distances per lane op; every sub-frame replays the same local
    // (lx, ly) sequence, so the per-sub-frame work reduces to the
    // offset/mirror/filter scalar tail and emission order is
    // untouched.
    std::vector<std::uint32_t> lxs(total), lys(total);
    if (simd == SimdMode::Auto) {
        std::uint32_t d = 0;
        for (; d + 4 <= total; d += 4) {
            const std::uint32_t ds[4] = {d, d + 1, d + 2, d + 3};
            hilbertD2XY4(side, ds, &lxs[d], &lys[d]);
        }
        for (; d < total; ++d)
            hilbertD2XY(side, d, lxs[d], lys[d]);
    } else {
        for (std::uint32_t d = 0; d < total; ++d)
            hilbertD2XY(side, d, lxs[d], lys[d]);
    }
    std::vector<TileId> out;
    out.reserve(std::size_t{tx} * ty);
    for (std::uint32_t sy = 0; sy < sfy; ++sy) {
        bool reverse_row = (sy % 2 == 1);
        for (std::uint32_t i = 0; i < sfx; ++i) {
            std::uint32_t sx = reverse_row ? sfx - 1 - i : i;
            for (std::uint32_t d = 0; d < total; ++d) {
                std::uint32_t lx = lxs[d];
                std::uint32_t ly = lys[d];
                if (reverse_row)
                    lx = side - 1 - lx;
                std::uint32_t x = sx * side + lx;
                std::uint32_t y = sy * side + ly;
                if (x < tx && y < ty)
                    out.push_back(y * tx + x);
            }
        }
    }
    return out;
}

} // namespace

std::vector<TileId>
makeTileOrder(TileOrder order, std::uint32_t tiles_x, std::uint32_t tiles_y,
              SimdMode simd)
{
    dtexl_assert(tiles_x > 0 && tiles_y > 0);
    switch (order) {
      case TileOrder::Scanline:
        return scanlineOrder(tiles_x, tiles_y);
      case TileOrder::SOrder:
        return sOrder(tiles_x, tiles_y);
      case TileOrder::ZOrder:
        return zOrder(tiles_x, tiles_y, simd);
      case TileOrder::RectHilbert:
        return rectHilbertOrder(tiles_x, tiles_y, simd);
    }
    panic("unknown TileOrder %d", static_cast<int>(order));
}

double
adjacencyFraction(const std::vector<TileId> &order, std::uint32_t tiles_x)
{
    if (order.size() < 2)
        return 1.0;
    std::size_t adjacent = 0;
    for (std::size_t i = 1; i < order.size(); ++i) {
        if (isEdgeAdjacent(tileCoord(order[i - 1], tiles_x),
                           tileCoord(order[i], tiles_x))) {
            ++adjacent;
        }
    }
    return static_cast<double>(adjacent) /
           static_cast<double>(order.size() - 1);
}

} // namespace dtexl

/**
 * @file
 * Integer-lane twins of the Morton codec (sfc/morton.hh): four codes
 * encode or decode per call over the portable lane layer
 * (common/simd.hh). Every operation is a shift/mask/or on u64 lanes —
 * exact on all backends — so lane and scalar results are bit-identical
 * by construction (tests/test_simd.cc sweeps the codec over random and
 * boundary coordinates). Consumers: batched texel-address generation
 * (texture/sampler.cc) and the Z-order tile traversal
 * (sfc/tile_order.cc).
 */

#ifndef DTEXL_SFC_MORTON_LANES_HH
#define DTEXL_SFC_MORTON_LANES_HH

#include <cstdint>

#include "common/simd.hh"
#include "sfc/morton.hh"

namespace dtexl {

/** Zero-extend four u32 lanes into u64 lanes. */
inline U64x4
widenU4(U32x4 x)
{
    std::uint32_t t[4];
    storeU4(t, x);
    return makeU64x4(t[0], t[1], t[2], t[3]);
}

/** Truncate four u64 lanes to u32 lanes. */
inline U32x4
narrowU64x4(U64x4 x)
{
    std::uint64_t t[4];
    storeU64x4(t, x);
    return makeU4(static_cast<std::uint32_t>(t[0]),
                  static_cast<std::uint32_t>(t[1]),
                  static_cast<std::uint32_t>(t[2]),
                  static_cast<std::uint32_t>(t[3]));
}

/** Lane twin of mortonSpread: bit i of each lane lands at bit 2i. */
inline U64x4
mortonSpread4(U64x4 x)
{
    x = x & splatU64x4(0xffffffffull);
    x = (x | shlU64x4(x, 16)) & splatU64x4(0x0000ffff0000ffffull);
    x = (x | shlU64x4(x, 8)) & splatU64x4(0x00ff00ff00ff00ffull);
    x = (x | shlU64x4(x, 4)) & splatU64x4(0x0f0f0f0f0f0f0f0full);
    x = (x | shlU64x4(x, 2)) & splatU64x4(0x3333333333333333ull);
    x = (x | shlU64x4(x, 1)) & splatU64x4(0x5555555555555555ull);
    return x;
}

/** Lane twin of mortonCompact (inverse of mortonSpread4). */
inline U64x4
mortonCompact4(U64x4 x)
{
    x = x & splatU64x4(0x5555555555555555ull);
    x = (x | shrU64x4(x, 1)) & splatU64x4(0x3333333333333333ull);
    x = (x | shrU64x4(x, 2)) & splatU64x4(0x0f0f0f0f0f0f0f0full);
    x = (x | shrU64x4(x, 4)) & splatU64x4(0x00ff00ff00ff00ffull);
    x = (x | shrU64x4(x, 8)) & splatU64x4(0x0000ffff0000ffffull);
    x = (x | shrU64x4(x, 16)) & splatU64x4(0x00000000ffffffffull);
    return x;
}

/** Interleave four (x, y) pairs into Morton codes; x in the even bits. */
inline U64x4
mortonEncode4(U32x4 x, U32x4 y)
{
    return mortonSpread4(widenU4(x)) |
           shlU64x4(mortonSpread4(widenU4(y)), 1);
}

/** Extract x (even bits) from four Morton codes. */
inline U32x4
mortonDecodeX4(U64x4 code)
{
    return narrowU64x4(mortonCompact4(code));
}

/** Extract y (odd bits) from four Morton codes. */
inline U32x4
mortonDecodeY4(U64x4 code)
{
    return narrowU64x4(mortonCompact4(shrU64x4(code, 1)));
}

} // namespace dtexl

#endif // DTEXL_SFC_MORTON_LANES_HH

/**
 * @file
 * Hilbert curve index <-> coordinate conversion on a 2^k x 2^k grid.
 *
 * The paper (Section III-C) adapts Hilbert order to rectangular screens
 * by applying it to 8x8-tile square sub-frames; this header provides the
 * square-grid primitive, tile_order.cc builds the rectangular adaptation.
 */

#ifndef DTEXL_SFC_HILBERT_HH
#define DTEXL_SFC_HILBERT_HH

#include <cstdint>

namespace dtexl {

/**
 * Convert a distance along the Hilbert curve to grid coordinates.
 *
 * @param side Grid side length; must be a power of two.
 * @param d    Distance along the curve, in [0, side*side).
 * @param x    Output column.
 * @param y    Output row.
 */
void hilbertD2XY(std::uint32_t side, std::uint64_t d,
                 std::uint32_t &x, std::uint32_t &y);

/**
 * Lane twin of hilbertD2XY: convert four curve distances at once.
 * Pure integer shift/mask/select arithmetic, so the coordinates are
 * bit-identical to four scalar calls (tests/test_simd.cc).
 *
 * @param side Grid side length; must be a power of two, and small
 *             enough that side*side fits a u32 (the traversal uses
 *             side = kHilbertSubframeSide = 8).
 * @param d    Four distances, each in [0, side*side).
 * @param x,y  Output coordinates, lane j from d[j].
 */
void hilbertD2XY4(std::uint32_t side, const std::uint32_t d[4],
                  std::uint32_t x[4], std::uint32_t y[4]);

/**
 * Convert grid coordinates to the distance along the Hilbert curve.
 *
 * @param side Grid side length; must be a power of two.
 */
std::uint64_t hilbertXY2D(std::uint32_t side,
                          std::uint32_t x, std::uint32_t y);

} // namespace dtexl

#endif // DTEXL_SFC_HILBERT_HH

/**
 * @file
 * Canonical binary serialization and hashing primitives for the result
 * cache and checkpoint layer (src/cache/):
 *
 *  - ByteWriter / ByteReader: explicit little-endian encoding of the
 *    fixed-width scalar types, so serialized artifacts and content
 *    hashes are identical on any host regardless of endianness.
 *    ByteReader is bounds-checked: reading past the end throws
 *    SimError{Io}, so a truncated artifact can never be silently
 *    misparsed (it is detected, logged and recomputed).
 *  - Fnv1a64: streaming 64-bit FNV-1a over the same little-endian
 *    byte encoding; the digest behind ResultKey and the scene/config
 *    hashes.
 *  - fnv1a64Striped(): 4-stream FNV-1a for whole-buffer artifact
 *    checksums (result entries, checkpoints). The serial xor-multiply
 *    chain of plain FNV-1a cannot be lane-parallelized; four
 *    independent byte-interleaved streams can, and also break the
 *    chain's data dependency for scalar hosts. Changing the artifact
 *    checksum is a format change: kResultFormatVersion v2.
 *  - atomicWriteFile(): single-writer commit — write a temp file in
 *    the destination directory, then rename() into place (atomic on
 *    POSIX), mirroring the DroidNet single-writer-commit pattern.
 *    Concurrent writers of the same path race benignly: both temps
 *    are complete files and the last rename wins.
 */

#ifndef DTEXL_COMMON_SERIAL_HH
#define DTEXL_COMMON_SERIAL_HH

#include <bit>
#include <cstdint>
#include <string>
#include <vector>

namespace dtexl {

/** Append-only little-endian byte buffer. */
class ByteWriter
{
  public:
    void
    u8(std::uint8_t v)
    {
        buf.push_back(v);
    }

    void
    u32(std::uint32_t v)
    {
        for (int i = 0; i < 4; ++i)
            buf.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }

    void
    u64(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            buf.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }

    void f32(float v) { u32(std::bit_cast<std::uint32_t>(v)); }
    void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

    void
    str(const std::string &s)
    {
        u32(static_cast<std::uint32_t>(s.size()));
        buf.insert(buf.end(), s.begin(), s.end());
    }

    const std::vector<std::uint8_t> &data() const { return buf; }
    std::vector<std::uint8_t> take() { return std::move(buf); }
    std::size_t size() const { return buf.size(); }

  private:
    std::vector<std::uint8_t> buf;
};

/**
 * Bounds-checked little-endian reader over a borrowed buffer (the
 * buffer must outlive the reader). Overruns throw SimError{Io}.
 */
class ByteReader
{
  public:
    ByteReader(const std::uint8_t *data, std::size_t size)
        : p(data), n(size)
    {}
    explicit ByteReader(const std::vector<std::uint8_t> &bytes)
        : p(bytes.data()), n(bytes.size())
    {}

    std::uint8_t u8();
    std::uint32_t u32();
    std::uint64_t u64();
    float f32() { return std::bit_cast<float>(u32()); }
    double f64() { return std::bit_cast<double>(u64()); }
    std::string str();

    std::size_t remaining() const { return n - pos; }
    bool done() const { return pos == n; }

  private:
    void need(std::size_t bytes);

    const std::uint8_t *p;
    std::size_t n;
    std::size_t pos = 0;
};

/**
 * Streaming 64-bit FNV-1a. Scalars are folded in via the same
 * little-endian encoding ByteWriter uses, so a hash of fields equals
 * the hash of their serialization.
 */
class Fnv1a64
{
  public:
    static constexpr std::uint64_t kOffsetBasis = 0xcbf29ce484222325ull;
    static constexpr std::uint64_t kPrime = 0x00000100000001b3ull;

    void
    byte(std::uint8_t b)
    {
        h = (h ^ b) * kPrime;
    }

    void
    bytes(const std::uint8_t *data, std::size_t size)
    {
        for (std::size_t i = 0; i < size; ++i)
            byte(data[i]);
    }

    void bytes(const std::vector<std::uint8_t> &v)
    {
        bytes(v.data(), v.size());
    }

    void
    u32(std::uint32_t v)
    {
        for (int i = 0; i < 4; ++i)
            byte(static_cast<std::uint8_t>(v >> (8 * i)));
    }

    void
    u64(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            byte(static_cast<std::uint8_t>(v >> (8 * i)));
    }

    void f32(float v) { u32(std::bit_cast<std::uint32_t>(v)); }
    void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

    void
    str(const char *s)
    {
        for (; *s; ++s)
            byte(static_cast<std::uint8_t>(*s));
        byte(0);  // terminator so "ab","c" != "a","bc"
    }

    void str(const std::string &s) { str(s.c_str()); }

    std::uint64_t value() const { return h; }

  private:
    std::uint64_t h = kOffsetBasis;
};

/** FNV-1a of a whole buffer. */
std::uint64_t fnv1a64(const std::uint8_t *data, std::size_t size);
inline std::uint64_t
fnv1a64(const std::vector<std::uint8_t> &v)
{
    return fnv1a64(v.data(), v.size());
}

/**
 * Striped 4-stream FNV-1a of a whole buffer (artifact checksums).
 * Byte i feeds stream (i mod 4); each stream is an independent FNV-1a
 * chain, and the four stream digests plus the length are folded into
 * one value with plain FNV-1a. Striping exists to break the serial
 * digest's one multiply-latency-bound dependency chain into four that
 * the host pipelines in parallel (~3.7x on the SSE2 reference host,
 * bench/micro_simd.cc BM_ChecksumSerial vs BM_ChecksumStriped); the
 * digest itself is a frozen pure function of the bytes. NOT
 * interchangeable with fnv1a64(): switching a format's checksum
 * requires a kResultFormatVersion bump.
 */
std::uint64_t fnv1a64Striped(const std::uint8_t *data, std::size_t size);
inline std::uint64_t
fnv1a64Striped(const std::vector<std::uint8_t> &v)
{
    return fnv1a64Striped(v.data(), v.size());
}

/**
 * Atomically commit @p bytes to @p path: write "<path>.tmp.<pid>.<seq>"
 * in the same directory, flush, then rename() over the destination.
 * Throws SimError{Io} when the directory is unwritable.
 */
void atomicWriteFile(const std::string &path,
                     const std::vector<std::uint8_t> &bytes);

/**
 * Read a whole file into @p out. Returns false (out cleared) when the
 * file cannot be opened; throws nothing.
 */
bool readFileBytes(const std::string &path,
                   std::vector<std::uint8_t> &out);

/** mkdir -p; throws SimError{Io} on failure. */
void ensureDirectory(const std::string &dir);

} // namespace dtexl

#endif // DTEXL_COMMON_SERIAL_HH

/**
 * @file
 * Simulated-GPU configuration. Defaults reproduce Table II of the paper;
 * scheduling-policy fields select the configurations compared in the
 * evaluation (Figures 11-18).
 */

#ifndef DTEXL_COMMON_CONFIG_HH
#define DTEXL_COMMON_CONFIG_HH

#include <cstdint>
#include <string>

#include "common/policies.hh"
#include "common/types.hh"

namespace dtexl {

/** Geometry/size/latency parameters of one cache (Table II rows). */
struct CacheConfig
{
    std::uint32_t sizeBytes = 0;
    std::uint32_t lineBytes = 64;
    std::uint32_t ways = 4;
    std::uint32_t hitLatency = 1;   ///< cycles
    std::uint32_t numMshrs = 16;    ///< outstanding misses
    /**
     * Simulator implementation selector, not a hardware parameter:
     * true uses the optimized hot path (bounded MSHR interval ring
     * with early-exit occupancy checks, one-entry last-line-hit fast
     * path in front of the way loop, contiguous port-window storage);
     * false uses the original straight-line reference implementation.
     * The two are bit-exact (tests/test_fastpath_equiv.cc); the
     * reference path exists only to verify that, mirroring the
     * engine's rebuild-pipeline-each-frame knob.
     */
    bool fastPath = true;
    /**
     * Next-line prefetch on demand miss (the decoupled-access
     * direction of Arnau et al. [2], cited by the paper as orthogonal
     * prior work on texture caching). Off by default.
     */
    bool prefetchNextLine = false;

    std::uint32_t numLines() const { return sizeBytes / lineBytes; }
    std::uint32_t numSets() const { return numLines() / ways; }
};

/** Banked-DRAM timing (Table II: 50-100 cycle latency window). */
struct DramConfig
{
    std::uint32_t numBanks = 8;
    std::uint32_t rowBytes = 2048;       ///< row-buffer coverage per bank
    std::uint32_t rowHitLatency = 50;    ///< cycles, open-row access
    std::uint32_t rowMissLatency = 100;  ///< cycles, row activate + access
    std::uint32_t bytesPerCycle = 16;    ///< channel bandwidth
    /** Simulator hot-path selector; see CacheConfig::fastPath. */
    bool fastPath = true;
};

/**
 * Full GPU configuration. Construct with defaults for the paper's
 * Table II machine; presets below select the paper's named
 * configurations.
 */
struct GpuConfig
{
    // --- Global parameters (Table II) ---
    std::uint64_t clockHz = 600'000'000;  ///< 600 MHz
    std::uint32_t screenWidth = 1960;
    std::uint32_t screenHeight = 768;
    std::uint32_t tileSize = 32;          ///< pixels per tile side

    // --- Raster pipeline structure ---
    std::uint32_t numPipelines = 4;       ///< parallel post-raster units/SCs
    std::uint32_t maxWarpsPerCore = 6;    ///< in-flight quads per SC
    std::uint32_t stageFifoDepth = 64;    ///< per-bank inter-stage FIFOs
    std::uint32_t rasterQuadsPerCycle = 4;///< rasterizer peak throughput

    // --- Scheduling policy (the paper's contribution) ---
    QuadGrouping grouping = QuadGrouping::FGXShift2;
    TileOrder tileOrder = TileOrder::ZOrder;
    SubtileAssignment assignment = SubtileAssignment::Constant;
    bool decoupledBarriers = false;
    /**
     * Hierarchical-Z (extension, off by default = paper baseline):
     * a conservative per-4x4-quad-block max-depth test in the
     * rasterizer culls fully-occluded quads before they enter the
     * Early-Z queues.
     */
    bool hierarchicalZ = false;
    /**
     * Next-line prefetching in the L1 texture caches (extension, off
     * by default = paper baseline); see CacheConfig::prefetchNextLine.
     */
    bool texturePrefetch = false;
    /** Warp selection policy in the shader cores. */
    WarpSched warpScheduler = WarpSched::EarliestReady;
    /**
     * Transaction elimination (extension, off by default): each Color
     * Buffer bank keeps a CRC of the region it last flushed; an
     * identical re-flush (static content across frames) is skipped,
     * saving framebuffer write bandwidth — ARM Mali's technique.
     */
    bool transactionElimination = false;
    /**
     * Master simulator hot-path knob (not a modelled-hardware
     * parameter). True selects the optimized per-cycle simulation
     * path everywhere — cache MSHR/lookup fast paths, contiguous
     * port-window storage, the shader-core event loop's cached
     * next-event candidates, and the raster pipeline's pooled
     * quad/flush arenas. False selects the original reference
     * implementations. Both produce bit-identical FrameStats and
     * imageHash (enforced by tests/test_fastpath_equiv.cc); toggle
     * with the `fastpath` key of applyConfigOption() or
     * `--reference-path` on the bench binaries for A/B validation.
     */
    bool simFastPath = true;
    /**
     * Telemetry knob (not modelled hardware; observation-only, results
     * are bit-identical at any level): 0 = off, 1 = per-unit stall/busy
     * cycle attribution into ".telemetry." registry nodes, 2 = level 1
     * plus the time-series sampler (counter tracks in the Chrome trace,
     * --timeline-csv rows). Set with the `telemetry` key.
     */
    std::uint32_t telemetryLevel = 0;
    /**
     * Sampler period in raster-phase cycles (level 2 only; the
     * `sample_cycles` key). Samples are taken at tile boundaries, so
     * spacing is quantized up to tile granularity.
     */
    std::uint32_t telemetrySamplePeriod = 8192;
    /**
     * Host worker threads for the geometry/tiling front-end (simulator
     * infrastructure, not modelled hardware): the functional per-draw
     * work — vertex transforms, assembly culling, LOD, tile-overlap
     * tests — fans out across this many threads, then a serial replay
     * applies the timed memory accesses in submission order, so
     * results are bit-identical for every value (enforced by
     * tests/test_parallel_geom.cc). 0 = auto (hardware concurrency,
     * the default), 1 = the original serial path. Set with the
     * `geom_threads` key or `--geom-threads` on the CLIs; the CLIs
     * clamp jobs x geom-threads oversubscription
     * (CommonCliOptions::applyThreadKnobs()).
     */
    std::uint32_t geomThreads = 0;

    /** geomThreads with 0 resolved to the host's hardware concurrency. */
    std::uint32_t resolvedGeomThreads() const;

    /**
     * Host execution domains for the timed raster event loop
     * (simulator infrastructure, not modelled hardware): the post-
     * raster pipelines (subtile bank + shader core + private L1) are
     * partitioned into this many execution domains, each running its
     * own slice of the fragment-stage event loop on a worker thread,
     * with accesses to the shared L2/DRAM committed in cycle order by
     * a conservative merge protocol (common/channel.hh,
     * core/exec_domain.hh) — so FrameStats, the image hash and every
     * registry counter are bit-identical for every value (enforced by
     * tests/test_raster_domains.cc). 1 = the original serial loop
     * (default), 0 = auto (one domain per pipeline/bank); values above
     * numPipelines clamp to it. Set with the `raster_threads` key or
     * `--raster-threads` on the CLIs; the CLIs clamp the full
     * jobs x geom-threads x raster-threads oversubscription
     * (CommonCliOptions::applyThreadKnobs()).
     */
    std::uint32_t rasterThreads = 1;

    /**
     * rasterThreads with 0 resolved to one domain per pipeline and any
     * value clamped to numPipelines (a domain owns at least one pipe).
     */
    std::uint32_t resolvedRasterThreads() const;

    /**
     * Host SIMD dispatch for the vectorized raster/texture kernels
     * (simulator infrastructure, not modelled hardware; see
     * common/simd.hh and the SimdMode enum). Auto — the default, or
     * whatever the DTEXL_SIMD environment variable selects — runs the
     * lane implementations; Scalar runs the original serial code.
     * FrameStats, image hashes and every registry counter are
     * bit-identical either way (tests/test_simd.cc), so like the
     * thread knobs above this is excluded from the result-cache config
     * digest. Set with the `simd` key or `--simd=auto|scalar` on the
     * CLIs.
     */
    SimdMode simdMode = defaultSimdMode();

    /**
     * Forward-progress watchdog budget in simulated cycles (simulator
     * infrastructure, not modelled hardware): if the event-driven
     * engine advances its clock by more than this many cycles without
     * retiring a quad or completing a memory access while work is
     * pending, the run is declared hung and a SimError{Watchdog}
     * carrying a pipeline-state dump is raised instead of spinning
     * forever. Real frames retire work every few hundred cycles, so
     * the default (200M, ~a third of a second of simulated time) only
     * trips on genuine deadlocks — e.g. a leaked stage-FIFO credit or
     * a lost memory completion (see common/fault_inject.hh). 0
     * disables the watchdog. Set with the `watchdog_cycles` key.
     */
    std::uint64_t watchdogCycles = 200'000'000;

    // --- Memory hierarchy (Table II) ---
    CacheConfig vertexCache  {8 * 1024, 64, 4, 1, 8};
    CacheConfig textureCache {16 * 1024, 64, 4, 1, 16};
    CacheConfig tileCache    {64 * 1024, 64, 4, 1, 16};
    CacheConfig l2Cache      {1024 * 1024, 64, 8, 12, 32};
    DramConfig dram;

    // --- Derived ---
    std::uint32_t tilesX() const { return divCeil(screenWidth, tileSize); }
    std::uint32_t tilesY() const { return divCeil(screenHeight, tileSize); }
    std::uint32_t numTiles() const { return tilesX() * tilesY(); }
    /** Quads per tile side (a quad is 2x2 pixels). */
    std::uint32_t quadsPerTileSide() const { return tileSize / 2; }

    /** Human-readable multi-line dump (used by bench/table2_config). */
    std::string describe() const;

    /**
     * Check every knob; throws SimError{Config} naming the offending
     * knob and its legal range on any invalid value or combination.
     */
    void validate() const;
};

/** Paper baseline: FG-xshift2, Z-order, constant assignment, coupled. */
GpuConfig makeBaselineConfig();

/**
 * Full DTexL: CG-square grouping, rectangle-adapted Hilbert order,
 * Flip2 assignment (the paper's best, "HLB-flp2"), decoupled barriers.
 */
GpuConfig makeDTexLConfig();

/**
 * Upper-bound machine of Figure 16: one fragment pipeline whose L1
 * texture cache has 4x the capacity; only its L2 access count is used.
 */
GpuConfig makeUpperBoundConfig();

/**
 * Apply a textual "key=value" option to a configuration (the CLI
 * driver's interface). Supported keys: grouping, order, assignment,
 * decoupled, hiz, warps, fifo, width, height, tile, l1tex_kib,
 * l2_kib, fastpath, telemetry, sample_cycles, geom_threads,
 * raster_threads, watchdog_cycles, simd. Throws SimError{UserInput}
 * on unknown keys or bad values.
 */
void applyConfigOption(GpuConfig &cfg, const std::string &key,
                       const std::string &value);

} // namespace dtexl

#endif // DTEXL_COMMON_CONFIG_HH

/**
 * @file
 * Bounded FIFO queue used for the inter-stage queues of the raster
 * pipeline (Figure 3/4 of the paper): fixed capacity, O(1) push/pop,
 * explicit full/empty back-pressure.
 */

#ifndef DTEXL_COMMON_FIXED_QUEUE_HH
#define DTEXL_COMMON_FIXED_QUEUE_HH

#include <cstddef>
#include <utility>
#include <vector>

#include "common/log.hh"

namespace dtexl {

/**
 * Ring-buffer FIFO with a fixed capacity chosen at construction.
 * Pushing into a full queue or popping an empty one is a simulator bug
 * (stages must check full()/empty() to model back-pressure).
 */
template <typename T>
class FixedQueue
{
  public:
    explicit FixedQueue(std::size_t capacity)
        : buf(capacity + 1), cap(capacity)
    {
        dtexl_assert(capacity > 0, "queue capacity must be positive");
    }

    std::size_t capacity() const { return cap; }
    std::size_t size() const
    {
        return tail >= head ? tail - head : buf.size() - head + tail;
    }
    bool empty() const { return head == tail; }
    bool full() const { return size() == cap; }

    /** Enqueue; queue must not be full. */
    void
    push(T v)
    {
        dtexl_assert(!full(), "push into full queue");
        buf[tail] = std::move(v);
        tail = inc(tail);
    }

    /** Peek at the oldest element; queue must not be empty. */
    T &
    front()
    {
        dtexl_assert(!empty(), "front of empty queue");
        return buf[head];
    }

    const T &
    front() const
    {
        dtexl_assert(!empty(), "front of empty queue");
        return buf[head];
    }

    /** Dequeue the oldest element; queue must not be empty. */
    T
    pop()
    {
        dtexl_assert(!empty(), "pop of empty queue");
        T v = std::move(buf[head]);
        head = inc(head);
        return v;
    }

    /** Drop all contents. */
    void clear() { head = tail = 0; }

  private:
    std::size_t inc(std::size_t i) const { return i + 1 == buf.size() ? 0 : i + 1; }

    std::vector<T> buf;
    std::size_t cap;
    std::size_t head = 0;
    std::size_t tail = 0;
};

} // namespace dtexl

#endif // DTEXL_COMMON_FIXED_QUEUE_HH

#include "common/worker_pool.hh"

#include "common/log.hh"

namespace dtexl {

WorkerPool::WorkerPool(unsigned threads)
{
    for (unsigned t = 1; t < threads; ++t)
        workers.emplace_back([this, t] { workerLoop(t); });
}

WorkerPool::~WorkerPool()
{
    {
        std::lock_guard<std::mutex> lk(m);
        stopping = true;
    }
    wake.notify_all();
    for (std::thread &w : workers)
        w.join();
}

void
WorkerPool::drain()
{
    // Snapshot the job fields; they are stable for the job's lifetime
    // (the caller blocks in parallelFor until `finished == jobSize`,
    // which requires every claimed index's fn call to have returned).
    const std::function<void(std::size_t)> *f;
    std::size_t n;
    {
        std::lock_guard<std::mutex> lk(m);
        f = job;
        n = jobSize;
    }
    if (!f)
        return;  // woke after the job completed; nothing to claim
    std::size_t did = 0;
    for (;;) {
        const std::size_t i = next.fetch_add(1,
                                             std::memory_order_relaxed);
        if (i >= n)
            break;
        // A task that throws must not escape a pool thread (that would
        // std::terminate the process): capture the first exception for
        // parallelFor to rethrow on the calling thread, skip the
        // remaining indices, and keep the finished-count accounting
        // intact so the caller's wait completes.
        if (!errored.load(std::memory_order_relaxed)) {
            try {
                (*f)(i);
            } catch (...) {
                std::lock_guard<std::mutex> lk(m);
                if (!firstError)
                    firstError = std::current_exception();
                errored.store(true, std::memory_order_relaxed);
            }
        }
        ++did;
    }
    std::lock_guard<std::mutex> lk(m);
    finished += did;
    if (finished == jobSize)
        done.notify_all();
}

void
WorkerPool::workerLoop(std::size_t id)
{
    std::uint64_t seen = 0;
    std::uint64_t gangSeen = 0;
    for (;;) {
        bool gang = false;
        const std::function<void(std::size_t)> *gfn = nullptr;
        {
            std::unique_lock<std::mutex> lk(m);
            wake.wait(lk, [&] {
                return stopping || jobSeq != seen ||
                       gangSeq != gangSeen;
            });
            if (stopping)
                return;
            if (gangSeq != gangSeen) {
                gangSeen = gangSeq;
                gang = true;
                gfn = gangJob;
            } else {
                seen = jobSeq;
            }
        }
        if (!gang) {
            drain();
            continue;
        }
        // Gang member: this worker IS index `id` (caller is index 0).
        // A gang never spans more members than the pool guarantees
        // concurrent threads for, so a member may busy-wait on its
        // siblings without deadlock.
        std::exception_ptr err;
        bool ran = false;
        if (id < gangSize) {
            ran = true;
            try {
                (*gfn)(id);
            } catch (...) {
                err = std::current_exception();
            }
        }
        {
            std::lock_guard<std::mutex> lk(m);
            // Move, not copy: the worker must not keep a reference it
            // would drop outside the lock — if that drop were the last
            // one it would free the exception object concurrently with
            // the caller reading it (all releases belong to the caller).
            if (ran && err)
                gangErrors[id] = std::move(err);
            ++gangFinished;
            if (gangFinished == workers.size())
                done.notify_all();
        }
    }
}

void
WorkerPool::parallelFor(std::size_t n,
                        const std::function<void(std::size_t)> &fn)
{
    if (n == 0)
        return;
    if (workers.empty() || n == 1) {
        for (std::size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }
    {
        std::lock_guard<std::mutex> lk(m);
        job = &fn;
        jobSize = n;
        next.store(0, std::memory_order_relaxed);
        finished = 0;
        firstError = nullptr;
        errored.store(false, std::memory_order_relaxed);
        ++jobSeq;
    }
    wake.notify_all();
    drain();  // the calling thread works too
    std::exception_ptr err;
    {
        std::unique_lock<std::mutex> lk(m);
        done.wait(lk, [&] { return finished == jobSize; });
        job = nullptr;
        err = firstError;
        firstError = nullptr;
    }
    if (err)
        std::rethrow_exception(err);
}

void
WorkerPool::runGang(std::size_t n,
                    const std::function<void(std::size_t)> &fn)
{
    if (n == 0)
        return;
    if (n == 1) {
        fn(0);
        return;
    }
    dtexl_assert(n <= size(),
                 "runGang needs one dedicated thread per member");
    {
        std::lock_guard<std::mutex> lk(m);
        gangJob = &fn;
        gangSize = n;
        gangFinished = 0;
        gangErrors.assign(n, nullptr);
        ++gangSeq;
    }
    wake.notify_all();
    // The caller is gang member 0; every worker w < n runs index w
    // concurrently on its own thread.
    std::exception_ptr callerErr;
    try {
        fn(0);
    } catch (...) {
        callerErr = std::current_exception();
    }
    std::exception_ptr err;
    {
        std::unique_lock<std::mutex> lk(m);
        done.wait(lk, [&] { return gangFinished == workers.size(); });
        gangJob = nullptr;
        if (callerErr)
            gangErrors[0] = std::move(callerErr);
        for (std::exception_ptr &e : gangErrors) {
            if (e) {
                err = std::move(e);
                break;
            }
        }
        gangErrors.clear();
    }
    if (err)
        std::rethrow_exception(err);
}

} // namespace dtexl

#include "common/sim_error.hh"

#include <cstdarg>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <vector>

#include "common/log.hh"

namespace dtexl {

const char *
toString(ErrorKind kind)
{
    switch (kind) {
      case ErrorKind::UserInput: return "user-input";
      case ErrorKind::Config: return "config";
      case ErrorKind::Io: return "io";
      case ErrorKind::Watchdog: return "watchdog";
      case ErrorKind::Internal: return "internal";
      case ErrorKind::Cancelled: return "cancelled";
    }
    return "unknown";
}

int
exitCodeFor(ErrorKind kind)
{
    switch (kind) {
      case ErrorKind::UserInput:
      case ErrorKind::Config:
      case ErrorKind::Io:
        return kExitUserError;
      case ErrorKind::Watchdog:
        return kExitWatchdog;
      case ErrorKind::Internal:
        return kExitInternal;
      case ErrorKind::Cancelled:
        return kExitInterrupted;
    }
    return kExitInternal;
}

SimError::SimError(ErrorKind kind, std::string message,
                   std::string context, std::string dump)
    : std::runtime_error(std::move(message)), kind_(kind),
      context_(std::move(context)), dump_(std::move(dump))
{
}

std::string
SimError::describe() const
{
    std::string s = toString(kind_);
    s += ": ";
    s += what();
    if (!context_.empty()) {
        s += " (";
        s += context_;
        s += ")";
    }
    return s;
}

namespace {

[[noreturn]] void
vthrow(ErrorKind kind, const char *fmt, std::va_list ap)
{
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    throw SimError(kind, std::move(msg));
}

} // namespace

void
throwUserError(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    vthrow(ErrorKind::UserInput, fmt, ap);
}

void
throwConfigError(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    vthrow(ErrorKind::Config, fmt, ap);
}

void
throwIoError(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    vthrow(ErrorKind::Io, fmt, ap);
}

// ---- Failure-path artifact flushing -------------------------------

namespace {

std::mutex flush_mu;
std::vector<std::function<void()>> flush_hooks;

std::mutex crash_mu;
std::string crash_dir = ".";

} // namespace

void
registerFailureFlush(std::function<void()> hook)
{
    std::lock_guard<std::mutex> lk(flush_mu);
    flush_hooks.push_back(std::move(hook));
}

void
flushFailureArtifacts() noexcept
{
    // Copy under the lock so a hook that (re-)registers can't deadlock,
    // and so concurrent failing jobs serialize only on the copy.
    std::vector<std::function<void()>> hooks;
    {
        std::lock_guard<std::mutex> lk(flush_mu);
        hooks = flush_hooks;
    }
    for (const auto &hook : hooks) {
        try {
            hook();
        } catch (...) {
            // A broken exporter must not mask the original failure.
        }
    }
}

// ---- Crash reports ------------------------------------------------

void
setCrashReportDir(const std::string &dir)
{
    std::lock_guard<std::mutex> lk(crash_mu);
    crash_dir = dir.empty() ? "." : dir;
}

const std::string &
crashReportDir()
{
    std::lock_guard<std::mutex> lk(crash_mu);
    return crash_dir;
}

std::string
writeCrashReport(const std::string &label, const SimError &err) noexcept
{
    try {
        std::string base;
        base.reserve(label.size());
        for (char c : label) {
            const bool ok = (c >= 'a' && c <= 'z') ||
                            (c >= 'A' && c <= 'Z') ||
                            (c >= '0' && c <= '9') || c == '-' ||
                            c == '_' || c == '.';
            base += ok ? c : '_';
        }
        if (base.empty())
            base = "job";
        const std::string path =
            crashReportDir() + "/crash-" + base + ".txt";
        std::ofstream os(path);
        if (!os)
            return "";
        os << "DTexL crash report\n"
           << "==================\n"
           << "job:     " << label << "\n"
           << "kind:    " << toString(err.kind()) << "\n"
           << "error:   " << err.what() << "\n";
        if (!err.context().empty())
            os << "context: " << err.context() << "\n";
        if (!err.dump().empty())
            os << "\npipeline state\n--------------\n" << err.dump();
        os.flush();
        return os ? path : "";
    } catch (...) {
        return "";
    }
}

int
runGuardedMain(const std::function<int()> &body)
{
    try {
        return body();
    } catch (const SimError &e) {
        flushFailureArtifacts();
        if (!e.dump().empty()) {
            const std::string report = writeCrashReport("main", e);
            if (!report.empty())
                std::fprintf(stderr, "crash report written to %s\n",
                             report.c_str());
        }
        std::fprintf(stderr, "error: %s\n", e.describe().c_str());
        return exitCodeFor(e.kind());
    } catch (const std::exception &e) {
        flushFailureArtifacts();
        std::fprintf(stderr, "error: internal: %s\n", e.what());
        return kExitInternal;
    }
}

} // namespace dtexl

#include "common/fault_inject.hh"

#include "common/sim_error.hh"

namespace dtexl {

const char *
toString(FaultSite site)
{
    switch (site) {
      case FaultSite::SceneTruncate: return "scene-truncate";
      case FaultSite::SceneCorruptToken: return "scene-corrupt-token";
      case FaultSite::ConfigMisSize: return "config-mis-size";
      case FaultSite::BarrierCreditLeak: return "barrier-credit-leak";
      case FaultSite::DropMemCompletion: return "drop-mem-completion";
      case FaultSite::CacheTruncate: return "cache-truncate";
      case FaultSite::CkptFlipByte: return "ckpt-flip-byte";
      case FaultSite::FrameIoFail: return "frame-io-fail";
      case FaultSite::kNumSites: break;
    }
    return "unknown";
}

FaultSite
faultSiteFromString(const std::string &name)
{
    for (std::uint32_t i = 0;
         i < static_cast<std::uint32_t>(FaultSite::kNumSites); ++i) {
        const auto site = static_cast<FaultSite>(i);
        if (name == toString(site))
            return site;
    }
    throwUserError(
        "unknown fault site '%s' (one of scene-truncate, "
        "scene-corrupt-token, config-mis-size, barrier-credit-leak, "
        "drop-mem-completion, cache-truncate, ckpt-flip-byte, "
        "frame-io-fail)",
        name.c_str());
}

FaultInject &
FaultInject::global()
{
    static FaultInject instance;
    return instance;
}

void
FaultInject::arm(FaultSite site, std::uint32_t count,
                 std::uint32_t skipFirst)
{
    const auto i = static_cast<std::size_t>(site);
    skips_[i].store(skipFirst, std::memory_order_relaxed);
    const std::uint32_t prev =
        shots_[i].exchange(count, std::memory_order_relaxed);
    if (prev == 0 && count > 0)
        armed_.fetch_add(1, std::memory_order_relaxed);
    else if (prev > 0 && count == 0)
        armed_.fetch_sub(1, std::memory_order_relaxed);
}

void
FaultInject::disarmAll()
{
    for (std::size_t i = 0; i < kSites; ++i) {
        shots_[i].store(0, std::memory_order_relaxed);
        skips_[i].store(0, std::memory_order_relaxed);
        fired_[i].store(0, std::memory_order_relaxed);
    }
    armed_.store(0, std::memory_order_relaxed);
}

bool
FaultInject::fireSlow(FaultSite site)
{
    const auto i = static_cast<std::size_t>(site);
    // Consume a skip first: the site stays armed (shots untouched) but
    // this evaluation passes unharmed.
    std::uint32_t s = skips_[i].load(std::memory_order_relaxed);
    while (s > 0) {
        if (skips_[i].compare_exchange_weak(s, s - 1,
                                            std::memory_order_relaxed)) {
            if (shots_[i].load(std::memory_order_relaxed) > 0)
                return false;
            break;  // skips without shots are inert; fall through
        }
    }
    // Claim one shot; CAS so concurrent hooks can't over-fire.
    std::uint32_t n = shots_[i].load(std::memory_order_relaxed);
    while (n > 0) {
        if (shots_[i].compare_exchange_weak(n, n - 1,
                                            std::memory_order_relaxed)) {
            if (n == 1)
                armed_.fetch_sub(1, std::memory_order_relaxed);
            fired_[i].fetch_add(1, std::memory_order_relaxed);
            return true;
        }
    }
    return false;
}

std::uint64_t
FaultInject::fired(FaultSite site) const
{
    const auto i = static_cast<std::size_t>(site);
    return fired_[i].load(std::memory_order_relaxed);
}

} // namespace dtexl

#include "common/config.hh"

#include <cstdlib>
#include <sstream>
#include <thread>

#include "common/log.hh"
#include "common/sim_error.hh"

namespace dtexl {

bool
isCoarseGrained(QuadGrouping g)
{
    switch (g) {
      case QuadGrouping::CGXRect:
      case QuadGrouping::CGYRect:
      case QuadGrouping::CGTriangle:
      case QuadGrouping::CGSquare:
        return true;
      default:
        return false;
    }
}

std::string
toString(QuadGrouping g)
{
    switch (g) {
      case QuadGrouping::FGChecker:  return "FG-checker";
      case QuadGrouping::FGXShift1:  return "FG-xshift1";
      case QuadGrouping::FGXShift2:  return "FG-xshift2";
      case QuadGrouping::FGYShift2:  return "FG-yshift2";
      case QuadGrouping::FGVDomino:  return "FG-vdomino";
      case QuadGrouping::FGHDomino:  return "FG-hdomino";
      case QuadGrouping::CGXRect:    return "CG-xrect";
      case QuadGrouping::CGYRect:    return "CG-yrect";
      case QuadGrouping::CGTriangle: return "CG-triangle";
      case QuadGrouping::CGSquare:   return "CG-square";
    }
    panic("unknown QuadGrouping %d", static_cast<int>(g));
}

std::string
toString(TileOrder o)
{
    switch (o) {
      case TileOrder::Scanline:    return "Scanline";
      case TileOrder::SOrder:      return "S-order";
      case TileOrder::ZOrder:      return "Z-order";
      case TileOrder::RectHilbert: return "Hilbert";
    }
    panic("unknown TileOrder %d", static_cast<int>(o));
}

std::string
toString(SubtileAssignment a)
{
    switch (a) {
      case SubtileAssignment::Constant: return "const";
      case SubtileAssignment::Flip1:    return "flp1";
      case SubtileAssignment::Flip2:    return "flp2";
      case SubtileAssignment::Flip3:    return "flp3";
    }
    panic("unknown SubtileAssignment %d", static_cast<int>(a));
}

std::string
GpuConfig::describe() const
{
    std::ostringstream os;
    os << "Global Parameters\n"
       << "  Clock             : " << clockHz / 1'000'000 << " MHz\n"
       << "  Screen Resolution : " << screenWidth << "x" << screenHeight
       << "\n"
       << "  Tile Size         : " << tileSize << "x" << tileSize << "\n"
       << "  Tiles             : " << tilesX() << "x" << tilesY() << " = "
       << numTiles() << "\n"
       << "  Pipelines / SCs   : " << numPipelines << "\n"
       << "Scheduling\n"
       << "  Quad Grouping     : " << toString(grouping) << "\n"
       << "  Tile Order        : " << toString(tileOrder) << "\n"
       << "  Subtile Assignment: " << toString(assignment) << "\n"
       << "  Barriers          : "
       << (decoupledBarriers ? "decoupled" : "coupled") << "\n"
       << "Caches (size/ways/latency)\n"
       << "  Vertex  : " << vertexCache.sizeBytes / 1024 << " KiB, "
       << vertexCache.ways << "-way, " << vertexCache.hitLatency
       << " cycle\n"
       << "  Texture : " << textureCache.sizeBytes / 1024 << " KiB x"
       << numPipelines << ", " << textureCache.ways << "-way, "
       << textureCache.hitLatency << " cycle\n"
       << "  Tile    : " << tileCache.sizeBytes / 1024 << " KiB, "
       << tileCache.ways << "-way, " << tileCache.hitLatency << " cycle\n"
       << "  L2      : " << l2Cache.sizeBytes / 1024 << " KiB, "
       << l2Cache.ways << "-way, " << l2Cache.hitLatency << " cycles\n"
       << "Main Memory\n"
       << "  Latency : " << dram.rowHitLatency << "-" << dram.rowMissLatency
       << " cycles, " << dram.numBanks << " banks\n";
    return os.str();
}

std::uint32_t
GpuConfig::resolvedGeomThreads() const
{
    if (geomThreads != 0)
        return geomThreads;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

std::uint32_t
GpuConfig::resolvedRasterThreads() const
{
    const std::uint32_t want =
        rasterThreads == 0 ? numPipelines : rasterThreads;
    return want < numPipelines ? want : numPipelines;
}

void
GpuConfig::validate() const
{
    // Every check names the offending knob and its legal range; the
    // whole function throws SimError{Config} only (never exits), so a
    // bad job in a batch fails alone (core/engine.cc).
    if (clockHz == 0)
        throwConfigError("clockHz must be positive");
    if (screenWidth == 0 || screenHeight == 0)
        throwConfigError(
            "screen resolution %ux%u: width and height must be >= 1",
            screenWidth, screenHeight);
    if (tileSize == 0 || tileSize % 2 != 0)
        throwConfigError(
            "tile size %u: must be a positive multiple of 2 "
            "(quads are 2x2)", tileSize);
    if (numPipelines != 1 && numPipelines != 4)
        throwConfigError(
            "numPipelines %u: must be 1 (upper bound) or 4",
            numPipelines);
    if (numPipelines == 4 && quadsPerTileSide() % 2 != 0)
        throwConfigError(
            "tile size %u: tile must split into 2x2 subtiles of whole "
            "quads (tile/2 even)", tileSize);
    if (maxWarpsPerCore == 0)
        throwConfigError("warps (maxWarpsPerCore) must be >= 1");
    if (stageFifoDepth == 0)
        throwConfigError("fifo (stageFifoDepth) must be >= 1");
    if (rasterQuadsPerCycle == 0)
        throwConfigError("rasterQuadsPerCycle must be >= 1");
    auto check_cache = [](const char *name, const CacheConfig &c) {
        if (c.sizeBytes == 0 || c.lineBytes == 0 || c.ways == 0)
            throwConfigError(
                "%s cache: size (%u B), line (%u B) and ways (%u) must "
                "all be positive", name, c.sizeBytes, c.lineBytes,
                c.ways);
        if ((c.lineBytes & (c.lineBytes - 1)) != 0)
            throwConfigError(
                "%s cache: line size %u B must be a power of two",
                name, c.lineBytes);
        if (c.sizeBytes % (c.lineBytes * c.ways) != 0)
            throwConfigError(
                "%s cache: size %u B not divisible into %u-way sets of "
                "%u B lines", name, c.sizeBytes, c.ways, c.lineBytes);
        if ((c.numSets() & (c.numSets() - 1)) != 0)
            throwConfigError(
                "%s cache: set count %u must be a power of two", name,
                c.numSets());
        if (c.numMshrs == 0)
            throwConfigError("%s cache: numMshrs must be >= 1", name);
    };
    check_cache("vertex", vertexCache);
    check_cache("texture", textureCache);
    check_cache("tile", tileCache);
    check_cache("L2", l2Cache);
    if (dram.bytesPerCycle == 0 || dram.numBanks == 0)
        throwConfigError(
            "dram: bytesPerCycle (%u) and numBanks (%u) must be "
            "positive", dram.bytesPerCycle, dram.numBanks);
    if (dram.rowBytes == 0)
        throwConfigError("dram: rowBytes must be positive");
    if (dram.rowMissLatency < dram.rowHitLatency)
        throwConfigError(
            "dram: rowMissLatency %u must be >= rowHitLatency %u",
            dram.rowMissLatency, dram.rowHitLatency);
    if (telemetryLevel > 2)
        throwConfigError(
            "telemetry level %u: must be 0, 1 or 2", telemetryLevel);
    if (telemetryLevel >= 2 && telemetrySamplePeriod == 0)
        throwConfigError("sample_cycles must be >= 1");
    if (geomThreads > 256)
        throwConfigError(
            "geom_threads %u: must be in [0, 256] (0 = auto)",
            geomThreads);
    if (rasterThreads > 256)
        throwConfigError(
            "raster_threads %u: must be in [0, 256] (0 = auto, "
            "clamped to numPipelines)", rasterThreads);
}

GpuConfig
makeBaselineConfig()
{
    GpuConfig cfg;
    cfg.grouping = QuadGrouping::FGXShift2;
    cfg.tileOrder = TileOrder::ZOrder;
    cfg.assignment = SubtileAssignment::Constant;
    cfg.decoupledBarriers = false;
    return cfg;
}

GpuConfig
makeDTexLConfig()
{
    GpuConfig cfg;
    cfg.grouping = QuadGrouping::CGSquare;
    cfg.tileOrder = TileOrder::RectHilbert;
    cfg.assignment = SubtileAssignment::Flip2;
    cfg.decoupledBarriers = true;
    return cfg;
}

QuadGrouping
quadGroupingFromString(const std::string &name)
{
    for (QuadGrouping g : kAllQuadGroupings)
        if (toString(g) == name)
            return g;
    fatal("unknown quad grouping '%s'", name.c_str());
}

TileOrder
tileOrderFromString(const std::string &name)
{
    for (TileOrder o : kAllTileOrders)
        if (toString(o) == name)
            return o;
    fatal("unknown tile order '%s'", name.c_str());
}

SubtileAssignment
subtileAssignmentFromString(const std::string &name)
{
    for (SubtileAssignment a : kAllSubtileAssignments)
        if (toString(a) == name)
            return a;
    fatal("unknown subtile assignment '%s'", name.c_str());
}

std::string
toString(SimdMode m)
{
    switch (m) {
      case SimdMode::Auto:   return "auto";
      case SimdMode::Scalar: return "scalar";
    }
    panic("unknown SimdMode %d", static_cast<int>(m));
}

SimdMode
simdModeFromString(const std::string &name)
{
    if (name == "auto")
        return SimdMode::Auto;
    if (name == "scalar")
        return SimdMode::Scalar;
    fatal("unknown simd mode '%s' (auto|scalar)", name.c_str());
}

SimdMode
defaultSimdMode()
{
    static const SimdMode mode = [] {
        const char *env = std::getenv("DTEXL_SIMD");
        if (!env || !*env)
            return SimdMode::Auto;
        return simdModeFromString(env);
    }();
    return mode;
}

std::string
toString(WarpSched w)
{
    switch (w) {
      case WarpSched::EarliestReady: return "earliest";
      case WarpSched::OldestFirst:   return "oldest";
      case WarpSched::Greedy:        return "greedy";
    }
    panic("unknown WarpSched %d", static_cast<int>(w));
}

namespace {

std::uint32_t
parseUint(const std::string &key, const std::string &value)
{
    char *end = nullptr;
    const unsigned long v = std::strtoul(value.c_str(), &end, 10);
    if (end == value.c_str() || *end != '\0')
        fatal("option %s: '%s' is not a number", key.c_str(),
              value.c_str());
    return static_cast<std::uint32_t>(v);
}

bool
parseBool(const std::string &key, const std::string &value)
{
    if (value == "1" || value == "true" || value == "on")
        return true;
    if (value == "0" || value == "false" || value == "off")
        return false;
    fatal("option %s: '%s' is not a boolean", key.c_str(),
          value.c_str());
}

} // namespace

void
applyConfigOption(GpuConfig &cfg, const std::string &key,
                  const std::string &value)
{
    if (key == "grouping") {
        cfg.grouping = quadGroupingFromString(value);
    } else if (key == "order") {
        cfg.tileOrder = tileOrderFromString(value);
    } else if (key == "assignment") {
        cfg.assignment = subtileAssignmentFromString(value);
    } else if (key == "decoupled") {
        cfg.decoupledBarriers = parseBool(key, value);
    } else if (key == "hiz") {
        cfg.hierarchicalZ = parseBool(key, value);
    } else if (key == "prefetch") {
        cfg.texturePrefetch = parseBool(key, value);
    } else if (key == "te") {
        cfg.transactionElimination = parseBool(key, value);
    } else if (key == "warp_sched") {
        if (value == "earliest")
            cfg.warpScheduler = WarpSched::EarliestReady;
        else if (value == "oldest")
            cfg.warpScheduler = WarpSched::OldestFirst;
        else if (value == "greedy")
            cfg.warpScheduler = WarpSched::Greedy;
        else
            fatal("option warp_sched: unknown policy '%s'",
                  value.c_str());
    } else if (key == "warps") {
        cfg.maxWarpsPerCore = parseUint(key, value);
    } else if (key == "fifo") {
        cfg.stageFifoDepth = parseUint(key, value);
    } else if (key == "width") {
        cfg.screenWidth = parseUint(key, value);
    } else if (key == "height") {
        cfg.screenHeight = parseUint(key, value);
    } else if (key == "tile") {
        cfg.tileSize = parseUint(key, value);
    } else if (key == "l1tex_kib") {
        cfg.textureCache.sizeBytes = parseUint(key, value) * 1024;
    } else if (key == "l2_kib") {
        cfg.l2Cache.sizeBytes = parseUint(key, value) * 1024;
    } else if (key == "fastpath") {
        cfg.simFastPath = parseBool(key, value);
    } else if (key == "telemetry") {
        cfg.telemetryLevel = parseUint(key, value);
    } else if (key == "sample_cycles") {
        cfg.telemetrySamplePeriod = parseUint(key, value);
    } else if (key == "geom_threads") {
        cfg.geomThreads = parseUint(key, value);
    } else if (key == "raster_threads") {
        cfg.rasterThreads = parseUint(key, value);
    } else if (key == "simd") {
        cfg.simdMode = simdModeFromString(value);
    } else if (key == "watchdog_cycles") {
        char *end = nullptr;
        const unsigned long long v =
            std::strtoull(value.c_str(), &end, 10);
        if (end == value.c_str() || *end != '\0')
            fatal("option watchdog_cycles: '%s' is not a number "
                  "(cycles; 0 disables the watchdog)", value.c_str());
        cfg.watchdogCycles = v;
    } else {
        fatal("unknown config option '%s'", key.c_str());
    }
}

GpuConfig
makeUpperBoundConfig()
{
    GpuConfig cfg = makeBaselineConfig();
    cfg.numPipelines = 1;
    cfg.textureCache.sizeBytes *= 4;
    cfg.maxWarpsPerCore *= 4;
    cfg.grouping = QuadGrouping::CGSquare;  // irrelevant with one SC
    return cfg;
}

} // namespace dtexl

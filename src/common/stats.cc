#include "common/stats.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/log.hh"

namespace dtexl {

double
mean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double s = 0.0;
    for (double x : xs)
        s += x;
    return s / static_cast<double>(xs.size());
}

double
geoMean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double s = 0.0;
    for (double x : xs) {
        dtexl_assert(x > 0.0, "geoMean requires positive samples");
        s += std::log(x);
    }
    return std::exp(s / static_cast<double>(xs.size()));
}

double
normMeanDeviation(const std::vector<double> &xs)
{
    double m = mean(xs);
    if (xs.empty() || m == 0.0)
        return 0.0;
    double dev = 0.0;
    for (double x : xs)
        dev += std::abs(x - m);
    dev /= static_cast<double>(xs.size());
    return dev / m;
}

void
Distribution::ensureSorted() const
{
    if (!sorted) {
        std::sort(samples_.begin(), samples_.end());
        sorted = true;
    }
}

double
Distribution::min() const
{
    dtexl_assert(!samples_.empty());
    ensureSorted();
    return samples_.front();
}

double
Distribution::max() const
{
    dtexl_assert(!samples_.empty());
    ensureSorted();
    return samples_.back();
}

double
Distribution::mean() const
{
    return dtexl::mean(samples_);
}

double
Distribution::quantile(double q) const
{
    dtexl_assert(!samples_.empty());
    dtexl_assert(q >= 0.0 && q <= 1.0);
    ensureSorted();
    if (samples_.size() == 1)
        return samples_[0];
    double pos = q * static_cast<double>(samples_.size() - 1);
    auto lo = static_cast<std::size_t>(pos);
    if (lo + 1 >= samples_.size())
        return samples_.back();
    double frac = pos - static_cast<double>(lo);
    return samples_[lo] * (1.0 - frac) + samples_[lo + 1] * frac;
}

std::string
Distribution::summary() const
{
    std::ostringstream os;
    if (samples_.empty()) {
        os << "(empty)";
        return os.str();
    }
    os.precision(3);
    os << std::fixed << "min=" << min() << " p25=" << quantile(0.25)
       << " mean=" << mean() << " p75=" << quantile(0.75)
       << " max=" << max();
    return os.str();
}

std::uint64_t
StatSet::get(const std::string &key) const
{
    auto it = counters_.find(key);
    return it == counters_.end() ? 0 : it->second;
}

std::string
StatSet::dump() const
{
    std::ostringstream os;
    for (const auto &[k, v] : counters_)
        os << name_ << "." << k << " = " << v << "\n";
    return os.str();
}

} // namespace dtexl

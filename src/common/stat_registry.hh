/**
 * @file
 * Hierarchical statistics registry: a tree of StatSets addressed by
 * dot-separated paths ("engine.geometry", "job.GTr/dtexl.raster").
 * Components own or borrow a node and bump counters; the registry
 * renders the whole tree as an indented report.
 *
 * Thread-safety contract: node creation/lookup (node()) and whole-tree
 * operations (dump(), clear(), paths()) are mutex-guarded, so worker
 * threads may create nodes concurrently. Counter updates on a StatSet
 * are NOT synchronized — each node must have a single writer, which the
 * batch driver guarantees by giving every job its own path prefix.
 */

#ifndef DTEXL_COMMON_STAT_REGISTRY_HH
#define DTEXL_COMMON_STAT_REGISTRY_HH

#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/stats.hh"

namespace dtexl {

/** A mutex-guarded tree of named StatSets. */
class StatRegistry
{
  public:
    explicit StatRegistry(std::string name = "stats")
        : name_(std::move(name))
    {}

    /**
     * Create-or-get the StatSet at @p path ("a.b.c"). The returned
     * reference is stable for the registry's lifetime (nodes are never
     * removed, only cleared).
     */
    StatSet &node(const std::string &path);

    /** Convenience: node(path).inc(key, delta), guarded lookup. */
    void inc(const std::string &path, const std::string &key,
             std::uint64_t delta = 1);

    /** Registered paths, sorted (dot-separated). */
    std::vector<std::string> paths() const;

    /**
     * The StatSet at @p path, or nullptr if unregistered. Read-only
     * companion to node() for exporters; same stability guarantee.
     */
    const StatSet *find(const std::string &path) const;

    /**
     * Sum of @p key over the node at @p path (if registered) and every
     * descendant ("a.b" covers "a.b", "a.b.c", ...). Interior paths
     * need not be registered themselves: the tree invariant a parent's
     * total equals the sum of its children's totals holds by
     * construction, because every counter lives in exactly one leaf.
     */
    std::uint64_t total(const std::string &path,
                        const std::string &key) const;

    /**
     * Indented hierarchical report:
     *   engine
     *     geometry
     *       cycles = 1234
     * Nodes appear in path order; counters in key order.
     */
    std::string dump() const;

    /** Zero every counter of every node (nodes stay registered). */
    void clear();

    const std::string &name() const { return name_; }

  private:
    std::string name_;
    mutable std::mutex mu;
    /** Stable node storage: std::map never invalidates references. */
    std::map<std::string, StatSet> sets;
};

} // namespace dtexl

#endif // DTEXL_COMMON_STAT_REGISTRY_HH

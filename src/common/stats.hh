/**
 * @file
 * Statistics collection: scalar counters, sample distributions (used for
 * the paper's violin plots, Figures 14/15), and the normalized
 * mean-deviation metric used throughout the evaluation.
 */

#ifndef DTEXL_COMMON_STATS_HH
#define DTEXL_COMMON_STATS_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace dtexl {

/**
 * Normalized mean deviation of a sample set, as the paper uses it
 * (Figures 1, 12, 14, 15): mean absolute deviation from the mean,
 * divided by the mean. Returns 0 for empty input or zero mean.
 */
double normMeanDeviation(const std::vector<double> &xs);

/** Arithmetic mean; 0 for empty input. */
double mean(const std::vector<double> &xs);

/** Geometric mean; 0 for empty input, requires positive samples. */
double geoMean(const std::vector<double> &xs);

/**
 * Online sample distribution. Stores all samples so exact quantiles are
 * available for violin-style summaries; the evaluation collects at most a
 * few tens of thousands of per-tile samples per run.
 */
class Distribution
{
  public:
    /** Record one sample. */
    void
    add(double x)
    {
        samples_.push_back(x);
        sorted = false;
    }

    std::size_t count() const { return samples_.size(); }
    double min() const;
    double max() const;
    double mean() const;

    /** Exact quantile, q in [0,1]; linear interpolation between samples. */
    double quantile(double q) const;

    /** Five-number-ish summary line: min / p25 / mean / p75 / max. */
    std::string summary() const;

    const std::vector<double> &samples() const { return samples_; }
    void clear() { samples_.clear(); }

  private:
    mutable std::vector<double> samples_;
    mutable bool sorted = false;
    void ensureSorted() const;
};

/**
 * A flat named-counter set. Components own one and bump counters by
 * name-stable keys; runs are compared by diffing snapshots.
 */
class StatSet
{
  public:
    explicit StatSet(std::string name) : name_(std::move(name)) {}

    /** Add delta (default 1) to a counter, creating it at zero. */
    void
    inc(const std::string &key, std::uint64_t delta = 1)
    {
        counters_[key] += delta;
    }

    /** Current value; 0 if never incremented. */
    std::uint64_t get(const std::string &key) const;

    /**
     * Stable reference to a counter's storage, created at zero if
     * absent. Hot paths bind the reference once and bump it directly,
     * skipping the string-keyed lookup of inc(); std::map nodes are
     * stable, so the reference lives until clear() erases the key —
     * holders must re-bind after clear().
     */
    std::uint64_t &handle(const std::string &key)
    {
        return counters_[key];
    }

    const std::string &name() const { return name_; }
    const std::map<std::string, std::uint64_t> &counters() const
    {
        return counters_;
    }

    /** Multi-line "name.key = value" dump. */
    std::string dump() const;

    void clear() { counters_.clear(); }

  private:
    std::string name_;
    std::map<std::string, std::uint64_t> counters_;
};

} // namespace dtexl

#endif // DTEXL_COMMON_STATS_HH

#include "common/serial.hh"

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <system_error>

#include "common/sim_error.hh"

#ifdef _WIN32
#include <process.h>
#define dtexl_getpid _getpid
#else
#include <unistd.h>
#define dtexl_getpid getpid
#endif

namespace dtexl {

void
ByteReader::need(std::size_t bytes)
{
    if (n - pos < bytes)
        throwIoError("serialized artifact truncated: need %zu byte(s) "
                     "at offset %zu of %zu",
                     bytes, pos, n);
}

std::uint8_t
ByteReader::u8()
{
    need(1);
    return p[pos++];
}

std::uint32_t
ByteReader::u32()
{
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(p[pos + i]) << (8 * i);
    pos += 4;
    return v;
}

std::uint64_t
ByteReader::u64()
{
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(p[pos + i]) << (8 * i);
    pos += 8;
    return v;
}

std::string
ByteReader::str()
{
    const std::uint32_t len = u32();
    need(len);
    std::string s(reinterpret_cast<const char *>(p + pos), len);
    pos += len;
    return s;
}

std::uint64_t
fnv1a64(const std::uint8_t *data, std::size_t size)
{
    Fnv1a64 h;
    h.bytes(data, size);
    return h.value();
}

std::uint64_t
fnv1a64Striped(const std::uint8_t *data, std::size_t size)
{
    constexpr std::uint64_t kP = Fnv1a64::kPrime;
    std::uint64_t h[4] = {Fnv1a64::kOffsetBasis, Fnv1a64::kOffsetBasis,
                          Fnv1a64::kOffsetBasis, Fnv1a64::kOffsetBasis};
    std::size_t i = 0;
    // Four unrolled scalar chains, not a U64x4 lane loop: the FNV
    // recurrence is latency-bound, and a 64-bit lane multiply (AVX2's
    // exact mul_epu32 emulation included — there is no native lane op
    // below AVX-512) has roughly 3x the chain latency of four
    // independent pipelined imuls. Measured slower on every backend;
    // the striping itself is what buys the parallelism.
    for (; i + 4 <= size; i += 4) {
        h[0] = (h[0] ^ data[i]) * kP;
        h[1] = (h[1] ^ data[i + 1]) * kP;
        h[2] = (h[2] ^ data[i + 2]) * kP;
        h[3] = (h[3] ^ data[i + 3]) * kP;
    }
    for (unsigned j = 0; i < size; ++i, ++j)
        h[j] = (h[j] ^ data[i]) * kP;
    // Fold the stream digests and the length; the length keeps buffers
    // that differ only by trailing offset-basis-preserving tails apart.
    Fnv1a64 out;
    out.u64(h[0]);
    out.u64(h[1]);
    out.u64(h[2]);
    out.u64(h[3]);
    out.u64(size);
    return out.value();
}

void
atomicWriteFile(const std::string &path,
                const std::vector<std::uint8_t> &bytes)
{
    // Unique temp name per (process, call): parallel workers committing
    // different keys never collide, and two writers of the SAME path
    // each rename a complete file (last one wins, both are valid).
    static std::atomic<std::uint64_t> seq{0};
    const std::string tmp =
        path + ".tmp." + std::to_string(dtexl_getpid()) + "." +
        std::to_string(seq.fetch_add(1, std::memory_order_relaxed));

    std::FILE *f = std::fopen(tmp.c_str(), "wb");
    if (!f)
        throwIoError("cannot create temp file '%s'", tmp.c_str());
    const std::size_t wrote =
        bytes.empty() ? 0
                      : std::fwrite(bytes.data(), 1, bytes.size(), f);
    const bool flushed = std::fflush(f) == 0;
    std::fclose(f);
    if (wrote != bytes.size() || !flushed) {
        std::remove(tmp.c_str());
        throwIoError("short write to temp file '%s'", tmp.c_str());
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        throwIoError("cannot commit '%s' (rename from temp failed)",
                     path.c_str());
    }
}

bool
readFileBytes(const std::string &path, std::vector<std::uint8_t> &out)
{
    out.clear();
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return false;
    std::uint8_t chunk[1 << 16];
    std::size_t got;
    while ((got = std::fread(chunk, 1, sizeof chunk, f)) > 0)
        out.insert(out.end(), chunk, chunk + got);
    const bool ok = std::ferror(f) == 0;
    std::fclose(f);
    if (!ok)
        out.clear();
    return ok;
}

void
ensureDirectory(const std::string &dir)
{
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec)
        throwIoError("cannot create directory '%s': %s", dir.c_str(),
                     ec.message().c_str());
}

} // namespace dtexl

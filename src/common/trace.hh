/**
 * @file
 * Chrome-trace-event export (chrome://tracing, Perfetto): a process
 * global, thread-safe collector of complete ("ph":"X") span events and
 * counter ("ph":"C") samples. The batch driver and the phase-structured
 * engine record job and phase spans; the telemetry sampler records
 * counter tracks; `--trace=FILE` on the experiment binaries enables
 * collection and writes the JSON on exit.
 *
 * Timestamps are microseconds of std::chrono::steady_clock since the
 * first use in the process, so spans from all worker threads share one
 * time axis. Each OS thread is assigned a small dense "tid" on first
 * use, which the viewer shows as one track per worker.
 */

#ifndef DTEXL_COMMON_TRACE_HH
#define DTEXL_COMMON_TRACE_HH

#include <cstdint>
#include <string>

namespace dtexl {

/** Escape a string for use inside a JSON string literal. */
std::string jsonEscape(const std::string &s);

/** Process-global trace-event collector; disabled until enable(). */
class TraceWriter
{
  public:
    /** The process-wide instance used by engine and batch driver. */
    static TraceWriter &global();

    /**
     * Start collecting and remember the output path. flush() (or
     * process exit via enable()'s atexit hook) writes the file.
     */
    void enable(const std::string &path);

    bool enabled() const;

    /**
     * Record a complete event.
     *
     * @param name  Event name shown on the span.
     * @param cat   Category ("phase", "job", ...).
     * @param ts_us Start, microseconds on the shared clock.
     * @param dur_us Duration in microseconds.
     * @param tid   Track id; defaults to the calling thread's id.
     */
    void complete(const std::string &name, const std::string &cat,
                  std::uint64_t ts_us, std::uint64_t dur_us,
                  std::int32_t tid = -1);

    /**
     * Record a counter-track sample ("ph":"C", category "counter").
     * Successive samples with the same name and tid form one counter
     * track in the viewer.
     */
    void counter(const std::string &name, std::uint64_t ts_us,
                 std::uint64_t value, std::int32_t tid = -1);

    /** Write the JSON file; safe to call multiple times / when off. */
    void flush();

    /** Microseconds on the shared steady clock. */
    static std::uint64_t nowMicros();

    /** Small dense id of the calling thread (0, 1, 2, ...). */
    static std::uint32_t threadId();

  private:
    struct Impl;
    Impl &impl();
};

/**
 * RAII span: records a complete event from construction to destruction
 * when the global writer is enabled; near-zero cost when disabled.
 */
class TraceScope
{
  public:
    TraceScope(std::string name, std::string cat)
        : name_(std::move(name)), cat_(std::move(cat)),
          start(TraceWriter::global().enabled() ? TraceWriter::nowMicros()
                                                : 0),
          armed(TraceWriter::global().enabled())
    {}

    ~TraceScope()
    {
        if (armed) {
            const std::uint64_t end = TraceWriter::nowMicros();
            TraceWriter::global().complete(name_, cat_, start,
                                           end - start);
        }
    }

    TraceScope(const TraceScope &) = delete;
    TraceScope &operator=(const TraceScope &) = delete;

  private:
    std::string name_;
    std::string cat_;
    std::uint64_t start;
    bool armed;
};

} // namespace dtexl

#endif // DTEXL_COMMON_TRACE_HH

#include "common/signals.hh"

#include <atomic>
#include <csignal>
#include <unistd.h>

#include "common/sim_error.hh"

namespace dtexl {

namespace {

// Everything the handler touches is a lock-free atomic: a signal can
// land on any thread, including one holding arbitrary locks.
std::atomic<int> signalCount{0};
std::atomic<int> forceExitThreshold{2};
std::atomic<int> wakeFd{-1};
std::atomic<bool> installed{false};

extern "C" void
drainSignalHandler(int)
{
    const int n =
        signalCount.fetch_add(1, std::memory_order_relaxed) + 1;
    const int fd = wakeFd.load(std::memory_order_relaxed);
    if (fd >= 0) {
        const char b = 's';
        // Best effort; a full pipe still leaves the counter set.
        [[maybe_unused]] ssize_t r = ::write(fd, &b, 1);
    }
    if (n >= forceExitThreshold.load(std::memory_order_relaxed))
        ::_exit(kExitInterrupted);
}

} // namespace

void
installDrainHandlers(int forceExitAt)
{
    bool expected = false;
    if (!installed.compare_exchange_strong(expected, true,
                                           std::memory_order_relaxed))
        return;  // first caller wins, threshold included: dtexld
                 // installs (3) before runBatch's default (2) runs
    forceExitThreshold.store(forceExitAt < 2 ? 2 : forceExitAt,
                             std::memory_order_relaxed);
    struct sigaction sa = {};
    sa.sa_handler = drainSignalHandler;
    sigemptyset(&sa.sa_mask);
    // No SA_RESTART: a blocking accept()/read() should return EINTR so
    // the serving loop re-checks drainRequested() promptly.
    sa.sa_flags = 0;
    ::sigaction(SIGINT, &sa, nullptr);
    ::sigaction(SIGTERM, &sa, nullptr);
}

bool
drainRequested()
{
    return signalCount.load(std::memory_order_relaxed) > 0;
}

int
drainSignalCount()
{
    return signalCount.load(std::memory_order_relaxed);
}

void
setSignalWakeFd(int fd)
{
    wakeFd.store(fd, std::memory_order_relaxed);
}

void
ignoreSigpipe()
{
    struct sigaction sa = {};
    sa.sa_handler = SIG_IGN;
    sigemptyset(&sa.sa_mask);
    ::sigaction(SIGPIPE, &sa, nullptr);
}

void
requestDrain()
{
    signalCount.fetch_add(1, std::memory_order_relaxed);
    const int fd = wakeFd.load(std::memory_order_relaxed);
    if (fd >= 0) {
        const char b = 's';
        [[maybe_unused]] ssize_t r = ::write(fd, &b, 1);
    }
}

void
resetDrainForTests()
{
    signalCount.store(0, std::memory_order_relaxed);
}

} // namespace dtexl

#include "common/trace.hh"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <vector>

#include "common/log.hh"
#include "common/sim_error.hh"

namespace dtexl {

struct TraceWriter::Impl
{
    struct Event
    {
        std::string name;
        std::string cat;
        std::uint64_t ts;
        std::uint64_t dur;   ///< span duration; unused for counters
        std::uint32_t tid;
        char ph;             ///< 'X' = complete span, 'C' = counter
        std::uint64_t value; ///< counter value; unused for spans
    };

    std::mutex mu;
    std::vector<Event> events;
    std::string path;
    std::atomic<bool> on{false};
};

TraceWriter::Impl &
TraceWriter::impl()
{
    static Impl instance;
    return instance;
}

TraceWriter &
TraceWriter::global()
{
    static TraceWriter writer;
    return writer;
}

void
TraceWriter::enable(const std::string &path)
{
    Impl &im = impl();
    std::lock_guard<std::mutex> lock(im.mu);
    im.path = path;
    im.on.store(true, std::memory_order_release);
    // Write whatever was collected even if the binary never calls
    // flush() explicitly, and on every failure unwind (a failed batch
    // job, a guarded main catching a SimError): flush() keeps the
    // buffered events and rewrites the whole file, so repeated
    // failure-path flushes stay valid JSON.
    static bool hooked = false;
    if (!hooked) {
        hooked = true;
        std::atexit([] { TraceWriter::global().flush(); });
        registerFailureFlush([] { TraceWriter::global().flush(); });
    }
}

bool
TraceWriter::enabled() const
{
    return const_cast<TraceWriter *>(this)->impl().on.load(
        std::memory_order_acquire);
}

void
TraceWriter::complete(const std::string &name, const std::string &cat,
                      std::uint64_t ts_us, std::uint64_t dur_us,
                      std::int32_t tid)
{
    Impl &im = impl();
    if (!im.on.load(std::memory_order_acquire))
        return;
    const std::uint32_t track =
        tid < 0 ? threadId() : static_cast<std::uint32_t>(tid);
    std::lock_guard<std::mutex> lock(im.mu);
    im.events.push_back({name, cat, ts_us, dur_us, track, 'X', 0});
}

void
TraceWriter::counter(const std::string &name, std::uint64_t ts_us,
                     std::uint64_t value, std::int32_t tid)
{
    Impl &im = impl();
    if (!im.on.load(std::memory_order_acquire))
        return;
    const std::uint32_t track =
        tid < 0 ? threadId() : static_cast<std::uint32_t>(tid);
    std::lock_guard<std::mutex> lock(im.mu);
    im.events.push_back({name, "counter", ts_us, 0, track, 'C', value});
}

/** Escape a string for a JSON literal (names come from CLI labels). */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

void
TraceWriter::flush()
{
    Impl &im = impl();
    std::lock_guard<std::mutex> lock(im.mu);
    if (!im.on.load(std::memory_order_acquire) || im.path.empty())
        return;
    FILE *f = std::fopen(im.path.c_str(), "w");
    if (!f) {
        warn("cannot open trace file '%s'", im.path.c_str());
        return;
    }
    // The JSON-array form is valid without a closing bracket, but we
    // write the complete object form: {"traceEvents": [...]}.
    std::fprintf(f, "{\"traceEvents\":[\n");
    for (std::size_t i = 0; i < im.events.size(); ++i) {
        const Impl::Event &e = im.events[i];
        const char *sep = i + 1 == im.events.size() ? "" : ",";
        if (e.ph == 'C') {
            std::fprintf(
                f,
                "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"C\","
                "\"ts\":%llu,\"pid\":1,\"tid\":%u,"
                "\"args\":{\"value\":%llu}}%s\n",
                jsonEscape(e.name).c_str(), jsonEscape(e.cat).c_str(),
                static_cast<unsigned long long>(e.ts), e.tid,
                static_cast<unsigned long long>(e.value), sep);
        } else {
            std::fprintf(
                f,
                "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\","
                "\"ts\":%llu,\"dur\":%llu,\"pid\":1,\"tid\":%u}%s\n",
                jsonEscape(e.name).c_str(), jsonEscape(e.cat).c_str(),
                static_cast<unsigned long long>(e.ts),
                static_cast<unsigned long long>(e.dur), e.tid, sep);
        }
    }
    std::fprintf(f, "]}\n");
    std::fclose(f);
}

std::uint64_t
TraceWriter::nowMicros()
{
    using namespace std::chrono;
    static const steady_clock::time_point t0 = steady_clock::now();
    return static_cast<std::uint64_t>(
        duration_cast<microseconds>(steady_clock::now() - t0).count());
}

std::uint32_t
TraceWriter::threadId()
{
    static std::atomic<std::uint32_t> next{0};
    thread_local std::uint32_t id =
        next.fetch_add(1, std::memory_order_relaxed);
    return id;
}

} // namespace dtexl

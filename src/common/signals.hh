/**
 * @file
 * Cooperative SIGINT/SIGTERM drain for the batch driver and dtexld.
 *
 * The handler is async-signal-safe by construction: it bumps one
 * atomic counter, optionally write()s a wake byte into a registered
 * pipe fd (so a poll()-based accept loop notices immediately), and
 * _exit(130)s once the escalation threshold is reached. Everything
 * else — checkpointing in-flight jobs, flushing the EventBus, the
 * drain report — happens cooperatively on normal threads that poll
 * drainRequested() at frame boundaries (core/engine.cc).
 *
 * Escalation (DESIGN.md "Service daemon" / satellite: CLI drain):
 *  - sim_cli & friends install with forceExitAt=2: the first signal
 *    requests a drain (finish/checkpoint the current frame, skip
 *    unstarted jobs, exit 130); the second force-exits immediately.
 *  - dtexld installs with forceExitAt=3: first = graceful drain
 *    (finish in-flight jobs), second = checkpoint-and-stop, third =
 *    force exit.
 */

#ifndef DTEXL_COMMON_SIGNALS_HH
#define DTEXL_COMMON_SIGNALS_HH

namespace dtexl {

/**
 * Install the SIGINT/SIGTERM drain handler (idempotent; first call
 * wins). @p forceExitAt is the signal count at which the handler stops
 * cooperating and _exit(130)s — always >= 2, so one signal is always
 * a cooperative request.
 */
void installDrainHandlers(int forceExitAt = 2);

/** True once at least one SIGINT/SIGTERM arrived. */
bool drainRequested();

/** How many SIGINT/SIGTERMs arrived since install/reset. */
int drainSignalCount();

/**
 * Register a pipe write-end the handler pokes on each signal (-1 to
 * clear). The byte written is opaque; readers drain and re-poll.
 */
void setSignalWakeFd(int fd);

/** Ignore SIGPIPE process-wide (socket writers check errors instead). */
void ignoreSigpipe();

/**
 * Simulate a received drain signal (tests; also used by the daemon's
 * `drain` command so socket- and signal-initiated drains share one
 * path). Does not force-exit regardless of count.
 */
void requestDrain();

/** Reset the counter so a test can run multiple drain scenarios. */
void resetDrainForTests();

} // namespace dtexl

#endif // DTEXL_COMMON_SIGNALS_HH

/**
 * @file
 * Shared retry policy: exponential backoff with deterministic jitter.
 *
 * Two consumers (see DESIGN.md "Service daemon"):
 *  - the result cache wraps its store/manifest writes in
 *    retryTransient() so one transient filesystem hiccup (EINTR,
 *    momentary ENOSPC, an NFS blip) no longer silently discards a
 *    result that took minutes to compute;
 *  - dtexld's job scheduler re-enqueues jobs that died of a transient
 *    ErrorKind (Io, Watchdog — never UserInput/Config, which retry
 *    identically forever) after backoffDelayMs().
 *
 * backoffDelayMs() is a pure function of (policy, attempt): the jitter
 * comes from a splitmix64 of policy.seed and the attempt index, so
 * retry schedules are reproducible in tests and across daemon
 * restarts. Jitter exists to de-correlate many jobs retrying after one
 * shared-disk incident; determinism keeps it testable.
 */

#ifndef DTEXL_COMMON_RETRY_HH
#define DTEXL_COMMON_RETRY_HH

#include <cstdint>
#include <functional>

#include "common/sim_error.hh"

namespace dtexl {

/** Exponential-backoff schedule for transient-failure retries. */
struct RetryPolicy
{
    /** Total tries (first attempt included); 1 = no retry. */
    std::uint32_t attempts = 3;
    /** Delay before the first retry; doubles per further retry. */
    std::uint32_t baseDelayMs = 10;
    /** Ceiling the exponential curve saturates at. */
    std::uint32_t maxDelayMs = 2000;
    /** Jitter amplitude: the delay is scaled by 1 +/- pct/100. */
    std::uint32_t jitterPct = 25;
    /** Jitter stream seed; same seed = same schedule (testability). */
    std::uint64_t seed = 0;
};

/**
 * Delay in milliseconds before retry number @p retryIndex (0-based:
 * the wait after the first failed attempt). Pure and deterministic:
 * base * 2^retryIndex, saturated at maxDelayMs, then jittered by a
 * splitmix64 hash of (seed, retryIndex). Never returns 0 unless
 * baseDelayMs is 0.
 */
std::uint32_t backoffDelayMs(const RetryPolicy &policy,
                             std::uint32_t retryIndex);

/** True for error kinds a retry can plausibly fix (Io, Watchdog). */
bool isTransientErrorKind(ErrorKind kind);

/**
 * Run @p op under @p policy: on a SimError of transient kind, sleep
 * backoffDelayMs() and retry, up to policy.attempts total tries.
 * Returns true on success, false when every attempt failed of a
 * transient kind (the last error is warn()-logged, not rethrown —
 * callers of best-effort paths keep their swallow semantics).
 * Non-transient SimErrors propagate immediately: retrying a config
 * error burns time to fail identically.
 */
bool retryTransient(const RetryPolicy &policy, const char *what,
                    const std::function<void()> &op);

} // namespace dtexl

#endif // DTEXL_COMMON_RETRY_HH

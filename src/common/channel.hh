/**
 * @file
 * Cross-domain communication primitives for the partitioned raster
 * event loop (core/exec_domain.hh):
 *
 *  - Channel<T>: a small bounded blocking channel. Execution domains
 *    hand their per-tile outcomes (batch results, stat deltas) back to
 *    the coordinating thread through one, which commits them in domain
 *    order so the merge is deterministic regardless of which domain
 *    finishes first.
 *  - DomainMerge: the conservative cycle-ordered commit protocol for
 *    the *shared* memory levels (L2/DRAM). Each domain publishes the
 *    key of the event it is about to execute; an access to a shared
 *    level may proceed only when the domain's published key is the
 *    global minimum over all unfinished domains. Keys are globally
 *    unique (cycle plus core index), so exactly one domain is eligible
 *    at any instant and the shared levels observe their accesses in
 *    exactly the serial event-loop order — which is what makes the
 *    partitioned loop bit-identical to the single-threaded one (see
 *    DESIGN.md "Threading model").
 *
 * This header lives in common/ (not core/) because the memory
 * hierarchy's gate endpoints (mem/hierarchy.hh) need DomainMerge and
 * mem must not depend on core.
 */

#ifndef DTEXL_COMMON_CHANNEL_HH
#define DTEXL_COMMON_CHANNEL_HH

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>

#include "common/types.hh"

namespace dtexl {

/**
 * Bounded multi-producer/multi-consumer blocking channel.
 *
 * push() blocks while the channel holds @c capacity items; pop()
 * blocks until an item arrives or the channel is closed and drained
 * (then returns nullopt). Not on the per-event hot path — domains use
 * it once per tile — so a mutex + condition variable is the right
 * tool: simple, fair and ThreadSanitizer-clean.
 */
template <typename T>
class Channel
{
  public:
    explicit Channel(std::size_t capacity) : cap(capacity ? capacity : 1)
    {}

    Channel(const Channel &) = delete;
    Channel &operator=(const Channel &) = delete;

    /** Blocking send; returns false if the channel was closed. */
    bool
    push(T item)
    {
        std::unique_lock<std::mutex> lk(m);
        notFull.wait(lk, [&] { return q.size() < cap || closed; });
        if (closed)
            return false;
        q.push_back(std::move(item));
        lk.unlock();
        notEmpty.notify_one();
        return true;
    }

    /** Non-blocking send; returns false when full or closed. */
    bool
    tryPush(T item)
    {
        {
            std::lock_guard<std::mutex> lk(m);
            if (closed || q.size() >= cap)
                return false;
            q.push_back(std::move(item));
        }
        notEmpty.notify_one();
        return true;
    }

    /** Blocking receive; nullopt once closed and drained. */
    std::optional<T>
    pop()
    {
        std::unique_lock<std::mutex> lk(m);
        notEmpty.wait(lk, [&] { return !q.empty() || closed; });
        if (q.empty())
            return std::nullopt;
        T item = std::move(q.front());
        q.pop_front();
        lk.unlock();
        notFull.notify_one();
        return item;
    }

    /** Non-blocking receive; nullopt when currently empty. */
    std::optional<T>
    tryPop()
    {
        std::optional<T> item;
        {
            std::lock_guard<std::mutex> lk(m);
            if (q.empty())
                return std::nullopt;
            item.emplace(std::move(q.front()));
            q.pop_front();
        }
        notFull.notify_one();
        return item;
    }

    /** Close: wakes all blocked producers/consumers; push()es fail. */
    void
    close()
    {
        {
            std::lock_guard<std::mutex> lk(m);
            closed = true;
        }
        notEmpty.notify_all();
        notFull.notify_all();
    }

    std::size_t capacity() const { return cap; }

    std::size_t
    size() const
    {
        std::lock_guard<std::mutex> lk(m);
        return q.size();
    }

  private:
    const std::size_t cap;
    mutable std::mutex m;
    std::condition_variable notFull;
    std::condition_variable notEmpty;
    std::deque<T> q;
    bool closed = false;
};

/**
 * Conservative cycle-ordered merge for partitioned event loops.
 *
 * The serial shader-core event loop executes instruction issues in
 * strictly increasing (cycle, core index) order, and the *only*
 * cross-core coupling is the order in which their misses reach the
 * shared L2/DRAM (core/shader_core.cc). When the cores are partitioned
 * into domains that each run their own event loop, every domain's
 * event keys still increase monotonically, so enforcing "a domain may
 * touch a shared level only while it holds the globally minimal
 * published key" reproduces the serial access order exactly — a
 * distributed merge with no separate merge thread.
 *
 * Protocol per domain:
 *  1. publish(domain, key) with the event's key *before* executing it
 *     (release: everything written while executing earlier keys is
 *     visible to whoever observes this horizon).
 *  2. Shared-level endpoints (MemHierarchy's per-pipe L2 gates) call
 *     awaitTurn(domain) before forwarding, which spins until every
 *     other domain's horizon is past this domain's key.
 *  3. finish(domain) — or ScopedDomain's unwind — publishes the
 *     maximal key so sibling domains never wait on a completed (or
 *     thrown-through) domain.
 *
 * Keys are unique across domains because the core index occupies the
 * low bits and each core belongs to exactly one domain, so there are
 * no ties and the minimum is always strict: exactly one domain is
 * eligible at a time, and eligibility is stable (horizons only grow).
 */
class DomainMerge
{
  public:
    /** Domains fit the pipe count; 4 is the architectural maximum. */
    static constexpr std::uint32_t kMaxDomains = 4;
    static constexpr std::uint64_t kDoneKey = ~std::uint64_t{0};

    /**
     * Pack an event into a totally ordered key. The cycle saturates at
     * 2^61 - 1 so the shift cannot overflow even for events parked at
     * the fault-injection sentinel (2^62); saturated keys stay unique
     * across domains through the core-index bits, which is all the
     * protocol needs (a faulted run is heading into the watchdog
     * anyway).
     */
    static std::uint64_t
    packKey(Cycle cycle, std::uint32_t coreIndex)
    {
        constexpr Cycle kMaxCycle = (Cycle{1} << 61) - 1;
        const Cycle c = cycle < kMaxCycle ? cycle : kMaxCycle;
        return (static_cast<std::uint64_t>(c) << 2) |
               (coreIndex & 0x3u);
    }

    /** Arm the protocol for @p numDomains domains, horizons at 0. */
    void
    reset(std::uint32_t numDomains)
    {
        n = numDomains;
        for (auto &s : slots)
            s.horizon.store(0, std::memory_order_relaxed);
    }

    /** Publish the key of the event @p domain executes next. */
    void
    publish(std::uint32_t domain, std::uint64_t key)
    {
        slots[domain].horizon.store(key, std::memory_order_release);
    }

    /** Domain completed (or is unwinding): never block siblings. */
    void
    finish(std::uint32_t domain)
    {
        publish(domain, kDoneKey);
    }

    /**
     * Block until @p domain's published key is the strict global
     * minimum, i.e. its pending shared-level accesses are next in
     * serial order. The globally minimal domain never waits, so the
     * protocol cannot deadlock as long as every domain eventually
     * publishes a larger key or finishes.
     */
    void
    awaitTurn(std::uint32_t domain) const
    {
        const std::uint64_t key =
            slots[domain].horizon.load(std::memory_order_relaxed);
        for (std::uint32_t d = 0; d < n; ++d) {
            if (d == domain)
                continue;
            while (slots[d].horizon.load(std::memory_order_acquire) <
                   key) {
                std::this_thread::yield();
            }
        }
    }

    std::uint32_t numDomains() const { return n; }

    /** RAII: finish() on scope exit, including exception unwind. */
    class ScopedDomain
    {
      public:
        ScopedDomain(DomainMerge &m, std::uint32_t domain)
            : merge(m), dom(domain)
        {}
        ~ScopedDomain() { merge.finish(dom); }
        ScopedDomain(const ScopedDomain &) = delete;
        ScopedDomain &operator=(const ScopedDomain &) = delete;

      private:
        DomainMerge &merge;
        std::uint32_t dom;
    };

  private:
    /** Own cache line per horizon: domains spin on each other's. */
    struct alignas(64) Slot
    {
        std::atomic<std::uint64_t> horizon{0};
    };
    std::array<Slot, kMaxDomains> slots;
    std::uint32_t n = 0;
};

/**
 * One domain's view of the merge: which domain it is and where its
 * core slice starts in the global core numbering (for key packing).
 * Passed into the shader-core event loop; null means serial execution
 * with no merge protocol at all.
 */
struct MergeHook
{
    DomainMerge *merge = nullptr;
    std::uint32_t domain = 0;
    /** Global index of the domain's first core (contiguous slice). */
    std::uint32_t coreOffset = 0;
};

} // namespace dtexl

#endif // DTEXL_COMMON_CHANNEL_HH

/**
 * @file
 * Fault-injection harness (tests and CI only; see DESIGN.md).
 *
 * The injection sites cover the failure classes the hardened engine
 * must survive: corrupt/truncated scene input, a mis-sized config, a
 * leaked barrier credit, a dropped memory completion, and corrupted
 * result-cache/checkpoint artifacts on disk. The harness
 * is always compiled in so the shipping binary is the tested binary,
 * but it is *disarmed* by default: every hook reduces to one relaxed
 * atomic load of a zero flag, so golden results are byte-identical
 * with the harness present (test_fault_inject.cc proves this).
 *
 * Hooks fire a bounded number of times (arm(site, n)) and then
 * self-disarm, so an injected fault is deterministic and cannot
 * cascade across jobs that share the process.
 */

#ifndef DTEXL_COMMON_FAULT_INJECT_HH
#define DTEXL_COMMON_FAULT_INJECT_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

#include "common/types.hh"

namespace dtexl {

/** Injection sites (one per failure class the engine must survive). */
enum class FaultSite : std::uint32_t
{
    SceneTruncate,      ///< scene parser sees EOF mid-file
    SceneCorruptToken,  ///< scene parser sees a garbage token
    ConfigMisSize,      ///< GpuSimulator receives an invalid cache size
    BarrierCreditLeak,  ///< raster pipe loses a stage-FIFO credit
    DropMemCompletion,  ///< a texture read's fill never completes
    CacheTruncate,      ///< result-cache entry truncated on disk
    CkptFlipByte,       ///< checkpoint file suffers a bit flip
    FrameIoFail,        ///< transient I/O error at a frame boundary
    kNumSites,
};

const char *toString(FaultSite site);

/** Parse a site name ("scene-truncate", ...); throws SimError on junk. */
FaultSite faultSiteFromString(const std::string &name);

/**
 * Stall cycle injected for "never completes" faults. Deliberately NOT
 * kCycleNever: downstream stages add latencies to completion cycles
 * and ~0 would wrap around; 2^62 leaves headroom while still being
 * astronomically far beyond any real simulation.
 */
inline constexpr Cycle kFaultStallCycle = Cycle{1} << 62;

class FaultInject
{
  public:
    static FaultInject &global();

    /**
     * Arm @p site to fire on @p count hook evaluations after first
     * letting @p skipFirst evaluations pass unharmed. The skip window
     * makes multi-phase scenarios expressible: "fail the SECOND frame
     * boundary" arms (FrameIoFail, 1, 1), which is how CI proves
     * retry-resumes-from-checkpoint (the first boundary must survive
     * long enough to write the checkpoint the retry resumes from).
     */
    void arm(FaultSite site, std::uint32_t count = 1,
             std::uint32_t skipFirst = 0);

    /** Disarm every site (tests call this in teardown). */
    void disarmAll();

    /**
     * Hot-path hook: true when @p site is armed with shots remaining
     * (consumes one shot). The disarmed cost is a single relaxed load.
     */
    bool fire(FaultSite site)
    {
        if (armed_.load(std::memory_order_relaxed) == 0)
            return false;
        return fireSlow(site);
    }

    /** Times @p site actually fired since the last disarmAll(). */
    std::uint64_t fired(FaultSite site) const;

  private:
    FaultInject() = default;
    bool fireSlow(FaultSite site);

    static constexpr std::size_t kSites =
        static_cast<std::size_t>(FaultSite::kNumSites);

    /** Number of sites with shots remaining (0 == fully disarmed). */
    std::atomic<std::uint32_t> armed_{0};
    std::atomic<std::uint32_t> shots_[kSites] = {};
    std::atomic<std::uint32_t> skips_[kSites] = {};
    std::atomic<std::uint64_t> fired_[kSites] = {};
};

/** RAII arm/disarm for tests: arms in ctor, disarms ALL sites in dtor. */
class ScopedFault
{
  public:
    explicit ScopedFault(FaultSite site, std::uint32_t count = 1,
                         std::uint32_t skipFirst = 0)
    {
        FaultInject::global().arm(site, count, skipFirst);
    }
    ~ScopedFault() { FaultInject::global().disarmAll(); }
    ScopedFault(const ScopedFault &) = delete;
    ScopedFault &operator=(const ScopedFault &) = delete;
};

} // namespace dtexl

#endif // DTEXL_COMMON_FAULT_INJECT_HH

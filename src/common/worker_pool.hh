/**
 * @file
 * Small persistent worker pool for intra-job parallelism.
 *
 * The batch driver (core/engine.hh) parallelizes across independent
 * jobs; this pool parallelizes *inside* one simulation — currently the
 * geometry/tiling front-end, whose functional work (vertex transforms,
 * assembly culling, tile-overlap tests) is pure per draw and can fan
 * out while the timed replay stays serial (see core/geometry_phase.cc
 * for the determinism argument).
 *
 * Threads are created once and parked on a condition variable between
 * parallelFor() calls, so a per-frame fan-out does not pay thread
 * creation. parallelFor() distributes indices through an atomic
 * cursor (same pattern as engine runBatch) and the caller's thread
 * works too, so a pool of size 1 degenerates to a plain loop.
 */

#ifndef DTEXL_COMMON_WORKER_POOL_HH
#define DTEXL_COMMON_WORKER_POOL_HH

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dtexl {

/** Persistent thread pool with a blocking parallel-for. */
class WorkerPool
{
  public:
    /**
     * @param threads Total workers including the calling thread;
     *                values <= 1 create no threads at all.
     */
    explicit WorkerPool(unsigned threads);
    ~WorkerPool();

    WorkerPool(const WorkerPool &) = delete;
    WorkerPool &operator=(const WorkerPool &) = delete;

    /** Total workers including the calling thread (>= 1). */
    unsigned size() const
    {
        return static_cast<unsigned>(workers.size()) + 1;
    }

    /**
     * Run fn(i) for every i in [0, n), distributing indices across the
     * pool plus the calling thread; returns when all calls finished.
     * fn must be safe to call concurrently for distinct i. Not
     * reentrant: parallelFor() must not be called from inside fn.
     *
     * If any fn(i) throws, the first captured exception is rethrown on
     * the calling thread after the job drains (remaining indices are
     * skipped); pool threads never leak an exception.
     */
    void parallelFor(std::size_t n,
                     const std::function<void(std::size_t)> &fn);

    /**
     * Gang-schedule fn(0..n-1) with every member on its *own* thread,
     * all running concurrently: the caller executes index 0 and worker
     * w executes index w (so n must be <= size()). parallelFor() makes
     * no such guarantee — its atomic cursor lets one thread claim two
     * indices — which would deadlock members that busy-wait on each
     * other, as the raster execution domains do (core/exec_domain.hh).
     *
     * Exceptions are captured per index; after every member returns,
     * the lowest-index exception is rethrown on the calling thread so
     * the reported failure is deterministic.
     */
    void runGang(std::size_t n,
                 const std::function<void(std::size_t)> &fn);

  private:
    void workerLoop(std::size_t id);
    /** Pull indices from the current job until it is drained. */
    void drain();

    std::vector<std::thread> workers;

    std::mutex m;
    std::condition_variable wake;   ///< workers wait for a job/stop
    std::condition_variable done;   ///< caller waits for completion
    const std::function<void(std::size_t)> *job = nullptr;
    std::size_t jobSize = 0;
    std::uint64_t jobSeq = 0;       ///< bumped per parallelFor call
    std::atomic<std::size_t> next{0};
    std::size_t finished = 0;       ///< indices completed this job
    std::exception_ptr firstError;  ///< first task throw; m-guarded
    std::atomic<bool> errored{false}; ///< fast skip after a throw
    bool stopping = false;

    /** Gang job state (runGang); worker w runs index w when w < size. */
    const std::function<void(std::size_t)> *gangJob = nullptr;
    std::size_t gangSize = 0;
    std::uint64_t gangSeq = 0;      ///< bumped per runGang call
    std::size_t gangFinished = 0;   ///< members completed this gang
    std::vector<std::exception_ptr> gangErrors;  ///< per index; m-guarded
};

} // namespace dtexl

#endif // DTEXL_COMMON_WORKER_POOL_HH

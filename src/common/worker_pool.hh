/**
 * @file
 * Small persistent worker pool for intra-job parallelism.
 *
 * The batch driver (core/engine.hh) parallelizes across independent
 * jobs; this pool parallelizes *inside* one simulation — currently the
 * geometry/tiling front-end, whose functional work (vertex transforms,
 * assembly culling, tile-overlap tests) is pure per draw and can fan
 * out while the timed replay stays serial (see core/geometry_phase.cc
 * for the determinism argument).
 *
 * Threads are created once and parked on a condition variable between
 * parallelFor() calls, so a per-frame fan-out does not pay thread
 * creation. parallelFor() distributes indices through an atomic
 * cursor (same pattern as engine runBatch) and the caller's thread
 * works too, so a pool of size 1 degenerates to a plain loop.
 */

#ifndef DTEXL_COMMON_WORKER_POOL_HH
#define DTEXL_COMMON_WORKER_POOL_HH

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dtexl {

/** Persistent thread pool with a blocking parallel-for. */
class WorkerPool
{
  public:
    /**
     * @param threads Total workers including the calling thread;
     *                values <= 1 create no threads at all.
     */
    explicit WorkerPool(unsigned threads);
    ~WorkerPool();

    WorkerPool(const WorkerPool &) = delete;
    WorkerPool &operator=(const WorkerPool &) = delete;

    /** Total workers including the calling thread (>= 1). */
    unsigned size() const
    {
        return static_cast<unsigned>(workers.size()) + 1;
    }

    /**
     * Run fn(i) for every i in [0, n), distributing indices across the
     * pool plus the calling thread; returns when all calls finished.
     * fn must be safe to call concurrently for distinct i. Not
     * reentrant: parallelFor() must not be called from inside fn.
     *
     * If any fn(i) throws, the first captured exception is rethrown on
     * the calling thread after the job drains (remaining indices are
     * skipped); pool threads never leak an exception.
     */
    void parallelFor(std::size_t n,
                     const std::function<void(std::size_t)> &fn);

  private:
    void workerLoop();
    /** Pull indices from the current job until it is drained. */
    void drain();

    std::vector<std::thread> workers;

    std::mutex m;
    std::condition_variable wake;   ///< workers wait for a job/stop
    std::condition_variable done;   ///< caller waits for completion
    const std::function<void(std::size_t)> *job = nullptr;
    std::size_t jobSize = 0;
    std::uint64_t jobSeq = 0;       ///< bumped per parallelFor call
    std::atomic<std::size_t> next{0};
    std::size_t finished = 0;       ///< indices completed this job
    std::exception_ptr firstError;  ///< first task throw; m-guarded
    std::atomic<bool> errored{false}; ///< fast skip after a throw
    bool stopping = false;
};

} // namespace dtexl

#endif // DTEXL_COMMON_WORKER_POOL_HH

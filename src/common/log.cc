#include "common/log.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <vector>

#include "common/sim_error.hh"

namespace dtexl {

namespace {

std::atomic<bool> log_quiet{false};

/** Active job tag for this thread's log lines (ScopedLogJobLabel). */
thread_local std::string t_jobLabel;

/**
 * Emit one whole "<tag>: [label] message" line under the stream lock.
 * The message was formatted before the lock; only the write serializes.
 */
void
emitLine(const char *tag, const std::string &msg)
{
    std::lock_guard<std::mutex> lk(logStreamMutex());
    if (t_jobLabel.empty())
        std::fprintf(stderr, "%s: %s\n", tag, msg.c_str());
    else
        std::fprintf(stderr, "%s: [%s] %s\n", tag, t_jobLabel.c_str(),
                     msg.c_str());
}

} // namespace

std::mutex &
logStreamMutex()
{
    static std::mutex m;
    return m;
}

ScopedLogJobLabel::ScopedLogJobLabel(const std::string &label)
    : saved(std::move(t_jobLabel))
{
    t_jobLabel = label;
}

ScopedLogJobLabel::~ScopedLogJobLabel()
{
    t_jobLabel = std::move(saved);
}

void
setLogQuiet(bool quiet)
{
    log_quiet.store(quiet, std::memory_order_relaxed);
}

std::string
vformat(const char *fmt, std::va_list ap)
{
    std::va_list ap2;
    va_copy(ap2, ap);
    int n = std::vsnprintf(nullptr, 0, fmt, ap);
    if (n < 0) {
        va_end(ap2);
        return "<format error>";
    }
    std::vector<char> buf(static_cast<size_t>(n) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, ap2);
    va_end(ap2);
    return std::string(buf.data(), static_cast<size_t>(n));
}

void
panic(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    throw SimError(ErrorKind::Internal, std::move(msg));
}

void
fatal(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    throw SimError(ErrorKind::UserInput, std::move(msg));
}

void
warn(const char *fmt, ...)
{
    if (log_quiet.load(std::memory_order_relaxed))
        return;
    std::va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    emitLine("warn", msg);
}

void
inform(const char *fmt, ...)
{
    if (log_quiet.load(std::memory_order_relaxed))
        return;
    std::va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    emitLine("info", msg);
}

void
panicAssert(const char *cond, const char *file, int line,
            const char *fmt, ...)
{
    std::string msg;
    if (fmt) {
        std::va_list ap;
        va_start(ap, fmt);
        msg = ": " + vformat(fmt, ap);
        va_end(ap);
    }
    std::string what = "assertion '";
    what += cond;
    what += "' failed";
    what += msg;
    throw SimError(ErrorKind::Internal, std::move(what),
                   std::string(file) + ":" + std::to_string(line));
}

} // namespace dtexl

#include "common/log.hh"

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "common/sim_error.hh"

namespace dtexl {

namespace {
bool log_quiet = false;
} // namespace

void
setLogQuiet(bool quiet)
{
    log_quiet = quiet;
}

std::string
vformat(const char *fmt, std::va_list ap)
{
    std::va_list ap2;
    va_copy(ap2, ap);
    int n = std::vsnprintf(nullptr, 0, fmt, ap);
    if (n < 0) {
        va_end(ap2);
        return "<format error>";
    }
    std::vector<char> buf(static_cast<size_t>(n) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, ap2);
    va_end(ap2);
    return std::string(buf.data(), static_cast<size_t>(n));
}

void
panic(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    throw SimError(ErrorKind::Internal, std::move(msg));
}

void
fatal(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    throw SimError(ErrorKind::UserInput, std::move(msg));
}

void
warn(const char *fmt, ...)
{
    if (log_quiet)
        return;
    std::va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
inform(const char *fmt, ...)
{
    if (log_quiet)
        return;
    std::va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "info: %s\n", msg.c_str());
}

void
panicAssert(const char *cond, const char *file, int line,
            const char *fmt, ...)
{
    std::string msg;
    if (fmt) {
        std::va_list ap;
        va_start(ap, fmt);
        msg = ": " + vformat(fmt, ap);
        va_end(ap);
    }
    std::string what = "assertion '";
    what += cond;
    what += "' failed";
    what += msg;
    throw SimError(ErrorKind::Internal, std::move(what),
                   std::string(file) + ":" + std::to_string(line));
}

} // namespace dtexl

#include "common/retry.hh"

#include <chrono>
#include <thread>

#include "common/log.hh"

namespace dtexl {

namespace {

/** splitmix64: the standard 64-bit finalizer (public domain). */
std::uint64_t
splitmix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

} // namespace

std::uint32_t
backoffDelayMs(const RetryPolicy &policy, std::uint32_t retryIndex)
{
    // base * 2^retryIndex, saturating both the shift and the product.
    std::uint64_t delay = policy.baseDelayMs;
    if (retryIndex >= 32)
        delay = policy.maxDelayMs;
    else
        delay <<= retryIndex;
    if (delay > policy.maxDelayMs)
        delay = policy.maxDelayMs;
    if (delay == 0 || policy.jitterPct == 0)
        return static_cast<std::uint32_t>(delay);

    // Deterministic jitter in [-pct, +pct] percent of the delay.
    const std::uint64_t h =
        splitmix64(policy.seed ^ (0x5bd1e995ull * (retryIndex + 1)));
    const std::uint32_t pct = policy.jitterPct > 100 ? 100
                                                     : policy.jitterPct;
    const std::int64_t span =
        static_cast<std::int64_t>(delay) * pct / 100;
    const std::int64_t offset =
        span > 0 ? static_cast<std::int64_t>(h % (2 * span + 1)) - span
                 : 0;
    std::int64_t jittered = static_cast<std::int64_t>(delay) + offset;
    if (jittered < 1)
        jittered = 1;
    return static_cast<std::uint32_t>(jittered);
}

bool
isTransientErrorKind(ErrorKind kind)
{
    return kind == ErrorKind::Io || kind == ErrorKind::Watchdog;
}

bool
retryTransient(const RetryPolicy &policy, const char *what,
               const std::function<void()> &op)
{
    const std::uint32_t tries = policy.attempts == 0 ? 1
                                                     : policy.attempts;
    for (std::uint32_t attempt = 0;; ++attempt) {
        try {
            op();
            return true;
        } catch (const SimError &e) {
            if (!isTransientErrorKind(e.kind()))
                throw;
            if (attempt + 1 >= tries) {
                warn("%s: giving up after %u attempt(s): %s", what,
                     tries, e.what());
                return false;
            }
            const std::uint32_t delay = backoffDelayMs(policy, attempt);
            warn("%s: transient failure (%s); retry %u/%u in %u ms",
                 what, e.what(), attempt + 1, tries - 1, delay);
            std::this_thread::sleep_for(
                std::chrono::milliseconds(delay));
        }
    }
}

} // namespace dtexl

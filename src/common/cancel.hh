/**
 * @file
 * Cooperative cancellation token, checked by runJob() at frame
 * boundaries (core/engine.cc) and flipped by dtexld's control plane.
 *
 * Two request levels, because the daemon needs to distinguish "the
 * user killed this job" from "the process is draining":
 *  - Cancel:    the job is abandoned; its checkpoint is NOT refreshed
 *               (the job will never resume) and the daemon marks it
 *               terminally cancelled.
 *  - Interrupt: the job should stop at the next frame boundary but
 *               stay resumable — a checkpoint is written when armed,
 *               and a restart (or retry) continues from it.
 *
 * Both unwind through SimError{ErrorKind::Cancelled}, so the existing
 * fault-isolation machinery (crash-free per-job catch, EventBus
 * job_error, exit codes) handles them with no new control flow.
 */

#ifndef DTEXL_COMMON_CANCEL_HH
#define DTEXL_COMMON_CANCEL_HH

#include <atomic>
#include <cstdint>

namespace dtexl {

class CancelToken
{
  public:
    enum class State : std::uint32_t
    {
        Run = 0,
        Interrupt = 1,  ///< stop at frame boundary, stay resumable
        Cancel = 2,     ///< stop at frame boundary, terminal
    };

    /** Request terminal cancellation (wins over Interrupt). */
    void
    requestCancel()
    {
        state_.store(static_cast<std::uint32_t>(State::Cancel),
                     std::memory_order_relaxed);
    }

    /** Request a resumable stop; never downgrades a Cancel. */
    void
    requestInterrupt()
    {
        std::uint32_t expected =
            static_cast<std::uint32_t>(State::Run);
        state_.compare_exchange_strong(
            expected, static_cast<std::uint32_t>(State::Interrupt),
            std::memory_order_relaxed);
    }

    State
    state() const
    {
        return static_cast<State>(
            state_.load(std::memory_order_relaxed));
    }

    bool requested() const { return state() != State::Run; }

    /** Back to Run (a fresh retry attempt of the same record). */
    void
    reset()
    {
        state_.store(static_cast<std::uint32_t>(State::Run),
                     std::memory_order_relaxed);
    }

  private:
    std::atomic<std::uint32_t> state_{0};
};

} // namespace dtexl

#endif // DTEXL_COMMON_CANCEL_HH

/**
 * @file
 * Fundamental scalar and coordinate types shared by all simulator modules.
 */

#ifndef DTEXL_COMMON_TYPES_HH
#define DTEXL_COMMON_TYPES_HH

#include <cstdint>

namespace dtexl {

/** Simulated clock cycle count. */
using Cycle = std::uint64_t;

/** Physical byte address in the simulated memory space. */
using Addr = std::uint64_t;

/** Identifier of a tile within the frame's tile grid, in raster order. */
using TileId = std::uint32_t;

/** Identifier of a shader core / parallel raster pipeline (0..N-1). */
using CoreId = std::uint8_t;

/** Identifier of a primitive within a frame, in submission order. */
using PrimId = std::uint32_t;

/** Sentinel for "no cycle" / "not yet scheduled". */
inline constexpr Cycle kCycleNever = ~Cycle{0};

/** Integer 2D coordinate (tile grid, quad grid, pixel grid). */
struct Coord2
{
    std::int32_t x = 0;
    std::int32_t y = 0;

    bool operator==(const Coord2 &o) const = default;
};

/**
 * Manhattan adjacency test: true when the two coordinates are horizontal
 * or vertical grid neighbours (not diagonal, not equal).
 */
inline bool
isEdgeAdjacent(const Coord2 &a, const Coord2 &b)
{
    int dx = a.x > b.x ? a.x - b.x : b.x - a.x;
    int dy = a.y > b.y ? a.y - b.y : b.y - a.y;
    return dx + dy == 1;
}

/** Integer division rounding up; used for grid sizing throughout. */
inline constexpr std::uint32_t
divCeil(std::uint32_t a, std::uint32_t b)
{
    return (a + b - 1) / b;
}

} // namespace dtexl

#endif // DTEXL_COMMON_TYPES_HH

/**
 * @file
 * Cross-cutting scheduling-policy vocabulary: the quad groupings of
 * Figure 6, the tile orders of Figure 7, and the subtile assignments of
 * Figure 8. Defined here (not in sched/) because the GPU configuration,
 * the scheduler, the benches and the tests all name them.
 */

#ifndef DTEXL_COMMON_POLICIES_HH
#define DTEXL_COMMON_POLICIES_HH

#include <cstdint>
#include <string>

namespace dtexl {

/**
 * Quad grouping: how the quads of one tile are partitioned into four
 * subtiles (Figure 6). FG-* are fine-grained interleavings aimed at load
 * balance; CG-* are coarse contiguous regions aimed at texture locality.
 */
enum class QuadGrouping
{
    FGChecker,   ///< (a) 2x2 checkerboard: no edge-adjacent quad shares a SC
    FGXShift1,   ///< (b) row-cyclic, shifted by 1 each row
    FGXShift2,   ///< (c) row-cyclic, shifted by 2 each row (paper baseline)
    FGYShift2,   ///< (d) column-cyclic, shifted by 2 each column
    FGVDomino,   ///< (e) 1x2 dominoes: at most 2 vertical neighbours share
    FGHDomino,   ///< (f) 2x1 dominoes: at most 2 horizontal neighbours share
    CGXRect,     ///< (g) four full-height bands split along x
    CGYRect,     ///< (h) four full-width bands split along y
    CGTriangle,  ///< (i) four triangles meeting at the tile centre
    CGSquare,    ///< (j) 2x2 quadrants (paper's locality representative)
};

/** True for the coarse-grained (locality-oriented) groupings. */
bool isCoarseGrained(QuadGrouping g);

/** Stable short name used in reports ("FG-xshift2", "CG-square", ...). */
std::string toString(QuadGrouping g);

/** Inverse of toString; fatal() on an unknown name. */
QuadGrouping quadGroupingFromString(const std::string &name);

/** All ten groupings, in Figure 6 order. */
inline constexpr QuadGrouping kAllQuadGroupings[] = {
    QuadGrouping::FGChecker,  QuadGrouping::FGXShift1,
    QuadGrouping::FGXShift2,  QuadGrouping::FGYShift2,
    QuadGrouping::FGVDomino,  QuadGrouping::FGHDomino,
    QuadGrouping::CGXRect,    QuadGrouping::CGYRect,
    QuadGrouping::CGTriangle, QuadGrouping::CGSquare,
};

/**
 * Tile traversal order for the Tile Fetcher (Figure 7). RectHilbert is
 * the paper's adaptation: Hilbert over 8x8-tile sub-frames, sub-frames
 * visited boustrophedonically.
 */
enum class TileOrder
{
    Scanline,     ///< row by row, left to right
    SOrder,       ///< boustrophedon rows (serpentine)
    ZOrder,       ///< Morton order (paper baseline traversal)
    RectHilbert,  ///< Hilbert on 8x8 sub-frames, S across sub-frames
};

std::string toString(TileOrder o);

/** Inverse of toString; fatal() on an unknown name. */
TileOrder tileOrderFromString(const std::string &name);

inline constexpr TileOrder kAllTileOrders[] = {
    TileOrder::Scanline, TileOrder::SOrder, TileOrder::ZOrder,
    TileOrder::RectHilbert,
};

/**
 * Subtile-to-SC assignment across consecutive tiles (Figure 8).
 * Constant keeps quadrant k on SC k for every tile; the flip schemes
 * remap so that subtiles sharing an edge with the previous tile stay on
 * the same SC, with increasing fairness across SCs.
 */
enum class SubtileAssignment
{
    Constant,  ///< same quadrant -> same SC in every tile
    Flip1,     ///< mirror across the edge shared with the previous tile
    Flip2,     ///< Flip1 + swap the non-sharing pair on even->odd steps
    Flip3,     ///< Flip2 + full rotation of all four SCs every 16 tiles
};

std::string toString(SubtileAssignment a);

/**
 * Warp selection policy of the shader cores (the paper names warp
 * scheduling as one source of out-of-order quad completion).
 */
enum class WarpSched
{
    EarliestReady,  ///< ready warp with the earliest ready time
    OldestFirst,    ///< oldest ready warp (admission order)
    Greedy,         ///< keep issuing the same warp until it stalls
};

std::string toString(WarpSched w);

/**
 * Host SIMD dispatch for the vectorized raster/texture kernels
 * (simulator infrastructure, not modelled hardware): Auto runs the
 * lane implementations (common/simd.hh) on the backend compiled into
 * the build, Scalar runs the original serial code. Results are
 * bit-identical either way (tests/test_simd.cc); the knob exists for
 * A/B validation and for measuring the kernel speedups.
 */
enum class SimdMode : std::uint8_t
{
    Auto,    ///< lane kernels on the compiled backend (default)
    Scalar,  ///< original serial kernels
};

std::string toString(SimdMode m);

/** Inverse of toString; fatal() on an unknown name. */
SimdMode simdModeFromString(const std::string &name);

/**
 * Process-wide default for GpuConfig::simdMode: SimdMode::Auto unless
 * the DTEXL_SIMD environment variable says "scalar" (the CI scalar leg
 * runs the whole test suite that way without touching each test).
 * Read once; fatal() on an unrecognized value.
 */
SimdMode defaultSimdMode();

/** Inverse of toString; fatal() on an unknown name. */
SubtileAssignment subtileAssignmentFromString(const std::string &name);

inline constexpr SubtileAssignment kAllSubtileAssignments[] = {
    SubtileAssignment::Constant, SubtileAssignment::Flip1,
    SubtileAssignment::Flip2, SubtileAssignment::Flip3,
};

} // namespace dtexl

#endif // DTEXL_COMMON_POLICIES_HH

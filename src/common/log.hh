/**
 * @file
 * Error and status reporting, following the gem5 panic/fatal naming
 * convention: panic() flags simulator bugs, fatal() flags unusable
 * user configuration, warn()/inform() report status. Unlike gem5,
 * panic/fatal do not kill the process: they throw SimError
 * (sim_error.hh) so the batch driver can isolate a failing job and
 * every CLI can exit with a structured code from one top-level
 * handler.
 */

#ifndef DTEXL_COMMON_LOG_HH
#define DTEXL_COMMON_LOG_HH

#include <cstdarg>
#include <mutex>
#include <string>

namespace dtexl {

/** Severity of a log message. */
enum class LogLevel { Inform, Warn, Fatal, Panic };

/**
 * Report a condition that can never happen unless the simulator itself
 * is broken. Throws SimError{Internal}.
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Report a condition caused by an invalid user configuration. Throws
 * SimError{UserInput}.
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report suspicious but survivable behaviour. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Report normal operating status. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * Suppress or re-enable inform()/warn() output (tests use this to keep
 * logs quiet). Fatal/panic are never suppressed.
 */
void setLogQuiet(bool quiet);

/**
 * The process-wide stderr line lock. warn()/inform() format their
 * message first and take this only around the final fprintf, so
 * concurrent batch workers emit whole lines, never interleaved
 * characters. Shared with the EventBus progress printer (obs/) so
 * progress lines and log lines serialize against each other too.
 */
std::mutex &logStreamMutex();

/**
 * RAII job tag for log lines: while alive, warn()/inform() on THIS
 * thread prefix their message with "[label] ", so interleaved
 * per-worker output in a --jobs=N batch stays attributable. Nests by
 * saving/restoring the previous label.
 */
class ScopedLogJobLabel
{
  public:
    explicit ScopedLogJobLabel(const std::string &label);
    ~ScopedLogJobLabel();
    ScopedLogJobLabel(const ScopedLogJobLabel &) = delete;
    ScopedLogJobLabel &operator=(const ScopedLogJobLabel &) = delete;

  private:
    std::string saved;
};

/** printf-style formatting into a std::string. */
std::string vformat(const char *fmt, std::va_list ap);

/** Backend for dtexl_assert(); fmt may be null when no message was given. */
[[noreturn]] void panicAssert(const char *cond, const char *file, int line,
                              const char *fmt = nullptr, ...);

} // namespace dtexl

/**
 * Simulator-internal invariant check. Unlike assert(), stays on in release
 * builds; violation is a panic (a DTexL bug, not a user error — throws
 * SimError{Internal}). An optional printf-style message may follow the
 * condition.
 */
#define dtexl_assert(cond, ...)                                             \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::dtexl::panicAssert(#cond, __FILE__, __LINE__                  \
                                 __VA_OPT__(,) __VA_ARGS__);                \
        }                                                                   \
    } while (0)

#endif // DTEXL_COMMON_LOG_HH

/**
 * @file
 * Portable SIMD lane types for the raster/texture hot paths.
 *
 * Four backends, selected at build time from the compiler's target
 * flags: AVX2 (native 8-wide), SSE2 (native 4-wide, 8-wide as a pair),
 * NEON (4-wide, 8-wide as a pair) and a plain-array scalar fallback.
 * Every operation is defined so that each lane computes the *exact*
 * scalar expression the serial code computes — the whole point of the
 * layer is that vectorized kernels are bit-identical to their scalar
 * twins (tests/test_simd.cc), so:
 *
 *  - Comparisons are IEEE *ordered* compares (NaN lanes produce a
 *    false mask), matching `a < b` on scalars.
 *  - maxStd/minStd are compare+select with std::max/std::min's exact
 *    operand order — `std::max(a, b)` is `(a < b) ? b : a` — because
 *    the hardware maxps/minps instructions differ from std::max on
 *    NaN and signed-zero operands.
 *  - Int->float conversion uses the hardware cvt (round-to-nearest-
 *    even), the same rounding `static_cast<float>(int)` performs.
 *  - No fused multiply-add is ever emitted: lane mul/add are distinct
 *    operations, and the build pins -ffp-contract=off so the compiler
 *    cannot contract the scalar twins either.
 *
 * Masks are full-width lane masks (all-ones / all-zero) as produced by
 * the compare instructions; select() is a bitwise blend, exact for
 * such masks. moveMask() packs lane k's mask into bit k.
 *
 * Runtime dispatch is deliberately not hidden here: kernels keep their
 * scalar implementation and branch on GpuConfig::simdMode (`--simd=`),
 * so `--simd=scalar` exercises the original serial code, not a scalar
 * emulation of the lane code.
 */

#ifndef DTEXL_COMMON_SIMD_HH
#define DTEXL_COMMON_SIMD_HH

#include <cmath>
#include <cstdint>

#if defined(__AVX2__)
  #define DTEXL_SIMD_AVX2 1
  #define DTEXL_SIMD_BACKEND_NAME "avx2"
  #include <immintrin.h>
#elif defined(__SSE2__) || defined(_M_X64) || \
    (defined(_M_IX86_FP) && _M_IX86_FP >= 2)
  #define DTEXL_SIMD_SSE2 1
  #define DTEXL_SIMD_BACKEND_NAME "sse2"
  #include <emmintrin.h>
#elif defined(__ARM_NEON) || defined(__ARM_NEON__)
  #define DTEXL_SIMD_NEON 1
  #define DTEXL_SIMD_BACKEND_NAME "neon"
  #include <arm_neon.h>
#else
  #define DTEXL_SIMD_SCALAR 1
  #define DTEXL_SIMD_BACKEND_NAME "scalar"
#endif

namespace dtexl {

/** Name of the lane backend compiled into this build. */
inline const char *
simdBackendName()
{
    return DTEXL_SIMD_BACKEND_NAME;
}

// ---------------------------------------------------------------------
// 4-wide types
// ---------------------------------------------------------------------

#if defined(DTEXL_SIMD_AVX2) || defined(DTEXL_SIMD_SSE2)

struct F32x4 { __m128 v; };
struct M32x4 { __m128 v; };   ///< per-lane all-ones/all-zero mask
struct I32x4 { __m128i v; };
struct U32x4 { __m128i v; };

inline F32x4 splatF4(float x) { return {_mm_set1_ps(x)}; }
inline F32x4 loadF4(const float *p) { return {_mm_loadu_ps(p)}; }
inline void storeF4(float *p, F32x4 a) { _mm_storeu_ps(p, a.v); }

inline F32x4 operator+(F32x4 a, F32x4 b) { return {_mm_add_ps(a.v, b.v)}; }
inline F32x4 operator-(F32x4 a, F32x4 b) { return {_mm_sub_ps(a.v, b.v)}; }
inline F32x4 operator*(F32x4 a, F32x4 b) { return {_mm_mul_ps(a.v, b.v)}; }
inline F32x4 sqrtF4(F32x4 a) { return {_mm_sqrt_ps(a.v)}; }

inline M32x4 cmpGtF4(F32x4 a, F32x4 b) { return {_mm_cmpgt_ps(a.v, b.v)}; }
inline M32x4 cmpLtF4(F32x4 a, F32x4 b) { return {_mm_cmplt_ps(a.v, b.v)}; }
inline M32x4 cmpEqF4(F32x4 a, F32x4 b) { return {_mm_cmpeq_ps(a.v, b.v)}; }

inline M32x4 andM4(M32x4 a, M32x4 b) { return {_mm_and_ps(a.v, b.v)}; }
inline M32x4 orM4(M32x4 a, M32x4 b) { return {_mm_or_ps(a.v, b.v)}; }
inline M32x4
maskSplat4(bool b)
{
    return {_mm_castsi128_ps(_mm_set1_epi32(b ? -1 : 0))};
}
inline int moveMask4(M32x4 m) { return _mm_movemask_ps(m.v); }

/** Bitwise m ? a : b; exact for compare-produced masks. */
inline F32x4
selectF4(M32x4 m, F32x4 a, F32x4 b)
{
    return {_mm_or_ps(_mm_and_ps(m.v, a.v), _mm_andnot_ps(m.v, b.v))};
}

/** Lane-wise std::max: (a < b) ? b : a, exactly. */
inline F32x4
maxStdF4(F32x4 a, F32x4 b)
{
    return selectF4(cmpLtF4(a, b), b, a);
}

/** Lane-wise std::min: (b < a) ? b : a, exactly. */
inline F32x4
minStdF4(F32x4 a, F32x4 b)
{
    return selectF4(cmpLtF4(b, a), b, a);
}

inline I32x4 splatI4(std::int32_t x) { return {_mm_set1_epi32(x)}; }
inline I32x4
makeI4(std::int32_t a, std::int32_t b, std::int32_t c, std::int32_t d)
{
    return {_mm_setr_epi32(a, b, c, d)};
}
inline I32x4 operator+(I32x4 a, I32x4 b)
{
    return {_mm_add_epi32(a.v, b.v)};
}
inline M32x4
cmpLtI4(I32x4 a, I32x4 b)
{
    return {_mm_castsi128_ps(_mm_cmplt_epi32(a.v, b.v))};
}
/** Round-to-nearest-even int->float, same as static_cast<float>. */
inline F32x4 toF4(I32x4 a) { return {_mm_cvtepi32_ps(a.v)}; }

/**
 * In-place 4x4 transpose: lane j of output i is lane i of input j.
 * Pure data movement, so trivially exact; the SoA gather step of
 * batched kernels (QuadStream::lod4) uses it to turn four contiguous
 * per-quad loads into across-quad lanes without a scalar roundtrip.
 */
inline void
transposeF4(F32x4 &a, F32x4 &b, F32x4 &c, F32x4 &d)
{
    _MM_TRANSPOSE4_PS(a.v, b.v, c.v, d.v);
}

inline U32x4 splatU4(std::uint32_t x)
{
    return {_mm_set1_epi32(static_cast<std::int32_t>(x))};
}
inline U32x4
makeU4(std::uint32_t a, std::uint32_t b, std::uint32_t c, std::uint32_t d)
{
    return {_mm_setr_epi32(
        static_cast<std::int32_t>(a), static_cast<std::int32_t>(b),
        static_cast<std::int32_t>(c), static_cast<std::int32_t>(d))};
}
inline U32x4 operator+(U32x4 a, U32x4 b)
{
    return {_mm_add_epi32(a.v, b.v)};
}
inline U32x4 operator-(U32x4 a, U32x4 b)
{
    return {_mm_sub_epi32(a.v, b.v)};
}
inline U32x4 operator&(U32x4 a, U32x4 b)
{
    return {_mm_and_si128(a.v, b.v)};
}
inline U32x4 operator|(U32x4 a, U32x4 b)
{
    return {_mm_or_si128(a.v, b.v)};
}
inline U32x4 operator^(U32x4 a, U32x4 b)
{
    return {_mm_xor_si128(a.v, b.v)};
}
inline U32x4 shlU4(U32x4 a, int n) { return {_mm_slli_epi32(a.v, n)}; }
inline U32x4 shrU4(U32x4 a, int n) { return {_mm_srli_epi32(a.v, n)}; }
inline U32x4 cmpEqU4(U32x4 a, U32x4 b)
{
    return {_mm_cmpeq_epi32(a.v, b.v)};
}
inline U32x4
selectU4(U32x4 m, U32x4 a, U32x4 b)
{
    return {_mm_or_si128(_mm_and_si128(m.v, a.v),
                         _mm_andnot_si128(m.v, b.v))};
}
inline void
storeU4(std::uint32_t *p, U32x4 a)
{
    _mm_storeu_si128(reinterpret_cast<__m128i *>(p), a.v);
}
inline std::uint32_t
extractU4(U32x4 a, unsigned i)
{
    std::uint32_t tmp[4];
    storeU4(tmp, a);
    return tmp[i];
}

#elif defined(DTEXL_SIMD_NEON)

struct F32x4 { float32x4_t v; };
struct M32x4 { uint32x4_t v; };
struct I32x4 { int32x4_t v; };
struct U32x4 { uint32x4_t v; };

inline F32x4 splatF4(float x) { return {vdupq_n_f32(x)}; }
inline F32x4 loadF4(const float *p) { return {vld1q_f32(p)}; }
inline void storeF4(float *p, F32x4 a) { vst1q_f32(p, a.v); }

inline F32x4 operator+(F32x4 a, F32x4 b) { return {vaddq_f32(a.v, b.v)}; }
inline F32x4 operator-(F32x4 a, F32x4 b) { return {vsubq_f32(a.v, b.v)}; }
inline F32x4 operator*(F32x4 a, F32x4 b) { return {vmulq_f32(a.v, b.v)}; }
inline F32x4
sqrtF4(F32x4 a)
{
#if defined(__aarch64__)
    return {vsqrtq_f32(a.v)};
#else
    // ARMv7 has no IEEE vector sqrt; per-lane libm keeps bit-exactness.
    float t[4];
    vst1q_f32(t, a.v);
    for (int i = 0; i < 4; ++i)
        t[i] = std::sqrt(t[i]);
    return {vld1q_f32(t)};
#endif
}

inline M32x4 cmpGtF4(F32x4 a, F32x4 b) { return {vcgtq_f32(a.v, b.v)}; }
inline M32x4 cmpLtF4(F32x4 a, F32x4 b) { return {vcltq_f32(a.v, b.v)}; }
inline M32x4 cmpEqF4(F32x4 a, F32x4 b) { return {vceqq_f32(a.v, b.v)}; }

inline M32x4 andM4(M32x4 a, M32x4 b) { return {vandq_u32(a.v, b.v)}; }
inline M32x4 orM4(M32x4 a, M32x4 b) { return {vorrq_u32(a.v, b.v)}; }
inline M32x4 maskSplat4(bool b) { return {vdupq_n_u32(b ? ~0u : 0u)}; }
inline int
moveMask4(M32x4 m)
{
    return static_cast<int>((vgetq_lane_u32(m.v, 0) >> 31) |
                            ((vgetq_lane_u32(m.v, 1) >> 31) << 1) |
                            ((vgetq_lane_u32(m.v, 2) >> 31) << 2) |
                            ((vgetq_lane_u32(m.v, 3) >> 31) << 3));
}

inline F32x4
selectF4(M32x4 m, F32x4 a, F32x4 b)
{
    return {vbslq_f32(m.v, a.v, b.v)};
}
inline F32x4
maxStdF4(F32x4 a, F32x4 b)
{
    return selectF4(cmpLtF4(a, b), b, a);
}
inline F32x4
minStdF4(F32x4 a, F32x4 b)
{
    return selectF4(cmpLtF4(b, a), b, a);
}

inline void
transposeF4(F32x4 &a, F32x4 &b, F32x4 &c, F32x4 &d)
{
    const float32x4x2_t ab = vtrnq_f32(a.v, b.v);
    const float32x4x2_t cd = vtrnq_f32(c.v, d.v);
    a.v = vcombine_f32(vget_low_f32(ab.val[0]),
                       vget_low_f32(cd.val[0]));
    b.v = vcombine_f32(vget_low_f32(ab.val[1]),
                       vget_low_f32(cd.val[1]));
    c.v = vcombine_f32(vget_high_f32(ab.val[0]),
                       vget_high_f32(cd.val[0]));
    d.v = vcombine_f32(vget_high_f32(ab.val[1]),
                       vget_high_f32(cd.val[1]));
}

inline I32x4 splatI4(std::int32_t x) { return {vdupq_n_s32(x)}; }
inline I32x4
makeI4(std::int32_t a, std::int32_t b, std::int32_t c, std::int32_t d)
{
    const std::int32_t t[4] = {a, b, c, d};
    return {vld1q_s32(t)};
}
inline I32x4 operator+(I32x4 a, I32x4 b) { return {vaddq_s32(a.v, b.v)}; }
inline M32x4 cmpLtI4(I32x4 a, I32x4 b) { return {vcltq_s32(a.v, b.v)}; }
inline F32x4 toF4(I32x4 a) { return {vcvtq_f32_s32(a.v)}; }

inline U32x4 splatU4(std::uint32_t x) { return {vdupq_n_u32(x)}; }
inline U32x4
makeU4(std::uint32_t a, std::uint32_t b, std::uint32_t c, std::uint32_t d)
{
    const std::uint32_t t[4] = {a, b, c, d};
    return {vld1q_u32(t)};
}
inline U32x4 operator+(U32x4 a, U32x4 b) { return {vaddq_u32(a.v, b.v)}; }
inline U32x4 operator-(U32x4 a, U32x4 b) { return {vsubq_u32(a.v, b.v)}; }
inline U32x4 operator&(U32x4 a, U32x4 b) { return {vandq_u32(a.v, b.v)}; }
inline U32x4 operator|(U32x4 a, U32x4 b) { return {vorrq_u32(a.v, b.v)}; }
inline U32x4 operator^(U32x4 a, U32x4 b) { return {veorq_u32(a.v, b.v)}; }
inline U32x4
shlU4(U32x4 a, int n)
{
    return {vshlq_u32(a.v, vdupq_n_s32(n))};
}
inline U32x4
shrU4(U32x4 a, int n)
{
    return {vshlq_u32(a.v, vdupq_n_s32(-n))};
}
inline U32x4 cmpEqU4(U32x4 a, U32x4 b) { return {vceqq_u32(a.v, b.v)}; }
inline U32x4
selectU4(U32x4 m, U32x4 a, U32x4 b)
{
    return {vbslq_u32(m.v, a.v, b.v)};
}
inline void storeU4(std::uint32_t *p, U32x4 a) { vst1q_u32(p, a.v); }
inline std::uint32_t
extractU4(U32x4 a, unsigned i)
{
    std::uint32_t tmp[4];
    storeU4(tmp, a);
    return tmp[i];
}

#else // DTEXL_SIMD_SCALAR

struct F32x4 { float v[4]; };
struct M32x4 { std::uint32_t v[4]; };
struct I32x4 { std::int32_t v[4]; };
struct U32x4 { std::uint32_t v[4]; };

inline F32x4 splatF4(float x) { return {{x, x, x, x}}; }
inline F32x4 loadF4(const float *p) { return {{p[0], p[1], p[2], p[3]}}; }
inline void
storeF4(float *p, F32x4 a)
{
    for (int i = 0; i < 4; ++i)
        p[i] = a.v[i];
}

#define DTEXL_SCALAR_LANEOP4(name, T, expr)                             \
    inline T name(T a, T b)                                             \
    {                                                                   \
        T r;                                                            \
        for (int i = 0; i < 4; ++i)                                     \
            r.v[i] = (expr);                                            \
        return r;                                                       \
    }

DTEXL_SCALAR_LANEOP4(operator+, F32x4, a.v[i] + b.v[i])
DTEXL_SCALAR_LANEOP4(operator-, F32x4, a.v[i] - b.v[i])
DTEXL_SCALAR_LANEOP4(operator*, F32x4, a.v[i] * b.v[i])

inline F32x4
sqrtF4(F32x4 a)
{
    F32x4 r;
    for (int i = 0; i < 4; ++i)
        r.v[i] = std::sqrt(a.v[i]);
    return r;
}

inline M32x4
cmpGtF4(F32x4 a, F32x4 b)
{
    M32x4 r;
    for (int i = 0; i < 4; ++i)
        r.v[i] = a.v[i] > b.v[i] ? ~0u : 0u;
    return r;
}
inline M32x4
cmpLtF4(F32x4 a, F32x4 b)
{
    M32x4 r;
    for (int i = 0; i < 4; ++i)
        r.v[i] = a.v[i] < b.v[i] ? ~0u : 0u;
    return r;
}
inline M32x4
cmpEqF4(F32x4 a, F32x4 b)
{
    M32x4 r;
    for (int i = 0; i < 4; ++i)
        r.v[i] = a.v[i] == b.v[i] ? ~0u : 0u;
    return r;
}

DTEXL_SCALAR_LANEOP4(andM4, M32x4, a.v[i] & b.v[i])
DTEXL_SCALAR_LANEOP4(orM4, M32x4, a.v[i] | b.v[i])

inline M32x4
maskSplat4(bool b)
{
    const std::uint32_t m = b ? ~0u : 0u;
    return {{m, m, m, m}};
}
inline int
moveMask4(M32x4 m)
{
    int r = 0;
    for (int i = 0; i < 4; ++i)
        r |= static_cast<int>(m.v[i] >> 31) << i;
    return r;
}

inline F32x4
selectF4(M32x4 m, F32x4 a, F32x4 b)
{
    F32x4 r;
    for (int i = 0; i < 4; ++i)
        r.v[i] = m.v[i] ? a.v[i] : b.v[i];
    return r;
}
inline F32x4
maxStdF4(F32x4 a, F32x4 b)
{
    return selectF4(cmpLtF4(a, b), b, a);
}
inline F32x4
minStdF4(F32x4 a, F32x4 b)
{
    return selectF4(cmpLtF4(b, a), b, a);
}

inline void
transposeF4(F32x4 &a, F32x4 &b, F32x4 &c, F32x4 &d)
{
    F32x4 *rows[4] = {&a, &b, &c, &d};
    for (int i = 0; i < 4; ++i)
        for (int j = i + 1; j < 4; ++j) {
            const float t = rows[i]->v[j];
            rows[i]->v[j] = rows[j]->v[i];
            rows[j]->v[i] = t;
        }
}

inline I32x4 splatI4(std::int32_t x) { return {{x, x, x, x}}; }
inline I32x4
makeI4(std::int32_t a, std::int32_t b, std::int32_t c, std::int32_t d)
{
    return {{a, b, c, d}};
}
DTEXL_SCALAR_LANEOP4(operator+, I32x4, a.v[i] + b.v[i])
inline M32x4
cmpLtI4(I32x4 a, I32x4 b)
{
    M32x4 r;
    for (int i = 0; i < 4; ++i)
        r.v[i] = a.v[i] < b.v[i] ? ~0u : 0u;
    return r;
}
inline F32x4
toF4(I32x4 a)
{
    F32x4 r;
    for (int i = 0; i < 4; ++i)
        r.v[i] = static_cast<float>(a.v[i]);
    return r;
}

inline U32x4 splatU4(std::uint32_t x) { return {{x, x, x, x}}; }
inline U32x4
makeU4(std::uint32_t a, std::uint32_t b, std::uint32_t c, std::uint32_t d)
{
    return {{a, b, c, d}};
}
DTEXL_SCALAR_LANEOP4(operator+, U32x4, a.v[i] + b.v[i])
DTEXL_SCALAR_LANEOP4(operator-, U32x4, a.v[i] - b.v[i])
DTEXL_SCALAR_LANEOP4(operator&, U32x4, a.v[i] & b.v[i])
DTEXL_SCALAR_LANEOP4(operator|, U32x4, a.v[i] | b.v[i])
DTEXL_SCALAR_LANEOP4(operator^, U32x4, a.v[i] ^ b.v[i])
inline U32x4
shlU4(U32x4 a, int n)
{
    U32x4 r;
    for (int i = 0; i < 4; ++i)
        r.v[i] = a.v[i] << n;
    return r;
}
inline U32x4
shrU4(U32x4 a, int n)
{
    U32x4 r;
    for (int i = 0; i < 4; ++i)
        r.v[i] = a.v[i] >> n;
    return r;
}
inline U32x4
cmpEqU4(U32x4 a, U32x4 b)
{
    U32x4 r;
    for (int i = 0; i < 4; ++i)
        r.v[i] = a.v[i] == b.v[i] ? ~0u : 0u;
    return r;
}
inline U32x4
selectU4(U32x4 m, U32x4 a, U32x4 b)
{
    U32x4 r;
    for (int i = 0; i < 4; ++i)
        r.v[i] = m.v[i] ? a.v[i] : b.v[i];
    return r;
}
inline void
storeU4(std::uint32_t *p, U32x4 a)
{
    for (int i = 0; i < 4; ++i)
        p[i] = a.v[i];
}
inline std::uint32_t extractU4(U32x4 a, unsigned i) { return a.v[i]; }

#undef DTEXL_SCALAR_LANEOP4

#endif

// ---------------------------------------------------------------------
// 64-bit integer lanes (Morton codes, striped FNV)
// ---------------------------------------------------------------------

#if defined(DTEXL_SIMD_AVX2)

struct U64x4 { __m256i v; };

inline U64x4
splatU64x4(std::uint64_t x)
{
    return {_mm256_set1_epi64x(static_cast<long long>(x))};
}
inline U64x4
makeU64x4(std::uint64_t a, std::uint64_t b, std::uint64_t c,
          std::uint64_t d)
{
    return {_mm256_setr_epi64x(
        static_cast<long long>(a), static_cast<long long>(b),
        static_cast<long long>(c), static_cast<long long>(d))};
}
inline U64x4 operator+(U64x4 a, U64x4 b)
{
    return {_mm256_add_epi64(a.v, b.v)};
}
inline U64x4 operator&(U64x4 a, U64x4 b)
{
    return {_mm256_and_si256(a.v, b.v)};
}
inline U64x4 operator|(U64x4 a, U64x4 b)
{
    return {_mm256_or_si256(a.v, b.v)};
}
inline U64x4 operator^(U64x4 a, U64x4 b)
{
    return {_mm256_xor_si256(a.v, b.v)};
}
inline U64x4 shlU64x4(U64x4 a, int n)
{
    return {_mm256_slli_epi64(a.v, n)};
}
inline U64x4 shrU64x4(U64x4 a, int n)
{
    return {_mm256_srli_epi64(a.v, n)};
}
inline void
storeU64x4(std::uint64_t *p, U64x4 a)
{
    _mm256_storeu_si256(reinterpret_cast<__m256i *>(p), a.v);
}
inline U64x4
loadU64x4(const std::uint64_t *p)
{
    return {_mm256_loadu_si256(reinterpret_cast<const __m256i *>(p))};
}

#elif defined(DTEXL_SIMD_SSE2)

struct U64x4 { __m128i lo, hi; };

inline U64x4
splatU64x4(std::uint64_t x)
{
    const __m128i v = _mm_set1_epi64x(static_cast<long long>(x));
    return {v, v};
}
inline U64x4
makeU64x4(std::uint64_t a, std::uint64_t b, std::uint64_t c,
          std::uint64_t d)
{
    return {_mm_set_epi64x(static_cast<long long>(b),
                           static_cast<long long>(a)),
            _mm_set_epi64x(static_cast<long long>(d),
                           static_cast<long long>(c))};
}
inline U64x4 operator+(U64x4 a, U64x4 b)
{
    return {_mm_add_epi64(a.lo, b.lo), _mm_add_epi64(a.hi, b.hi)};
}
inline U64x4 operator&(U64x4 a, U64x4 b)
{
    return {_mm_and_si128(a.lo, b.lo), _mm_and_si128(a.hi, b.hi)};
}
inline U64x4 operator|(U64x4 a, U64x4 b)
{
    return {_mm_or_si128(a.lo, b.lo), _mm_or_si128(a.hi, b.hi)};
}
inline U64x4 operator^(U64x4 a, U64x4 b)
{
    return {_mm_xor_si128(a.lo, b.lo), _mm_xor_si128(a.hi, b.hi)};
}
inline U64x4 shlU64x4(U64x4 a, int n)
{
    return {_mm_slli_epi64(a.lo, n), _mm_slli_epi64(a.hi, n)};
}
inline U64x4 shrU64x4(U64x4 a, int n)
{
    return {_mm_srli_epi64(a.lo, n), _mm_srli_epi64(a.hi, n)};
}
inline void
storeU64x4(std::uint64_t *p, U64x4 a)
{
    _mm_storeu_si128(reinterpret_cast<__m128i *>(p), a.lo);
    _mm_storeu_si128(reinterpret_cast<__m128i *>(p + 2), a.hi);
}
inline U64x4
loadU64x4(const std::uint64_t *p)
{
    return {_mm_loadu_si128(reinterpret_cast<const __m128i *>(p)),
            _mm_loadu_si128(reinterpret_cast<const __m128i *>(p + 2))};
}

#elif defined(DTEXL_SIMD_NEON)

struct U64x4 { uint64x2_t lo, hi; };

inline U64x4
splatU64x4(std::uint64_t x)
{
    const uint64x2_t v = vdupq_n_u64(x);
    return {v, v};
}
inline U64x4
makeU64x4(std::uint64_t a, std::uint64_t b, std::uint64_t c,
          std::uint64_t d)
{
    const std::uint64_t t0[2] = {a, b};
    const std::uint64_t t1[2] = {c, d};
    return {vld1q_u64(t0), vld1q_u64(t1)};
}
inline U64x4 operator+(U64x4 a, U64x4 b)
{
    return {vaddq_u64(a.lo, b.lo), vaddq_u64(a.hi, b.hi)};
}
inline U64x4 operator&(U64x4 a, U64x4 b)
{
    return {vandq_u64(a.lo, b.lo), vandq_u64(a.hi, b.hi)};
}
inline U64x4 operator|(U64x4 a, U64x4 b)
{
    return {vorrq_u64(a.lo, b.lo), vorrq_u64(a.hi, b.hi)};
}
inline U64x4 operator^(U64x4 a, U64x4 b)
{
    return {veorq_u64(a.lo, b.lo), veorq_u64(a.hi, b.hi)};
}
inline U64x4 shlU64x4(U64x4 a, int n)
{
    const int64x2_t s = vdupq_n_s64(n);
    return {vshlq_u64(a.lo, s), vshlq_u64(a.hi, s)};
}
inline U64x4 shrU64x4(U64x4 a, int n)
{
    const int64x2_t s = vdupq_n_s64(-n);
    return {vshlq_u64(a.lo, s), vshlq_u64(a.hi, s)};
}
inline void
storeU64x4(std::uint64_t *p, U64x4 a)
{
    vst1q_u64(p, a.lo);
    vst1q_u64(p + 2, a.hi);
}
inline U64x4
loadU64x4(const std::uint64_t *p)
{
    return {vld1q_u64(p), vld1q_u64(p + 2)};
}

#else // DTEXL_SIMD_SCALAR

struct U64x4 { std::uint64_t v[4]; };

inline U64x4 splatU64x4(std::uint64_t x) { return {{x, x, x, x}}; }
inline U64x4
makeU64x4(std::uint64_t a, std::uint64_t b, std::uint64_t c,
          std::uint64_t d)
{
    return {{a, b, c, d}};
}
#define DTEXL_SCALAR_LANEOP64(name, expr)                               \
    inline U64x4 name(U64x4 a, U64x4 b)                                 \
    {                                                                   \
        U64x4 r;                                                        \
        for (int i = 0; i < 4; ++i)                                     \
            r.v[i] = (expr);                                            \
        return r;                                                       \
    }
DTEXL_SCALAR_LANEOP64(operator+, a.v[i] + b.v[i])
DTEXL_SCALAR_LANEOP64(operator&, a.v[i] & b.v[i])
DTEXL_SCALAR_LANEOP64(operator|, a.v[i] | b.v[i])
DTEXL_SCALAR_LANEOP64(operator^, a.v[i] ^ b.v[i])
#undef DTEXL_SCALAR_LANEOP64
inline U64x4
shlU64x4(U64x4 a, int n)
{
    U64x4 r;
    for (int i = 0; i < 4; ++i)
        r.v[i] = a.v[i] << n;
    return r;
}
inline U64x4
shrU64x4(U64x4 a, int n)
{
    U64x4 r;
    for (int i = 0; i < 4; ++i)
        r.v[i] = a.v[i] >> n;
    return r;
}
inline void
storeU64x4(std::uint64_t *p, U64x4 a)
{
    for (int i = 0; i < 4; ++i)
        p[i] = a.v[i];
}
inline U64x4
loadU64x4(const std::uint64_t *p)
{
    return {{p[0], p[1], p[2], p[3]}};
}

#endif

inline std::uint64_t
extractU64x4(U64x4 a, unsigned i)
{
    std::uint64_t tmp[4];
    storeU64x4(tmp, a);
    return tmp[i];
}

/**
 * Per-lane 64-bit multiply. Integer multiplication is exact mod 2^64,
 * so every formulation below is bit-identical to four scalar
 * multiplies. AVX2 builds it from 32x32->64 partial products (no
 * pre-AVX-512 instruction multiplies 64-bit lanes directly); the other
 * backends round-trip through memory and multiply per lane. Either
 * way this is an expensive op — consumers that can use a shift should
 * (power-of-two multiplier, see texelAddr4 in texture/sampler.cc),
 * and latency-bound recurrences are faster as unrolled scalar chains
 * (see fnv1a64Striped).
 */
#if defined(DTEXL_SIMD_AVX2)
inline U64x4
mulU64x4(U64x4 a, U64x4 b)
{
    // a*b mod 2^64 = lo(a)*lo(b) + ((lo(a)*hi(b) + hi(a)*lo(b)) << 32)
    const __m256i a_hi = _mm256_srli_epi64(a.v, 32);
    const __m256i b_hi = _mm256_srli_epi64(b.v, 32);
    const __m256i ll = _mm256_mul_epu32(a.v, b.v);
    const __m256i lh = _mm256_mul_epu32(a.v, b_hi);
    const __m256i hl = _mm256_mul_epu32(a_hi, b.v);
    const __m256i cross =
        _mm256_slli_epi64(_mm256_add_epi64(lh, hl), 32);
    return {_mm256_add_epi64(ll, cross)};
}
#else
inline U64x4
mulU64x4(U64x4 a, U64x4 b)
{
    std::uint64_t ta[4], tb[4];
    storeU64x4(ta, a);
    storeU64x4(tb, b);
    for (int i = 0; i < 4; ++i)
        ta[i] *= tb[i];
    return loadU64x4(ta);
}
#endif

// ---------------------------------------------------------------------
// 8-wide types: native on AVX2, a 4-wide pair elsewhere. Lane k of the
// pair form is lane k%4 of half k/4; moveMask8 packs lane k into bit k
// either way.
// ---------------------------------------------------------------------

#if defined(DTEXL_SIMD_AVX2)

struct F32x8 { __m256 v; };
struct M32x8 { __m256 v; };
struct I32x8 { __m256i v; };

inline F32x8 splatF8(float x) { return {_mm256_set1_ps(x)}; }
inline void storeF8(float *p, F32x8 a) { _mm256_storeu_ps(p, a.v); }

inline F32x8 operator+(F32x8 a, F32x8 b)
{
    return {_mm256_add_ps(a.v, b.v)};
}
inline F32x8 operator-(F32x8 a, F32x8 b)
{
    return {_mm256_sub_ps(a.v, b.v)};
}
inline F32x8 operator*(F32x8 a, F32x8 b)
{
    return {_mm256_mul_ps(a.v, b.v)};
}

inline M32x8 cmpGtF8(F32x8 a, F32x8 b)
{
    return {_mm256_cmp_ps(a.v, b.v, _CMP_GT_OQ)};
}
inline M32x8 cmpEqF8(F32x8 a, F32x8 b)
{
    return {_mm256_cmp_ps(a.v, b.v, _CMP_EQ_OQ)};
}
inline M32x8 andM8(M32x8 a, M32x8 b) { return {_mm256_and_ps(a.v, b.v)}; }
inline M32x8 orM8(M32x8 a, M32x8 b) { return {_mm256_or_ps(a.v, b.v)}; }
inline M32x8
maskSplat8(bool b)
{
    return {_mm256_castsi256_ps(_mm256_set1_epi32(b ? -1 : 0))};
}
inline int moveMask8(M32x8 m) { return _mm256_movemask_ps(m.v); }

inline I32x8 splatI8(std::int32_t x) { return {_mm256_set1_epi32(x)}; }
inline I32x8
makeI8(std::int32_t a, std::int32_t b, std::int32_t c, std::int32_t d,
       std::int32_t e, std::int32_t f, std::int32_t g, std::int32_t h)
{
    return {_mm256_setr_epi32(a, b, c, d, e, f, g, h)};
}
inline I32x8 operator+(I32x8 a, I32x8 b)
{
    return {_mm256_add_epi32(a.v, b.v)};
}
inline M32x8
cmpLtI8(I32x8 a, I32x8 b)
{
    return {_mm256_castsi256_ps(_mm256_cmpgt_epi32(b.v, a.v))};
}
inline F32x8 toF8(I32x8 a) { return {_mm256_cvtepi32_ps(a.v)}; }

#else

struct F32x8 { F32x4 lo, hi; };
struct M32x8 { M32x4 lo, hi; };
struct I32x8 { I32x4 lo, hi; };

inline F32x8 splatF8(float x) { return {splatF4(x), splatF4(x)}; }
inline void
storeF8(float *p, F32x8 a)
{
    storeF4(p, a.lo);
    storeF4(p + 4, a.hi);
}

inline F32x8 operator+(F32x8 a, F32x8 b)
{
    return {a.lo + b.lo, a.hi + b.hi};
}
inline F32x8 operator-(F32x8 a, F32x8 b)
{
    return {a.lo - b.lo, a.hi - b.hi};
}
inline F32x8 operator*(F32x8 a, F32x8 b)
{
    return {a.lo * b.lo, a.hi * b.hi};
}

inline M32x8 cmpGtF8(F32x8 a, F32x8 b)
{
    return {cmpGtF4(a.lo, b.lo), cmpGtF4(a.hi, b.hi)};
}
inline M32x8 cmpEqF8(F32x8 a, F32x8 b)
{
    return {cmpEqF4(a.lo, b.lo), cmpEqF4(a.hi, b.hi)};
}
inline M32x8 andM8(M32x8 a, M32x8 b)
{
    return {andM4(a.lo, b.lo), andM4(a.hi, b.hi)};
}
inline M32x8 orM8(M32x8 a, M32x8 b)
{
    return {orM4(a.lo, b.lo), orM4(a.hi, b.hi)};
}
inline M32x8 maskSplat8(bool b) { return {maskSplat4(b), maskSplat4(b)}; }
inline int
moveMask8(M32x8 m)
{
    return moveMask4(m.lo) | (moveMask4(m.hi) << 4);
}

inline I32x8 splatI8(std::int32_t x) { return {splatI4(x), splatI4(x)}; }
inline I32x8
makeI8(std::int32_t a, std::int32_t b, std::int32_t c, std::int32_t d,
       std::int32_t e, std::int32_t f, std::int32_t g, std::int32_t h)
{
    return {makeI4(a, b, c, d), makeI4(e, f, g, h)};
}
inline I32x8 operator+(I32x8 a, I32x8 b)
{
    return {a.lo + b.lo, a.hi + b.hi};
}
inline M32x8
cmpLtI8(I32x8 a, I32x8 b)
{
    return {cmpLtI4(a.lo, b.lo), cmpLtI4(a.hi, b.hi)};
}
inline F32x8 toF8(I32x8 a) { return {toF4(a.lo), toF4(a.hi)}; }

#endif

} // namespace dtexl

#endif // DTEXL_COMMON_SIMD_HH

/**
 * @file
 * Deterministic pseudo-random number generation for workload synthesis.
 *
 * Every benchmark scene is generated from a fixed seed, so two simulator
 * runs over the same benchmark see bit-identical input streams; this is
 * what makes scheduler comparisons (FG vs CG vs DTexL) apples-to-apples.
 */

#ifndef DTEXL_COMMON_RNG_HH
#define DTEXL_COMMON_RNG_HH

#include <cstdint>

namespace dtexl {

/**
 * SplitMix64 generator: tiny state, excellent statistical quality for
 * simulation workload synthesis, and trivially reproducible.
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed) : state(seed) {}

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

    /** Uniform integer in [0, bound); bound must be > 0. */
    std::uint64_t
    nextBounded(std::uint64_t bound)
    {
        // Multiply-shift bounding; bias is negligible for 64-bit state.
        unsigned __int128 m =
            static_cast<unsigned __int128>(next()) * bound;
        return static_cast<std::uint64_t>(m >> 64);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t
    nextRange(std::int64_t lo, std::int64_t hi)
    {
        return lo + static_cast<std::int64_t>(
            nextBounded(static_cast<std::uint64_t>(hi - lo + 1)));
    }

    /** Uniform double in [0, 1). */
    double
    nextDouble()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Uniform double in [lo, hi). */
    double
    nextDouble(double lo, double hi)
    {
        return lo + nextDouble() * (hi - lo);
    }

    /** Bernoulli draw with probability p of returning true. */
    bool
    nextBool(double p)
    {
        return nextDouble() < p;
    }

    /**
     * Geometric-ish heavy-tailed positive integer with the given mean,
     * used for overdraw layer counts and shader lengths.
     */
    std::uint32_t
    nextGeometric(double mean)
    {
        if (mean <= 1.0)
            return 1;
        double p = 1.0 / mean;
        std::uint32_t n = 1;
        while (n < 64 && !nextBool(p))
            ++n;
        return n;
    }

  private:
    std::uint64_t state;
};

} // namespace dtexl

#endif // DTEXL_COMMON_RNG_HH

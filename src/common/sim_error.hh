/**
 * @file
 * Structured, recoverable error model for the simulator.
 *
 * The taxonomy (see DESIGN.md "Error handling & fault tolerance"):
 *  - ErrorKind::UserInput  — malformed scene files, CLI flags, or
 *    key=value options: the user can fix the input and retry.
 *  - ErrorKind::Config     — a GpuConfig that fails validate(): the
 *    message names the knob and its legal range.
 *  - ErrorKind::Io         — a file could not be opened or written.
 *  - ErrorKind::Watchdog   — the forward-progress watchdog detected a
 *    hung simulation; the error carries a pipeline-state dump.
 *  - ErrorKind::Internal   — a simulator invariant was violated
 *    (panic()/dtexl_assert): a DTexL bug, never a user error.
 *  - ErrorKind::Cancelled  — the job was stopped on purpose at a frame
 *    boundary: a cancel/interrupt token (common/cancel.hh), a drain
 *    signal (common/signals.hh), or a per-job deadline. Not a defect;
 *    exits with the conventional interrupted-process code 130.
 *
 * All kinds are thrown as SimError so the batch driver can isolate a
 * failing job (core/engine.hh) and the CLIs can exit with a distinct,
 * scriptable code per kind. Nothing in the library calls exit() or
 * abort() on an error path anymore.
 */

#ifndef DTEXL_COMMON_SIM_ERROR_HH
#define DTEXL_COMMON_SIM_ERROR_HH

#include <functional>
#include <stdexcept>
#include <string>

namespace dtexl {

/** Failure classification; drives exit codes and batch reporting. */
enum class ErrorKind
{
    UserInput,
    Config,
    Io,
    Watchdog,
    Internal,
    Cancelled,
};

/** Human-readable kind name ("user-input", "watchdog", ...). */
const char *toString(ErrorKind kind);

// Process exit codes shared by every CLI (documented in DESIGN.md).
inline constexpr int kExitSuccess = 0;
/** Bad scene/flags/config — the user can fix the input. */
inline constexpr int kExitUserError = 2;
/** Simulator invariant violated (panic/dtexl_assert). */
inline constexpr int kExitInternal = 3;
/** A batch finished but some (not all) jobs failed. */
inline constexpr int kExitPartialBatch = 4;
/** The forward-progress watchdog fired (crash report written). */
inline constexpr int kExitWatchdog = 5;
/** Stopped by signal/cancel/deadline (128 + SIGINT, the shell idiom). */
inline constexpr int kExitInterrupted = 130;

/** Exit code a process should use for a failure of @p kind. */
int exitCodeFor(ErrorKind kind);

/**
 * The simulator's one exception type. what() is the primary message;
 * context() optionally pins the error to a source ("scene.dscene:12:7",
 * "option warps"); dump() optionally carries a multi-line
 * pipeline-state dump (watchdog failures) destined for a crash report.
 */
class SimError : public std::runtime_error
{
  public:
    SimError(ErrorKind kind, std::string message,
             std::string context = "", std::string dump = "");

    ErrorKind kind() const { return kind_; }
    const std::string &context() const { return context_; }
    const std::string &dump() const { return dump_; }

    /** "kind: message (context)" single-line form for summaries. */
    std::string describe() const;

  private:
    ErrorKind kind_;
    std::string context_;
    std::string dump_;
};

/** Throw a SimError with a printf-formatted message. */
[[noreturn]] void throwUserError(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));
[[noreturn]] void throwConfigError(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));
[[noreturn]] void throwIoError(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

// ---- Failure-path artifact flushing -------------------------------
//
// Exporters (TraceWriter, TelemetryExport) buffer in memory and write
// on an explicit flush, with an atexit backstop. Exceptional unwinds
// must not lose partial artifacts, so exporters register a hook when
// armed and every failure path (runJob catch, runGuardedMain catch)
// calls flushFailureArtifacts().

/** Register a hook run by flushFailureArtifacts(); never unregistered. */
void registerFailureFlush(std::function<void()> hook);

/** Run all registered hooks (idempotent, thread-safe, never throws). */
void flushFailureArtifacts() noexcept;

// ---- Crash reports ------------------------------------------------

/** Directory crash reports are written into ("." by default). */
void setCrashReportDir(const std::string &dir);
const std::string &crashReportDir();

/**
 * Write a crash report for @p err (kind, message, context, dump) named
 * after @p label into crashReportDir(). Returns the file path, or ""
 * when the file could not be written. Never throws.
 */
std::string writeCrashReport(const std::string &label,
                             const SimError &err) noexcept;

/**
 * Canonical CLI wrapper: runs @p body, catching SimError (and any
 * std::exception) at the top level. On failure it flushes the
 * exporters, writes a crash report when the error carries a dump,
 * prints a one-line diagnosis to stderr and returns the kind's exit
 * code. Every driver binary's main() is one line through here.
 */
int runGuardedMain(const std::function<int()> &body);

} // namespace dtexl

#endif // DTEXL_COMMON_SIM_ERROR_HH

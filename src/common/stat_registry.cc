#include "common/stat_registry.hh"

#include <sstream>

namespace dtexl {

StatSet &
StatRegistry::node(const std::string &path)
{
    std::lock_guard<std::mutex> lock(mu);
    auto it = sets.find(path);
    if (it == sets.end())
        it = sets.emplace(path, StatSet(path)).first;
    return it->second;
}

void
StatRegistry::inc(const std::string &path, const std::string &key,
                  std::uint64_t delta)
{
    node(path).inc(key, delta);
}

const StatSet *
StatRegistry::find(const std::string &path) const
{
    std::lock_guard<std::mutex> lock(mu);
    const auto it = sets.find(path);
    return it == sets.end() ? nullptr : &it->second;
}

std::vector<std::string>
StatRegistry::paths() const
{
    std::lock_guard<std::mutex> lock(mu);
    std::vector<std::string> out;
    out.reserve(sets.size());
    for (const auto &[path, set] : sets)
        out.push_back(path);
    return out;
}

std::uint64_t
StatRegistry::total(const std::string &path,
                    const std::string &key) const
{
    std::lock_guard<std::mutex> lock(mu);
    std::uint64_t sum = 0;
    const std::string prefix = path + ".";
    // Full scan rather than a lower_bound range: a sibling like
    // "engine-b" sorts between "engine" and "engine.x" ('-' < '.'), so
    // the subtree is not contiguous. This is a cold reporting helper.
    for (const auto &[p, set] : sets) {
        if (p == path || p.compare(0, prefix.size(), prefix) == 0)
            sum += set.get(key);
    }
    return sum;
}

std::string
StatRegistry::dump() const
{
    std::lock_guard<std::mutex> lock(mu);
    std::ostringstream os;
    os << name_ << "\n";
    // Paths iterate in sorted order, so shared prefixes are adjacent:
    // print each component the first time it differs from the
    // previous path, then the node's counters under the leaf.
    std::vector<std::string> prev;
    for (const auto &[path, set] : sets) {
        std::vector<std::string> parts;
        std::size_t pos = 0;
        while (pos <= path.size()) {
            const std::size_t dot = path.find('.', pos);
            const std::size_t end =
                dot == std::string::npos ? path.size() : dot;
            parts.push_back(path.substr(pos, end - pos));
            if (dot == std::string::npos)
                break;
            pos = dot + 1;
        }
        std::size_t common = 0;
        while (common < parts.size() && common < prev.size() &&
               parts[common] == prev[common]) {
            ++common;
        }
        for (std::size_t d = common; d < parts.size(); ++d)
            os << std::string((d + 1) * 2, ' ') << parts[d] << "\n";
        const std::string indent((parts.size() + 1) * 2, ' ');
        for (const auto &[key, value] : set.counters())
            os << indent << key << " = " << value << "\n";
        prev = std::move(parts);
    }
    return os.str();
}

void
StatRegistry::clear()
{
    std::lock_guard<std::mutex> lock(mu);
    for (auto &[path, set] : sets)
        set.clear();
}

} // namespace dtexl

#include "obs/run_event.hh"

#include <cstdio>

#include "common/trace.hh"

namespace dtexl {

const char *
toString(EventKind kind)
{
    switch (kind) {
    case EventKind::RunStart:      return "run_start";
    case EventKind::JobSubmit:     return "job_submit";
    case EventKind::JobStart:      return "job_start";
    case EventKind::JobFrame:      return "job_frame";
    case EventKind::JobCheckpoint: return "job_checkpoint";
    case EventKind::JobCacheHit:   return "job_cache_hit";
    case EventKind::JobCacheMiss:  return "job_cache_miss";
    case EventKind::JobCacheStore: return "job_cache_store";
    case EventKind::JobResume:     return "job_resume";
    case EventKind::JobComplete:   return "job_complete";
    case EventKind::JobError:      return "job_error";
    case EventKind::Watchdog:      return "watchdog";
    case EventKind::RunEnd:        return "run_end";
    }
    return "unknown";
}

RunEvent &
RunEvent::u64(const char *key, std::uint64_t value)
{
    fields.push_back(
        {key, std::to_string(static_cast<unsigned long long>(value)),
         value});
    return *this;
}

RunEvent &
RunEvent::f64(const char *key, double value)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.3f", value);
    fields.push_back({key, buf, 0});
    return *this;
}

RunEvent &
RunEvent::str(const char *key, const std::string &value)
{
    fields.push_back({key, "\"" + jsonEscape(value) + "\"", 0});
    return *this;
}

std::uint64_t
RunEvent::uval(const char *key) const
{
    for (const Field &f : fields)
        if (f.key == key)
            return f.uval;
    return 0;
}

} // namespace dtexl

#include "obs/event_bus.hh"

#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <unistd.h>

#include "common/channel.hh"
#include "common/log.hh"
#include "common/sim_error.hh"
#include "common/trace.hh"

namespace dtexl {

namespace {

/** Bounded queue depth; producers block (briefly) when 4k events lag. */
constexpr std::size_t kBusCapacity = 4096;

/** Minimum interval between live progress prints. */
constexpr std::chrono::milliseconds kProgressInterval{200};

std::uint64_t
wallMillisNow()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count());
}

/**
 * Live progress state, owned by the writer thread (single writer, no
 * locking) and fed from the event stream itself: job_submit announces
 * totals, job_frame drives the rate/ETA, job_complete/job_error close
 * jobs out.
 */
struct ProgressMeter
{
    std::uint64_t jobsTotal = 0;
    std::uint64_t jobsDone = 0;
    std::uint64_t jobsFailed = 0;
    std::uint64_t framesTotal = 0;
    std::uint64_t framesDone = 0;
    std::uint64_t cacheHits = 0;
    std::chrono::steady_clock::time_point lastPrint{};
    bool printed = false;

    void
    observe(const RunEvent &ev)
    {
        switch (ev.kind) {
        case EventKind::JobSubmit:
            ++jobsTotal;
            framesTotal += ev.uval("frames");
            break;
        case EventKind::JobFrame:
            ++framesDone;
            break;
        case EventKind::JobCacheHit:
            ++cacheHits;
            break;
        case EventKind::JobComplete:
            ++jobsDone;
            // Cache-served jobs render no frames, so their frame
            // count arrives in one step here.
            if (ev.uval("cached"))
                framesDone += ev.uval("frames");
            break;
        case EventKind::JobError:
            ++jobsDone;
            ++jobsFailed;
            break;
        default:
            break;
        }
    }

    void
    maybePrint(std::chrono::steady_clock::time_point t0, bool force)
    {
        const auto now = std::chrono::steady_clock::now();
        if (!force && now - lastPrint < kProgressInterval)
            return;
        if (jobsTotal == 0 && framesDone == 0)
            return;
        lastPrint = now;
        printed = true;

        const double elapsed =
            std::chrono::duration<double>(now - t0).count();
        const double rate =
            elapsed > 0.0 ? static_cast<double>(framesDone) / elapsed
                          : 0.0;
        char eta[32];
        if (rate > 0.0 && framesTotal > framesDone) {
            std::snprintf(eta, sizeof(eta), "ETA %.1fs",
                          static_cast<double>(framesTotal - framesDone) /
                              rate);
        } else {
            std::snprintf(eta, sizeof(eta), "ETA --");
        }

        std::string extras;
        if (cacheHits > 0)
            extras += ", " + std::to_string(cacheHits) +
                      " cache hit(s)";
        if (jobsFailed > 0)
            extras += ", " + std::to_string(jobsFailed) + " failed";

        // Share the log stream lock so a progress line never
        // interleaves with a concurrent warn()/inform().
        std::lock_guard<std::mutex> lk(logStreamMutex());
        std::fprintf(stderr,
                     "progress: %llu/%llu job(s), %llu/%llu frame(s), "
                     "%.1f frames/s, %s%s\n",
                     static_cast<unsigned long long>(jobsDone),
                     static_cast<unsigned long long>(jobsTotal),
                     static_cast<unsigned long long>(framesDone),
                     static_cast<unsigned long long>(framesTotal),
                     rate, eta, extras.c_str());
        std::fflush(stderr);
    }
};

} // namespace

struct EventBus::Impl
{
    using Tap =
        std::function<void(std::uint64_t, const std::string &)>;

    std::mutex mu;
    std::condition_variable drainedCv;
    std::unique_ptr<Channel<RunEvent>> chan;
    std::thread writer;
    std::shared_ptr<const Tap> tap;
    FILE *out = nullptr;
    std::string ledgerPath;
    bool progress = false;
    bool running = false;
    bool hooked = false;
    bool runStartDone = false;
    bool runEndQueued = false;
    std::string invocation;
    std::uint64_t emitted = 0;
    std::uint64_t written = 0;
    std::chrono::steady_clock::time_point t0{};

    // Writer-thread state: the single writer assigns seq and owns the
    // meter, so neither needs synchronization.
    std::uint64_t seq = 0;
    ProgressMeter meter;

    /** Start the writer thread; caller holds mu. */
    void
    startLocked()
    {
        if (running)
            return;
        chan = std::make_unique<Channel<RunEvent>>(kBusCapacity);
        t0 = std::chrono::steady_clock::now();
        seq = 0;
        written = 0;
        emitted = 0;
        meter = ProgressMeter{};
        running = true;
        armedFlag.store(true, std::memory_order_relaxed);
        writer = std::thread([this] { writerLoop(); });
        if (!hooked) {
            hooked = true;
            std::atexit([] { EventBus::global().finish(); });
            // A failing job's catch block emits job_error and then
            // flushes: the drain barrier guarantees the ledger holds
            // the error before the crash report is read.
            registerFailureFlush([] { EventBus::global().flush(); });
        }
    }

    void
    writerLoop()
    {
        while (std::optional<RunEvent> ev = chan->pop()) {
            writeEvent(*ev);
            {
                std::lock_guard<std::mutex> lk(mu);
                ++written;
            }
            drainedCv.notify_all();
        }
    }

    /** Render + append one line; writer thread only. */
    void
    writeEvent(const RunEvent &ev)
    {
        RunEvent line = ev;
        if (line.kind == EventKind::RunEnd) {
            line.u64("jobs", meter.jobsTotal)
                .u64("ok", meter.jobsDone - meter.jobsFailed)
                .u64("failed", meter.jobsFailed)
                .u64("frames", meter.framesDone)
                .u64("cache_hits", meter.cacheHits);
        }

        // Snapshot the tap under the lock; invoke it outside so a slow
        // subscriber can't deadlock against setTap().
        std::shared_ptr<const Tap> tapLocal;
        {
            std::lock_guard<std::mutex> lk(mu);
            tapLocal = tap;
        }
        if (out || tapLocal) {
            std::string text = "{";
            if (line.kind == EventKind::RunStart)
                text += "\"schema\":\"dtexl-events-v1\",";
            text += "\"seq\":" + std::to_string(seq);
            text += ",\"ts_ms\":" + std::to_string(line.tsMs);
            char tbuf[48];
            std::snprintf(tbuf, sizeof(tbuf), ",\"t_ms\":%.3f",
                          line.tMs);
            text += tbuf;
            text += ",\"event\":\"";
            text += toString(line.kind);
            text += "\"";
            if (!line.job.empty())
                text += ",\"job\":\"" + jsonEscape(line.job) + "\"";
            for (const RunEvent::Field &f : line.fields)
                text += ",\"" + jsonEscape(f.key) + "\":" + f.json;
            text += "}\n";
            if (out) {
                std::fwrite(text.data(), 1, text.size(), out);
                // Per-line flush: the ledger stays valid JSONL up to
                // the last event even when the process dies hard.
                std::fflush(out);
            }
            // After the file write: a tap sees only lines that are
            // already on disk, so file replay + live stream splice
            // seamlessly on seq.
            if (tapLocal)
                (*tapLocal)(seq, text);
        }
        ++seq;

        meter.observe(line);
        if (progress)
            meter.maybePrint(t0, line.kind == EventKind::RunEnd);
    }
};

EventBus::Impl &
EventBus::impl()
{
    static Impl instance;
    return instance;
}

EventBus &
EventBus::global()
{
    static EventBus bus;
    return bus;
}

void
EventBus::enable(const std::string &path)
{
    Impl &im = impl();
    std::lock_guard<std::mutex> lk(im.mu);
    if (!im.out) {
        FILE *f = std::fopen(path.c_str(), "w");
        if (!f)
            throwIoError("cannot open events ledger '%s'",
                         path.c_str());
        im.out = f;
        im.ledgerPath = path;
    }
    im.startLocked();
}

void
EventBus::enableProgress()
{
    Impl &im = impl();
    std::lock_guard<std::mutex> lk(im.mu);
    im.progress = true;
    im.startLocked();
}

void
EventBus::setInvocation(std::string args)
{
    Impl &im = impl();
    std::lock_guard<std::mutex> lk(im.mu);
    im.invocation = std::move(args);
}

void
EventBus::emitRunStart(std::uint64_t configDigest,
                       std::uint64_t buildFingerprint,
                       const std::string &simd)
{
    Impl &im = impl();
    std::string args;
    {
        std::lock_guard<std::mutex> lk(im.mu);
        if (!im.running || im.runStartDone)
            return;
        im.runStartDone = true;
        args = im.invocation;
    }
    char hex[2][17];
    std::snprintf(hex[0], sizeof(hex[0]), "%016llx",
                  static_cast<unsigned long long>(configDigest));
    std::snprintf(hex[1], sizeof(hex[1]), "%016llx",
                  static_cast<unsigned long long>(buildFingerprint));
    RunEvent ev(EventKind::RunStart);
    ev.str("args", args)
        .str("config", hex[0])
        .str("build", hex[1])
        .str("simd", simd)
        .u64("pid", static_cast<std::uint64_t>(::getpid()))
        .u64("nproc", std::thread::hardware_concurrency());
    const char *host = std::getenv("HOSTNAME");
    ev.str("host", host ? host : "");
    emit(std::move(ev));
}

void
EventBus::emit(RunEvent ev)
{
    Impl &im = impl();
    {
        std::lock_guard<std::mutex> lk(im.mu);
        if (!im.running)
            return;
        ++im.emitted;
        ev.tsMs = wallMillisNow();
        ev.tMs = std::chrono::duration<double, std::milli>(
                     std::chrono::steady_clock::now() - im.t0)
                     .count();
    }
    if (!im.chan->push(std::move(ev))) {
        // Channel closed mid-emit (finish() raced us): the event is
        // dropped, so it must not count against the drain barrier.
        std::lock_guard<std::mutex> lk(im.mu);
        --im.emitted;
        im.drainedCv.notify_all();
    }
}

void
EventBus::flush()
{
    Impl &im = impl();
    std::unique_lock<std::mutex> lk(im.mu);
    if (!im.running)
        return;
    const std::uint64_t target = im.emitted;
    im.drainedCv.wait(lk, [&] { return im.written >= target; });
    if (im.out)
        std::fflush(im.out);
}

void
EventBus::finish()
{
    Impl &im = impl();
    bool emitEnd = false;
    {
        std::lock_guard<std::mutex> lk(im.mu);
        if (!im.running)
            return;
        if (!im.runEndQueued) {
            im.runEndQueued = true;
            emitEnd = true;
        }
    }
    if (emitEnd)
        emit(RunEvent(EventKind::RunEnd));
    armedFlag.store(false, std::memory_order_relaxed);
    im.chan->close();
    if (im.writer.joinable())
        im.writer.join();
    std::lock_guard<std::mutex> lk(im.mu);
    im.running = false;
    if (im.out) {
        std::fflush(im.out);
        std::fclose(im.out);
        im.out = nullptr;
    }
    im.drainedCv.notify_all();
}

void
EventBus::setTap(
    std::function<void(std::uint64_t seq, const std::string &line)> tap)
{
    Impl &im = impl();
    std::lock_guard<std::mutex> lk(im.mu);
    im.tap = tap ? std::make_shared<const Impl::Tap>(std::move(tap))
                 : nullptr;
}

void
EventBus::resetForTests()
{
    finish();
    Impl &im = impl();
    std::lock_guard<std::mutex> lk(im.mu);
    im.tap = nullptr;
    im.ledgerPath.clear();
    im.progress = false;
    im.runStartDone = false;
    im.runEndQueued = false;
    im.invocation.clear();
}

std::string
EventBus::path() const
{
    Impl &im = impl();
    std::lock_guard<std::mutex> lk(im.mu);
    return im.ledgerPath;
}

} // namespace dtexl

/**
 * @file
 * The run-event plane: a process-global EventBus serializing typed
 * RunEvents (run_event.hh) to an append-only JSONL ledger, and deriving
 * a live stderr progress line from the same stream.
 *
 * Design (DESIGN.md "Run observability"):
 *  - Producers (batch workers, the cache layer, CLI drivers) stamp an
 *    event and push it into a bounded Channel<RunEvent>
 *    (common/channel.hh) — the same submitter/collector shape as the
 *    raster execution domains.
 *  - ONE writer thread pops events, assigns the monotonic `seq`,
 *    renders the JSONL line, appends it to the ledger file, and
 *    updates the progress meter. Single-writer means lines never
 *    interleave and `seq` needs no synchronization.
 *  - flush() is a drain barrier: it waits until every event emitted
 *    before the call is on disk, then fflush()es — registered as a
 *    failure-flush hook (common/sim_error.hh) so a crashing job still
 *    leaves a valid ledger ending in its job_error line.
 *  - finish() emits run_end (with totals accumulated by the writer),
 *    drains, joins the writer and closes the file; an atexit backstop
 *    arms it so every exit path terminates the ledger.
 *
 * Determinism: the ledger never feeds back into the simulation —
 * emission is observe-only — so FrameStats/imageHash/stats-JSON are
 * byte-identical with and without --events. Ledger *content* is
 * identical across --jobs/--geom-threads/--raster-threads modulo seq
 * order, timestamps and worker ids (scripts/run_report.py --canon
 * strips exactly those).
 */

#ifndef DTEXL_OBS_EVENT_BUS_HH
#define DTEXL_OBS_EVENT_BUS_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>

#include "obs/run_event.hh"

namespace dtexl {

class EventBus
{
  public:
    static EventBus &global();

    /**
     * Arm the ledger (--events=FILE): open @p path for append, start
     * the writer thread, register the atexit/failure-flush hooks.
     * Throws SimError{Io} when the file cannot be opened.
     */
    void enable(const std::string &path);

    /**
     * Arm the live progress line (--progress) — runs the same writer
     * thread with or without a ledger file.
     */
    void enableProgress();

    /**
     * Fast emission guard: true once enable()/enableProgress() armed
     * the bus. Call sites wrap construction in `if (EventBus::armed())`
     * so an unarmed run never materializes RunEvents.
     */
    static bool
    armed()
    {
        return armedFlag.load(std::memory_order_relaxed);
    }

    /**
     * Record the process argv (joined) for the run_start event. Safe
     * to call before the bus is armed; last call before run_start
     * wins.
     */
    void setInvocation(std::string args);

    /**
     * Emit run_start exactly once per process (first call wins; the
     * bench harness applies CLI knobs once per config variant). The
     * digests come from the caller so obs never depends on the cache
     * layer that computes them. @p simd is the resolved host SIMD
     * dispatch mode ("auto"/"scalar") — recorded explicitly because
     * the config digest excludes host-execution knobs, so it cannot
     * be recovered from the digest (run_report.py prints it).
     */
    void emitRunStart(std::uint64_t configDigest,
                      std::uint64_t buildFingerprint,
                      const std::string &simd);

    /** Enqueue one event; no-op when the bus is not armed. */
    void emit(RunEvent ev);

    /**
     * Drain barrier: block until every event emitted before this call
     * is written, then fflush() the ledger. Never throws; safe from
     * any thread (this is the failure-flush hook).
     */
    void flush();

    /**
     * Emit run_end with the accumulated totals, drain, join the writer
     * and close the ledger. Idempotent; armed() is false afterwards.
     */
    void finish();

    /**
     * Event-forwarding hook (dtexld's `subscribe`): @p tap receives
     * every rendered ledger line with its seq, on the writer thread,
     * after the line is on disk — so a tap observes exactly the file's
     * content and order, and seq lets a late subscriber splice a file
     * replay with the live stream without duplicates. The tap must not
     * emit events (it runs downstream of the queue) and should be
     * fast; it serializes the ledger. Null clears.
     */
    void setTap(
        std::function<void(std::uint64_t seq, const std::string &line)>
            tap);

    /** finish() plus full state reset so a test can re-arm the bus. */
    void resetForTests();

    /** Ledger path, or empty when only --progress is armed. */
    std::string path() const;

  private:
    struct Impl;
    static Impl &impl();
    inline static std::atomic<bool> armedFlag{false};
};

} // namespace dtexl

#endif // DTEXL_OBS_EVENT_BUS_HH

/**
 * @file
 * Typed run-level events for the observability ledger (event_bus.hh).
 *
 * A RunEvent is one line of the JSONL ledger: an EventKind, the job it
 * belongs to (empty for run-scoped events), producer-side timestamps,
 * and an ordered list of key/value fields. Values are pre-rendered to
 * JSON at the emission site so the writer thread never interprets
 * them; numeric fields additionally keep their raw integer value so
 * the live progress meter can read counts without re-parsing JSON.
 *
 * Event vocabulary (schema `dtexl-events-v1`, see DESIGN.md "Run
 * observability"):
 *
 *   run_start        args, config/build digests, host metadata
 *   job_submit       one per batch job, in submission order
 *   job_start        a worker picked the job up
 *   job_frame        one frame boundary (cycles, wall)
 *   job_checkpoint   a frame-boundary checkpoint was written
 *   job_cache_hit    result served from the content-addressed store
 *   job_cache_miss   lookup consulted the store and missed
 *   job_cache_store  result committed to the store
 *   job_resume       job resumed from a checkpoint
 *   job_complete     job finished OK (frames, cycles, wall, cached)
 *   job_error        job failed (kind, message, crash report)
 *   watchdog         the forward-progress watchdog fired for a job
 *   run_end          process-level totals; always the last line
 */

#ifndef DTEXL_OBS_RUN_EVENT_HH
#define DTEXL_OBS_RUN_EVENT_HH

#include <cstdint>
#include <string>
#include <vector>

namespace dtexl {

/** What happened; rendered as the ledger line's "event" string. */
enum class EventKind : std::uint8_t
{
    RunStart,
    JobSubmit,
    JobStart,
    JobFrame,
    JobCheckpoint,
    JobCacheHit,
    JobCacheMiss,
    JobCacheStore,
    JobResume,
    JobComplete,
    JobError,
    Watchdog,
    RunEnd,
};

/** Ledger spelling ("run_start", "job_frame", ...). */
const char *toString(EventKind kind);

/** One ledger line under construction. */
struct RunEvent
{
    /**
     * One key/value field. @c json is the value pre-rendered as a JSON
     * token (number, or quoted escaped string); @c uval mirrors
     * integer values so the progress meter can read counts directly.
     */
    struct Field
    {
        std::string key;
        std::string json;
        std::uint64_t uval = 0;
    };

    EventKind kind;
    /** Owning job label; empty for run_start/run_end. */
    std::string job;
    /** Wall-clock milliseconds since the Unix epoch (emission time). */
    std::uint64_t tsMs = 0;
    /** Milliseconds since the bus was armed (emission time). */
    double tMs = 0.0;
    std::vector<Field> fields;

    explicit RunEvent(EventKind k, std::string jobLabel = "")
        : kind(k), job(std::move(jobLabel))
    {}

    /** Append an unsigned integer field. Returns *this for chaining. */
    RunEvent &u64(const char *key, std::uint64_t value);
    /** Append a floating-point field (fixed 3 decimals). */
    RunEvent &f64(const char *key, double value);
    /** Append a string field (JSON-escaped). */
    RunEvent &str(const char *key, const std::string &value);

    /** Raw value of an integer field, or 0 when absent. */
    std::uint64_t uval(const char *key) const;
};

} // namespace dtexl

#endif // DTEXL_OBS_RUN_EVENT_HH

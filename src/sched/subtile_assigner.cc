#include "sched/subtile_assigner.hh"

#include <algorithm>
#include <cstdlib>

#include "common/log.hh"

namespace dtexl {

SubtileAssigner::SubtileAssigner(SubtileAssignment scheme,
                                 const SubtileLayout &layout)
    : scheme(scheme), layout(layout)
{
    reset();
}

void
SubtileAssigner::reset()
{
    for (std::uint8_t s = 0; s < kNumSubtiles; ++s)
        perm[s] = s;
    seq = 0;
    prev = Coord2{};
}

void
SubtileAssigner::applyMirror(
    const std::array<std::uint8_t, kNumSubtiles> &mirror)
{
    // Subtile s of the new tile inherits the SC that sat on its mirror
    // image in the previous tile, so the two sides of the shared edge
    // stay in the same L1 cache.
    std::array<CoreId, kNumSubtiles> next_perm;
    for (std::uint8_t s = 0; s < kNumSubtiles; ++s)
        next_perm[s] = perm[mirror[s]];
    perm = next_perm;
}

void
SubtileAssigner::swapFarPair(Coord2 delta)
{
    // Order subtiles by distance from the shared edge along the move
    // axis; the two farthest are the "non-sharing" pair of Figure 8(e).
    std::array<std::uint8_t, kNumSubtiles> order{0, 1, 2, 3};
    auto key = [&](std::uint8_t s) {
        const auto &c = layout.centroid(s);
        if (delta.x > 0)
            return c.x;
        if (delta.x < 0)
            return -c.x;
        if (delta.y > 0)
            return c.y;
        return -c.y;
    };
    std::sort(order.begin(), order.end(),
              [&](std::uint8_t a, std::uint8_t b) {
                  return key(a) > key(b);
              });
    std::swap(perm[order[0]], perm[order[1]]);
}

std::array<CoreId, kNumSubtiles>
SubtileAssigner::next(Coord2 tile_coord)
{
    if (seq == 0 || scheme == SubtileAssignment::Constant) {
        prev = tile_coord;
        ++seq;
        return perm;
    }

    const Coord2 delta{tile_coord.x - prev.x, tile_coord.y - prev.y};
    const bool adjacent = std::abs(delta.x) + std::abs(delta.y) == 1;

    if (adjacent) {
        if (delta.x != 0)
            applyMirror(layout.mirrorX());
        else
            applyMirror(layout.mirrorY());

        if ((scheme == SubtileAssignment::Flip2 ||
             scheme == SubtileAssignment::Flip3) &&
            seq % 2 == 1) {
            swapFarPair(delta);
        }
    }
    // Non-adjacent steps (traversal jumps) keep the assignment: there
    // is no shared edge to exploit.

    if (scheme == SubtileAssignment::Flip3 && seq % 16 == 0) {
        // Periodic 180-degree rotation so no SC keeps a long-term
        // positional advantage (Figure 8(f)).
        applyMirror(layout.mirrorX());
        applyMirror(layout.mirrorY());
    }

    prev = tile_coord;
    ++seq;
    return perm;
}

} // namespace dtexl

#include "sched/subtile_layout.hh"

#include <algorithm>
#include <cmath>

#include "common/log.hh"

namespace dtexl {

std::uint8_t
groupQuad(QuadGrouping grouping, Coord2 q, std::uint32_t quads_per_side)
{
    const auto n = static_cast<std::int32_t>(quads_per_side);
    dtexl_assert(q.x >= 0 && q.x < n && q.y >= 0 && q.y < n);
    const std::int32_t x = q.x;
    const std::int32_t y = q.y;
    switch (grouping) {
      case QuadGrouping::FGChecker:
        return static_cast<std::uint8_t>((x % 2) + 2 * (y % 2));
      case QuadGrouping::FGXShift1:
        return static_cast<std::uint8_t>((x + y) % 4);
      case QuadGrouping::FGXShift2:
        return static_cast<std::uint8_t>((x + 2 * y) % 4);
      case QuadGrouping::FGYShift2:
        return static_cast<std::uint8_t>((y + 2 * x) % 4);
      case QuadGrouping::FGVDomino:
        return static_cast<std::uint8_t>((x + 2 * (y / 2)) % 4);
      case QuadGrouping::FGHDomino:
        return static_cast<std::uint8_t>((y + 2 * (x / 2)) % 4);
      case QuadGrouping::CGXRect:
        // Bands split along x: full-height vertical strips.
        return static_cast<std::uint8_t>(x / (n / 4));
      case QuadGrouping::CGYRect:
        // Bands split along y: full-width horizontal strips. The
        // paper's better-locality rectangle (Section V-A: horizontal
        // adjacency preserved, ~10x worse balance).
        return static_cast<std::uint8_t>(y / (n / 4));
      case QuadGrouping::CGSquare:
        return static_cast<std::uint8_t>((x >= n / 2 ? 1 : 0) +
                                         (y >= n / 2 ? 2 : 0));
      case QuadGrouping::CGTriangle: {
        // Four triangles meeting at the tile centre: sector by the two
        // diagonals, deterministic tie-breaks (exact counts fixed up by
        // SubtileLayout).
        const double c = (static_cast<double>(n) - 1.0) / 2.0;
        const double dx = static_cast<double>(x) - c;
        const double dy = static_cast<double>(y) - c;
        if (dy <= dx && dy < -dx)
            return 0;  // top
        if (dy <= dx)  // && dy >= -dx
            return 1;  // right
        if (dy > -dx)
            return 2;  // bottom
        return 3;      // left
      }
    }
    panic("unknown QuadGrouping %d", static_cast<int>(grouping));
}

SubtileLayout::SubtileLayout(QuadGrouping grouping,
                             std::uint32_t quads_per_side)
    : grouping_(grouping), side(quads_per_side),
      subtile(std::size_t{quads_per_side} * quads_per_side),
      slot(std::size_t{quads_per_side} * quads_per_side)
{
    dtexl_assert(side >= 4 && side % 4 == 0,
                 "tile side in quads must be a positive multiple of 4");

    for (std::uint32_t y = 0; y < side; ++y) {
        for (std::uint32_t x = 0; x < side; ++x) {
            const Coord2 q{static_cast<std::int32_t>(x),
                           static_cast<std::int32_t>(y)};
            subtile[index(q)] = groupQuad(grouping, q, side);
        }
    }

    // Banks are equal-sized (Section III-E), so every subtile must hold
    // exactly a quarter of the quads. Patterns with irrational borders
    // (CG-triangle) are balanced by moving border quads to the least
    // loaded neighbouring subtile, nearest-to-centre first.
    const std::uint32_t target = quadsPerSubtile();
    std::array<std::uint32_t, kNumSubtiles> counts{};
    for (std::uint8_t s : subtile)
        ++counts[s];
    if (counts != std::array<std::uint32_t, kNumSubtiles>{target, target,
                                                          target, target}) {
        const double c = (static_cast<double>(side) - 1.0) / 2.0;
        // Quad indices sorted by distance from centre (closest first):
        // border quads of the diagonal partition live near the centre
        // lines, so these move first and contiguity is preserved.
        std::vector<std::uint32_t> order(subtile.size());
        for (std::uint32_t i = 0; i < order.size(); ++i)
            order[i] = i;
        auto dist = [&](std::uint32_t i) {
            const double dx = static_cast<double>(i % side) - c;
            const double dy = static_cast<double>(i / side) - c;
            return std::min({std::abs(dx + dy), std::abs(dx - dy)});
        };
        std::sort(order.begin(), order.end(),
                  [&](std::uint32_t a, std::uint32_t b) {
                      return dist(a) < dist(b);
                  });
        for (std::uint32_t i : order) {
            const std::uint8_t s = subtile[i];
            if (counts[s] <= target)
                continue;
            // Move to the most underfull subtile.
            std::uint8_t best = s;
            for (std::uint8_t t = 0; t < kNumSubtiles; ++t)
                if (counts[t] < target &&
                    (best == s || counts[t] < counts[best]))
                    best = t;
            if (best != s) {
                --counts[s];
                ++counts[best];
                subtile[i] = best;
            }
        }
    }
    // Slot indices: raster order within each subtile.
    std::array<std::uint16_t, kNumSubtiles> next{};
    for (std::size_t i = 0; i < subtile.size(); ++i)
        slot[i] = next[subtile[i]]++;
    for (std::uint8_t s = 0; s < kNumSubtiles; ++s)
        dtexl_assert(next[s] == target, "subtile %u has %u quads, want %u",
                     s, next[s], target);

    // Centroids.
    std::array<double, kNumSubtiles> sx{}, sy{};
    for (std::uint32_t y = 0; y < side; ++y) {
        for (std::uint32_t x = 0; x < side; ++x) {
            const std::uint8_t s = subtile[y * side + x];
            sx[s] += x;
            sy[s] += y;
        }
    }
    for (std::uint8_t s = 0; s < kNumSubtiles; ++s) {
        centroids[s].x = sx[s] / target;
        centroids[s].y = sy[s] / target;
    }

    computeMirrors();
}

void
SubtileLayout::computeMirrors()
{
    auto compute = [&](bool horizontal,
                       std::array<std::uint8_t, kNumSubtiles> &out,
                       bool &ok) {
        std::array<int, kNumSubtiles> image;
        image.fill(-1);
        bool consistent = true;
        for (std::uint32_t y = 0; y < side && consistent; ++y) {
            for (std::uint32_t x = 0; x < side && consistent; ++x) {
                const std::uint8_t s = subtile[y * side + x];
                const std::uint32_t mx = horizontal ? side - 1 - x : x;
                const std::uint32_t my = horizontal ? y : side - 1 - y;
                const std::uint8_t ms = subtile[my * side + mx];
                if (image[s] == -1)
                    image[s] = ms;
                else if (image[s] != ms)
                    consistent = false;
            }
        }
        bool bijective = consistent;
        if (consistent) {
            std::array<bool, kNumSubtiles> seen{};
            for (std::uint8_t s = 0; s < kNumSubtiles; ++s) {
                if (image[s] < 0 || seen[image[s]])
                    bijective = false;
                else
                    seen[image[s]] = true;
            }
        }
        if (bijective) {
            for (std::uint8_t s = 0; s < kNumSubtiles; ++s)
                out[s] = static_cast<std::uint8_t>(image[s]);
        } else {
            for (std::uint8_t s = 0; s < kNumSubtiles; ++s)
                out[s] = s;
        }
        ok = bijective;
    };
    compute(true, mirror_x, mirror_x_ok);
    compute(false, mirror_y, mirror_y_ok);
}

} // namespace dtexl

/**
 * @file
 * Subtile-to-SC assignment across the tile traversal: the Figure 8
 * schemes. Constant pins subtile k to SC k; the flip schemes mirror the
 * assignment across each shared tile edge so subtiles that abut in
 * screen space stay in the same L1 texture cache, with Flip2/Flip3
 * rotating which SC enjoys the shared edge so no SC is favoured over a
 * frame (Section III-D).
 */

#ifndef DTEXL_SCHED_SUBTILE_ASSIGNER_HH
#define DTEXL_SCHED_SUBTILE_ASSIGNER_HH

#include <array>

#include "common/policies.hh"
#include "common/types.hh"
#include "sched/subtile_layout.hh"

namespace dtexl {

/** Per-tile subtile -> SC permutation generator, driven in traversal
 *  order. */
class SubtileAssigner
{
  public:
    SubtileAssigner(SubtileAssignment scheme, const SubtileLayout &layout);

    /**
     * Advance to the next tile of the traversal and return its
     * assignment.
     *
     * @param tile_coord Grid coordinate of the tile.
     * @return perm[s] = SC that processes subtile s of this tile.
     */
    std::array<CoreId, kNumSubtiles> next(Coord2 tile_coord);

    /** Restart at the beginning of a traversal (new frame). */
    void reset();

  private:
    void applyMirror(const std::array<std::uint8_t, kNumSubtiles> &mirror);
    /** Swap the SCs of the two subtiles farthest from the shared edge. */
    void swapFarPair(Coord2 delta);

    SubtileAssignment scheme;
    const SubtileLayout &layout;
    std::array<CoreId, kNumSubtiles> perm;
    Coord2 prev{};
    std::uint64_t seq = 0;
};

} // namespace dtexl

#endif // DTEXL_SCHED_SUBTILE_ASSIGNER_HH

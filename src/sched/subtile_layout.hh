/**
 * @file
 * Subtile layouts: the quad groupings of the paper's Figure 6.
 *
 * A layout partitions the quads of one tile into four equal-sized
 * subtiles. Fine-grained (FG) layouts interleave so screen-adjacent
 * quads land in different subtiles (load balance); coarse-grained (CG)
 * layouts keep adjacent quads together (texture locality). Each quad
 * also gets a stable slot index within its subtile, which the banked
 * Z/Color buffers use as storage index.
 */

#ifndef DTEXL_SCHED_SUBTILE_LAYOUT_HH
#define DTEXL_SCHED_SUBTILE_LAYOUT_HH

#include <array>
#include <cstdint>
#include <vector>

#include "common/policies.hh"
#include "common/types.hh"

namespace dtexl {

/** Number of subtiles == parallel raster pipelines the paper assumes. */
inline constexpr std::uint32_t kNumSubtiles = 4;

/**
 * Precomputed quad-to-subtile mapping for one grouping at one tile
 * size. Immutable after construction.
 */
class SubtileLayout
{
  public:
    /**
     * @param grouping       Figure 6 pattern.
     * @param quads_per_side Tile side in quads (tileSize / 2).
     */
    SubtileLayout(QuadGrouping grouping, std::uint32_t quads_per_side);

    QuadGrouping grouping() const { return grouping_; }
    std::uint32_t quadsPerSide() const { return side; }
    std::uint32_t quadsPerTile() const { return side * side; }
    std::uint32_t quadsPerSubtile() const { return side * side / 4; }

    /** Subtile (0..3) of a quad at tile-local coordinates. */
    std::uint8_t
    subtileOf(Coord2 q) const
    {
        return subtile[index(q)];
    }

    /** Storage slot of the quad within its subtile. */
    std::uint16_t
    slotOf(Coord2 q) const
    {
        return slot[index(q)];
    }

    /** Mean quad position of a subtile, in quad units. */
    struct Centroid
    {
        double x = 0.0;
        double y = 0.0;
    };
    const Centroid &centroid(std::uint8_t s) const { return centroids[s]; }

    /**
     * Subtile permutation under a horizontal mirror (x -> side-1-x).
     * Meaningful (bijective) for the CG layouts the flip assignments
     * are defined on; identity otherwise.
     */
    const std::array<std::uint8_t, kNumSubtiles> &mirrorX() const
    {
        return mirror_x;
    }
    /** Same, for a vertical mirror (y -> side-1-y). */
    const std::array<std::uint8_t, kNumSubtiles> &mirrorY() const
    {
        return mirror_y;
    }
    bool mirrorXBijective() const { return mirror_x_ok; }
    bool mirrorYBijective() const { return mirror_y_ok; }

  private:
    std::size_t
    index(Coord2 q) const
    {
        return static_cast<std::size_t>(q.y) * side +
               static_cast<std::size_t>(q.x);
    }

    void computeMirrors();

    QuadGrouping grouping_;
    std::uint32_t side;
    std::vector<std::uint8_t> subtile;  ///< per quad index
    std::vector<std::uint16_t> slot;    ///< per quad index
    std::array<Centroid, kNumSubtiles> centroids{};
    std::array<std::uint8_t, kNumSubtiles> mirror_x{0, 1, 2, 3};
    std::array<std::uint8_t, kNumSubtiles> mirror_y{0, 1, 2, 3};
    bool mirror_x_ok = false;
    bool mirror_y_ok = false;
};

/**
 * Pure mapping function behind the layouts: subtile of a quad under a
 * grouping, for a tile of quads_per_side quads. Exposed for tests.
 */
std::uint8_t groupQuad(QuadGrouping grouping, Coord2 q,
                       std::uint32_t quads_per_side);

} // namespace dtexl

#endif // DTEXL_SCHED_SUBTILE_LAYOUT_HH

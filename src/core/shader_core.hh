/**
 * @file
 * The Shader Core (SC): a multithreaded fragment processor. A quad is
 * one warp of four fragment lanes; the core keeps up to maxWarpsPerCore
 * warps in flight, issues one instruction per cycle among ready warps,
 * and blocks warps on texture accesses through the core's private L1
 * texture cache — so memory latency is hidden exactly when occupancy is
 * high, reproducing the occupancy sensitivity the paper leans on
 * (Section V-C2).
 */

#ifndef DTEXL_CORE_SHADER_CORE_HH
#define DTEXL_CORE_SHADER_CORE_HH

#include <vector>

#include "common/channel.hh"
#include "common/config.hh"
#include "common/stats.hh"
#include "geom/scene.hh"
#include "mem/hierarchy.hh"
#include "raster/quad.hh"
#include "raster/quad_stream.hh"
#include "texture/sampler.hh"

namespace dtexl {

/** One fragment shader core with its warp scheduler and texture unit. */
class ShaderCore
{
  public:
    ShaderCore(CoreId id, const GpuConfig &cfg, MemHierarchy &mem,
               const Scene &scene);

    /** Result of executing one subtile's worth of quads. */
    struct BatchResult
    {
        /** Completion cycle of each quad, in input order. */
        std::vector<Cycle> completion;
        Cycle start = 0;   ///< first activity (>= gate)
        Cycle finish = 0;  ///< last quad completion
        /**
         * Instructions issued for the batch: the scheduler issues at
         * most one per cycle, so this is also the core's busy-cycle
         * count over [start, finish) (telemetry's SC busy bucket).
         */
        std::uint64_t issues = 0;
    };

    /**
     * Execute a batch of quads (the surviving quads of one subtile).
     * The Fragment Stage processes one subtile at a time (the paper's
     * barrier), so batches on one core never overlap.
     *
     * AoS adapter over runBatches(): copies the quads into a local
     * QuadStream. Kept for tests and standalone use; the pipeline
     * calls runBatches() with its SoA arena directly.
     *
     * @param quads    Quads in Early-Z output order.
     * @param arrivals Cycle each quad becomes available (>= its EZ
     *                 completion); same order as @p quads.
     * @param gate     Stage barrier: no quad may start earlier.
     */
    BatchResult runBatch(const std::vector<const Quad *> &quads,
                         const std::vector<Cycle> &arrivals, Cycle gate);

    /** One core's inputs for runBatches(). */
    struct BatchInput
    {
        const QuadStream *stream = nullptr;
        /** Indices into @ref stream, in Early-Z output order. */
        const std::vector<std::uint32_t> *quads = nullptr;
        const std::vector<Cycle> *arrivals = nullptr;
        Cycle gate = 0;
    };

    /**
     * Execute one batch on each of several cores in a single
     * time-interleaved event loop, so the cores' memory accesses reach
     * the shared L2/DRAM in global time order and contend fairly —
     * running the batches one core at a time would systematically
     * starve the last-simulated core at the shared levels.
     *
     * @param hook Non-null when this call is one execution domain of a
     *             partitioned loop (core/exec_domain.hh): before each
     *             event executes, its (cycle, global core index) key
     *             is published to the domain merge so the per-pipe L2
     *             gates can commit shared-level accesses in serial
     *             event order. The issue sequence itself is untouched
     *             — pick() depends only on run-local state — so the
     *             partitioned loop is bit-identical to the serial one.
     */
    static std::vector<BatchResult>
    runBatches(const std::vector<ShaderCore *> &cores,
               const std::vector<BatchInput> &inputs,
               const MergeHook *hook = nullptr);

    /**
     * Reinitialize per-frame state in place (texture-unit occupancy,
     * per-frame counters) so a persistent core starts the next frame
     * bit-identically to a freshly constructed one.
     */
    void beginFrame();

    /**
     * Rebind the scene for the next frame (animation). The texture
     * table layout must match; see GpuSimulator::setScene().
     */
    void setScene(const Scene &next) { scene = &next; }

    CoreId id() const { return coreId; }
    const StatSet &stats() const { return stats_; }
    StatSet &stats() { return stats_; }

    /** Dependent-issue latency of an ALU instruction. */
    static constexpr Cycle kAluLatency = 4;
    /** Texture filtering latency after the last texel line arrives. */
    static constexpr Cycle kFilterLatency = 4;

  private:
    struct Warp
    {
        const QuadStream *stream = nullptr;
        std::uint32_t quadIndex = 0;   ///< index into `stream`
        std::size_t batchIndex = 0;
        Cycle readyAt = 0;
        std::uint16_t aluLeft = 0;     ///< ALU ops before next tex/end
        std::uint8_t texLeft = 0;      ///< tex instructions remaining
        std::uint16_t aluPerSegment = 0;
        std::uint16_t aluTail = 0;     ///< ALU ops after the last tex
        bool active = false;

        /**
         * Sampling level of detail, resolved for the whole batch up
         * front (CoreRun::resolveLods — 4 quads per lane op under
         * --simd=auto) instead of per warp on its first texture
         * instruction. 0.0f for texture-less quads (never read).
         */
        float lod = 0.0f;

        /**
         * Per-fragment deduplicated texture-line footprint, computed
         * on the warp's first texture instruction and reused by the
         * rest: a warp's uv, lod and filter never change between its
         * tex instructions, so every one touches the same lines —
         * only the access timing differs. Caching skips the repeated
         * footprint resolve (floor/Morton per texel), which showed in
         * profiles; the issued line reads are bit-identical.
         */
        bool fpValid = false;
        std::array<std::uint8_t, 4> fpCount{};
        std::array<std::array<Addr, SampleFootprint::kMaxTexels>, 4>
            fpLines;
    };

    /** Per-core in-flight state of runBatches(); see shader_core.cc. */
    struct CoreRun;

    /** Watchdog: per-warp state dump for the crash report. */
    static std::string dumpRuns(const std::vector<CoreRun> &runs,
                                Cycle progress);
    /**
     * Watchdog: throw SimError{Watchdog} with a dump when the next
     * event sits more than @p budget cycles past the last one
     * (budget 0 = disabled).
     */
    static void checkForwardProgress(const std::vector<CoreRun> &runs,
                                     Cycle budget, Cycle progress,
                                     Cycle next_event);

    /** Issue the warp's next instruction at @p cycle; updates state. */
    void issueInstruction(Warp &warp, Cycle cycle);
    /** Execute a texture instruction; returns data-ready cycle. */
    Cycle sampleQuad(Warp &warp, Cycle cycle);
    /** Admit pending quads into free warp slots. */
    void admitWarps(CoreRun &run);
    /** Re-bind the cached stat references (stats_ clears per frame). */
    void bindStats();

    CoreId coreId;
    const GpuConfig &cfg;
    MemHierarchy &mem;
    const Scene *scene;
    /** Texture unit occupancy, in half-cycles (2 bilinear/cycle). */
    std::uint64_t texUnitFreeHalf = 0;
    StatSet stats_;

    /**
     * Cached references into stats_ for the per-instruction counters
     * (see Cache::HotStats); re-bound by beginFrame() because the
     * per-frame stats_.clear() erases the keys.
     */
    struct HotStats
    {
        std::uint64_t *texSamples = nullptr;
        std::uint64_t *texLineReads = nullptr;
        std::uint64_t *texDataCycles = nullptr;
        std::uint64_t *texWaitCycles = nullptr;
        std::uint64_t *aluOps = nullptr;
        std::uint64_t *texInstructions = nullptr;
        std::uint64_t *warps = nullptr;
        std::uint64_t *fragments = nullptr;
    };
    HotStats hot;
};

} // namespace dtexl

#endif // DTEXL_CORE_SHADER_CORE_HH

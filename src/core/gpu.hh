/**
 * @file
 * The full simulated GPU: Geometry Pipeline + Tiling Engine + Raster
 * Pipeline over the memory hierarchy of Figure 5. The public entry
 * point of the library: construct with a configuration and a scene,
 * call renderFrame().
 */

#ifndef DTEXL_CORE_GPU_HH
#define DTEXL_CORE_GPU_HH

#include <memory>

#include "common/config.hh"
#include "core/frame_stats.hh"
#include "core/raster_pipeline.hh"
#include "geom/prim_assembler.hh"
#include "geom/scene.hh"
#include "geom/vertex_stage.hh"
#include "mem/hierarchy.hh"
#include "raster/framebuffer.hh"
#include "tiling/param_buffer.hh"
#include "tiling/poly_list_builder.hh"

namespace dtexl {

/** Cycle-level TBR GPU simulator. */
class GpuSimulator
{
  public:
    /**
     * @param cfg   Machine + scheduling configuration (validated).
     * @param scene Frame input; must outlive the simulator.
     */
    GpuSimulator(const GpuConfig &cfg, const Scene &scene);

    /**
     * Render one frame and return its statistics. Successive calls
     * render successive frames with warm caches, which is how the
     * evaluation measures steady-state behaviour.
     */
    FrameStats renderFrame();

    /**
     * Swap the scene for the next frame (animation). The new scene's
     * texture table must describe the same texture memory (same ids,
     * addresses and sizes) or warm cache contents would be stale.
     */
    void setScene(const Scene &next);

    const GpuConfig &config() const { return cfg; }
    MemHierarchy &memory() { return *mem; }
    const MemHierarchy &memory() const { return *mem; }
    const FrameBuffer &framebuffer() const { return *fb; }
    RasterPipeline &rasterPipeline() { return *pipeline; }

  private:
    GpuConfig cfg;
    const Scene *scene;
    std::unique_ptr<MemHierarchy> mem;
    std::unique_ptr<FrameBuffer> fb;
    std::unique_ptr<ParamBuffer> pb;
    std::unique_ptr<RasterPipeline> pipeline;
    /** Cross-frame flush CRCs for transaction elimination. */
    FlushSignatures flushSignatures;
};

} // namespace dtexl

#endif // DTEXL_CORE_GPU_HH

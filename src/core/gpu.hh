/**
 * @file
 * The full simulated GPU: Geometry Pipeline + Tiling Engine + Raster
 * Pipeline over the memory hierarchy of Figure 5. The public entry
 * point of the library: construct with a configuration and a scene,
 * call renderFrame().
 *
 * The frame loop is phase-structured: renderFrame() runs the
 * GeometryPhase, then the RasterPipeline, each in its own cycle-0
 * epoch, and reuses all heavy pipeline state in place across frames
 * (RasterPipeline::beginFrame()) instead of heap-rebuilding it. Each
 * phase reports sim-cycle and wall-time counters into an optional
 * StatRegistry and emits Chrome-trace spans when tracing is enabled.
 */

#ifndef DTEXL_CORE_GPU_HH
#define DTEXL_CORE_GPU_HH

#include <memory>
#include <string>

#include "common/config.hh"
#include "common/stat_registry.hh"
#include "core/frame_stats.hh"
#include "core/geometry_phase.hh"
#include "core/raster_pipeline.hh"
#include "geom/scene.hh"
#include "mem/hierarchy.hh"
#include "raster/framebuffer.hh"
#include "telemetry/telemetry.hh"
#include "tiling/param_buffer.hh"

namespace dtexl {

/** Cycle-level TBR GPU simulator. */
class GpuSimulator
{
  public:
    /**
     * @param cfg   Machine + scheduling configuration (validated).
     * @param scene Frame input; must outlive the simulator.
     */
    GpuSimulator(const GpuConfig &cfg, const Scene &scene);

    /**
     * Render one frame and return its statistics. Successive calls
     * render successive frames with warm caches, which is how the
     * evaluation measures steady-state behaviour.
     */
    FrameStats renderFrame();

    /**
     * Swap the scene for the next frame (animation). The new scene's
     * texture table must describe the same texture memory (same ids,
     * addresses and sizes) or warm cache contents would be stale.
     */
    void setScene(const Scene &next);

    /**
     * Report per-phase counters into @p registry under
     * "<prefix>.geometry" / "<prefix>.raster" (sim cycles, wall
     * microseconds, frames). Pass nullptr to stop reporting. The
     * registry must outlive the simulator; counters are written by
     * whichever thread calls renderFrame().
     */
    void setStatRegistry(StatRegistry *registry,
                         const std::string &prefix = "engine");

    /**
     * Legacy equivalence knob: when enabled, renderFrame() destroys
     * and reconstructs the RasterPipeline each frame, as the
     * pre-phase-structured simulator did, instead of resetting it in
     * place. The two paths are bit-exact (tests/test_engine.cc); the
     * rebuild path exists only to verify that.
     */
    void setRebuildPipelineEachFrame(bool rebuild)
    {
        rebuildEachFrame = rebuild;
    }

    /**
     * Serialize all cross-frame warm state at a frame boundary: cache
     * tag arrays, transaction-elimination flush signatures (sorted for
     * a canonical byte stream), and cumulative telemetry. Everything
     * else is rebuilt per frame (proven by the rebuild-each-frame
     * equivalence path), so restoring exactly this state resumes a run
     * bit-identically (tests/test_checkpoint.cc).
     */
    void saveWarmState(ByteWriter &w) const;

    /**
     * Inverse of saveWarmState(); throws SimError{Io} on a payload
     * that disagrees with this simulator's configuration. On throw the
     * simulator may hold partial state — call resetWarmState() before
     * using it again.
     */
    void restoreWarmState(ByteReader &r);

    /** Back to cold-start state (failed-restore recovery). */
    void resetWarmState();

    const GpuConfig &config() const { return cfg; }
    MemHierarchy &memory() { return *mem; }
    const MemHierarchy &memory() const { return *mem; }
    const FrameBuffer &framebuffer() const { return *fb; }
    RasterPipeline &rasterPipeline() { return *pipeline; }
    /** The simulator's telemetry sink (valid at any knob level). */
    const Telemetry &telemetry() const { return *tel; }

  private:
    GpuConfig cfg;
    const Scene *scene;
    std::unique_ptr<MemHierarchy> mem;
    std::unique_ptr<FrameBuffer> fb;
    std::unique_ptr<ParamBuffer> pb;
    std::unique_ptr<GeometryPhase> geom;
    std::unique_ptr<RasterPipeline> pipeline;
    /** Cross-frame flush CRCs for transaction elimination. */
    FlushSignatures flushSignatures;
    /** Stall attribution + sampler (inert object when level is 0). */
    std::unique_ptr<Telemetry> tel;

    StatRegistry *registry = nullptr;
    std::string statPrefix = "engine";
    /**
     * Cached registry nodes for the per-frame phase counters, bound
     * once in setStatRegistry() (node references are stable), so
     * renderFrame() skips the mutex-guarded path lookup per frame.
     */
    StatSet *geomStats = nullptr;
    StatSet *rasterStats = nullptr;
    bool rebuildEachFrame = false;
};

} // namespace dtexl

#endif // DTEXL_CORE_GPU_HH

#include "core/engine.hh"

#include <atomic>
#include <chrono>
#include <thread>

#include "common/log.hh"
#include "common/trace.hh"

namespace dtexl {

SimulationSession::SimulationSession(const GpuConfig &cfg,
                                     const Scene &scene,
                                     std::string label)
    : label_(std::move(label)), sim(cfg, scene)
{}

FrameStats
SimulationSession::renderFrame()
{
    frames.push_back(sim.renderFrame());
    return frames.back();
}

FrameStats
SimulationSession::renderFrame(const Scene &next)
{
    sim.setScene(next);
    return renderFrame();
}

void
SimulationSession::setStatRegistry(StatRegistry *registry)
{
    sim.setStatRegistry(registry, label_);
}

namespace {

/** Run one job start to finish on the calling thread. */
BatchResult
runJob(const BatchJob &job, StatRegistry *registry,
       std::uint32_t worker)
{
    dtexl_assert(job.scene, "BatchJob '%s' has no scene provider",
                 job.label.c_str());
    const auto t0 = std::chrono::steady_clock::now();
    const std::uint64_t trace0 = TraceWriter::nowMicros();

    BatchResult res;
    res.label = job.label;
    res.worker = worker;

    const std::uint32_t n = job.frames == 0 ? 1 : job.frames;
    const Scene &first = job.scene(0);
    SimulationSession session(job.cfg, first, "job." + job.label);
    if (registry)
        session.setStatRegistry(registry);
    session.renderFrame();
    for (std::uint32_t f = 1; f < n; ++f)
        session.renderFrame(job.scene(f));
    res.frames = session.history();

    res.wallMs =
        std::chrono::duration_cast<std::chrono::duration<double,
                                                         std::milli>>(
            std::chrono::steady_clock::now() - t0)
            .count();
    if (TraceWriter::global().enabled()) {
        TraceWriter::global().complete(job.label, "job", trace0,
                                       TraceWriter::nowMicros() - trace0);
    }
    return res;
}

} // namespace

std::vector<BatchResult>
runBatch(const std::vector<BatchJob> &jobs, unsigned numWorkers,
         StatRegistry *registry)
{
    std::vector<BatchResult> results(jobs.size());
    if (jobs.empty())
        return results;

    unsigned workers = numWorkers == 0 ? 1 : numWorkers;
    if (workers > jobs.size())
        workers = static_cast<unsigned>(jobs.size());

    if (workers == 1) {
        for (std::size_t i = 0; i < jobs.size(); ++i)
            results[i] = runJob(jobs[i], registry, 0);
        return results;
    }

    // Bounded pool over a shared atomic cursor: each worker claims the
    // next unstarted job, runs it to completion, and writes its result
    // into the job's own slot — a single writer per slot, in
    // deterministic submission order by construction.
    std::atomic<std::size_t> next{0};
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned w = 0; w < workers; ++w) {
        pool.emplace_back([&, w] {
            for (;;) {
                const std::size_t i =
                    next.fetch_add(1, std::memory_order_relaxed);
                if (i >= jobs.size())
                    return;
                results[i] = runJob(jobs[i], registry, w);
            }
        });
    }
    for (std::thread &t : pool)
        t.join();
    return results;
}

} // namespace dtexl

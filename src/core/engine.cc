#include "core/engine.hh"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>

#include "common/log.hh"
#include "common/sim_error.hh"
#include "common/trace.hh"

namespace dtexl {

SimulationSession::SimulationSession(const GpuConfig &cfg,
                                     const Scene &scene,
                                     std::string label)
    : label_(std::move(label)), sim(cfg, scene)
{}

FrameStats
SimulationSession::renderFrame()
{
    frames.push_back(sim.renderFrame());
    return frames.back();
}

FrameStats
SimulationSession::renderFrame(const Scene &next)
{
    sim.setScene(next);
    return renderFrame();
}

void
SimulationSession::setStatRegistry(StatRegistry *registry)
{
    sim.setStatRegistry(registry, label_);
}

namespace {

/** Run one job start to finish on the calling thread. */
BatchResult
runJob(const BatchJob &job, StatRegistry *registry,
       std::uint32_t worker)
{
    dtexl_assert(job.scene, "BatchJob '%s' has no scene provider",
                 job.label.c_str());
    const auto t0 = std::chrono::steady_clock::now();
    const std::uint64_t trace0 = TraceWriter::nowMicros();

    BatchResult res;
    res.label = job.label;
    res.worker = worker;

    // Fault isolation: a throw anywhere in this job — constructing
    // the simulator (bad config), providing a scene (parse error), or
    // rendering (watchdog, internal panic) — is converted into error
    // state on the job's own result. Frames completed before the
    // failure are kept; sibling jobs never see the exception.
    try {
        const std::uint32_t n = job.frames == 0 ? 1 : job.frames;
        const Scene &first = job.scene(0);
        SimulationSession session(job.cfg, first, "job." + job.label);
        if (registry)
            session.setStatRegistry(registry);
        session.renderFrame();
        for (std::uint32_t f = 1; f < n; ++f)
            session.renderFrame(job.scene(f));
        res.frames = session.history();
        if (const ExecDomainSet *doms =
                session.gpu().rasterPipeline().execDomains())
            res.domainWallMs = doms->domainWallMs();
    } catch (const SimError &e) {
        res.ok = false;
        res.errorKind = e.kind();
        res.error = e.describe();
        // Failure artifacts must not wait for a clean process exit.
        flushFailureArtifacts();
        if (!e.dump().empty())
            res.crashReportPath = writeCrashReport(job.label, e);
    } catch (const std::exception &e) {
        res.ok = false;
        res.errorKind = ErrorKind::Internal;
        res.error = std::string("internal: ") + e.what();
        flushFailureArtifacts();
    }

    res.wallMs =
        std::chrono::duration_cast<std::chrono::duration<double,
                                                         std::milli>>(
            std::chrono::steady_clock::now() - t0)
            .count();
    if (TraceWriter::global().enabled()) {
        TraceWriter::global().complete(job.label, "job", trace0,
                                       TraceWriter::nowMicros() - trace0);
    }
    return res;
}

} // namespace

std::vector<BatchResult>
runBatch(const std::vector<BatchJob> &jobs, unsigned numWorkers,
         StatRegistry *registry)
{
    std::vector<BatchResult> results(jobs.size());
    if (jobs.empty())
        return results;

    unsigned workers = numWorkers == 0 ? 1 : numWorkers;
    if (workers > jobs.size())
        workers = static_cast<unsigned>(jobs.size());

    if (workers == 1) {
        for (std::size_t i = 0; i < jobs.size(); ++i)
            results[i] = runJob(jobs[i], registry, 0);
        return results;
    }

    // Bounded pool over a shared atomic cursor: each worker claims the
    // next unstarted job, runs it to completion, and writes its result
    // into the job's own slot — a single writer per slot, in
    // deterministic submission order by construction.
    std::atomic<std::size_t> next{0};
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned w = 0; w < workers; ++w) {
        pool.emplace_back([&, w] {
            for (;;) {
                const std::size_t i =
                    next.fetch_add(1, std::memory_order_relaxed);
                if (i >= jobs.size())
                    return;
                results[i] = runJob(jobs[i], registry, w);
            }
        });
    }
    for (std::thread &t : pool)
        t.join();
    return results;
}

int
batchExitCode(const std::vector<BatchResult> &results)
{
    std::size_t failed = 0;
    int first_code = kExitSuccess;
    for (const BatchResult &r : results) {
        if (r.ok)
            continue;
        if (failed == 0)
            first_code = exitCodeFor(r.errorKind);
        ++failed;
    }
    if (failed == 0)
        return kExitSuccess;
    if (failed == results.size())
        return first_code;
    return kExitPartialBatch;
}

std::size_t
reportBatchFailures(const std::vector<BatchResult> &results)
{
    std::size_t failed = 0;
    for (const BatchResult &r : results) {
        if (r.ok)
            continue;
        ++failed;
        std::fprintf(stderr, "%s FAILED: %s\n", r.label.c_str(),
                     r.error.c_str());
        if (!r.crashReportPath.empty())
            std::fprintf(stderr, "%s crash report: %s\n",
                         r.label.c_str(), r.crashReportPath.c_str());
    }
    if (failed > 0)
        std::fprintf(stderr, "%zu of %zu job(s) failed\n", failed,
                     results.size());
    return failed;
}

} // namespace dtexl

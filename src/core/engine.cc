#include "core/engine.hh"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <optional>
#include <thread>

#include "cache/checkpoint.hh"
#include "cache/result_store.hh"
#include "common/fault_inject.hh"
#include "common/log.hh"
#include "common/serial.hh"
#include "common/signals.hh"
#include "common/sim_error.hh"
#include "common/trace.hh"
#include "obs/event_bus.hh"

namespace dtexl {

SimulationSession::SimulationSession(const GpuConfig &cfg,
                                     const Scene &scene,
                                     std::string label)
    : label_(std::move(label)), sim(cfg, scene)
{}

FrameStats
SimulationSession::renderFrame()
{
    const auto t0 = std::chrono::steady_clock::now();
    frames.push_back(sim.renderFrame());
    if (EventBus::armed()) {
        // Frame-boundary event; the "job." stats prefix is an
        // engine-internal spelling, so ledger lines carry the bare
        // job label.
        const double wall_ms =
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - t0)
                .count();
        std::string job = label_;
        if (job.rfind("job.", 0) == 0)
            job = job.substr(4);
        RunEvent ev(EventKind::JobFrame, std::move(job));
        ev.u64("frame", frames.size() - 1)
            .u64("cycles", frames.back().totalCycles)
            .f64("wall_ms", wall_ms);
        EventBus::global().emit(std::move(ev));
    }
    return frames.back();
}

FrameStats
SimulationSession::renderFrame(const Scene &next)
{
    sim.setScene(next);
    return renderFrame();
}

void
SimulationSession::setStatRegistry(StatRegistry *registry)
{
    registry_ = registry;
    sim.setStatRegistry(registry, label_);
}

void
SimulationSession::saveCheckpoint(const std::string &path,
                                  const ResultKey &key) const
{
    ByteWriter payload;
    payload.u32(static_cast<std::uint32_t>(frames.size()));
    for (const FrameStats &fs : frames)
        writeFrameStats(payload, fs);
    sim.saveWarmState(payload);
    writeStatsFragment(payload, captureStatsFragment(registry_, label_));

    CheckpointBlob blob;
    blob.key = key;
    blob.framesDone = static_cast<std::uint32_t>(frames.size());
    blob.payload = payload.take();
    writeCheckpointFile(path, blob);
}

std::uint32_t
SimulationSession::tryResumeCheckpoint(const std::string &path,
                                       const ResultKey &key)
{
    std::optional<CheckpointBlob> blob = readCheckpointFile(path, key);
    if (!blob)
        return 0;
    try {
        ByteReader r(blob->payload);
        const std::uint32_t n = r.u32();
        if (n != blob->framesDone)
            throwIoError("frame count disagrees with header");
        std::vector<FrameStats> restored;
        restored.reserve(n);
        for (std::uint32_t f = 0; f < n; ++f)
            restored.push_back(readFrameStats(r));
        sim.restoreWarmState(r);
        const StatsFragment frag = readStatsFragment(r);
        if (!r.done())
            throwIoError("trailing bytes after payload");
        // Telemetry counters are skipped: the restored cumulative
        // tracks re-assign them on the next publish(); applying the
        // fragment too would double them.
        applyStatsFragment(registry_, label_, frag,
                           /*skipTelemetry=*/true);
        frames = std::move(restored);
        return n;
    } catch (const SimError &e) {
        // A restore that failed mid-way may have left partial warm
        // state behind; reset to cold so the from-scratch rerun is
        // still bit-exact.
        warn("checkpoint: cannot restore '%s' (%s); restarting from "
             "frame 0", path.c_str(), e.what());
        sim.resetWarmState();
        frames.clear();
        return 0;
    }
}

namespace {

/**
 * Process-cumulative cache traffic line, printed after each batch when
 * the cache is armed (also what CI's cache-smoke job greps for).
 */
void
reportCacheTraffic()
{
    const ResultCache &rc = ResultCache::global();
    if (!rc.enabled())
        return;
    inform("result cache: %llu hit(s), %llu miss(es), %llu store(s), "
           "%llu resume(s)",
           static_cast<unsigned long long>(rc.hits()),
           static_cast<unsigned long long>(rc.misses()),
           static_cast<unsigned long long>(rc.stores()),
           static_cast<unsigned long long>(rc.resumes()));
}

/** Run one job start to finish on the calling thread. */
BatchResult
runJob(const BatchJob &job, StatRegistry *registry,
       std::uint32_t worker)
{
    dtexl_assert(job.scene, "BatchJob '%s' has no scene provider",
                 job.label.c_str());
    const auto t0 = std::chrono::steady_clock::now();
    const std::uint64_t trace0 = TraceWriter::nowMicros();

    BatchResult res;
    res.label = job.label;
    res.worker = worker;

    // Tag this worker's log lines and announce the pickup.
    ScopedLogJobLabel log_scope(job.label);
    if (EventBus::armed()) {
        RunEvent ev(EventKind::JobStart, job.label);
        ev.u64("worker", worker);
        EventBus::global().emit(std::move(ev));
    }

    // Fault isolation: a throw anywhere in this job — constructing
    // the simulator (bad config), providing a scene (parse error), or
    // rendering (watchdog, internal panic) — is converted into error
    // state on the job's own result. Frames completed before the
    // failure are kept; sibling jobs never see the exception.
    try {
        const std::uint32_t n = job.frames == 0 ? 1 : job.frames;
        ResultCache &rc = ResultCache::global();
        const bool keyed = rc.enabled();
        ResultKey key;
        if (keyed) {
            // Chain the per-frame scene digests (the provider is
            // called again per rendered frame below; providers serve
            // shared read-only scenes, so re-calling is free).
            Fnv1a64 chain;
            chain.u32(n);
            for (std::uint32_t f = 0; f < n; ++f)
                chain.u64(hashScene(job.scene(f)));
            key.scene = chain.value();
            key.config = hashConfig(job.cfg);
            key.build = buildFingerprint();
        }

        bool served = false;
        if (keyed && rc.readEnabled()) {
            if (std::optional<CachedResult> hit =
                    rc.store()->lookup(key)) {
                res.frames = std::move(hit->frames);
                applyStatsFragment(registry, "job." + job.label,
                                   hit->stats);
                res.cacheHit = true;
                served = true;
                rc.noteHit();
                rc.store()->appendManifest(key, "hit", job.label);
            } else {
                rc.noteMiss();
                rc.store()->appendManifest(key, "miss", job.label);
            }
        }

        if (!served) {
            const Scene &first = job.scene(0);
            SimulationSession session(job.cfg, first,
                                      "job." + job.label);
            if (registry)
                session.setStatRegistry(registry);

            std::uint32_t start = 0;
            const bool ckpt_armed =
                keyed && (rc.checkpointEvery() > 0 ||
                          rc.resumeEnabled());
            const std::string ckpt_path =
                ckpt_armed ? rc.store()->checkpointPath(key)
                           : std::string();
            if (keyed && rc.resumeEnabled()) {
                start = session.tryResumeCheckpoint(ckpt_path, key);
                if (start > n)
                    start = n;  // stale over-long checkpoint
                if (start > 0) {
                    rc.noteResume();
                    rc.store()->appendManifest(key, "resume",
                                               job.label);
                }
            }
            // Cooperative interruption, polled at frame boundaries
            // only: a hung frame is the watchdog's jurisdiction, so a
            // deadline/cancel can never tear a frame mid-render.
            auto interruptReason = [&]() -> const char * {
                if (job.cancel) {
                    const CancelToken::State st = job.cancel->state();
                    if (st == CancelToken::State::Cancel)
                        return "cancel requested";
                    if (st == CancelToken::State::Interrupt)
                        return "interrupt requested";
                }
                if (job.stopOnDrain && drainRequested())
                    return "drain signal received";
                if (job.deadlineMs > 0.0) {
                    const double elapsed =
                        std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
                    if (elapsed >= job.deadlineMs)
                        return "deadline exceeded";
                }
                return nullptr;
            };
            for (std::uint32_t f = start; f < n; ++f) {
                if (const char *why = interruptReason()) {
                    // A terminal cancel will never resume, so its
                    // checkpoint is not refreshed; every other stop
                    // keeps completed frames resumable.
                    const bool terminal =
                        job.cancel && job.cancel->state() ==
                                          CancelToken::State::Cancel;
                    if (ckpt_armed && !terminal && f > start) {
                        session.saveCheckpoint(ckpt_path, key);
                        if (EventBus::armed()) {
                            RunEvent ev(EventKind::JobCheckpoint,
                                        job.label);
                            ev.u64("frames_done", f);
                            EventBus::global().emit(std::move(ev));
                        }
                    }
                    char msg[128];
                    std::snprintf(msg, sizeof(msg),
                                  "%s at frame boundary %u of %u",
                                  why, f, n);
                    throw SimError(ErrorKind::Cancelled, msg,
                                   job.label);
                }
                if (f == 0)
                    session.renderFrame();
                else
                    session.renderFrame(job.scene(f));
                if (keyed && rc.checkpointEvery() > 0 &&
                    (f + 1) % rc.checkpointEvery() == 0 && f + 1 < n) {
                    session.saveCheckpoint(ckpt_path, key);
                    if (EventBus::armed()) {
                        RunEvent ev(EventKind::JobCheckpoint,
                                    job.label);
                        ev.u64("frames_done", f + 1);
                        EventBus::global().emit(std::move(ev));
                    }
                }
                // Transient-I/O fault site, evaluated after the
                // checkpoint write: CI arms it with a one-boundary
                // skip to prove retry resumes from the checkpoint.
                if (FaultInject::global().fire(FaultSite::FrameIoFail))
                    throwIoError("injected frame I/O failure after "
                                 "frame %u", f);
            }
            res.frames = session.history();
            if (const ExecDomainSet *doms =
                    session.gpu().rasterPipeline().execDomains())
                res.domainWallMs = doms->domainWallMs();

            if (keyed && rc.writeEnabled()) {
                CachedResult out;
                out.frames = res.frames;
                out.stats = captureStatsFragment(registry,
                                                 "job." + job.label);
                rc.store()->store(key, out);
                rc.noteStore();
                rc.store()->appendManifest(key, "store", job.label);
            }
            // The job completed; its checkpoint has served its purpose.
            if (ckpt_armed)
                std::remove(ckpt_path.c_str());
        }
    } catch (const SimError &e) {
        res.ok = false;
        res.errorKind = e.kind();
        res.error = e.describe();
        if (!e.dump().empty())
            res.crashReportPath = writeCrashReport(job.label, e);
        if (EventBus::armed()) {
            if (e.kind() == ErrorKind::Watchdog) {
                RunEvent wd(EventKind::Watchdog, job.label);
                wd.str("error", e.what());
                EventBus::global().emit(std::move(wd));
            }
            RunEvent ev(EventKind::JobError, job.label);
            ev.str("kind", toString(e.kind())).str("error", res.error);
            if (!res.crashReportPath.empty())
                ev.str("crash_report", res.crashReportPath);
            EventBus::global().emit(std::move(ev));
        }
        // Failure artifacts must not wait for a clean process exit;
        // the events flush hook drains job_error onto disk here.
        flushFailureArtifacts();
    } catch (const std::exception &e) {
        res.ok = false;
        res.errorKind = ErrorKind::Internal;
        res.error = std::string("internal: ") + e.what();
        if (EventBus::armed()) {
            RunEvent ev(EventKind::JobError, job.label);
            ev.str("kind", toString(ErrorKind::Internal))
                .str("error", res.error);
            EventBus::global().emit(std::move(ev));
        }
        flushFailureArtifacts();
    }

    res.wallMs =
        std::chrono::duration_cast<std::chrono::duration<double,
                                                         std::milli>>(
            std::chrono::steady_clock::now() - t0)
            .count();
    if (res.ok && EventBus::armed()) {
        std::uint64_t cycles = 0;
        for (const FrameStats &fs : res.frames)
            cycles += fs.totalCycles;
        RunEvent ev(EventKind::JobComplete, job.label);
        ev.u64("frames", res.frames.size())
            .u64("cycles", cycles)
            .f64("wall_ms", res.wallMs)
            .u64("cached", res.cacheHit ? 1 : 0);
        EventBus::global().emit(std::move(ev));
    }
    if (TraceWriter::global().enabled()) {
        TraceWriter::global().complete(job.label, "job", trace0,
                                       TraceWriter::nowMicros() - trace0);
    }
    return res;
}

/**
 * Result for a job skipped because a drain was requested before it
 * started. Emitted as a job_error so the ledger's run_end totals stay
 * consistent: every submitted job terminates in exactly one of
 * job_complete or job_error.
 */
BatchResult
skippedResult(const BatchJob &job, std::uint32_t worker)
{
    BatchResult res;
    res.label = job.label;
    res.worker = worker;
    res.ok = false;
    res.errorKind = ErrorKind::Cancelled;
    res.error = "cancelled: drain requested before start";
    if (EventBus::armed()) {
        RunEvent ev(EventKind::JobError, job.label);
        ev.str("kind", toString(ErrorKind::Cancelled))
            .str("error", res.error);
        EventBus::global().emit(std::move(ev));
    }
    return res;
}

} // namespace

BatchResult
runSingleJob(const BatchJob &job, StatRegistry *registry,
             std::uint32_t worker)
{
    return runJob(job, registry, worker);
}

std::vector<BatchResult>
runBatch(const std::vector<BatchJob> &jobs, unsigned numWorkers,
         StatRegistry *registry)
{
    std::vector<BatchResult> results(jobs.size());
    if (jobs.empty())
        return results;

    // First Ctrl-C/SIGTERM = cooperative drain (the frame-boundary
    // checks in runJob stop in-flight jobs, unstarted jobs are
    // skipped, the process exits 130); second = force exit. No-op if
    // a driver (dtexld) installed its own escalation first.
    installDrainHandlers(/*forceExitAt=*/2);

    // Announce the whole batch up front, in submission order, so the
    // progress meter knows its denominators before any job starts.
    if (EventBus::armed()) {
        for (std::size_t i = 0; i < jobs.size(); ++i) {
            RunEvent ev(EventKind::JobSubmit, jobs[i].label);
            ev.u64("index", i)
                .u64("frames", jobs[i].frames == 0 ? 1 : jobs[i].frames);
            EventBus::global().emit(std::move(ev));
        }
    }

    unsigned workers = numWorkers == 0 ? 1 : numWorkers;
    if (workers > jobs.size())
        workers = static_cast<unsigned>(jobs.size());

    if (workers == 1) {
        for (std::size_t i = 0; i < jobs.size(); ++i) {
            results[i] = drainRequested()
                             ? skippedResult(jobs[i], 0)
                             : runJob(jobs[i], registry, 0);
        }
        reportCacheTraffic();
        return results;
    }

    // Bounded pool over a shared atomic cursor: each worker claims the
    // next unstarted job, runs it to completion, and writes its result
    // into the job's own slot — a single writer per slot, in
    // deterministic submission order by construction.
    std::atomic<std::size_t> next{0};
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned w = 0; w < workers; ++w) {
        pool.emplace_back([&, w] {
            for (;;) {
                const std::size_t i =
                    next.fetch_add(1, std::memory_order_relaxed);
                if (i >= jobs.size())
                    return;
                results[i] = drainRequested()
                                 ? skippedResult(jobs[i], w)
                                 : runJob(jobs[i], registry, w);
            }
        });
    }
    for (std::thread &t : pool)
        t.join();
    reportCacheTraffic();
    return results;
}


int
batchExitCode(const std::vector<BatchResult> &results)
{
    std::size_t failed = 0;
    int first_code = kExitSuccess;
    bool interrupted = false;
    for (const BatchResult &r : results) {
        if (r.ok)
            continue;
        if (r.errorKind == ErrorKind::Cancelled)
            interrupted = true;
        if (failed == 0)
            first_code = exitCodeFor(r.errorKind);
        ++failed;
    }
    if (failed == 0)
        return kExitSuccess;
    // A cancelled job means the run was interrupted (signal, deadline
    // or explicit cancel): 130 beats the partial-batch bookkeeping.
    if (interrupted)
        return kExitInterrupted;
    if (failed == results.size())
        return first_code;
    return kExitPartialBatch;
}

std::size_t
reportBatchFailures(const std::vector<BatchResult> &results)
{
    std::size_t failed = 0;
    for (const BatchResult &r : results) {
        if (r.ok)
            continue;
        ++failed;
        std::fprintf(stderr, "%s FAILED: %s\n", r.label.c_str(),
                     r.error.c_str());
        if (!r.crashReportPath.empty())
            std::fprintf(stderr, "%s crash report: %s\n",
                         r.label.c_str(), r.crashReportPath.c_str());
    }
    if (failed > 0)
        std::fprintf(stderr, "%zu of %zu job(s) failed\n", failed,
                     results.size());
    return failed;
}

} // namespace dtexl

/**
 * @file
 * The Raster Pipeline (Figures 3/4/10): Tile Fetcher -> Rasterizer ->
 * Early-Z -> Fragment Stage -> Blending -> Color-Buffer flush, with
 * four parallel post-raster pipelines.
 *
 * Barrier semantics are the paper's central mechanism:
 *  - Coupled (baseline, Figure 4): Early-Z, Fragment and Blend each
 *    process one *tile* at a time — a stage admits quads of tile N+1
 *    only after every pipeline finished tile N in that stage, and the
 *    Color Buffer flushes whole tiles.
 *  - Decoupled (DTexL, Figure 10): each of the four parallel units
 *    advances to its next *subtile* independently, and each Color
 *    Buffer bank flushes on its own (it keeps its own tile ID).
 */

#ifndef DTEXL_CORE_RASTER_PIPELINE_HH
#define DTEXL_CORE_RASTER_PIPELINE_HH

#include <array>
#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/config.hh"
#include "core/exec_domain.hh"
#include "core/frame_stats.hh"
#include "core/shader_core.hh"
#include "mem/hierarchy.hh"
#include "raster/framebuffer.hh"
#include "raster/rasterizer.hh"
#include "sched/subtile_assigner.hh"
#include "sched/subtile_layout.hh"
#include "telemetry/telemetry.hh"
#include "tiling/param_buffer.hh"
#include "tiling/tile_fetcher.hh"

namespace dtexl {

/**
 * Cross-frame flush signatures for transaction elimination: CRC of the
 * last content each (tile, subtile) flushed. Owned by the simulator so
 * it survives the per-frame pipeline rebuild.
 */
struct FlushSignatures
{
    std::unordered_map<std::uint64_t, std::uint64_t> crc;
};

/** Executes the raster phase of one frame. */
class RasterPipeline
{
  public:
    /**
     * @param signatures Cross-frame flush CRCs for transaction
     *                   elimination; may be null when the feature is
     *                   disabled.
     */
    RasterPipeline(const GpuConfig &cfg, MemHierarchy &mem,
                   const Scene &scene, FrameBuffer &fb,
                   FlushSignatures *signatures = nullptr);

    /**
     * Render every tile of the frame.
     *
     * @param pb Parameter Buffer built by the Tiling Engine.
     * @param fs Frame statistics, filled in.
     * @return Cycle the last flush retires (raster-phase length).
     */
    Cycle run(const ParamBuffer &pb, FrameStats &fs);

    /**
     * Reinitialize all per-frame state in place — PipeState timing
     * fields, inter-stage FIFOs, depth/color banks, shader cores,
     * subtile-assigner traversal state, per-frame counters — so a
     * persistent pipeline starts its next frame bit-identically to a
     * freshly constructed one (the structural state built by the
     * constructor, slot maps and bank sizing, depends only on the
     * configuration and is kept).
     */
    void beginFrame();

    /**
     * Rebind the scene for the next frame (animation). The texture
     * table layout must match; see GpuSimulator::setScene().
     */
    void setScene(const Scene &next);

    ShaderCore &core(CoreId p) { return *cores[p]; }
    const StatSet &stats() const { return stats_; }

    /**
     * The execution-domain set running the partitioned fragment-stage
     * event loop, or null when raster_threads resolves to 1 (the
     * serial loop runs inline). Exposed for perf reporting
     * (per-domain wall breakdown) and tests.
     */
    const ExecDomainSet *execDomains() const { return domains.get(); }

    /**
     * Attach (or detach, with nullptr) the telemetry sink. run() then
     * attributes every non-productive cycle of the rasterizer, Early-Z,
     * Fragment and Blend units at the points where it makes the timing
     * decisions; with level 2 it also drives the time-series sampler at
     * tile boundaries.
     */
    void setTelemetry(Telemetry *t) { tel = t; }

  private:
    /** Timing/storage state of one parallel pipeline (bank + SC). */
    struct PipeState
    {
        Cycle ezFinish = 0;
        Cycle ezBusyUntil = 0;
        Cycle fsFinish = 0;
        Cycle blendFinish = 0;
        Cycle blendBusyUntil = 0;
        Cycle flushDone = 0;
        /** Raster->EZ FIFO: consume times of resident quads. */
        std::deque<Cycle> fifo;
        /** Depth per subtile slot (4 fragments each). */
        std::vector<float> depth;
        /** Color per subtile pixel (4 per slot). */
        std::vector<PixelColor> color;
        /** Surviving quads of the current tile (arena indices), EZ order. */
        std::vector<std::uint32_t> batch;
        std::vector<Cycle> arrivals;
    };

    std::uint32_t numPipes() const { return cfg.numPipelines; }
    bool singlePipe() const { return cfg.numPipelines == 1; }

    /** Pipeline that owns a quad this tile. */
    std::uint32_t pipeOf(const QuadStream &qs, std::uint32_t qi,
                         const std::array<CoreId, kNumSubtiles> &perm)
        const;
    /** Z/Color slot of a quad within its pipeline's bank. */
    std::uint32_t slotOf(const QuadStream &qs, std::uint32_t qi) const;

    /** Early-Z depth test; prunes coverage, returns survival. */
    bool earlyZTest(PipeState &ps, const QuadStream &qs,
                    std::uint32_t qi, std::uint8_t &coverage,
                    bool late_z) const;
    /** Blend a committed quad into the pipeline's color bank. */
    void blendQuad(PipeState &ps, const QuadStream &qs, std::uint32_t qi,
                   std::uint8_t coverage, bool late_z);
    /**
     * Flush a set of subtile slots to the framebuffer through the Tile
     * Cache; returns the completion cycle. With transaction
     * elimination, an unchanged bank (same CRC as the last frame's
     * flush of this tile/subtile) skips the timed writes.
     *
     * @param subtile Subtile index the bank held this tile (CRC key).
     */
    Cycle flushBank(PipeState &ps, Coord2 tile_coord,
                    std::uint8_t subtile,
                    const std::vector<Coord2> &slot_to_quad, Cycle start,
                    FrameStats &fs);

    /**
     * Watchdog crash-report dump: per-pipe stage gates and FIFO/credit
     * state, in-flight miss state of every memory level, and per-unit
     * telemetry occupancy when telemetry is attached.
     */
    std::string pipelineDump(std::uint32_t tile_sequence) const;

    const GpuConfig &cfg;
    MemHierarchy &mem;
    const Scene *scene;
    FrameBuffer &fb;
    FlushSignatures *signatures;

    SubtileLayout layout;
    SubtileAssigner assigner;
    Rasterizer rasterizer;
    std::array<std::unique_ptr<ShaderCore>, kNumSubtiles> cores;
    std::array<PipeState, kNumSubtiles> pipes;
    /** Partitioned fragment-stage executor; null = serial loop. */
    std::unique_ptr<ExecDomainSet> domains;

    /** slot -> quad coords, per subtile (single-pipe: whole tile). */
    std::array<std::vector<Coord2>, kNumSubtiles> slotToQuad;

    /**
     * Pooled per-frame scratch (simFastPath spirit, but value-neutral:
     * contents are fully rewritten per tile, so reusing capacity
     * cannot change results). quadArena holds the current tile's
     * rasterized quads in SoA layout (each pass touches only the
     * field arrays it needs); beginFrame() resets length, keeping
     * capacity, so steady-state frames rasterize without heap traffic.
     */
    QuadStream quadArena;
    /** flushBank() fast-path scratch: one line address per pixel. */
    std::vector<Addr> flushAddrs;

    StatSet stats_{"raster_pipeline"};

    /**
     * Cached references into stats_ for the per-quad counters (see
     * Cache::HotStats); re-bound by beginFrame() because the per-frame
     * stats_.clear() erases the keys.
     */
    struct HotStats
    {
        std::uint64_t *hizCulled = nullptr;
        std::uint64_t *ezTests = nullptr;
        std::uint64_t *blendOps = nullptr;
        std::uint64_t *flushEliminated = nullptr;
        std::uint64_t *flushPartialLines = nullptr;
        std::uint64_t *flushLineWrites = nullptr;
    };
    HotStats hot;
    /** Re-bind the cached stat references (stats_ clears per frame). */
    void bindStats();

    /** Telemetry sink; null (and inert) when telemetry is off. */
    Telemetry *tel = nullptr;
};

} // namespace dtexl

#endif // DTEXL_CORE_RASTER_PIPELINE_HH

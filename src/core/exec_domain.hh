/**
 * @file
 * Execution domains for the timed raster event loop.
 *
 * The four post-raster pipelines (Early-Z / Fragment / Blend per
 * subtile bank, each with its own shader core and private L1 texture
 * cache) are the natural partition of the paper's architecture: almost
 * all of a frame's simulation time is spent in the fragment-stage
 * event loop, whose cores couple *only* through the order of their
 * misses at the shared L2/DRAM. An ExecDomainSet splits the cores into
 * contiguous domains, runs each domain's slice of the event loop on
 * its own WorkerPool thread (gang-scheduled: every domain is
 * guaranteed a concurrent thread), and commits the shared-level
 * traffic in cycle order through the DomainMerge protocol
 * (common/channel.hh) armed on the per-pipe L2 gates
 * (mem/hierarchy.hh). Domain outcomes come back over a bounded
 * Channel and are committed in domain order.
 *
 * Because the merge reproduces the serial loop's shared-access order
 * exactly and everything else a domain touches is domain-private
 * (its cores, their warps and stats, the private texture L1s, the
 * per-pipe telemetry tracks), FrameStats, the image hash and every
 * registry counter are bit-identical for every domain count —
 * enforced by tests/test_raster_domains.cc on every preset and under
 * the ThreadSanitizer CI job.
 */

#ifndef DTEXL_CORE_EXEC_DOMAIN_HH
#define DTEXL_CORE_EXEC_DOMAIN_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "common/channel.hh"
#include "common/config.hh"
#include "common/worker_pool.hh"
#include "core/shader_core.hh"
#include "mem/hierarchy.hh"

namespace dtexl {

/**
 * One execution domain: a contiguous slice of the pipeline array.
 * The domain owns those pipes' shader cores, their private L1 texture
 * caches and their L2 gates for the duration of a fragment stage.
 */
struct ExecDomain
{
    std::uint32_t firstPipe = 0;
    std::uint32_t numPipes = 0;
};

/** Partitioned fragment-stage executor owned by one RasterPipeline. */
class ExecDomainSet
{
  public:
    /**
     * Partition @p numPipes pipelines into
     * cfg.resolvedRasterThreads() domains (sizes as even as possible,
     * contiguous) and arm a worker pool with one thread per domain.
     */
    ExecDomainSet(const GpuConfig &cfg, MemHierarchy &mem,
                  std::uint32_t numPipes);

    std::uint32_t
    numDomains() const
    {
        return static_cast<std::uint32_t>(domains_.size());
    }

    /**
     * Run one tile's fragment stage partitioned across the domains;
     * drop-in replacement for ShaderCore::runBatches() with identical
     * results. If any domain throws (watchdog), every other domain
     * still runs to completion — the merge is unblocked by the
     * unwinding domain's finish() — and the lowest-indexed domain's
     * exception is rethrown.
     */
    std::vector<ShaderCore::BatchResult>
    run(const std::vector<ShaderCore *> &cores,
        const std::vector<ShaderCore::BatchInput> &inputs);

    /**
     * Cumulative host wall time each domain spent executing its event
     * loop slice, in milliseconds (perf reporting; never part of
     * simulated state).
     */
    const std::vector<double> &domainWallMs() const { return wallMs_; }

  private:
    /** One domain's per-tile outcome, sent over the channel. */
    struct Outcome
    {
        std::uint32_t domain = 0;
        std::vector<ShaderCore::BatchResult> results;
    };

    const GpuConfig &cfg;
    MemHierarchy &mem;
    std::vector<ExecDomain> domains_;
    DomainMerge merge;
    Channel<Outcome> outcomes;
    std::unique_ptr<WorkerPool> pool;
    std::vector<double> wallMs_;
};

} // namespace dtexl

#endif // DTEXL_CORE_EXEC_DOMAIN_HH

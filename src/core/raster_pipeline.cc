#include "core/raster_pipeline.hh"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <sstream>

#include "common/fault_inject.hh"
#include "common/log.hh"
#include "common/sim_error.hh"

namespace dtexl {

RasterPipeline::RasterPipeline(const GpuConfig &cfg, MemHierarchy &mem,
                               const Scene &scene, FrameBuffer &fb,
                               FlushSignatures *signatures)
    : cfg(cfg), mem(mem), scene(&scene), fb(fb), signatures(signatures),
      layout(cfg.grouping, cfg.quadsPerTileSide()),
      assigner(cfg.assignment, layout), rasterizer(cfg)
{
    const std::uint32_t n = cfg.quadsPerTileSide();
    const std::uint32_t slots =
        singlePipe() ? n * n : layout.quadsPerSubtile();
    for (std::uint32_t p = 0; p < numPipes(); ++p) {
        cores[p] = std::make_unique<ShaderCore>(
            static_cast<CoreId>(p), cfg, mem, *this->scene);
        pipes[p].depth.assign(std::size_t{slots} * 4, 1.0f);
        pipes[p].color.assign(std::size_t{slots} * 4, kClearColor);
    }
    // Partition the fragment-stage event loop into execution domains
    // when asked to; raster_threads=1 (the default) keeps the serial
    // loop with no worker pool, no gates armed, no merge protocol.
    if (!singlePipe() && cfg.resolvedRasterThreads() > 1)
        domains = std::make_unique<ExecDomainSet>(cfg, mem, numPipes());

    if (singlePipe()) {
        slotToQuad[0].resize(std::size_t{n} * n);
        for (std::uint32_t y = 0; y < n; ++y)
            for (std::uint32_t x = 0; x < n; ++x)
                slotToQuad[0][std::size_t{y} * n + x] =
                    Coord2{static_cast<std::int32_t>(x),
                           static_cast<std::int32_t>(y)};
    } else {
        for (std::uint8_t s = 0; s < kNumSubtiles; ++s)
            slotToQuad[s].resize(layout.quadsPerSubtile());
        for (std::uint32_t y = 0; y < n; ++y) {
            for (std::uint32_t x = 0; x < n; ++x) {
                const Coord2 q{static_cast<std::int32_t>(x),
                               static_cast<std::int32_t>(y)};
                slotToQuad[layout.subtileOf(q)][layout.slotOf(q)] = q;
            }
        }
    }
    bindStats();
}

void
RasterPipeline::bindStats()
{
    hot.hizCulled = &stats_.handle("hiz_culled");
    hot.ezTests = &stats_.handle("ez_tests");
    hot.blendOps = &stats_.handle("blend_ops");
    hot.flushEliminated = &stats_.handle("flush_eliminated");
    hot.flushPartialLines = &stats_.handle("flush_partial_lines");
    hot.flushLineWrites = &stats_.handle("flush_line_writes");
}

void
RasterPipeline::beginFrame()
{
    for (std::uint32_t p = 0; p < numPipes(); ++p) {
        PipeState &ps = pipes[p];
        ps.ezFinish = 0;
        ps.ezBusyUntil = 0;
        ps.fsFinish = 0;
        ps.blendFinish = 0;
        ps.blendBusyUntil = 0;
        ps.flushDone = 0;
        ps.fifo.clear();
        std::fill(ps.depth.begin(), ps.depth.end(), 1.0f);
        std::fill(ps.color.begin(), ps.color.end(), kClearColor);
        ps.batch.clear();
        ps.arrivals.clear();
        cores[p]->beginFrame();
    }
    assigner.reset();
    quadArena.clear();
    flushAddrs.clear();
    stats_.clear();
    bindStats();
}

void
RasterPipeline::setScene(const Scene &next)
{
    scene = &next;
    for (std::uint32_t p = 0; p < numPipes(); ++p)
        cores[p]->setScene(next);
}

std::uint32_t
RasterPipeline::pipeOf(const QuadStream &qs, std::uint32_t qi,
                       const std::array<CoreId, kNumSubtiles> &perm) const
{
    return singlePipe() ? 0u : perm[qs.subtile(qi)];
}

std::uint32_t
RasterPipeline::slotOf(const QuadStream &qs, std::uint32_t qi) const
{
    if (singlePipe()) {
        const Coord2 qc = qs.quadInTile(qi);
        return static_cast<std::uint32_t>(qc.y) *
                   cfg.quadsPerTileSide() +
               static_cast<std::uint32_t>(qc.x);
    }
    return qs.slot(qi);
}

bool
RasterPipeline::earlyZTest(PipeState &ps, const QuadStream &qs,
                           std::uint32_t qi, std::uint8_t &coverage,
                           bool late_z) const
{
    if (late_z)
        return true;  // test deferred to the Late Z-Test at blending
    const std::uint32_t base = slotOf(qs, qi) * 4;
    const bool blends = qs.prim(qi)->shader.blends;
    std::uint8_t out = 0;
    for (unsigned k = 0; k < 4; ++k) {
        if (!(coverage & (1u << k)))
            continue;
        float &stored = ps.depth[base + k];
        const float d = qs.depth(qi, k);
        if (d < stored) {
            out |= static_cast<std::uint8_t>(1u << k);
            if (!blends)
                stored = d;
        }
    }
    coverage = out;
    return out != 0;
}

void
RasterPipeline::blendQuad(PipeState &ps, const QuadStream &qs,
                          std::uint32_t qi, std::uint8_t coverage,
                          bool late_z)
{
    const std::uint32_t base = slotOf(qs, qi) * 4;
    const Primitive *prim = qs.prim(qi);
    for (unsigned k = 0; k < 4; ++k) {
        if (!(coverage & (1u << k)))
            continue;
        if (late_z) {
            float &stored = ps.depth[base + k];
            const float d = qs.depth(qi, k);
            if (!(d < stored))
                continue;
            if (!prim->shader.blends)
                stored = d;
        }
        ps.color[base + k] =
            blendPixel(ps.color[base + k],
                       shadeColor(prim->id, static_cast<std::uint32_t>(k)),
                       prim->shader.blends);
    }
}

Cycle
RasterPipeline::flushBank(PipeState &ps, Coord2 tile_coord,
                          std::uint8_t subtile,
                          const std::vector<Coord2> &slot_to_quad,
                          Cycle start, FrameStats &fs)
{
    // Copy the bank's pixels into the frame image and count how many
    // of each framebuffer line's pixels this bank produces. The fast
    // path collects one address per pixel into a pooled scratch vector
    // and sorts it; the reference path counts in a std::map. Both
    // visit the distinct lines in ascending address order with the
    // same per-line pixel counts, so the timed writes are identical.
    const bool fast = cfg.simFastPath;
    std::map<Addr, std::uint32_t> line_pixels;
    if (fast)
        flushAddrs.clear();
    std::uint64_t crc = 0xcbf29ce484222325ull;
    const std::int32_t px0 = tile_coord.x *
                             static_cast<std::int32_t>(cfg.tileSize);
    const std::int32_t py0 = tile_coord.y *
                             static_cast<std::int32_t>(cfg.tileSize);
    for (std::size_t slot = 0; slot < slot_to_quad.size(); ++slot) {
        const Coord2 qc = slot_to_quad[slot];
        for (unsigned k = 0; k < 4; ++k) {
            const std::int32_t px = px0 + qc.x * 2 +
                                    static_cast<std::int32_t>(k % 2);
            const std::int32_t py = py0 + qc.y * 2 +
                                    static_cast<std::int32_t>(k / 2);
            if (px >= static_cast<std::int32_t>(cfg.screenWidth) ||
                py >= static_cast<std::int32_t>(cfg.screenHeight)) {
                continue;  // partial edge tile
            }
            fb.setPixel(static_cast<std::uint32_t>(px),
                        static_cast<std::uint32_t>(py),
                        ps.color[slot * 4 + k]);
            crc = (crc ^ ps.color[slot * 4 + k]) * 0x100000001b3ull;
            const Addr line =
                fb.pixelAddr(static_cast<std::uint32_t>(px),
                             static_cast<std::uint32_t>(py)) &
                ~Addr{cfg.tileCache.lineBytes - 1};
            if (fast)
                flushAddrs.push_back(line);
            else
                ++line_pixels[line];
        }
    }

    // Transaction elimination: skip the timed writes when the bank's
    // content is identical to what this (tile, subtile) flushed last
    // frame.
    if (cfg.transactionElimination && signatures) {
        const std::uint64_t key =
            (static_cast<std::uint64_t>(tile_coord.y) * cfg.tilesX() +
             static_cast<std::uint64_t>(tile_coord.x)) *
                kNumSubtiles +
            subtile;
        auto it = signatures->crc.find(key);
        if (it != signatures->crc.end() && it->second == crc) {
            ++fs.flushesEliminated;
            ++*hot.flushEliminated;
            std::fill(ps.color.begin(), ps.color.end(), kClearColor);
            return start;
        }
        signatures->crc[key] = crc;
    }

    // One line write per cycle through the Tile Cache, as posted
    // (write-combined) stores: flushes never hold cache MSHRs. Lines
    // fully covered by this bank's pixels are pure streaming stores;
    // partially covered lines (fine-grained groupings flushing per
    // bank) read-modify-write, occupying a second port slot.
    const std::uint32_t full = cfg.tileCache.lineBytes / 4;
    Cycle issue = start;
    Cycle done = start;
    auto emit_line = [&](Addr line, std::uint32_t pixels) {
        done = std::max(done, mem.tileCache().writeLine(line, issue));
        ++issue;
        if (pixels < full) {
            ++issue;  // RMW merge occupies an extra slot
            ++*hot.flushPartialLines;
        }
        ++*hot.flushLineWrites;
    };
    if (fast) {
        std::sort(flushAddrs.begin(), flushAddrs.end());
        for (std::size_t i = 0; i < flushAddrs.size();) {
            std::size_t j = i + 1;
            while (j < flushAddrs.size() &&
                   flushAddrs[j] == flushAddrs[i]) {
                ++j;
            }
            emit_line(flushAddrs[i],
                      static_cast<std::uint32_t>(j - i));
            i = j;
        }
    } else {
        for (const auto &[line, pixels] : line_pixels)
            emit_line(line, pixels);
    }

    // Reset the bank for its next subtile.
    std::fill(ps.color.begin(), ps.color.end(), kClearColor);
    return done;
}

std::string
RasterPipeline::pipelineDump(std::uint32_t tile_sequence) const
{
    std::ostringstream os;
    os << "raster pipeline at tile " << tile_sequence << " ("
       << (cfg.decoupledBarriers ? "decoupled" : "coupled")
       << " barriers, FIFO depth " << cfg.stageFifoDepth << ")\n";
    for (std::uint32_t p = 0; p < numPipes(); ++p) {
        const PipeState &ps = pipes[p];
        os << "  pipe " << p << ": ez " << ps.ezFinish << " fs "
           << ps.fsFinish << " blend " << ps.blendFinish << " flush "
           << ps.flushDone << " | fifo " << ps.fifo.size() << "/"
           << cfg.stageFifoDepth;
        if (!ps.fifo.empty())
            os << " (front " << ps.fifo.front() << ", back "
               << ps.fifo.back() << ")";
        os << "\n";
    }
    os << "memory in flight\n" << mem.dumpInFlight();
    if (tel && tel->counters()) {
        os << "telemetry occupancy (busy/stall cycles)\n";
        for (std::size_t u = 0; u < kNumTelemetryUnits; ++u) {
            const auto unit = static_cast<TelemetryUnit>(u);
            const UnitTrack &t = tel->track(unit);
            if (t.liveBusyCycles() == 0 && t.liveStallCycles() == 0)
                continue;
            os << "  " << unitName(unit) << ": busy "
               << t.liveBusyCycles() << ", stall "
               << t.liveStallCycles() << "\n";
        }
    }
    return os.str();
}

Cycle
RasterPipeline::run(const ParamBuffer &pb, FrameStats &fs)
{
    TileFetcher fetcher(cfg, mem, pb);
    const std::uint32_t n_pipes = numPipes();
    const bool coupled = !cfg.decoupledBarriers;
    // Attribution monitor: null when telemetry is off, so every hook
    // below is a single pointer test on the hot path.
    Telemetry *const tmon = (tel && tel->counters()) ? tel : nullptr;

    // Current tile's quads, raster order — the pooled SoA arena, so
    // steady-state tiles rasterize into already-grown storage.
    QuadStream &quads = quadArena;
    quads.clear();
    // Per-tile temporaries hoisted out of the tile loop so their
    // capacity is reused; every element is rewritten per tile.
    std::vector<ShaderCore *> core_ptrs;
    std::vector<ShaderCore::BatchInput> batch_inputs;
    std::vector<float> hiz_quad_max;
    std::vector<float> hiz_block_max;
    std::vector<double> t_samples(4), q_samples(4);
    Cycle frame_end = 0;
    Cycle watchdog_progress = 0; // last tile's frame_end (watchdog)
    Cycle fetch_cursor = 0;      // when the fetcher may start a tile
    Cycle rast_free = 0;         // when the rasterizer may start a tile
    Cycle emit_cycle = 0;        // current emission cycle
    std::uint32_t emitted_this_cycle = 0;
    Cycle shared_flush_done = 0; // coupled: whole-tile flush completion
    std::deque<Cycle> rast_start_history;  // for 2-deep tile prefetch

    std::array<Cycle, kNumSubtiles> prev_fs_finish{};

    while (!fetcher.done()) {
        // --- Tile Fetcher (runs up to two tiles ahead) ---
        if (rast_start_history.size() >= 2) {
            fetch_cursor =
                std::max(fetch_cursor, rast_start_history.front());
            rast_start_history.pop_front();
        }
        FetchedTile tile = fetcher.fetchNext(fetch_cursor);
        fetch_cursor = tile.readyAt;

        // --- Rasterize the tile (functional) ---
        quads.clear();
        bool late_z = false;
        for (const Primitive *prim : tile.prims) {
            rasterizer.rasterize(*prim, tile.coord, quads);
            late_z |= prim->shader.modifiesDepth;
        }
        fs.quadsRasterized += quads.size();

        // --- Schedule: grouping + assignment ---
        const std::array<CoreId, kNumSubtiles> perm =
            assigner.next(tile.coord);
        const auto n_tile_quads = static_cast<std::uint32_t>(
            quads.size());
        if (!singlePipe()) {
            for (std::uint32_t qi = 0; qi < n_tile_quads; ++qi) {
                const Coord2 qc = quads.quadInTile(qi);
                quads.setSubtile(qi, layout.subtileOf(qc));
                quads.setSlot(qi, static_cast<std::uint16_t>(
                                      layout.slotOf(qc)));
            }
        }
        std::array<std::uint8_t, kNumSubtiles> inv_perm{};
        if (!singlePipe()) {
            for (std::uint8_t s = 0; s < kNumSubtiles; ++s)
                inv_perm[perm[s]] = s;
        }

        // --- Per-stage gates for this tile ---
        std::array<Cycle, kNumSubtiles> ez_gate{}, fs_gate{},
            blend_gate{};
        Cycle ez_gate_all = 0, fs_gate_all = 0, blend_gate_all = 0;
        for (std::uint32_t p = 0; p < n_pipes; ++p) {
            ez_gate_all = std::max(ez_gate_all, pipes[p].ezFinish);
            fs_gate_all = std::max(fs_gate_all, pipes[p].fsFinish);
            blend_gate_all =
                std::max(blend_gate_all, pipes[p].blendFinish);
        }
        // Cross-pipe blend barrier before the flush component folds in
        // (telemetry classifies BarrierWait vs DownstreamBackpressure
        // by which component binds).
        const Cycle blend_fin_all = blend_gate_all;
        blend_gate_all = std::max(blend_gate_all, shared_flush_done);
        for (std::uint32_t p = 0; p < n_pipes; ++p) {
            ez_gate[p] = coupled ? ez_gate_all : pipes[p].ezFinish;
            fs_gate[p] = coupled ? fs_gate_all : pipes[p].fsFinish;
            blend_gate[p] =
                coupled ? blend_gate_all
                        : std::max(pipes[p].blendFinish,
                                   pipes[p].flushDone);
        }

        // --- Reset per-tile state ---
        for (std::uint32_t p = 0; p < n_pipes; ++p) {
            PipeState &ps = pipes[p];
            std::fill(ps.depth.begin(), ps.depth.end(), 1.0f);
            ps.batch.clear();
            ps.arrivals.clear();
        }

        // --- Emission + Early-Z, in raster order ---
        const Cycle rast_start = std::max(rast_free, tile.readyAt);
        rast_start_history.push_back(rast_start);
        if (tmon && rast_start > rast_free) {
            // The rasterizer sat waiting for the Tile Fetcher.
            tmon->track(TelemetryUnit::Raster)
                .span(rast_free, rast_start, StallReason::UpstreamStarve);
        }
        if (rast_start > emit_cycle) {
            emit_cycle = rast_start;
            emitted_this_cycle = 0;
        }
        std::array<Cycle, kNumSubtiles> last_consume;
        for (std::uint32_t p = 0; p < n_pipes; ++p)
            last_consume[p] = ez_gate[p];

        // Hierarchical-Z (optional extension): conservative per-block
        // max depth over the tile; a quad entirely behind its block's
        // farthest written depth is culled in the rasterizer's coarse
        // stage, before emission.
        const std::uint32_t n_quads_side = cfg.quadsPerTileSide();
        const std::uint32_t hiz_blocks_side = divCeil(n_quads_side, 4);
        const bool use_hiz = cfg.hierarchicalZ && !late_z;
        if (use_hiz) {
            hiz_quad_max.assign(
                std::size_t{n_quads_side} * n_quads_side, 1.0f);
            hiz_block_max.assign(
                std::size_t{hiz_blocks_side} * hiz_blocks_side, 1.0f);
        }
        auto hiz_block_of = [&](const Coord2 &qc) {
            return static_cast<std::size_t>(qc.y / 4) *
                       hiz_blocks_side +
                   static_cast<std::size_t>(qc.x / 4);
        };

        for (std::uint32_t qi = 0; qi < n_tile_quads; ++qi) {
            const Coord2 q_coord = quads.quadInTile(qi);
            if (use_hiz) {
                float q_min = 1.0f;
                for (unsigned k = 0; k < 4; ++k)
                    if (quads.covered(qi, k))
                        q_min = std::min(q_min, quads.depth(qi, k));
                if (!(q_min < hiz_block_max[hiz_block_of(q_coord)])) {
                    ++fs.quadsCulledHiZ;
                    ++*hot.hizCulled;
                    continue;
                }
            }
            const std::uint32_t p = pipeOf(quads, qi, perm);
            PipeState &ps = pipes[p];

            // Fault harness: a leaked credit is a FIFO slot occupied
            // by an entry whose consume cycle never comes; once it
            // reaches the head, emission stalls forever and the
            // watchdog below must catch it (disarmed cost: one
            // relaxed load).
            if (FaultInject::global().fire(FaultSite::BarrierCreditLeak))
                ps.fifo.push_back(kFaultStallCycle);

            // Rasterizer emission slot (peak throughput + FIFO
            // back-pressure from the slowest pipeline).
            if (emitted_this_cycle >= cfg.rasterQuadsPerCycle) {
                ++emit_cycle;
                emitted_this_cycle = 0;
            }
            Cycle e = emit_cycle;
            if (ps.fifo.size() >= cfg.stageFifoDepth) {
                e = std::max(e, ps.fifo.front());
                ps.fifo.pop_front();
                if (e > emit_cycle) {
                    // Rasterizer head-of-line stall: the slowest
                    // pipeline's full FIFO blocks all emission.
                    if (tmon) {
                        tmon->track(TelemetryUnit::Raster)
                            .span(emit_cycle, e,
                                  StallReason::DownstreamBackpressure);
                    }
                    emit_cycle = e;
                    emitted_this_cycle = 0;
                }
            }
            ++emitted_this_cycle;
            if (tmon)
                tmon->track(TelemetryUnit::Raster).busy(e, e + 1);

            // Early-Z consumes 1 quad/cycle per pipeline.
            const Cycle c = std::max({e, ez_gate[p],
                                      ps.ezBusyUntil + 1});
            if (tmon) {
                // The gap up to this consume is either the tile
                // barrier (gate at least as late as the quad's
                // arrival) or waiting on the rasterizer. Decoupled
                // barriers make the gate the pipe's own finish, which
                // the watermark already covers — BarrierWait is then
                // exactly zero (tests/test_telemetry.cc).
                UnitTrack &t = tmon->track(ezUnit(p));
                t.stall(c, ez_gate[p] >= e ? StallReason::BarrierWait
                                           : StallReason::UpstreamStarve);
                t.busy(c, c + 1);
            }
            ps.ezBusyUntil = c;
            ps.fifo.push_back(c);
            last_consume[p] = std::max(last_consume[p], c);
            ++*hot.ezTests;

            std::uint8_t coverage = quads.coverage(qi);
            if (earlyZTest(ps, quads, qi, coverage, late_z)) {
                // Update the conservative HiZ pyramid: an opaque quad
                // covering all four fragments lowers its cell's
                // farthest depth.
                if (use_hiz && !quads.prim(qi)->shader.blends &&
                    coverage == 0xF) {
                    float q_max = 0.0f;
                    for (unsigned k = 0; k < 4; ++k)
                        q_max = std::max(q_max, quads.depth(qi, k));
                    const std::size_t cell =
                        static_cast<std::size_t>(q_coord.y) *
                            n_quads_side +
                        static_cast<std::size_t>(q_coord.x);
                    if (q_max < hiz_quad_max[cell]) {
                        hiz_quad_max[cell] = q_max;
                        // Recompute the block's max lazily.
                        const Coord2 base{(q_coord.x / 4) * 4,
                                          (q_coord.y / 4) * 4};
                        float bm = 0.0f;
                        for (std::int32_t dy = 0; dy < 4; ++dy) {
                            for (std::int32_t dx = 0; dx < 4; ++dx) {
                                const std::int32_t xx = base.x + dx;
                                const std::int32_t yy = base.y + dy;
                                if (xx >= static_cast<std::int32_t>(
                                              n_quads_side) ||
                                    yy >= static_cast<std::int32_t>(
                                              n_quads_side)) {
                                    continue;
                                }
                                bm = std::max(
                                    bm,
                                    hiz_quad_max[static_cast<
                                                     std::size_t>(yy) *
                                                     n_quads_side +
                                                 static_cast<
                                                     std::size_t>(xx)]);
                            }
                        }
                        hiz_block_max[hiz_block_of(q_coord)] = bm;
                    }
                }
                quads.setCoverage(qi, coverage);
                ps.batch.push_back(qi);
                ps.arrivals.push_back(c + 1);
            } else {
                ++fs.quadsCulledEarlyZ;
            }
        }
        rast_free = emit_cycle;
        for (std::uint32_t p = 0; p < n_pipes; ++p)
            pipes[p].ezFinish = last_consume[p];

        // --- Fragment Stage: one subtile per SC, all SCs executing
        //     concurrently in one interleaved event loop ---
        core_ptrs.clear();
        batch_inputs.clear();
        for (std::uint32_t p = 0; p < n_pipes; ++p) {
            core_ptrs.push_back(cores[p].get());
            batch_inputs.push_back({&quads, &pipes[p].batch,
                                    &pipes[p].arrivals, fs_gate[p]});
        }
        std::vector<ShaderCore::BatchResult> results;
        try {
            results = domains
                          ? domains->run(core_ptrs, batch_inputs)
                          : ShaderCore::runBatches(core_ptrs,
                                                   batch_inputs);
        } catch (const SimError &e) {
            if (e.kind() != ErrorKind::Watchdog)
                throw;
            // Augment the shader-core dump with the pipeline's own
            // barrier/credit and memory state before unwinding.
            throw SimError(ErrorKind::Watchdog, e.what(), e.context(),
                           e.dump() + pipelineDump(tile.sequence));
        }

        std::array<Cycle, kNumSubtiles> busy{};
        for (std::uint32_t p = 0; p < n_pipes; ++p) {
            PipeState &ps = pipes[p];
            const ShaderCore::BatchResult &br = results[p];
            ps.fsFinish = std::max(fs_gate[p], br.finish);
            busy[p] = ps.batch.empty() ? 0 : br.finish - br.start;
            fs.quadsShaded += ps.batch.size();
            fs.quadsPerSc[p] += ps.batch.size();
            if (!ps.batch.empty()) {
                fs.barrierIdleCycles[p] +=
                    br.start > prev_fs_finish[p]
                        ? br.start - prev_fs_finish[p]
                        : 0;
            }
            if (tmon && !ps.batch.empty()) {
                // SC buckets per batch, telescoping to the final
                // fsFinish: [prev finish, gate) is the tile barrier,
                // [gate, start) waits on Early-Z output, issue cycles
                // are busy, and the rest of [start, finish) has no
                // ready warp (all blocked on texture).
                UnitTrack &t = tmon->track(scUnit(p));
                if (fs_gate[p] > prev_fs_finish[p])
                    t.add(StallReason::BarrierWait,
                          fs_gate[p] - prev_fs_finish[p]);
                if (br.start > fs_gate[p])
                    t.add(StallReason::UpstreamStarve,
                          br.start - fs_gate[p]);
                t.addBusy(br.issues);
                const Cycle active = br.finish - br.start;
                if (active > br.issues)
                    t.add(StallReason::NoReadyWarp,
                          active - br.issues);
            }
            prev_fs_finish[p] = ps.fsFinish;

            // --- Blending: in-order commit, 1 quad/cycle ---
            Cycle last_commit = blend_gate[p];
            for (std::size_t i = 0; i < ps.batch.size(); ++i) {
                const Cycle commit =
                    std::max({blend_gate[p], ps.blendBusyUntil + 1,
                              br.completion[i]});
                if (tmon) {
                    // Classify the gap up to this commit: the fragment
                    // result arriving last is upstream; otherwise the
                    // gate binds — split it into the flush component
                    // (DownstreamBackpressure) vs the coupled
                    // cross-pipe barrier, whichever is later. With
                    // decoupled barriers there is no cross-pipe
                    // component, so BarrierWait is exactly zero.
                    const Cycle barrier = coupled ? blend_fin_all : 0;
                    const Cycle flushc =
                        coupled ? shared_flush_done : ps.flushDone;
                    StallReason r;
                    if (br.completion[i] >= blend_gate[p])
                        r = StallReason::UpstreamStarve;
                    else if (flushc >= barrier)
                        r = StallReason::DownstreamBackpressure;
                    else
                        r = StallReason::BarrierWait;
                    UnitTrack &t = tmon->track(blendUnit(p));
                    t.stall(commit, r);
                    t.busy(commit, commit + 1);
                }
                ps.blendBusyUntil = commit;
                last_commit = std::max(last_commit, commit);
                blendQuad(ps, quads, ps.batch[i],
                          quads.coverage(ps.batch[i]), late_z);
                ++*hot.blendOps;
            }
            ps.blendFinish = last_commit;
        }

        // --- Balance samples (Figures 14/15) ---
        if (n_pipes == 4) {
            std::uint64_t total_quads = 0;
            for (std::uint32_t p = 0; p < 4; ++p) {
                t_samples[p] = static_cast<double>(busy[p]);
                q_samples[p] =
                    static_cast<double>(pipes[p].batch.size());
                total_quads += pipes[p].batch.size();
            }
            if (total_quads > 0) {
                fs.tileTimeDeviation.add(normMeanDeviation(t_samples));
                fs.tileQuadDeviation.add(normMeanDeviation(q_samples));
            }
        }

        // --- Color Buffer flush ---
        if (coupled) {
            Cycle flush_start = 0;
            for (std::uint32_t p = 0; p < n_pipes; ++p)
                flush_start = std::max(flush_start,
                                       pipes[p].blendFinish);
            Cycle done = flush_start;
            for (std::uint32_t p = 0; p < n_pipes; ++p) {
                done = std::max(
                    done, flushBank(pipes[p], tile.coord, inv_perm[p],
                                    slotToQuad[inv_perm[p]],
                                    flush_start, fs));
            }
            shared_flush_done = done;
            for (std::uint32_t p = 0; p < n_pipes; ++p)
                pipes[p].flushDone = done;
            frame_end = std::max(frame_end, done);
        } else {
            for (std::uint32_t p = 0; p < n_pipes; ++p) {
                PipeState &ps = pipes[p];
                ps.flushDone = flushBank(ps, tile.coord, inv_perm[p],
                                         slotToQuad[inv_perm[p]],
                                         ps.blendFinish, fs);
                frame_end = std::max(frame_end, ps.flushDone);
            }
        }

        // Forward-progress watchdog at tile granularity: a stuck
        // barrier credit (a FIFO entry that never drains) drags every
        // downstream stage of this tile to an unreachable cycle, so
        // the tile's completion jumping more than the budget past the
        // previous tile's means the pipeline is wedged, not slow.
        if (cfg.watchdogCycles != 0 && frame_end > watchdog_progress &&
            frame_end - watchdog_progress > cfg.watchdogCycles) {
            std::ostringstream msg;
            msg << "no forward progress: tile " << tile.sequence
                << " completes at cycle " << frame_end << ", "
                << (frame_end - watchdog_progress)
                << " cycles past the previous tile (budget "
                << cfg.watchdogCycles
                << "; watchdog_cycles=0 disables)";
            throw SimError(ErrorKind::Watchdog, msg.str(), "",
                           pipelineDump(tile.sequence));
        }
        watchdog_progress = std::max(watchdog_progress, frame_end);

        // Time-series sampling at tile granularity (level 2).
        if (tmon && tmon->sampling())
            tmon->maybeSample(frame_end);

        if (const char *dbg = getenv("DTEXL_TRACE_TILES")) {
            if (tile.sequence <
                static_cast<std::uint32_t>(atoi(dbg))) {
                std::fprintf(stderr,
                    "tile %3u prims %3zu quads %4zu | fetch %llu rastS "
                    "%llu rastE %llu | ez %llu | fs %llu,%llu,%llu,"
                    "%llu | bl %llu | fl %llu\n",
                    tile.sequence, tile.prims.size(), quads.size(),
                    (unsigned long long)tile.readyAt,
                    (unsigned long long)rast_start,
                    (unsigned long long)rast_free,
                    (unsigned long long)pipes[0].ezFinish,
                    (unsigned long long)pipes[0].fsFinish,
                    (unsigned long long)pipes[1].fsFinish,
                    (unsigned long long)pipes[2].fsFinish,
                    (unsigned long long)pipes[3].fsFinish,
                    (unsigned long long)pipes[0].blendFinish,
                    (unsigned long long)pipes[0].flushDone);
            }
        }
    }

    for (std::uint32_t p = 0; p < n_pipes; ++p)
        frame_end = std::max(frame_end, pipes[p].fsFinish);
    return frame_end;
}

} // namespace dtexl

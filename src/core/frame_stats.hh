/**
 * @file
 * Per-frame measurement record: everything the paper's figures plot.
 */

#ifndef DTEXL_CORE_FRAME_STATS_HH
#define DTEXL_CORE_FRAME_STATS_HH

#include <array>
#include <cstdint>

#include "common/stats.hh"
#include "common/types.hh"

namespace dtexl {

/** Results of rendering one frame. */
struct FrameStats
{
    // --- Time ---
    Cycle geometryCycles = 0;  ///< geometry + binning phase
    Cycle rasterCycles = 0;    ///< raster phase (the bottleneck)
    /** Steady-state frame time: phases pipeline across frames. */
    Cycle totalCycles = 0;
    double fps = 0.0;

    // --- Work ---
    std::uint64_t verticesProcessed = 0;
    std::uint64_t primitivesBinned = 0;
    std::uint64_t quadsRasterized = 0;
    std::uint64_t quadsCulledEarlyZ = 0;
    std::uint64_t quadsCulledHiZ = 0;  ///< hierarchicalZ extension
    std::uint64_t quadsShaded = 0;      ///< warps launched in SCs
    std::uint64_t fragmentsShaded = 0;
    std::uint64_t shaderInstructions = 0;
    std::uint64_t textureSamples = 0;   ///< per-fragment tex instructions

    std::uint64_t earlyZTests = 0;
    std::uint64_t blendOps = 0;
    std::uint64_t flushLineWrites = 0;
    /** Bank flushes skipped by transaction elimination (extension). */
    std::uint64_t flushesEliminated = 0;

    // --- Memory ---
    std::uint64_t l1TexAccesses = 0;
    std::uint64_t l1TexMisses = 0;
    std::uint64_t l1VertexAccesses = 0;
    std::uint64_t l1TileAccesses = 0;
    std::uint64_t l2Accesses = 0;       ///< the paper's key metric
    std::uint64_t l2Misses = 0;
    std::uint64_t dramAccesses = 0;

    // --- Balance (Figures 1, 14, 15) ---
    /** Quads shaded per SC over the whole frame. */
    std::array<std::uint64_t, 4> quadsPerSc{};
    /** Per-tile normalized mean deviation of SC busy time. */
    Distribution tileTimeDeviation;
    /** Per-tile normalized mean deviation of SC quad count. */
    Distribution tileQuadDeviation;
    /** Per-SC idle cycles spent waiting at tile barriers. */
    std::array<std::uint64_t, 4> barrierIdleCycles{};

    /**
     * End-of-frame texture-block replication factor across the
     * private L1s (Section II-B's mechanism): mean copies per
     * distinct resident line.
     */
    double textureReplication = 1.0;

    // --- Verification ---
    std::uint64_t imageHash = 0;
};

} // namespace dtexl

#endif // DTEXL_CORE_FRAME_STATS_HH

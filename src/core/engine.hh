/**
 * @file
 * The simulation engine layer above GpuSimulator: a SimulationSession
 * wraps one persistent simulator rendering successive frames of one
 * (scene, config) job, and runBatch() fans a vector of independent
 * jobs over a bounded std::thread worker pool.
 *
 * Threading model (see DESIGN.md "Simulation engine & batch driver"):
 *  - each worker owns its own GpuSimulator (no simulator state is
 *    shared between jobs);
 *  - job inputs are shared read-only — the Scene a job renders may be
 *    served to several workers concurrently and must not be mutated
 *    while the batch runs (the bench harness guards its scene cache
 *    with a mutex and hands out const references);
 *  - results are collected by job index, so the output vector is in
 *    submission order regardless of which worker finished when, and a
 *    batch is bit-identical for any worker count.
 */

#ifndef DTEXL_CORE_ENGINE_HH
#define DTEXL_CORE_ENGINE_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "cache/result_key.hh"
#include "common/cancel.hh"
#include "common/config.hh"
#include "common/sim_error.hh"
#include "common/stat_registry.hh"
#include "core/gpu.hh"

namespace dtexl {

/**
 * One simulation job: render @p frames successive frames of a scene
 * under a configuration, with warm caches across frames (the
 * steady-state methodology of the evaluation).
 */
class SimulationSession
{
  public:
    /**
     * @param cfg   Machine configuration (copied).
     * @param scene First frame's scene; must outlive the session.
     * @param label Name used for stats/trace ("GTr/dtexl").
     */
    SimulationSession(const GpuConfig &cfg, const Scene &scene,
                      std::string label = "session");

    /** Render the next frame (optionally swapping the scene first). */
    FrameStats renderFrame();
    FrameStats renderFrame(const Scene &next);

    /** Frames rendered so far, in order. */
    const std::vector<FrameStats> &history() const { return frames; }

    /** Route per-phase counters to @p registry under "<label>.". */
    void setStatRegistry(StatRegistry *registry);

    /**
     * Write a frame-boundary checkpoint to @p path: the FrameStats
     * history, the simulator's warm state, and this session's registry
     * subtree. Best effort — I/O failures are logged, never thrown.
     */
    void saveCheckpoint(const std::string &path,
                        const ResultKey &key) const;

    /**
     * Resume from the checkpoint at @p path, if one exists and
     * validates against @p key. Returns the number of frames already
     * rendered (0 = nothing to resume: absent, corrupt, or
     * mid-restore failure — in the last case the simulator is reset to
     * cold state, so the fresh run stays correct). On success the
     * subsequent frames continue bit-identically to an uninterrupted
     * run (tests/test_checkpoint.cc).
     */
    std::uint32_t tryResumeCheckpoint(const std::string &path,
                                      const ResultKey &key);

    const std::string &label() const { return label_; }
    GpuSimulator &gpu() { return sim; }

  private:
    std::string label_;
    GpuSimulator sim;
    std::vector<FrameStats> frames;
    StatRegistry *registry_ = nullptr;
};

/** One entry of a runBatch() request. */
struct BatchJob
{
    /** Display/trace name; also keys the job's StatRegistry subtree. */
    std::string label;
    GpuConfig cfg;
    /**
     * Scene provider, called on the worker thread once per frame with
     * the frame index. Must return a scene that stays valid and
     * unmutated until the batch completes; called concurrently from
     * several workers, so it must be thread-safe (the bench harness
     * serves a mutex-guarded cache).
     */
    std::function<const Scene &(std::uint32_t frame)> scene;
    /** Successive frames rendered with warm caches. */
    std::uint32_t frames = 1;
    /**
     * Optional cooperative cancellation token, polled at every frame
     * boundary (must outlive the batch). A Cancel/Interrupt request
     * stops the job with SimError{Cancelled}; Interrupt (and drain
     * signals) additionally refresh the job's checkpoint when
     * checkpointing is armed, so the job resumes instead of restarting.
     */
    const CancelToken *cancel = nullptr;
    /**
     * Per-job wall-clock deadline in milliseconds (0 = none), measured
     * from job pickup and enforced at frame boundaries — a hung frame
     * is the watchdog's jurisdiction, this catches too-many-slow-frames.
     * Expiry stops the job with SimError{Cancelled}.
     */
    double deadlineMs = 0.0;
    /**
     * Stop at the next frame boundary once a process-level drain
     * signal arrives (common/signals.hh). The CLI batch drivers keep
     * the default; dtexld sets false because it escalates drains
     * itself — its first signal lets in-flight jobs finish, and its
     * second interrupts them through their CancelTokens instead.
     */
    bool stopOnDrain = true;
};

/** Result of one BatchJob, in submission order. */
struct BatchResult
{
    std::string label;
    std::vector<FrameStats> frames;
    /** Wall time of this job alone, milliseconds. */
    double wallMs = 0.0;
    /**
     * Cumulative wall time each raster execution domain spent inside
     * the partitioned fragment-stage event loop, milliseconds. Empty
     * when raster_threads resolves to 1 (the serial loop runs inline).
     * Perf reporting only — never part of the simulated results.
     */
    std::vector<double> domainWallMs;
    /** Worker that ran the job (0-based; determinism debugging). */
    std::uint32_t worker = 0;
    /**
     * True when the result was served from the content-addressed
     * result cache without running the simulator (src/cache/). The
     * frames and registry counters are byte-identical either way.
     */
    bool cacheHit = false;

    // --- Fault isolation (see DESIGN.md "Error handling & fault
    //     tolerance"): a job that throws fails alone. ---
    /** False when the job failed; `frames` then holds what completed. */
    bool ok = true;
    /** Failure classification (meaningful only when !ok). */
    ErrorKind errorKind = ErrorKind::Internal;
    /** Single-line diagnosis, "kind: message (context)". */
    std::string error;
    /** Crash-report file for dump-carrying failures, or empty. */
    std::string crashReportPath;
};

/**
 * Run a batch of independent jobs over @p numWorkers threads and
 * return their results in submission order. numWorkers is clamped to
 * [1, jobs.size()]; 1 runs everything inline on the calling thread.
 * Per-phase counters of job i land in @p registry (when non-null)
 * under "job.<label>"; each job has its own subtree, so the
 * single-writer-per-node contract of StatRegistry holds.
 *
 * Fault isolation: a job that throws SimError (bad config, scene
 * error, watchdog, internal panic) is caught on its worker thread and
 * reported through its BatchResult (ok=false, error, errorKind; plus a
 * crash report file for watchdog failures). The remaining jobs run to
 * completion and are bit-identical to the same batch without the
 * failing job (tests/test_engine.cc).
 */
std::vector<BatchResult> runBatch(const std::vector<BatchJob> &jobs,
                                  unsigned numWorkers,
                                  StatRegistry *registry = nullptr);

/**
 * Run ONE job on the calling thread with the full runBatch() per-job
 * machinery — cache lookup, checkpoint resume, frame-boundary
 * cancel/deadline/drain checks, fault isolation, EventBus lifecycle —
 * but without the batch framing (no job_submit emission, no drain
 * handler installation, no batch cache summary). This is dtexld's
 * execution primitive: the daemon owns admission, retry and submission
 * events itself, so it must be able to run exactly one attempt.
 */
BatchResult runSingleJob(const BatchJob &job, StatRegistry *registry,
                         std::uint32_t worker);

/**
 * Exit code for a finished batch: kExitSuccess when every job
 * succeeded; kExitInterrupted (130) when any job was cancelled —
 * an interrupted run, whatever else happened — else the first
 * failure's own code when every job failed (a systematic error, e.g.
 * one bad config fanned over all jobs); kExitPartialBatch when
 * failures and successes mix.
 */
int batchExitCode(const std::vector<BatchResult> &results);

/**
 * Print a per-failure summary of @p results to stderr (nothing when
 * all jobs succeeded). Returns the number of failed jobs.
 */
std::size_t reportBatchFailures(const std::vector<BatchResult> &results);

} // namespace dtexl

#endif // DTEXL_CORE_ENGINE_HH

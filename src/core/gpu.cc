#include "core/gpu.hh"

#include <algorithm>
#include <chrono>
#include <utility>
#include <vector>

#include "common/fault_inject.hh"
#include "common/log.hh"
#include "common/serial.hh"
#include "common/sim_error.hh"
#include "common/trace.hh"
#include "telemetry/export.hh"

namespace dtexl {

namespace {

std::uint64_t
wallMicrosSince(std::chrono::steady_clock::time_point t0)
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
}

} // namespace

GpuSimulator::GpuSimulator(const GpuConfig &cfg_in, const Scene &scene_in)
    : cfg(cfg_in), scene(&scene_in)
{
    // Fault harness: corrupt this simulator's private config copy so
    // the real validator below must reject it (SimError{Config}).
    if (FaultInject::global().fire(FaultSite::ConfigMisSize))
        cfg.textureCache.sizeBytes += 13;
    cfg.validate();
    mem = std::make_unique<MemHierarchy>(cfg);
    fb = std::make_unique<FrameBuffer>(cfg);
    pb = std::make_unique<ParamBuffer>(cfg.numTiles());
    geom = std::make_unique<GeometryPhase>(cfg, *mem, *pb);
    pipeline = std::make_unique<RasterPipeline>(cfg, *mem, *scene, *fb,
                                                &flushSignatures);

    tel = std::make_unique<Telemetry>(cfg);
    if (tel->counters())
        pipeline->setTelemetry(tel.get());
    if (tel->sampling()) {
        // Sampler sources: per-SC occupancy plus the shared memory
        // levels. Closures capture raw pointers into members that the
        // simulator owns for its whole lifetime.
        Telemetry *t = tel.get();
        MemHierarchy *m = mem.get();
        for (std::uint32_t p = 0; p < cfg.numPipelines; ++p) {
            t->addSource("sc" + std::to_string(p) + ".busy",
                         [t, p] {
                             return t->track(scUnit(p)).liveBusyCycles();
                         });
            t->addSource("sc" + std::to_string(p) + ".stall",
                         [t, p] {
                             return t->track(scUnit(p))
                                 .liveStallCycles();
                         });
        }
        t->addSource("l2.accesses",
                     [m] { return m->l2().accesses(); });
        t->addSource("dram.accesses",
                     [m] { return m->dram().accesses(); });
    }
}

void
GpuSimulator::setScene(const Scene &next)
{
    dtexl_assert(next.textures.size() == scene->textures.size(),
                 "scene swap must keep the texture table layout");
    for (std::size_t i = 0; i < next.textures.size(); ++i) {
        dtexl_assert(next.textures[i].baseAddr() ==
                             scene->textures[i].baseAddr() &&
                         next.textures[i].side() ==
                             scene->textures[i].side(),
                     "texture %zu changed across frames", i);
    }
    scene = &next;
    pipeline->setScene(next);
}

void
GpuSimulator::setStatRegistry(StatRegistry *reg, const std::string &prefix)
{
    registry = reg;
    statPrefix = prefix;
    geomStats = reg ? &reg->node(prefix + ".geometry") : nullptr;
    rasterStats = reg ? &reg->node(prefix + ".raster") : nullptr;
}

void
GpuSimulator::saveWarmState(ByteWriter &w) const
{
    mem->saveWarmState(w);
    // The flush-signature map is unordered; sort for a canonical
    // stream (the checkpoint checksum must be deterministic).
    std::vector<std::pair<std::uint64_t, std::uint64_t>> sig(
        flushSignatures.crc.begin(), flushSignatures.crc.end());
    std::sort(sig.begin(), sig.end());
    w.u64(sig.size());
    for (const auto &[addr, crc] : sig) {
        w.u64(addr);
        w.u64(crc);
    }
    tel->saveState(w);
}

void
GpuSimulator::restoreWarmState(ByteReader &r)
{
    mem->restoreWarmState(r);
    flushSignatures.crc.clear();
    const std::uint64_t n = r.u64();
    if (n > r.remaining() / 16)
        throwIoError("flush-signature count %llu exceeds payload",
                     static_cast<unsigned long long>(n));
    for (std::uint64_t i = 0; i < n; ++i) {
        const std::uint64_t addr = r.u64();
        const std::uint64_t crc = r.u64();
        flushSignatures.crc.emplace(addr, crc);
    }
    tel->restoreState(r);
}

void
GpuSimulator::resetWarmState()
{
    mem->flushAll();
    flushSignatures.crc.clear();
    tel->resetCumulative();
}

FrameStats
GpuSimulator::renderFrame()
{
    FrameStats fs;

    // Each frame restarts the cycle count at zero: reset in-flight
    // timing state (ports, MSHRs, DRAM banks) while keeping cache
    // contents warm, and reinitialize the pipeline's per-frame state
    // (barriers, banks, FIFOs, cores, assigner) in place. The legacy
    // heap-rebuild path is kept, behind a knob, as the bit-exactness
    // reference.
    mem->resetTiming();
    if (rebuildEachFrame) {
        pipeline = std::make_unique<RasterPipeline>(
            cfg, *mem, *scene, *fb, &flushSignatures);
        if (tel->counters())
            pipeline->setTelemetry(tel.get());
    } else {
        pipeline->beginFrame();
    }

    // Snapshot memory counters so per-frame deltas are exact even when
    // frames are rendered back to back.
    const std::uint64_t l2_before = mem->l2().accesses();
    const std::uint64_t l2_miss_before = mem->l2().misses();
    const std::uint64_t dram_before = mem->dram().accesses();
    const std::uint64_t vtx_before = mem->vertexCache().accesses();
    const std::uint64_t tile_before = mem->tileCache().accesses();
    std::uint64_t l1tex_before = 0, l1tex_miss_before = 0;
    for (std::size_t i = 0; i < mem->numTextureCaches(); ++i) {
        l1tex_before +=
            mem->textureCache(static_cast<CoreId>(i)).accesses();
        l1tex_miss_before +=
            mem->textureCache(static_cast<CoreId>(i)).misses();
    }

    // ---- Geometry phase: Vertex Stage -> Primitive Assembly ->
    //      Polygon List Builder (Tiling Engine) ----
    const auto geom_wall0 = std::chrono::steady_clock::now();
    GeometryPhase::Result gr;
    {
        TraceScope span("geometry", "phase");
        gr = geom->run(*scene);
    }
    const std::uint64_t geom_wall_us = wallMicrosSince(geom_wall0);
    fs.geometryCycles = gr.cycles;
    fs.verticesProcessed = gr.vertices;
    fs.primitivesBinned = gr.primitives;

    // ---- Raster phase ----
    // Geometry and raster are separate pipeline phases that overlap
    // across frames (the Parameter Buffer is double-buffered), so the
    // raster phase starts its own cycle-0 epoch: in-flight timing
    // state is reset while cache contents stay warm.
    mem->resetTiming();
    fb->clear();
    // Telemetry is armed for the raster phase only: geometry restarts
    // the cycle count at zero, so its traffic must not be attributed
    // against raster-phase epochs.
    const bool monitored = tel->counters();
    if (monitored) {
        tel->beginEpoch();
        mem->attachTelemetry(tel.get());
    }
    // Explicit span (not TraceScope): the start timestamp doubles as
    // the origin for mapping sampler cycles onto the trace time axis.
    const std::uint64_t raster_ts0 = TraceWriter::nowMicros();
    fs.rasterCycles = pipeline->run(*pb, fs);
    const std::uint64_t raster_ts1 = TraceWriter::nowMicros();
    if (TraceWriter::global().enabled()) {
        TraceWriter::global().complete("raster", "phase", raster_ts0,
                                       raster_ts1 - raster_ts0);
    }
    if (monitored) {
        mem->attachTelemetry(nullptr);
        tel->finalizeEpoch(fs.rasterCycles);
    }
    const std::uint64_t raster_wall_us = raster_ts1 - raster_ts0;

    // The two phases pipeline across frames (the Parameter Buffer is
    // double-buffered in real TBR parts), so steady-state frame time is
    // the slower phase.
    fs.totalCycles = std::max(fs.geometryCycles, fs.rasterCycles);
    fs.fps = fs.totalCycles == 0
                 ? 0.0
                 : static_cast<double>(cfg.clockHz) /
                       static_cast<double>(fs.totalCycles);

    // ---- Memory + work counters ----
    fs.l2Accesses = mem->l2().accesses() - l2_before;
    fs.l2Misses = mem->l2().misses() - l2_miss_before;
    fs.dramAccesses = mem->dram().accesses() - dram_before;
    for (std::size_t i = 0; i < mem->numTextureCaches(); ++i) {
        fs.l1TexAccesses +=
            mem->textureCache(static_cast<CoreId>(i)).accesses();
        fs.l1TexMisses +=
            mem->textureCache(static_cast<CoreId>(i)).misses();
    }
    fs.l1TexAccesses -= l1tex_before;
    fs.l1TexMisses -= l1tex_miss_before;
    fs.l1VertexAccesses = mem->vertexCache().accesses() - vtx_before;
    fs.l1TileAccesses = mem->tileCache().accesses() - tile_before;
    fs.earlyZTests = pipeline->stats().get("ez_tests");
    fs.blendOps = pipeline->stats().get("blend_ops");
    fs.flushLineWrites = pipeline->stats().get("flush_line_writes");

    for (std::uint32_t p = 0; p < cfg.numPipelines; ++p) {
        const StatSet &sc = pipeline->core(static_cast<CoreId>(p))
                                .stats();
        fs.fragmentsShaded += sc.get("fragments");
        fs.shaderInstructions += sc.get("alu_ops") +
                                 sc.get("tex_instructions");
        fs.textureSamples += sc.get("tex_samples");
    }

    fs.textureReplication = mem->textureReplicationFactor();
    fs.imageHash = fb->hash();

    // ---- Observability: per-phase counters ----
    if (registry) {
        geomStats->inc("frames");
        geomStats->inc("cycles", fs.geometryCycles);
        geomStats->inc("wall_us", geom_wall_us);
        rasterStats->inc("frames");
        rasterStats->inc("cycles", fs.rasterCycles);
        rasterStats->inc("wall_us", raster_wall_us);
        if (monitored)
            tel->publish(*registry, statPrefix);
    }

    // ---- Level 2: emit the epoch's counter timelines ----
    if (tel->sampling()) {
        const auto &rows = tel->samples();
        const bool trace_on = TraceWriter::global().enabled();
        const bool csv_on =
            TelemetryExport::global().timelineEnabled();
        if ((trace_on || csv_on) && !rows.empty()) {
            // Map raster-phase sim cycles onto the span's wall window
            // so counter tracks line up under the "raster" span.
            const double us_per_cycle =
                fs.rasterCycles > 0
                    ? static_cast<double>(raster_ts1 - raster_ts0) /
                          static_cast<double>(fs.rasterCycles)
                    : 0.0;
            const std::uint32_t frame = tel->frames() - 1;
            std::vector<std::uint64_t> prev = tel->sampleBase();
            for (const Telemetry::SampleRow &row : rows) {
                const std::uint64_t ts =
                    raster_ts0 +
                    static_cast<std::uint64_t>(
                        static_cast<double>(row.cycle) * us_per_cycle);
                for (std::size_t i = 0; i < tel->numSources(); ++i) {
                    // Per-interval delta: cumulative sources turn into
                    // rate tracks, which is what the viewer shows best.
                    const std::uint64_t delta =
                        row.values[i] >= prev[i]
                            ? row.values[i] - prev[i]
                            : 0;
                    if (trace_on) {
                        TraceWriter::global().counter(
                            statPrefix + "." + tel->sourceName(i), ts,
                            delta);
                    }
                    if (csv_on) {
                        TelemetryExport::global().appendTimelineRow(
                            statPrefix, frame, row.cycle,
                            tel->sourceName(i), delta);
                    }
                }
                prev = row.values;
            }
        }
        tel->clearSamples();
    }
    return fs;
}

} // namespace dtexl

#include "core/gpu.hh"

#include <algorithm>
#include <chrono>

#include "common/log.hh"
#include "common/trace.hh"

namespace dtexl {

namespace {

std::uint64_t
wallMicrosSince(std::chrono::steady_clock::time_point t0)
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
}

} // namespace

GpuSimulator::GpuSimulator(const GpuConfig &cfg_in, const Scene &scene_in)
    : cfg(cfg_in), scene(&scene_in)
{
    cfg.validate();
    mem = std::make_unique<MemHierarchy>(cfg);
    fb = std::make_unique<FrameBuffer>(cfg);
    pb = std::make_unique<ParamBuffer>(cfg.numTiles());
    geom = std::make_unique<GeometryPhase>(cfg, *mem, *pb);
    pipeline = std::make_unique<RasterPipeline>(cfg, *mem, *scene, *fb,
                                                &flushSignatures);
}

void
GpuSimulator::setScene(const Scene &next)
{
    dtexl_assert(next.textures.size() == scene->textures.size(),
                 "scene swap must keep the texture table layout");
    for (std::size_t i = 0; i < next.textures.size(); ++i) {
        dtexl_assert(next.textures[i].baseAddr() ==
                             scene->textures[i].baseAddr() &&
                         next.textures[i].side() ==
                             scene->textures[i].side(),
                     "texture %zu changed across frames", i);
    }
    scene = &next;
    pipeline->setScene(next);
}

void
GpuSimulator::setStatRegistry(StatRegistry *reg, const std::string &prefix)
{
    registry = reg;
    statPrefix = prefix;
}

FrameStats
GpuSimulator::renderFrame()
{
    FrameStats fs;

    // Each frame restarts the cycle count at zero: reset in-flight
    // timing state (ports, MSHRs, DRAM banks) while keeping cache
    // contents warm, and reinitialize the pipeline's per-frame state
    // (barriers, banks, FIFOs, cores, assigner) in place. The legacy
    // heap-rebuild path is kept, behind a knob, as the bit-exactness
    // reference.
    mem->resetTiming();
    if (rebuildEachFrame) {
        pipeline = std::make_unique<RasterPipeline>(
            cfg, *mem, *scene, *fb, &flushSignatures);
    } else {
        pipeline->beginFrame();
    }

    // Snapshot memory counters so per-frame deltas are exact even when
    // frames are rendered back to back.
    const std::uint64_t l2_before = mem->l2().accesses();
    const std::uint64_t l2_miss_before = mem->l2().misses();
    const std::uint64_t dram_before = mem->dram().accesses();
    const std::uint64_t vtx_before = mem->vertexCache().accesses();
    const std::uint64_t tile_before = mem->tileCache().accesses();
    std::uint64_t l1tex_before = 0, l1tex_miss_before = 0;
    for (std::size_t i = 0; i < mem->numTextureCaches(); ++i) {
        l1tex_before +=
            mem->textureCache(static_cast<CoreId>(i)).accesses();
        l1tex_miss_before +=
            mem->textureCache(static_cast<CoreId>(i)).misses();
    }

    // ---- Geometry phase: Vertex Stage -> Primitive Assembly ->
    //      Polygon List Builder (Tiling Engine) ----
    const auto geom_wall0 = std::chrono::steady_clock::now();
    GeometryPhase::Result gr;
    {
        TraceScope span("geometry", "phase");
        gr = geom->run(*scene);
    }
    const std::uint64_t geom_wall_us = wallMicrosSince(geom_wall0);
    fs.geometryCycles = gr.cycles;
    fs.verticesProcessed = gr.vertices;
    fs.primitivesBinned = gr.primitives;

    // ---- Raster phase ----
    // Geometry and raster are separate pipeline phases that overlap
    // across frames (the Parameter Buffer is double-buffered), so the
    // raster phase starts its own cycle-0 epoch: in-flight timing
    // state is reset while cache contents stay warm.
    mem->resetTiming();
    fb->clear();
    const auto raster_wall0 = std::chrono::steady_clock::now();
    {
        TraceScope span("raster", "phase");
        fs.rasterCycles = pipeline->run(*pb, fs);
    }
    const std::uint64_t raster_wall_us = wallMicrosSince(raster_wall0);

    // The two phases pipeline across frames (the Parameter Buffer is
    // double-buffered in real TBR parts), so steady-state frame time is
    // the slower phase.
    fs.totalCycles = std::max(fs.geometryCycles, fs.rasterCycles);
    fs.fps = fs.totalCycles == 0
                 ? 0.0
                 : static_cast<double>(cfg.clockHz) /
                       static_cast<double>(fs.totalCycles);

    // ---- Memory + work counters ----
    fs.l2Accesses = mem->l2().accesses() - l2_before;
    fs.l2Misses = mem->l2().misses() - l2_miss_before;
    fs.dramAccesses = mem->dram().accesses() - dram_before;
    for (std::size_t i = 0; i < mem->numTextureCaches(); ++i) {
        fs.l1TexAccesses +=
            mem->textureCache(static_cast<CoreId>(i)).accesses();
        fs.l1TexMisses +=
            mem->textureCache(static_cast<CoreId>(i)).misses();
    }
    fs.l1TexAccesses -= l1tex_before;
    fs.l1TexMisses -= l1tex_miss_before;
    fs.l1VertexAccesses = mem->vertexCache().accesses() - vtx_before;
    fs.l1TileAccesses = mem->tileCache().accesses() - tile_before;
    fs.earlyZTests = pipeline->stats().get("ez_tests");
    fs.blendOps = pipeline->stats().get("blend_ops");
    fs.flushLineWrites = pipeline->stats().get("flush_line_writes");

    for (std::uint32_t p = 0; p < cfg.numPipelines; ++p) {
        const StatSet &sc = pipeline->core(static_cast<CoreId>(p))
                                .stats();
        fs.fragmentsShaded += sc.get("fragments");
        fs.shaderInstructions += sc.get("alu_ops") +
                                 sc.get("tex_instructions");
        fs.textureSamples += sc.get("tex_samples");
    }

    fs.textureReplication = mem->textureReplicationFactor();
    fs.imageHash = fb->hash();

    // ---- Observability: per-phase counters ----
    if (registry) {
        StatSet &g = registry->node(statPrefix + ".geometry");
        g.inc("frames");
        g.inc("cycles", fs.geometryCycles);
        g.inc("wall_us", geom_wall_us);
        StatSet &r = registry->node(statPrefix + ".raster");
        r.inc("frames");
        r.inc("cycles", fs.rasterCycles);
        r.inc("wall_us", raster_wall_us);
    }
    return fs;
}

} // namespace dtexl

#include "core/gpu.hh"

#include <algorithm>

#include "common/log.hh"

namespace dtexl {

GpuSimulator::GpuSimulator(const GpuConfig &cfg_in, const Scene &scene_in)
    : cfg(cfg_in), scene(&scene_in)
{
    cfg.validate();
    mem = std::make_unique<MemHierarchy>(cfg);
    fb = std::make_unique<FrameBuffer>(cfg);
    pb = std::make_unique<ParamBuffer>(cfg.numTiles());
    pipeline = std::make_unique<RasterPipeline>(cfg, *mem, *scene, *fb,
                                                &flushSignatures);
}

void
GpuSimulator::setScene(const Scene &next)
{
    dtexl_assert(next.textures.size() == scene->textures.size(),
                 "scene swap must keep the texture table layout");
    for (std::size_t i = 0; i < next.textures.size(); ++i) {
        dtexl_assert(next.textures[i].baseAddr() ==
                             scene->textures[i].baseAddr() &&
                         next.textures[i].side() ==
                             scene->textures[i].side(),
                     "texture %zu changed across frames", i);
    }
    scene = &next;
}

FrameStats
GpuSimulator::renderFrame()
{
    FrameStats fs;

    // Each frame restarts the cycle count at zero: reset in-flight
    // timing state (ports, MSHRs, DRAM banks) while keeping cache
    // contents warm, and rebuild the pipeline's barrier state.
    mem->resetTiming();
    pipeline = std::make_unique<RasterPipeline>(cfg, *mem, *scene, *fb,
                                                &flushSignatures);

    // Snapshot memory counters so per-frame deltas are exact even when
    // frames are rendered back to back.
    const std::uint64_t l2_before = mem->l2().accesses();
    const std::uint64_t l2_miss_before = mem->l2().misses();
    const std::uint64_t dram_before = mem->dram().accesses();
    const std::uint64_t vtx_before = mem->vertexCache().accesses();
    const std::uint64_t tile_before = mem->tileCache().accesses();
    std::uint64_t l1tex_before = 0, l1tex_miss_before = 0;
    for (std::size_t i = 0; i < mem->numTextureCaches(); ++i) {
        l1tex_before +=
            mem->textureCache(static_cast<CoreId>(i)).accesses();
        l1tex_miss_before +=
            mem->textureCache(static_cast<CoreId>(i)).misses();
    }

    // ---- Geometry phase: Vertex Stage -> Primitive Assembly ->
    //      Polygon List Builder (Tiling Engine) ----
    pb->clear();
    VertexStage vstage(cfg, *mem);
    PrimAssembler assembler(cfg);
    PolyListBuilder binner(cfg, *mem, *pb);

    Cycle geom_cursor = 0;
    std::vector<TransformedVertex> transformed;
    std::vector<Primitive> prims;
    for (const DrawCommand &draw : scene->draws) {
        geom_cursor = vstage.processDraw(draw, geom_cursor, transformed);
        prims.clear();
        assembler.assemble(draw, transformed,
                           scene->texture(draw.texture).side(), prims);
        for (const Primitive &prim : prims)
            geom_cursor = binner.binPrimitive(prim, geom_cursor);
    }
    fs.geometryCycles = geom_cursor;
    fs.verticesProcessed = vstage.verticesProcessed();
    fs.primitivesBinned = pb->numPrimitives();

    // ---- Raster phase ----
    // Geometry and raster are separate pipeline phases that overlap
    // across frames (the Parameter Buffer is double-buffered), so the
    // raster phase starts its own cycle-0 epoch: in-flight timing
    // state is reset while cache contents stay warm.
    mem->resetTiming();
    fb->clear();
    fs.rasterCycles = pipeline->run(*pb, fs);

    // The two phases pipeline across frames (the Parameter Buffer is
    // double-buffered in real TBR parts), so steady-state frame time is
    // the slower phase.
    fs.totalCycles = std::max(fs.geometryCycles, fs.rasterCycles);
    fs.fps = fs.totalCycles == 0
                 ? 0.0
                 : static_cast<double>(cfg.clockHz) /
                       static_cast<double>(fs.totalCycles);

    // ---- Memory + work counters ----
    fs.l2Accesses = mem->l2().accesses() - l2_before;
    fs.l2Misses = mem->l2().misses() - l2_miss_before;
    fs.dramAccesses = mem->dram().accesses() - dram_before;
    for (std::size_t i = 0; i < mem->numTextureCaches(); ++i) {
        fs.l1TexAccesses +=
            mem->textureCache(static_cast<CoreId>(i)).accesses();
        fs.l1TexMisses +=
            mem->textureCache(static_cast<CoreId>(i)).misses();
    }
    fs.l1TexAccesses -= l1tex_before;
    fs.l1TexMisses -= l1tex_miss_before;
    fs.l1VertexAccesses = mem->vertexCache().accesses() - vtx_before;
    fs.l1TileAccesses = mem->tileCache().accesses() - tile_before;
    fs.earlyZTests = pipeline->stats().get("ez_tests");
    fs.blendOps = pipeline->stats().get("blend_ops");
    fs.flushLineWrites = pipeline->stats().get("flush_line_writes");

    for (std::uint32_t p = 0; p < cfg.numPipelines; ++p) {
        const StatSet &sc = pipeline->core(static_cast<CoreId>(p))
                                .stats();
        fs.fragmentsShaded += sc.get("fragments");
        fs.shaderInstructions += sc.get("alu_ops") +
                                 sc.get("tex_instructions");
        fs.textureSamples += sc.get("tex_samples");
    }

    fs.textureReplication = mem->textureReplicationFactor();
    fs.imageHash = fb->hash();
    return fs;
}

} // namespace dtexl

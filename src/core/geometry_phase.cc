#include "core/geometry_phase.hh"

namespace dtexl {

GeometryPhase::Result
GeometryPhase::runSerial(const Scene &scene)
{
    VertexStage vstage(cfg, mem);
    PrimAssembler assembler(cfg);
    PolyListBuilder binner(cfg, mem, pb);

    Cycle cursor = 0;
    for (const DrawCommand &draw : scene.draws) {
        cursor = vstage.processDraw(draw, cursor, transformed);
        prims.clear();
        assembler.assemble(draw, transformed,
                           scene.texture(draw.texture).side(), prims);
        for (const Primitive &prim : prims)
            cursor = binner.binPrimitive(prim, cursor);
    }

    Result r;
    r.cycles = cursor;
    r.vertices = vstage.verticesProcessed();
    r.primitives = pb.numPrimitives();
    return r;
}

GeometryPhase::Result
GeometryPhase::runParallel(const Scene &scene, std::uint32_t threads)
{
    if (!pool || pool->size() != threads)
        pool = std::make_unique<WorkerPool>(threads);

    // Fan the pure per-draw work out: transforms, shade sequence,
    // assembly, overlap tests. Each task owns work[d] exclusively and
    // reads only immutable state (cfg, scene), so the outputs are
    // independent of scheduling.
    const std::size_t n_draws = scene.draws.size();
    work.resize(n_draws);
    pool->parallelFor(n_draws, [&](std::size_t d) {
        const DrawCommand &draw = scene.draws[d];
        DrawWork &w = work[d];

        VertexStage::shadeSequence(draw, w.shadeOrder, w.reuse);
        w.transformed.clear();
        w.transformed.resize(draw.vertices.size());
        for (std::uint32_t i : w.shadeOrder)
            w.transformed[i] = VertexStage::transformVertex(cfg, draw, i);

        // Thread-local assembler: its primitive ids are draw-local and
        // overwritten by the merge below.
        PrimAssembler assembler(cfg);
        w.prims.clear();
        assembler.assemble(draw, w.transformed,
                           scene.texture(draw.texture).side(), w.prims);

        w.overlaps.resize(w.prims.size());
        for (std::size_t p = 0; p < w.prims.size(); ++p)
            PolyListBuilder::overlapTiles(cfg, w.prims[p], w.overlaps[p]);
    });

    // Serial merge in submission order: replay the timed Vertex/Tile
    // Cache traffic and reassign global primitive ids. This is the
    // only part that touches the memory hierarchy or the Parameter
    // Buffer, so their state evolves exactly as in runSerial().
    VertexStage vstage(cfg, mem);
    PolyListBuilder binner(cfg, mem, pb);
    Cycle cursor = 0;
    PrimId next_id = 0;
    for (std::size_t d = 0; d < n_draws; ++d) {
        DrawWork &w = work[d];
        cursor = vstage.replayTiming(scene.draws[d], w.shadeOrder,
                                     w.reuse, cursor);
        for (std::size_t p = 0; p < w.prims.size(); ++p) {
            w.prims[p].id = next_id++;
            cursor = binner.binPrecomputed(w.prims[p], w.overlaps[p],
                                           cursor);
        }
    }

    Result r;
    r.cycles = cursor;
    r.vertices = vstage.verticesProcessed();
    r.primitives = pb.numPrimitives();
    return r;
}

GeometryPhase::Result
GeometryPhase::run(const Scene &scene)
{
    pb.clear();
    const std::uint32_t threads = cfg.resolvedGeomThreads();
    if (threads <= 1 || scene.draws.size() <= 1)
        return runSerial(scene);
    return runParallel(scene, threads);
}

} // namespace dtexl

#include "core/geometry_phase.hh"

namespace dtexl {

GeometryPhase::Result
GeometryPhase::run(const Scene &scene)
{
    pb.clear();
    VertexStage vstage(cfg, mem);
    PrimAssembler assembler(cfg);
    PolyListBuilder binner(cfg, mem, pb);

    Cycle cursor = 0;
    for (const DrawCommand &draw : scene.draws) {
        cursor = vstage.processDraw(draw, cursor, transformed);
        prims.clear();
        assembler.assemble(draw, transformed,
                           scene.texture(draw.texture).side(), prims);
        for (const Primitive &prim : prims)
            cursor = binner.binPrimitive(prim, cursor);
    }

    Result r;
    r.cycles = cursor;
    r.vertices = vstage.verticesProcessed();
    r.primitives = pb.numPrimitives();
    return r;
}

} // namespace dtexl

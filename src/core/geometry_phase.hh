/**
 * @file
 * The Geometry Phase of one frame (Figure 3, left half): Vertex Stage
 * -> Primitive Assembly -> Polygon List Builder (Tiling Engine),
 * extracted from the simulator's frame loop into its own unit so the
 * phase-structured engine can time and trace it independently of the
 * raster phase.
 *
 * When GpuConfig::geomThreads resolves to more than one, the phase
 * splits each draw's work into its pure functional half (vertex
 * transforms, post-transform-cache sequence, assembly/culling/LOD,
 * tile-overlap tests) and its timed half (Vertex/Tile Cache traffic
 * and cycle-cursor arithmetic). The pure half fans out across a
 * worker pool — draws are independent given only the config and the
 * scene — and the timed half is replayed serially in submission
 * order, so every counter, cursor, and Parameter Buffer byte is
 * bit-identical to the serial path for any thread count
 * (tests/test_parallel_geom.cc).
 */

#ifndef DTEXL_CORE_GEOMETRY_PHASE_HH
#define DTEXL_CORE_GEOMETRY_PHASE_HH

#include <memory>
#include <vector>

#include "common/config.hh"
#include "common/worker_pool.hh"
#include "geom/prim_assembler.hh"
#include "geom/scene.hh"
#include "geom/vertex_stage.hh"
#include "mem/hierarchy.hh"
#include "tiling/param_buffer.hh"
#include "tiling/poly_list_builder.hh"

namespace dtexl {

/**
 * Runs the geometry pipeline of one frame: transforms every draw's
 * vertices, assembles primitives, and bins them into the Parameter
 * Buffer. Persistent across frames; scratch buffers are reused, and
 * the timed stage objects are rebuilt per run() (they are cheap
 * cursor/counter state — the expensive per-frame state lives in the
 * Parameter Buffer and memory hierarchy, which persist).
 */
class GeometryPhase
{
  public:
    GeometryPhase(const GpuConfig &cfg, MemHierarchy &mem,
                  ParamBuffer &pb)
        : cfg(cfg), mem(mem), pb(pb)
    {}

    /** Outputs the frame loop folds into FrameStats. */
    struct Result
    {
        Cycle cycles = 0;                 ///< phase length
        std::uint64_t vertices = 0;       ///< vertex-program runs
        std::uint64_t primitives = 0;     ///< primitives binned
    };

    /**
     * Process every draw of @p scene; clears and refills the Parameter
     * Buffer. Timing starts at cycle 0 (the phase owns its epoch; see
     * GpuSimulator::renderFrame()).
     */
    Result run(const Scene &scene);

  private:
    /**
     * Precomputed pure outputs of one draw, produced on a worker
     * thread. Primitive ids from the thread-local assembler are
     * draw-local; the serial merge reassigns them in submission order.
     */
    struct DrawWork
    {
        std::vector<TransformedVertex> transformed;
        std::vector<std::uint32_t> shadeOrder;
        std::uint64_t reuse = 0;
        std::vector<Primitive> prims;
        /** Overlap set per primitive, parallel to prims. */
        std::vector<std::vector<TileId>> overlaps;
    };

    Result runSerial(const Scene &scene);
    Result runParallel(const Scene &scene, std::uint32_t threads);

    const GpuConfig &cfg;
    MemHierarchy &mem;
    ParamBuffer &pb;

    /** Scratch reused across frames (capacity persists). */
    std::vector<TransformedVertex> transformed;
    std::vector<Primitive> prims;
    std::vector<DrawWork> work;
    /** Lazily created on the first parallel run(). */
    std::unique_ptr<WorkerPool> pool;
};

} // namespace dtexl

#endif // DTEXL_CORE_GEOMETRY_PHASE_HH

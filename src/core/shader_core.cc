#include "core/shader_core.hh"

#include <algorithm>
#include <sstream>
#include <string>

#include "common/log.hh"
#include "common/sim_error.hh"
#include "texture/sampler.hh"

namespace dtexl {

ShaderCore::ShaderCore(CoreId id, const GpuConfig &cfg, MemHierarchy &mem,
                       const Scene &scene)
    : coreId(id), cfg(cfg), mem(mem), scene(&scene),
      stats_("sc" + std::to_string(id))
{
    bindStats();
}

void
ShaderCore::bindStats()
{
    hot.texSamples = &stats_.handle("tex_samples");
    hot.texLineReads = &stats_.handle("tex_line_reads");
    hot.texDataCycles = &stats_.handle("tex_data_cycles");
    hot.texWaitCycles = &stats_.handle("tex_wait_cycles");
    hot.aluOps = &stats_.handle("alu_ops");
    hot.texInstructions = &stats_.handle("tex_instructions");
    hot.warps = &stats_.handle("warps");
    hot.fragments = &stats_.handle("fragments");
}

void
ShaderCore::beginFrame()
{
    texUnitFreeHalf = 0;
    stats_.clear();
    bindStats();
}

Cycle
ShaderCore::sampleQuad(Warp &warp, Cycle cycle)
{
    const QuadStream &qs = *warp.stream;
    const std::uint32_t qi = warp.quadIndex;
    const Primitive *prim = qs.prim(qi);
    const ShaderDesc &shader = prim->shader;
    const TextureDesc &tex = scene->texture(prim->texture);
    // Texture unit throughput in half-cycles per fragment sample: two
    // bilinear (or nearest) samples per cycle, one trilinear or
    // anisotropic sample per cycle.
    const std::uint64_t half_cost =
        (shader.filter == FilterMode::Trilinear ||
         shader.filter == FilterMode::Aniso2x)
            ? 2
            : 1;
    texUnitFreeHalf = std::max(texUnitFreeHalf, cycle * 2);
    const std::uint8_t cov = qs.coverage(qi);

    if (!warp.fpValid) {
        // Footprints depend only on (uv, lod, filter), which are fixed
        // for the warp's lifetime, so resolve them once and replay the
        // cached line lists on subsequent tex instructions. The level
        // of detail was already resolved batch-wide (resolveLods).
        const float lod = warp.lod;
        if (cfg.simdMode == SimdMode::Auto) {
            // One fragment per lane; uncovered lanes compute too (their
            // interpolated uv is as finite as their neighbours') but
            // only covered results are kept, exactly as the scalar
            // loop's skip.
            Vec2f uv4[4];
            for (unsigned k = 0; k < 4; ++k)
                uv4[k] = qs.uv(qi, k);
            SampleFootprint fps[4];
            quadSampleFootprints(tex, shader.filter, uv4, lod, fps);
            for (unsigned k = 0; k < 4; ++k) {
                warp.fpCount[k] = 0;
                if (!(cov & (1u << k)))
                    continue;
                warp.fpCount[k] = static_cast<std::uint8_t>(
                    footprintLines(fps[k], cfg.textureCache.lineBytes,
                                   warp.fpLines[k]));
            }
        } else {
            for (unsigned k = 0; k < 4; ++k) {
                warp.fpCount[k] = 0;
                if (!(cov & (1u << k)))
                    continue;
                const Vec2f uv = qs.uv(qi, k);
                const SampleFootprint fp = sampleFootprint(
                    tex, shader.filter, uv.x, uv.y, lod);
                warp.fpCount[k] = static_cast<std::uint8_t>(
                    footprintLines(fp, cfg.textureCache.lineBytes,
                                   warp.fpLines[k]));
            }
        }
        warp.fpValid = true;
    }

    Cycle ready = cycle;
    for (unsigned k = 0; k < 4; ++k) {
        if (!(cov & (1u << k)))
            continue;
        const Cycle issue = texUnitFreeHalf / 2;
        texUnitFreeHalf += half_cost;
        const std::uint32_t n_lines = warp.fpCount[k];
        Cycle data = issue;
        for (std::uint32_t l = 0; l < n_lines; ++l)
            data = std::max(data, mem.textureRead(coreId,
                                                  warp.fpLines[k][l],
                                                  issue));
        ++*hot.texSamples;
        *hot.texLineReads += n_lines;
        *hot.texDataCycles += data - issue;
        ready = std::max(ready, data + kFilterLatency);
    }
    *hot.texWaitCycles += ready - cycle;
    return ready;
}

void
ShaderCore::issueInstruction(Warp &warp, Cycle cycle)
{
    if (warp.aluLeft > 0) {
        --warp.aluLeft;
        warp.readyAt = cycle + kAluLatency;
        ++*hot.aluOps;
        return;
    }
    dtexl_assert(warp.texLeft > 0, "issue on a finished warp");
    warp.readyAt = sampleQuad(warp, cycle);
    --warp.texLeft;
    warp.aluLeft = warp.texLeft > 0 ? warp.aluPerSegment : warp.aluTail;
    ++*hot.texInstructions;
}

/** Per-core execution state within runBatches(). */
struct ShaderCore::CoreRun
{
    ShaderCore *core = nullptr;
    const QuadStream *stream = nullptr;
    const std::vector<std::uint32_t> *quads = nullptr;
    const std::vector<Cycle> *arrivals = nullptr;
    Cycle gate = 0;
    std::vector<Warp> warps;
    std::size_t activeCount = 0;
    std::size_t nextPending = 0;
    Cycle nextIssueAt = 0;
    /** Warp issued last cycle (for the Greedy policy). */
    Warp *lastIssued = nullptr;
    /** Sampling LOD per batch position; see resolveLods(). */
    std::vector<float> lods;
    BatchResult res;

    /**
     * Resolve every quad's sampling level of detail up front, one
     * value per batch position. Texture-less quads keep 0.0f —
     * sampleQuad never reads them — so this never touches their
     * texture binding. Under --simd=auto four textured quads resolve
     * per lane op (QuadStream::lod4); the scalar path is the original
     * per-warp expression. Both produce bit-identical levels
     * (tests/test_simd.cc), so admission, issue and memory traffic
     * are unchanged by the batching.
     */
    void
    resolveLods()
    {
        const std::size_t n = quads->size();
        lods.assign(n, 0.0f);
        const Scene &sc = *core->scene;
        std::vector<std::uint32_t> pos;  // textured batch positions
        pos.reserve(n);
        for (std::size_t b = 0; b < n; ++b) {
            const std::uint32_t qi = (*quads)[b];
            if (stream->prim(qi)->shader.texSamples > 0)
                pos.push_back(static_cast<std::uint32_t>(b));
        }
        std::size_t b = 0;
        if (core->cfg.simdMode == SimdMode::Auto) {
            for (; b + 4 <= pos.size(); b += 4) {
                std::uint32_t idx[4], side[4];
                for (int j = 0; j < 4; ++j) {
                    const std::uint32_t qi = (*quads)[pos[b + j]];
                    idx[j] = qi;
                    side[j] =
                        sc.texture(stream->prim(qi)->texture).side();
                }
                float out[4];
                stream->lod4(idx, side, out);
                for (int j = 0; j < 4; ++j)
                    lods[pos[b + j]] = out[j];
            }
        }
        for (; b < pos.size(); ++b) {
            const std::uint32_t qi = (*quads)[pos[b]];
            lods[pos[b]] = stream->lod(
                qi, sc.texture(stream->prim(qi)->texture).side());
        }
    }

    /**
     * Select the next warp under the core's scheduling policy.
     *
     * @param cycle Issue cycle of the selected warp (output).
     * @return Selected warp, or null when no warp is active.
     */
    Warp *
    pick(Cycle &cycle)
    {
        if (activeCount == 0)
            return nullptr;
        // Earliest feasible issue cycle across all active warps.
        Cycle min_ready = kCycleNever;
        for (const Warp &w : warps)
            if (w.active)
                min_ready = std::min(min_ready, w.readyAt);
        cycle = std::max(min_ready, nextIssueAt);

        const WarpSched policy = core->cfg.warpScheduler;
        if (policy == WarpSched::Greedy && lastIssued &&
            lastIssued->active && lastIssued->readyAt <= cycle) {
            return lastIssued;
        }
        Warp *best = nullptr;
        for (Warp &w : warps) {
            if (!w.active || w.readyAt > cycle)
                continue;
            if (!best) {
                best = &w;
                continue;
            }
            switch (policy) {
              case WarpSched::EarliestReady:
                if (w.readyAt < best->readyAt ||
                    (w.readyAt == best->readyAt &&
                     w.batchIndex < best->batchIndex)) {
                    best = &w;
                }
                break;
              case WarpSched::OldestFirst:
              case WarpSched::Greedy:  // greedy falls back to oldest
                if (w.batchIndex < best->batchIndex)
                    best = &w;
                break;
            }
        }
        dtexl_assert(best, "no eligible warp at its own ready time");
        return best;
    }
};

void
ShaderCore::admitWarps(CoreRun &run)
{
    const std::size_t n = run.quads->size();
    while (run.nextPending < n && run.activeCount < run.warps.size()) {
        const std::uint32_t qi = (*run.quads)[run.nextPending];
        const Cycle ready =
            std::max((*run.arrivals)[run.nextPending], run.gate);
        const ShaderDesc &sh = run.stream->prim(qi)->shader;
        Warp *slot = nullptr;
        for (Warp &w : run.warps) {
            if (!w.active) {
                slot = &w;
                break;
            }
        }
        dtexl_assert(slot);
        if (sh.aluOps == 0 && sh.texSamples == 0) {
            // Degenerate empty shader: completes on arrival.
            run.res.completion[run.nextPending] = ready;
            run.res.finish = std::max(run.res.finish, ready);
            ++run.nextPending;
            ++*hot.warps;
            continue;
        }
        slot->stream = run.stream;
        slot->quadIndex = qi;
        slot->batchIndex = run.nextPending;
        slot->readyAt = ready;
        slot->texLeft = sh.texSamples;
        slot->aluPerSegment = static_cast<std::uint16_t>(
            sh.texSamples > 0 ? sh.aluOps / (sh.texSamples + 1)
                              : sh.aluOps);
        slot->aluTail = static_cast<std::uint16_t>(
            sh.texSamples > 0
                ? sh.aluOps -
                      static_cast<std::uint32_t>(slot->aluPerSegment) *
                          sh.texSamples
                : sh.aluOps);
        slot->aluLeft =
            sh.texSamples > 0 ? slot->aluPerSegment : slot->aluTail;
        slot->lod = run.lods[run.nextPending];
        slot->fpValid = false;  // slot reuse: footprint is per-quad
        slot->active = true;
        ++run.activeCount;
        ++run.nextPending;
        ++*hot.warps;
        *hot.fragments += run.stream->coveredCount(qi);
    }
}

/**
 * Per-warp state dump for the watchdog's crash report: which warps are
 * in flight, what they wait for and how far their ready cycles sit
 * beyond the last productive event.
 */
std::string
ShaderCore::dumpRuns(const std::vector<CoreRun> &runs, Cycle progress)
{
    std::ostringstream os;
    os << "shader cores (last progress cycle " << progress << ")\n";
    for (std::size_t c = 0; c < runs.size(); ++c) {
        const CoreRun &run = runs[c];
        os << "  sc" << c << ": " << run.activeCount
           << " active warp(s), admitted " << run.nextPending << "/"
           << run.quads->size() << " quads, next issue at "
           << run.nextIssueAt << "\n";
        for (std::size_t w = 0; w < run.warps.size(); ++w) {
            const Warp &warp = run.warps[w];
            if (!warp.active)
                continue;
            os << "    warp " << w << ": quad " << warp.quadIndex
               << " (batch " << warp.batchIndex << "), ready at "
               << warp.readyAt << " (+"
               << (warp.readyAt > progress ? warp.readyAt - progress
                                           : 0)
               << "), alu left " << warp.aluLeft << ", tex left "
               << static_cast<unsigned>(warp.texLeft) << "\n";
        }
    }
    return os.str();
}

/**
 * Forward-progress check for the event loops below: the event-driven
 * analog of "N wall cycles without a retirement" is the next event
 * sitting more than the budget beyond the last one. A lost memory
 * completion or leaked credit parks a warp at kFaultStallCycle (2^62),
 * which no legitimate latency chain can reach.
 */
void
ShaderCore::checkForwardProgress(const std::vector<CoreRun> &runs,
                                 Cycle budget, Cycle progress,
                                 Cycle next_event)
{
    if (budget == 0 || next_event <= progress ||
        next_event - progress <= budget)
        return;
    std::ostringstream msg;
    msg << "no forward progress: next shader-core event at cycle "
        << next_event << " is " << (next_event - progress)
        << " cycles past the last productive event (budget " << budget
        << "; watchdog_cycles=0 disables)";
    throw SimError(ErrorKind::Watchdog, msg.str(), "",
                   dumpRuns(runs, progress));
}

std::vector<ShaderCore::BatchResult>
ShaderCore::runBatches(const std::vector<ShaderCore *> &cores,
                       const std::vector<BatchInput> &inputs,
                       const MergeHook *hook)
{
    dtexl_assert(cores.size() == inputs.size());
    std::vector<CoreRun> runs(cores.size());
    for (std::size_t c = 0; c < cores.size(); ++c) {
        CoreRun &run = runs[c];
        run.core = cores[c];
        run.stream = inputs[c].stream;
        run.quads = inputs[c].quads;
        run.arrivals = inputs[c].arrivals;
        run.gate = inputs[c].gate;
        dtexl_assert(run.quads->size() == run.arrivals->size());
        const std::size_t n = run.quads->size();
        run.res.completion.assign(n, run.gate);
        run.res.start = run.gate;
        run.res.finish = run.gate;
        if (n > 0)
            run.res.start = std::max(run.gate, run.arrivals->front());
        run.warps.resize(run.core->cfg.maxWarpsPerCore);
        run.nextIssueAt = run.gate;
        run.resolveLods();
        run.core->admitWarps(run);
    }

    // Global event loop: always issue the globally-earliest ready
    // instruction, so the cores' memory accesses interleave in time
    // order at the shared levels. Within a core, the configured warp
    // scheduling policy selects among ready warps.
    //
    // Two implementations of the same selection, switched by the
    // simFastPath knob. The fast one caches each run's pick() result:
    // pick() depends only on run-local state (its warps' readyAt and
    // activity, nextIssueAt — never on memory-model state), so a
    // cached candidate stays valid until its own run issues, and runs
    // stalled on texture data are not rescanned every event — the
    // event-driven analog of skipping idle cycles. Both paths choose
    // the earliest cycle with the lowest run index breaking ties, so
    // the issue sequences — and therefore every downstream memory
    // access and stat — are identical (tests/test_fastpath_equiv.cc).
    // Forward-progress watchdog baseline: the latest cycle at which
    // work legitimately becomes available (gates and EZ arrivals). Any
    // event budget cycles beyond the last productive one means a warp
    // is parked on a completion that will never come.
    const Cycle watchdog_budget =
        cores.empty() ? 0 : cores.front()->cfg.watchdogCycles;
    Cycle progress = 0;
    for (const CoreRun &run : runs) {
        progress = std::max(progress, run.gate);
        if (!run.arrivals->empty())
            progress = std::max(progress, run.arrivals->back());
    }

    const bool fast_path =
        !cores.empty() && cores.front()->cfg.simFastPath;
    if (fast_path) {
        struct Cand
        {
            Warp *warp = nullptr;
            Cycle cycle = kCycleNever;
        };
        std::vector<Cand> cands(runs.size());
        for (std::size_t i = 0; i < runs.size(); ++i)
            cands[i].warp = runs[i].pick(cands[i].cycle);
        for (;;) {
            std::size_t best = runs.size();
            Cycle best_cycle = kCycleNever;
            for (std::size_t i = 0; i < runs.size(); ++i) {
                if (cands[i].warp && cands[i].cycle < best_cycle) {
                    best_cycle = cands[i].cycle;
                    best = i;
                }
            }
            if (best == runs.size())
                break;
            checkForwardProgress(runs, watchdog_budget, progress,
                                 best_cycle);
            progress = best_cycle;
            if (hook) {
                // Commit point of the cycle-ordered merge: siblings
                // with smaller keys run first; the L2 gates block this
                // event's shared-level accesses until the key is the
                // global minimum.
                hook->merge->publish(
                    hook->domain,
                    DomainMerge::packKey(
                        best_cycle,
                        hook->coreOffset +
                            static_cast<std::uint32_t>(best)));
            }

            CoreRun &run = runs[best];
            Warp *warp = cands[best].warp;
            run.nextIssueAt = best_cycle + 1;
            run.lastIssued = warp;
            ++run.res.issues;
            run.core->issueInstruction(*warp, best_cycle);
            if (warp->aluLeft == 0 && warp->texLeft == 0) {
                run.res.completion[warp->batchIndex] = warp->readyAt;
                run.res.finish =
                    std::max(run.res.finish, warp->readyAt);
                warp->active = false;
                run.lastIssued = nullptr;
                --run.activeCount;
                run.core->admitWarps(run);
            }
            // Only this run's state changed; refresh its candidate.
            cands[best].warp = nullptr;
            cands[best].cycle = kCycleNever;
            cands[best].warp = runs[best].pick(cands[best].cycle);
        }
    } else {
        // Reference implementation: re-pick every run every event.
        for (;;) {
            CoreRun *best_run = nullptr;
            Warp *best_warp = nullptr;
            Cycle best_cycle = kCycleNever;
            for (CoreRun &run : runs) {
                Cycle cycle = kCycleNever;
                Warp *pick = run.pick(cycle);
                if (pick && cycle < best_cycle) {
                    best_cycle = cycle;
                    best_run = &run;
                    best_warp = pick;
                }
            }
            if (!best_run)
                break;
            checkForwardProgress(runs, watchdog_budget, progress,
                                 best_cycle);
            progress = best_cycle;
            if (hook) {
                hook->merge->publish(
                    hook->domain,
                    DomainMerge::packKey(
                        best_cycle,
                        hook->coreOffset + static_cast<std::uint32_t>(
                                               best_run - runs.data())));
            }

            best_run->nextIssueAt = best_cycle + 1;
            best_run->lastIssued = best_warp;
            ++best_run->res.issues;
            best_run->core->issueInstruction(*best_warp, best_cycle);
            if (best_warp->aluLeft == 0 && best_warp->texLeft == 0) {
                best_run->res.completion[best_warp->batchIndex] =
                    best_warp->readyAt;
                best_run->res.finish = std::max(best_run->res.finish,
                                                best_warp->readyAt);
                best_warp->active = false;
                best_run->lastIssued = nullptr;
                --best_run->activeCount;
                best_run->core->admitWarps(*best_run);
            }
        }
    }

    std::vector<BatchResult> out;
    out.reserve(runs.size());
    for (CoreRun &run : runs) {
        dtexl_assert(run.nextPending == run.quads->size());
        out.push_back(std::move(run.res));
    }
    return out;
}

ShaderCore::BatchResult
ShaderCore::runBatch(const std::vector<const Quad *> &quads,
                     const std::vector<Cycle> &arrivals, Cycle gate)
{
    QuadStream stream;
    std::vector<std::uint32_t> indices;
    indices.reserve(quads.size());
    for (const Quad *q : quads)
        indices.push_back(stream.push(*q));
    BatchInput input{&stream, &indices, &arrivals, gate};
    return runBatches({this}, {input}).front();
}

} // namespace dtexl

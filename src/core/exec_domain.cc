#include "core/exec_domain.hh"

#include <chrono>

#include "common/log.hh"

namespace dtexl {

ExecDomainSet::ExecDomainSet(const GpuConfig &cfg, MemHierarchy &mem,
                             std::uint32_t numPipes)
    : cfg(cfg), mem(mem), outcomes(DomainMerge::kMaxDomains)
{
    std::uint32_t want = cfg.resolvedRasterThreads();
    if (want > numPipes)
        want = numPipes;
    dtexl_assert(want >= 1 && want <= DomainMerge::kMaxDomains);
    // Contiguous partition, sizes as even as possible: 4 pipes over 3
    // domains is {2, 1, 1}. Contiguity keeps the global core index of
    // a domain's run = firstPipe + local run index, which is what the
    // merge keys are packed from.
    const std::uint32_t base = numPipes / want;
    const std::uint32_t rem = numPipes % want;
    std::uint32_t next = 0;
    for (std::uint32_t d = 0; d < want; ++d) {
        ExecDomain dom;
        dom.firstPipe = next;
        dom.numPipes = base + (d < rem ? 1 : 0);
        next += dom.numPipes;
        domains_.push_back(dom);
    }
    wallMs_.assign(domains_.size(), 0.0);
    if (domains_.size() > 1)
        pool = std::make_unique<WorkerPool>(
            static_cast<unsigned>(domains_.size()));
}

std::vector<ShaderCore::BatchResult>
ExecDomainSet::run(const std::vector<ShaderCore *> &cores,
                   const std::vector<ShaderCore::BatchInput> &inputs)
{
    const std::uint32_t n_domains = numDomains();
    if (n_domains <= 1)
        return ShaderCore::runBatches(cores, inputs);

    merge.reset(n_domains);
    for (std::uint32_t d = 0; d < n_domains; ++d) {
        const ExecDomain &dom = domains_[d];
        for (std::uint32_t p = 0; p < dom.numPipes; ++p)
            mem.textureL2Gate(dom.firstPipe + p).arm(&merge, d);
    }

    // Gates disarm and the channel drains on every exit path: a
    // watchdog throw must leave the set reusable (the engine's
    // fault-isolation contract lets sibling jobs, and even this
    // simulator, carry on afterwards).
    struct Cleanup
    {
        ExecDomainSet &set;
        std::size_t nGates;
        ~Cleanup()
        {
            for (std::uint32_t p = 0;
                 p < static_cast<std::uint32_t>(nGates); ++p)
                set.mem.textureL2Gate(p).disarm();
            while (set.outcomes.tryPop()) {}
        }
    };

    std::vector<Outcome> collected;

    {
        Cleanup cleanup{*this, cores.size()};
        // Every domain runs regardless of sibling failures: a throwing
        // domain publishes the maximal key on unwind (ScopedDomain), so
        // nobody spins on it, and runGang rethrows the lowest-indexed
        // exception only after all members returned — which also makes
        // it safe to read pipeline/memory state for the crash report.
        pool->runGang(n_domains, [&](std::size_t d) {
            const ExecDomain &dom = domains_[d];
            DomainMerge::ScopedDomain scope(
                merge, static_cast<std::uint32_t>(d));
            const auto t0 = std::chrono::steady_clock::now();
            std::vector<ShaderCore *> my_cores(
                cores.begin() + dom.firstPipe,
                cores.begin() + dom.firstPipe + dom.numPipes);
            std::vector<ShaderCore::BatchInput> my_inputs(
                inputs.begin() + dom.firstPipe,
                inputs.begin() + dom.firstPipe + dom.numPipes);
            MergeHook hook{&merge, static_cast<std::uint32_t>(d),
                           dom.firstPipe};
            Outcome out;
            out.domain = static_cast<std::uint32_t>(d);
            out.results =
                ShaderCore::runBatches(my_cores, my_inputs, &hook);
            const auto t1 = std::chrono::steady_clock::now();
            wallMs_[d] += std::chrono::duration<double, std::milli>(
                              t1 - t0)
                              .count();
            outcomes.push(std::move(out));
        });

        // Deterministic commit: drain the channel, then write each
        // domain's results into its pipe slots in domain order.
        while (auto out = outcomes.tryPop())
            collected.push_back(std::move(*out));
    }
    dtexl_assert(collected.size() == n_domains,
                 "every domain must deliver exactly one outcome");
    std::vector<ShaderCore::BatchResult> results(cores.size());
    for (std::uint32_t d = 0; d < n_domains; ++d) {
        for (Outcome &out : collected) {
            if (out.domain != d)
                continue;
            const ExecDomain &dom = domains_[d];
            for (std::uint32_t p = 0; p < dom.numPipes; ++p)
                results[dom.firstPipe + p] =
                    std::move(out.results[p]);
        }
    }
    return results;
}

} // namespace dtexl

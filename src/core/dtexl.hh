/**
 * @file
 * Umbrella header: the DTexL library's public API.
 *
 * Typical use:
 * @code
 *   dtexl::GpuConfig cfg = dtexl::makeDTexLConfig();
 *   dtexl::Scene scene = dtexl::generateScene(params, cfg);
 *   dtexl::GpuSimulator gpu(cfg, scene);
 *   dtexl::FrameStats fs = gpu.renderFrame();
 * @endcode
 */

#ifndef DTEXL_CORE_DTEXL_HH
#define DTEXL_CORE_DTEXL_HH

#include "common/config.hh"
#include "common/policies.hh"
#include "common/stat_registry.hh"
#include "common/stats.hh"
#include "common/trace.hh"
#include "core/engine.hh"
#include "core/frame_stats.hh"
#include "core/gpu.hh"
#include "geom/scene.hh"
#include "sched/subtile_assigner.hh"
#include "sched/subtile_layout.hh"
#include "sfc/tile_order.hh"

#endif // DTEXL_CORE_DTEXL_HH

#include "telemetry/cli_options.hh"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "cache/result_key.hh"
#include "common/config.hh"
#include "common/fault_inject.hh"
#include "common/log.hh"
#include "common/sim_error.hh"
#include "common/trace.hh"
#include "obs/event_bus.hh"
#include "telemetry/export.hh"

namespace dtexl {

bool
CommonCliOptions::tryParse(const std::string &arg)
{
    if (arg.rfind("--jobs=", 0) == 0) {
        const char *value = arg.c_str() + 7;
        char *end = nullptr;
        const unsigned long n = std::strtoul(value, &end, 10);
        if (end == value || *end != '\0' || n < 1 || n > 256)
            throwUserError("--jobs must be a number in [1, 256], got "
                           "'%s'", value);
        jobs = static_cast<unsigned>(n);
        return true;
    }
    if (arg.rfind("--geom-threads=", 0) == 0) {
        const char *value = arg.c_str() + 15;
        char *end = nullptr;
        const unsigned long n = std::strtoul(value, &end, 10);
        if (end == value || *end != '\0' || n > 256)
            fatal("--geom-threads must be a number in [0, 256] "
                  "(0 = auto)");
        geomThreads = static_cast<std::uint32_t>(n);
        return true;
    }
    if (arg.rfind("--raster-threads=", 0) == 0) {
        const std::string value = arg.substr(17);
        if (value == "auto") {
            rasterThreads = 0;
            return true;
        }
        char *end = nullptr;
        const unsigned long n = std::strtoul(value.c_str(), &end, 10);
        if (end == value.c_str() || *end != '\0' || n > 256)
            fatal("--raster-threads must be a number in [0, 256] or "
                  "'auto' (0/auto = one per pipeline bank)");
        rasterThreads = static_cast<std::uint32_t>(n);
        return true;
    }
    if (arg == "--reference-path") {
        fastPath = false;
        return true;
    }
    if (arg.rfind("--simd=", 0) == 0) {
        // simdModeFromString() rejects junk with the legal values.
        simdMode = static_cast<std::uint32_t>(
            simdModeFromString(arg.substr(7)));
        return true;
    }
    if (arg.rfind("--trace=", 0) == 0) {
        tracePath = arg.substr(8);
        if (tracePath.empty())
            fatal("--trace needs a file path");
        TraceWriter::global().enable(tracePath);
        return true;
    }
    if (arg.rfind("--stats-json=", 0) == 0) {
        statsJsonPath = arg.substr(13);
        if (statsJsonPath.empty())
            fatal("--stats-json needs a file path");
        TelemetryExport::global().setStatsJsonPath(statsJsonPath);
        return true;
    }
    if (arg.rfind("--timeline-csv=", 0) == 0) {
        timelineCsvPath = arg.substr(15);
        if (timelineCsvPath.empty())
            fatal("--timeline-csv needs a file path");
        TelemetryExport::global().setTimelineCsvPath(timelineCsvPath);
        return true;
    }
    if (arg.rfind("--crash-dir=", 0) == 0) {
        crashDir = arg.substr(12);
        if (crashDir.empty())
            fatal("--crash-dir needs a directory path");
        setCrashReportDir(crashDir);
        return true;
    }
    if (arg.rfind("--cache-dir=", 0) == 0) {
        cacheDir = arg.substr(12);
        if (cacheDir.empty())
            fatal("--cache-dir needs a directory path");
        return true;
    }
    if (arg.rfind("--cache=", 0) == 0) {
        cacheMode = cacheModeFromString(arg.substr(8));
        return true;
    }
    if (arg.rfind("--checkpoint-every=", 0) == 0) {
        const char *value = arg.c_str() + 19;
        char *end = nullptr;
        const unsigned long n = std::strtoul(value, &end, 10);
        if (end == value || *end != '\0' || n < 1 || n > 100'000)
            throwUserError("--checkpoint-every must be a number in "
                           "[1, 100000], got '%s'", value);
        checkpointEvery = static_cast<std::uint32_t>(n);
        return true;
    }
    if (arg == "--resume") {
        resumeFlag = true;
        return true;
    }
    if (arg.rfind("--cache-gc=", 0) == 0) {
        // AGE in seconds, or with a unit suffix: 90, 30s, 15m, 2h, 7d.
        const std::string value = arg.substr(11);
        char *end = nullptr;
        const unsigned long long n =
            std::strtoull(value.c_str(), &end, 10);
        std::uint64_t scale = 1;
        if (end != value.c_str() && end[0] != '\0' && end[1] == '\0') {
            switch (*end) {
              case 's': scale = 1; break;
              case 'm': scale = 60; break;
              case 'h': scale = 3600; break;
              case 'd': scale = 86400; break;
              default: scale = 0; break;
            }
        } else if (end == value.c_str() || *end != '\0') {
            scale = 0;
        }
        if (scale == 0)
            throwUserError("--cache-gc must be an age like 90, 30s, "
                           "15m, 2h or 7d, got '%s'", value.c_str());
        cacheGcAge = static_cast<std::uint64_t>(n) * scale;
        return true;
    }
    if (arg.rfind("--events=", 0) == 0) {
        eventsPath = arg.substr(9);
        if (eventsPath.empty())
            fatal("--events needs a file path");
        EventBus::global().enable(eventsPath);
        return true;
    }
    if (arg == "--progress") {
        progressFlag = true;
        EventBus::global().enableProgress();
        return true;
    }
    if (arg == "--version") {
        std::printf("%s\n", buildVersionString().c_str());
        std::exit(kExitSuccess);
    }
    if (arg.rfind("--inject-fault=", 0) == 0) {
        // SITE[:COUNT[@SKIP]]: fire COUNT times after letting the
        // first SKIP hook evaluations pass. faultSiteFromString()
        // throws a user error listing the legal site names on junk.
        std::string spec = arg.substr(15);
        std::uint32_t count = 1;
        std::uint32_t skip = 0;
        const std::size_t colon = spec.find(':');
        if (colon != std::string::npos) {
            std::string num = spec.substr(colon + 1);
            const std::size_t at = num.find('@');
            if (at != std::string::npos) {
                const std::string skip_str = num.substr(at + 1);
                char *send = nullptr;
                const unsigned long s =
                    std::strtoul(skip_str.c_str(), &send, 10);
                if (send == skip_str.c_str() || *send != '\0' ||
                    s > 1'000'000) {
                    throwUserError("--inject-fault skip must be in "
                                   "[0, 1000000], got '%s'",
                                   skip_str.c_str());
                }
                skip = static_cast<std::uint32_t>(s);
                num.resize(at);
            }
            char *end = nullptr;
            const unsigned long n =
                std::strtoul(num.c_str(), &end, 10);
            if (end == num.c_str() || *end != '\0' || n < 1 ||
                n > 1'000'000) {
                throwUserError("--inject-fault count must be in "
                               "[1, 1000000], got '%s'", num.c_str());
            }
            count = static_cast<std::uint32_t>(n);
            spec.resize(colon);
        }
        FaultInject::global().arm(faultSiteFromString(spec), count,
                                  skip);
        return true;
    }
    return false;
}

void
CommonCliOptions::rejectUnknown(const std::string &arg,
                                const char *usage)
{
    throwUserError("unknown argument '%s'%s%s", arg.c_str(),
                   usage && *usage ? "\n" : "",
                   usage ? usage : "");
}

void
CommonCliOptions::noteInvocation(int argc, char *const *argv)
{
    std::string joined;
    for (int i = 0; i < argc; ++i) {
        if (i > 0)
            joined += ' ';
        joined += argv[i];
    }
    EventBus::global().setInvocation(std::move(joined));
}

void
CommonCliOptions::applyThreadKnobs(GpuConfig &cfg) const
{
    // Arm the result cache here, not at parse time: --cache may appear
    // before --cache-dir on the command line. configure() validates
    // the combination and is idempotent (the bench harness applies the
    // knobs once per variant).
    ResultCache::global().configure(cacheDir, cacheMode,
                                    checkpointEvery, resumeFlag);

    // --cache-gc: prune leaked checkpoints before the run touches the
    // store. The age guard protects live checkpoints of a concurrent
    // daemon sharing the directory.
    if (cacheGcAge != kCacheGcUnset) {
        if (cacheDir.empty())
            throwUserError("--cache-gc requires --cache-dir=DIR");
        const CheckpointGcReport gc =
            pruneStaleCheckpoints(cacheDir, cacheGcAge);
        inform("cache gc: removed %llu of %llu checkpoint file(s), "
               "%llu byte(s) reclaimed",
               static_cast<unsigned long long>(gc.removed),
               static_cast<unsigned long long>(gc.scanned),
               static_cast<unsigned long long>(gc.bytes));
    }

    // Resolve --simd before the ledger opens so run_start records the
    // dispatch mode the run actually uses (the config digest excludes
    // it, like every host-execution knob).
    if (simdMode != kSimdUnset)
        cfg.simdMode = static_cast<SimdMode>(simdMode);

    // Open the ledger: run_start carries the config digest, which
    // deliberately excludes the host-execution knobs below, so the
    // same sweep hashes identically for any --jobs/--geom-threads/
    // --raster-threads/--simd. First call wins (the bench harness
    // applies the knobs once per config variant).
    if (EventBus::armed())
        EventBus::global().emitRunStart(hashConfig(cfg),
                                        buildFingerprint(),
                                        toString(cfg.simdMode));

    if (geomThreads != kGeomThreadsUnset)
        cfg.geomThreads = geomThreads;
    if (rasterThreads != kRasterThreadsUnset)
        cfg.rasterThreads = rasterThreads;

    // Every batch-driver worker runs its own per-job thread pools, but
    // the geometry front-end and the raster domains run in alternating
    // phases, so the peak host demand is jobs x max(geom, raster), not
    // the triple product. Oversubscribing slows the whole batch down;
    // clamp both per-job knobs and tell the user once.
    const unsigned hw =
        std::max(1u, std::thread::hardware_concurrency());
    const std::uint32_t geom = cfg.resolvedGeomThreads();
    const std::uint32_t raster = cfg.resolvedRasterThreads();
    const std::uint64_t demand = static_cast<std::uint64_t>(jobs) *
                                 std::max(geom, raster);
    if (demand > hw) {
        const auto clamped = std::max<std::uint32_t>(
            1, static_cast<std::uint32_t>(hw / jobs));
        static bool warned = false;
        if (!warned) {
            warned = true;
            warn("--jobs=%u x max(%u geometry threads, %u raster "
                 "domains) oversubscribes %u hardware threads; "
                 "clamping both per-job knobs to %u",
                 jobs, geom, raster, hw, clamped);
        }
        if (geom > clamped)
            cfg.geomThreads = clamped;
        if (raster > clamped)
            cfg.rasterThreads = clamped;
    }
}

const char *
CommonCliOptions::helpText()
{
    return
        "  --jobs=N            worker threads for the batch driver\n"
        "  --geom-threads=N    host threads for each simulation's "
        "geometry\n"
        "                      front-end (0 = auto; results are "
        "bit-identical\n"
        "                      for any value)\n"
        "  --raster-threads=N  execution domains for each simulation's "
        "raster\n"
        "                      event loop (N or 'auto' = one per "
        "pipeline bank;\n"
        "                      results are bit-identical for any "
        "value)\n"
        "  --trace=FILE        write Chrome-trace JSON "
        "(chrome://tracing)\n"
        "  --stats-json=FILE   write a flat JSON dump of all counters\n"
        "                      (schema dtexl-stats-v1)\n"
        "  --timeline-csv=FILE write telemetry=2 counter timelines as "
        "CSV\n"
        "  --reference-path    disable the simulator hot-path "
        "optimizations (A/B\n"
        "                      equivalence check; results are "
        "bit-identical)\n"
        "  --simd=MODE         auto (default: vectorized kernels on "
        "the compiled\n"
        "                      lane backend) or scalar (original "
        "serial kernels);\n"
        "                      results are bit-identical\n"
        "  --crash-dir=DIR     directory for watchdog crash reports "
        "(default .)\n"
        "  --cache-dir=DIR     root of the content-addressed result "
        "store\n"
        "  --cache=MODE        off (default), read, or readwrite: "
        "serve repeated\n"
        "                      (scene, config) jobs from --cache-dir "
        "with\n"
        "                      byte-identical results\n"
        "  --checkpoint-every=N\n"
        "                      checkpoint each job's warm state to "
        "--cache-dir\n"
        "                      every N frames\n"
        "  --resume            resume interrupted jobs from their "
        "checkpoints\n"
        "                      (bit-identical to an uninterrupted "
        "run)\n"
        "  --cache-gc=AGE      prune ckpt-*.bin files in --cache-dir "
        "older than\n"
        "                      AGE (90, 30s, 15m, 2h, 7d; 0 = all) "
        "before the run\n"
        "  --events=FILE       append-only JSONL run-event ledger "
        "(schema\n"
        "                      dtexl-events-v1; validate/summarize "
        "with\n"
        "                      scripts/run_report.py)\n"
        "  --progress          live progress line on stderr (jobs, "
        "frames,\n"
        "                      frames/s, ETA, cache hits)\n"
        "  --version           print the build fingerprint and exit\n"
        "  --inject-fault=SITE[:N[@SKIP]]\n"
        "                      arm a fault-injection site for N hook "
        "evaluations\n"
        "                      after SKIP unharmed ones (testing/CI; "
        "sites:\n"
        "                      scene-truncate, scene-corrupt-token, "
        "config-mis-size,\n"
        "                      barrier-credit-leak, "
        "drop-mem-completion,\n"
        "                      cache-truncate, ckpt-flip-byte, "
        "frame-io-fail)\n";
}

} // namespace dtexl

#include "telemetry/cli_options.hh"

#include <cstdlib>

#include "common/log.hh"
#include "common/trace.hh"
#include "telemetry/export.hh"

namespace dtexl {

bool
CommonCliOptions::tryParse(const std::string &arg)
{
    if (arg.rfind("--jobs=", 0) == 0) {
        const long n = std::atol(arg.c_str() + 7);
        if (n < 1 || n > 256)
            fatal("--jobs must be in [1, 256]");
        jobs = static_cast<unsigned>(n);
        return true;
    }
    if (arg == "--reference-path") {
        fastPath = false;
        return true;
    }
    if (arg.rfind("--trace=", 0) == 0) {
        tracePath = arg.substr(8);
        if (tracePath.empty())
            fatal("--trace needs a file path");
        TraceWriter::global().enable(tracePath);
        return true;
    }
    if (arg.rfind("--stats-json=", 0) == 0) {
        statsJsonPath = arg.substr(13);
        if (statsJsonPath.empty())
            fatal("--stats-json needs a file path");
        TelemetryExport::global().setStatsJsonPath(statsJsonPath);
        return true;
    }
    if (arg.rfind("--timeline-csv=", 0) == 0) {
        timelineCsvPath = arg.substr(15);
        if (timelineCsvPath.empty())
            fatal("--timeline-csv needs a file path");
        TelemetryExport::global().setTimelineCsvPath(timelineCsvPath);
        return true;
    }
    return false;
}

const char *
CommonCliOptions::helpText()
{
    return
        "  --jobs=N            worker threads for the batch driver\n"
        "  --trace=FILE        write Chrome-trace JSON "
        "(chrome://tracing)\n"
        "  --stats-json=FILE   write a flat JSON dump of all counters\n"
        "                      (schema dtexl-stats-v1)\n"
        "  --timeline-csv=FILE write telemetry=2 counter timelines as "
        "CSV\n"
        "  --reference-path    disable the simulator hot-path "
        "optimizations (A/B\n"
        "                      equivalence check; results are "
        "bit-identical)\n";
}

} // namespace dtexl

#include "telemetry/telemetry.hh"

#include "common/serial.hh"
#include "common/sim_error.hh"

namespace dtexl {

const char *
unitName(TelemetryUnit u)
{
    switch (u) {
      case TelemetryUnit::Raster:  return "raster";
      case TelemetryUnit::Ez0:     return "ez0";
      case TelemetryUnit::Ez1:     return "ez1";
      case TelemetryUnit::Ez2:     return "ez2";
      case TelemetryUnit::Ez3:     return "ez3";
      case TelemetryUnit::Sc0:     return "sc0";
      case TelemetryUnit::Sc1:     return "sc1";
      case TelemetryUnit::Sc2:     return "sc2";
      case TelemetryUnit::Sc3:     return "sc3";
      case TelemetryUnit::Blend0:  return "blend0";
      case TelemetryUnit::Blend1:  return "blend1";
      case TelemetryUnit::Blend2:  return "blend2";
      case TelemetryUnit::Blend3:  return "blend3";
      case TelemetryUnit::L1Tex0:  return "l1tex0";
      case TelemetryUnit::L1Tex1:  return "l1tex1";
      case TelemetryUnit::L1Tex2:  return "l1tex2";
      case TelemetryUnit::L1Tex3:  return "l1tex3";
      case TelemetryUnit::L1Vtx:   return "l1vtx";
      case TelemetryUnit::L1Tile:  return "l1tile";
      case TelemetryUnit::L2:      return "l2";
      case TelemetryUnit::Dram:    return "dram";
    }
    panic("unknown TelemetryUnit %d", static_cast<int>(u));
}

void
Telemetry::publish(StatRegistry &reg, const std::string &prefix)
{
    if (boundReg != &reg || boundPrefix != prefix) {
        // Bind (or rebind) the per-unit node handles. node() references
        // are stable for the registry's lifetime; handle() references
        // are stable because registry nodes are never clear()ed by the
        // engine (only whole-registry clear() would invalidate them,
        // which no caller mixes with an attached simulator).
        for (std::size_t u = 0; u < kNumTelemetryUnits; ++u) {
            StatSet &node = reg.node(
                prefix + ".telemetry." +
                unitName(static_cast<TelemetryUnit>(u)));
            nodes_[u].busy = &node.handle("busy");
            for (std::size_t r = 0; r < kNumStallReasons; ++r) {
                nodes_[u].stall[r] = &node.handle(
                    std::string("stall_") +
                    toString(static_cast<StallReason>(r)));
            }
            nodes_[u].idle = &node.handle("idle");
            nodes_[u].total = &node.handle("total");
        }
        boundReg = &reg;
        boundPrefix = prefix;
    }
    for (std::size_t u = 0; u < kNumTelemetryUnits; ++u) {
        const UnitTrack &t = tracks_[u];
        *nodes_[u].busy = t.busyCycles();
        for (std::size_t r = 0; r < kNumStallReasons; ++r)
            *nodes_[u].stall[r] =
                t.stallCycles(static_cast<StallReason>(r));
        *nodes_[u].idle = t.idleCycles();
        *nodes_[u].total = t.totalCycles();
    }
}

void
Telemetry::saveState(ByteWriter &w) const
{
    w.u32(static_cast<std::uint32_t>(kNumTelemetryUnits));
    w.u32(static_cast<std::uint32_t>(kNumStallReasons));
    for (const UnitTrack &t : tracks_) {
        const EpochTotals &c = t.cumulative();
        w.u64(c.busy);
        for (std::uint64_t s : c.stall)
            w.u64(s);
        w.u64(c.idle);
        w.u64(c.total);
    }
    w.u32(frames_);
}

void
Telemetry::restoreState(ByteReader &r)
{
    if (r.u32() != kNumTelemetryUnits ||
        r.u32() != kNumStallReasons)
        throwIoError("telemetry checkpoint shape mismatch");
    for (UnitTrack &t : tracks_) {
        EpochTotals c;
        c.busy = r.u64();
        for (std::uint64_t &s : c.stall)
            s = r.u64();
        c.idle = r.u64();
        c.total = r.u64();
        t.restoreCumulative(c);
    }
    frames_ = r.u32();
}

void
Telemetry::resetCumulative()
{
    for (UnitTrack &t : tracks_)
        t.restoreCumulative(EpochTotals{});
    frames_ = 0;
}

} // namespace dtexl

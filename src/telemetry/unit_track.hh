/**
 * @file
 * Per-unit cycle accounting with the hard invariant
 *
 *     busy + sum(stall buckets) + idle == total
 *
 * enforced exactly (tests/test_telemetry.cc). The simulator is
 * event-driven, not cycle-stepped: units compute finish times with
 * max() algebra and revisit earlier timestamps out of order. A naive
 * sum of per-access wait times would double-count concurrent waits and
 * overflow the phase length, so UnitTrack accounts *intervals* against
 * a monotonically advancing watermark: a span is credited only for the
 * part above the watermark, which makes over-attribution impossible by
 * construction — out-of-order revisits of already-covered cycles fall
 * below the watermark and contribute nothing (a deliberate
 * undercount; the remainder lands in Idle).
 *
 * Units whose work items are known to be disjoint in time (the shader
 * cores: per-batch issue counts at strictly increasing cycles) skip
 * the watermark and add bucket deltas directly.
 */

#ifndef DTEXL_TELEMETRY_UNIT_TRACK_HH
#define DTEXL_TELEMETRY_UNIT_TRACK_HH

#include <algorithm>
#include <array>
#include <cstdint>

#include "common/log.hh"
#include "common/types.hh"
#include "telemetry/stall.hh"

namespace dtexl {

/** Busy/stall/idle totals of one epoch (one raster phase). */
struct EpochTotals
{
    std::uint64_t busy = 0;
    std::array<std::uint64_t, kNumStallReasons> stall{};
    std::uint64_t idle = 0;
    std::uint64_t total = 0;
};

/** Cycle accounting of one per-cycle unit. */
class UnitTrack
{
  public:
    /** Start a new accounting epoch (cycle counts restart at 0). */
    void
    beginEpoch()
    {
        wm = 0;
        cur = EpochTotals{};
    }

    /** Credit [s, e) above the watermark to a stall bucket. */
    void
    span(Cycle s, Cycle e, StallReason r)
    {
        if (e <= wm)
            return;
        s = std::max(s, wm);
        cur.stall[static_cast<std::size_t>(r)] += e - s;
        wm = e;
    }

    /** Credit [watermark, upTo) to a stall bucket. */
    void stall(Cycle upTo, StallReason r) { span(wm, upTo, r); }

    /** Credit [s, e) above the watermark as productive work. */
    void
    busy(Cycle s, Cycle e)
    {
        if (e <= wm)
            return;
        s = std::max(s, wm);
        cur.busy += e - s;
        wm = e;
    }

    /** Direct bucket delta (for units with disjoint known intervals). */
    void
    add(StallReason r, std::uint64_t n)
    {
        cur.stall[static_cast<std::size_t>(r)] += n;
    }

    /** Direct busy delta (see add()). */
    void addBusy(std::uint64_t n) { cur.busy += n; }

    /**
     * Close the epoch against the phase length: everything not
     * attributed becomes Idle, the epoch folds into the cumulative
     * totals, and the closed epoch is returned (for publishing).
     *
     * A unit may legitimately stay busy slightly past the phase end —
     * a drained tail of work that no longer affects the critical path
     * (e.g. trailing Early-Z tests whose quads are all culled), so the
     * unit's total is max(phase length, cycles covered).
     */
    EpochTotals
    finalizeEpoch(Cycle phaseCycles)
    {
        std::uint64_t covered = cur.busy;
        for (std::uint64_t s : cur.stall)
            covered += s;
        // The watermark can run past `covered` (gaps between spans are
        // skipped uncredited), so a drained tail is bounded by the
        // larger of the two, not by covered alone.
        const std::uint64_t total = std::max<std::uint64_t>(
            phaseCycles, std::max<std::uint64_t>(covered, wm));
        dtexl_assert(covered <= total,
                     "telemetry covered %llu beyond unit total %llu",
                     (unsigned long long)covered,
                     (unsigned long long)total);
        cur.idle = total - covered;
        cur.total = total;

        cum.busy += cur.busy;
        for (std::size_t i = 0; i < kNumStallReasons; ++i)
            cum.stall[i] += cur.stall[i];
        cum.idle += cur.idle;
        cum.total += cur.total;

        const EpochTotals closed = cur;
        wm = 0;
        cur = EpochTotals{};
        return closed;
    }

    // Cumulative totals over all finalized epochs.
    std::uint64_t busyCycles() const { return cum.busy; }
    std::uint64_t
    stallCycles(StallReason r) const
    {
        return cum.stall[static_cast<std::size_t>(r)];
    }
    std::uint64_t idleCycles() const { return cum.idle; }
    std::uint64_t totalCycles() const { return cum.total; }
    std::uint64_t
    attributedStallCycles() const
    {
        std::uint64_t s = 0;
        for (std::uint64_t v : cum.stall)
            s += v;
        return s;
    }
    const EpochTotals &cumulative() const { return cum; }

    /**
     * Overwrite the cumulative totals (checkpoint restore, at an epoch
     * boundary: the open epoch and watermark are reset too). The next
     * publish() then re-assigns registry counters exactly as an
     * uninterrupted run would have.
     */
    void
    restoreCumulative(const EpochTotals &t)
    {
        wm = 0;
        cur = EpochTotals{};
        cum = t;
    }

    /** Cumulative + current-epoch busy (live value for samplers). */
    std::uint64_t liveBusyCycles() const { return cum.busy + cur.busy; }
    /** Cumulative + current-epoch attributed stalls (live). */
    std::uint64_t
    liveStallCycles() const
    {
        std::uint64_t s = 0;
        for (std::uint64_t v : cur.stall)
            s += v;
        return attributedStallCycles() + s;
    }

  private:
    Cycle wm = 0;       ///< watermark: everything below is accounted
    EpochTotals cur;    ///< open epoch (idle/total unset until finalize)
    EpochTotals cum;    ///< all finalized epochs
};

} // namespace dtexl

#endif // DTEXL_TELEMETRY_UNIT_TRACK_HH

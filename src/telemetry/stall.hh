/**
 * @file
 * The closed stall-reason taxonomy of the telemetry subsystem: every
 * non-productive cycle of every per-cycle unit (rasterizer, Early-Z /
 * Blend banks, shader cores, caches, DRAM) is attributed to exactly one
 * of these reasons, or to Idle when no unit-level cause applies. The
 * enum is deliberately small and unit-agnostic; the unit a bucket is
 * reported under gives it its precise meaning (UpstreamStarve on a
 * Blend bank means "waiting for shaded quads", on the rasterizer it
 * means "waiting for the Tile Fetcher").
 */

#ifndef DTEXL_TELEMETRY_STALL_HH
#define DTEXL_TELEMETRY_STALL_HH

#include <cstddef>
#include <cstdint>

namespace dtexl {

/** Why a unit was not doing productive work this cycle. */
enum class StallReason : std::uint8_t {
    /** Waiting at a per-tile stage barrier (the coupled-pipeline
     *  mechanism of Figure 4; near zero with decoupled barriers). */
    BarrierWait,
    /** SC had in-flight warps but none ready to issue (all blocked on
     *  texture data or ALU latency). */
    NoReadyWarp,
    /** Input not available yet (previous stage still producing). */
    UpstreamStarve,
    /** Output side full or draining (stage FIFO back-pressure, Color
     *  Buffer flush still in flight). */
    DownstreamBackpressure,
    /** All MSHRs of a cache occupied by in-flight misses. */
    MshrFull,
    /** Cache port / DRAM bank arbitration conflict. */
    BankConflict,
    /** DRAM data channel saturated. */
    ChannelBusy,
};

inline constexpr std::size_t kNumStallReasons = 7;

/** Stable snake_case name, used as the "stall_<name>" counter key. */
constexpr const char *
toString(StallReason r)
{
    switch (r) {
      case StallReason::BarrierWait:            return "barrier_wait";
      case StallReason::NoReadyWarp:            return "no_ready_warp";
      case StallReason::UpstreamStarve:         return "upstream_starve";
      case StallReason::DownstreamBackpressure: return "downstream_backpressure";
      case StallReason::MshrFull:               return "mshr_full";
      case StallReason::BankConflict:           return "bank_conflict";
      case StallReason::ChannelBusy:            return "channel_busy";
    }
    return "unknown";
}

} // namespace dtexl

#endif // DTEXL_TELEMETRY_STALL_HH

/**
 * @file
 * Per-simulator telemetry sink: one UnitTrack per per-cycle unit plus
 * an optional low-overhead time-series sampler, all behind the
 * GpuConfig::telemetryLevel knob (0 = off, 1 = stall/busy counters,
 * 2 = counters + sampling).
 *
 * Telemetry is scoped to the *raster phase*: geometry and raster each
 * restart the cycle count at zero (see GpuSimulator::renderFrame), so
 * the simulator arms the tracks only around RasterPipeline::run() and
 * finalizes each epoch against that frame's raster-phase length. The
 * raster phase is where the paper's mechanisms live (barrier idling,
 * texture locality) and is the frame-time bottleneck in every
 * evaluated workload.
 *
 * Telemetry is strictly observation-only: every recorded quantity is
 * derived from simulated cycles the pipeline computes anyway, so
 * FrameStats, image hashes and every StatRegistry counter outside the
 * ".telemetry." namespace are bit-identical at any knob level
 * (tests/test_telemetry.cc).
 */

#ifndef DTEXL_TELEMETRY_TELEMETRY_HH
#define DTEXL_TELEMETRY_TELEMETRY_HH

#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/config.hh"
#include "common/stat_registry.hh"
#include "telemetry/unit_track.hh"

namespace dtexl {

class ByteReader;
class ByteWriter;

/** Every per-cycle unit the telemetry layer attributes cycles for. */
enum class TelemetryUnit : std::uint8_t {
    Raster,
    Ez0, Ez1, Ez2, Ez3,
    Sc0, Sc1, Sc2, Sc3,
    Blend0, Blend1, Blend2, Blend3,
    L1Tex0, L1Tex1, L1Tex2, L1Tex3,
    L1Vtx, L1Tile, L2, Dram,
};

inline constexpr std::size_t kNumTelemetryUnits = 21;

constexpr TelemetryUnit
ezUnit(std::uint32_t pipe)
{
    return static_cast<TelemetryUnit>(
        static_cast<std::uint8_t>(TelemetryUnit::Ez0) + pipe);
}
constexpr TelemetryUnit
scUnit(std::uint32_t pipe)
{
    return static_cast<TelemetryUnit>(
        static_cast<std::uint8_t>(TelemetryUnit::Sc0) + pipe);
}
constexpr TelemetryUnit
blendUnit(std::uint32_t pipe)
{
    return static_cast<TelemetryUnit>(
        static_cast<std::uint8_t>(TelemetryUnit::Blend0) + pipe);
}
constexpr TelemetryUnit
texUnit(std::uint32_t cache)
{
    return static_cast<TelemetryUnit>(
        static_cast<std::uint8_t>(TelemetryUnit::L1Tex0) + cache);
}

/** Stable unit name, used as the ".telemetry.<name>" node suffix. */
const char *unitName(TelemetryUnit u);

/** Telemetry state of one GpuSimulator (single-writer, like stats). */
class Telemetry
{
  public:
    explicit Telemetry(const GpuConfig &cfg)
        : level_(cfg.telemetryLevel),
          period_(cfg.telemetrySamplePeriod == 0
                      ? 1
                      : cfg.telemetrySamplePeriod)
    {}

    /** Level 1+: stall/busy attribution is recorded. */
    bool counters() const { return level_ >= 1; }
    /** Level 2: the time-series sampler is armed too. */
    bool sampling() const { return level_ >= 2; }
    std::uint32_t level() const { return level_; }

    UnitTrack &
    track(TelemetryUnit u)
    {
        return tracks_[static_cast<std::size_t>(u)];
    }
    const UnitTrack &
    track(TelemetryUnit u) const
    {
        return tracks_[static_cast<std::size_t>(u)];
    }

    /** Arm a new raster-phase epoch (cycle counts restart at 0). */
    void
    beginEpoch()
    {
        for (UnitTrack &t : tracks_)
            t.beginEpoch();
        rows_.clear();
        nextSampleAt = period_;
        for (std::size_t i = 0; i < sources_.size(); ++i)
            base_[i] = sources_[i].read();
    }

    /** Close the epoch against the raster-phase length. */
    void
    finalizeEpoch(Cycle phaseCycles)
    {
        for (std::size_t u = 0; u < kNumTelemetryUnits; ++u)
            epoch_[u] = tracks_[u].finalizeEpoch(phaseCycles);
        ++frames_;
    }

    /**
     * Report the cumulative per-unit totals into
     * "<prefix>.telemetry.<unit>" registry nodes (keys: busy,
     * stall_<reason>..., idle, total). Counters are *assigned*, not
     * incremented, so re-publishing every frame stays exact; node
     * handles are cached after the first publish.
     */
    void publish(StatRegistry &reg, const std::string &prefix);

    /** Per-unit totals of the most recently finalized epoch. */
    const EpochTotals &
    epoch(TelemetryUnit u) const
    {
        return epoch_[static_cast<std::size_t>(u)];
    }

    /** Frames finalized so far (the timeline's frame column). */
    std::uint32_t frames() const { return frames_; }

    // ---- Checkpoint support (frame-boundary warm state) ----

    /** Serialize cumulative per-unit totals + the frame count. */
    void saveState(ByteWriter &w) const;

    /** Inverse of saveState(); throws SimError{Io} on a bad payload. */
    void restoreState(ByteReader &r);

    /** Zero all cumulative state (failed-restore recovery). */
    void resetCumulative();

    // ---- Time-series sampling (level 2) ----

    /** One snapshot: epoch cycle + raw source values. */
    struct SampleRow
    {
        Cycle cycle = 0;
        std::vector<std::uint64_t> values;
    };

    /** Register a sampled counter source (read must stay valid). */
    void
    addSource(std::string name, std::function<std::uint64_t()> read)
    {
        sources_.push_back({std::move(name), std::move(read)});
        base_.resize(sources_.size(), 0);
    }

    /**
     * Take at most one snapshot per period crossing; called at tile
     * boundaries, so sample spacing is period-quantized, not exact.
     * The ring is bounded: past kMaxRows rows per epoch, sampling
     * stops (the timeline reports what it kept, never blocks).
     */
    void
    maybeSample(Cycle now)
    {
        if (now < nextSampleAt || rows_.size() >= kMaxRows)
            return;
        SampleRow row;
        row.cycle = now;
        row.values.reserve(sources_.size());
        for (const Source &s : sources_)
            row.values.push_back(s.read());
        rows_.push_back(std::move(row));
        nextSampleAt = now + period_;
    }

    std::size_t numSources() const { return sources_.size(); }
    const std::string &
    sourceName(std::size_t i) const
    {
        return sources_[i].name;
    }
    /** Source values captured when the epoch was armed. */
    const std::vector<std::uint64_t> &sampleBase() const { return base_; }
    const std::vector<SampleRow> &samples() const { return rows_; }
    void clearSamples() { rows_.clear(); }

    static constexpr std::size_t kMaxRows = 4096;

  private:
    struct Source
    {
        std::string name;
        std::function<std::uint64_t()> read;
    };

    std::uint32_t level_ = 0;
    Cycle period_ = 1;
    std::array<UnitTrack, kNumTelemetryUnits> tracks_;
    std::array<EpochTotals, kNumTelemetryUnits> epoch_{};
    std::uint32_t frames_ = 0;

    std::vector<Source> sources_;
    std::vector<std::uint64_t> base_;
    std::vector<SampleRow> rows_;
    Cycle nextSampleAt = 0;

    /** Cached registry handles; rebound if registry/prefix change. */
    struct NodeHandles
    {
        std::uint64_t *busy = nullptr;
        std::array<std::uint64_t *, kNumStallReasons> stall{};
        std::uint64_t *idle = nullptr;
        std::uint64_t *total = nullptr;
    };
    std::array<NodeHandles, kNumTelemetryUnits> nodes_{};
    const StatRegistry *boundReg = nullptr;
    std::string boundPrefix;
};

} // namespace dtexl

#endif // DTEXL_TELEMETRY_TELEMETRY_HH

/**
 * @file
 * Command-line options shared by every driver binary (the four
 * experiment binaries and sim_cli): worker count, trace output,
 * fast-path selection and the telemetry exporters. Each binary's arg
 * loop offers unrecognized arguments to CommonCliOptions::tryParse()
 * first, so these flags are spelled, validated and wired identically
 * everywhere instead of five slightly different copies.
 */

#ifndef DTEXL_TELEMETRY_CLI_OPTIONS_HH
#define DTEXL_TELEMETRY_CLI_OPTIONS_HH

#include <cstdint>
#include <string>

#include "cache/result_store.hh"

namespace dtexl {

struct GpuConfig;

/** Options common to every CLI; parse side effects arm the globals. */
struct CommonCliOptions
{
    /** --geom-threads/--raster-threads value meaning "not given". */
    static constexpr std::uint32_t kGeomThreadsUnset = ~0u;
    static constexpr std::uint32_t kRasterThreadsUnset = ~0u;
    /** --simd value meaning "not given" (keep the config default). */
    static constexpr std::uint32_t kSimdUnset = ~0u;

    /** Worker threads for the batch driver (--jobs=N, [1, 256]). */
    unsigned jobs = 1;
    /**
     * Geometry front-end threads per simulation (--geom-threads=N,
     * [0, 256]; 0 = auto). Unset leaves GpuConfig::geomThreads (or a
     * geom_threads key=value option) alone.
     */
    std::uint32_t geomThreads = kGeomThreadsUnset;
    /**
     * Raster execution domains per simulation (--raster-threads=N,
     * [0, 256] or "auto"; 0/auto = one per pipeline bank). Unset
     * leaves GpuConfig::rasterThreads (or a raster_threads key=value
     * option) alone.
     */
    std::uint32_t rasterThreads = kRasterThreadsUnset;
    /** --reference-path clears GpuConfig::simFastPath (A/B checks). */
    bool fastPath = true;
    /**
     * --simd=auto|scalar: host SIMD dispatch for the vectorized
     * kernels (stored as a SimdMode value; kSimdUnset leaves
     * GpuConfig::simdMode — the DTEXL_SIMD default or a simd
     * key=value option — alone). Results are bit-identical either
     * way; see GpuConfig::simdMode.
     */
    std::uint32_t simdMode = kSimdUnset;
    /** --trace=FILE: Chrome-trace JSON; enables TraceWriter. */
    std::string tracePath;
    /** --stats-json=FILE: flat StatRegistry dump (dtexl-stats-v1). */
    std::string statsJsonPath;
    /** --timeline-csv=FILE: level-2 sampler rows as CSV. */
    std::string timelineCsvPath;
    /** --crash-dir=DIR: where watchdog crash reports land. */
    std::string crashDir;
    /** --cache-dir=DIR: root of the content-addressed result store. */
    std::string cacheDir;
    /** --cache=off|read|readwrite: per-job result-cache mode. */
    CacheMode cacheMode = CacheMode::Off;
    /** --checkpoint-every=N: checkpoint every N frames (0 = off). */
    std::uint32_t checkpointEvery = 0;
    /** --resume: resume interrupted jobs from their checkpoints. */
    bool resumeFlag = false;
    /** --cache-gc=AGE value meaning "not given". */
    static constexpr std::uint64_t kCacheGcUnset = ~0ull;
    /**
     * --cache-gc=AGE: prune ckpt-*.bin files in --cache-dir older than
     * AGE (seconds, or with an s/m/h/d suffix; 0 = all) before the
     * run. Applied by applyThreadKnobs() after the cache is armed.
     */
    std::uint64_t cacheGcAge = kCacheGcUnset;
    /** --events=FILE: JSONL run-event ledger (dtexl-events-v1). */
    std::string eventsPath;
    /** --progress: live jobs/frames/ETA line on stderr. */
    bool progressFlag = false;

    /**
     * Consume @p arg if it is one of the shared flags (returns true);
     * throws SimError{UserInput} on a malformed value. Side effects:
     * --trace enables the global TraceWriter, --stats-json /
     * --timeline-csv arm the global TelemetryExport, --crash-dir sets
     * the crash-report directory, --inject-fault=SITE[:N] arms a
     * fault-injection site. The cache flags (--cache-dir, --cache,
     * --checkpoint-every, --resume) only record values here; they are
     * applied by applyThreadKnobs() so flag order never matters.
     */
    bool tryParse(const std::string &arg);

    /**
     * Record the process invocation (joined argv) for the ledger's
     * run_start event. Every driver calls this before its arg loop;
     * free-standing (no EventBus arming) so it is safe whether or not
     * --events ends up on the command line.
     */
    static void noteInvocation(int argc, char *const *argv);

    /**
     * Throw the canonical unknown-argument SimError{UserInput} for
     * @p arg, appending @p usage (typically the binary's usage/help
     * text) to the message. Every CLI's final else branch lands here so
     * unknown flags exit with kExitUserError and a usage hint.
     */
    [[noreturn]] static void rejectUnknown(const std::string &arg,
                                           const char *usage = "");

    /**
     * Resolve --geom-threads and --raster-threads into @p cfg, then
     * clamp the whole thread hierarchy against the host: geometry
     * workers and raster domains run in alternating phases, so peak
     * demand is jobs x max(geom, raster); when that exceeds hardware
     * concurrency both per-job knobs are clamped to hw/jobs with one
     * consolidated warn() per process. Call after every other config
     * option is applied, before cfg.validate(). Results are
     * bit-identical for any thread count, so the clamp only affects
     * host throughput, never simulation output.
     *
     * Also arms the global ResultCache from the recorded cache flags
     * (idempotent — the bench harness calls this once per variant),
     * since by this point every flag has been parsed regardless of
     * order on the command line.
     */
    void applyThreadKnobs(GpuConfig &cfg) const;

    /** Help lines for the shared flags (one per line, indented). */
    static const char *helpText();
};

} // namespace dtexl

#endif // DTEXL_TELEMETRY_CLI_OPTIONS_HH

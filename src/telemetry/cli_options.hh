/**
 * @file
 * Command-line options shared by every driver binary (the four
 * experiment binaries and sim_cli): worker count, trace output,
 * fast-path selection and the telemetry exporters. Each binary's arg
 * loop offers unrecognized arguments to CommonCliOptions::tryParse()
 * first, so these flags are spelled, validated and wired identically
 * everywhere instead of five slightly different copies.
 */

#ifndef DTEXL_TELEMETRY_CLI_OPTIONS_HH
#define DTEXL_TELEMETRY_CLI_OPTIONS_HH

#include <string>

namespace dtexl {

/** Options common to every CLI; parse side effects arm the globals. */
struct CommonCliOptions
{
    /** Worker threads for the batch driver (--jobs=N, [1, 256]). */
    unsigned jobs = 1;
    /** --reference-path clears GpuConfig::simFastPath (A/B checks). */
    bool fastPath = true;
    /** --trace=FILE: Chrome-trace JSON; enables TraceWriter. */
    std::string tracePath;
    /** --stats-json=FILE: flat StatRegistry dump (dtexl-stats-v1). */
    std::string statsJsonPath;
    /** --timeline-csv=FILE: level-2 sampler rows as CSV. */
    std::string timelineCsvPath;

    /**
     * Consume @p arg if it is one of the shared flags (returns true);
     * fatal() on a malformed value. Side effects: --trace enables the
     * global TraceWriter, --stats-json/--timeline-csv arm the global
     * TelemetryExport.
     */
    bool tryParse(const std::string &arg);

    /** Help lines for the shared flags (one per line, indented). */
    static const char *helpText();
};

} // namespace dtexl

#endif // DTEXL_TELEMETRY_CLI_OPTIONS_HH

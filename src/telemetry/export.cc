#include "telemetry/export.hh"

#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <vector>

#include "common/log.hh"
#include "common/sim_error.hh"
#include "common/trace.hh"

namespace dtexl {

struct TelemetryExport::Impl
{
    struct Row
    {
        std::string label;
        std::uint32_t frame;
        Cycle cycle;
        std::string source;
        std::uint64_t value;
    };

    std::mutex mu;
    std::string statsJsonPath;
    std::string timelineCsvPath;
    const StatRegistry *registry = nullptr;
    std::vector<Row> rows;
    bool timelineOn = false;

    void
    armAtexit()
    {
        static bool hooked = false;
        if (!hooked) {
            hooked = true;
            std::atexit([] { TelemetryExport::global().flush(); });
            // Exceptional unwinds (a failed job, a guarded main)
            // flush through the non-detaching checkpoint so partial
            // artifacts survive even if the process never reaches a
            // clean exit, while the registry stays attached for the
            // batch's final flush().
            registerFailureFlush(
                [] { TelemetryExport::global().checkpoint(); });
        }
    }

    /** Write both files; caller holds mu. */
    void writeLocked();
};

TelemetryExport::Impl &
TelemetryExport::impl()
{
    static Impl instance;
    return instance;
}

TelemetryExport &
TelemetryExport::global()
{
    static TelemetryExport exporter;
    return exporter;
}

void
TelemetryExport::setStatsJsonPath(const std::string &path)
{
    Impl &im = impl();
    std::lock_guard<std::mutex> lock(im.mu);
    im.statsJsonPath = path;
    im.armAtexit();
}

void
TelemetryExport::setTimelineCsvPath(const std::string &path)
{
    Impl &im = impl();
    std::lock_guard<std::mutex> lock(im.mu);
    im.timelineCsvPath = path;
    im.timelineOn = !path.empty();
    im.armAtexit();
}

void
TelemetryExport::attachRegistry(const StatRegistry *reg)
{
    Impl &im = impl();
    std::lock_guard<std::mutex> lock(im.mu);
    im.registry = reg;
}

bool
TelemetryExport::statsJsonEnabled() const
{
    Impl &im = const_cast<TelemetryExport *>(this)->impl();
    std::lock_guard<std::mutex> lock(im.mu);
    return !im.statsJsonPath.empty();
}

bool
TelemetryExport::timelineEnabled() const
{
    // Racy-read tolerable: set once during argv parsing, before any
    // worker thread exists.
    return const_cast<TelemetryExport *>(this)->impl().timelineOn;
}

void
TelemetryExport::appendTimelineRow(const std::string &label,
                                   std::uint32_t frame, Cycle cycle,
                                   const std::string &source,
                                   std::uint64_t value)
{
    Impl &im = impl();
    std::lock_guard<std::mutex> lock(im.mu);
    if (im.timelineCsvPath.empty())
        return;
    im.rows.push_back({label, frame, cycle, source, value});
}

void
TelemetryExport::Impl::writeLocked()
{
    Impl &im = *this;
    if (!im.statsJsonPath.empty() && im.registry) {
        FILE *f = std::fopen(im.statsJsonPath.c_str(), "w");
        if (!f) {
            warn("cannot open stats JSON file '%s'",
                 im.statsJsonPath.c_str());
        } else {
            std::fprintf(f,
                         "{\n\"schema\":\"dtexl-stats-v1\",\n"
                         "\"registry\":\"%s\",\n\"nodes\":{\n",
                         jsonEscape(im.registry->name()).c_str());
            const std::vector<std::string> paths = im.registry->paths();
            for (std::size_t i = 0; i < paths.size(); ++i) {
                const StatSet *node = im.registry->find(paths[i]);
                std::fprintf(f, "\"%s\":{",
                             jsonEscape(paths[i]).c_str());
                bool first = true;
                for (const auto &[key, value] : node->counters()) {
                    std::fprintf(f, "%s\"%s\":%llu",
                                 first ? "" : ",",
                                 jsonEscape(key).c_str(),
                                 static_cast<unsigned long long>(value));
                    first = false;
                }
                std::fprintf(f, "}%s\n",
                             i + 1 == paths.size() ? "" : ",");
            }
            std::fprintf(f, "}\n}\n");
            std::fclose(f);
        }
    }

    if (!im.timelineCsvPath.empty() && !im.rows.empty()) {
        FILE *f = std::fopen(im.timelineCsvPath.c_str(), "w");
        if (!f) {
            warn("cannot open timeline CSV file '%s'",
                 im.timelineCsvPath.c_str());
        } else {
            std::fprintf(f, "label,frame,cycle,source,value\n");
            for (const Impl::Row &r : im.rows) {
                std::fprintf(f, "%s,%u,%llu,%s,%llu\n",
                             r.label.c_str(), r.frame,
                             static_cast<unsigned long long>(r.cycle),
                             r.source.c_str(),
                             static_cast<unsigned long long>(r.value));
            }
            std::fclose(f);
        }
    }
}

void
TelemetryExport::flush()
{
    Impl &im = impl();
    std::lock_guard<std::mutex> lock(im.mu);
    im.writeLocked();
    // Detach: the registry may be a stack local of main(); the atexit
    // backstop must not touch it after an explicit flush.
    im.registry = nullptr;
    im.rows.clear();
}

void
TelemetryExport::checkpoint()
{
    Impl &im = impl();
    std::lock_guard<std::mutex> lock(im.mu);
    im.writeLocked();
}

} // namespace dtexl

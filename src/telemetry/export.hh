/**
 * @file
 * Machine-readable telemetry exporters, process-global like
 * TraceWriter: `--stats-json=FILE` writes a flat JSON dump of an
 * attached StatRegistry (schema "dtexl-stats-v1"), `--timeline-csv=FILE`
 * writes the level-2 sampler's counter timelines as CSV rows
 * (label,frame,cycle,source,value). Rows are buffered in memory and
 * written by flush(); enabling either path installs an atexit backstop
 * so files appear even when a binary exits through fatal().
 */

#ifndef DTEXL_TELEMETRY_EXPORT_HH
#define DTEXL_TELEMETRY_EXPORT_HH

#include <cstdint>
#include <string>

#include "common/stat_registry.hh"
#include "common/types.hh"

namespace dtexl {

/** Process-global exporter; inert until a path is set. */
class TelemetryExport
{
  public:
    static TelemetryExport &global();

    /** Set the --stats-json output path and arm the atexit backstop. */
    void setStatsJsonPath(const std::string &path);
    /** Set the --timeline-csv output path (same backstop). */
    void setTimelineCsvPath(const std::string &path);

    /**
     * Registry dumped by the stats-JSON exporter. flush() detaches it,
     * so a stack-allocated registry is safe as long as the owner calls
     * flush() before the registry dies (the CLIs do, at end of main).
     */
    void attachRegistry(const StatRegistry *reg);

    bool statsJsonEnabled() const;
    bool timelineEnabled() const;

    /** Buffer one timeline sample (thread-safe). */
    void appendTimelineRow(const std::string &label, std::uint32_t frame,
                           Cycle cycle, const std::string &source,
                           std::uint64_t value);

    /**
     * Write both files (if their paths are set), then detach the
     * registry and drop the buffered rows; subsequent calls are no-ops
     * until new data arrives.
     */
    void flush();

    /**
     * Failure-path flush: write both files like flush() but keep the
     * registry attached and the rows buffered, so a batch that
     * continues after one job fails still produces complete final
     * artifacts. Registered with registerFailureFlush() when a path is
     * armed; every failure unwind calls it via
     * flushFailureArtifacts().
     */
    void checkpoint();

  private:
    struct Impl;
    Impl &impl();
};

} // namespace dtexl

#endif // DTEXL_TELEMETRY_EXPORT_HH

#include "workloads/scenegen.hh"

#include <algorithm>
#include <cmath>

#include "common/log.hh"
#include "common/rng.hh"
#include "mem/address_map.hh"

namespace dtexl {

namespace {

/** Mip-chain footprint of a square texture of the given side. */
std::uint64_t
chainBytes(std::uint32_t side, TexFormat fmt = TexFormat::RGBA8)
{
    return TextureDesc(0, 0, side, fmt).totalBytes();
}

/** Clip-space vertex from pixel coordinates + depth + uv. */
Vertex
screenVertex(const GpuConfig &cfg, float px, float py, float depth,
             float u, float v)
{
    Vertex vert;
    vert.pos.x = px / (static_cast<float>(cfg.screenWidth) * 0.5f) - 1.0f;
    vert.pos.y = py / (static_cast<float>(cfg.screenHeight) * 0.5f) -
                 1.0f;
    vert.pos.z = depth * 2.0f - 1.0f;
    vert.pos.w = 1.0f;
    vert.uv = {u, v};
    return vert;
}

/** Standard-normal draw (Box-Muller). */
double
gaussian(Rng &rng)
{
    const double u1 = std::max(rng.nextDouble(), 1e-12);
    const double u2 = rng.nextDouble();
    return std::sqrt(-2.0 * std::log(u1)) *
           std::cos(2.0 * 3.14159265358979323846 * u2);
}

/** Allocator threading vertex-buffer addresses through the draws. */
class VertexAlloc
{
  public:
    Addr
    take(std::size_t vertices)
    {
        const Addr a = next;
        next += vertices * kVertexFetchBytes;
        return a;
    }

  private:
    Addr next = addr_map::kVertexBase;
};

/** Append an axis-aligned textured rectangle (two triangles). */
void
addRect(Scene &scene, const GpuConfig &cfg, VertexAlloc &valloc,
        float x0, float y0, float x1, float y1, float depth,
        TextureId tex, float u0, float v0, float u1, float v1,
        const ShaderDesc &shader)
{
    DrawCommand draw;
    draw.texture = tex;
    draw.shader = shader;
    draw.vertices = {
        screenVertex(cfg, x0, y0, depth, u0, v0),
        screenVertex(cfg, x1, y0, depth, u1, v0),
        screenVertex(cfg, x0, y1, depth, u0, v1),
        screenVertex(cfg, x1, y1, depth, u1, v1),
    };
    draw.indices = {0, 1, 2, 2, 1, 3};
    draw.vertexBufferAddr = valloc.take(draw.vertices.size());
    scene.draws.push_back(std::move(draw));
}

} // namespace

Scene
generateScene(const BenchmarkParams &params, const GpuConfig &cfg,
              std::uint32_t frame)
{
    Rng rng(params.seed);
    // Camera scroll per frame, in pixels; 2D games pan slower.
    const float scroll =
        static_cast<float>(frame) * (params.is3D ? 12.0f : 6.0f);
    Scene scene;
    VertexAlloc valloc;

    const float w = static_cast<float>(cfg.screenWidth);
    const float h = static_cast<float>(cfg.screenHeight);

    // ---- Textures: realise the Table I footprint over the set ----
    // Greedy sizing: start every texture at the minimum side and keep
    // doubling the smallest one while the total stays within budget,
    // so the realised footprint tracks the published figure despite
    // power-of-two quantisation. The background atlas (texture 0) is
    // kept the largest.
    const auto total_budget = static_cast<std::uint64_t>(
        params.textureFootprintMiB * 1024.0 * 1024.0);
    const std::uint32_t n_tex = std::max(1u, params.numTextures);

    // Formats: the last ceil(frac * n) textures are ETC2-compressed
    // (3D assets); the atlas and the rest stay RGBA8.
    std::vector<TexFormat> fmts(n_tex, TexFormat::RGBA8);
    const auto n_compressed = static_cast<std::uint32_t>(
        params.compressedFraction * n_tex + 0.5);
    for (std::uint32_t i = 0; i < n_compressed && i + 1 < n_tex; ++i)
        fmts[n_tex - 1 - i] = TexFormat::ETC2;

    std::vector<std::uint32_t> sides(n_tex, 64);
    std::uint64_t total = 0;
    for (std::uint32_t i = 0; i < n_tex; ++i)
        total += chainBytes(64, fmts[i]);
    for (;;) {
        // Pick the smallest texture (prefer index 0 on ties so the
        // atlas grows first).
        std::uint32_t pick = 0;
        for (std::uint32_t i = 1; i < n_tex; ++i)
            if (sides[i] < sides[pick])
                pick = i;
        if (sides[pick] >= 4096)
            break;
        const std::uint64_t grown =
            total - chainBytes(sides[pick], fmts[pick]) +
            chainBytes(sides[pick] * 2, fmts[pick]);
        if (grown > total_budget && total >= total_budget / 2)
            break;
        sides[pick] *= 2;
        total = grown;
    }
    // Ensure the atlas is at least as large as any other texture.
    const std::uint32_t max_side =
        *std::max_element(sides.begin(), sides.end());
    const auto max_it =
        std::find(sides.begin(), sides.end(), max_side);
    std::swap(sides[0], *max_it);
    std::swap(fmts[0],
              fmts[static_cast<std::size_t>(max_it - sides.begin())]);

    Addr tex_addr = addr_map::kTextureBase;
    for (std::uint32_t i = 0; i < n_tex; ++i) {
        scene.textures.emplace_back(i, tex_addr, sides[i], fmts[i]);
        tex_addr += scene.textures.back().totalBytes();
        tex_addr = (tex_addr + 4095) & ~Addr{4095};
    }

    ShaderDesc base_shader;
    base_shader.aluOps = params.aluOpsMean;
    base_shader.texSamples = params.texSamplesPerFrag;
    base_shader.filter = params.filter;
    base_shader.blends = false;

    // ---- Background: full-screen cell grid, continuous uv ----
    {
        const TextureDesc &atlas = scene.textures[0];
        const float cell = 128.0f;
        const float texel_scale =
            static_cast<float>(params.texelsPerPixel) /
            static_cast<float>(atlas.side());
        for (float y0 = 0.0f; y0 < h; y0 += cell) {
            for (float x0 = 0.0f; x0 < w; x0 += cell) {
                const float x1 = std::min(x0 + cell, w);
                const float y1 = std::min(y0 + cell, h);
                addRect(scene, cfg, valloc, x0, y0, x1, y1, 0.98f,
                        atlas.id(), (x0 + scroll) * texel_scale,
                        y0 * texel_scale, (x1 + scroll) * texel_scale,
                        y1 * texel_scale, base_shader);
            }
        }
    }

    // ---- Objects: clustered, horizontally biased rectangles ----
    const double screen_area = static_cast<double>(w) * h;
    double budget = (params.overdrawFactor - 1.0) * screen_area;

    // Cluster hot-spots (overdraw concentrates here).
    constexpr int kClusters = 6;
    struct Spot
    {
        double x, y;
    };
    std::array<Spot, kClusters> spots;
    for (auto &s : spots)
        s = {rng.nextDouble(0.1, 0.9) * w, rng.nextDouble(0.1, 0.9) * h};

    std::uint32_t obj_index = 0;
    while (budget > 0.0) {
        const double area = std::clamp(
            -std::log(std::max(rng.nextDouble(), 1e-12)) *
                params.meanPrimArea,
            256.0, params.meanPrimArea * 6.0);
        const double aspect =
            params.horizontalBias * rng.nextDouble(0.6, 1.7);
        const double rw = std::sqrt(area * aspect);
        const double rh = area / rw;

        double cx, cy;
        if (rng.nextBool(params.clusterFactor)) {
            const Spot &s = spots[rng.nextBounded(kClusters)];
            cx = s.x + gaussian(rng) * w * 0.06;
            cy = s.y + gaussian(rng) * h * 0.06;
        } else {
            cx = rng.nextDouble() * w;
            cy = rng.nextDouble() * h;
        }
        // Objects drift against the camera; wrap around the screen.
        cx = std::fmod(cx - scroll * 0.5 + 8.0 * w, static_cast<double>(w));
        const auto x0 = static_cast<float>(cx - rw / 2);
        const auto y0 = static_cast<float>(cy - rh / 2);
        const auto x1 = static_cast<float>(cx + rw / 2);
        const auto y1 = static_cast<float>(cy + rh / 2);

        // 3D scenes submit at random depth (Early-Z culls the hidden
        // part); 2D scenes paint back-to-front with heavy blending.
        float depth;
        if (params.is3D) {
            depth = static_cast<float>(rng.nextDouble(0.05, 0.95));
        } else {
            depth = std::max(0.05f, 0.9f - 1e-5f *
                                        static_cast<float>(obj_index));
        }

        const TextureId tex = static_cast<TextureId>(
            n_tex > 1 ? 1 + rng.nextBounded(n_tex - 1) : 0);
        const TextureDesc &td = scene.textures[tex];
        const float uscale = static_cast<float>(params.texelsPerPixel) /
                             static_cast<float>(td.side());
        const float u0 = static_cast<float>(rng.nextDouble());
        const float v0 = static_cast<float>(rng.nextDouble());

        ShaderDesc shader = base_shader;
        shader.aluOps = static_cast<std::uint16_t>(std::clamp<std::uint32_t>(
            static_cast<std::uint32_t>(
                rng.nextGeometric(params.aluOpsMean / 4.0) * 4),
            4, params.aluOpsMean * 4u));
        shader.blends = rng.nextBool(params.blendFraction);

        addRect(scene, cfg, valloc, x0, y0, x1, y1, depth, tex, u0, v0,
                u0 + static_cast<float>(rw) * uscale,
                v0 + static_cast<float>(rh) * uscale, shader);

        // Only the on-screen part consumes overdraw budget.
        const double vis_w =
            std::max(0.0, std::min<double>(x1, w) - std::max(x0, 0.0f));
        const double vis_h =
            std::max(0.0, std::min<double>(y1, h) - std::max(y0, 0.0f));
        budget -= std::max(vis_w * vis_h, 64.0);
        ++obj_index;
    }

    return scene;
}

Scene
makeTinyScene(const GpuConfig &cfg)
{
    Scene scene;
    VertexAlloc valloc;
    scene.textures.emplace_back(0, addr_map::kTextureBase, 256);

    ShaderDesc shader;
    shader.aluOps = 8;
    shader.texSamples = 1;
    shader.filter = FilterMode::Bilinear;

    const float w = static_cast<float>(cfg.screenWidth);
    const float h = static_cast<float>(cfg.screenHeight);
    addRect(scene, cfg, valloc, 0.0f, 0.0f, w, h, 0.9f, 0, 0.0f, 0.0f,
            w / 256.0f, h / 256.0f, shader);
    shader.blends = true;
    addRect(scene, cfg, valloc, w * 0.25f, h * 0.25f, w * 0.75f,
            h * 0.75f, 0.5f, 0, 0.1f, 0.1f, 0.6f, 0.6f, shader);
    return scene;
}

} // namespace dtexl

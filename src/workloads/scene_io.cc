#include "workloads/scene_io.hh"

#include <fstream>
#include <iomanip>
#include <sstream>

#include "common/log.hh"

namespace dtexl {

namespace {

constexpr const char *kMagic = "DTEXL_SCENE";
constexpr int kVersion = 1;

const char *
filterName(FilterMode f)
{
    switch (f) {
      case FilterMode::Nearest:   return "nearest";
      case FilterMode::Bilinear:  return "bilinear";
      case FilterMode::Trilinear: return "trilinear";
      case FilterMode::Aniso2x:   return "aniso2x";
    }
    panic("unknown FilterMode %d", static_cast<int>(f));
}

FilterMode
filterFromName(const std::string &name)
{
    if (name == "nearest")
        return FilterMode::Nearest;
    if (name == "bilinear")
        return FilterMode::Bilinear;
    if (name == "trilinear")
        return FilterMode::Trilinear;
    if (name == "aniso2x")
        return FilterMode::Aniso2x;
    fatal("scene file: unknown filter '%s'", name.c_str());
}

TexFormat
formatFromName(const std::string &name)
{
    if (name == "RGBA8")
        return TexFormat::RGBA8;
    if (name == "RGB565")
        return TexFormat::RGB565;
    if (name == "ETC2")
        return TexFormat::ETC2;
    fatal("scene file: unknown texture format '%s'", name.c_str());
}

/** Read one non-empty, non-comment line; fatal() at EOF. */
std::string
nextLine(std::istream &is, const char *what)
{
    std::string line;
    while (std::getline(is, line)) {
        const std::size_t start = line.find_first_not_of(" \t\r");
        if (start == std::string::npos || line[start] == '#')
            continue;
        return line.substr(start);
    }
    fatal("scene file: unexpected end of file while reading %s", what);
}

} // namespace

void
saveScene(std::ostream &os, const Scene &scene)
{
    os << kMagic << " v" << kVersion << "\n";
    os << "# textures: id base side format\n";
    os << "textures " << scene.textures.size() << "\n";
    for (const TextureDesc &t : scene.textures) {
        os << "  " << t.id() << " " << t.baseAddr() << " " << t.side()
           << " " << toString(t.format()) << "\n";
    }
    os << "draws " << scene.draws.size() << "\n";
    os << std::setprecision(9);
    for (const DrawCommand &d : scene.draws) {
        os << "draw tex=" << d.texture << " vb=" << d.vertexBufferAddr
           << " alu=" << d.shader.aluOps
           << " samples=" << static_cast<int>(d.shader.texSamples)
           << " filter=" << filterName(d.shader.filter)
           << " blends=" << (d.shader.blends ? 1 : 0)
           << " modifies_depth=" << (d.shader.modifiesDepth ? 1 : 0)
           << "\n";
        os << "  verts " << d.vertices.size() << "\n";
        for (const Vertex &v : d.vertices) {
            os << "    " << v.pos.x << " " << v.pos.y << " " << v.pos.z
               << " " << v.pos.w << " " << v.uv.x << " " << v.uv.y
               << "\n";
        }
        os << "  indices " << d.indices.size() << "\n    ";
        for (std::size_t i = 0; i < d.indices.size(); ++i)
            os << d.indices[i]
               << (i + 1 == d.indices.size() ? "\n" : " ");
        if (d.indices.empty())
            os << "\n";
    }
}

Scene
loadScene(std::istream &is)
{
    Scene scene;
    {
        std::istringstream header(nextLine(is, "header"));
        std::string magic, version;
        header >> magic >> version;
        if (magic != kMagic || version != "v1")
            fatal("scene file: bad header '%s %s'", magic.c_str(),
                  version.c_str());
    }
    {
        std::istringstream ts(nextLine(is, "texture count"));
        std::string kw;
        std::size_t n = 0;
        ts >> kw >> n;
        if (kw != "textures")
            fatal("scene file: expected 'textures', got '%s'",
                  kw.c_str());
        for (std::size_t i = 0; i < n; ++i) {
            std::istringstream ls(nextLine(is, "texture"));
            TextureId id;
            Addr base;
            std::uint32_t side;
            std::string fmt;
            ls >> id >> base >> side >> fmt;
            if (!ls)
                fatal("scene file: malformed texture line");
            if (id != i)
                fatal("scene file: texture ids must be dense");
            scene.textures.emplace_back(id, base, side,
                                        formatFromName(fmt));
        }
    }
    std::size_t n_draws = 0;
    {
        std::istringstream ds(nextLine(is, "draw count"));
        std::string kw;
        ds >> kw >> n_draws;
        if (kw != "draws")
            fatal("scene file: expected 'draws', got '%s'", kw.c_str());
    }
    for (std::size_t i = 0; i < n_draws; ++i) {
        DrawCommand d;
        {
            std::istringstream ls(nextLine(is, "draw"));
            std::string kw;
            ls >> kw;
            if (kw != "draw")
                fatal("scene file: expected 'draw', got '%s'",
                      kw.c_str());
            std::string kv;
            while (ls >> kv) {
                const std::size_t eq = kv.find('=');
                if (eq == std::string::npos)
                    fatal("scene file: bad draw attribute '%s'",
                          kv.c_str());
                const std::string key = kv.substr(0, eq);
                const std::string value = kv.substr(eq + 1);
                if (key == "tex")
                    d.texture = static_cast<TextureId>(
                        std::stoul(value));
                else if (key == "vb")
                    d.vertexBufferAddr = std::stoull(value);
                else if (key == "alu")
                    d.shader.aluOps =
                        static_cast<std::uint16_t>(std::stoul(value));
                else if (key == "samples")
                    d.shader.texSamples =
                        static_cast<std::uint8_t>(std::stoul(value));
                else if (key == "filter")
                    d.shader.filter = filterFromName(value);
                else if (key == "blends")
                    d.shader.blends = value == "1";
                else if (key == "modifies_depth")
                    d.shader.modifiesDepth = value == "1";
                else
                    fatal("scene file: unknown draw attribute '%s'",
                          key.c_str());
            }
            if (d.texture >= scene.textures.size())
                fatal("scene file: draw references texture %u of %zu",
                      d.texture, scene.textures.size());
        }
        {
            std::istringstream vs(nextLine(is, "verts"));
            std::string kw;
            std::size_t n = 0;
            vs >> kw >> n;
            if (kw != "verts")
                fatal("scene file: expected 'verts', got '%s'",
                      kw.c_str());
            for (std::size_t v = 0; v < n; ++v) {
                std::istringstream ls(nextLine(is, "vertex"));
                Vertex vert;
                ls >> vert.pos.x >> vert.pos.y >> vert.pos.z >>
                    vert.pos.w >> vert.uv.x >> vert.uv.y;
                if (!ls)
                    fatal("scene file: malformed vertex line");
                d.vertices.push_back(vert);
            }
        }
        {
            std::istringstream isz(nextLine(is, "indices"));
            std::string kw;
            std::size_t n = 0;
            isz >> kw >> n;
            if (kw != "indices")
                fatal("scene file: expected 'indices', got '%s'",
                      kw.c_str());
            if (n % 3 != 0)
                fatal("scene file: index count %zu not a triangle "
                      "list", n);
            std::istringstream ls(n > 0 ? nextLine(is, "index data")
                                        : std::string());
            for (std::size_t k = 0; k < n; ++k) {
                std::uint32_t idx;
                if (!(ls >> idx))
                    fatal("scene file: missing index data");
                if (idx >= d.vertices.size())
                    fatal("scene file: index %u out of range", idx);
                d.indices.push_back(idx);
            }
        }
        scene.draws.push_back(std::move(d));
    }
    return scene;
}

void
saveSceneFile(const std::string &path, const Scene &scene)
{
    std::ofstream os(path);
    if (!os)
        fatal("cannot open '%s' for writing", path.c_str());
    saveScene(os, scene);
    if (!os.good())
        fatal("error writing '%s'", path.c_str());
}

Scene
loadSceneFile(const std::string &path)
{
    std::ifstream is(path);
    if (!is)
        fatal("cannot open '%s'", path.c_str());
    return loadScene(is);
}

} // namespace dtexl

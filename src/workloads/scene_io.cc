#include "workloads/scene_io.hh"

#include <cmath>
#include <cstdarg>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <sstream>
#include <vector>

#include "common/fault_inject.hh"
#include "common/log.hh"
#include "common/sim_error.hh"

namespace dtexl {

namespace {

constexpr const char *kMagic = "DTEXL_SCENE";
constexpr int kVersion = 1;

const char *
filterName(FilterMode f)
{
    switch (f) {
      case FilterMode::Nearest:   return "nearest";
      case FilterMode::Bilinear:  return "bilinear";
      case FilterMode::Trilinear: return "trilinear";
      case FilterMode::Aniso2x:   return "aniso2x";
    }
    panic("unknown FilterMode %d", static_cast<int>(f));
}

/**
 * Line-and-token scene parser. Every diagnostic carries a
 * "source:line:column" context and the offending token, so a user can
 * jump straight to the broken spot of a hand-edited scene. All errors
 * are SimError{UserInput} — a bad scene never aborts the process.
 */
class SceneParser
{
  public:
    SceneParser(std::istream &is, std::string source)
        : is_(is), source_(std::move(source))
    {
    }

    /** One whitespace-separated token plus its 1-based column. */
    struct Token
    {
        std::string text;
        std::size_t col = 1;
    };

    /**
     * Read the next non-empty, non-comment line and split it into
     * tokens; throws a truncation error naming @p what at EOF.
     */
    std::vector<Token> nextLine(const char *what)
    {
        std::string line;
        while (!truncated_ && std::getline(is_, line)) {
            ++lineNo_;
            if (FaultInject::global().fire(FaultSite::SceneTruncate)) {
                truncated_ = true;
                break;
            }
            if (FaultInject::global().fire(
                    FaultSite::SceneCorruptToken)) {
                // Corrupt the line's first token (trailing tokens can
                // be legally ignored; the leading one never is).
                line.insert(0, "\x7f!corrupt!");
            }
            std::vector<Token> toks = tokenize(line);
            if (toks.empty() || toks[0].text[0] == '#')
                continue;
            return toks;
        }
        throw SimError(
            ErrorKind::UserInput,
            vformatMsg("unexpected end of file while reading %s",
                       what),
            location(1));
    }

    [[noreturn]] void
    failAt(const Token &tok, const std::string &msg) const
    {
        throw SimError(ErrorKind::UserInput,
                       msg + ": '" + printable(tok.text) + "'",
                       location(tok.col));
    }

    [[noreturn]] void
    failLine(const std::string &msg) const
    {
        throw SimError(ErrorKind::UserInput, msg, location(1));
    }

    /** Expect exactly the keyword @p kw as @p tok. */
    void
    expectKeyword(const Token &tok, const char *kw) const
    {
        if (tok.text != kw)
            failAt(tok, vformatMsg("expected '%s'", kw));
    }

    std::uint64_t
    parseU64(const Token &tok, const char *what) const
    {
        const char *s = tok.text.c_str();
        char *end = nullptr;
        const unsigned long long v = std::strtoull(s, &end, 10);
        if (end == s || *end != '\0' || tok.text[0] == '-')
            failAt(tok, vformatMsg("%s is not a non-negative integer",
                                   what));
        return v;
    }

    std::uint32_t
    parseU32(const Token &tok, const char *what) const
    {
        const std::uint64_t v = parseU64(tok, what);
        if (v > UINT32_MAX)
            failAt(tok, vformatMsg("%s out of 32-bit range", what));
        return static_cast<std::uint32_t>(v);
    }

    /** Strict finite float: rejects garbage, trailing junk, NaN/inf. */
    float
    parseF32(const Token &tok, const char *what) const
    {
        const char *s = tok.text.c_str();
        char *end = nullptr;
        const float v = std::strtof(s, &end);
        if (end == s || *end != '\0')
            failAt(tok, vformatMsg("%s is not a number", what));
        if (!std::isfinite(v))
            failAt(tok, vformatMsg("%s must be finite "
                                   "(NaN/inf rejected)", what));
        return v;
    }

  private:
    std::string
    location(std::size_t col) const
    {
        return source_ + ":" + std::to_string(lineNo_) + ":" +
               std::to_string(col);
    }

    static std::string
    vformatMsg(const char *fmt, ...)
    {
        std::va_list ap;
        va_start(ap, fmt);
        std::string s = vformat(fmt, ap);
        va_end(ap);
        return s;
    }

    /** Control bytes rendered as '?' so diagnostics stay printable. */
    static std::string
    printable(const std::string &raw)
    {
        std::string out;
        out.reserve(raw.size());
        for (char c : raw)
            out += (c >= 0x20 && c != 0x7f) ? c : '?';
        return out;
    }

    static std::vector<Token>
    tokenize(const std::string &line)
    {
        std::vector<Token> toks;
        std::size_t i = 0;
        while (i < line.size()) {
            if (line[i] == ' ' || line[i] == '\t' || line[i] == '\r') {
                ++i;
                continue;
            }
            const std::size_t start = i;
            while (i < line.size() && line[i] != ' ' &&
                   line[i] != '\t' && line[i] != '\r')
                ++i;
            toks.push_back(
                Token{line.substr(start, i - start), start + 1});
        }
        return toks;
    }

    std::istream &is_;
    std::string source_;
    std::size_t lineNo_ = 0;
    bool truncated_ = false;
};

FilterMode
filterFromToken(const SceneParser &p, const SceneParser::Token &tok,
                const std::string &value)
{
    if (value == "nearest")
        return FilterMode::Nearest;
    if (value == "bilinear")
        return FilterMode::Bilinear;
    if (value == "trilinear")
        return FilterMode::Trilinear;
    if (value == "aniso2x")
        return FilterMode::Aniso2x;
    p.failAt(tok, "unknown filter (nearest|bilinear|trilinear|aniso2x)");
}

TexFormat
formatFromToken(const SceneParser &p, const SceneParser::Token &tok)
{
    if (tok.text == "RGBA8")
        return TexFormat::RGBA8;
    if (tok.text == "RGB565")
        return TexFormat::RGB565;
    if (tok.text == "ETC2")
        return TexFormat::ETC2;
    p.failAt(tok, "unknown texture format (RGBA8|RGB565|ETC2)");
}

} // namespace

void
saveScene(std::ostream &os, const Scene &scene)
{
    os << kMagic << " v" << kVersion << "\n";
    os << "# textures: id base side format\n";
    os << "textures " << scene.textures.size() << "\n";
    for (const TextureDesc &t : scene.textures) {
        os << "  " << t.id() << " " << t.baseAddr() << " " << t.side()
           << " " << toString(t.format()) << "\n";
    }
    os << "draws " << scene.draws.size() << "\n";
    os << std::setprecision(9);
    for (const DrawCommand &d : scene.draws) {
        os << "draw tex=" << d.texture << " vb=" << d.vertexBufferAddr
           << " alu=" << d.shader.aluOps
           << " samples=" << static_cast<int>(d.shader.texSamples)
           << " filter=" << filterName(d.shader.filter)
           << " blends=" << (d.shader.blends ? 1 : 0)
           << " modifies_depth=" << (d.shader.modifiesDepth ? 1 : 0)
           << "\n";
        os << "  verts " << d.vertices.size() << "\n";
        for (const Vertex &v : d.vertices) {
            os << "    " << v.pos.x << " " << v.pos.y << " " << v.pos.z
               << " " << v.pos.w << " " << v.uv.x << " " << v.uv.y
               << "\n";
        }
        os << "  indices " << d.indices.size() << "\n    ";
        for (std::size_t i = 0; i < d.indices.size(); ++i)
            os << d.indices[i]
               << (i + 1 == d.indices.size() ? "\n" : " ");
        if (d.indices.empty())
            os << "\n";
    }
}

Scene
loadScene(std::istream &is, const std::string &source)
{
    SceneParser p(is, source);
    Scene scene;
    {
        const auto header = p.nextLine("header");
        if (header.size() < 2 || header[0].text != kMagic)
            p.failAt(header[0], "bad scene magic (expected DTEXL_SCENE)");
        if (header[1].text != "v1")
            p.failAt(header[1],
                     "unsupported scene version (expected v1)");
    }
    {
        const auto counts = p.nextLine("texture count");
        p.expectKeyword(counts[0], "textures");
        if (counts.size() < 2)
            p.failLine("missing texture count after 'textures'");
        const std::size_t n = p.parseU64(counts[1], "texture count");
        for (std::size_t i = 0; i < n; ++i) {
            const auto toks = p.nextLine("texture");
            if (toks.size() < 4)
                p.failLine("texture line needs: id base side format");
            const std::uint32_t id = p.parseU32(toks[0], "texture id");
            const Addr base = p.parseU64(toks[1], "texture base");
            const std::uint32_t side =
                p.parseU32(toks[2], "texture side");
            if (id != i)
                p.failAt(toks[0], "texture ids must be dense");
            // Reject at the parse boundary so the error carries the
            // line number; TextureDesc re-checks for non-scene callers.
            if (side == 0 || (side & (side - 1)) != 0)
                p.failAt(toks[2],
                         "texture side must be a power of two (repeat "
                         "addressing wraps texel coordinates with a "
                         "pow2 mask)");
            scene.textures.emplace_back(id, base, side,
                                        formatFromToken(p, toks[3]));
        }
    }
    std::size_t n_draws = 0;
    {
        const auto counts = p.nextLine("draw count");
        p.expectKeyword(counts[0], "draws");
        if (counts.size() < 2)
            p.failLine("missing draw count after 'draws'");
        n_draws = p.parseU64(counts[1], "draw count");
    }
    for (std::size_t i = 0; i < n_draws; ++i) {
        DrawCommand d;
        {
            const auto toks = p.nextLine("draw");
            p.expectKeyword(toks[0], "draw");
            for (std::size_t t = 1; t < toks.size(); ++t) {
                const auto &tok = toks[t];
                const std::size_t eq = tok.text.find('=');
                if (eq == std::string::npos)
                    p.failAt(tok, "draw attribute is not key=value");
                const std::string key = tok.text.substr(0, eq);
                const std::string value = tok.text.substr(eq + 1);
                SceneParser::Token vtok{value, tok.col + eq + 1};
                if (key == "tex")
                    d.texture = static_cast<TextureId>(
                        p.parseU32(vtok, "tex"));
                else if (key == "vb")
                    d.vertexBufferAddr = p.parseU64(vtok, "vb");
                else if (key == "alu")
                    d.shader.aluOps = static_cast<std::uint16_t>(
                        p.parseU32(vtok, "alu"));
                else if (key == "samples")
                    d.shader.texSamples = static_cast<std::uint8_t>(
                        p.parseU32(vtok, "samples"));
                else if (key == "filter")
                    d.shader.filter = filterFromToken(p, vtok, value);
                else if (key == "blends")
                    d.shader.blends = value == "1";
                else if (key == "modifies_depth")
                    d.shader.modifiesDepth = value == "1";
                else
                    p.failAt(tok, "unknown draw attribute");
            }
            if (d.texture >= scene.textures.size())
                p.failLine(
                    "draw references texture " +
                    std::to_string(d.texture) + " but the scene has " +
                    std::to_string(scene.textures.size()));
        }
        {
            const auto counts = p.nextLine("verts");
            p.expectKeyword(counts[0], "verts");
            if (counts.size() < 2)
                p.failLine("missing vertex count after 'verts'");
            const std::size_t n = p.parseU64(counts[1], "vertex count");
            for (std::size_t v = 0; v < n; ++v) {
                const auto toks = p.nextLine("vertex");
                if (toks.size() < 6)
                    p.failLine(
                        "vertex line needs 6 numbers (pos.xyzw uv.xy)");
                Vertex vert;
                vert.pos.x = p.parseF32(toks[0], "pos.x");
                vert.pos.y = p.parseF32(toks[1], "pos.y");
                vert.pos.z = p.parseF32(toks[2], "pos.z");
                vert.pos.w = p.parseF32(toks[3], "pos.w");
                vert.uv.x = p.parseF32(toks[4], "uv.x");
                vert.uv.y = p.parseF32(toks[5], "uv.y");
                d.vertices.push_back(vert);
            }
        }
        {
            const auto counts = p.nextLine("indices");
            p.expectKeyword(counts[0], "indices");
            if (counts.size() < 2)
                p.failLine("missing index count after 'indices'");
            const std::size_t n = p.parseU64(counts[1], "index count");
            if (n % 3 != 0)
                p.failLine("index count " + std::to_string(n) +
                           " is not a multiple of 3 (triangle list)");
            if (n > 0) {
                const auto toks = p.nextLine("index data");
                if (toks.size() < n)
                    p.failLine("index data has " +
                               std::to_string(toks.size()) + " of " +
                               std::to_string(n) + " indices");
                for (std::size_t k = 0; k < n; ++k) {
                    const std::uint32_t idx =
                        p.parseU32(toks[k], "index");
                    if (idx >= d.vertices.size())
                        p.failAt(toks[k],
                                 "index out of range (draw has " +
                                     std::to_string(
                                         d.vertices.size()) +
                                     " vertices)");
                    d.indices.push_back(idx);
                }
            }
        }
        scene.draws.push_back(std::move(d));
    }
    return scene;
}

void
saveSceneFile(const std::string &path, const Scene &scene)
{
    std::ofstream os(path);
    if (!os)
        throwIoError("cannot open '%s' for writing", path.c_str());
    saveScene(os, scene);
    if (!os.good())
        throwIoError("error writing '%s'", path.c_str());
}

Scene
loadSceneFile(const std::string &path)
{
    std::ifstream is(path);
    if (!is)
        throwIoError("cannot open '%s'", path.c_str());
    return loadScene(is, path);
}

} // namespace dtexl

/**
 * @file
 * The benchmark suite of the paper's Table I: ten commercial Android
 * games, reproduced here as parameterised synthetic workloads (the GLES
 * traces are not redistributable — see DESIGN.md substitutions).
 *
 * The published texture footprints seed the texture working sets; the
 * remaining parameters (overdraw, clustering, shader length, filter
 * mix) are chosen per genre so the suite spans the same behaviour
 * space the paper characterises: 2D vs 3D, tiny vs large footprints,
 * and "the reuse of texture memory blocks also varies greatly".
 */

#ifndef DTEXL_WORKLOADS_BENCHMARKS_HH
#define DTEXL_WORKLOADS_BENCHMARKS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "texture/sampler.hh"

namespace dtexl {

/** Generator parameters for one synthetic game workload. */
struct BenchmarkParams
{
    std::string name;            ///< Table I full name
    std::string alias;           ///< Table I alias (CCS, SoD, ...)
    std::uint64_t seed = 1;      ///< deterministic scene seed
    double textureFootprintMiB = 1.0;  ///< Table I footprint
    bool is3D = true;            ///< Table I type
    std::uint32_t numTextures = 8;

    /** Mean covered layers per screen pixel (drives overdraw). */
    double overdrawFactor = 2.0;
    /** Fraction of object primitives placed near cluster hot-spots. */
    double clusterFactor = 0.5;
    /** Width/height ratio of object primitives (paper: scenes are
     *  horizontally structured). */
    double horizontalBias = 2.0;

    std::uint16_t aluOpsMean = 16;       ///< shader length
    std::uint8_t texSamplesPerFrag = 1;  ///< texture instructions
    FilterMode filter = FilterMode::Bilinear;
    /**
     * Fraction of the texture set stored block-compressed (ETC2), the
     * norm for 3D assets on mobile; 2D/UI-heavy games keep more
     * uncompressed RGBA8 for quality.
     */
    double compressedFraction = 0.5;
    double blendFraction = 0.2;          ///< transparent draw share
    double texelsPerPixel = 1.0;         ///< uv-to-screen scale
    double meanPrimArea = 4096.0;        ///< px^2 per object triangle
};

/** The ten Table I games, in table order. */
const std::vector<BenchmarkParams> &tableOneBenchmarks();

/** Lookup by alias ("CCS", "GTr", ...); fatal() on unknown alias. */
const BenchmarkParams &benchmarkByAlias(const std::string &alias);

} // namespace dtexl

#endif // DTEXL_WORKLOADS_BENCHMARKS_HH

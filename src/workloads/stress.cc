#include "workloads/stress.hh"

#include <algorithm>
#include <cmath>

#include "common/rng.hh"
#include "mem/address_map.hh"

namespace dtexl {

namespace {

/** Shared scene-building helpers (mirrors scenegen's conventions). */
class Builder
{
  public:
    explicit Builder(const GpuConfig &cfg) : cfg(cfg) {}

    TextureId
    addTexture(std::uint32_t side, TexFormat fmt = TexFormat::RGBA8)
    {
        const auto id =
            static_cast<TextureId>(scene.textures.size());
        scene.textures.emplace_back(id, next_tex, side, fmt);
        next_tex += scene.textures.back().totalBytes();
        next_tex = (next_tex + 4095) & ~Addr{4095};
        return id;
    }

    void
    rect(float x0, float y0, float x1, float y1, float depth,
         TextureId tex, float u0, float v0, float u1, float v1,
         const ShaderDesc &sh)
    {
        DrawCommand d;
        d.texture = tex;
        d.shader = sh;
        d.vertices = {vert(x0, y0, depth, u0, v0),
                      vert(x1, y0, depth, u1, v0),
                      vert(x0, y1, depth, u0, v1),
                      vert(x1, y1, depth, u1, v1)};
        d.indices = {0, 1, 2, 2, 1, 3};
        d.vertexBufferAddr = next_vb;
        next_vb += d.vertices.size() * kVertexFetchBytes;
        scene.draws.push_back(std::move(d));
    }

    void
    tri(float x0, float y0, float x1, float y1, float x2, float y2,
        float depth, TextureId tex, const ShaderDesc &sh)
    {
        DrawCommand d;
        d.texture = tex;
        d.shader = sh;
        d.vertices = {vert(x0, y0, depth, 0.0f, 0.0f),
                      vert(x1, y1, depth, 0.05f, 0.0f),
                      vert(x2, y2, depth, 0.0f, 0.05f)};
        d.indices = {0, 1, 2};
        d.vertexBufferAddr = next_vb;
        next_vb += d.vertices.size() * kVertexFetchBytes;
        scene.draws.push_back(std::move(d));
    }

    Scene take() { return std::move(scene); }

    float width() const { return static_cast<float>(cfg.screenWidth); }
    float height() const
    {
        return static_cast<float>(cfg.screenHeight);
    }

  private:
    Vertex
    vert(float px, float py, float depth, float u, float v)
    {
        Vertex out;
        out.pos.x = px / (width() * 0.5f) - 1.0f;
        out.pos.y = py / (height() * 0.5f) - 1.0f;
        out.pos.z = depth * 2.0f - 1.0f;
        out.uv = {u, v};
        return out;
    }

    const GpuConfig &cfg;
    Scene scene;
    Addr next_tex = addr_map::kTextureBase;
    Addr next_vb = addr_map::kVertexBase;
};

ShaderDesc
basicShader(std::uint16_t alu = 8, bool blends = false)
{
    ShaderDesc sh;
    sh.aluOps = alu;
    sh.texSamples = 1;
    sh.filter = FilterMode::Bilinear;
    sh.blends = blends;
    return sh;
}

Scene
subtileHotspot(const GpuConfig &cfg)
{
    // Overdraw pinned to the top-left quadrant of EVERY tile: under
    // CG-square all the extra quads of each tile land on one subtile
    // (one SC), the worst case for the coupled pipeline. Fine-grained
    // groupings spread them evenly.
    Builder b(cfg);
    const TextureId bg = b.addTexture(1024);
    const TextureId obj = b.addTexture(256, TexFormat::ETC2);
    const float w = b.width(), h = b.height();
    b.rect(0, 0, w, h, 0.98f, bg, 0.0f, 0.0f, w / 1024.0f, h / 1024.0f,
           basicShader(6));
    Rng rng(0x57e5501);
    const float ts = static_cast<float>(cfg.tileSize);
    const float half = ts / 2.0f;
    for (float ty = 0.0f; ty < h; ty += ts) {
        for (float tx = 0.0f; tx < w; tx += ts) {
            for (int layer = 0; layer < 6; ++layer) {
                const float u0 =
                    static_cast<float>(rng.nextDouble(0.0, 0.6));
                b.rect(tx, ty, std::min(tx + half, w),
                       std::min(ty + half, h),
                       static_cast<float>(rng.nextDouble(0.1, 0.9)),
                       obj, u0, u0, u0 + 0.2f, u0 + 0.2f,
                       basicShader(10));
            }
        }
    }
    return b.take();
}

Scene
uniformNoise(const GpuConfig &cfg)
{
    Builder b(cfg);
    const TextureId tex = b.addTexture(256);
    const float w = b.width(), h = b.height();
    Rng rng(0x401532);
    const int n = static_cast<int>(w * h / 300.0f);
    for (int i = 0; i < n; ++i) {
        const auto x = static_cast<float>(rng.nextDouble() * w);
        const auto y = static_cast<float>(rng.nextDouble() * h);
        b.tri(x, y, x + 12.0f, y + 2.0f, x + 3.0f, y + 11.0f,
              static_cast<float>(rng.nextDouble(0.1, 0.9)), tex,
              basicShader(6));
    }
    return b.take();
}

Scene
singleFullscreen(const GpuConfig &cfg)
{
    Builder b(cfg);
    const TextureId tex = b.addTexture(2048);
    const float w = b.width(), h = b.height();
    ShaderDesc sh = basicShader(4);
    sh.filter = FilterMode::Trilinear;
    b.rect(0, 0, w, h, 0.5f, tex, 0.0f, 0.0f, w / 2048.0f, h / 2048.0f,
           sh);
    return b.take();
}

Scene
uiText(const GpuConfig &cfg)
{
    Builder b(cfg);
    const TextureId atlas = b.addTexture(128);  // glyph atlas
    const float w = b.width(), h = b.height();
    ShaderDesc sh = basicShader(4, /*blends=*/true);
    Rng rng(0x731);
    for (float y = 4.0f; y + 10.0f < h; y += 14.0f) {
        for (float x = 4.0f; x + 7.0f < w; x += 9.0f) {
            // A glyph: small quad sampling a random atlas cell.
            const auto cell =
                static_cast<float>(rng.nextBounded(64));
            const float u0 = (cell - std::floor(cell / 8.0f) * 8.0f) /
                             8.0f;
            const float v0 = std::floor(cell / 8.0f) / 8.0f;
            b.rect(x, y, x + 7.0f, y + 10.0f, 0.4f, atlas, u0, v0,
                   u0 + 0.1f, v0 + 0.1f, sh);
        }
    }
    return b.take();
}

Scene
deepOverdraw(const GpuConfig &cfg)
{
    Builder b(cfg);
    const TextureId tex = b.addTexture(512);
    const float w = b.width(), h = b.height();
    // Eight opaque full-screen layers drawn far-to-near: the Early-Z
    // worst case (nothing can be culled).
    for (int layer = 0; layer < 8; ++layer) {
        const float z = 0.9f - 0.1f * static_cast<float>(layer);
        const float u = 0.1f * static_cast<float>(layer);
        b.rect(0, 0, w, h, z, tex, u, u, u + w / 512.0f,
               u + h / 512.0f, basicShader(8));
    }
    return b.take();
}

} // namespace

std::vector<StressCase>
makeStressSuite(const GpuConfig &cfg)
{
    std::vector<StressCase> out;
    out.push_back({"subtile-hotspot",
                   "overdraw pinned to one subtile of every tile "
                   "(CG worst case)",
                   subtileHotspot(cfg)});
    out.push_back({"uniform-noise",
                   "thousands of scattered tiny triangles",
                   uniformNoise(cfg)});
    out.push_back({"single-fullscreen",
                   "one screen-sized textured quad",
                   singleFullscreen(cfg)});
    out.push_back({"ui-text", "glyph quads from a small atlas",
                   uiText(cfg)});
    out.push_back({"deep-overdraw",
                   "8 opaque layers painted back-to-front",
                   deepOverdraw(cfg)});
    return out;
}

} // namespace dtexl

/**
 * @file
 * Deterministic synthetic scene generation (the stand-in for the
 * paper's GLES game traces; see DESIGN.md). A scene is built from the
 * benchmark parameters and the target screen:
 *
 *  - a full-screen textured background layer with a continuous
 *    uv-to-screen mapping (adjacent tiles sample adjacent texture
 *    regions — the cross-tile locality tile orders exploit);
 *  - object primitives whose total area realises the overdraw factor,
 *    spatially clustered (the overdraw-clustering that makes
 *    coarse-grained groupings imbalanced, Section II-B), horizontally
 *    biased, and depth-ordered per the 2D/3D style of the game.
 */

#ifndef DTEXL_WORKLOADS_SCENEGEN_HH
#define DTEXL_WORKLOADS_SCENEGEN_HH

#include "common/config.hh"
#include "geom/scene.hh"
#include "workloads/benchmarks.hh"

namespace dtexl {

/**
 * Build the frame scene for a benchmark on a given screen. Pure
 * function of (params.seed, screen size, frame): repeated calls are
 * bit-identical.
 *
 * @param frame Animation frame index. Successive frames scroll the
 *              camera (background uv window and object positions
 *              shift), emulating the temporal coherence of a running
 *              game: most texture data is re-referenced, a strip of
 *              new texels becomes visible.
 */
Scene generateScene(const BenchmarkParams &params, const GpuConfig &cfg,
                    std::uint32_t frame = 0);

/**
 * A minimal hand-rolled scene for tests/examples: a handful of
 * triangles over one small texture.
 */
Scene makeTinyScene(const GpuConfig &cfg);

} // namespace dtexl

#endif // DTEXL_WORKLOADS_SCENEGEN_HH

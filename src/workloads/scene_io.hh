/**
 * @file
 * Scene serialization: a versioned, human-readable text format for
 * saving and loading frame scenes. Serves the role the paper's GLES
 * traces play — a captured workload that can be re-run bit-identically
 * across machines and simulator versions — and lets users feed their
 * own content to the simulator without writing C++.
 */

#ifndef DTEXL_WORKLOADS_SCENE_IO_HH
#define DTEXL_WORKLOADS_SCENE_IO_HH

#include <iosfwd>
#include <string>

#include "geom/scene.hh"

namespace dtexl {

/** Serialize a scene to the DTexL scene text format. */
void saveScene(std::ostream &os, const Scene &scene);

/** Convenience: serialize to a file; throws SimError{Io} on failure. */
void saveSceneFile(const std::string &path, const Scene &scene);

/**
 * Parse a scene from the DTexL scene text format. Any syntax or
 * semantic error (unknown version, dangling texture reference,
 * non-finite vertex, truncated file) throws SimError{UserInput} whose
 * context is "source:line:column" and whose message quotes the
 * offending token. @p source names the stream in diagnostics.
 */
Scene loadScene(std::istream &is, const std::string &source = "<scene>");

/** Convenience: parse from a file; throws SimError{Io|UserInput}. */
Scene loadSceneFile(const std::string &path);

} // namespace dtexl

#endif // DTEXL_WORKLOADS_SCENE_IO_HH

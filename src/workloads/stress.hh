/**
 * @file
 * Stress workloads beyond the Table I suite: adversarial scenes that
 * probe the corners of the scheduler design space — a robustness
 * check the paper's evaluation motivates but does not include.
 */

#ifndef DTEXL_WORKLOADS_STRESS_HH
#define DTEXL_WORKLOADS_STRESS_HH

#include <string>
#include <vector>

#include "common/config.hh"
#include "geom/scene.hh"

namespace dtexl {

/** A named adversarial scene. */
struct StressCase
{
    std::string name;
    std::string description;
    Scene scene;
};

/**
 * Build the stress suite for a screen:
 *  - "corner-hotspot": all overdraw concentrated in one screen
 *    quadrant (worst case for CG-square with coupled barriers);
 *  - "uniform-noise": thousands of tiny scattered triangles (best
 *    case for fine-grained grouping, minimal texture locality);
 *  - "single-fullscreen": one pair of triangles covering the screen
 *    from one giant texture (maximum cross-tile texture locality);
 *  - "ui-text": rows of tiny glyph quads from a small atlas
 *    (high temporal texture reuse, trivial geometry);
 *  - "deep-overdraw": many full-screen opaque layers back-to-front
 *    (Early-Z worst case, none culled).
 */
std::vector<StressCase> makeStressSuite(const GpuConfig &cfg);

} // namespace dtexl

#endif // DTEXL_WORKLOADS_STRESS_HH

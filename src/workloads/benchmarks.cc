#include "workloads/benchmarks.hh"

#include "common/log.hh"

namespace dtexl {

namespace {

std::vector<BenchmarkParams>
makeTable()
{
    std::vector<BenchmarkParams> t;

    // Candy Crush Saga: 2D sprite puzzle; heavy alpha blending of
    // magnified sprites, short shaders.
    BenchmarkParams ccs;
    ccs.name = "Candy Crush Saga";
    ccs.alias = "CCS";
    ccs.seed = 0xCC50001;
    ccs.textureFootprintMiB = 2.4;
    ccs.is3D = false;
    ccs.numTextures = 10;
    ccs.overdrawFactor = 3.0;
    ccs.clusterFactor = 0.5;
    ccs.horizontalBias = 1.2;
    ccs.aluOpsMean = 5;
    ccs.texSamplesPerFrag = 1;
    ccs.filter = FilterMode::Bilinear;
    ccs.compressedFraction = 0.25;
    ccs.blendFraction = 0.65;
    ccs.texelsPerPixel = 0.6;
    ccs.meanPrimArea = 5000.0;
    t.push_back(ccs);

    // Sonic Dash: 3D runner; mid-size textures, trilinear.
    BenchmarkParams sod;
    sod.name = "Sonic Dash";
    sod.alias = "SoD";
    sod.seed = 0x50D0002;
    sod.textureFootprintMiB = 1.4;
    sod.is3D = true;
    sod.numTextures = 8;
    sod.overdrawFactor = 2.2;
    sod.clusterFactor = 0.55;
    sod.horizontalBias = 2.2;
    sod.aluOpsMean = 9;
    sod.texSamplesPerFrag = 1;
    sod.filter = FilterMode::Trilinear;
    sod.compressedFraction = 0.7;
    sod.blendFraction = 0.2;
    sod.texelsPerPixel = 0.8;
    sod.meanPrimArea = 4000.0;
    t.push_back(sod);

    // Temple Run: 3D runner; tiny footprint, strongly clustered
    // corridor geometry (the paper's worst-case imbalance benchmark).
    BenchmarkParams tru;
    tru.name = "Temple Run";
    tru.alias = "TRu";
    tru.seed = 0x7120003;
    tru.textureFootprintMiB = 0.4;
    tru.is3D = true;
    tru.numTextures = 5;
    tru.overdrawFactor = 2.8;
    tru.clusterFactor = 0.85;
    tru.horizontalBias = 2.5;
    tru.aluOpsMean = 7;
    tru.texSamplesPerFrag = 1;
    tru.filter = FilterMode::Trilinear;
    tru.compressedFraction = 0.7;
    tru.blendFraction = 0.15;
    tru.texelsPerPixel = 0.9;
    tru.meanPrimArea = 6000.0;
    t.push_back(tru);

    // Shoot Strike War Fire: 3D shooter; smallest footprint.
    BenchmarkParams swa;
    swa.name = "Shoot Strike War Fire";
    swa.alias = "SWa";
    swa.seed = 0x5AA0004;
    swa.textureFootprintMiB = 0.2;
    swa.is3D = true;
    swa.numTextures = 4;
    swa.overdrawFactor = 2.0;
    swa.clusterFactor = 0.45;
    swa.horizontalBias = 1.8;
    swa.aluOpsMean = 10;
    swa.texSamplesPerFrag = 1;
    swa.filter = FilterMode::Bilinear;
    swa.compressedFraction = 0.6;
    swa.blendFraction = 0.2;
    swa.texelsPerPixel = 0.7;
    swa.meanPrimArea = 3500.0;
    t.push_back(swa);

    // City Racing 3D: road rendering with anisotropic sampling.
    BenchmarkParams cra;
    cra.name = "City Racing 3D";
    cra.alias = "CRa";
    cra.seed = 0xC1A0005;
    cra.textureFootprintMiB = 2.8;
    cra.is3D = true;
    cra.numTextures = 10;
    cra.overdrawFactor = 2.0;
    cra.clusterFactor = 0.5;
    cra.horizontalBias = 2.8;
    cra.aluOpsMean = 9;
    cra.texSamplesPerFrag = 1;
    cra.filter = FilterMode::Aniso2x;
    cra.compressedFraction = 0.7;
    cra.blendFraction = 0.15;
    cra.texelsPerPixel = 0.8;
    cra.meanPrimArea = 5500.0;
    t.push_back(cra);

    // Rise of Kingdoms: 2D strategy; the largest atlas footprint.
    BenchmarkParams rok;
    rok.name = "Rise of Kingdoms: Lost Crusade";
    rok.alias = "RoK";
    rok.seed = 0x20C0006;
    rok.textureFootprintMiB = 6.8;
    rok.is3D = false;
    rok.numTextures = 14;
    rok.overdrawFactor = 2.4;
    rok.clusterFactor = 0.4;
    rok.horizontalBias = 1.5;
    rok.aluOpsMean = 6;
    rok.texSamplesPerFrag = 1;
    rok.filter = FilterMode::Bilinear;
    rok.compressedFraction = 0.3;
    rok.blendFraction = 0.5;
    rok.texelsPerPixel = 0.75;
    rok.meanPrimArea = 4500.0;
    t.push_back(rok);

    // Derby Destruction Simulator: 3D racing.
    BenchmarkParams dds;
    dds.name = "Derby Destruction Simulator";
    dds.alias = "DDS";
    dds.seed = 0xDD50007;
    dds.textureFootprintMiB = 1.4;
    dds.is3D = true;
    dds.numTextures = 8;
    dds.overdrawFactor = 2.1;
    dds.clusterFactor = 0.5;
    dds.horizontalBias = 2.0;
    dds.aluOpsMean = 8;
    dds.texSamplesPerFrag = 1;
    dds.filter = FilterMode::Trilinear;
    dds.compressedFraction = 0.7;
    dds.blendFraction = 0.2;
    dds.texelsPerPixel = 0.75;
    dds.meanPrimArea = 4200.0;
    t.push_back(dds);

    // Sniper 3D: 3D shooter; scoped scenes, mid overdraw.
    BenchmarkParams snp;
    snp.name = "Sniper 3D";
    snp.alias = "Snp";
    snp.seed = 0x5A90008;
    snp.textureFootprintMiB = 1.8;
    snp.is3D = true;
    snp.numTextures = 9;
    snp.overdrawFactor = 2.3;
    snp.clusterFactor = 0.6;
    snp.horizontalBias = 1.8;
    snp.aluOpsMean = 10;
    snp.texSamplesPerFrag = 1;
    snp.filter = FilterMode::Trilinear;
    snp.compressedFraction = 0.65;
    snp.blendFraction = 0.25;
    snp.texelsPerPixel = 0.8;
    snp.meanPrimArea = 3800.0;
    t.push_back(snp);

    // 3D Maze 2: corridor crawler, clustered walls.
    BenchmarkParams mze;
    mze.name = "3D Maze 2: Diamonds & Ghosts";
    mze.alias = "Mze";
    mze.seed = 0x3E20009;
    mze.textureFootprintMiB = 2.4;
    mze.is3D = true;
    mze.numTextures = 8;
    mze.overdrawFactor = 2.6;
    mze.clusterFactor = 0.7;
    mze.horizontalBias = 1.6;
    mze.aluOpsMean = 7;
    mze.texSamplesPerFrag = 1;
    mze.filter = FilterMode::Trilinear;
    mze.compressedFraction = 0.7;
    mze.blendFraction = 0.2;
    mze.texelsPerPixel = 0.9;
    mze.meanPrimArea = 5000.0;
    t.push_back(mze);

    // Gravitytetris: physics puzzle; the most texture-bound shader
    // mix (two samples per fragment, short ALU) — the paper's best
    // case for DTexL.
    BenchmarkParams gtr;
    gtr.name = "Gravitytetris";
    gtr.alias = "GTr";
    gtr.seed = 0x672000A;
    gtr.textureFootprintMiB = 0.7;
    gtr.is3D = true;
    gtr.numTextures = 6;
    gtr.overdrawFactor = 2.4;
    gtr.clusterFactor = 0.6;
    gtr.horizontalBias = 1.4;
    gtr.aluOpsMean = 4;
    gtr.texSamplesPerFrag = 2;
    gtr.filter = FilterMode::Bilinear;
    gtr.compressedFraction = 0.5;
    gtr.blendFraction = 0.3;
    gtr.texelsPerPixel = 0.9;
    gtr.meanPrimArea = 3000.0;
    t.push_back(gtr);

    return t;
}

} // namespace

const std::vector<BenchmarkParams> &
tableOneBenchmarks()
{
    static const std::vector<BenchmarkParams> table = makeTable();
    return table;
}

const BenchmarkParams &
benchmarkByAlias(const std::string &alias)
{
    for (const auto &b : tableOneBenchmarks())
        if (b.alias == alias)
            return b;
    fatal("unknown benchmark alias '%s'", alias.c_str());
}

} // namespace dtexl

/**
 * @file
 * Content-addressed identity of one simulation result: a (scene,
 * config, build) digest triple. Two runs with equal keys are
 * guaranteed to produce bit-identical FrameStats/imageHash/stats
 * output, which is the contract the result store and checkpoint layer
 * (result_store.hh, checkpoint.hh) are built on.
 *
 * Hashing is canonical by construction: digests are computed over the
 * *parsed* scene and the *fully defaulted* GpuConfig — never over
 * input text — so key ordering of key=value options, scene-file
 * comments and whitespace, and default-vs-explicit spellings of the
 * same value all hash equal. Scalars are folded in little-endian
 * byte order (common/serial.hh), so keys are host-endianness
 * invariant too.
 */

#ifndef DTEXL_CACHE_RESULT_KEY_HH
#define DTEXL_CACHE_RESULT_KEY_HH

#include <cstdint>
#include <string>

namespace dtexl {

struct GpuConfig;
struct Scene;

/** Identity of one cached/checkpointed result. */
struct ResultKey
{
    std::uint64_t scene = 0;   ///< chained per-frame scene digests
    std::uint64_t config = 0;  ///< result-affecting GpuConfig fields
    std::uint64_t build = 0;   ///< code-version fingerprint

    bool operator==(const ResultKey &) const = default;

    /** 48 lowercase hex chars (scene, config, build concatenated). */
    std::string hex() const;
};

/**
 * Digest of every *result-affecting* GpuConfig field (47 fields: the
 * modelled machine, the scheduling policy and the observability knobs
 * that shape the stats-JSON artifact). Host-execution knobs that are
 * proven bit-identical by the test suite are deliberately EXCLUDED so
 * cache entries and checkpoints are shared across them:
 *
 *   simFastPath, CacheConfig::fastPath, DramConfig::fastPath
 *       (tests/test_fastpath_equiv.cc),
 *   geomThreads (tests/test_parallel_geom.cc),
 *   rasterThreads (tests/test_raster_domains.cc),
 *   simdMode (tests/test_simd.cc),
 *   watchdogCycles (a hang guard; never changes a completed result).
 *
 * Adding a field to GpuConfig must update this function;
 * tests/test_result_cache.cc carries a sizeof(GpuConfig) canary plus a
 * per-field sweep that fails loudly when the two drift.
 */
std::uint64_t hashConfig(const GpuConfig &cfg);

/** Digest of one parsed scene (draws, transforms, shaders, textures). */
std::uint64_t hashScene(const Scene &scene);

/**
 * Code-version fingerprint: bumped by kResultFormatVersion on any
 * serialization or simulator-semantics change, and salted with the
 * compiler identity and this translation unit's build timestamp, so a
 * rebuilt simulator conservatively invalidates old entries rather
 * than risk serving results another binary produced.
 */
std::uint64_t buildFingerprint();

/**
 * On-disk serialization format version; part of buildFingerprint().
 * Bump when the entry/checkpoint payload layout changes.
 * v2: artifact payload checksums switched from serial FNV-1a to the
 * 4-stream striped digest (common/serial.hh fnv1a64Striped).
 */
inline constexpr std::uint32_t kResultFormatVersion = 2;

/**
 * Human-readable build identity for --version and bug reports: the
 * result-format version, compiler, build stamp and the resulting
 * buildFingerprint() digest — everything needed to match a ledger or
 * cache entry back to the binary that produced it.
 */
std::string buildVersionString();

} // namespace dtexl

#endif // DTEXL_CACHE_RESULT_KEY_HH

/**
 * @file
 * Content-addressed result store: maps a ResultKey to the serialized
 * FrameStats history (image hash included), plus the job's StatRegistry
 * subtree, so a repeated sweep point is served from disk with
 * byte-identical CSV/JSON output instead of re-simulated.
 *
 * On-disk layout under --cache-dir (see DESIGN.md "Result cache &
 * checkpointing"):
 *
 *   res-<48-hex-key>.bin   one entry per key; framed as
 *                          [magic "DTXLRES1"][format version][key]
 *                          [payload size][payload][FNV-1a checksum]
 *   ckpt-<48-hex-key>.bin  in-progress checkpoint (checkpoint.hh)
 *   manifest.log           append-only "key status label" sweep log
 *
 * Every commit is atomic (temp file + rename, common/serial.hh), so a
 * reader never observes a half-written entry; a truncated or
 * bit-flipped entry is rejected by the frame checks and checksum,
 * logged, and treated as a miss (recompute — never wrong data, never
 * a crash). The build fingerprint inside the key means a new binary
 * simply addresses different file names: stale entries are unreachable
 * rather than dangerous.
 */

#ifndef DTEXL_CACHE_RESULT_STORE_HH
#define DTEXL_CACHE_RESULT_STORE_HH

#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "cache/result_key.hh"
#include "common/serial.hh"
#include "core/frame_stats.hh"

namespace dtexl {

class StatRegistry;

/** --cache= mode: consult nothing, read-only, or read + populate. */
enum class CacheMode : std::uint8_t { Off, Read, ReadWrite };

const char *toString(CacheMode mode);

/** Parse "off|read|readwrite"; throws SimError{UserInput} on junk. */
CacheMode cacheModeFromString(const std::string &name);

// ---- FrameStats serialization ------------------------------------

/** Serialize one FrameStats (all fields, Distributions included). */
void writeFrameStats(ByteWriter &w, const FrameStats &fs);

/** Inverse of writeFrameStats(); throws SimError{Io} on truncation. */
FrameStats readFrameStats(ByteReader &r);

// ---- StatRegistry fragments --------------------------------------

/**
 * A job's registry subtree captured relative to its "job.<label>"
 * prefix, so a cached fragment can be re-applied under whatever label
 * a later sweep uses. Nodes and counters are stored sorted (StatSet
 * maps are ordered), keeping the serialization canonical.
 */
struct StatsFragment
{
    struct Node
    {
        std::string path;  ///< relative to the prefix ("raster")
        std::vector<std::pair<std::string, std::uint64_t>> counters;
    };
    std::vector<Node> nodes;
};

/**
 * Capture every "<prefix>.*" node of @p registry. Null registry (or no
 * matching nodes) yields an empty fragment.
 */
StatsFragment captureStatsFragment(const StatRegistry *registry,
                                   const std::string &prefix);

/**
 * Increment "<prefix>.<node.path>" counters from @p fragment into
 * @p registry (no-op when null). The batch driver's single-writer-per-
 * subtree contract makes this race-free. @p skipTelemetry drops
 * ".telemetry." nodes: on checkpoint resume those counters are
 * *assigned* by Telemetry::publish() from the restored cumulative
 * tracks, so applying the fragment too would double them.
 */
void applyStatsFragment(StatRegistry *registry,
                        const std::string &prefix,
                        const StatsFragment &fragment,
                        bool skipTelemetry = false);

void writeStatsFragment(ByteWriter &w, const StatsFragment &f);
StatsFragment readStatsFragment(ByteReader &r);

// ---- The store ----------------------------------------------------

/** One complete cached job result. */
struct CachedResult
{
    std::vector<FrameStats> frames;
    StatsFragment stats;
};

class ResultStore
{
  public:
    explicit ResultStore(std::string dir) : dir_(std::move(dir)) {}

    /**
     * Load the entry for @p key. Returns nullopt on absence OR on any
     * validation failure (bad magic/version/key echo, truncation,
     * checksum mismatch) — corrupt entries are warn()-logged and
     * treated as a miss, never served. Fault site
     * FaultSite::CacheTruncate truncates the raw bytes here to prove
     * that path (tests/test_result_cache.cc).
     */
    std::optional<CachedResult> lookup(const ResultKey &key) const;

    /**
     * Atomically commit @p result under @p key. Transient I/O failures
     * are retried with backoff (common/retry.hh — a single EINTR/blip
     * must not discard a result that took minutes to compute); a
     * persistently unwritable cache is then logged and swallowed: it
     * must never fail the simulation that produced the result.
     */
    void store(const ResultKey &key, const CachedResult &result) const;

    /** Append one "key status label" line to manifest.log (retried
     *  like store(), then best-effort). */
    void appendManifest(const ResultKey &key, const char *status,
                        const std::string &label) const;

    /** Re-root the store (ResultCache::configure()). */
    void setDir(std::string dir) { dir_ = std::move(dir); }

    std::string entryPath(const ResultKey &key) const;
    std::string checkpointPath(const ResultKey &key) const;
    std::string manifestPath() const;
    const std::string &dir() const { return dir_; }

  private:
    std::string dir_;
    mutable std::mutex manifestMu;
};

// ---- Checkpoint garbage collection --------------------------------

/** What pruneStaleCheckpoints() scanned and removed. */
struct CheckpointGcReport
{
    std::uint64_t scanned = 0;  ///< ckpt-*.bin files seen
    std::uint64_t removed = 0;  ///< files unlinked
    std::uint64_t bytes = 0;    ///< bytes reclaimed
};

/**
 * Remove `ckpt-<hex>.bin` files under @p dir older than @p minAge
 * seconds (by mtime). Checkpoints are consumed (deleted) when their
 * job completes, so anything left is either in flight — protected by
 * the age guard, since a live job refreshes its checkpoint every
 * --checkpoint-every frames — or leaked by a crash path. minAge 0
 * prunes everything (an idle store). Exposed as `--cache-gc=AGE` on
 * the CLIs and the `gc` daemon command. Never throws; per-file errors
 * are warn()-logged and skipped.
 */
CheckpointGcReport pruneStaleCheckpoints(const std::string &dir,
                                         std::uint64_t minAgeSeconds);

// ---- Process-global cache configuration ---------------------------

/**
 * The process-wide result-cache state, armed by the shared CLI flags
 * (--cache-dir, --cache, --checkpoint-every, --resume; see
 * telemetry/cli_options.hh) and consulted per job by runBatch().
 * Follows the TraceWriter/TelemetryExport global-singleton idiom.
 * Hit/miss counters are atomics: workers note them concurrently.
 */
class ResultCache
{
  public:
    static ResultCache &global();

    /**
     * (Re)configure; idempotent. Any cache/checkpoint feature requires
     * a directory: throws SimError{UserInput} when @p mode is not Off
     * (or @p checkpointEvery/@p resume is set) with an empty @p dir.
     * Creates the directory.
     */
    void configure(const std::string &dir, CacheMode mode,
                   std::uint32_t checkpointEvery, bool resume);

    /** Back to defaults, counters cleared (test isolation). */
    void resetForTests();

    /** Any feature armed (lookup, store, checkpoint or resume)? */
    bool enabled() const;
    bool readEnabled() const { return mode_ != CacheMode::Off; }
    bool writeEnabled() const { return mode_ == CacheMode::ReadWrite; }
    CacheMode mode() const { return mode_; }
    std::uint32_t checkpointEvery() const { return checkpointEvery_; }
    bool resumeEnabled() const { return resume_; }

    /** The store; null until configure() armed a directory. */
    const ResultStore *store() const
    {
        return hasDir_ ? &store_ : nullptr;
    }

    /**
     * Publish the traffic counters into @p registry under a top-level
     * "cache" node (hits/misses/stores/resumes), so they reach
     * --stats-json. Counters are process-cumulative, so the CLI layer
     * calls this once per process right before the registry is dumped
     * — NOT runBatch(), whose per-batch registries must stay
     * byte-identical between cold and warm sweeps
     * (tests/test_result_cache.cc). No-op when null or disarmed.
     */
    void publishStats(StatRegistry *registry) const;

    void noteHit() { hits_.fetch_add(1, std::memory_order_relaxed); }
    void noteMiss() { misses_.fetch_add(1, std::memory_order_relaxed); }
    void noteStore() { stores_.fetch_add(1, std::memory_order_relaxed); }
    void noteResume() { resumes_.fetch_add(1, std::memory_order_relaxed); }
    std::uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
    std::uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
    std::uint64_t stores() const { return stores_.load(std::memory_order_relaxed); }
    std::uint64_t resumes() const { return resumes_.load(std::memory_order_relaxed); }

  private:
    ResultCache() : store_("") {}

    CacheMode mode_ = CacheMode::Off;
    std::uint32_t checkpointEvery_ = 0;
    bool resume_ = false;
    bool hasDir_ = false;
    ResultStore store_;

    std::atomic<std::uint64_t> hits_{0};
    std::atomic<std::uint64_t> misses_{0};
    std::atomic<std::uint64_t> stores_{0};
    std::atomic<std::uint64_t> resumes_{0};
};

} // namespace dtexl

#endif // DTEXL_CACHE_RESULT_STORE_HH

#include "cache/result_key.hh"

#include <cstdio>

#include "common/config.hh"
#include "common/serial.hh"
#include "common/simd.hh"
#include "geom/scene.hh"

namespace dtexl {

std::string
ResultKey::hex() const
{
    char buf[49];
    std::snprintf(buf, sizeof buf, "%016llx%016llx%016llx",
                  static_cast<unsigned long long>(scene),
                  static_cast<unsigned long long>(config),
                  static_cast<unsigned long long>(build));
    return buf;
}

namespace {

/**
 * Every field is folded as (tag, value): tags keep adjacent fields
 * from aliasing (e.g. {a=1, b=2} vs {a=2, b=1}) and give each field a
 * stable identity independent of struct layout or padding.
 */
void
hashCacheConfig(Fnv1a64 &h, std::uint32_t tag_base,
                const CacheConfig &c)
{
    h.u32(tag_base + 0); h.u32(c.sizeBytes);
    h.u32(tag_base + 1); h.u32(c.lineBytes);
    h.u32(tag_base + 2); h.u32(c.ways);
    h.u32(tag_base + 3); h.u32(c.hitLatency);
    h.u32(tag_base + 4); h.u32(c.numMshrs);
    h.u32(tag_base + 5); h.u32(c.prefetchNextLine ? 1 : 0);
    // c.fastPath excluded: simulator-path selector, bit-exact A/B
    // (tests/test_fastpath_equiv.cc).
}

} // namespace

std::uint64_t
hashConfig(const GpuConfig &cfg)
{
    Fnv1a64 h;
    // --- Machine (Table II) ---
    h.u32(1);  h.u64(cfg.clockHz);
    h.u32(2);  h.u32(cfg.screenWidth);
    h.u32(3);  h.u32(cfg.screenHeight);
    h.u32(4);  h.u32(cfg.tileSize);
    h.u32(5);  h.u32(cfg.numPipelines);
    h.u32(6);  h.u32(cfg.maxWarpsPerCore);
    h.u32(7);  h.u32(cfg.stageFifoDepth);
    h.u32(8);  h.u32(cfg.rasterQuadsPerCycle);
    // --- Scheduling policy ---
    h.u32(9);  h.u32(static_cast<std::uint32_t>(cfg.grouping));
    h.u32(10); h.u32(static_cast<std::uint32_t>(cfg.tileOrder));
    h.u32(11); h.u32(static_cast<std::uint32_t>(cfg.assignment));
    h.u32(12); h.u32(cfg.decoupledBarriers ? 1 : 0);
    h.u32(13); h.u32(cfg.hierarchicalZ ? 1 : 0);
    h.u32(14); h.u32(cfg.texturePrefetch ? 1 : 0);
    h.u32(15); h.u32(static_cast<std::uint32_t>(cfg.warpScheduler));
    h.u32(16); h.u32(cfg.transactionElimination ? 1 : 0);
    // --- Observability (shapes the stats-JSON artifact) ---
    h.u32(17); h.u32(cfg.telemetryLevel);
    h.u32(18); h.u32(cfg.telemetrySamplePeriod);
    // --- Memory hierarchy ---
    hashCacheConfig(h, 100, cfg.vertexCache);
    hashCacheConfig(h, 110, cfg.textureCache);
    hashCacheConfig(h, 120, cfg.tileCache);
    hashCacheConfig(h, 130, cfg.l2Cache);
    h.u32(140); h.u32(cfg.dram.numBanks);
    h.u32(141); h.u32(cfg.dram.rowBytes);
    h.u32(142); h.u32(cfg.dram.rowHitLatency);
    h.u32(143); h.u32(cfg.dram.rowMissLatency);
    h.u32(144); h.u32(cfg.dram.bytesPerCycle);
    // Excluded host-execution knobs (see result_key.hh): simFastPath,
    // geomThreads, rasterThreads, simdMode, watchdogCycles, *.fastPath.
    return h.value();
}

std::uint64_t
hashScene(const Scene &scene)
{
    Fnv1a64 h;
    h.str("draws");
    h.u64(scene.draws.size());
    for (const DrawCommand &d : scene.draws) {
        h.u64(d.vertices.size());
        for (const Vertex &v : d.vertices) {
            h.f32(v.pos.x); h.f32(v.pos.y);
            h.f32(v.pos.z); h.f32(v.pos.w);
            h.f32(v.uv.x);  h.f32(v.uv.y);
        }
        h.u64(d.indices.size());
        for (std::uint32_t i : d.indices)
            h.u32(i);
        for (float m : d.transform.m)
            h.f32(m);
        h.u32(d.texture);
        h.u32(d.shader.aluOps);
        h.u32(d.shader.texSamples);
        h.u32(static_cast<std::uint32_t>(d.shader.filter));
        h.u32(d.shader.blends ? 1 : 0);
        h.u32(d.shader.modifiesDepth ? 1 : 0);
        h.u64(d.vertexBufferAddr);
    }
    h.str("textures");
    h.u64(scene.textures.size());
    for (const TextureDesc &t : scene.textures) {
        h.u32(t.id());
        h.u64(t.baseAddr());
        h.u32(t.side());
        h.u32(static_cast<std::uint32_t>(t.format()));
    }
    return h.value();
}

std::uint64_t
buildFingerprint()
{
    Fnv1a64 h;
    h.u32(kResultFormatVersion);
    // Compiler identity + this TU's build timestamp: a rebuild of the
    // cache layer invalidates conservatively. (A source-tree content
    // hash would be exact, but the build system has no access to one;
    // an incremental rebuild that skips this TU keeps the old stamp —
    // documented in DESIGN.md "Result cache & checkpointing".)
#ifdef __VERSION__
    h.str(__VERSION__);
#endif
    h.str(__DATE__ " " __TIME__);
    return h.value();
}

std::string
buildVersionString()
{
    char line[256];
    std::snprintf(line, sizeof(line),
                  "dtexl result-format v%u, compiler %s, built %s, "
                  "simd %s, fingerprint %016llx",
                  kResultFormatVersion,
#ifdef __VERSION__
                  __VERSION__,
#else
                  "unknown",
#endif
                  __DATE__ " " __TIME__, simdBackendName(),
                  static_cast<unsigned long long>(buildFingerprint()));
    return line;
}

} // namespace dtexl

/**
 * @file
 * Frame-boundary checkpoint files: "DTXLCKPT"-framed snapshots of a
 * SimulationSession's warm state (FrameStats history, cache/telemetry
 * warm state, the job's registry fragment), written every
 * --checkpoint-every frames and consumed by --resume.
 *
 * The framing mirrors the result store's: magic, format version, full
 * ResultKey echo, payload size, payload, FNV-1a payload checksum. A
 * checkpoint that fails any check — including the FaultSite::CkptFlipByte
 * bit-flip injection — is rejected with a warn() and the run restarts
 * from frame 0; restored state is *validated before use*, so a corrupt
 * file can cost time but never correctness.
 */

#ifndef DTEXL_CACHE_CHECKPOINT_HH
#define DTEXL_CACHE_CHECKPOINT_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "cache/result_key.hh"

namespace dtexl {

/** One parsed-but-not-yet-applied checkpoint. */
struct CheckpointBlob
{
    ResultKey key;
    std::uint32_t framesDone = 0;
    /** Opaque session payload; SimulationSession interprets it. */
    std::vector<std::uint8_t> payload;
};

/**
 * Atomically write @p blob to @p path. Best effort: I/O failures are
 * warn()-logged and swallowed — a checkpoint that cannot be written
 * must never fail the simulation it was trying to protect.
 */
void writeCheckpointFile(const std::string &path,
                         const CheckpointBlob &blob);

/**
 * Read and validate the checkpoint at @p path. Returns nullopt when
 * the file is absent, or when any frame check fails (magic, version,
 * key echo against @p expectedKey, size, checksum) — the latter with a
 * warn(). FaultSite::CkptFlipByte flips one byte of the raw file image
 * here to prove the checksum path (tests/test_checkpoint.cc).
 */
std::optional<CheckpointBlob>
readCheckpointFile(const std::string &path, const ResultKey &expectedKey);

} // namespace dtexl

#endif // DTEXL_CACHE_CHECKPOINT_HH

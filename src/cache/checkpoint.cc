#include "cache/checkpoint.hh"

#include "common/fault_inject.hh"
#include "common/log.hh"
#include "common/serial.hh"
#include "common/sim_error.hh"

namespace dtexl {

namespace {

/** "DTXLCKPT" as a little-endian u64. */
constexpr std::uint64_t
packMagic(const char (&s)[9])
{
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(
                 static_cast<unsigned char>(s[i]))
             << (8 * i);
    return v;
}

constexpr std::uint64_t kCheckpointMagic = packMagic("DTXLCKPT");

} // namespace

void
writeCheckpointFile(const std::string &path, const CheckpointBlob &blob)
{
    ByteWriter file;
    file.u64(kCheckpointMagic);
    file.u32(kResultFormatVersion);
    file.u64(blob.key.scene);
    file.u64(blob.key.config);
    file.u64(blob.key.build);
    file.u32(blob.framesDone);
    file.u64(blob.payload.size());
    for (std::uint8_t b : blob.payload)
        file.u8(b);
    file.u64(fnv1a64Striped(blob.payload));

    try {
        atomicWriteFile(path, file.data());
    } catch (const SimError &e) {
        warn("checkpoint: cannot write '%s' (%s); continuing without",
             path.c_str(), e.what());
    }
}

std::optional<CheckpointBlob>
readCheckpointFile(const std::string &path, const ResultKey &expectedKey)
{
    std::vector<std::uint8_t> bytes;
    if (!readFileBytes(path, bytes))
        return std::nullopt;  // nothing to resume from

    // Fault harness: a bit flip in the middle of the on-disk image.
    // The payload checksum (or a frame check) below must catch it.
    if (!bytes.empty() &&
        FaultInject::global().fire(FaultSite::CkptFlipByte))
        bytes[bytes.size() / 2] ^= 0x40;

    try {
        ByteReader r(bytes);
        if (r.u64() != kCheckpointMagic)
            throwIoError("bad magic");
        if (r.u32() != kResultFormatVersion)
            throwIoError("format version mismatch");
        CheckpointBlob blob;
        blob.key.scene = r.u64();
        blob.key.config = r.u64();
        blob.key.build = r.u64();
        if (!(blob.key == expectedKey))
            throwIoError("checkpoint belongs to a different run");
        blob.framesDone = r.u32();
        const std::uint64_t payload_size = r.u64();
        if (payload_size + 8 != r.remaining())
            throwIoError("payload size disagrees with file size");
        blob.payload.resize(static_cast<std::size_t>(payload_size));
        for (std::uint8_t &b : blob.payload)
            b = r.u8();
        if (r.u64() != fnv1a64Striped(blob.payload))
            throwIoError("payload checksum mismatch");
        return blob;
    } catch (const SimError &e) {
        warn("checkpoint: rejecting corrupt file '%s' (%s); restarting "
             "from frame 0", path.c_str(), e.what());
        return std::nullopt;
    }
}

} // namespace dtexl

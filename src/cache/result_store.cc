#include "cache/result_store.hh"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>

#include "common/fault_inject.hh"
#include "common/log.hh"
#include "common/retry.hh"
#include "common/sim_error.hh"
#include "common/stat_registry.hh"
#include "obs/event_bus.hh"

namespace dtexl {

namespace {

/**
 * Retry schedule for the store's own filesystem writes. Short and
 * local: three tries, tens of milliseconds — enough to ride out
 * EINTR-class blips without stalling a worker behind a genuinely dead
 * disk.
 */
const RetryPolicy &
fsRetryPolicy()
{
    static const RetryPolicy policy{/*attempts=*/3,
                                    /*baseDelayMs=*/10,
                                    /*maxDelayMs=*/200,
                                    /*jitterPct=*/25,
                                    /*seed=*/0x7ca9};
    return policy;
}

/** Frame magics as little-endian u64s, spelled from the characters. */
constexpr std::uint64_t
packMagic(const char (&s)[9])
{
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(
                 static_cast<unsigned char>(s[i]))
             << (8 * i);
    return v;
}

constexpr std::uint64_t kResultEntryMagic = packMagic("DTXLRES1");

void
writeDistribution(ByteWriter &w, const Distribution &d)
{
    const std::vector<double> &xs = d.samples();
    w.u64(xs.size());
    for (double x : xs)
        w.f64(x);
}

Distribution
readDistribution(ByteReader &r)
{
    Distribution d;
    const std::uint64_t n = r.u64();
    // Bound before allocating: a corrupt count must fail the read, not
    // bad_alloc the process (each sample costs at least 8 bytes).
    if (n > r.remaining() / 8)
        throwIoError("distribution sample count %llu exceeds payload",
                     static_cast<unsigned long long>(n));
    for (std::uint64_t i = 0; i < n; ++i)
        d.add(r.f64());
    return d;
}

} // namespace

const char *
toString(CacheMode mode)
{
    switch (mode) {
      case CacheMode::Off: return "off";
      case CacheMode::Read: return "read";
      case CacheMode::ReadWrite: return "readwrite";
    }
    return "unknown";
}

CacheMode
cacheModeFromString(const std::string &name)
{
    if (name == "off")
        return CacheMode::Off;
    if (name == "read")
        return CacheMode::Read;
    if (name == "readwrite")
        return CacheMode::ReadWrite;
    throwUserError("--cache must be one of off, read, readwrite; got "
                   "'%s'", name.c_str());
}

void
writeFrameStats(ByteWriter &w, const FrameStats &fs)
{
    w.u64(fs.geometryCycles);
    w.u64(fs.rasterCycles);
    w.u64(fs.totalCycles);
    w.f64(fs.fps);
    w.u64(fs.verticesProcessed);
    w.u64(fs.primitivesBinned);
    w.u64(fs.quadsRasterized);
    w.u64(fs.quadsCulledEarlyZ);
    w.u64(fs.quadsCulledHiZ);
    w.u64(fs.quadsShaded);
    w.u64(fs.fragmentsShaded);
    w.u64(fs.shaderInstructions);
    w.u64(fs.textureSamples);
    w.u64(fs.earlyZTests);
    w.u64(fs.blendOps);
    w.u64(fs.flushLineWrites);
    w.u64(fs.flushesEliminated);
    w.u64(fs.l1TexAccesses);
    w.u64(fs.l1TexMisses);
    w.u64(fs.l1VertexAccesses);
    w.u64(fs.l1TileAccesses);
    w.u64(fs.l2Accesses);
    w.u64(fs.l2Misses);
    w.u64(fs.dramAccesses);
    for (std::uint64_t q : fs.quadsPerSc)
        w.u64(q);
    writeDistribution(w, fs.tileTimeDeviation);
    writeDistribution(w, fs.tileQuadDeviation);
    for (std::uint64_t b : fs.barrierIdleCycles)
        w.u64(b);
    w.f64(fs.textureReplication);
    w.u64(fs.imageHash);
}

FrameStats
readFrameStats(ByteReader &r)
{
    FrameStats fs;
    fs.geometryCycles = r.u64();
    fs.rasterCycles = r.u64();
    fs.totalCycles = r.u64();
    fs.fps = r.f64();
    fs.verticesProcessed = r.u64();
    fs.primitivesBinned = r.u64();
    fs.quadsRasterized = r.u64();
    fs.quadsCulledEarlyZ = r.u64();
    fs.quadsCulledHiZ = r.u64();
    fs.quadsShaded = r.u64();
    fs.fragmentsShaded = r.u64();
    fs.shaderInstructions = r.u64();
    fs.textureSamples = r.u64();
    fs.earlyZTests = r.u64();
    fs.blendOps = r.u64();
    fs.flushLineWrites = r.u64();
    fs.flushesEliminated = r.u64();
    fs.l1TexAccesses = r.u64();
    fs.l1TexMisses = r.u64();
    fs.l1VertexAccesses = r.u64();
    fs.l1TileAccesses = r.u64();
    fs.l2Accesses = r.u64();
    fs.l2Misses = r.u64();
    fs.dramAccesses = r.u64();
    for (std::uint64_t &q : fs.quadsPerSc)
        q = r.u64();
    fs.tileTimeDeviation = readDistribution(r);
    fs.tileQuadDeviation = readDistribution(r);
    for (std::uint64_t &b : fs.barrierIdleCycles)
        b = r.u64();
    fs.textureReplication = r.f64();
    fs.imageHash = r.u64();
    return fs;
}

StatsFragment
captureStatsFragment(const StatRegistry *registry,
                     const std::string &prefix)
{
    StatsFragment f;
    if (!registry)
        return f;
    const std::string want = prefix + ".";
    for (const std::string &path : registry->paths()) {
        if (path.rfind(want, 0) != 0)
            continue;
        const StatSet *set = registry->find(path);
        if (!set)
            continue;
        StatsFragment::Node node;
        node.path = path.substr(want.size());
        for (const auto &[key, value] : set->counters())
            node.counters.emplace_back(key, value);
        f.nodes.push_back(std::move(node));
    }
    return f;
}

void
applyStatsFragment(StatRegistry *registry, const std::string &prefix,
                   const StatsFragment &fragment, bool skipTelemetry)
{
    if (!registry)
        return;
    for (const StatsFragment::Node &node : fragment.nodes) {
        if (skipTelemetry &&
            node.path.rfind("telemetry.", 0) == 0)
            continue;
        StatSet &set = registry->node(prefix + "." + node.path);
        for (const auto &[key, value] : node.counters)
            set.inc(key, value);
    }
}

void
writeStatsFragment(ByteWriter &w, const StatsFragment &f)
{
    w.u32(static_cast<std::uint32_t>(f.nodes.size()));
    for (const StatsFragment::Node &node : f.nodes) {
        w.str(node.path);
        w.u32(static_cast<std::uint32_t>(node.counters.size()));
        for (const auto &[key, value] : node.counters) {
            w.str(key);
            w.u64(value);
        }
    }
}

StatsFragment
readStatsFragment(ByteReader &r)
{
    StatsFragment f;
    const std::uint32_t n = r.u32();
    for (std::uint32_t i = 0; i < n; ++i) {
        StatsFragment::Node node;
        node.path = r.str();
        const std::uint32_t k = r.u32();
        for (std::uint32_t j = 0; j < k; ++j) {
            std::string key = r.str();
            const std::uint64_t value = r.u64();
            node.counters.emplace_back(std::move(key), value);
        }
        f.nodes.push_back(std::move(node));
    }
    return f;
}

std::string
ResultStore::entryPath(const ResultKey &key) const
{
    return dir_ + "/res-" + key.hex() + ".bin";
}

std::string
ResultStore::checkpointPath(const ResultKey &key) const
{
    return dir_ + "/ckpt-" + key.hex() + ".bin";
}

std::string
ResultStore::manifestPath() const
{
    return dir_ + "/manifest.log";
}

std::optional<CachedResult>
ResultStore::lookup(const ResultKey &key) const
{
    const std::string path = entryPath(key);
    std::vector<std::uint8_t> bytes;
    if (!readFileBytes(path, bytes))
        return std::nullopt;  // plain miss, not an error

    // Fault harness: a torn/truncated entry on disk. The frame checks
    // below must reject it and fall back to recompute.
    if (FaultInject::global().fire(FaultSite::CacheTruncate))
        bytes.resize(bytes.size() / 2);

    try {
        ByteReader r(bytes);
        if (r.u64() != kResultEntryMagic)
            throwIoError("bad magic");
        if (r.u32() != kResultFormatVersion)
            throwIoError("format version mismatch");
        ResultKey echoed;
        echoed.scene = r.u64();
        echoed.config = r.u64();
        echoed.build = r.u64();
        if (!(echoed == key))
            throwIoError("entry key does not match its file name");
        const std::uint64_t payload_size = r.u64();
        if (payload_size + 8 != r.remaining())
            throwIoError("payload size disagrees with file size");
        const std::size_t payload_at = bytes.size() - r.remaining();
        const std::uint64_t want_sum =
            fnv1a64Striped(bytes.data() + payload_at,
                           static_cast<std::size_t>(payload_size));
        ByteReader payload(bytes.data() + payload_at,
                           static_cast<std::size_t>(payload_size));
        ByteReader tail(bytes.data() + payload_at +
                            static_cast<std::size_t>(payload_size),
                        8);
        if (tail.u64() != want_sum)
            throwIoError("payload checksum mismatch");

        CachedResult res;
        const std::uint32_t frames = payload.u32();
        for (std::uint32_t f = 0; f < frames; ++f)
            res.frames.push_back(readFrameStats(payload));
        res.stats = readStatsFragment(payload);
        if (!payload.done())
            throwIoError("trailing bytes after payload");
        return res;
    } catch (const SimError &e) {
        warn("result cache: rejecting corrupt entry '%s' (%s); "
             "recomputing", path.c_str(), e.what());
        return std::nullopt;
    }
}

void
ResultStore::store(const ResultKey &key,
                   const CachedResult &result) const
{
    ByteWriter payload;
    payload.u32(static_cast<std::uint32_t>(result.frames.size()));
    for (const FrameStats &fs : result.frames)
        writeFrameStats(payload, fs);
    writeStatsFragment(payload, result.stats);

    ByteWriter file;
    file.u64(kResultEntryMagic);
    file.u32(kResultFormatVersion);
    file.u64(key.scene);
    file.u64(key.config);
    file.u64(key.build);
    file.u64(payload.size());
    const std::uint64_t sum = fnv1a64Striped(payload.data());
    for (std::uint8_t b : payload.data())
        file.u8(b);
    file.u64(sum);

    // Retry transient failures before giving up: losing a cached
    // result to one EINTR wastes the whole recompute. Still best
    // effort after that — an unwritable cache never fails the job
    // whose result it was trying to keep. (Non-transient SimErrors
    // can't escape atomicWriteFile, which only throws Io.)
    retryTransient(fsRetryPolicy(), "result cache store", [&] {
        atomicWriteFile(entryPath(key), file.data());
    });
}

void
ResultStore::appendManifest(const ResultKey &key, const char *status,
                            const std::string &label) const
{
    // Mirror the manifest line into the run-event ledger: the four
    // manifest statuses map 1:1 onto the cache event kinds.
    if (EventBus::armed()) {
        const std::string st = status;
        EventKind kind = EventKind::JobCacheMiss;
        if (st == "hit")
            kind = EventKind::JobCacheHit;
        else if (st == "store")
            kind = EventKind::JobCacheStore;
        else if (st == "resume")
            kind = EventKind::JobResume;
        RunEvent ev(kind, label);
        ev.str("key", key.hex());
        EventBus::global().emit(std::move(ev));
    }

    std::lock_guard<std::mutex> lock(manifestMu);
    retryTransient(fsRetryPolicy(), "cache manifest append", [&] {
        std::FILE *f = std::fopen(manifestPath().c_str(), "a");
        if (!f)
            throwIoError("cannot open '%s' for append",
                         manifestPath().c_str());
        std::fprintf(f, "%s %s %s\n", key.hex().c_str(), status,
                     label.c_str());
        std::fclose(f);
    });  // best effort after the retries, like store()
}

CheckpointGcReport
pruneStaleCheckpoints(const std::string &dir,
                      std::uint64_t minAgeSeconds)
{
    namespace fs = std::filesystem;
    CheckpointGcReport report;
    std::error_code ec;
    const auto now = fs::file_time_type::clock::now();
    fs::directory_iterator it(dir, ec);
    if (ec) {
        warn("cache gc: cannot scan '%s' (%s)", dir.c_str(),
             ec.message().c_str());
        return report;
    }
    for (const fs::directory_entry &entry : it) {
        const std::string name = entry.path().filename().string();
        if (name.rfind("ckpt-", 0) != 0 ||
            name.size() < 9 /* "ckpt-.bin" */ ||
            name.compare(name.size() - 4, 4, ".bin") != 0)
            continue;
        ++report.scanned;
        std::error_code fec;
        const auto mtime = fs::last_write_time(entry.path(), fec);
        if (fec)
            continue;  // raced with a concurrent delete
        const auto age =
            std::chrono::duration_cast<std::chrono::seconds>(now -
                                                             mtime)
                .count();
        if (age < 0 ||
            static_cast<std::uint64_t>(age) < minAgeSeconds)
            continue;
        std::uintmax_t size = fs::file_size(entry.path(), fec);
        if (fec)
            size = 0;
        if (!fs::remove(entry.path(), fec) || fec) {
            warn("cache gc: cannot remove '%s' (%s)",
                 entry.path().c_str(), fec.message().c_str());
            continue;
        }
        ++report.removed;
        report.bytes += size;
    }
    return report;
}

ResultCache &
ResultCache::global()
{
    static ResultCache instance;
    return instance;
}

void
ResultCache::configure(const std::string &dir, CacheMode mode,
                       std::uint32_t checkpointEvery, bool resume)
{
    if (dir.empty() &&
        (mode != CacheMode::Off || checkpointEvery > 0 || resume)) {
        // Name only the flags the user actually gave.
        std::string armed;
        auto join = [&armed](const char *flag) {
            if (!armed.empty())
                armed += "/";
            armed += flag;
        };
        if (mode != CacheMode::Off)
            join(mode == CacheMode::Read ? "--cache=read"
                                         : "--cache=readwrite");
        if (checkpointEvery > 0)
            join("--checkpoint-every");
        if (resume)
            join("--resume");
        throwUserError("%s requires --cache-dir=DIR", armed.c_str());
    }
    if (!dir.empty())
        ensureDirectory(dir);
    mode_ = mode;
    checkpointEvery_ = checkpointEvery;
    resume_ = resume;
    hasDir_ = !dir.empty();
    store_.setDir(dir);
}

void
ResultCache::publishStats(StatRegistry *registry) const
{
    if (!registry || !enabled())
        return;
    StatSet &node = registry->node("cache");
    node.handle("hits") = hits();
    node.handle("misses") = misses();
    node.handle("stores") = stores();
    node.handle("resumes") = resumes();
}

void
ResultCache::resetForTests()
{
    mode_ = CacheMode::Off;
    checkpointEvery_ = 0;
    resume_ = false;
    hasDir_ = false;
    store_.setDir("");
    hits_.store(0, std::memory_order_relaxed);
    misses_.store(0, std::memory_order_relaxed);
    stores_.store(0, std::memory_order_relaxed);
    resumes_.store(0, std::memory_order_relaxed);
}

bool
ResultCache::enabled() const
{
    return hasDir_ && (mode_ != CacheMode::Off ||
                       checkpointEvery_ > 0 || resume_);
}

} // namespace dtexl

#include "raster/rasterizer.hh"

#include <algorithm>
#include <cmath>

#include "common/log.hh"
#include "common/simd.hh"

namespace dtexl {

namespace {

/**
 * Edge function: twice the signed area of (a, b, p). Positive when p is
 * on the interior side for a positively-wound triangle.
 */
float
edge(const Vec2f &a, const Vec2f &b, const Vec2f &p)
{
    return (b.x - a.x) * (p.y - a.y) - (b.y - a.y) * (p.x - a.x);
}

/**
 * Top-left fill rule (y grows downwards): pixels exactly on a top or
 * left edge belong to the triangle, so triangles sharing an edge shade
 * every pixel exactly once.
 */
bool
topLeft(const Vec2f &a, const Vec2f &b)
{
    return (a.y == b.y && b.x < a.x) || (b.y < a.y);
}

/** Positively-wound copy of the primitive's screen vertices. */
struct Tri
{
    Vec2f p[3];
    float z[3];
    Vec2f uv[3];
    float area2;

    explicit Tri(const Primitive &prim)
    {
        int i1 = 1, i2 = 2;
        if (prim.signedArea2() < 0.0f)
            std::swap(i1, i2);
        const int order[3] = {0, i1, i2};
        for (int k = 0; k < 3; ++k) {
            const TransformedVertex &v = prim.v[order[k]];
            p[k] = v.screen;
            z[k] = v.depth;
            uv[k] = v.uv;
        }
        area2 = edge(p[0], p[1], p[2]);
    }

    bool
    covers(const Vec2f &c) const
    {
        const float e0 = edge(p[0], p[1], c);
        const float e1 = edge(p[1], p[2], c);
        const float e2 = edge(p[2], p[0], c);
        const bool i0 = e0 > 0.0f || (e0 == 0.0f && topLeft(p[0], p[1]));
        const bool i1 = e1 > 0.0f || (e1 == 0.0f && topLeft(p[1], p[2]));
        const bool i2 = e2 > 0.0f || (e2 == 0.0f && topLeft(p[2], p[0]));
        return i0 && i1 && i2;
    }

    Fragment
    interpolate(const Vec2f &c) const
    {
        const float inv = 1.0f / area2;
        const float w0 = edge(p[1], p[2], c) * inv;
        const float w1 = edge(p[2], p[0], c) * inv;
        const float w2 = 1.0f - w0 - w1;
        Fragment f;
        f.depth = w0 * z[0] + w1 * z[1] + w2 * z[2];
        f.uv.x = w0 * uv[0].x + w1 * uv[1].x + w2 * uv[2].x;
        f.uv.y = w0 * uv[0].y + w1 * uv[1].y + w2 * uv[2].y;
        return f;
    }

    /**
     * Coverage and interpolation from one set of edge evaluations.
     * interpolate()'s weights are e1 * inv and e2 * inv with the same
     * e1/e2 covers() computes, so sharing them is bit-exact with
     * calling covers() and interpolate() separately — which the inner
     * rasterization loop used to do, evaluating each edge twice per
     * fragment.
     */
    Fragment
    eval(const Vec2f &c, bool &covered) const
    {
        const float e0 = edge(p[0], p[1], c);
        const float e1 = edge(p[1], p[2], c);
        const float e2 = edge(p[2], p[0], c);
        const bool i0 = e0 > 0.0f || (e0 == 0.0f && topLeft(p[0], p[1]));
        const bool i1 = e1 > 0.0f || (e1 == 0.0f && topLeft(p[1], p[2]));
        const bool i2 = e2 > 0.0f || (e2 == 0.0f && topLeft(p[2], p[0]));
        covered = i0 && i1 && i2;
        const float inv = 1.0f / area2;
        const float w0 = e1 * inv;
        const float w1 = e2 * inv;
        const float w2 = 1.0f - w0 - w1;
        Fragment f;
        f.depth = w0 * z[0] + w1 * z[1] + w2 * z[2];
        f.uv.x = w0 * uv[0].x + w1 * uv[1].x + w2 * uv[2].x;
        f.uv.y = w0 * uv[0].y + w1 * uv[1].y + w2 * uv[2].y;
        return f;
    }
};

/**
 * Lane-parallel twin of Tri::eval(): all four sample points of a quad
 * — or all eight of two row-adjacent quads — in one lane op per edge.
 *
 * Bit-exactness contract (tests/test_simd.cc RasterizerMatchesScalar):
 * every lane evaluates exactly the scalar expression tree. The edge
 * deltas (b.x - a.x etc.) are hoisted out of the loop, but they are
 * pure functions of the triangle, so hoisting changes nothing; sample
 * coordinates step across the tile in the *integer* domain (lane int
 * adds are exact, and int->float conversion is the same
 * round-to-nearest static_cast the scalar code performs) — stepping
 * the float edge values incrementally instead would accumulate
 * rounding and break the contract.
 */
struct TriLanes
{
    float ax[3], ay[3];      ///< edge origin (vertex a) per edge
    float dx[3], dy[3];      ///< b - a per edge
    bool tl[3];              ///< top-left rule per edge
    float inv;               ///< 1 / area2
    float z[3];
    float ux[3], uy[3];

    explicit TriLanes(const Tri &t)
    {
        for (int e = 0; e < 3; ++e) {
            const Vec2f &a = t.p[e];
            const Vec2f &b = t.p[(e + 1) % 3];
            ax[e] = a.x;
            ay[e] = a.y;
            dx[e] = b.x - a.x;
            dy[e] = b.y - a.y;
            tl[e] = topLeft(a, b);
            z[e] = t.z[e];
            ux[e] = t.uv[e].x;
            uy[e] = t.uv[e].y;
        }
        inv = 1.0f / t.area2;
    }
};

/**
 * Evaluate two row-adjacent quads (lanes 0-3 = quad at qx, lanes 4-7 =
 * quad at qx+2). Returns the 8-bit coverage (bit k = lane k); fragment
 * attributes for all eight lanes land in depth/uvx/uvy.
 */
inline int
evalQuadPair(const TriLanes &t, std::int32_t qx, std::int32_t qy,
             std::int32_t width, std::int32_t height, float depth[8],
             float uvx[8], float uvy[8])
{
    const I32x8 px = splatI8(qx) + makeI8(0, 1, 0, 1, 2, 3, 2, 3);
    const I32x8 py = splatI8(qy) + makeI8(0, 0, 1, 1, 0, 0, 1, 1);
    const F32x8 half = splatF8(0.5f);
    const F32x8 cx = toF8(px) + half;
    const F32x8 cy = toF8(py) + half;
    const F32x8 zero = splatF8(0.0f);

    F32x8 e[3];
    M32x8 inside = maskSplat8(true);
    for (int k = 0; k < 3; ++k) {
        e[k] = splatF8(t.dx[k]) * (cy - splatF8(t.ay[k])) -
               splatF8(t.dy[k]) * (cx - splatF8(t.ax[k]));
        const M32x8 in =
            orM8(cmpGtF8(e[k], zero),
                 andM8(cmpEqF8(e[k], zero), maskSplat8(t.tl[k])));
        inside = andM8(inside, in);
    }
    const M32x8 on_screen = andM8(cmpLtI8(px, splatI8(width)),
                                  cmpLtI8(py, splatI8(height)));
    const int cover = moveMask8(andM8(inside, on_screen));

    const F32x8 inv = splatF8(t.inv);
    const F32x8 w0 = e[1] * inv;
    const F32x8 w1 = e[2] * inv;
    const F32x8 w2 = splatF8(1.0f) - w0 - w1;
    storeF8(depth, w0 * splatF8(t.z[0]) + w1 * splatF8(t.z[1]) +
                       w2 * splatF8(t.z[2]));
    storeF8(uvx, w0 * splatF8(t.ux[0]) + w1 * splatF8(t.ux[1]) +
                     w2 * splatF8(t.ux[2]));
    storeF8(uvy, w0 * splatF8(t.uy[0]) + w1 * splatF8(t.uy[1]) +
                     w2 * splatF8(t.uy[2]));
    return cover;
}

/** 4-wide variant for a lone row-end quad. */
inline int
evalQuadSingle(const TriLanes &t, std::int32_t qx, std::int32_t qy,
               std::int32_t width, std::int32_t height, float depth[4],
               float uvx[4], float uvy[4])
{
    const I32x4 px = splatI4(qx) + makeI4(0, 1, 0, 1);
    const I32x4 py = splatI4(qy) + makeI4(0, 0, 1, 1);
    const F32x4 half = splatF4(0.5f);
    const F32x4 cx = toF4(px) + half;
    const F32x4 cy = toF4(py) + half;
    const F32x4 zero = splatF4(0.0f);

    F32x4 e[3];
    M32x4 inside = maskSplat4(true);
    for (int k = 0; k < 3; ++k) {
        e[k] = splatF4(t.dx[k]) * (cy - splatF4(t.ay[k])) -
               splatF4(t.dy[k]) * (cx - splatF4(t.ax[k]));
        const M32x4 in =
            orM4(cmpGtF4(e[k], zero),
                 andM4(cmpEqF4(e[k], zero), maskSplat4(t.tl[k])));
        inside = andM4(inside, in);
    }
    const M32x4 on_screen = andM4(cmpLtI4(px, splatI4(width)),
                                  cmpLtI4(py, splatI4(height)));
    const int cover = moveMask4(andM4(inside, on_screen));

    const F32x4 inv = splatF4(t.inv);
    const F32x4 w0 = e[1] * inv;
    const F32x4 w1 = e[2] * inv;
    const F32x4 w2 = splatF4(1.0f) - w0 - w1;
    storeF4(depth, w0 * splatF4(t.z[0]) + w1 * splatF4(t.z[1]) +
                       w2 * splatF4(t.z[2]));
    storeF4(uvx, w0 * splatF4(t.ux[0]) + w1 * splatF4(t.ux[1]) +
                     w2 * splatF4(t.ux[2]));
    storeF4(uvy, w0 * splatF4(t.uy[0]) + w1 * splatF4(t.uy[1]) +
                     w2 * splatF4(t.uy[2]));
    return cover;
}

} // namespace

bool
Rasterizer::pixelCovered(const Primitive &prim, std::uint32_t px,
                         std::uint32_t py)
{
    const Tri tri(prim);
    if (tri.area2 == 0.0f)
        return false;
    return tri.covers({static_cast<float>(px) + 0.5f,
                       static_cast<float>(py) + 0.5f});
}

namespace {

/**
 * Shared traversal behind the AoS and SoA rasterize() overloads; the
 * emit sink receives (quad coords, coverage, fragments) for each
 * non-empty quad in raster order.
 */
template <typename Emit>
std::size_t
rasterizeTo(const GpuConfig &cfg, const Primitive &prim,
            Coord2 tile_coord, Emit &&emit)
{
    const Tri tri(prim);
    if (tri.area2 == 0.0f)
        return 0;

    const std::int32_t ts = static_cast<std::int32_t>(cfg.tileSize);
    const std::int32_t tile_px = tile_coord.x * ts;
    const std::int32_t tile_py = tile_coord.y * ts;

    // Quad-aligned intersection of the tile and the primitive bbox,
    // clamped to the screen.
    auto clamp_lo = [](float v, std::int32_t lo) {
        return std::max(lo, static_cast<std::int32_t>(std::floor(v)));
    };
    auto clamp_hi = [](float v, std::int32_t hi) {
        return std::min(hi, static_cast<std::int32_t>(std::ceil(v)));
    };
    std::int32_t x0 = clamp_lo(prim.minX(), tile_px);
    std::int32_t y0 = clamp_lo(prim.minY(), tile_py);
    std::int32_t x1 = clamp_hi(prim.maxX(), tile_px + ts);
    std::int32_t y1 = clamp_hi(prim.maxY(), tile_py + ts);
    x1 = std::min(x1, static_cast<std::int32_t>(cfg.screenWidth));
    y1 = std::min(y1, static_cast<std::int32_t>(cfg.screenHeight));
    if (x0 >= x1 || y0 >= y1)
        return 0;
    x0 &= ~1;  // align down to quad boundary
    y0 &= ~1;

    std::size_t emitted = 0;
    if (cfg.simdMode == SimdMode::Auto) {
        // Lane path: a row pair of quads (8 sample points) per step,
        // a lone 4-wide quad at odd row ends. Emission order and all
        // emitted bits match the scalar loop exactly.
        const TriLanes tl(tri);
        const auto width = static_cast<std::int32_t>(cfg.screenWidth);
        const auto height = static_cast<std::int32_t>(cfg.screenHeight);
        float depth[8], uvx[8], uvy[8];
        std::array<Fragment, 4> frags;
        const auto emit_lanes = [&](std::int32_t qx, std::int32_t qy,
                                    int cover, unsigned lane0) {
            if (cover == 0)
                return;
            for (unsigned k = 0; k < 4; ++k) {
                frags[k].depth = depth[lane0 + k];
                frags[k].uv = Vec2f{uvx[lane0 + k], uvy[lane0 + k]};
            }
            emit(Coord2{(qx - tile_px) / 2, (qy - tile_py) / 2},
                 static_cast<std::uint8_t>(cover), frags);
            ++emitted;
        };
        for (std::int32_t qy = y0; qy < y1; qy += 2) {
            std::int32_t qx = x0;
            for (; qx + 2 < x1; qx += 4) {
                const int cover = evalQuadPair(tl, qx, qy, width,
                                               height, depth, uvx, uvy);
                emit_lanes(qx, qy, cover & 0xF, 0);
                emit_lanes(qx + 2, qy, (cover >> 4) & 0xF, 4);
            }
            for (; qx < x1; qx += 2) {
                const int cover = evalQuadSingle(tl, qx, qy, width,
                                                 height, depth, uvx,
                                                 uvy);
                emit_lanes(qx, qy, cover, 0);
            }
        }
        return emitted;
    }

    for (std::int32_t qy = y0; qy < y1; qy += 2) {
        for (std::int32_t qx = x0; qx < x1; qx += 2) {
            std::array<Fragment, 4> frags;
            std::uint8_t coverage = 0;
            for (unsigned k = 0; k < 4; ++k) {
                const std::int32_t px = qx + static_cast<std::int32_t>(
                                                 k % 2);
                const std::int32_t py = qy + static_cast<std::int32_t>(
                                                 k / 2);
                const Vec2f c{static_cast<float>(px) + 0.5f,
                              static_cast<float>(py) + 0.5f};
                // Attributes are interpolated for all four fragments
                // (helper pixels); coverage only for true hits inside
                // the screen.
                bool covered = false;
                frags[k] = tri.eval(c, covered);
                const bool on_screen =
                    px < static_cast<std::int32_t>(cfg.screenWidth) &&
                    py < static_cast<std::int32_t>(cfg.screenHeight);
                if (on_screen && covered)
                    coverage |= static_cast<std::uint8_t>(1u << k);
            }
            if (coverage != 0) {
                emit(Coord2{(qx - tile_px) / 2, (qy - tile_py) / 2},
                     coverage, frags);
                ++emitted;
            }
        }
    }
    return emitted;
}

} // namespace

std::size_t
Rasterizer::rasterize(const Primitive &prim, Coord2 tile_coord,
                      std::vector<Quad> &out) const
{
    const std::size_t emitted = rasterizeTo(
        cfg, prim, tile_coord,
        [&](Coord2 qc, std::uint8_t coverage,
            const std::array<Fragment, 4> &frags) {
            Quad quad;
            quad.prim = &prim;
            quad.quadInTile = qc;
            quad.coverage = coverage;
            quad.frags = frags;
            out.push_back(quad);
        });
    quadCount += emitted;
    return emitted;
}

std::size_t
Rasterizer::rasterize(const Primitive &prim, Coord2 tile_coord,
                      QuadStream &out) const
{
    const std::size_t emitted = rasterizeTo(
        cfg, prim, tile_coord,
        [&](Coord2 qc, std::uint8_t coverage,
            const std::array<Fragment, 4> &frags) {
            out.push(&prim, qc, coverage, frags);
        });
    quadCount += emitted;
    return emitted;
}

} // namespace dtexl

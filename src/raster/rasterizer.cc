#include "raster/rasterizer.hh"

#include <algorithm>
#include <cmath>

#include "common/log.hh"

namespace dtexl {

namespace {

/**
 * Edge function: twice the signed area of (a, b, p). Positive when p is
 * on the interior side for a positively-wound triangle.
 */
float
edge(const Vec2f &a, const Vec2f &b, const Vec2f &p)
{
    return (b.x - a.x) * (p.y - a.y) - (b.y - a.y) * (p.x - a.x);
}

/**
 * Top-left fill rule (y grows downwards): pixels exactly on a top or
 * left edge belong to the triangle, so triangles sharing an edge shade
 * every pixel exactly once.
 */
bool
topLeft(const Vec2f &a, const Vec2f &b)
{
    return (a.y == b.y && b.x < a.x) || (b.y < a.y);
}

/** Positively-wound copy of the primitive's screen vertices. */
struct Tri
{
    Vec2f p[3];
    float z[3];
    Vec2f uv[3];
    float area2;

    explicit Tri(const Primitive &prim)
    {
        int i1 = 1, i2 = 2;
        if (prim.signedArea2() < 0.0f)
            std::swap(i1, i2);
        const int order[3] = {0, i1, i2};
        for (int k = 0; k < 3; ++k) {
            const TransformedVertex &v = prim.v[order[k]];
            p[k] = v.screen;
            z[k] = v.depth;
            uv[k] = v.uv;
        }
        area2 = edge(p[0], p[1], p[2]);
    }

    bool
    covers(const Vec2f &c) const
    {
        const float e0 = edge(p[0], p[1], c);
        const float e1 = edge(p[1], p[2], c);
        const float e2 = edge(p[2], p[0], c);
        const bool i0 = e0 > 0.0f || (e0 == 0.0f && topLeft(p[0], p[1]));
        const bool i1 = e1 > 0.0f || (e1 == 0.0f && topLeft(p[1], p[2]));
        const bool i2 = e2 > 0.0f || (e2 == 0.0f && topLeft(p[2], p[0]));
        return i0 && i1 && i2;
    }

    Fragment
    interpolate(const Vec2f &c) const
    {
        const float inv = 1.0f / area2;
        const float w0 = edge(p[1], p[2], c) * inv;
        const float w1 = edge(p[2], p[0], c) * inv;
        const float w2 = 1.0f - w0 - w1;
        Fragment f;
        f.depth = w0 * z[0] + w1 * z[1] + w2 * z[2];
        f.uv.x = w0 * uv[0].x + w1 * uv[1].x + w2 * uv[2].x;
        f.uv.y = w0 * uv[0].y + w1 * uv[1].y + w2 * uv[2].y;
        return f;
    }

    /**
     * Coverage and interpolation from one set of edge evaluations.
     * interpolate()'s weights are e1 * inv and e2 * inv with the same
     * e1/e2 covers() computes, so sharing them is bit-exact with
     * calling covers() and interpolate() separately — which the inner
     * rasterization loop used to do, evaluating each edge twice per
     * fragment.
     */
    Fragment
    eval(const Vec2f &c, bool &covered) const
    {
        const float e0 = edge(p[0], p[1], c);
        const float e1 = edge(p[1], p[2], c);
        const float e2 = edge(p[2], p[0], c);
        const bool i0 = e0 > 0.0f || (e0 == 0.0f && topLeft(p[0], p[1]));
        const bool i1 = e1 > 0.0f || (e1 == 0.0f && topLeft(p[1], p[2]));
        const bool i2 = e2 > 0.0f || (e2 == 0.0f && topLeft(p[2], p[0]));
        covered = i0 && i1 && i2;
        const float inv = 1.0f / area2;
        const float w0 = e1 * inv;
        const float w1 = e2 * inv;
        const float w2 = 1.0f - w0 - w1;
        Fragment f;
        f.depth = w0 * z[0] + w1 * z[1] + w2 * z[2];
        f.uv.x = w0 * uv[0].x + w1 * uv[1].x + w2 * uv[2].x;
        f.uv.y = w0 * uv[0].y + w1 * uv[1].y + w2 * uv[2].y;
        return f;
    }
};

} // namespace

bool
Rasterizer::pixelCovered(const Primitive &prim, std::uint32_t px,
                         std::uint32_t py)
{
    const Tri tri(prim);
    if (tri.area2 == 0.0f)
        return false;
    return tri.covers({static_cast<float>(px) + 0.5f,
                       static_cast<float>(py) + 0.5f});
}

namespace {

/**
 * Shared traversal behind the AoS and SoA rasterize() overloads; the
 * emit sink receives (quad coords, coverage, fragments) for each
 * non-empty quad in raster order.
 */
template <typename Emit>
std::size_t
rasterizeTo(const GpuConfig &cfg, const Primitive &prim,
            Coord2 tile_coord, Emit &&emit)
{
    const Tri tri(prim);
    if (tri.area2 == 0.0f)
        return 0;

    const std::int32_t ts = static_cast<std::int32_t>(cfg.tileSize);
    const std::int32_t tile_px = tile_coord.x * ts;
    const std::int32_t tile_py = tile_coord.y * ts;

    // Quad-aligned intersection of the tile and the primitive bbox,
    // clamped to the screen.
    auto clamp_lo = [](float v, std::int32_t lo) {
        return std::max(lo, static_cast<std::int32_t>(std::floor(v)));
    };
    auto clamp_hi = [](float v, std::int32_t hi) {
        return std::min(hi, static_cast<std::int32_t>(std::ceil(v)));
    };
    std::int32_t x0 = clamp_lo(prim.minX(), tile_px);
    std::int32_t y0 = clamp_lo(prim.minY(), tile_py);
    std::int32_t x1 = clamp_hi(prim.maxX(), tile_px + ts);
    std::int32_t y1 = clamp_hi(prim.maxY(), tile_py + ts);
    x1 = std::min(x1, static_cast<std::int32_t>(cfg.screenWidth));
    y1 = std::min(y1, static_cast<std::int32_t>(cfg.screenHeight));
    if (x0 >= x1 || y0 >= y1)
        return 0;
    x0 &= ~1;  // align down to quad boundary
    y0 &= ~1;

    std::size_t emitted = 0;
    for (std::int32_t qy = y0; qy < y1; qy += 2) {
        for (std::int32_t qx = x0; qx < x1; qx += 2) {
            std::array<Fragment, 4> frags;
            std::uint8_t coverage = 0;
            for (unsigned k = 0; k < 4; ++k) {
                const std::int32_t px = qx + static_cast<std::int32_t>(
                                                 k % 2);
                const std::int32_t py = qy + static_cast<std::int32_t>(
                                                 k / 2);
                const Vec2f c{static_cast<float>(px) + 0.5f,
                              static_cast<float>(py) + 0.5f};
                // Attributes are interpolated for all four fragments
                // (helper pixels); coverage only for true hits inside
                // the screen.
                bool covered = false;
                frags[k] = tri.eval(c, covered);
                const bool on_screen =
                    px < static_cast<std::int32_t>(cfg.screenWidth) &&
                    py < static_cast<std::int32_t>(cfg.screenHeight);
                if (on_screen && covered)
                    coverage |= static_cast<std::uint8_t>(1u << k);
            }
            if (coverage != 0) {
                emit(Coord2{(qx - tile_px) / 2, (qy - tile_py) / 2},
                     coverage, frags);
                ++emitted;
            }
        }
    }
    return emitted;
}

} // namespace

std::size_t
Rasterizer::rasterize(const Primitive &prim, Coord2 tile_coord,
                      std::vector<Quad> &out) const
{
    const std::size_t emitted = rasterizeTo(
        cfg, prim, tile_coord,
        [&](Coord2 qc, std::uint8_t coverage,
            const std::array<Fragment, 4> &frags) {
            Quad quad;
            quad.prim = &prim;
            quad.quadInTile = qc;
            quad.coverage = coverage;
            quad.frags = frags;
            out.push_back(quad);
        });
    quadCount += emitted;
    return emitted;
}

std::size_t
Rasterizer::rasterize(const Primitive &prim, Coord2 tile_coord,
                      QuadStream &out) const
{
    const std::size_t emitted = rasterizeTo(
        cfg, prim, tile_coord,
        [&](Coord2 qc, std::uint8_t coverage,
            const std::array<Fragment, 4> &frags) {
            out.push(&prim, qc, coverage, frags);
        });
    quadCount += emitted;
    return emitted;
}

} // namespace dtexl

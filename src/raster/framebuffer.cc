#include "raster/framebuffer.hh"

namespace dtexl {

PixelColor
blendPixel(PixelColor dst, PixelColor src, bool blends)
{
    if (!blends)
        return src;
    // Order-dependent mixing (not commutative, not associative):
    // a cheap stand-in for src-alpha blending that makes any ordering
    // violation visible in the image hash.
    PixelColor x = dst ^ (src + 0x9e3779b9u);
    x ^= x >> 16;
    x *= 0x85ebca6bu;
    x ^= x >> 13;
    return x;
}

PixelColor
shadeColor(std::uint32_t prim_id, std::uint32_t frag_seed)
{
    PixelColor x = prim_id * 0x9e3779b9u + frag_seed * 0x85ebca6bu + 1u;
    x ^= x >> 15;
    x *= 0xc2b2ae35u;
    x ^= x >> 13;
    return x;
}

FrameBuffer::FrameBuffer(const GpuConfig &cfg)
    : w(cfg.screenWidth), h(cfg.screenHeight),
      image(std::size_t{w} * h, kClearColor)
{}

void
FrameBuffer::clear()
{
    std::fill(image.begin(), image.end(), kClearColor);
}

std::uint64_t
FrameBuffer::hash() const
{
    std::uint64_t h64 = 0xcbf29ce484222325ull;
    for (PixelColor c : image) {
        h64 ^= c;
        h64 *= 0x100000001b3ull;
    }
    return h64;
}

} // namespace dtexl

/**
 * @file
 * The Rasterizer (Figure 3): discretizes each primitive of the current
 * tile into covered quads with interpolated attributes, using edge
 * functions with the top-left fill rule.
 */

#ifndef DTEXL_RASTER_RASTERIZER_HH
#define DTEXL_RASTER_RASTERIZER_HH

#include <vector>

#include "common/config.hh"
#include "raster/quad.hh"
#include "raster/quad_stream.hh"

namespace dtexl {

/** Functional quad generation; the pipeline model adds the timing. */
class Rasterizer
{
  public:
    explicit Rasterizer(const GpuConfig &cfg) : cfg(cfg) {}

    /**
     * Rasterize one primitive within one tile.
     *
     * @param prim       The primitive (must overlap the tile).
     * @param tile_coord Tile grid coordinate.
     * @param out        Covered quads appended in raster order.
     * @return Number of quads appended.
     */
    std::size_t rasterize(const Primitive &prim, Coord2 tile_coord,
                          std::vector<Quad> &out) const;

    /**
     * SoA variant used by the pipeline hot path: appends to a
     * QuadStream instead of materializing AoS quads. Same traversal,
     * same interpolation, same emission order — bit-identical content.
     */
    std::size_t rasterize(const Primitive &prim, Coord2 tile_coord,
                          QuadStream &out) const;

    std::uint64_t quadsEmitted() const { return quadCount; }

    /**
     * Reference coverage test used by the property tests: is the pixel
     * centre of (px, py) inside the primitive under the same fill rule?
     */
    static bool pixelCovered(const Primitive &prim, std::uint32_t px,
                             std::uint32_t py);

  private:
    const GpuConfig &cfg;
    mutable std::uint64_t quadCount = 0;
};

} // namespace dtexl

#endif // DTEXL_RASTER_RASTERIZER_HH

/**
 * @file
 * The Frame Buffer in main memory plus the blend arithmetic. The
 * simulator keeps a functional pixel image so correctness properties
 * (decoupled == coupled, scheduler-independence of the final image) are
 * directly checkable, and exposes the flush address stream the timing
 * model drives through the Tile Cache.
 */

#ifndef DTEXL_RASTER_FRAMEBUFFER_HH
#define DTEXL_RASTER_FRAMEBUFFER_HH

#include <cstdint>
#include <vector>

#include "common/config.hh"
#include "mem/address_map.hh"

namespace dtexl {

/** Packed RGBA8 stand-in; the simulator only needs determinism. */
using PixelColor = std::uint32_t;

/** Background color of a cleared frame. */
inline constexpr PixelColor kClearColor = 0x202020ffu;

/**
 * Deterministic, order-sensitive blend: opaque replaces, transparent
 * mixes source into destination in a way that depends on the previous
 * value, so any illegal reordering of blending changes the image.
 */
PixelColor blendPixel(PixelColor dst, PixelColor src, bool blends);

/** Deterministic shading stand-in: color from primitive id + fragment. */
PixelColor shadeColor(std::uint32_t prim_id, std::uint32_t frag_seed);

/** The functional frame image plus flush addressing. */
class FrameBuffer
{
  public:
    explicit FrameBuffer(const GpuConfig &cfg);

    std::uint32_t width() const { return w; }
    std::uint32_t height() const { return h; }

    PixelColor
    pixel(std::uint32_t x, std::uint32_t y) const
    {
        return image[std::size_t{y} * w + x];
    }

    void
    setPixel(std::uint32_t x, std::uint32_t y, PixelColor c)
    {
        image[std::size_t{y} * w + x] = c;
    }

    /** Byte address of a pixel in the linear framebuffer. */
    Addr
    pixelAddr(std::uint32_t x, std::uint32_t y) const
    {
        return addr_map::kFrameBufferBase +
               (static_cast<Addr>(y) * w + x) * 4;
    }

    /** Reset every pixel to the clear color. */
    void clear();

    /** FNV-1a hash of the whole image, for equivalence tests. */
    std::uint64_t hash() const;

    const std::vector<PixelColor> &pixels() const { return image; }

  private:
    std::uint32_t w;
    std::uint32_t h;
    std::vector<PixelColor> image;
};

} // namespace dtexl

#endif // DTEXL_RASTER_FRAMEBUFFER_HH

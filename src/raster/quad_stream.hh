/**
 * @file
 * Structure-of-arrays quad storage for the raster hot path.
 *
 * The pipeline touches different quad fields in different passes —
 * scheduling reads only tile coordinates, Early-Z only depths, the
 * shader cores only uv — so the AoS Quad (~80 B) dragged every field
 * through the cache on each pass. QuadStream keeps each field in its
 * own flat array (fragment attributes 4-wide per quad) and is reused
 * as a per-frame arena: clear() keeps capacity, so steady-state tiles
 * append without heap traffic.
 *
 * The AoS Quad struct (quad.hh) remains the interchange type for tests
 * and adapters; toQuad()/push(Quad) convert losslessly.
 */

#ifndef DTEXL_RASTER_QUAD_STREAM_HH
#define DTEXL_RASTER_QUAD_STREAM_HH

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <vector>

#include "raster/quad.hh"

namespace dtexl {

/** SoA stream of quads, appended in raster order. */
class QuadStream
{
  public:
    std::size_t size() const { return prims.size(); }
    bool empty() const { return prims.empty(); }

    /** Drop all quads, keeping capacity (arena reset). */
    void
    clear()
    {
        prims.clear();
        coords.clear();
        cover.clear();
        subtiles.clear();
        slots.clear();
        fragDepth.clear();
        fragUv.clear();
    }

    /** Append one quad; fragments row-major within the 2x2 block. */
    std::uint32_t
    push(const Primitive *prim, Coord2 quad_in_tile,
         std::uint8_t coverage, const std::array<Fragment, 4> &frags)
    {
        const auto i = static_cast<std::uint32_t>(size());
        prims.push_back(prim);
        coords.push_back(quad_in_tile);
        cover.push_back(coverage);
        subtiles.push_back(0);
        slots.push_back(0);
        for (unsigned k = 0; k < 4; ++k) {
            fragDepth.push_back(frags[k].depth);
            fragUv.push_back(frags[k].uv);
        }
        return i;
    }

    /** Append an AoS quad (adapter). */
    std::uint32_t
    push(const Quad &q)
    {
        return push(q.prim, q.quadInTile, q.coverage, q.frags);
    }

    const Primitive *prim(std::uint32_t i) const { return prims[i]; }
    Coord2 quadInTile(std::uint32_t i) const { return coords[i]; }

    std::uint8_t coverage(std::uint32_t i) const { return cover[i]; }
    void setCoverage(std::uint32_t i, std::uint8_t c) { cover[i] = c; }
    bool
    covered(std::uint32_t i, unsigned k) const
    {
        return cover[i] & (1u << k);
    }
    std::uint32_t
    coveredCount(std::uint32_t i) const
    {
        std::uint32_t n = 0;
        for (unsigned k = 0; k < 4; ++k)
            n += covered(i, k) ? 1 : 0;
        return n;
    }

    std::uint8_t subtile(std::uint32_t i) const { return subtiles[i]; }
    void setSubtile(std::uint32_t i, std::uint8_t s) { subtiles[i] = s; }
    std::uint16_t slot(std::uint32_t i) const { return slots[i]; }
    void setSlot(std::uint32_t i, std::uint16_t s) { slots[i] = s; }

    float
    depth(std::uint32_t i, unsigned k) const
    {
        return fragDepth[std::size_t{i} * 4 + k];
    }
    Vec2f
    uv(std::uint32_t i, unsigned k) const
    {
        return fragUv[std::size_t{i} * 4 + k];
    }

    /**
     * Sampling level of detail from the quad's uv derivatives; the
     * same expression as Quad::lod, so AoS and SoA consumers compute
     * bit-identical levels.
     */
    float
    lod(std::uint32_t i, std::uint32_t texture_side) const
    {
        const Vec2f *f = &fragUv[std::size_t{i} * 4];
        const float dudx = f[1].x - f[0].x;
        const float dvdx = f[1].y - f[0].y;
        const float dudy = f[2].x - f[0].x;
        const float dvdy = f[2].y - f[0].y;
        const float s = static_cast<float>(texture_side);
        const float fx = std::sqrt(dudx * dudx + dvdx * dvdx) * s;
        const float fy = std::sqrt(dudy * dudy + dvdy * dvdy) * s;
        const float rho = std::max(fx, fy);
        return rho > 1.0f ? std::log2(rho) : 0.0f;
    }

    /** Materialize an AoS quad (tests, trace dumps). */
    Quad
    toQuad(std::uint32_t i) const
    {
        Quad q;
        q.prim = prims[i];
        q.quadInTile = coords[i];
        q.coverage = cover[i];
        q.subtile = subtiles[i];
        q.slot = slots[i];
        for (unsigned k = 0; k < 4; ++k) {
            q.frags[k].depth = depth(i, k);
            q.frags[k].uv = uv(i, k);
        }
        return q;
    }

  private:
    std::vector<const Primitive *> prims;
    std::vector<Coord2> coords;
    std::vector<std::uint8_t> cover;
    std::vector<std::uint8_t> subtiles;
    std::vector<std::uint16_t> slots;
    std::vector<float> fragDepth;  ///< 4 per quad, row-major 2x2
    std::vector<Vec2f> fragUv;     ///< 4 per quad, row-major 2x2
};

} // namespace dtexl

#endif // DTEXL_RASTER_QUAD_STREAM_HH

/**
 * @file
 * Structure-of-arrays quad storage for the raster hot path.
 *
 * The pipeline touches different quad fields in different passes —
 * scheduling reads only tile coordinates, Early-Z only depths, the
 * shader cores only uv — so the AoS Quad (~80 B) dragged every field
 * through the cache on each pass. QuadStream keeps each field in its
 * own flat array (fragment attributes 4-wide per quad) and is reused
 * as a per-frame arena: clear() keeps capacity, so steady-state tiles
 * append without heap traffic.
 *
 * The AoS Quad struct (quad.hh) remains the interchange type for tests
 * and adapters; toQuad()/push(Quad) convert losslessly.
 */

#ifndef DTEXL_RASTER_QUAD_STREAM_HH
#define DTEXL_RASTER_QUAD_STREAM_HH

#include <algorithm>
#include <array>
#include <bit>
#include <cmath>
#include <cstdint>
#include <vector>

#include "common/simd.hh"
#include "raster/quad.hh"

namespace dtexl {

/** SoA stream of quads, appended in raster order. */
class QuadStream
{
  public:
    std::size_t size() const { return prims.size(); }
    bool empty() const { return prims.empty(); }

    /** Drop all quads, keeping capacity (arena reset). */
    void
    clear()
    {
        prims.clear();
        coords.clear();
        cover.clear();
        subtiles.clear();
        slots.clear();
        fragDepth.clear();
        fragUv.clear();
    }

    /** Append one quad; fragments row-major within the 2x2 block. */
    std::uint32_t
    push(const Primitive *prim, Coord2 quad_in_tile,
         std::uint8_t coverage, const std::array<Fragment, 4> &frags)
    {
        const auto i = static_cast<std::uint32_t>(size());
        prims.push_back(prim);
        coords.push_back(quad_in_tile);
        cover.push_back(coverage);
        subtiles.push_back(0);
        slots.push_back(0);
        for (unsigned k = 0; k < 4; ++k) {
            fragDepth.push_back(frags[k].depth);
            fragUv.push_back(frags[k].uv);
        }
        return i;
    }

    /** Append an AoS quad (adapter). */
    std::uint32_t
    push(const Quad &q)
    {
        return push(q.prim, q.quadInTile, q.coverage, q.frags);
    }

    const Primitive *prim(std::uint32_t i) const { return prims[i]; }
    Coord2 quadInTile(std::uint32_t i) const { return coords[i]; }

    std::uint8_t coverage(std::uint32_t i) const { return cover[i]; }
    void setCoverage(std::uint32_t i, std::uint8_t c) { cover[i] = c; }
    bool
    covered(std::uint32_t i, unsigned k) const
    {
        return cover[i] & (1u << k);
    }
    std::uint32_t
    coveredCount(std::uint32_t i) const
    {
        return static_cast<std::uint32_t>(
            std::popcount(std::uint32_t{cover[i]}));
    }

    std::uint8_t subtile(std::uint32_t i) const { return subtiles[i]; }
    void setSubtile(std::uint32_t i, std::uint8_t s) { subtiles[i] = s; }
    std::uint16_t slot(std::uint32_t i) const { return slots[i]; }
    void setSlot(std::uint32_t i, std::uint16_t s) { slots[i] = s; }

    float
    depth(std::uint32_t i, unsigned k) const
    {
        return fragDepth[std::size_t{i} * 4 + k];
    }
    Vec2f
    uv(std::uint32_t i, unsigned k) const
    {
        return fragUv[std::size_t{i} * 4 + k];
    }

    /**
     * Sampling level of detail from the quad's uv derivatives; the
     * same expression as Quad::lod, so AoS and SoA consumers compute
     * bit-identical levels.
     */
    float
    lod(std::uint32_t i, std::uint32_t texture_side) const
    {
        const Vec2f *f = &fragUv[std::size_t{i} * 4];
        const float dudx = f[1].x - f[0].x;
        const float dvdx = f[1].y - f[0].y;
        const float dudy = f[2].x - f[0].x;
        const float dvdy = f[2].y - f[0].y;
        const float s = static_cast<float>(texture_side);
        const float fx = std::sqrt(dudx * dudx + dvdx * dvdx) * s;
        const float fy = std::sqrt(dudy * dudy + dvdy * dvdy) * s;
        const float rho = std::max(fx, fy);
        return rho > 1.0f ? std::log2(rho) : 0.0f;
    }

    /**
     * Lane twin of lod() for four quads at once (the shader cores
     * resolve a whole batch's levels up front). Each lane computes
     * exactly lod(idx[j], side[j]): the subs/muls/adds/sqrt/max run
     * 4-wide with std::max semantics preserved (compare+select), and
     * the log2 tail stays scalar per lane — libm's log2f has no
     * bit-exact vector form, and rho > 1 lanes are the minority on
     * mipmapped workloads. Bit-exactness is enforced by
     * tests/test_simd.cc (LodBatchMatchesScalar).
     */
    void
    lod4(const std::uint32_t idx[4], const std::uint32_t side[4],
         float out[4]) const
    {
        // Gather with vector loads + a lane transpose instead of 24
        // scalar element copies: each quad's four uv pairs are eight
        // contiguous floats, so two loadF4 per quad and two 4x4
        // transposes (exact data movement) produce the across-quad
        // derivative operands.
        F32x4 a[4], b[4];
        float s[4];
        for (int j = 0; j < 4; ++j) {
            const auto *f = reinterpret_cast<const float *>(
                &fragUv[std::size_t{idx[j]} * 4]);
            a[j] = loadF4(f);      // u0 v0 u1 v1
            b[j] = loadF4(f + 4);  // u2 v2 u3 v3
            s[j] = static_cast<float>(side[j]);
        }
        transposeF4(a[0], a[1], a[2], a[3]);  // u0s v0s u1s v1s
        transposeF4(b[0], b[1], b[2], b[3]);  // u2s v2s (u3s v3s unused)
        const F32x4 dudx = a[2] - a[0];
        const F32x4 dvdx = a[3] - a[1];
        const F32x4 dudy = b[0] - a[0];
        const F32x4 dvdy = b[1] - a[1];
        const F32x4 sv = loadF4(s);
        const F32x4 fx = sqrtF4(dudx * dudx + dvdx * dvdx) * sv;
        const F32x4 fy = sqrtF4(dudy * dudy + dvdy * dvdy) * sv;
        const F32x4 rho = maxStdF4(fx, fy);
        // Ordered compare matches the scalar ternary exactly: NaN rho
        // lanes compare false and yield 0.0f on both paths, so an
        // all-clear mask lets magnified quads (the common mipmapped
        // case) skip the four per-lane branches entirely.
        if (moveMask4(cmpGtF4(rho, splatF4(1.0f))) == 0) {
            storeF4(out, splatF4(0.0f));
            return;
        }
        float r[4];
        storeF4(r, rho);
        for (int j = 0; j < 4; ++j)
            out[j] = r[j] > 1.0f ? std::log2(r[j]) : 0.0f;
    }

    /** Materialize an AoS quad (tests, trace dumps). */
    Quad
    toQuad(std::uint32_t i) const
    {
        Quad q;
        q.prim = prims[i];
        q.quadInTile = coords[i];
        q.coverage = cover[i];
        q.subtile = subtiles[i];
        q.slot = slots[i];
        for (unsigned k = 0; k < 4; ++k) {
            q.frags[k].depth = depth(i, k);
            q.frags[k].uv = uv(i, k);
        }
        return q;
    }

  private:
    std::vector<const Primitive *> prims;
    std::vector<Coord2> coords;
    std::vector<std::uint8_t> cover;
    std::vector<std::uint8_t> subtiles;
    std::vector<std::uint16_t> slots;
    std::vector<float> fragDepth;  ///< 4 per quad, row-major 2x2
    std::vector<Vec2f> fragUv;     ///< 4 per quad, row-major 2x2
};

} // namespace dtexl

#endif // DTEXL_RASTER_QUAD_STREAM_HH

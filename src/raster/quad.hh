/**
 * @file
 * The quad: four adjacent fragments covering a 2x2 pixel block, the
 * scheduling unit of the Raster Pipeline ("threads" in the paper's
 * Figures 1/15: one quad becomes one warp in a shader core).
 */

#ifndef DTEXL_RASTER_QUAD_HH
#define DTEXL_RASTER_QUAD_HH

#include <array>
#include <bit>
#include <cmath>
#include <cstdint>

#include "common/types.hh"
#include "geom/primitive.hh"

namespace dtexl {

/** One fragment: interpolated attributes at a covered pixel. */
struct Fragment
{
    float depth = 1.0f;
    Vec2f uv;
};

/**
 * A 2x2 fragment group produced by the Rasterizer. Fragment order is
 * row-major within the block: (0,0), (1,0), (0,1), (1,1).
 */
struct Quad
{
    const Primitive *prim = nullptr;
    Coord2 quadInTile;   ///< quad coords within the tile
    std::uint8_t coverage = 0;   ///< bit k set if fragment k is covered
    std::array<Fragment, 4> frags;

    /** Filled by the scheduler when the quad is mapped to a pipeline. */
    std::uint8_t subtile = 0;
    std::uint16_t slot = 0;

    bool covered(unsigned k) const { return coverage & (1u << k); }
    std::uint32_t
    coveredCount() const
    {
        return static_cast<std::uint32_t>(
            std::popcount(std::uint32_t{coverage}));
    }

    /**
     * Sampling level of detail from the quad's own uv derivatives —
     * the reason GPUs shade 2x2 quads (helper fragments exist to make
     * these differences well-defined even at partial coverage).
     *
     * @param texture_side Texels per side of the sampled texture.
     */
    float
    lod(std::uint32_t texture_side) const
    {
        const float dudx = frags[1].uv.x - frags[0].uv.x;
        const float dvdx = frags[1].uv.y - frags[0].uv.y;
        const float dudy = frags[2].uv.x - frags[0].uv.x;
        const float dvdy = frags[2].uv.y - frags[0].uv.y;
        const float s = static_cast<float>(texture_side);
        const float fx =
            std::sqrt(dudx * dudx + dvdx * dvdx) * s;
        const float fy =
            std::sqrt(dudy * dudy + dvdy * dvdy) * s;
        const float rho = std::max(fx, fy);
        return rho > 1.0f ? std::log2(rho) : 0.0f;
    }
};

} // namespace dtexl

#endif // DTEXL_RASTER_QUAD_HH

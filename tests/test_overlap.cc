/**
 * @file
 * Property tests for the exact triangle/rectangle overlap predicate
 * used by the Polygon List Builder, verified against a dense point
 * sampling reference.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "tiling/overlap.hh"

namespace dtexl {
namespace {

/** Slow reference: dense sampling of the rectangle and the triangle. */
bool
overlapsReference(const Vec2f &a, const Vec2f &b, const Vec2f &c,
                  const RectF &r)
{
    auto inside_tri = [&](float px, float py) {
        const Vec2f p{px, py};
        const float d1 = cross2(b - a, p - a);
        const float d2 = cross2(c - b, p - b);
        const float d3 = cross2(a - c, p - c);
        const bool neg = d1 < 0 || d2 < 0 || d3 < 0;
        const bool pos = d1 > 0 || d2 > 0 || d3 > 0;
        return !(neg && pos);
    };
    auto inside_rect = [&](float px, float py) {
        return px > r.x0 && px < r.x1 && py > r.y0 && py < r.y1;
    };
    // Sample rectangle interior points against the triangle and
    // triangle interior points against the rectangle.
    constexpr int N = 24;
    for (int i = 1; i < N; ++i) {
        for (int j = 1; j < N; ++j) {
            const float fx = static_cast<float>(i) / N;
            const float fy = static_cast<float>(j) / N;
            const float px = r.x0 + fx * (r.x1 - r.x0);
            const float py = r.y0 + fy * (r.y1 - r.y0);
            if (inside_tri(px, py))
                return true;
            // Barycentric interior samples of the triangle.
            if (fx + fy < 1.0f) {
                const float tx = a.x + fx * (b.x - a.x) + fy * (c.x - a.x);
                const float ty = a.y + fx * (b.y - a.y) + fy * (c.y - a.y);
                if (inside_rect(tx, ty))
                    return true;
            }
        }
    }
    return false;
}

TEST(Overlap, TriangleInsideRect)
{
    const RectF r{0, 0, 100, 100};
    EXPECT_TRUE(
        triangleOverlapsRect({10, 10}, {20, 10}, {10, 20}, r));
}

TEST(Overlap, RectInsideTriangle)
{
    const RectF r{40, 40, 50, 50};
    EXPECT_TRUE(
        triangleOverlapsRect({0, 0}, {200, 0}, {0, 200}, r));
}

TEST(Overlap, ClearlySeparated)
{
    const RectF r{0, 0, 10, 10};
    EXPECT_FALSE(
        triangleOverlapsRect({50, 50}, {60, 50}, {50, 60}, r));
}

TEST(Overlap, SeparatedByDiagonalAxis)
{
    // Bbox overlaps, true shapes do not: the case bbox-binning gets
    // wrong and the SAT must get right.
    const RectF r{0, 0, 10, 10};
    EXPECT_FALSE(
        triangleOverlapsRect({12, -2}, {30, -2}, {12, 16}, r));
}

TEST(Overlap, SharedEdgeOnlyDoesNotCount)
{
    // Triangle exactly to the right of the rectangle's right edge.
    const RectF r{0, 0, 10, 10};
    EXPECT_FALSE(
        triangleOverlapsRect({10, 0}, {20, 0}, {10, 10}, r));
}

TEST(Overlap, CrossingCorner)
{
    const RectF r{0, 0, 10, 10};
    EXPECT_TRUE(
        triangleOverlapsRect({8, 8}, {20, 8}, {8, 20}, r));
}

class OverlapRandomTest : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(OverlapRandomTest, MatchesSamplingReference)
{
    Rng rng(GetParam());
    int checked = 0;
    for (int iter = 0; iter < 400; ++iter) {
        const Vec2f a{static_cast<float>(rng.nextDouble(-40, 80)),
                      static_cast<float>(rng.nextDouble(-40, 80))};
        const Vec2f b{static_cast<float>(rng.nextDouble(-40, 80)),
                      static_cast<float>(rng.nextDouble(-40, 80))};
        const Vec2f c{static_cast<float>(rng.nextDouble(-40, 80)),
                      static_cast<float>(rng.nextDouble(-40, 80))};
        const RectF r{0, 0, 32, 32};
        const bool sat = triangleOverlapsRect(a, b, c, r);
        const bool ref = overlapsReference(a, b, c, r);
        // The sampling reference can miss grazing overlaps but never
        // reports an overlap SAT denies; near-boundary disagreement
        // in the other direction is tolerated by re-testing with a
        // shrunk rectangle.
        if (ref) {
            EXPECT_TRUE(sat) << "iter " << iter;
        }
        if (!sat) {
            const RectF shrunk{1, 1, 31, 31};
            EXPECT_FALSE(overlapsReference(a, b, c, shrunk))
                << "iter " << iter;
        }
        ++checked;
    }
    EXPECT_EQ(checked, 400);
}

INSTANTIATE_TEST_SUITE_P(Seeds, OverlapRandomTest,
                         ::testing::Values(1u, 2u, 3u, 4u));

} // namespace
} // namespace dtexl

/**
 * @file
 * Integration tests for the wired memory hierarchy (Figure 5): miss
 * propagation L1 -> L2 -> DRAM, private texture caches, shared L2,
 * and the paper's key counter (total L2 accesses).
 */

#include <gtest/gtest.h>

#include "common/config.hh"
#include "mem/hierarchy.hh"

namespace dtexl {
namespace {

TEST(Hierarchy, BuildsPerConfig)
{
    GpuConfig cfg;
    MemHierarchy mem(cfg);
    EXPECT_EQ(mem.numTextureCaches(), 4u);

    GpuConfig ub = makeUpperBoundConfig();
    MemHierarchy mem1(ub);
    EXPECT_EQ(mem1.numTextureCaches(), 1u);
}

TEST(Hierarchy, MissPropagatesToL2AndDram)
{
    GpuConfig cfg;
    MemHierarchy mem(cfg);
    const Cycle t = mem.textureRead(0, 0x1000'0000, 0);
    EXPECT_EQ(mem.textureCache(0).misses(), 1u);
    EXPECT_EQ(mem.l2().accesses(), 1u);
    EXPECT_EQ(mem.dram().accesses(), 1u);
    // End-to-end latency: L1 tag (1) + L2 (12) + DRAM row miss (100).
    EXPECT_GE(t, 113u);

    // Re-read long after the fill: pure L1 hit, no new L2 traffic.
    const Cycle t2 = mem.textureRead(0, 0x1000'0000, 1000);
    EXPECT_EQ(t2, 1001u);
    EXPECT_EQ(mem.l2().accesses(), 1u);
}

TEST(Hierarchy, L2HitServesSecondCore)
{
    GpuConfig cfg;
    MemHierarchy mem(cfg);
    mem.textureRead(0, 0x1000'0000, 0);
    // Core 1 misses its private L1 but hits the shared L2: this is
    // exactly the block replication the paper counts.
    mem.textureRead(1, 0x1000'0000, 500);
    EXPECT_EQ(mem.l2().accesses(), 2u);
    EXPECT_EQ(mem.dram().accesses(), 1u);
    EXPECT_TRUE(mem.textureCache(0).contains(0x1000'0000));
    EXPECT_TRUE(mem.textureCache(1).contains(0x1000'0000));
}

TEST(Hierarchy, TextureCachesArePrivate)
{
    GpuConfig cfg;
    MemHierarchy mem(cfg);
    mem.textureRead(2, 0x2000, 0);
    EXPECT_TRUE(mem.textureCache(2).contains(0x2000));
    EXPECT_FALSE(mem.textureCache(0).contains(0x2000));
    EXPECT_FALSE(mem.textureCache(3).contains(0x2000));
}

TEST(Hierarchy, VertexAndTileCachesShareL2)
{
    GpuConfig cfg;
    MemHierarchy mem(cfg);
    mem.vertexRead(0x4000'0000, 0);
    mem.tileAccess(0x5000'0000, AccessType::Write, 10);
    EXPECT_EQ(mem.l2().accesses(), 2u);
    EXPECT_EQ(mem.vertexCache().accesses(), 1u);
    EXPECT_EQ(mem.tileCache().accesses(), 1u);
    EXPECT_EQ(mem.l2Accesses(), 2u);
}

TEST(Hierarchy, FlushAllColdsEverything)
{
    GpuConfig cfg;
    MemHierarchy mem(cfg);
    mem.textureRead(0, 0x1000, 0);
    mem.flushAll();
    EXPECT_FALSE(mem.textureCache(0).contains(0x1000));
    mem.textureRead(0, 0x1000, 1000);
    EXPECT_EQ(mem.textureCache(0).misses(), 2u);
}

TEST(Hierarchy, ResetTimingKeepsWarmContents)
{
    GpuConfig cfg;
    MemHierarchy mem(cfg);
    mem.textureRead(0, 0x1000, 123456);
    mem.resetTiming();
    const Cycle t = mem.textureRead(0, 0x1000, 0);
    EXPECT_EQ(t, 1u);  // warm L1 hit at cycle 0
}

TEST(Hierarchy, UpperBoundCacheIsQuadSized)
{
    GpuConfig ub = makeUpperBoundConfig();
    MemHierarchy mem(ub);
    // 64 KiB / 64 B = 1024 lines: fill 1024 distinct lines and verify
    // they are all resident (4-way, 256 sets, sequential addresses
    // spread evenly).
    for (std::uint32_t i = 0; i < 1024; ++i)
        mem.textureRead(0, static_cast<Addr>(i) * 64, i * 10);
    std::uint32_t resident = 0;
    for (std::uint32_t i = 0; i < 1024; ++i)
        resident += mem.textureCache(0).contains(
            static_cast<Addr>(i) * 64) ? 1 : 0;
    EXPECT_EQ(resident, 1024u);
}

} // namespace
} // namespace dtexl

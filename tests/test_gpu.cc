/**
 * @file
 * Directional/system tests: the paper's qualitative claims must hold
 * on the simulator — CG groupings cut L2 accesses but imbalance SC
 * time; decoupling converts the caching win into speedup; the
 * single-SC 4x-L1 machine lower-bounds L2 accesses.
 */

#include <gtest/gtest.h>

#include "core/gpu.hh"
#include "workloads/scenegen.hh"

namespace dtexl {
namespace {

GpuConfig
benchCfg()
{
    GpuConfig cfg;
    cfg.screenWidth = 512;
    cfg.screenHeight = 256;
    return cfg;
}

struct RunResult
{
    FrameStats fs;
};

FrameStats
run(const GpuConfig &cfg, const Scene &scene)
{
    GpuSimulator gpu(cfg, scene);
    return gpu.renderFrame();
}

TEST(Gpu, CoarseGroupingReducesL2Accesses)
{
    GpuConfig cfg = benchCfg();
    const Scene scene = generateScene(benchmarkByAlias("GTr"), cfg);

    GpuConfig fg = cfg;
    fg.grouping = QuadGrouping::FGXShift2;
    GpuConfig cg = cfg;
    cg.grouping = QuadGrouping::CGSquare;

    const FrameStats a = run(fg, scene);
    const FrameStats b = run(cg, scene);
    EXPECT_LT(static_cast<double>(b.l2Accesses),
              0.8 * static_cast<double>(a.l2Accesses));
    // Same work either way.
    EXPECT_EQ(a.quadsShaded, b.quadsShaded);
    EXPECT_EQ(a.imageHash, b.imageHash);
}

TEST(Gpu, CoarseGroupingWorsensQuadBalance)
{
    GpuConfig cfg = benchCfg();
    const Scene scene = generateScene(benchmarkByAlias("TRu"), cfg);

    GpuConfig fg = cfg;
    fg.grouping = QuadGrouping::FGXShift2;
    GpuConfig cg = cfg;
    cg.grouping = QuadGrouping::CGSquare;

    const FrameStats a = run(fg, scene);
    const FrameStats b = run(cg, scene);
    EXPECT_GT(b.tileQuadDeviation.mean(),
              2.0 * a.tileQuadDeviation.mean());
    EXPECT_GT(b.tileTimeDeviation.mean(), a.tileTimeDeviation.mean());
}

TEST(Gpu, UpperBoundHasFewestL2Accesses)
{
    GpuConfig cfg = benchCfg();
    const Scene scene = generateScene(benchmarkByAlias("SoD"), cfg);

    GpuConfig ub = makeUpperBoundConfig();
    ub.screenWidth = cfg.screenWidth;
    ub.screenHeight = cfg.screenHeight;

    const FrameStats bound = run(ub, scene);
    for (QuadGrouping g :
         {QuadGrouping::FGXShift2, QuadGrouping::CGSquare}) {
        GpuConfig c = cfg;
        c.grouping = g;
        const FrameStats fs = run(c, scene);
        EXPECT_GE(fs.l2Accesses, bound.l2Accesses) << toString(g);
    }
}

TEST(Gpu, DecouplingConvertsLocalityIntoSpeedup)
{
    GpuConfig cfg = benchCfg();
    const Scene scene = generateScene(benchmarkByAlias("GTr"), cfg);

    GpuConfig baseline = cfg;  // FG, coupled
    GpuConfig cg_coupled = cfg;
    cg_coupled.grouping = QuadGrouping::CGSquare;
    GpuConfig dtexl = makeDTexLConfig();
    dtexl.screenWidth = cfg.screenWidth;
    dtexl.screenHeight = cfg.screenHeight;

    const FrameStats base = run(baseline, scene);
    const FrameStats cg = run(cg_coupled, scene);
    const FrameStats dt = run(dtexl, scene);

    const double cg_speedup = static_cast<double>(base.rasterCycles) /
                              static_cast<double>(cg.rasterCycles);
    const double dt_speedup = static_cast<double>(base.rasterCycles) /
                              static_cast<double>(dt.rasterCycles);
    // Coupled CG wastes its caching win on barrier idling; DTexL must
    // clearly beat both the baseline and coupled CG.
    EXPECT_GT(dt_speedup, 1.05);
    EXPECT_GT(dt_speedup, cg_speedup + 0.03);
}

TEST(Gpu, DramTrafficInsensitiveToGrouping)
{
    // Paper Section V-C1: no notable change in L2 misses / DRAM
    // accesses from the quad mapping.
    GpuConfig cfg = benchCfg();
    const Scene scene = generateScene(benchmarkByAlias("DDS"), cfg);

    GpuConfig fg = cfg;
    GpuConfig cg = cfg;
    cg.grouping = QuadGrouping::CGSquare;
    const FrameStats a = run(fg, scene);
    const FrameStats b = run(cg, scene);
    const double ratio = static_cast<double>(b.dramAccesses) /
                         static_cast<double>(a.dramAccesses);
    EXPECT_GT(ratio, 0.9);
    EXPECT_LT(ratio, 1.1);
}

TEST(Gpu, QuadsPerScSumsToShaded)
{
    GpuConfig cfg = benchCfg();
    const Scene scene = generateScene(benchmarkByAlias("CCS"), cfg);
    const FrameStats fs = run(cfg, scene);
    const std::uint64_t sum = fs.quadsPerSc[0] + fs.quadsPerSc[1] +
                              fs.quadsPerSc[2] + fs.quadsPerSc[3];
    EXPECT_EQ(sum, fs.quadsShaded);
    EXPECT_EQ(fs.quadsShaded + fs.quadsCulledEarlyZ, fs.quadsRasterized);
}

TEST(Gpu, FineGrainedBalancesQuadsPerSc)
{
    GpuConfig cfg = benchCfg();
    const Scene scene = generateScene(benchmarkByAlias("CCS"), cfg);
    const FrameStats fs = run(cfg, scene);
    std::vector<double> per_sc;
    for (auto q : fs.quadsPerSc)
        per_sc.push_back(static_cast<double>(q));
    EXPECT_LT(normMeanDeviation(per_sc), 0.02);
}

TEST(Gpu, FpsDerivedFromCycles)
{
    GpuConfig cfg = benchCfg();
    const Scene scene = generateScene(benchmarkByAlias("SWa"), cfg);
    const FrameStats fs = run(cfg, scene);
    EXPECT_GT(fs.fps, 0.0);
    EXPECT_NEAR(fs.fps * static_cast<double>(fs.totalCycles),
                static_cast<double>(cfg.clockHz),
                static_cast<double>(cfg.clockHz) * 1e-9);
    EXPECT_EQ(fs.totalCycles,
              std::max(fs.geometryCycles, fs.rasterCycles));
}

TEST(Gpu, TileOrderChangesL2Accesses)
{
    // Locality-preserving traversals reduce cross-tile texture
    // re-fetches relative to scanline.
    GpuConfig cfg = benchCfg();
    cfg.grouping = QuadGrouping::CGSquare;
    cfg.assignment = SubtileAssignment::Flip2;
    const Scene scene = generateScene(benchmarkByAlias("RoK"), cfg);

    GpuConfig scan = cfg;
    scan.tileOrder = TileOrder::Scanline;
    GpuConfig hlb = cfg;
    hlb.tileOrder = TileOrder::RectHilbert;

    const FrameStats a = run(scan, scene);
    const FrameStats b = run(hlb, scene);
    EXPECT_LT(b.l2Accesses, a.l2Accesses);
}

TEST(Gpu, PrefetchOrthogonalToDTexL)
{
    // The paper positions prior texture-prefetching work (Arnau et
    // al.) as orthogonal: with prefetching enabled on both machines,
    // DTexL must still cut L2 accesses sharply and stay faster.
    GpuConfig base = benchCfg();
    base.texturePrefetch = true;
    GpuConfig dt = makeDTexLConfig();
    dt.screenWidth = base.screenWidth;
    dt.screenHeight = base.screenHeight;
    dt.texturePrefetch = true;
    const Scene scene = generateScene(benchmarkByAlias("SoD"), base);

    const FrameStats a = run(base, scene);
    const FrameStats d = run(dt, scene);
    EXPECT_EQ(a.imageHash, d.imageHash);
    EXPECT_LT(static_cast<double>(d.l2Accesses),
              0.75 * static_cast<double>(a.l2Accesses));
    EXPECT_LT(d.totalCycles, a.totalCycles);
}

TEST(Gpu, PrefetchReducesExposedMissRate)
{
    GpuConfig cfg = benchCfg();
    const Scene scene = generateScene(benchmarkByAlias("SoD"), cfg);
    GpuConfig pf = cfg;
    pf.texturePrefetch = true;
    const FrameStats a = run(cfg, scene);
    const FrameStats b = run(pf, scene);
    // Same image; demand misses drop (some lines arrive early), at
    // the cost of extra L2 traffic from useless prefetches.
    EXPECT_EQ(a.imageHash, b.imageHash);
    EXPECT_LT(b.l1TexMisses, a.l1TexMisses);
    EXPECT_GE(b.l2Accesses, a.l2Accesses);
}

TEST(Gpu, FineGrainedReplicatesTextureBlocks)
{
    // The paper's mechanism, observed directly: the fine-grained
    // grouping leaves each texture line replicated in multiple private
    // L1s; the coarse grouping keeps replication near 1.
    GpuConfig cfg = benchCfg();
    const Scene scene = generateScene(benchmarkByAlias("SoD"), cfg);
    GpuConfig fg = cfg;
    GpuConfig cg = cfg;
    cg.grouping = QuadGrouping::CGSquare;
    const FrameStats a = run(fg, scene);
    const FrameStats b = run(cg, scene);
    EXPECT_GT(a.textureReplication, 1.8);
    EXPECT_LT(b.textureReplication, a.textureReplication - 0.5);
    EXPECT_GE(b.textureReplication, 1.0);
}

TEST(Gpu, SetSceneAnimatesWithWarmCaches)
{
    GpuConfig cfg = benchCfg();
    const BenchmarkParams &p = benchmarkByAlias("SWa");
    const Scene f0 = generateScene(p, cfg, 0);
    const Scene f1 = generateScene(p, cfg, 1);

    GpuSimulator gpu(cfg, f0);
    const FrameStats a = gpu.renderFrame();
    gpu.setScene(f1);
    const FrameStats b = gpu.renderFrame();
    // Different frames render different images...
    EXPECT_NE(a.imageHash, b.imageHash);
    // ...and temporal coherence keeps the warm frame's DRAM traffic
    // at or below the cold frame's.
    EXPECT_LE(b.dramAccesses, a.dramAccesses);

    // The animated frame matches a cold render of the same scene.
    GpuSimulator fresh(cfg, f1);
    EXPECT_EQ(fresh.renderFrame().imageHash, b.imageHash);
}

TEST(Gpu, GeometryPhaseIsNotTheBottleneck)
{
    GpuConfig cfg = benchCfg();
    const Scene scene = generateScene(benchmarkByAlias("Snp"), cfg);
    const FrameStats fs = run(cfg, scene);
    EXPECT_LT(fs.geometryCycles, fs.rasterCycles);
}

} // namespace
} // namespace dtexl

/**
 * @file
 * Coverage for the --trace observability surface: the Chrome-trace
 * JSON written by TraceWriter must parse, its spans must be properly
 * nested per track, counter tracks emitted by the telemetry sampler
 * must be well-formed, and the StatRegistry tree populated alongside
 * it must satisfy the parent-totals-equal-sum-of-children invariant.
 *
 * TraceWriter is a process global that stays enabled once switched on,
 * so everything that needs tracing runs inside this one binary. The
 * batch runs at telemetry level 2 with a short sample period so the
 * trace carries counter ("ph":"C") events alongside the spans.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common/stat_registry.hh"
#include "common/trace.hh"
#include "core/engine.hh"
#include "workloads/scenegen.hh"

#include "json_test_util.hh"

namespace dtexl {
namespace {

using testjson::JsonParser;
using testjson::JsonValue;

struct Span
{
    std::string name;
    std::string cat;
    std::uint64_t ts = 0;
    std::uint64_t dur = 0;
    std::uint64_t tid = 0;
};

struct Counter
{
    std::string name;
    std::uint64_t ts = 0;
    std::uint64_t value = 0;
    std::uint64_t tid = 0;
};

/**
 * Shared fixture state: run one traced batch for the whole binary and
 * let every test interrogate the resulting file and registry.
 */
class TraceOutput : public ::testing::Test
{
  protected:
    static constexpr const char *kPath = "test_trace_out.json";

    static void
    SetUpTestSuite()
    {
        TraceWriter::global().enable(kPath);

        GpuConfig cfg;
        cfg.screenWidth = 256;
        cfg.screenHeight = 128;
        // Level 2 so the sampler populates counter tracks; a short
        // period so even this small screen yields several samples.
        cfg.telemetryLevel = 2;
        cfg.telemetrySamplePeriod = 256;

        static Scene swa =
            generateScene(benchmarkByAlias("SWa"), cfg, 0);
        static Scene gtr =
            generateScene(benchmarkByAlias("GTr"), cfg, 0);

        registry() = new StatRegistry("trace-test");
        std::vector<BatchJob> jobs;
        jobs.push_back({"SWa/a", cfg,
                        [](std::uint32_t) -> const Scene & {
                            return swa;
                        },
                        2});
        jobs.push_back({"GTr/b", cfg,
                        [](std::uint32_t) -> const Scene & {
                            return gtr;
                        },
                        1});
        results() = runBatch(jobs, 2, registry());
        TraceWriter::global().flush();

        std::ifstream in(kPath, std::ios::binary);
        std::ostringstream os;
        os << in.rdbuf();
        text() = os.str();
    }

    static void
    TearDownTestSuite()
    {
        delete registry();
        registry() = nullptr;
        std::remove(kPath);
    }

    static StatRegistry *&
    registry()
    {
        static StatRegistry *r = nullptr;
        return r;
    }

    static std::vector<BatchResult> &
    results()
    {
        static std::vector<BatchResult> r;
        return r;
    }

    static std::string &
    text()
    {
        static std::string t;
        return t;
    }

    /** Complete ("X") events only; counter events carry no "dur". */
    static std::vector<Span>
    spans(const JsonValue &doc)
    {
        std::vector<Span> out;
        const JsonValue &events = doc.members.at("traceEvents");
        for (const JsonValue &e : events.items) {
            if (e.members.at("ph").str != "X")
                continue;
            Span s;
            s.name = e.members.at("name").str;
            s.cat = e.members.at("cat").str;
            s.ts = static_cast<std::uint64_t>(
                e.members.at("ts").number);
            s.dur = static_cast<std::uint64_t>(
                e.members.at("dur").number);
            s.tid = static_cast<std::uint64_t>(
                e.members.at("tid").number);
            out.push_back(std::move(s));
        }
        return out;
    }

    /** Counter ("C") events emitted by the telemetry sampler. */
    static std::vector<Counter>
    counters(const JsonValue &doc)
    {
        std::vector<Counter> out;
        const JsonValue &events = doc.members.at("traceEvents");
        for (const JsonValue &e : events.items) {
            if (e.members.at("ph").str != "C")
                continue;
            EXPECT_EQ(e.members.at("cat").str, "counter");
            EXPECT_EQ(e.members.count("dur"), 0u)
                << "counter events must not carry a duration";
            Counter c;
            c.name = e.members.at("name").str;
            c.ts = static_cast<std::uint64_t>(
                e.members.at("ts").number);
            c.tid = static_cast<std::uint64_t>(
                e.members.at("tid").number);
            const JsonValue &args = e.members.at("args");
            EXPECT_EQ(args.kind, JsonValue::Kind::Object);
            const auto it = args.members.find("value");
            EXPECT_TRUE(it != args.members.end())
                << "counter '" << c.name << "' lacks args.value";
            if (it != args.members.end()) {
                EXPECT_EQ(it->second.kind, JsonValue::Kind::Number);
                c.value =
                    static_cast<std::uint64_t>(it->second.number);
            }
            out.push_back(std::move(c));
        }
        return out;
    }
};

TEST_F(TraceOutput, FileParsesAsJson)
{
    ASSERT_FALSE(text().empty());
    JsonValue doc;
    ASSERT_TRUE(JsonParser(text()).parse(doc)) << text();
    ASSERT_EQ(doc.kind, JsonValue::Kind::Object);
    ASSERT_TRUE(doc.members.count("traceEvents"));
    EXPECT_EQ(doc.members.at("traceEvents").kind,
              JsonValue::Kind::Array);
}

TEST_F(TraceOutput, EventsCarryExpectedSpans)
{
    JsonValue doc;
    ASSERT_TRUE(JsonParser(text()).parse(doc));
    const std::vector<Span> ss = spans(doc);

    // 3 frames total: one geometry + one raster phase span each, and
    // one job span per job.
    std::map<std::string, int> by_name;
    for (const Span &s : ss)
        ++by_name[s.cat + ":" + s.name];
    EXPECT_EQ(by_name["phase:geometry"], 3);
    EXPECT_EQ(by_name["phase:raster"], 3);
    EXPECT_EQ(by_name["job:SWa/a"], 1);
    EXPECT_EQ(by_name["job:GTr/b"], 1);
}

TEST_F(TraceOutput, SpansWellNestedPerTrack)
{
    JsonValue doc;
    ASSERT_TRUE(JsonParser(text()).parse(doc));
    std::vector<Span> ss = spans(doc);

    // Within a track, complete events must be properly nested: sort by
    // (start asc, duration desc) and sweep with a stack of open end
    // times; a span that starts inside an open span must also end
    // inside it.
    std::map<std::uint64_t, std::vector<Span>> tracks;
    for (Span &s : ss)
        tracks[s.tid].push_back(s);
    for (auto &[tid, track] : tracks) {
        std::sort(track.begin(), track.end(),
                  [](const Span &a, const Span &b) {
                      if (a.ts != b.ts)
                          return a.ts < b.ts;
                      return a.dur > b.dur;
                  });
        std::vector<std::uint64_t> open;
        for (const Span &s : track) {
            while (!open.empty() && open.back() <= s.ts)
                open.pop_back();
            if (!open.empty()) {
                EXPECT_LE(s.ts + s.dur, open.back())
                    << "span '" << s.name << "' on tid " << tid
                    << " straddles its parent";
            }
            open.push_back(s.ts + s.dur);
        }
    }
}

TEST_F(TraceOutput, JobSpanContainsItsPhaseSpans)
{
    JsonValue doc;
    ASSERT_TRUE(JsonParser(text()).parse(doc));
    const std::vector<Span> ss = spans(doc);
    for (const Span &job : ss) {
        if (job.cat != "job")
            continue;
        int contained = 0;
        for (const Span &ph : ss) {
            if (ph.cat != "phase" || ph.tid != job.tid)
                continue;
            if (ph.ts >= job.ts &&
                ph.ts + ph.dur <= job.ts + job.dur)
                ++contained;
        }
        // Every frame of the job contributes a geometry and a raster
        // span on the same worker track.
        const int frames = job.name == "SWa/a" ? 2 : 1;
        EXPECT_GE(contained, 2 * frames) << job.name;
    }
}

TEST_F(TraceOutput, CounterTracksPresentAndValid)
{
    JsonValue doc;
    ASSERT_TRUE(JsonParser(text()).parse(doc));
    const std::vector<Counter> cs = counters(doc);

    // Level 2 with a 256-cycle period over thousands of raster cycles
    // must produce samples; each sample emits one event per source.
    ASSERT_FALSE(cs.empty());

    // Counter names are "<job prefix>.<source>"; both jobs must have
    // sampled, and the per-SC occupancy sources must be among them.
    std::map<std::string, int> by_name;
    for (const Counter &c : cs)
        ++by_name[c.name];
    bool swa_seen = false, gtr_seen = false, sc_seen = false;
    for (const auto &[name, n] : by_name) {
        EXPECT_GT(n, 0);
        swa_seen |= name.rfind("job.SWa/a.", 0) == 0;
        gtr_seen |= name.rfind("job.GTr/b.", 0) == 0;
        sc_seen |= name.find(".sc0.busy") != std::string::npos;
    }
    EXPECT_TRUE(swa_seen);
    EXPECT_TRUE(gtr_seen);
    EXPECT_TRUE(sc_seen);
}

TEST_F(TraceOutput, CounterTimestampsMonotonicPerTrack)
{
    JsonValue doc;
    ASSERT_TRUE(JsonParser(text()).parse(doc));
    const std::vector<Counter> cs = counters(doc);
    ASSERT_FALSE(cs.empty());

    // Events appear in emission order; within one (tid, name) counter
    // track timestamps must never go backwards, or the viewer would
    // draw a garbled track.
    std::map<std::pair<std::uint64_t, std::string>, std::uint64_t> last;
    for (const Counter &c : cs) {
        const auto key = std::make_pair(c.tid, c.name);
        const auto it = last.find(key);
        if (it != last.end()) {
            EXPECT_GE(c.ts, it->second)
                << "counter '" << c.name << "' on tid " << c.tid
                << " went backwards";
        }
        last[key] = c.ts;
    }
}

TEST_F(TraceOutput, RegistryParentTotalsEqualChildSums)
{
    const StatRegistry &reg = *registry();

    // Leaf keys: each job has exactly a .geometry and a .raster child
    // holding these keys (the telemetry nodes use busy/stall_*/idle,
    // so they contribute nothing to these sums).
    for (const char *job : {"job.SWa/a", "job.GTr/b"}) {
        const std::string base(job);
        for (const char *key : {"frames", "cycles", "wall_us"}) {
            EXPECT_EQ(reg.total(base, key),
                      reg.total(base + ".geometry", key) +
                          reg.total(base + ".raster", key))
                << base << "." << key;
        }
    }

    // Root totals aggregate every job.
    EXPECT_EQ(reg.total("job", "frames"),
              reg.total("job.SWa/a", "frames") +
                  reg.total("job.GTr/b", "frames"));
    // 3 frames, each with one geometry and one raster phase entry.
    EXPECT_EQ(reg.total("job", "frames"), 6u);

    // The registry's cycle totals agree with the FrameStats the batch
    // returned — the two observability surfaces cannot drift apart.
    std::uint64_t geom = 0, raster = 0;
    for (const BatchResult &r : results()) {
        for (const FrameStats &fs : r.frames) {
            geom += fs.geometryCycles;
            raster += fs.rasterCycles;
        }
    }
    EXPECT_EQ(reg.total("job", "cycles"), geom + raster);

    // An unrelated prefix sums nothing.
    EXPECT_EQ(reg.total("nonexistent", "cycles"), 0u);
}

TEST_F(TraceOutput, TelemetryNodesPublishedPerJob)
{
    const StatRegistry &reg = *registry();

    // publish() writes cumulative busy/stall_*/idle/total per unit
    // under "<job>.telemetry.<unit>"; the invariant itself is covered
    // in depth by test_telemetry — here we check the registry surface
    // exists and is self-consistent after a batch run.
    for (const char *job : {"job.SWa/a", "job.GTr/b"}) {
        const std::string base = std::string(job) + ".telemetry";
        const std::uint64_t total = reg.total(base, "total");
        EXPECT_GT(total, 0u) << base;
        EXPECT_EQ(reg.total(base, "busy") + reg.total(base, "idle") +
                      reg.total(base, "stall_barrier_wait") +
                      reg.total(base, "stall_no_ready_warp") +
                      reg.total(base, "stall_upstream_starve") +
                      reg.total(base, "stall_downstream_backpressure") +
                      reg.total(base, "stall_mshr_full") +
                      reg.total(base, "stall_bank_conflict") +
                      reg.total(base, "stall_channel_busy"),
                  total)
            << base;
    }
}

} // namespace
} // namespace dtexl

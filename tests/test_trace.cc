/**
 * @file
 * Coverage for the --trace observability surface: the Chrome-trace
 * JSON written by TraceWriter must parse, its spans must be properly
 * nested per track, and the StatRegistry tree populated alongside it
 * must satisfy the parent-totals-equal-sum-of-children invariant.
 *
 * TraceWriter is a process global that stays enabled once switched on,
 * so everything that needs tracing runs inside this one binary.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/stat_registry.hh"
#include "common/trace.hh"
#include "core/engine.hh"
#include "workloads/scenegen.hh"

namespace dtexl {
namespace {

// ---------- Minimal JSON reader ----------
//
// A genuine recursive-descent parser (objects, arrays, strings,
// numbers, literals) rather than a regex: a malformed file — trailing
// comma, unbalanced bracket, bad escape — must fail the test.

struct JsonValue
{
    enum class Kind { Null, Bool, Number, String, Array, Object };
    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string str;
    std::vector<JsonValue> items;
    std::map<std::string, JsonValue> members;
};

class JsonParser
{
  public:
    explicit JsonParser(const std::string &text) : s(text) {}

    /** Parse the whole document; false on any syntax error. */
    bool
    parse(JsonValue &out)
    {
        skipWs();
        if (!value(out))
            return false;
        skipWs();
        return pos == s.size();
    }

  private:
    const std::string &s;
    std::size_t pos = 0;

    void
    skipWs()
    {
        while (pos < s.size() &&
               std::isspace(static_cast<unsigned char>(s[pos])))
            ++pos;
    }

    bool
    literal(const char *word)
    {
        const std::size_t n = std::string(word).size();
        if (s.compare(pos, n, word) != 0)
            return false;
        pos += n;
        return true;
    }

    bool
    value(JsonValue &out)
    {
        if (pos >= s.size())
            return false;
        switch (s[pos]) {
          case '{':
            return object(out);
          case '[':
            return array(out);
          case '"':
            out.kind = JsonValue::Kind::String;
            return string(out.str);
          case 't':
            out.kind = JsonValue::Kind::Bool;
            out.boolean = true;
            return literal("true");
          case 'f':
            out.kind = JsonValue::Kind::Bool;
            out.boolean = false;
            return literal("false");
          case 'n':
            out.kind = JsonValue::Kind::Null;
            return literal("null");
          default:
            return number(out);
        }
    }

    bool
    string(std::string &out)
    {
        if (s[pos] != '"')
            return false;
        ++pos;
        while (pos < s.size() && s[pos] != '"') {
            if (s[pos] == '\\') {
                if (pos + 1 >= s.size())
                    return false;
                const char esc = s[pos + 1];
                switch (esc) {
                  case '"':
                    out += '"';
                    break;
                  case '\\':
                    out += '\\';
                    break;
                  case '/':
                    out += '/';
                    break;
                  case 'n':
                    out += '\n';
                    break;
                  case 't':
                    out += '\t';
                    break;
                  case 'b':
                  case 'f':
                  case 'r':
                    out += ' ';
                    break;
                  case 'u': {
                    if (pos + 5 >= s.size())
                        return false;
                    for (int i = 0; i < 4; ++i) {
                        if (!std::isxdigit(static_cast<unsigned char>(
                                s[pos + 2 + i])))
                            return false;
                    }
                    out += '?';  // code point value not needed here
                    pos += 4;
                    break;
                  }
                  default:
                    return false;
                }
                pos += 2;
            } else {
                out += s[pos++];
            }
        }
        if (pos >= s.size())
            return false;
        ++pos;  // closing quote
        return true;
    }

    bool
    number(JsonValue &out)
    {
        const std::size_t start = pos;
        if (pos < s.size() && s[pos] == '-')
            ++pos;
        while (pos < s.size() &&
               (std::isdigit(static_cast<unsigned char>(s[pos])) ||
                s[pos] == '.' || s[pos] == 'e' || s[pos] == 'E' ||
                s[pos] == '+' || s[pos] == '-'))
            ++pos;
        if (pos == start)
            return false;
        out.kind = JsonValue::Kind::Number;
        out.number = std::stod(s.substr(start, pos - start));
        return true;
    }

    bool
    array(JsonValue &out)
    {
        out.kind = JsonValue::Kind::Array;
        ++pos;  // '['
        skipWs();
        if (pos < s.size() && s[pos] == ']') {
            ++pos;
            return true;
        }
        for (;;) {
            JsonValue item;
            skipWs();
            if (!value(item))
                return false;
            out.items.push_back(std::move(item));
            skipWs();
            if (pos >= s.size())
                return false;
            if (s[pos] == ',') {
                ++pos;
                continue;
            }
            if (s[pos] == ']') {
                ++pos;
                return true;
            }
            return false;
        }
    }

    bool
    object(JsonValue &out)
    {
        out.kind = JsonValue::Kind::Object;
        ++pos;  // '{'
        skipWs();
        if (pos < s.size() && s[pos] == '}') {
            ++pos;
            return true;
        }
        for (;;) {
            skipWs();
            std::string key;
            if (pos >= s.size() || !string(key))
                return false;
            skipWs();
            if (pos >= s.size() || s[pos] != ':')
                return false;
            ++pos;
            skipWs();
            JsonValue val;
            if (!value(val))
                return false;
            out.members[key] = std::move(val);
            skipWs();
            if (pos >= s.size())
                return false;
            if (s[pos] == ',') {
                ++pos;
                continue;
            }
            if (s[pos] == '}') {
                ++pos;
                return true;
            }
            return false;
        }
    }
};

struct Span
{
    std::string name;
    std::string cat;
    std::uint64_t ts = 0;
    std::uint64_t dur = 0;
    std::uint64_t tid = 0;
};

/**
 * Shared fixture state: run one traced batch for the whole binary and
 * let every test interrogate the resulting file and registry.
 */
class TraceOutput : public ::testing::Test
{
  protected:
    static constexpr const char *kPath = "test_trace_out.json";

    static void
    SetUpTestSuite()
    {
        TraceWriter::global().enable(kPath);

        GpuConfig cfg;
        cfg.screenWidth = 256;
        cfg.screenHeight = 128;

        static Scene swa =
            generateScene(benchmarkByAlias("SWa"), cfg, 0);
        static Scene gtr =
            generateScene(benchmarkByAlias("GTr"), cfg, 0);

        registry() = new StatRegistry("trace-test");
        std::vector<BatchJob> jobs;
        jobs.push_back({"SWa/a", cfg,
                        [](std::uint32_t) -> const Scene & {
                            return swa;
                        },
                        2});
        jobs.push_back({"GTr/b", cfg,
                        [](std::uint32_t) -> const Scene & {
                            return gtr;
                        },
                        1});
        results() = runBatch(jobs, 2, registry());
        TraceWriter::global().flush();

        std::ifstream in(kPath, std::ios::binary);
        std::ostringstream os;
        os << in.rdbuf();
        text() = os.str();
    }

    static void
    TearDownTestSuite()
    {
        delete registry();
        registry() = nullptr;
        std::remove(kPath);
    }

    static StatRegistry *&
    registry()
    {
        static StatRegistry *r = nullptr;
        return r;
    }

    static std::vector<BatchResult> &
    results()
    {
        static std::vector<BatchResult> r;
        return r;
    }

    static std::string &
    text()
    {
        static std::string t;
        return t;
    }

    static std::vector<Span>
    spans(const JsonValue &doc)
    {
        std::vector<Span> out;
        const JsonValue &events = doc.members.at("traceEvents");
        for (const JsonValue &e : events.items) {
            EXPECT_EQ(e.members.at("ph").str, "X");
            Span s;
            s.name = e.members.at("name").str;
            s.cat = e.members.at("cat").str;
            s.ts = static_cast<std::uint64_t>(
                e.members.at("ts").number);
            s.dur = static_cast<std::uint64_t>(
                e.members.at("dur").number);
            s.tid = static_cast<std::uint64_t>(
                e.members.at("tid").number);
            out.push_back(std::move(s));
        }
        return out;
    }
};

TEST_F(TraceOutput, FileParsesAsJson)
{
    ASSERT_FALSE(text().empty());
    JsonValue doc;
    ASSERT_TRUE(JsonParser(text()).parse(doc)) << text();
    ASSERT_EQ(doc.kind, JsonValue::Kind::Object);
    ASSERT_TRUE(doc.members.count("traceEvents"));
    EXPECT_EQ(doc.members.at("traceEvents").kind,
              JsonValue::Kind::Array);
}

TEST_F(TraceOutput, EventsCarryExpectedSpans)
{
    JsonValue doc;
    ASSERT_TRUE(JsonParser(text()).parse(doc));
    const std::vector<Span> ss = spans(doc);

    // 3 frames total: one geometry + one raster phase span each, and
    // one job span per job.
    std::map<std::string, int> by_name;
    for (const Span &s : ss)
        ++by_name[s.cat + ":" + s.name];
    EXPECT_EQ(by_name["phase:geometry"], 3);
    EXPECT_EQ(by_name["phase:raster"], 3);
    EXPECT_EQ(by_name["job:SWa/a"], 1);
    EXPECT_EQ(by_name["job:GTr/b"], 1);
}

TEST_F(TraceOutput, SpansWellNestedPerTrack)
{
    JsonValue doc;
    ASSERT_TRUE(JsonParser(text()).parse(doc));
    std::vector<Span> ss = spans(doc);

    // Within a track, complete events must be properly nested: sort by
    // (start asc, duration desc) and sweep with a stack of open end
    // times; a span that starts inside an open span must also end
    // inside it.
    std::map<std::uint64_t, std::vector<Span>> tracks;
    for (Span &s : ss)
        tracks[s.tid].push_back(s);
    for (auto &[tid, track] : tracks) {
        std::sort(track.begin(), track.end(),
                  [](const Span &a, const Span &b) {
                      if (a.ts != b.ts)
                          return a.ts < b.ts;
                      return a.dur > b.dur;
                  });
        std::vector<std::uint64_t> open;
        for (const Span &s : track) {
            while (!open.empty() && open.back() <= s.ts)
                open.pop_back();
            if (!open.empty()) {
                EXPECT_LE(s.ts + s.dur, open.back())
                    << "span '" << s.name << "' on tid " << tid
                    << " straddles its parent";
            }
            open.push_back(s.ts + s.dur);
        }
    }
}

TEST_F(TraceOutput, JobSpanContainsItsPhaseSpans)
{
    JsonValue doc;
    ASSERT_TRUE(JsonParser(text()).parse(doc));
    const std::vector<Span> ss = spans(doc);
    for (const Span &job : ss) {
        if (job.cat != "job")
            continue;
        int contained = 0;
        for (const Span &ph : ss) {
            if (ph.cat != "phase" || ph.tid != job.tid)
                continue;
            if (ph.ts >= job.ts &&
                ph.ts + ph.dur <= job.ts + job.dur)
                ++contained;
        }
        // Every frame of the job contributes a geometry and a raster
        // span on the same worker track.
        const int frames = job.name == "SWa/a" ? 2 : 1;
        EXPECT_GE(contained, 2 * frames) << job.name;
    }
}

TEST_F(TraceOutput, RegistryParentTotalsEqualChildSums)
{
    const StatRegistry &reg = *registry();

    // Leaf keys: each job has exactly a .geometry and a .raster child.
    for (const char *job : {"job.SWa/a", "job.GTr/b"}) {
        const std::string base(job);
        for (const char *key : {"frames", "cycles", "wall_us"}) {
            EXPECT_EQ(reg.total(base, key),
                      reg.total(base + ".geometry", key) +
                          reg.total(base + ".raster", key))
                << base << "." << key;
        }
    }

    // Root totals aggregate every job.
    EXPECT_EQ(reg.total("job", "frames"),
              reg.total("job.SWa/a", "frames") +
                  reg.total("job.GTr/b", "frames"));
    // 3 frames, each with one geometry and one raster phase entry.
    EXPECT_EQ(reg.total("job", "frames"), 6u);

    // The registry's cycle totals agree with the FrameStats the batch
    // returned — the two observability surfaces cannot drift apart.
    std::uint64_t geom = 0, raster = 0;
    for (const BatchResult &r : results()) {
        for (const FrameStats &fs : r.frames) {
            geom += fs.geometryCycles;
            raster += fs.rasterCycles;
        }
    }
    EXPECT_EQ(reg.total("job", "cycles"), geom + raster);

    // An unrelated prefix sums nothing.
    EXPECT_EQ(reg.total("nonexistent", "cycles"), 0u);
}

} // namespace
} // namespace dtexl

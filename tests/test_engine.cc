/**
 * @file
 * Phase-structured engine tests: the in-place RasterPipeline reset
 * path must be bit-exact with the legacy rebuild-per-frame path, the
 * parallel batch driver must be deterministic for any worker count,
 * and the observability layer (StatRegistry, Chrome trace) must
 * record what the engine did.
 */

#include <gtest/gtest.h>

#include <cstdio>

#include "core/dtexl.hh"
#include "harness.hh"
#include "workloads/scenegen.hh"

namespace dtexl {
namespace {

GpuConfig
smallCfg()
{
    GpuConfig cfg;
    cfg.screenWidth = 256;
    cfg.screenHeight = 128;
    return cfg;
}

/** Every FrameStats field, including the distributions. */
void
expectSameStats(const FrameStats &a, const FrameStats &b,
                const std::string &what)
{
    SCOPED_TRACE(what);
    EXPECT_EQ(a.geometryCycles, b.geometryCycles);
    EXPECT_EQ(a.rasterCycles, b.rasterCycles);
    EXPECT_EQ(a.totalCycles, b.totalCycles);
    EXPECT_DOUBLE_EQ(a.fps, b.fps);
    EXPECT_EQ(a.verticesProcessed, b.verticesProcessed);
    EXPECT_EQ(a.primitivesBinned, b.primitivesBinned);
    EXPECT_EQ(a.quadsRasterized, b.quadsRasterized);
    EXPECT_EQ(a.quadsCulledEarlyZ, b.quadsCulledEarlyZ);
    EXPECT_EQ(a.quadsCulledHiZ, b.quadsCulledHiZ);
    EXPECT_EQ(a.quadsShaded, b.quadsShaded);
    EXPECT_EQ(a.fragmentsShaded, b.fragmentsShaded);
    EXPECT_EQ(a.shaderInstructions, b.shaderInstructions);
    EXPECT_EQ(a.textureSamples, b.textureSamples);
    EXPECT_EQ(a.earlyZTests, b.earlyZTests);
    EXPECT_EQ(a.blendOps, b.blendOps);
    EXPECT_EQ(a.flushLineWrites, b.flushLineWrites);
    EXPECT_EQ(a.flushesEliminated, b.flushesEliminated);
    EXPECT_EQ(a.l1TexAccesses, b.l1TexAccesses);
    EXPECT_EQ(a.l1TexMisses, b.l1TexMisses);
    EXPECT_EQ(a.l1VertexAccesses, b.l1VertexAccesses);
    EXPECT_EQ(a.l1TileAccesses, b.l1TileAccesses);
    EXPECT_EQ(a.l2Accesses, b.l2Accesses);
    EXPECT_EQ(a.l2Misses, b.l2Misses);
    EXPECT_EQ(a.dramAccesses, b.dramAccesses);
    EXPECT_EQ(a.quadsPerSc, b.quadsPerSc);
    EXPECT_EQ(a.barrierIdleCycles, b.barrierIdleCycles);
    EXPECT_EQ(a.tileTimeDeviation.samples(),
              b.tileTimeDeviation.samples());
    EXPECT_EQ(a.tileQuadDeviation.samples(),
              b.tileQuadDeviation.samples());
    EXPECT_DOUBLE_EQ(a.textureReplication, b.textureReplication);
    EXPECT_EQ(a.imageHash, b.imageHash);
}

/**
 * The tentpole's bit-exactness criterion: 3 frames with the in-place
 * beginFrame() path against 3 frames with a freshly constructed
 * pipeline per frame, identical FrameStats and imageHash each frame.
 */
void
resetMatchesRebuild(const GpuConfig &cfg, const std::string &alias)
{
    const BenchmarkParams &p = benchmarkByAlias(alias);
    const Scene f0 = generateScene(p, cfg, 0);
    const Scene f1 = generateScene(p, cfg, 1);
    const Scene f2 = generateScene(p, cfg, 2);

    GpuSimulator reset_path(cfg, f0);
    GpuSimulator rebuild_path(cfg, f0);
    rebuild_path.setRebuildPipelineEachFrame(true);

    const Scene *framesv[] = {&f0, &f1, &f2};
    for (int f = 0; f < 3; ++f) {
        reset_path.setScene(*framesv[f]);
        rebuild_path.setScene(*framesv[f]);
        const FrameStats a = reset_path.renderFrame();
        const FrameStats b = rebuild_path.renderFrame();
        expectSameStats(a, b,
                        alias + " frame " + std::to_string(f));
    }
}

TEST(Engine, ResetPathBitExactBaseline)
{
    resetMatchesRebuild(smallCfg(), "SWa");
}

TEST(Engine, ResetPathBitExactDTexL)
{
    GpuConfig cfg = makeDTexLConfig();
    cfg.screenWidth = 256;
    cfg.screenHeight = 128;
    resetMatchesRebuild(cfg, "GTr");
}

TEST(Engine, ResetPathBitExactWithExtensions)
{
    // The extensions carry extra per-frame state (HiZ pyramid is
    // per-tile, flush CRCs are cross-frame): they must survive the
    // in-place reset unchanged too.
    GpuConfig cfg = smallCfg();
    cfg.hierarchicalZ = true;
    cfg.transactionElimination = true;
    cfg.decoupledBarriers = true;
    resetMatchesRebuild(cfg, "CCS");
}

TEST(Engine, SessionAccumulatesHistory)
{
    const GpuConfig cfg = smallCfg();
    const BenchmarkParams &p = benchmarkByAlias("SoD");
    const Scene f0 = generateScene(p, cfg, 0);
    const Scene f1 = generateScene(p, cfg, 1);

    SimulationSession session(cfg, f0, "test");
    const FrameStats a = session.renderFrame();
    const FrameStats b = session.renderFrame(f1);
    ASSERT_EQ(session.history().size(), 2u);
    EXPECT_EQ(session.history()[0].imageHash, a.imageHash);
    EXPECT_EQ(session.history()[1].imageHash, b.imageHash);
    EXPECT_NE(a.imageHash, b.imageHash);
}

/** Build a small mixed batch: 2 benchmarks x 2 configs, 2 frames. */
std::vector<BatchJob>
makeBatch(const std::vector<std::vector<Scene>> &scenes)
{
    GpuConfig base = smallCfg();
    GpuConfig dt = makeDTexLConfig();
    dt.screenWidth = base.screenWidth;
    dt.screenHeight = base.screenHeight;

    std::vector<BatchJob> jobs;
    const char *labels[] = {"SWa/base", "SWa/dtexl", "CCS/base",
                            "CCS/dtexl"};
    const GpuConfig cfgs[] = {base, dt, base, dt};
    for (int j = 0; j < 4; ++j) {
        BatchJob bj;
        bj.label = labels[j];
        bj.cfg = cfgs[j];
        const std::vector<Scene> *sv = &scenes[j];
        bj.scene = [sv](std::uint32_t f) -> const Scene & {
            return (*sv)[f];
        };
        bj.frames = 2;
        jobs.push_back(std::move(bj));
    }
    return jobs;
}

std::vector<std::vector<Scene>>
makeBatchScenes()
{
    GpuConfig base = smallCfg();
    GpuConfig dt = makeDTexLConfig();
    dt.screenWidth = base.screenWidth;
    dt.screenHeight = base.screenHeight;
    const char *aliases[] = {"SWa", "SWa", "CCS", "CCS"};
    const GpuConfig cfgs[] = {base, dt, base, dt};

    std::vector<std::vector<Scene>> scenes;
    for (int j = 0; j < 4; ++j) {
        scenes.emplace_back();
        for (std::uint32_t f = 0; f < 2; ++f)
            scenes.back().push_back(generateScene(
                benchmarkByAlias(aliases[j]), cfgs[j], f));
    }
    return scenes;
}

TEST(Engine, RunBatchDeterministicAcrossWorkerCounts)
{
    const std::vector<std::vector<Scene>> scenes = makeBatchScenes();
    const std::vector<BatchJob> jobs = makeBatch(scenes);

    const std::vector<BatchResult> serial = runBatch(jobs, 1);
    const std::vector<BatchResult> parallel = runBatch(jobs, 4);

    ASSERT_EQ(serial.size(), jobs.size());
    ASSERT_EQ(parallel.size(), jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        // Collected in submission order under both worker counts...
        EXPECT_EQ(serial[i].label, jobs[i].label);
        EXPECT_EQ(parallel[i].label, jobs[i].label);
        // ...with bit-identical per-frame outputs.
        ASSERT_EQ(serial[i].frames.size(), 2u);
        ASSERT_EQ(parallel[i].frames.size(), 2u);
        for (std::size_t f = 0; f < 2; ++f)
            expectSameStats(serial[i].frames[f], parallel[i].frames[f],
                            jobs[i].label + " frame " +
                                std::to_string(f));
    }
}

TEST(Engine, RunBatchMatchesDirectSimulation)
{
    const std::vector<std::vector<Scene>> scenes = makeBatchScenes();
    const std::vector<BatchJob> jobs = makeBatch(scenes);
    const std::vector<BatchResult> results = runBatch(jobs, 2);

    // Job 0 must equal a plain warm-cache GpuSimulator run.
    GpuSimulator gpu(jobs[0].cfg, scenes[0][0]);
    const FrameStats a = gpu.renderFrame();
    gpu.setScene(scenes[0][1]);
    const FrameStats b = gpu.renderFrame();
    expectSameStats(results[0].frames[0], a, "job0 frame0");
    expectSameStats(results[0].frames[1], b, "job0 frame1");
}

TEST(Engine, FaultIsolationKeepsSiblingJobsBitExact)
{
    const std::vector<std::vector<Scene>> scenes = makeBatchScenes();
    std::vector<BatchJob> jobs = makeBatch(scenes);
    ASSERT_EQ(jobs.size(), 4u);

    // Job 2's simulator constructor must reject this config: tiles are
    // quad-aligned, so an odd tile size fails GpuConfig::validate().
    jobs[2].cfg.tileSize = 3;

    const std::vector<BatchResult> faulty = runBatch(jobs, 4);

    ASSERT_EQ(faulty.size(), 4u);
    // Submission order is preserved around the failure...
    for (std::size_t i = 0; i < 4; ++i)
        EXPECT_EQ(faulty[i].label, jobs[i].label);
    // ...the broken job fails alone, classified as a config error...
    EXPECT_TRUE(faulty[0].ok);
    EXPECT_TRUE(faulty[1].ok);
    EXPECT_TRUE(faulty[3].ok);
    ASSERT_FALSE(faulty[2].ok);
    EXPECT_EQ(faulty[2].errorKind, ErrorKind::Config);
    EXPECT_NE(faulty[2].error.find("tile"), std::string::npos)
        << faulty[2].error;
    EXPECT_TRUE(faulty[2].frames.empty());
    EXPECT_EQ(batchExitCode(faulty), kExitPartialBatch);

    // ...and the surviving jobs are bit-identical to a clean batch
    // that never contained the broken job.
    const std::vector<BatchJob> clean = {jobs[0], jobs[1], jobs[3]};
    const std::vector<BatchResult> ref = runBatch(clean, 3);
    ASSERT_EQ(ref.size(), 3u);
    const std::size_t pairs[3][2] = {{0, 0}, {1, 1}, {3, 2}};
    for (const auto &pair : pairs) {
        const BatchResult &got = faulty[pair[0]];
        const BatchResult &want = ref[pair[1]];
        ASSERT_EQ(got.frames.size(), want.frames.size());
        for (std::size_t f = 0; f < got.frames.size(); ++f)
            expectSameStats(got.frames[f], want.frames[f],
                            got.label + " frame " + std::to_string(f));
    }
}

TEST(Engine, BatchExitCodeClassification)
{
    std::vector<BatchResult> all_ok(2);
    EXPECT_EQ(batchExitCode(all_ok), kExitSuccess);

    std::vector<BatchResult> all_bad(2);
    for (BatchResult &r : all_bad) {
        r.ok = false;
        r.errorKind = ErrorKind::UserInput;
    }
    EXPECT_EQ(batchExitCode(all_bad), kExitUserError);
    all_bad[0].errorKind = ErrorKind::Watchdog;
    EXPECT_EQ(batchExitCode(all_bad), kExitWatchdog);

    std::vector<BatchResult> mixed(2);
    mixed[1].ok = false;
    mixed[1].errorKind = ErrorKind::Internal;
    EXPECT_EQ(batchExitCode(mixed), kExitPartialBatch);
}

TEST(Engine, StatRegistryCollectsPerPhaseCounters)
{
    const GpuConfig cfg = smallCfg();
    const Scene scene =
        generateScene(benchmarkByAlias("SoD"), cfg, 0);

    StatRegistry reg("test");
    GpuSimulator gpu(cfg, scene);
    gpu.setStatRegistry(&reg, "engine");
    const FrameStats fs = gpu.renderFrame();

    EXPECT_EQ(reg.node("engine.geometry").get("frames"), 1u);
    EXPECT_EQ(reg.node("engine.geometry").get("cycles"),
              fs.geometryCycles);
    EXPECT_EQ(reg.node("engine.raster").get("cycles"),
              fs.rasterCycles);
    const std::string dump = reg.dump();
    EXPECT_NE(dump.find("geometry"), std::string::npos);
    EXPECT_NE(dump.find("cycles"), std::string::npos);
}

TEST(Engine, StatRegistryHierarchy)
{
    StatRegistry reg("r");
    reg.inc("a.b", "x", 2);
    reg.inc("a.b", "x", 3);
    reg.inc("a.c", "y");
    EXPECT_EQ(reg.node("a.b").get("x"), 5u);
    ASSERT_EQ(reg.paths().size(), 2u);
    EXPECT_EQ(reg.paths()[0], "a.b");
    reg.clear();
    EXPECT_EQ(reg.node("a.b").get("x"), 0u);
}

TEST(Engine, BenchOptionsSkipsEmptyBenchmarkSegments)
{
    const char *argv[] = {"prog", "--benchmarks=SoD,,GTr,"};
    const bench::BenchOptions opt =
        bench::BenchOptions::parse(2, const_cast<char **>(argv));
    ASSERT_EQ(opt.aliases.size(), 2u);
    EXPECT_EQ(opt.aliases[0], "SoD");
    EXPECT_EQ(opt.aliases[1], "GTr");
}

TEST(Engine, BenchOptionsRejectsUnknownAlias)
{
    const char *argv[] = {"prog", "--benchmarks=NoSuchGame"};
    try {
        bench::BenchOptions::parse(2, const_cast<char **>(argv));
        FAIL() << "expected SimError";
    } catch (const SimError &e) {
        EXPECT_EQ(e.kind(), ErrorKind::UserInput);
        EXPECT_EQ(exitCodeFor(e.kind()), kExitUserError);
        EXPECT_NE(std::string(e.what()).find("unknown benchmark alias"),
                  std::string::npos);
    }
}

TEST(Engine, BenchOptionsRejectsAllEmptyList)
{
    const char *argv[] = {"prog", "--benchmarks=,"};
    try {
        bench::BenchOptions::parse(2, const_cast<char **>(argv));
        FAIL() << "expected SimError";
    } catch (const SimError &e) {
        EXPECT_EQ(e.kind(), ErrorKind::UserInput);
        EXPECT_NE(std::string(e.what()).find("at least one alias"),
                  std::string::npos);
    }
}

TEST(Engine, BenchOptionsRejectsUnknownFlag)
{
    const char *argv[] = {"prog", "--frobnicate"};
    try {
        bench::BenchOptions::parse(2, const_cast<char **>(argv));
        FAIL() << "expected SimError";
    } catch (const SimError &e) {
        EXPECT_EQ(e.kind(), ErrorKind::UserInput);
        EXPECT_NE(std::string(e.what()).find("unknown argument"),
                  std::string::npos);
        // The rejection carries a usage hint for the user.
        EXPECT_NE(std::string(e.what()).find("--help"),
                  std::string::npos);
    }
}

TEST(Engine, CommonCliOptionsRejectsMalformedJobs)
{
    CommonCliOptions common;
    EXPECT_THROW(common.tryParse("--jobs=12x"), SimError);
    EXPECT_THROW(common.tryParse("--jobs=0"), SimError);
    EXPECT_THROW(common.tryParse("--jobs="), SimError);
    EXPECT_TRUE(common.tryParse("--jobs=12"));
    EXPECT_EQ(common.jobs, 12u);
}

} // namespace
} // namespace dtexl

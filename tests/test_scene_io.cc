/**
 * @file
 * Tests for scene serialization: round-trip fidelity (the saved and
 * reloaded scene renders the identical image with identical timing),
 * format errors, and config option parsing for the CLI driver.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/sim_error.hh"
#include "core/gpu.hh"
#include "workloads/scene_io.hh"
#include "workloads/scenegen.hh"

namespace dtexl {
namespace {

GpuConfig
smallCfg()
{
    GpuConfig cfg;
    cfg.screenWidth = 256;
    cfg.screenHeight = 128;
    return cfg;
}

TEST(SceneIo, RoundTripStructure)
{
    GpuConfig cfg = smallCfg();
    const Scene a = generateScene(benchmarkByAlias("GTr"), cfg);
    std::stringstream ss;
    saveScene(ss, a);
    const Scene b = loadScene(ss);

    ASSERT_EQ(a.textures.size(), b.textures.size());
    for (std::size_t i = 0; i < a.textures.size(); ++i) {
        EXPECT_EQ(a.textures[i].baseAddr(), b.textures[i].baseAddr());
        EXPECT_EQ(a.textures[i].side(), b.textures[i].side());
        EXPECT_EQ(a.textures[i].format(), b.textures[i].format());
    }
    ASSERT_EQ(a.draws.size(), b.draws.size());
    for (std::size_t i = 0; i < a.draws.size(); ++i) {
        const DrawCommand &da = a.draws[i];
        const DrawCommand &db = b.draws[i];
        EXPECT_EQ(da.texture, db.texture);
        EXPECT_EQ(da.vertexBufferAddr, db.vertexBufferAddr);
        EXPECT_EQ(da.shader.aluOps, db.shader.aluOps);
        EXPECT_EQ(da.shader.texSamples, db.shader.texSamples);
        EXPECT_EQ(da.shader.filter, db.shader.filter);
        EXPECT_EQ(da.shader.blends, db.shader.blends);
        EXPECT_EQ(da.indices, db.indices);
        ASSERT_EQ(da.vertices.size(), db.vertices.size());
        for (std::size_t v = 0; v < da.vertices.size(); ++v) {
            EXPECT_EQ(da.vertices[v].pos, db.vertices[v].pos);
            EXPECT_EQ(da.vertices[v].uv, db.vertices[v].uv);
        }
    }
}

TEST(SceneIo, RoundTripRendersIdentically)
{
    // The strongest property: a reloaded scene is indistinguishable to
    // the simulator — same image, same cycles, same memory traffic.
    GpuConfig cfg = smallCfg();
    const Scene a = generateScene(benchmarkByAlias("CCS"), cfg);
    std::stringstream ss;
    saveScene(ss, a);
    const Scene b = loadScene(ss);

    GpuSimulator ga(cfg, a), gb(cfg, b);
    const FrameStats fa = ga.renderFrame();
    const FrameStats fb = gb.renderFrame();
    EXPECT_EQ(fa.imageHash, fb.imageHash);
    EXPECT_EQ(fa.totalCycles, fb.totalCycles);
    EXPECT_EQ(fa.l2Accesses, fb.l2Accesses);
}

TEST(SceneIo, TinySceneRoundTrip)
{
    GpuConfig cfg = smallCfg();
    const Scene a = makeTinyScene(cfg);
    std::stringstream ss;
    saveScene(ss, a);
    const Scene b = loadScene(ss);
    EXPECT_EQ(b.draws.size(), 2u);
    EXPECT_TRUE(b.draws[1].shader.blends);
}

/**
 * Expect loadScene() on @p text to throw SimError{UserInput} whose
 * one-line describe() contains @p needle, and (when non-empty) whose
 * context starts with @p ctx_prefix — the "source:line:column" anchor
 * every scene diagnostic must carry.
 */
void
expectSceneError(const std::string &text, const std::string &needle,
                 const std::string &ctx_prefix = "")
{
    std::stringstream ss(text);
    try {
        loadScene(ss, "test.dscene");
        FAIL() << "expected SimError containing: " << needle;
    } catch (const SimError &e) {
        EXPECT_EQ(e.kind(), ErrorKind::UserInput) << e.describe();
        EXPECT_NE(e.describe().find(needle), std::string::npos)
            << e.describe();
        if (!ctx_prefix.empty()) {
            EXPECT_EQ(e.context().rfind(ctx_prefix, 0), 0u)
                << e.context();
        }
    }
}

TEST(SceneIoErrors, RejectsBadHeader)
{
    expectSceneError("NOT_A_SCENE v9\n", "bad scene magic",
                     "test.dscene:1:1");
}

TEST(SceneIoErrors, RejectsUnsupportedVersion)
{
    expectSceneError("DTEXL_SCENE v9\n", "unsupported scene version",
                     "test.dscene:1:13");
}

TEST(SceneIoErrors, RejectsTruncatedFile)
{
    expectSceneError("DTEXL_SCENE v1\n"
                     "textures 1\n",
                     "unexpected end of file");
}

TEST(SceneIoErrors, RejectsDanglingTextureReference)
{
    expectSceneError(
        "DTEXL_SCENE v1\n"
        "textures 1\n"
        "  0 4096 64 RGBA8\n"
        "draws 1\n"
        "draw tex=7 vb=0 alu=4 samples=1 filter=bilinear blends=0 "
        "modifies_depth=0\n"
        "  verts 0\n"
        "  indices 0\n",
        "references texture 7", "test.dscene:5");
}

TEST(SceneIoErrors, RejectsNaNVertex)
{
    expectSceneError(
        "DTEXL_SCENE v1\n"
        "textures 1\n"
        "  0 4096 64 RGBA8\n"
        "draws 1\n"
        "draw tex=0 vb=0 alu=4 samples=1 filter=bilinear blends=0 "
        "modifies_depth=0\n"
        "  verts 1\n"
        "    0 nan 0 1 0 0\n"
        "  indices 0\n",
        "must be finite", "test.dscene:7");
}

TEST(SceneIoErrors, RejectsGarbageNumber)
{
    expectSceneError("DTEXL_SCENE v1\n"
                     "textures banana\n",
                     "texture count is not a non-negative integer: "
                     "'banana'",
                     "test.dscene:2:10");
}

TEST(SceneIoErrors, RejectsOutOfRangeIndex)
{
    expectSceneError(
        "DTEXL_SCENE v1\n"
        "textures 1\n"
        "  0 4096 64 RGBA8\n"
        "draws 1\n"
        "draw tex=0 vb=0 alu=4 samples=1 filter=bilinear blends=0 "
        "modifies_depth=0\n"
        "  verts 1\n"
        "    0 0 0 1 0 0\n"
        "  indices 3\n"
        "    0 1 2\n",
        "index out of range", "test.dscene:9");
}

// ---------- config option parsing ----------

TEST(ConfigOptions, AppliesSchedulingKeys)
{
    GpuConfig cfg = makeBaselineConfig();
    applyConfigOption(cfg, "grouping", "CG-square");
    applyConfigOption(cfg, "order", "Hilbert");
    applyConfigOption(cfg, "assignment", "flp2");
    applyConfigOption(cfg, "decoupled", "1");
    applyConfigOption(cfg, "hiz", "true");
    EXPECT_EQ(cfg.grouping, QuadGrouping::CGSquare);
    EXPECT_EQ(cfg.tileOrder, TileOrder::RectHilbert);
    EXPECT_EQ(cfg.assignment, SubtileAssignment::Flip2);
    EXPECT_TRUE(cfg.decoupledBarriers);
    EXPECT_TRUE(cfg.hierarchicalZ);
}

TEST(ConfigOptions, AppliesMachineKeys)
{
    GpuConfig cfg = makeBaselineConfig();
    applyConfigOption(cfg, "warps", "12");
    applyConfigOption(cfg, "fifo", "32");
    applyConfigOption(cfg, "width", "980");
    applyConfigOption(cfg, "height", "384");
    applyConfigOption(cfg, "l1tex_kib", "32");
    EXPECT_EQ(cfg.maxWarpsPerCore, 12u);
    EXPECT_EQ(cfg.stageFifoDepth, 32u);
    EXPECT_EQ(cfg.screenWidth, 980u);
    EXPECT_EQ(cfg.textureCache.sizeBytes, 32u * 1024);
    EXPECT_NO_FATAL_FAILURE(cfg.validate());
}

TEST(ConfigOptionsErrors, RejectsUnknownKey)
{
    GpuConfig cfg;
    EXPECT_THROW(applyConfigOption(cfg, "bogus", "1"), SimError);
    try {
        applyConfigOption(cfg, "bogus", "1");
    } catch (const SimError &e) {
        EXPECT_EQ(e.kind(), ErrorKind::UserInput);
        EXPECT_NE(std::string(e.what()).find("unknown config option"),
                  std::string::npos);
    }
}

TEST(ConfigOptionsErrors, RejectsBadValue)
{
    GpuConfig cfg;
    EXPECT_THROW(applyConfigOption(cfg, "warps", "many"), SimError);
    EXPECT_THROW(applyConfigOption(cfg, "grouping", "CG-blob"),
                 SimError);
}

TEST(ConfigOptions, EnumRoundTrip)
{
    for (QuadGrouping g : kAllQuadGroupings)
        EXPECT_EQ(quadGroupingFromString(toString(g)), g);
    for (TileOrder o : kAllTileOrders)
        EXPECT_EQ(tileOrderFromString(toString(o)), o);
    for (SubtileAssignment a : kAllSubtileAssignments)
        EXPECT_EQ(subtileAssignmentFromString(toString(a)), a);
}

} // namespace
} // namespace dtexl

/**
 * @file
 * Tests for common/log.hh: vformat edge cases, quiet-mode suppression
 * of warn()/inform() (fatal/panic are NEVER suppressed — they throw),
 * the ScopedLogJobLabel prefix with nesting, and the no-interleave
 * guarantee for concurrent emitters sharing logStreamMutex().
 */

#include <gtest/gtest.h>

#include <cstdarg>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/log.hh"
#include "common/sim_error.hh"

namespace dtexl {
namespace {

std::string
format(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    std::string s = vformat(fmt, ap);
    va_end(ap);
    return s;
}

class LogTest : public ::testing::Test
{
  protected:
    void
    TearDown() override
    {
        setLogQuiet(false);
    }
};

TEST_F(LogTest, VformatBasics)
{
    EXPECT_EQ(format(""), "");
    EXPECT_EQ(format("plain"), "plain");
    EXPECT_EQ(format("%d + %d = %d", 2, 2, 4), "2 + 2 = 4");
    EXPECT_EQ(format("%s/%s", "a", "b"), "a/b");
    EXPECT_EQ(format("100%%"), "100%");
    EXPECT_EQ(format("%5.2f", 3.14159), " 3.14");
}

TEST_F(LogTest, VformatLongStringsDoNotTruncate)
{
    // Way past any plausible stack buffer: the two-pass vsnprintf
    // sizing must return the full string.
    const std::string big(64 * 1024, 'x');
    const std::string out = format("<%s>", big.c_str());
    EXPECT_EQ(out.size(), big.size() + 2);
    EXPECT_EQ(out.front(), '<');
    EXPECT_EQ(out.back(), '>');
    EXPECT_EQ(out.substr(1, big.size()), big);
}

TEST_F(LogTest, VformatEmbeddedResultCharacters)
{
    EXPECT_EQ(format("a%cb", '\n'), "a\nb");
    EXPECT_EQ(format("tab\tend"), "tab\tend");
}

TEST_F(LogTest, QuietSuppressesWarnAndInform)
{
    setLogQuiet(true);
    ::testing::internal::CaptureStderr();
    warn("you should not see this");
    inform("nor this");
    EXPECT_EQ(::testing::internal::GetCapturedStderr(), "");

    setLogQuiet(false);
    ::testing::internal::CaptureStderr();
    warn("now visible %d", 1);
    inform("also visible");
    const std::string err = ::testing::internal::GetCapturedStderr();
    EXPECT_NE(err.find("warn: now visible 1\n"), std::string::npos);
    EXPECT_NE(err.find("info: also visible\n"), std::string::npos);
}

TEST_F(LogTest, FatalAndPanicThrowEvenWhenQuiet)
{
    setLogQuiet(true);
    try {
        fatal("bad flag %s", "--x");
        FAIL() << "fatal returned";
    } catch (const SimError &e) {
        EXPECT_EQ(e.kind(), ErrorKind::UserInput);
        EXPECT_STREQ(e.what(), "bad flag --x");
    }
    try {
        panic("impossible state %d", 7);
        FAIL() << "panic returned";
    } catch (const SimError &e) {
        EXPECT_EQ(e.kind(), ErrorKind::Internal);
        EXPECT_STREQ(e.what(), "impossible state 7");
    }
}

TEST_F(LogTest, AssertCarriesConditionAndLocation)
{
    try {
        dtexl_assert(1 == 2, "count was %d", 5);
        FAIL() << "assert passed";
    } catch (const SimError &e) {
        EXPECT_EQ(e.kind(), ErrorKind::Internal);
        const std::string what = e.what();
        EXPECT_NE(what.find("1 == 2"), std::string::npos);
        EXPECT_NE(what.find("count was 5"), std::string::npos);
        EXPECT_NE(e.context().find("test_log.cc"), std::string::npos);
    }
}

TEST_F(LogTest, JobLabelPrefixesAndNests)
{
    ::testing::internal::CaptureStderr();
    warn("before");
    {
        ScopedLogJobLabel outer("GTr");
        warn("outer");
        {
            ScopedLogJobLabel inner("GTr/frame2");
            inform("inner");
        }
        warn("outer again");
    }
    warn("after");
    const std::string err = ::testing::internal::GetCapturedStderr();
    EXPECT_NE(err.find("warn: before\n"), std::string::npos);
    EXPECT_NE(err.find("warn: [GTr] outer\n"), std::string::npos);
    EXPECT_NE(err.find("info: [GTr/frame2] inner\n"),
              std::string::npos);
    EXPECT_NE(err.find("warn: [GTr] outer again\n"), std::string::npos);
    EXPECT_NE(err.find("warn: after\n"), std::string::npos);
}

TEST_F(LogTest, LabelIsPerThread)
{
    ScopedLogJobLabel label("main-thread");
    std::string other;
    std::thread t([&] {
        ::testing::internal::CaptureStderr();
        warn("from worker");
        other = ::testing::internal::GetCapturedStderr();
    });
    t.join();
    // The worker thread never installed a label; main's must not leak.
    EXPECT_EQ(other, "warn: from worker\n");
}

TEST_F(LogTest, ConcurrentWarnsNeverInterleave)
{
    constexpr int kThreads = 8;
    constexpr int kLines = 50;
    ::testing::internal::CaptureStderr();
    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; ++t) {
        workers.emplace_back([t] {
            ScopedLogJobLabel label("job" + std::to_string(t));
            for (int i = 0; i < kLines; ++i)
                warn("thread %d line %d payload "
                     "----------------------------------------", t, i);
        });
    }
    for (std::thread &w : workers)
        w.join();
    const std::string err = ::testing::internal::GetCapturedStderr();

    // Every captured line must be one complete, well-formed message:
    // any mid-line interleaving would break the prefix or the payload.
    std::istringstream in(err);
    std::string line;
    int count = 0;
    while (std::getline(in, line)) {
        ++count;
        EXPECT_EQ(line.rfind("warn: [job", 0), 0u) << line;
        EXPECT_NE(line.find("] thread "), std::string::npos) << line;
        EXPECT_NE(line.find("payload "
                            "----------------------------------------"),
                  std::string::npos)
            << line;
    }
    EXPECT_EQ(count, kThreads * kLines);
}

} // namespace
} // namespace dtexl

/**
 * @file
 * Bit-exactness harness for the simulator hot-path overhaul: every
 * optimization selected by GpuConfig::simFastPath (cache MSHR early
 * exits and last-hit filter, contiguous RateWindow storage, the
 * shader-core event loop's cached candidates, pooled flush counting)
 * must produce FrameStats, StatRegistry contents and figure-style CSV
 * output identical to the original reference implementations, across
 * workloads, machine configurations and multi-frame sessions.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/dtexl.hh"
#include "harness.hh"
#include "mem/rate_window.hh"
#include "workloads/scenegen.hh"

namespace dtexl {
namespace {

GpuConfig
smallCfg()
{
    GpuConfig cfg;
    cfg.screenWidth = 256;
    cfg.screenHeight = 128;
    return cfg;
}

/** Every FrameStats field, including the distributions. */
void
expectSameStats(const FrameStats &a, const FrameStats &b,
                const std::string &what)
{
    SCOPED_TRACE(what);
    EXPECT_EQ(a.geometryCycles, b.geometryCycles);
    EXPECT_EQ(a.rasterCycles, b.rasterCycles);
    EXPECT_EQ(a.totalCycles, b.totalCycles);
    EXPECT_DOUBLE_EQ(a.fps, b.fps);
    EXPECT_EQ(a.verticesProcessed, b.verticesProcessed);
    EXPECT_EQ(a.primitivesBinned, b.primitivesBinned);
    EXPECT_EQ(a.quadsRasterized, b.quadsRasterized);
    EXPECT_EQ(a.quadsCulledEarlyZ, b.quadsCulledEarlyZ);
    EXPECT_EQ(a.quadsCulledHiZ, b.quadsCulledHiZ);
    EXPECT_EQ(a.quadsShaded, b.quadsShaded);
    EXPECT_EQ(a.fragmentsShaded, b.fragmentsShaded);
    EXPECT_EQ(a.shaderInstructions, b.shaderInstructions);
    EXPECT_EQ(a.textureSamples, b.textureSamples);
    EXPECT_EQ(a.earlyZTests, b.earlyZTests);
    EXPECT_EQ(a.blendOps, b.blendOps);
    EXPECT_EQ(a.flushLineWrites, b.flushLineWrites);
    EXPECT_EQ(a.flushesEliminated, b.flushesEliminated);
    EXPECT_EQ(a.l1TexAccesses, b.l1TexAccesses);
    EXPECT_EQ(a.l1TexMisses, b.l1TexMisses);
    EXPECT_EQ(a.l1VertexAccesses, b.l1VertexAccesses);
    EXPECT_EQ(a.l1TileAccesses, b.l1TileAccesses);
    EXPECT_EQ(a.l2Accesses, b.l2Accesses);
    EXPECT_EQ(a.l2Misses, b.l2Misses);
    EXPECT_EQ(a.dramAccesses, b.dramAccesses);
    EXPECT_EQ(a.quadsPerSc, b.quadsPerSc);
    EXPECT_EQ(a.barrierIdleCycles, b.barrierIdleCycles);
    EXPECT_EQ(a.tileTimeDeviation.samples(),
              b.tileTimeDeviation.samples());
    EXPECT_EQ(a.tileQuadDeviation.samples(),
              b.tileQuadDeviation.samples());
    EXPECT_DOUBLE_EQ(a.textureReplication, b.textureReplication);
    EXPECT_EQ(a.imageHash, b.imageHash);
}

/**
 * Render 3 animated frames of @p alias under @p cfg with the fast
 * path and with the reference path; every frame must be bit-exact.
 */
void
fastMatchesReference(GpuConfig cfg, const std::string &alias)
{
    cfg.simFastPath = true;
    GpuConfig ref_cfg = cfg;
    ref_cfg.simFastPath = false;

    const BenchmarkParams &p = benchmarkByAlias(alias);
    const Scene f0 = generateScene(p, cfg, 0);
    const Scene f1 = generateScene(p, cfg, 1);
    const Scene f2 = generateScene(p, cfg, 2);

    GpuSimulator fast(cfg, f0);
    GpuSimulator ref(ref_cfg, f0);

    const Scene *frames[] = {&f0, &f1, &f2};
    for (int f = 0; f < 3; ++f) {
        fast.setScene(*frames[f]);
        ref.setScene(*frames[f]);
        const FrameStats a = fast.renderFrame();
        const FrameStats b = ref.renderFrame();
        expectSameStats(a, b, alias + " frame " + std::to_string(f));
    }
}

TEST(FastPathEquiv, Baseline)
{
    fastMatchesReference(smallCfg(), "SWa");
}

TEST(FastPathEquiv, DTexL)
{
    GpuConfig cfg = makeDTexLConfig();
    cfg.screenWidth = 256;
    cfg.screenHeight = 128;
    fastMatchesReference(cfg, "GTr");
}

TEST(FastPathEquiv, UpperBoundSinglePipe)
{
    GpuConfig cfg = makeUpperBoundConfig();
    cfg.screenWidth = 256;
    cfg.screenHeight = 128;
    fastMatchesReference(cfg, "SoD");
}

TEST(FastPathEquiv, Extensions)
{
    // HiZ, transaction elimination and texture prefetch exercise the
    // prefetch MSHR path and the flush-CRC early return.
    GpuConfig cfg = smallCfg();
    cfg.hierarchicalZ = true;
    cfg.transactionElimination = true;
    cfg.texturePrefetch = true;
    cfg.decoupledBarriers = true;
    fastMatchesReference(cfg, "CCS");
}

TEST(FastPathEquiv, GreedyScheduler)
{
    // Greedy keeps issuing the last-issued warp: the cached-candidate
    // loop must preserve lastIssued identically.
    GpuConfig cfg = smallCfg();
    cfg.warpScheduler = WarpSched::Greedy;
    fastMatchesReference(cfg, "Mze");
}

TEST(FastPathEquiv, OldestFirstScheduler)
{
    GpuConfig cfg = smallCfg();
    cfg.warpScheduler = WarpSched::OldestFirst;
    fastMatchesReference(cfg, "CRa");
}

TEST(FastPathEquiv, MshrPressure)
{
    // Tiny MSHR pools force the acquireMshr() stall loop and the
    // purge path to run constantly in both implementations.
    GpuConfig cfg = smallCfg();
    cfg.textureCache.numMshrs = 2;
    cfg.l2Cache.numMshrs = 4;
    cfg.tileCache.numMshrs = 2;
    fastMatchesReference(cfg, "GTr");
}

TEST(FastPathEquiv, StatRegistryBitExact)
{
    // The per-phase registry trees must match key-for-key, except the
    // host wall-clock counter which is inherently non-deterministic.
    const GpuConfig cfg = smallCfg();
    GpuConfig ref_cfg = cfg;
    ref_cfg.simFastPath = false;
    const Scene scene =
        generateScene(benchmarkByAlias("SoD"), cfg, 0);

    StatRegistry fast_reg("fast"), ref_reg("ref");
    GpuSimulator fast(cfg, scene);
    GpuSimulator ref(ref_cfg, scene);
    fast.setStatRegistry(&fast_reg, "engine");
    ref.setStatRegistry(&ref_reg, "engine");
    (void)fast.renderFrame();
    (void)ref.renderFrame();

    ASSERT_EQ(fast_reg.paths(), ref_reg.paths());
    for (const std::string &path : fast_reg.paths()) {
        const auto &a = fast_reg.node(path).counters();
        const auto &b = ref_reg.node(path).counters();
        ASSERT_EQ(a.size(), b.size()) << path;
        for (const auto &[key, value] : a) {
            if (key == "wall_us")
                continue;
            EXPECT_EQ(value, b.at(key)) << path << "." << key;
        }
    }
}

/**
 * The figure binaries' CSV rows are what the paper's plots are made
 * from: render a small benchmark x config grid under both knobs,
 * format the same rows the figure binaries would, and require the two
 * CSV files to be byte-identical.
 */
TEST(FastPathEquiv, FigureCsvBitIdentical)
{
    const char *aliases[] = {"SWa", "GTr"};
    const std::string paths[2] = {"fastpath_fast.csv",
                                  "fastpath_ref.csv"};
    for (int knob = 0; knob < 2; ++knob) {
        const bool fast = knob == 0;
        GpuConfig base = smallCfg();
        base.simFastPath = fast;
        GpuConfig dt = makeDTexLConfig();
        dt.screenWidth = base.screenWidth;
        dt.screenHeight = base.screenHeight;
        dt.simFastPath = fast;

        std::vector<bench::GridJob> jobs;
        for (const char *a : aliases) {
            jobs.push_back({benchmarkByAlias(a), base,
                            std::string(a) + "/base"});
            jobs.push_back({benchmarkByAlias(a), dt,
                            std::string(a) + "/dtexl"});
        }
        bench::BenchOptions opt;
        opt.jobs = 2;
        const std::vector<bench::RunOutput> results =
            bench::runGrid(jobs, opt);

        std::remove(paths[knob].c_str());
        bench::setCsvOutput(paths[knob]);
        bench::printHeader("fastpath-equiv",
                           {"cycles", "l2", "dram", "energy_mj"});
        for (std::size_t i = 0; i < jobs.size(); ++i) {
            bench::printRow(
                jobs[i].label,
                {static_cast<double>(results[i].fs.totalCycles),
                 static_cast<double>(results[i].fs.l2Accesses),
                 static_cast<double>(results[i].fs.dramAccesses),
                 results[i].energy.total() * 1e3});
        }
        bench::setCsvOutput("");
    }

    auto slurp = [](const std::string &p) {
        std::ifstream in(p, std::ios::binary);
        std::ostringstream os;
        os << in.rdbuf();
        return os.str();
    };
    const std::string fast_csv = slurp(paths[0]);
    const std::string ref_csv = slurp(paths[1]);
    ASSERT_FALSE(fast_csv.empty());
    EXPECT_EQ(fast_csv, ref_csv);
    std::remove(paths[0].c_str());
    std::remove(paths[1].c_str());
}

/**
 * Unit-level fuzz: both RateWindow implementations must grant the
 * same start cycle and stall flag for arbitrary out-of-order request
 * sequences, across several (capacity, window) shapes.
 */
TEST(FastPathEquiv, RateWindowFuzz)
{
    const struct
    {
        std::uint32_t cap;
        Cycle win;
    } shapes[] = {{1, 1}, {2, 8}, {16, 8}, {32, 64}, {8, 256}};

    std::uint64_t rng = 0x9e3779b97f4a7c15ull;
    auto next = [&rng]() {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        return rng;
    };

    for (const auto &shape : shapes) {
        RateWindow fast(shape.cap, shape.win, true);
        RateWindow ref(shape.cap, shape.win, false);
        Cycle base = 0;
        for (int i = 0; i < 20000; ++i) {
            // Mostly forward drift with out-of-order jitter, plus
            // occasional large jumps to exercise horizon pruning.
            base += next() % 3;
            if (next() % 512 == 0)
                base += shape.win * 200;
            const Cycle jitter = next() % (2 * shape.win + 1);
            const Cycle now =
                base > jitter ? base - jitter : Cycle{0};
            bool fast_stalled = false, ref_stalled = false;
            const Cycle a = fast.reserve(now, fast_stalled);
            const Cycle b = ref.reserve(now, ref_stalled);
            ASSERT_EQ(a, b) << "cap=" << shape.cap
                            << " win=" << shape.win << " i=" << i;
            ASSERT_EQ(fast_stalled, ref_stalled) << "i=" << i;
        }
        fast.clear();
        ref.clear();
        bool s1 = false, s2 = false;
        EXPECT_EQ(fast.reserve(5, s1), ref.reserve(5, s2));
    }
}

} // namespace
} // namespace dtexl

/**
 * @file
 * Structured error model tests: the SimError taxonomy and exit-code
 * mapping, GpuConfig::validate() coverage (every rejected knob names
 * itself and its legal range), crash-report files, the failure-flush
 * hook registry, and the guarded-main wrapper every CLI exits through.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <functional>
#include <sstream>

#include "common/config.hh"
#include "common/log.hh"
#include "common/sim_error.hh"

namespace dtexl {
namespace {

/** Expect validate() on @p mutate(cfg) to throw Config naming @p knob. */
void
expectConfigReject(const std::function<void(GpuConfig &)> &mutate,
                   const std::string &knob)
{
    GpuConfig cfg;
    mutate(cfg);
    try {
        cfg.validate();
        FAIL() << "expected Config SimError naming " << knob;
    } catch (const SimError &e) {
        EXPECT_EQ(e.kind(), ErrorKind::Config);
        EXPECT_NE(std::string(e.what()).find(knob), std::string::npos)
            << knob << " not named in: " << e.what();
    }
}

TEST(SimErrors, ExitCodeMapping)
{
    EXPECT_EQ(exitCodeFor(ErrorKind::UserInput), kExitUserError);
    EXPECT_EQ(exitCodeFor(ErrorKind::Config), kExitUserError);
    EXPECT_EQ(exitCodeFor(ErrorKind::Io), kExitUserError);
    EXPECT_EQ(exitCodeFor(ErrorKind::Watchdog), kExitWatchdog);
    EXPECT_EQ(exitCodeFor(ErrorKind::Internal), kExitInternal);
}

TEST(SimErrors, DescribeFormat)
{
    const SimError plain(ErrorKind::Internal, "broken invariant");
    EXPECT_EQ(plain.describe(), "internal: broken invariant");

    const SimError located(ErrorKind::UserInput, "bad token",
                           "scene.dscene:12:7");
    EXPECT_EQ(located.describe(),
              "user-input: bad token (scene.dscene:12:7)");
}

TEST(SimErrors, PanicAndFatalThrowInsteadOfAborting)
{
    try {
        fatal("user gave %d bad inputs", 3);
        FAIL() << "expected SimError";
    } catch (const SimError &e) {
        EXPECT_EQ(e.kind(), ErrorKind::UserInput);
        EXPECT_STREQ(e.what(), "user gave 3 bad inputs");
    }
    try {
        panic("invariant %s violated", "x");
        FAIL() << "expected SimError";
    } catch (const SimError &e) {
        EXPECT_EQ(e.kind(), ErrorKind::Internal);
    }
    // dtexl_assert carries the failed condition and file:line context.
    try {
        dtexl_assert(1 == 2, "math %s", "stopped working");
        FAIL() << "expected SimError";
    } catch (const SimError &e) {
        EXPECT_EQ(e.kind(), ErrorKind::Internal);
        EXPECT_NE(std::string(e.what()).find("1 == 2"),
                  std::string::npos);
        EXPECT_NE(e.context().find(":"), std::string::npos);
    }
}

TEST(ConfigValidate, AcceptsDefaultsAndPresets)
{
    EXPECT_NO_THROW(GpuConfig{}.validate());
    EXPECT_NO_THROW(makeBaselineConfig().validate());
    EXPECT_NO_THROW(makeDTexLConfig().validate());
    EXPECT_NO_THROW(makeUpperBoundConfig().validate());
}

TEST(ConfigValidate, RejectsEveryBrokenKnobByName)
{
    expectConfigReject([](GpuConfig &c) { c.clockHz = 0; }, "clock");
    expectConfigReject([](GpuConfig &c) { c.screenWidth = 0; },
                       "screen");
    expectConfigReject([](GpuConfig &c) { c.tileSize = 3; },
                       "tile size");
    expectConfigReject([](GpuConfig &c) { c.tileSize = 0; },
                       "tile size");
    expectConfigReject([](GpuConfig &c) { c.numPipelines = 3; },
                       "numPipelines");
    expectConfigReject([](GpuConfig &c) { c.maxWarpsPerCore = 0; },
                       "warps");
    expectConfigReject([](GpuConfig &c) { c.stageFifoDepth = 0; },
                       "fifo");
    expectConfigReject([](GpuConfig &c) { c.rasterQuadsPerCycle = 0; },
                       "rasterQuadsPerCycle");
    expectConfigReject(
        [](GpuConfig &c) { c.textureCache.lineBytes = 48; },
        "line size");
    expectConfigReject(
        [](GpuConfig &c) { c.textureCache.sizeBytes += 13; },
        "not divisible");
    expectConfigReject([](GpuConfig &c) { c.textureCache.numMshrs = 0; },
                       "numMshrs");
    expectConfigReject([](GpuConfig &c) { c.dram.bytesPerCycle = 0; },
                       "dram");
    expectConfigReject(
        [](GpuConfig &c) {
            c.dram.rowMissLatency = c.dram.rowHitLatency - 1;
        },
        "rowMissLatency");
    expectConfigReject([](GpuConfig &c) { c.telemetryLevel = 9; },
                       "telemetry");
    expectConfigReject([](GpuConfig &c) { c.geomThreads = 1000; },
                       "geom_threads");
}

TEST(ConfigValidate, WatchdogKnobParsesAndValidates)
{
    GpuConfig cfg;
    applyConfigOption(cfg, "watchdog_cycles", "12345");
    EXPECT_EQ(cfg.watchdogCycles, 12345u);
    applyConfigOption(cfg, "watchdog_cycles", "0");  // 0 disables
    EXPECT_EQ(cfg.watchdogCycles, 0u);
    EXPECT_NO_THROW(cfg.validate());
    EXPECT_THROW(applyConfigOption(cfg, "watchdog_cycles", "soon"),
                 SimError);
}

TEST(SimErrors, CrashReportFileCarriesDump)
{
    setCrashReportDir(::testing::TempDir());
    const SimError err(ErrorKind::Watchdog, "no forward progress",
                       "tile 7", "unit occupancy:\n  sc0: wedged\n");
    const std::string path = writeCrashReport("my/job label", err);
    ASSERT_FALSE(path.empty());
    // The label is sanitized into a filename (no '/' past the
    // "<dir>/" prefix the report path starts with).
    EXPECT_EQ(path.find('/', ::testing::TempDir().size() + 1),
              std::string::npos);

    std::ifstream is(path);
    std::stringstream ss;
    ss << is.rdbuf();
    const std::string report = ss.str();
    EXPECT_NE(report.find("watchdog"), std::string::npos);
    EXPECT_NE(report.find("no forward progress"), std::string::npos);
    EXPECT_NE(report.find("tile 7"), std::string::npos);
    EXPECT_NE(report.find("sc0: wedged"), std::string::npos);

    std::remove(path.c_str());
    setCrashReportDir(".");
}

TEST(SimErrors, FailureFlushHooksRunAndNeverThrow)
{
    static int runs = 0;
    registerFailureFlush([] { ++runs; });
    registerFailureFlush([] { throw std::runtime_error("hook bug"); });
    const int before = runs;
    // Both hooks execute; the throwing one is swallowed (noexcept).
    flushFailureArtifacts();
    flushFailureArtifacts();
    EXPECT_EQ(runs, before + 2);
}

TEST(SimErrors, RunGuardedMainMapsExitCodes)
{
    EXPECT_EQ(runGuardedMain([] { return 0; }), 0);
    EXPECT_EQ(runGuardedMain([]() -> int {
                  throw SimError(ErrorKind::UserInput, "bad flag");
              }),
              kExitUserError);
    EXPECT_EQ(runGuardedMain([]() -> int {
                  throw SimError(ErrorKind::Watchdog, "hung", "",
                                 "dump");
              }),
              kExitWatchdog);
    EXPECT_EQ(runGuardedMain(
                  []() -> int { throw std::bad_alloc(); }),
              kExitInternal);
    // Crash report from the watchdog path above lands in the crash
    // dir under the "main" label; clean it up.
    std::remove((crashReportDir() + "/crash-main.txt").c_str());
}

} // namespace
} // namespace dtexl

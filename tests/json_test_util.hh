/**
 * @file
 * Minimal JSON reader shared by the observability tests (test_trace,
 * test_telemetry). A genuine recursive-descent parser (objects,
 * arrays, strings, numbers, literals) rather than a regex: a
 * malformed file — trailing comma, unbalanced bracket, bad escape —
 * must fail the test that feeds it.
 */

#ifndef DTEXL_TESTS_JSON_TEST_UTIL_HH
#define DTEXL_TESTS_JSON_TEST_UTIL_HH

#include <cctype>
#include <cstddef>
#include <map>
#include <string>
#include <vector>

namespace dtexl {
namespace testjson {

struct JsonValue
{
    enum class Kind { Null, Bool, Number, String, Array, Object };
    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string str;
    std::vector<JsonValue> items;
    std::map<std::string, JsonValue> members;
};

class JsonParser
{
  public:
    explicit JsonParser(const std::string &text) : s(text) {}

    /** Parse the whole document; false on any syntax error. */
    bool
    parse(JsonValue &out)
    {
        skipWs();
        if (!value(out))
            return false;
        skipWs();
        return pos == s.size();
    }

  private:
    const std::string &s;
    std::size_t pos = 0;

    void
    skipWs()
    {
        while (pos < s.size() &&
               std::isspace(static_cast<unsigned char>(s[pos])))
            ++pos;
    }

    bool
    literal(const char *word)
    {
        const std::size_t n = std::string(word).size();
        if (s.compare(pos, n, word) != 0)
            return false;
        pos += n;
        return true;
    }

    bool
    value(JsonValue &out)
    {
        if (pos >= s.size())
            return false;
        switch (s[pos]) {
          case '{':
            return object(out);
          case '[':
            return array(out);
          case '"':
            out.kind = JsonValue::Kind::String;
            return string(out.str);
          case 't':
            out.kind = JsonValue::Kind::Bool;
            out.boolean = true;
            return literal("true");
          case 'f':
            out.kind = JsonValue::Kind::Bool;
            out.boolean = false;
            return literal("false");
          case 'n':
            out.kind = JsonValue::Kind::Null;
            return literal("null");
          default:
            return number(out);
        }
    }

    bool
    string(std::string &out)
    {
        if (s[pos] != '"')
            return false;
        ++pos;
        while (pos < s.size() && s[pos] != '"') {
            if (s[pos] == '\\') {
                if (pos + 1 >= s.size())
                    return false;
                const char esc = s[pos + 1];
                switch (esc) {
                  case '"':
                    out += '"';
                    break;
                  case '\\':
                    out += '\\';
                    break;
                  case '/':
                    out += '/';
                    break;
                  case 'n':
                    out += '\n';
                    break;
                  case 't':
                    out += '\t';
                    break;
                  case 'b':
                  case 'f':
                  case 'r':
                    out += ' ';
                    break;
                  case 'u': {
                    if (pos + 5 >= s.size())
                        return false;
                    for (int i = 0; i < 4; ++i) {
                        if (!std::isxdigit(static_cast<unsigned char>(
                                s[pos + 2 + i])))
                            return false;
                    }
                    out += '?';  // code point value not needed here
                    pos += 4;
                    break;
                  }
                  default:
                    return false;
                }
                pos += 2;
            } else {
                out += s[pos++];
            }
        }
        if (pos >= s.size())
            return false;
        ++pos;  // closing quote
        return true;
    }

    bool
    number(JsonValue &out)
    {
        const std::size_t start = pos;
        if (pos < s.size() && s[pos] == '-')
            ++pos;
        while (pos < s.size() &&
               (std::isdigit(static_cast<unsigned char>(s[pos])) ||
                s[pos] == '.' || s[pos] == 'e' || s[pos] == 'E' ||
                s[pos] == '+' || s[pos] == '-'))
            ++pos;
        if (pos == start)
            return false;
        out.kind = JsonValue::Kind::Number;
        out.number = std::stod(s.substr(start, pos - start));
        return true;
    }

    bool
    array(JsonValue &out)
    {
        out.kind = JsonValue::Kind::Array;
        ++pos;  // '['
        skipWs();
        if (pos < s.size() && s[pos] == ']') {
            ++pos;
            return true;
        }
        for (;;) {
            JsonValue item;
            skipWs();
            if (!value(item))
                return false;
            out.items.push_back(std::move(item));
            skipWs();
            if (pos >= s.size())
                return false;
            if (s[pos] == ',') {
                ++pos;
                continue;
            }
            if (s[pos] == ']') {
                ++pos;
                return true;
            }
            return false;
        }
    }

    bool
    object(JsonValue &out)
    {
        out.kind = JsonValue::Kind::Object;
        ++pos;  // '{'
        skipWs();
        if (pos < s.size() && s[pos] == '}') {
            ++pos;
            return true;
        }
        for (;;) {
            skipWs();
            std::string key;
            if (pos >= s.size() || !string(key))
                return false;
            skipWs();
            if (pos >= s.size() || s[pos] != ':')
                return false;
            ++pos;
            skipWs();
            JsonValue val;
            if (!value(val))
                return false;
            out.members[key] = std::move(val);
            skipWs();
            if (pos >= s.size())
                return false;
            if (s[pos] == ',') {
                ++pos;
                continue;
            }
            if (s[pos] == '}') {
                ++pos;
                return true;
            }
            return false;
        }
    }
};

} // namespace testjson
} // namespace dtexl

#endif // DTEXL_TESTS_JSON_TEST_UTIL_HH

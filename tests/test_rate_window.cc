/**
 * @file
 * Tests for the out-of-order-tolerant bandwidth primitives: the
 * sliding-window rate limiter and the single-server interval resource
 * (the key to correct contention modelling in a sequentially-simulated
 * pipeline — see rate_window.hh).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.hh"
#include "mem/rate_window.hh"

namespace dtexl {
namespace {

TEST(RateWindow, AdmitsUpToCapacityAtOnce)
{
    RateWindow rw(4, 8);
    bool stalled = false;
    for (int i = 0; i < 4; ++i) {
        EXPECT_EQ(rw.reserve(100, stalled), 100u);
        EXPECT_FALSE(stalled);
    }
    // 5th in the same window is pushed a window out.
    EXPECT_EQ(rw.reserve(100, stalled), 108u);
    EXPECT_TRUE(stalled);
}

TEST(RateWindow, SteadyStreamAtRate)
{
    // Capacity 2 per 4 cycles: a request every 2 cycles never stalls.
    RateWindow rw(2, 4);
    bool stalled = false;
    for (Cycle t = 0; t < 100; t += 2) {
        EXPECT_EQ(rw.reserve(t, stalled), t);
        EXPECT_FALSE(stalled) << t;
    }
}

TEST(RateWindow, EarlierRequestNotBlockedByLaterOnes)
{
    // The artifact this class exists to avoid: requests already
    // registered at a later time must not delay a logically-earlier
    // request in a disjoint window.
    RateWindow rw(2, 8);
    bool stalled = false;
    for (int i = 0; i < 2; ++i)
        rw.reserve(1000, stalled);
    // The window at cycle 100 is empty: grant immediately.
    EXPECT_EQ(rw.reserve(100, stalled), 100u);
    EXPECT_FALSE(stalled);
}

TEST(RateWindow, EarlierRequestStillSeesItsOwnWindow)
{
    RateWindow rw(1, 8);
    bool stalled = false;
    rw.reserve(100, stalled);
    // A later out-of-order request inside (100, 108) must queue.
    EXPECT_EQ(rw.reserve(104, stalled), 108u);
    EXPECT_TRUE(stalled);
}

TEST(RateWindow, SequentialOverloadQueues)
{
    RateWindow rw(1, 10);
    bool stalled = false;
    EXPECT_EQ(rw.reserve(0, stalled), 0u);
    EXPECT_EQ(rw.reserve(0, stalled), 10u);
    EXPECT_EQ(rw.reserve(0, stalled), 20u);
}

TEST(RateWindow, ClearResets)
{
    RateWindow rw(1, 10);
    bool stalled = false;
    rw.reserve(0, stalled);
    rw.clear();
    EXPECT_EQ(rw.reserve(0, stalled), 0u);
    EXPECT_FALSE(stalled);
}

class RateWindowRandomTest
    : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(RateWindowRandomTest, InvariantHoldsUnderRandomTraffic)
{
    // Property: whatever the (possibly out-of-order) request stream,
    // the granted start times never put more than `cap` starts in any
    // window of W cycles, and every grant is >= its request.
    Rng rng(GetParam());
    const std::uint32_t cap = 3 + GetParam() % 5;
    const Cycle win = 6 + GetParam() % 9;
    RateWindow rw(cap, win);

    std::vector<Cycle> grants;
    Cycle base = 0;
    for (int i = 0; i < 400; ++i) {
        // Drifting base with out-of-order jitter.
        base += rng.nextBounded(3);
        const Cycle req = base + rng.nextBounded(20);
        bool stalled = false;
        const Cycle got = rw.reserve(req, stalled);
        EXPECT_GE(got, req);
        grants.push_back(got);
    }
    std::sort(grants.begin(), grants.end());
    for (std::size_t i = 0; i + cap < grants.size(); ++i) {
        // The (i+cap)-th grant must start a full window after the
        // i-th if they would otherwise overcrowd the window.
        EXPECT_GE(grants[i + cap], grants[i] + win)
            << "window overcrowded at grant " << i;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RateWindowRandomTest,
                         ::testing::Values(1u, 7u, 13u, 29u));

TEST(IntervalResource, NonOverlappingReservations)
{
    IntervalResource res;
    EXPECT_EQ(res.reserve(0, 10), 0u);
    EXPECT_EQ(res.reserve(20, 10), 20u);
    // A request inside an existing reservation queues behind it.
    EXPECT_EQ(res.reserve(5, 10), 10u);
}

TEST(IntervalResource, FillsGaps)
{
    IntervalResource res;
    res.reserve(0, 10);    // [0,10)
    res.reserve(30, 10);   // [30,40)
    // A 5-cycle request at 12 fits the [10,30) gap.
    EXPECT_EQ(res.reserve(12, 5), 12u);
    // A 25-cycle request at 10 does not fit before [30,40): it lands
    // after.
    EXPECT_EQ(res.reserve(10, 25), 40u);
}

TEST(IntervalResource, EarlierRequestUsesEarlierSlot)
{
    IntervalResource res;
    res.reserve(100, 50);  // [100,150)
    // A logically-earlier request fits entirely before it.
    EXPECT_EQ(res.reserve(10, 20), 10u);
}

TEST(IntervalResource, BackToBackChains)
{
    IntervalResource res;
    Cycle t = 0;
    for (int i = 0; i < 5; ++i)
        t = res.reserve(0, 7);
    EXPECT_EQ(t, 28u);  // fifth of five 7-cycle slots from 0
}

TEST(IntervalResource, ClearResets)
{
    IntervalResource res;
    res.reserve(0, 100);
    res.clear();
    EXPECT_EQ(res.reserve(0, 10), 0u);
}

} // namespace
} // namespace dtexl

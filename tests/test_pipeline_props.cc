/**
 * @file
 * Cross-cutting pipeline properties: work invariance across scheduling
 * policies, odd screen sizes (the paper's own 1960x768 has partial
 * tiles), alternative tile sizes, degenerate scenes, and FIFO
 * back-pressure behaviour.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "core/gpu.hh"
#include "mem/address_map.hh"
#include "workloads/scenegen.hh"

namespace dtexl {
namespace {

GpuConfig
smallCfg()
{
    GpuConfig cfg;
    cfg.screenWidth = 256;
    cfg.screenHeight = 128;
    return cfg;
}

TEST(PipelineProps, WorkInvariantAcrossPolicies)
{
    // Rasterized/culled/shaded quad counts are a function of the
    // scene, not of the scheduler: every grouping, order, assignment
    // and barrier mode must report identical work.
    GpuConfig base = smallCfg();
    const Scene scene = generateScene(benchmarkByAlias("DDS"), base);
    GpuSimulator ref(base, scene);
    const FrameStats r = ref.renderFrame();

    auto check = [&](GpuConfig cfg, const char *what) {
        GpuSimulator gpu(cfg, scene);
        const FrameStats fs = gpu.renderFrame();
        EXPECT_EQ(fs.quadsRasterized, r.quadsRasterized) << what;
        EXPECT_EQ(fs.quadsCulledEarlyZ, r.quadsCulledEarlyZ) << what;
        EXPECT_EQ(fs.quadsShaded, r.quadsShaded) << what;
        EXPECT_EQ(fs.fragmentsShaded, r.fragmentsShaded) << what;
        EXPECT_EQ(fs.imageHash, r.imageHash) << what;
    };

    for (QuadGrouping g :
         {QuadGrouping::CGSquare, QuadGrouping::CGTriangle,
          QuadGrouping::FGChecker}) {
        GpuConfig cfg = base;
        cfg.grouping = g;
        check(cfg, toString(g).c_str());
    }
    for (TileOrder o : kAllTileOrders) {
        GpuConfig cfg = base;
        cfg.tileOrder = o;
        check(cfg, toString(o).c_str());
    }
    {
        GpuConfig cfg = base;
        cfg.decoupledBarriers = true;
        cfg.assignment = SubtileAssignment::Flip3;
        check(cfg, "decoupled flip3");
    }
}

using ScreenParam = std::tuple<std::uint32_t, std::uint32_t>;

class OddScreenTest : public ::testing::TestWithParam<ScreenParam>
{};

TEST_P(OddScreenTest, PartialEdgeTilesRenderCorrectly)
{
    // Screens that are not tile multiples (like the paper's 1960x768
    // width: 61.25 tiles) must render identically on the baseline and
    // DTexL machines.
    const auto [w, h] = GetParam();
    GpuConfig cfg;
    cfg.screenWidth = w;
    cfg.screenHeight = h;
    const Scene scene = generateScene(benchmarkByAlias("SWa"), cfg);

    GpuConfig dt = cfg;
    dt.grouping = QuadGrouping::CGSquare;
    dt.tileOrder = TileOrder::RectHilbert;
    dt.assignment = SubtileAssignment::Flip2;
    dt.decoupledBarriers = true;

    GpuSimulator a(cfg, scene), b(dt, scene);
    const FrameStats fa = a.renderFrame();
    const FrameStats fb = b.renderFrame();
    EXPECT_EQ(fa.imageHash, fb.imageHash);
    EXPECT_GT(fa.quadsShaded, 0u);
}

INSTANTIATE_TEST_SUITE_P(Screens, OddScreenTest,
                         ::testing::Values(ScreenParam{100, 40},
                                           ScreenParam{130, 70},
                                           ScreenParam{96, 96},
                                           ScreenParam{245, 96}));

class TileSizeTest : public ::testing::TestWithParam<std::uint32_t>
{};

TEST_P(TileSizeTest, AlternativeTileSizesWork)
{
    GpuConfig cfg = smallCfg();
    cfg.tileSize = GetParam();
    cfg.validate();
    const Scene scene = generateScene(benchmarkByAlias("SWa"), cfg);

    GpuConfig ref_cfg = smallCfg();  // 32x32 tiles
    GpuSimulator ref(ref_cfg, scene);
    GpuSimulator gpu(cfg, scene);
    // The image must not depend on the tile size.
    EXPECT_EQ(gpu.renderFrame().imageHash,
              ref.renderFrame().imageHash);
}

INSTANTIATE_TEST_SUITE_P(Sizes, TileSizeTest,
                         ::testing::Values(8u, 16u, 64u));

TEST(PipelineProps, HierarchicalZPreservesImageAndCulls)
{
    GpuConfig cfg = smallCfg();
    const Scene scene = generateScene(benchmarkByAlias("TRu"), cfg);
    GpuConfig hiz = cfg;
    hiz.hierarchicalZ = true;

    GpuSimulator a(cfg, scene), b(hiz, scene);
    const FrameStats fa = a.renderFrame();
    const FrameStats fb = b.renderFrame();
    EXPECT_EQ(fa.imageHash, fb.imageHash);
    EXPECT_EQ(fa.quadsCulledHiZ, 0u);
    // TRu is heavily overdrawn: HiZ must catch some quads early, and
    // every one it catches is one Early-Z would have culled anyway.
    EXPECT_GT(fb.quadsCulledHiZ, 0u);
    EXPECT_EQ(fb.quadsCulledHiZ + fb.quadsCulledEarlyZ +
                  fb.quadsShaded,
              fb.quadsRasterized);
    EXPECT_EQ(fb.quadsShaded, fa.quadsShaded);
    // Culling earlier can only help performance.
    EXPECT_LE(fb.rasterCycles, fa.rasterCycles + fa.rasterCycles / 100);
}

TEST(PipelineProps, HierarchicalZDisabledUnderLateZ)
{
    GpuConfig cfg = smallCfg();
    cfg.hierarchicalZ = true;
    Scene scene = generateScene(benchmarkByAlias("TRu"), cfg);
    for (DrawCommand &d : scene.draws)
        d.shader.modifiesDepth = true;
    GpuSimulator gpu(cfg, scene);
    const FrameStats fs = gpu.renderFrame();
    EXPECT_EQ(fs.quadsCulledHiZ, 0u);
    EXPECT_EQ(fs.quadsCulledEarlyZ, 0u);
}

TEST(PipelineProps, TransactionEliminationSkipsStaticFlushes)
{
    GpuConfig cfg = smallCfg();
    cfg.transactionElimination = true;
    const Scene scene = generateScene(benchmarkByAlias("SWa"), cfg);
    GpuSimulator gpu(cfg, scene);

    const FrameStats f1 = gpu.renderFrame();
    EXPECT_EQ(f1.flushesEliminated, 0u);  // nothing to compare yet

    // The identical frame again: every bank flush is eliminated.
    const FrameStats f2 = gpu.renderFrame();
    EXPECT_EQ(f2.flushesEliminated,
              static_cast<std::uint64_t>(cfg.numTiles()) * 4);
    EXPECT_LT(f2.flushLineWrites, f1.flushLineWrites / 10 + 1);
    EXPECT_EQ(f2.imageHash, f1.imageHash);

    // An animated frame re-flushes what changed.
    const Scene moved = generateScene(benchmarkByAlias("SWa"), cfg, 1);
    gpu.setScene(moved);
    const FrameStats f3 = gpu.renderFrame();
    EXPECT_LT(f3.flushesEliminated,
              static_cast<std::uint64_t>(cfg.numTiles()) * 4);

    // And the image still matches a TE-less render.
    GpuConfig plain = cfg;
    plain.transactionElimination = false;
    GpuSimulator ref(plain, moved);
    EXPECT_EQ(ref.renderFrame().imageHash, f3.imageHash);
}

TEST(PipelineProps, EmptySceneRendersClear)
{
    GpuConfig cfg = smallCfg();
    Scene scene;
    scene.textures.emplace_back(0, addr_map::kTextureBase, 64);
    GpuSimulator gpu(cfg, scene);
    const FrameStats fs = gpu.renderFrame();
    EXPECT_EQ(fs.quadsRasterized, 0u);
    EXPECT_EQ(fs.quadsShaded, 0u);
    for (std::uint32_t y = 0; y < cfg.screenHeight; y += 17)
        for (std::uint32_t x = 0; x < cfg.screenWidth; x += 13)
            ASSERT_EQ(gpu.framebuffer().pixel(x, y), kClearColor);
}

TEST(PipelineProps, SinglePixelPrimitive)
{
    GpuConfig cfg = smallCfg();
    Scene scene;
    scene.textures.emplace_back(0, addr_map::kTextureBase, 64);
    DrawCommand d;
    d.texture = 0;
    d.shader.aluOps = 4;
    d.shader.texSamples = 1;
    d.vertexBufferAddr = addr_map::kVertexBase;
    // A triangle covering exactly the centre of pixel (10, 10).
    auto v = [&](float px, float py) {
        Vertex out;
        out.pos.x = px / 128.0f - 1.0f;
        out.pos.y = py / 64.0f - 1.0f;
        out.pos.z = 0.0f;
        out.uv = {0.5f, 0.5f};
        return out;
    };
    d.vertices = {v(10.0f, 10.0f), v(11.5f, 10.0f), v(10.0f, 11.5f)};
    d.indices = {0, 1, 2};
    scene.draws.push_back(d);

    GpuSimulator gpu(cfg, scene);
    const FrameStats fs = gpu.renderFrame();
    EXPECT_EQ(fs.quadsShaded, 1u);
    EXPECT_EQ(fs.fragmentsShaded, 1u);
    EXPECT_NE(gpu.framebuffer().pixel(10, 10), kClearColor);
    EXPECT_EQ(gpu.framebuffer().pixel(11, 10), kClearColor);
}

TEST(PipelineProps, TinyFifoStillCorrectJustSlower)
{
    GpuConfig cfg = smallCfg();
    const Scene scene = generateScene(benchmarkByAlias("TRu"), cfg);

    GpuConfig tiny = cfg;
    tiny.stageFifoDepth = 2;
    GpuSimulator a(cfg, scene), b(tiny, scene);
    const FrameStats fa = a.renderFrame();
    const FrameStats fb = b.renderFrame();
    EXPECT_EQ(fa.imageHash, fb.imageHash);
    // Back-pressure can only slow things down.
    EXPECT_GE(fb.rasterCycles, fa.rasterCycles);
}

TEST(PipelineProps, FrameStatsFullyDeterministic)
{
    GpuConfig cfg = smallCfg();
    cfg.decoupledBarriers = true;
    cfg.grouping = QuadGrouping::CGSquare;
    const Scene scene = generateScene(benchmarkByAlias("Mze"), cfg);
    GpuSimulator a(cfg, scene), b(cfg, scene);
    const FrameStats fa = a.renderFrame();
    const FrameStats fb = b.renderFrame();
    EXPECT_EQ(fa.totalCycles, fb.totalCycles);
    EXPECT_EQ(fa.geometryCycles, fb.geometryCycles);
    EXPECT_EQ(fa.l2Accesses, fb.l2Accesses);
    EXPECT_EQ(fa.dramAccesses, fb.dramAccesses);
    EXPECT_EQ(fa.l1TexAccesses, fb.l1TexAccesses);
    EXPECT_EQ(fa.shaderInstructions, fb.shaderInstructions);
    EXPECT_EQ(fa.quadsPerSc, fb.quadsPerSc);
    EXPECT_EQ(fa.imageHash, fb.imageHash);
}

TEST(PipelineProps, UpperBoundSlowerButFewerL2)
{
    // The Figure 16 upper-bound machine is only used for its L2
    // count; sanity-check both directions.
    GpuConfig cfg = smallCfg();
    const Scene scene = generateScene(benchmarkByAlias("SoD"), cfg);
    GpuConfig ub = makeUpperBoundConfig();
    ub.screenWidth = cfg.screenWidth;
    ub.screenHeight = cfg.screenHeight;
    GpuSimulator four(cfg, scene), one(ub, scene);
    const FrameStats f4 = four.renderFrame();
    const FrameStats f1 = one.renderFrame();
    EXPECT_LT(f1.l2Accesses, f4.l2Accesses);
    EXPECT_GT(f1.rasterCycles, f4.rasterCycles);  // 1 SC vs 4
}

} // namespace
} // namespace dtexl

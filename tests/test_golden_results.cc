/**
 * @file
 * Golden-result pins for the paper's figures: one small benchmark per
 * figure family, headline metrics compared with exact integers. These
 * values were produced by this simulator and freeze its current
 * behaviour: any change — scheduler tweak, cache fix, hot-path
 * optimization — that moves a simulated statistic must be noticed and
 * either justified (regenerate the constants in the same commit) or
 * fixed. Wall-clock metrics are deliberately excluded.
 *
 * All scenarios render frame 0 of a Table I benchmark at 256x128 (the
 * small screen keeps each render ~100 ms; the figure binaries use the
 * full screen).
 */

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <cstdint>

#include "core/dtexl.hh"
#include "power/energy_model.hh"
#include "workloads/scenegen.hh"

namespace dtexl {
namespace {

GpuConfig
small(GpuConfig cfg)
{
    cfg.screenWidth = 256;
    cfg.screenHeight = 128;
    return cfg;
}

FrameStats
render(const GpuConfig &cfg, const char *alias)
{
    const Scene scene = generateScene(benchmarkByAlias(alias), cfg, 0);
    GpuSimulator sim(cfg, scene);
    return sim.renderFrame();
}

/** Picojoule rounding: turns the energy doubles into pinnable ints. */
long long
pj(double joules)
{
    return llround(joules * 1e12);
}

TEST(GoldenResults, MotivationBaselineTextureTraffic)
{
    // Figures 1/2: the baseline's cross-SC texture replication is the
    // motivating observation — the same lines are fetched into several
    // L1s, inflating L2 traffic.
    const FrameStats fs = render(small(makeBaselineConfig()), "GTr");
    EXPECT_EQ(fs.l1TexAccesses, 174560u);
    EXPECT_EQ(fs.l1TexMisses, 10420u);
    EXPECT_EQ(fs.l2Accesses, 11949u);
    EXPECT_EQ(fs.l2Misses, 3596u);
    EXPECT_EQ(fs.dramAccesses, 3706u);
    EXPECT_EQ(fs.flushLineWrites, 8192u);
    // Nearly 4 SCs' worth of duplicated texture lines.
    EXPECT_DOUBLE_EQ(fs.textureReplication, 3.8208955223880596);
}

TEST(GoldenResults, QuadGroupingBalance)
{
    // Figures 11/12: fine-grained grouping balances quads across SCs
    // almost perfectly; the coarse-grained DTexL grouping trades a
    // little balance for locality.
    const FrameStats fg = render(small(makeBaselineConfig()), "GTr");
    const FrameStats cg = render(small(makeDTexLConfig()), "GTr");
    EXPECT_EQ(fg.quadsPerSc,
              (std::array<std::uint64_t, 4>{3935, 3898, 3941, 3888}));
    EXPECT_EQ(cg.quadsPerSc,
              (std::array<std::uint64_t, 4>{3721, 3941, 3856, 4144}));
    EXPECT_EQ(fg.tileQuadDeviation.samples().size(), 32u);
    EXPECT_EQ(cg.tileQuadDeviation.samples().size(), 32u);
    // Same total work either way.
    EXPECT_EQ(fg.quadsShaded, 15662u);
    EXPECT_EQ(cg.quadsShaded, 15662u);
}

TEST(GoldenResults, NonDecoupledSpeedup)
{
    // Figure 13: DTexL's locality scheduling WITHOUT decoupled
    // barriers already beats the baseline, but barrier imbalance eats
    // most of the win.
    GpuConfig nondec = small(makeDTexLConfig());
    nondec.decoupledBarriers = false;
    const FrameStats base = render(small(makeBaselineConfig()), "GTr");
    const FrameStats nd = render(nondec, "GTr");
    const FrameStats full = render(small(makeDTexLConfig()), "GTr");
    EXPECT_EQ(base.totalCycles, 50086u);
    EXPECT_EQ(nd.totalCycles, 47606u);
    EXPECT_EQ(full.totalCycles, 38907u);
    EXPECT_LT(nd.totalCycles, base.totalCycles);
    EXPECT_LT(full.totalCycles, nd.totalCycles);
}

TEST(GoldenResults, BarrierImbalance)
{
    // Figures 14/15: per-pipeline idle cycles at the tile barrier.
    // Decoupling collapses the idle time by an order of magnitude vs
    // the coupled coarse-grained machine.
    GpuConfig nondec = small(makeDTexLConfig());
    nondec.decoupledBarriers = false;
    const FrameStats nd = render(nondec, "GTr");
    const FrameStats full = render(small(makeDTexLConfig()), "GTr");
    EXPECT_EQ(nd.barrierIdleCycles,
              (std::array<std::uint64_t, 4>{7484, 6008, 7347, 3879}));
    EXPECT_EQ(full.barrierIdleCycles,
              (std::array<std::uint64_t, 4>{229, 231, 261, 263}));
    EXPECT_EQ(nd.tileTimeDeviation.samples().size(), 32u);
}

TEST(GoldenResults, SubtileMappingLocality)
{
    // Figure 16: the Flip2 subtile assignment (DTexL default) keeps
    // seam-sharing subtiles on the same SC across consecutive tiles,
    // beating the Constant mapping on both L2 traffic and cycles.
    GpuConfig constant = small(makeDTexLConfig());
    constant.assignment = SubtileAssignment::Constant;
    const FrameStats cst = render(constant, "GTr");
    const FrameStats flp = render(small(makeDTexLConfig()), "GTr");
    EXPECT_EQ(cst.totalCycles, 39161u);
    EXPECT_EQ(cst.l2Accesses, 5750u);
    EXPECT_EQ(flp.totalCycles, 38907u);
    EXPECT_EQ(flp.l2Accesses, 5038u);
    EXPECT_LT(flp.l2Accesses, cst.l2Accesses);
}

TEST(GoldenResults, SpeedupHeadline)
{
    // Figure 17: full DTexL vs baseline on the texture-bound best case
    // (GTr) and a lighter benchmark (SWa). The ratio is pinned through
    // the exact cycle counts.
    const FrameStats base_gtr =
        render(small(makeBaselineConfig()), "GTr");
    const FrameStats dtexl_gtr =
        render(small(makeDTexLConfig()), "GTr");
    const FrameStats base_swa =
        render(small(makeBaselineConfig()), "SWa");
    const FrameStats dtexl_swa =
        render(small(makeDTexLConfig()), "SWa");

    EXPECT_EQ(base_gtr.totalCycles, 50086u);
    EXPECT_EQ(dtexl_gtr.totalCycles, 38907u);
    EXPECT_EQ(base_swa.totalCycles, 54710u);
    EXPECT_EQ(dtexl_swa.totalCycles, 48876u);

    const double speedup_gtr =
        static_cast<double>(base_gtr.totalCycles) /
        static_cast<double>(dtexl_gtr.totalCycles);
    EXPECT_GT(speedup_gtr, 1.25);

    // Scheduling must not change the rendered image.
    EXPECT_EQ(base_gtr.imageHash, dtexl_gtr.imageHash);
    EXPECT_EQ(base_swa.imageHash, dtexl_swa.imageHash);
}

TEST(GoldenResults, ReferencePathMatchesEveryPin)
{
    // The same headline pins with the simulator hot paths disabled
    // (simFastPath=false propagates into every cache/DRAM fastPath at
    // construction). This freezes the REFERENCE implementations
    // directly: the fast-path equivalence suite proves fast==reference,
    // and this proves reference==golden, so neither side can drift and
    // drag the other along — exactly the contract the result cache's
    // build fingerprint relies on.
    GpuConfig base = small(makeBaselineConfig());
    base.simFastPath = false;
    GpuConfig dtexl = small(makeDTexLConfig());
    dtexl.simFastPath = false;

    const FrameStats base_gtr = render(base, "GTr");
    const FrameStats dtexl_gtr = render(dtexl, "GTr");
    const FrameStats base_swa = render(base, "SWa");
    const FrameStats dtexl_swa = render(dtexl, "SWa");

    EXPECT_EQ(base_gtr.totalCycles, 50086u);
    EXPECT_EQ(dtexl_gtr.totalCycles, 38907u);
    EXPECT_EQ(base_swa.totalCycles, 54710u);
    EXPECT_EQ(dtexl_swa.totalCycles, 48876u);

    EXPECT_EQ(base_gtr.l1TexAccesses, 174560u);
    EXPECT_EQ(base_gtr.l1TexMisses, 10420u);
    EXPECT_EQ(base_gtr.l2Accesses, 11949u);
    EXPECT_EQ(base_gtr.dramAccesses, 3706u);
    EXPECT_DOUBLE_EQ(base_gtr.textureReplication, 3.8208955223880596);
    EXPECT_EQ(dtexl_gtr.l2Accesses, 5038u);
    EXPECT_EQ(dtexl_gtr.quadsShaded, 15662u);

    // The image is independent of both the scheduling policy and the
    // simulator implementation path.
    EXPECT_EQ(base_gtr.imageHash, dtexl_gtr.imageHash);
    EXPECT_EQ(base_swa.imageHash, dtexl_swa.imageHash);
}

TEST(GoldenResults, EnergySplit)
{
    // Figure 18: the frame-energy breakdown of the DTexL machine,
    // pinned as integer picojoules per component. DRAM dominates, and
    // the L2-traffic reduction is what moves the total vs baseline.
    const FrameStats fs = render(small(makeDTexLConfig()), "GTr");
    const EnergyBreakdown e =
        EnergyModel{}.compute(small(makeDTexLConfig()), fs);
    EXPECT_EQ(pj(e.shaderDynamic), 2241424);
    EXPECT_EQ(pj(e.l1), 2128068);
    EXPECT_EQ(pj(e.l2), 327470);
    EXPECT_EQ(pj(e.dram), 11859200);
    EXPECT_EQ(pj(e.fixedFunction), 492080);
    EXPECT_EQ(pj(e.staticEnergy), 3242250);
    EXPECT_EQ(pj(e.total()), 20290492);
}

} // namespace
} // namespace dtexl

/**
 * @file
 * Tests for the synthetic workload suite: Table I coverage,
 * determinism, texture footprints near the published values, and the
 * structural scene properties the scheduler experiments rely on.
 */

#include <gtest/gtest.h>

#include <set>

#include "workloads/scenegen.hh"

namespace dtexl {
namespace {

GpuConfig
cfg()
{
    GpuConfig c;
    c.screenWidth = 512;
    c.screenHeight = 256;
    return c;
}

TEST(Benchmarks, TableOneRoster)
{
    const auto &t = tableOneBenchmarks();
    ASSERT_EQ(t.size(), 10u);
    const char *aliases[] = {"CCS", "SoD", "TRu", "SWa", "CRa",
                             "RoK", "DDS", "Snp", "Mze", "GTr"};
    for (std::size_t i = 0; i < 10; ++i)
        EXPECT_EQ(t[i].alias, aliases[i]);
    // Table I footprints.
    EXPECT_DOUBLE_EQ(benchmarkByAlias("CCS").textureFootprintMiB, 2.4);
    EXPECT_DOUBLE_EQ(benchmarkByAlias("SWa").textureFootprintMiB, 0.2);
    EXPECT_DOUBLE_EQ(benchmarkByAlias("RoK").textureFootprintMiB, 6.8);
    EXPECT_DOUBLE_EQ(benchmarkByAlias("GTr").textureFootprintMiB, 0.7);
    // Types.
    EXPECT_FALSE(benchmarkByAlias("CCS").is3D);
    EXPECT_FALSE(benchmarkByAlias("RoK").is3D);
    EXPECT_TRUE(benchmarkByAlias("TRu").is3D);
}

TEST(Benchmarks, SeedsDistinct)
{
    std::set<std::uint64_t> seeds;
    for (const auto &b : tableOneBenchmarks())
        EXPECT_TRUE(seeds.insert(b.seed).second) << b.alias;
}

class PerBenchmarkTest : public ::testing::TestWithParam<const char *>
{};

TEST_P(PerBenchmarkTest, SceneDeterministic)
{
    const BenchmarkParams &p = benchmarkByAlias(GetParam());
    const Scene a = generateScene(p, cfg());
    const Scene b = generateScene(p, cfg());
    ASSERT_EQ(a.draws.size(), b.draws.size());
    ASSERT_EQ(a.textures.size(), b.textures.size());
    for (std::size_t i = 0; i < a.draws.size(); ++i) {
        EXPECT_EQ(a.draws[i].vertices.size(),
                  b.draws[i].vertices.size());
        for (std::size_t v = 0; v < a.draws[i].vertices.size(); ++v) {
            EXPECT_EQ(a.draws[i].vertices[v].pos,
                      b.draws[i].vertices[v].pos);
            EXPECT_EQ(a.draws[i].vertices[v].uv,
                      b.draws[i].vertices[v].uv);
        }
    }
}

TEST_P(PerBenchmarkTest, FootprintNearTableOne)
{
    const BenchmarkParams &p = benchmarkByAlias(GetParam());
    const Scene s = generateScene(p, cfg());
    const double mib =
        static_cast<double>(s.textureFootprintBytes()) / (1024 * 1024);
    // Power-of-two texture sides quantize the footprint; the paper's
    // figure must be matched within a factor of ~2 either way.
    EXPECT_GT(mib, p.textureFootprintMiB * 0.4) << p.alias;
    EXPECT_LT(mib, p.textureFootprintMiB * 2.1) << p.alias;
}

TEST_P(PerBenchmarkTest, SceneStructureValid)
{
    const BenchmarkParams &p = benchmarkByAlias(GetParam());
    const GpuConfig c = cfg();
    const Scene s = generateScene(p, c);
    EXPECT_GT(s.draws.size(), 10u);
    std::set<Addr> vbufs;
    for (const DrawCommand &d : s.draws) {
        EXPECT_LT(d.texture, s.textures.size());
        EXPECT_EQ(d.indices.size() % 3, 0u);
        for (std::uint32_t idx : d.indices)
            EXPECT_LT(idx, d.vertices.size());
        EXPECT_TRUE(vbufs.insert(d.vertexBufferAddr).second)
            << "vertex buffers must not alias";
        EXPECT_GT(d.shader.aluOps + d.shader.texSamples, 0u);
    }
}

TEST_P(PerBenchmarkTest, OverdrawNearTarget)
{
    // Total on-screen primitive area relative to the screen should
    // land near the configured overdraw factor.
    const BenchmarkParams &p = benchmarkByAlias(GetParam());
    const GpuConfig c = cfg();
    const Scene s = generateScene(p, c);
    double covered = 0.0;
    const double w = c.screenWidth, h = c.screenHeight;
    for (const DrawCommand &d : s.draws) {
        for (std::size_t i = 0; i + 2 < d.indices.size(); i += 3) {
            const auto &v0 = d.vertices[d.indices[i]].pos;
            const auto &v1 = d.vertices[d.indices[i + 1]].pos;
            const auto &v2 = d.vertices[d.indices[i + 2]].pos;
            auto sx = [&](float x) {
                return std::min(std::max((x * 0.5 + 0.5) * w, 0.0), w);
            };
            auto sy = [&](float y) {
                return std::min(std::max((y * 0.5 + 0.5) * h, 0.0), h);
            };
            const double x0 = sx(v0.x), y0 = sy(v0.y);
            const double x1 = sx(v1.x), y1 = sy(v1.y);
            const double x2 = sx(v2.x), y2 = sy(v2.y);
            covered += std::abs((x1 - x0) * (y2 - y0) -
                                (x2 - x0) * (y1 - y0)) / 2.0;
        }
    }
    const double overdraw = covered / (w * h);
    EXPECT_GT(overdraw, p.overdrawFactor * 0.7) << p.alias;
    EXPECT_LT(overdraw, p.overdrawFactor * 1.5) << p.alias;
}

INSTANTIATE_TEST_SUITE_P(
    TableOne, PerBenchmarkTest,
    ::testing::Values("CCS", "SoD", "TRu", "SWa", "CRa", "RoK", "DDS",
                      "Snp", "Mze", "GTr"));

TEST(SceneGen, AnimationFramesShareTextureLayout)
{
    const BenchmarkParams &p = benchmarkByAlias("SoD");
    const GpuConfig c = cfg();
    const Scene f0 = generateScene(p, c, 0);
    const Scene f3 = generateScene(p, c, 3);
    ASSERT_EQ(f0.textures.size(), f3.textures.size());
    for (std::size_t i = 0; i < f0.textures.size(); ++i) {
        EXPECT_EQ(f0.textures[i].baseAddr(), f3.textures[i].baseAddr());
        EXPECT_EQ(f0.textures[i].side(), f3.textures[i].side());
    }
}

TEST(SceneGen, AnimationFramesDiffer)
{
    const BenchmarkParams &p = benchmarkByAlias("SoD");
    const GpuConfig c = cfg();
    const Scene f0 = generateScene(p, c, 0);
    const Scene f1 = generateScene(p, c, 1);
    // The background uvs scroll between frames.
    ASSERT_FALSE(f0.draws.empty());
    EXPECT_NE(f0.draws[0].vertices[0].uv, f1.draws[0].vertices[0].uv);
    // Same structure though.
    EXPECT_EQ(f0.draws.size(), f1.draws.size());
}

TEST(SceneGen, TinySceneUsable)
{
    const GpuConfig c = cfg();
    const Scene s = makeTinyScene(c);
    EXPECT_EQ(s.textures.size(), 1u);
    EXPECT_EQ(s.draws.size(), 2u);
    EXPECT_TRUE(s.draws[1].shader.blends);
}

TEST(SceneGen, TwoDScenesPaintBackToFront)
{
    const BenchmarkParams &p = benchmarkByAlias("CCS");
    const GpuConfig c = cfg();
    const Scene s = generateScene(p, c);
    // Skip the background cells; object draws must have monotonically
    // non-increasing depth (later draw = nearer).
    float prev = 2.0f;
    bool in_objects = false;
    int checked = 0;
    for (const DrawCommand &d : s.draws) {
        const float z = d.vertices[0].pos.z;
        if (!in_objects) {
            if (z < 0.9f)
                in_objects = true;  // first object draw
            else
                continue;
        }
        EXPECT_LE(z, prev + 1e-6f);
        prev = z;
        ++checked;
    }
    EXPECT_GT(checked, 10);
}

} // namespace
} // namespace dtexl

/**
 * @file
 * The content-addressed result cache's correctness battery
 * (src/cache/): ResultKey canonicalization (option order, scene text
 * formatting and default-vs-explicit spellings hash equal; every
 * result-affecting knob hashes different; host-execution knobs are
 * excluded), entry round-trip bit-exactness on every preset, corrupt /
 * truncated / stale entries rejected as misses (never served, never a
 * crash), and the engine-level guarantee: a second identical batch is
 * served from the cache with byte-identical FrameStats, image hashes
 * and registry counters.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "cache/checkpoint.hh"
#include "cache/result_key.hh"
#include "cache/result_store.hh"
#include "common/fault_inject.hh"
#include "common/log.hh"
#include "common/serial.hh"
#include "core/dtexl.hh"
#include "workloads/scene_io.hh"
#include "workloads/scenegen.hh"

namespace dtexl {
namespace {

GpuConfig
small(GpuConfig cfg)
{
    cfg.screenWidth = 256;
    cfg.screenHeight = 128;
    return cfg;
}

std::string
tempDir(const std::string &name)
{
    // Pid-suffixed so a previous test invocation's store can never
    // satisfy this run's cold lookups.
    const std::string dir = ::testing::TempDir() + "dtexl_" + name +
                            "." + std::to_string(::getpid());
    ensureDirectory(dir);
    return dir;
}

/** Every FrameStats field, including the image hash. */
void
expectSameStats(const FrameStats &a, const FrameStats &b,
                const std::string &what)
{
    SCOPED_TRACE(what);
    EXPECT_EQ(a.geometryCycles, b.geometryCycles);
    EXPECT_EQ(a.rasterCycles, b.rasterCycles);
    EXPECT_EQ(a.totalCycles, b.totalCycles);
    EXPECT_DOUBLE_EQ(a.fps, b.fps);
    EXPECT_EQ(a.verticesProcessed, b.verticesProcessed);
    EXPECT_EQ(a.primitivesBinned, b.primitivesBinned);
    EXPECT_EQ(a.quadsRasterized, b.quadsRasterized);
    EXPECT_EQ(a.quadsCulledEarlyZ, b.quadsCulledEarlyZ);
    EXPECT_EQ(a.quadsCulledHiZ, b.quadsCulledHiZ);
    EXPECT_EQ(a.quadsShaded, b.quadsShaded);
    EXPECT_EQ(a.fragmentsShaded, b.fragmentsShaded);
    EXPECT_EQ(a.shaderInstructions, b.shaderInstructions);
    EXPECT_EQ(a.textureSamples, b.textureSamples);
    EXPECT_EQ(a.earlyZTests, b.earlyZTests);
    EXPECT_EQ(a.blendOps, b.blendOps);
    EXPECT_EQ(a.flushLineWrites, b.flushLineWrites);
    EXPECT_EQ(a.flushesEliminated, b.flushesEliminated);
    EXPECT_EQ(a.l1TexAccesses, b.l1TexAccesses);
    EXPECT_EQ(a.l1TexMisses, b.l1TexMisses);
    EXPECT_EQ(a.l1VertexAccesses, b.l1VertexAccesses);
    EXPECT_EQ(a.l1TileAccesses, b.l1TileAccesses);
    EXPECT_EQ(a.l2Accesses, b.l2Accesses);
    EXPECT_EQ(a.l2Misses, b.l2Misses);
    EXPECT_EQ(a.dramAccesses, b.dramAccesses);
    EXPECT_EQ(a.quadsPerSc, b.quadsPerSc);
    EXPECT_EQ(a.tileTimeDeviation.samples(), b.tileTimeDeviation.samples());
    EXPECT_EQ(a.tileQuadDeviation.samples(), b.tileQuadDeviation.samples());
    EXPECT_EQ(a.barrierIdleCycles, b.barrierIdleCycles);
    EXPECT_DOUBLE_EQ(a.textureReplication, b.textureReplication);
    EXPECT_EQ(a.imageHash, b.imageHash);
}

/** Full registry equality, minus the host wall-clock counters. */
void
expectSameRegistry(const StatRegistry &a, const StatRegistry &b)
{
    ASSERT_EQ(a.paths(), b.paths());
    for (const std::string &path : a.paths()) {
        const auto &ca = a.find(path)->counters();
        const auto &cb = b.find(path)->counters();
        ASSERT_EQ(ca.size(), cb.size()) << path;
        for (const auto &[key, value] : ca) {
            if (key == "wall_us")
                continue;
            EXPECT_EQ(value, cb.at(key)) << path << "." << key;
        }
    }
}

// ---- Serialization primitives ------------------------------------

TEST(Serial, WriterReaderRoundTrip)
{
    ByteWriter w;
    w.u8(0xab);
    w.u32(0xdeadbeefu);
    w.u64(0x0123456789abcdefull);
    w.f32(3.14f);
    w.f64(-2.718281828459045);
    w.str("hello");
    w.str("");

    ByteReader r(w.data());
    EXPECT_EQ(r.u8(), 0xab);
    EXPECT_EQ(r.u32(), 0xdeadbeefu);
    EXPECT_EQ(r.u64(), 0x0123456789abcdefull);
    EXPECT_EQ(r.f32(), 3.14f);
    EXPECT_EQ(r.f64(), -2.718281828459045);
    EXPECT_EQ(r.str(), "hello");
    EXPECT_EQ(r.str(), "");
    EXPECT_TRUE(r.done());
}

TEST(Serial, TruncationThrowsIoError)
{
    ByteWriter w;
    w.u32(7);
    ByteReader r(w.data());
    (void)r.u32();
    try {
        (void)r.u8();
        FAIL() << "read past the end must throw";
    } catch (const SimError &e) {
        EXPECT_EQ(e.kind(), ErrorKind::Io);
    }
}

TEST(Serial, FnvStringFramingPreventsConcatenationAliases)
{
    Fnv1a64 a, b;
    a.str("ab");
    a.str("c");
    b.str("a");
    b.str("bc");
    EXPECT_NE(a.value(), b.value());
}

// ---- Key canonicalization ----------------------------------------

TEST(ResultKeyTest, DefaultAndExplicitSpellingsHashEqual)
{
    const GpuConfig implicit_cfg = makeBaselineConfig();
    GpuConfig explicit_cfg = makeBaselineConfig();
    // Re-state defaults explicitly, as a verbose command line would.
    applyConfigOption(explicit_cfg, "tile",
                      std::to_string(implicit_cfg.tileSize));
    applyConfigOption(explicit_cfg, "warps",
                      std::to_string(implicit_cfg.maxWarpsPerCore));
    applyConfigOption(explicit_cfg, "telemetry", "0");
    EXPECT_EQ(hashConfig(implicit_cfg), hashConfig(explicit_cfg));
}

TEST(ResultKeyTest, OptionOrderDoesNotChangeTheKey)
{
    GpuConfig ab = small(makeDTexLConfig());
    applyConfigOption(ab, "hiz", "1");
    applyConfigOption(ab, "fifo", "32");
    GpuConfig ba = small(makeDTexLConfig());
    applyConfigOption(ba, "fifo", "32");
    applyConfigOption(ba, "hiz", "1");
    EXPECT_EQ(hashConfig(ab), hashConfig(ba));
}

TEST(ResultKeyTest, SceneTextFormattingDoesNotChangeTheKey)
{
    const GpuConfig cfg = small(makeBaselineConfig());
    const Scene scene = generateScene(benchmarkByAlias("Mze"), cfg, 0);

    std::ostringstream os;
    saveScene(os, scene);
    const std::string canonical = os.str();

    // Same content, hostile formatting: a comment header, every line
    // indented, and a blank line after each.
    std::string noisy = "# injected comment\n\n";
    std::istringstream lines(canonical);
    std::string line;
    while (std::getline(lines, line))
        noisy += "  " + line + "\n\n# another comment\n";

    std::istringstream is1(canonical), is2(noisy);
    const Scene s1 = loadScene(is1, "canonical");
    const Scene s2 = loadScene(is2, "noisy");
    EXPECT_EQ(hashScene(s1), hashScene(s2));
    // And the digest is computed over parsed content, so a loaded
    // scene keys identically to the in-memory original.
    EXPECT_EQ(hashScene(scene), hashScene(s1));
}

TEST(ResultKeyTest, SceneContentChangesTheKey)
{
    const GpuConfig cfg = small(makeBaselineConfig());
    Scene a = generateScene(benchmarkByAlias("Mze"), cfg, 0);
    const std::uint64_t base = hashScene(a);
    a.draws[0].vertices[0].uv.x += 0.25f;
    EXPECT_NE(hashScene(a), base);
}

TEST(ResultKeyTest, EveryResultAffectingKnobChangesTheKey)
{
    const GpuConfig base = makeDTexLConfig();
    const std::uint64_t h0 = hashConfig(base);

    std::vector<std::pair<const char *, GpuConfig>> variants;
    auto add = [&](const char *name, auto &&mutate) {
        GpuConfig c = base;
        mutate(c);
        variants.emplace_back(name, c);
    };

    add("clockHz", [](GpuConfig &c) { c.clockHz += 1; });
    add("screenWidth", [](GpuConfig &c) { c.screenWidth += 32; });
    add("screenHeight", [](GpuConfig &c) { c.screenHeight += 32; });
    add("tileSize", [](GpuConfig &c) { c.tileSize = 16; });
    add("numPipelines", [](GpuConfig &c) { c.numPipelines = 2; });
    add("maxWarpsPerCore", [](GpuConfig &c) { c.maxWarpsPerCore += 1; });
    add("stageFifoDepth", [](GpuConfig &c) { c.stageFifoDepth += 1; });
    add("rasterQuadsPerCycle",
        [](GpuConfig &c) { c.rasterQuadsPerCycle += 1; });
    add("grouping",
        [](GpuConfig &c) { c.grouping = QuadGrouping::FGXShift2; });
    add("tileOrder",
        [](GpuConfig &c) { c.tileOrder = TileOrder::Scanline; });
    add("assignment",
        [](GpuConfig &c) { c.assignment = SubtileAssignment::Constant; });
    add("decoupledBarriers",
        [](GpuConfig &c) { c.decoupledBarriers = !c.decoupledBarriers; });
    add("hierarchicalZ",
        [](GpuConfig &c) { c.hierarchicalZ = !c.hierarchicalZ; });
    add("texturePrefetch",
        [](GpuConfig &c) { c.texturePrefetch = !c.texturePrefetch; });
    add("warpScheduler",
        [](GpuConfig &c) { c.warpScheduler = WarpSched::OldestFirst; });
    add("transactionElimination", [](GpuConfig &c) {
        c.transactionElimination = !c.transactionElimination;
    });
    add("telemetryLevel", [](GpuConfig &c) { c.telemetryLevel = 1; });
    add("telemetrySamplePeriod",
        [](GpuConfig &c) { c.telemetrySamplePeriod += 1; });

    // Each of the four cache blocks plus DRAM, one field of each.
    add("vertexCache.sizeBytes",
        [](GpuConfig &c) { c.vertexCache.sizeBytes *= 2; });
    add("vertexCache.lineBytes",
        [](GpuConfig &c) { c.vertexCache.lineBytes = 32; });
    add("vertexCache.ways", [](GpuConfig &c) { c.vertexCache.ways = 2; });
    add("vertexCache.hitLatency",
        [](GpuConfig &c) { c.vertexCache.hitLatency += 1; });
    add("vertexCache.numMshrs",
        [](GpuConfig &c) { c.vertexCache.numMshrs += 1; });
    add("vertexCache.prefetchNextLine", [](GpuConfig &c) {
        c.vertexCache.prefetchNextLine = !c.vertexCache.prefetchNextLine;
    });
    add("textureCache.sizeBytes",
        [](GpuConfig &c) { c.textureCache.sizeBytes *= 2; });
    add("tileCache.sizeBytes",
        [](GpuConfig &c) { c.tileCache.sizeBytes *= 2; });
    add("l2Cache.sizeBytes",
        [](GpuConfig &c) { c.l2Cache.sizeBytes *= 2; });
    add("dram.numBanks", [](GpuConfig &c) { c.dram.numBanks *= 2; });
    add("dram.rowBytes", [](GpuConfig &c) { c.dram.rowBytes *= 2; });
    add("dram.rowHitLatency",
        [](GpuConfig &c) { c.dram.rowHitLatency += 1; });
    add("dram.rowMissLatency",
        [](GpuConfig &c) { c.dram.rowMissLatency += 1; });
    add("dram.bytesPerCycle",
        [](GpuConfig &c) { c.dram.bytesPerCycle *= 2; });

    for (const auto &[name, cfg] : variants)
        EXPECT_NE(hashConfig(cfg), h0) << name;
}

TEST(ResultKeyTest, HostExecutionKnobsAreExcluded)
{
    // These knobs are proven bit-identical by the rest of the suite
    // (fastpath/thread-count equivalence tests), so cache entries and
    // checkpoints must be shared across them.
    const GpuConfig base = makeDTexLConfig();
    const std::uint64_t h0 = hashConfig(base);

    GpuConfig c = base;
    c.simFastPath = !c.simFastPath;
    c.vertexCache.fastPath = !c.vertexCache.fastPath;
    c.textureCache.fastPath = !c.textureCache.fastPath;
    c.tileCache.fastPath = !c.tileCache.fastPath;
    c.l2Cache.fastPath = !c.l2Cache.fastPath;
    c.dram.fastPath = !c.dram.fastPath;
    EXPECT_EQ(hashConfig(c), h0) << "fastPath selectors";

    c = base;
    c.geomThreads = 8;
    EXPECT_EQ(hashConfig(c), h0) << "geomThreads";

    c = base;
    c.rasterThreads = 4;
    EXPECT_EQ(hashConfig(c), h0) << "rasterThreads";

    c = base;
    c.simdMode = c.simdMode == SimdMode::Auto ? SimdMode::Scalar
                                              : SimdMode::Auto;
    EXPECT_EQ(hashConfig(c), h0) << "simdMode";

    c = base;
    c.watchdogCycles = 123;
    EXPECT_EQ(hashConfig(c), h0) << "watchdogCycles";
}

TEST(ResultKeyTest, ConfigSizeCanary)
{
    // If this fails, a field was added to (or removed from) GpuConfig:
    // decide whether it affects simulated results, update
    // hashConfig()/the exclusion list in result_key.hh accordingly,
    // extend EveryResultAffectingKnobChangesTheKey, and only then pin
    // the new size here.
    EXPECT_EQ(sizeof(GpuConfig), 208u)
        << "GpuConfig layout changed - update hashConfig() first";
}

TEST(ResultKeyTest, BuildFingerprintIsStableWithinAProcess)
{
    EXPECT_EQ(buildFingerprint(), buildFingerprint());
    const ResultKey k{1, 2, 3};
    EXPECT_EQ(k.hex(),
              "000000000000000100000000000000020000000000000003");
}

// ---- Entry round trip --------------------------------------------

CachedResult
renderResult(const GpuConfig &cfg, const char *alias,
             StatRegistry *reg, const std::string &label)
{
    const Scene f0 = generateScene(benchmarkByAlias(alias), cfg, 0);
    const Scene f1 = generateScene(benchmarkByAlias(alias), cfg, 1);
    SimulationSession session(cfg, f0, label);
    if (reg)
        session.setStatRegistry(reg);
    session.renderFrame();
    session.renderFrame(f1);
    CachedResult out;
    out.frames = session.history();
    out.stats = captureStatsFragment(reg, label);
    return out;
}

TEST(ResultStoreTest, RoundTripIsBitExactOnEveryPreset)
{
    setLogQuiet(true);
    const std::string dir = tempDir("store_roundtrip");
    const ResultStore store(dir);

    const std::pair<const char *, GpuConfig> presets[] = {
        {"baseline", small(makeBaselineConfig())},
        {"dtexl", small(makeDTexLConfig())},
        {"upper", small(makeUpperBoundConfig())},
    };
    std::uint64_t n = 0;
    for (const auto &[name, cfg] : presets) {
        SCOPED_TRACE(name);
        StatRegistry reg("test");
        const CachedResult want =
            renderResult(cfg, "GTr", &reg, std::string("job.") + name);

        ResultKey key;
        key.scene = 1000 + n++;
        key.config = hashConfig(cfg);
        key.build = buildFingerprint();
        store.store(key, want);

        const std::optional<CachedResult> got = store.lookup(key);
        ASSERT_TRUE(got.has_value());
        ASSERT_EQ(got->frames.size(), want.frames.size());
        for (std::size_t f = 0; f < want.frames.size(); ++f)
            expectSameStats(want.frames[f], got->frames[f],
                            "frame " + std::to_string(f));
        ASSERT_EQ(got->stats.nodes.size(), want.stats.nodes.size());
        for (std::size_t i = 0; i < want.stats.nodes.size(); ++i) {
            EXPECT_EQ(got->stats.nodes[i].path, want.stats.nodes[i].path);
            EXPECT_EQ(got->stats.nodes[i].counters,
                      want.stats.nodes[i].counters);
        }
    }
    setLogQuiet(false);
}

TEST(ResultStoreTest, AbsentAndStaleKeysMiss)
{
    const std::string dir = tempDir("store_stale");
    const ResultStore store(dir);
    CachedResult r;
    r.frames.emplace_back();
    ResultKey key{42, 43, buildFingerprint()};
    store.store(key, r);
    EXPECT_TRUE(store.lookup(key).has_value());

    // A rebuilt simulator fingerprints differently, so its keys simply
    // address different entries: stale results are unreachable.
    ResultKey stale = key;
    stale.build ^= 1;
    EXPECT_FALSE(store.lookup(stale).has_value());
    ResultKey absent{7, 8, 9};
    EXPECT_FALSE(store.lookup(absent).has_value());
}

TEST(ResultStoreTest, CorruptEntryIsAMissNotACrash)
{
    setLogQuiet(true);
    const std::string dir = tempDir("store_corrupt");
    const ResultStore store(dir);
    CachedResult r;
    r.frames.emplace_back();
    r.frames.back().totalCycles = 777;
    const ResultKey key{1, 2, 3};
    store.store(key, r);

    // Flip one payload byte on disk: the checksum must reject it.
    const std::string path = store.entryPath(key);
    std::vector<std::uint8_t> bytes;
    ASSERT_TRUE(readFileBytes(path, bytes));
    bytes[bytes.size() / 2] ^= 0x01;
    atomicWriteFile(path, bytes);
    EXPECT_FALSE(store.lookup(key).has_value());

    // Restore the original image: served again.
    bytes[bytes.size() / 2] ^= 0x01;
    atomicWriteFile(path, bytes);
    const std::optional<CachedResult> got = store.lookup(key);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->frames.at(0).totalCycles, 777u);
    setLogQuiet(false);
}

TEST(ResultStoreTest, TruncateFaultSiteForcesRecompute)
{
    setLogQuiet(true);
    const std::string dir = tempDir("store_truncate");
    const ResultStore store(dir);
    CachedResult r;
    r.frames.emplace_back();
    const ResultKey key{5, 6, 7};
    store.store(key, r);

    {
        ScopedFault fault(FaultSite::CacheTruncate);
        EXPECT_FALSE(store.lookup(key).has_value());
        EXPECT_EQ(FaultInject::global().fired(FaultSite::CacheTruncate),
                  1u);
    }
    // Disarmed: the intact on-disk entry is served again.
    EXPECT_TRUE(store.lookup(key).has_value());
    setLogQuiet(false);
}

TEST(ResultStoreTest, UnwritableStoreNeverThrows)
{
    setLogQuiet(true);
    const ResultStore store(::testing::TempDir() +
                            "dtexl_missing_dir/nested");
    CachedResult r;
    r.frames.emplace_back();
    const ResultKey key{1, 1, 1};
    EXPECT_NO_THROW(store.store(key, r));
    EXPECT_FALSE(store.lookup(key).has_value());
    setLogQuiet(false);
}

// ---- Global configuration ----------------------------------------

TEST(ResultCacheTest, ModeParsing)
{
    EXPECT_EQ(cacheModeFromString("off"), CacheMode::Off);
    EXPECT_EQ(cacheModeFromString("read"), CacheMode::Read);
    EXPECT_EQ(cacheModeFromString("readwrite"), CacheMode::ReadWrite);
    EXPECT_STREQ(toString(CacheMode::ReadWrite), "readwrite");
    try {
        (void)cacheModeFromString("sometimes");
        FAIL() << "junk mode must throw";
    } catch (const SimError &e) {
        EXPECT_EQ(e.kind(), ErrorKind::UserInput);
    }
}

TEST(ResultCacheTest, FeaturesRequireADirectory)
{
    ResultCache &rc = ResultCache::global();
    rc.resetForTests();
    EXPECT_THROW(rc.configure("", CacheMode::Read, 0, false), SimError);
    EXPECT_THROW(rc.configure("", CacheMode::Off, 4, false), SimError);
    EXPECT_THROW(rc.configure("", CacheMode::Off, 0, true), SimError);
    // Off with no directory is the default and fine.
    EXPECT_NO_THROW(rc.configure("", CacheMode::Off, 0, false));
    EXPECT_FALSE(rc.enabled());
    EXPECT_EQ(rc.store(), nullptr);
    rc.resetForTests();
}

// ---- Engine-level: second identical batch served from cache -------

std::vector<BatchJob>
makeBatch(const std::vector<std::vector<Scene>> &scenes)
{
    std::vector<BatchJob> jobs;
    const char *labels[] = {"base/GTr", "dtexl/GTr"};
    const GpuConfig cfgs[] = {small(makeBaselineConfig()),
                              small(makeDTexLConfig())};
    for (std::size_t j = 0; j < scenes.size(); ++j) {
        BatchJob bj;
        bj.label = labels[j];
        bj.cfg = cfgs[j];
        const std::vector<Scene> *s = &scenes[j];
        bj.scene = [s](std::uint32_t f) -> const Scene & {
            return (*s)[f];
        };
        bj.frames = static_cast<std::uint32_t>(s->size());
        jobs.push_back(std::move(bj));
    }
    return jobs;
}

TEST(ResultCacheTest, SecondBatchIsAllHitsAndByteIdentical)
{
    setLogQuiet(true);
    const std::string dir = tempDir("batch_cache");
    ResultCache &rc = ResultCache::global();
    rc.resetForTests();
    rc.configure(dir, CacheMode::ReadWrite, 0, false);

    const GpuConfig cfgs[] = {small(makeBaselineConfig()),
                              small(makeDTexLConfig())};
    std::vector<std::vector<Scene>> scenes;
    for (const GpuConfig &cfg : cfgs) {
        scenes.emplace_back();
        for (std::uint32_t f = 0; f < 2; ++f)
            scenes.back().push_back(
                generateScene(benchmarkByAlias("GTr"), cfg, f));
    }

    StatRegistry reg1("run1");
    const std::vector<BatchResult> cold =
        runBatch(makeBatch(scenes), 2, &reg1);
    ASSERT_EQ(cold.size(), 2u);
    for (const BatchResult &r : cold) {
        EXPECT_TRUE(r.ok);
        EXPECT_FALSE(r.cacheHit);
    }
    EXPECT_EQ(rc.misses(), 2u);
    EXPECT_EQ(rc.stores(), 2u);

    StatRegistry reg2("run2");
    const std::vector<BatchResult> warm =
        runBatch(makeBatch(scenes), 2, &reg2);
    ASSERT_EQ(warm.size(), 2u);
    EXPECT_EQ(rc.hits(), 2u);
    for (std::size_t j = 0; j < 2; ++j) {
        EXPECT_TRUE(warm[j].ok);
        EXPECT_TRUE(warm[j].cacheHit) << warm[j].label;
        ASSERT_EQ(warm[j].frames.size(), cold[j].frames.size());
        for (std::size_t f = 0; f < cold[j].frames.size(); ++f)
            expectSameStats(cold[j].frames[f], warm[j].frames[f],
                            warm[j].label + " frame " +
                                std::to_string(f));
    }
    // The stats-JSON artifact is a dump of the registry: identical
    // counters (wall clocks aside) mean byte-identical artifacts.
    expectSameRegistry(reg1, reg2);

    // Read-only mode serves hits but never writes.
    rc.configure(dir, CacheMode::Read, 0, false);
    const std::uint64_t stores_before = rc.stores();
    StatRegistry reg3("run3");
    const std::vector<BatchResult> ro =
        runBatch(makeBatch(scenes), 1, &reg3);
    EXPECT_TRUE(ro[0].cacheHit);
    EXPECT_TRUE(ro[1].cacheHit);
    EXPECT_EQ(rc.stores(), stores_before);
    expectSameRegistry(reg1, reg3);

    rc.resetForTests();
    setLogQuiet(false);
}

TEST(ResultCacheTest, TruncatedEntryRecomputesThroughTheEngine)
{
    setLogQuiet(true);
    const std::string dir = tempDir("batch_truncate");
    ResultCache &rc = ResultCache::global();
    rc.resetForTests();
    rc.configure(dir, CacheMode::ReadWrite, 0, false);

    std::vector<std::vector<Scene>> scenes;
    scenes.emplace_back();
    scenes.back().push_back(generateScene(
        benchmarkByAlias("Mze"), small(makeBaselineConfig()), 0));

    std::vector<BatchJob> jobs;
    BatchJob bj;
    bj.label = "Mze";
    bj.cfg = small(makeBaselineConfig());
    const std::vector<Scene> *s = &scenes[0];
    bj.scene = [s](std::uint32_t f) -> const Scene & { return (*s)[f]; };
    bj.frames = 1;
    jobs.push_back(std::move(bj));

    const std::vector<BatchResult> cold = runBatch(jobs, 1, nullptr);
    ASSERT_TRUE(cold[0].ok);

    // A truncated entry must be detected and recomputed — the result
    // stays correct, the process stays alive.
    ScopedFault fault(FaultSite::CacheTruncate);
    const std::vector<BatchResult> warm = runBatch(jobs, 1, nullptr);
    ASSERT_TRUE(warm[0].ok);
    EXPECT_FALSE(warm[0].cacheHit);
    EXPECT_EQ(FaultInject::global().fired(FaultSite::CacheTruncate), 1u);
    expectSameStats(cold[0].frames[0], warm[0].frames[0],
                    "recomputed after truncation");

    rc.resetForTests();
    setLogQuiet(false);
}

} // namespace
} // namespace dtexl

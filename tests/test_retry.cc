/**
 * @file
 * Retry-policy tests (see DESIGN.md "Service daemon"): the backoff
 * schedule must be a pure deterministic function of (policy, attempt)
 * so daemon retry timing is reproducible across restarts; jitter must
 * stay inside its advertised band; and retryTransient() must retry
 * exactly the transient error kinds — an Io hiccup deserves another
 * try, a config error retries identically forever and must propagate
 * on the first throw.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/retry.hh"
#include "common/sim_error.hh"

namespace dtexl {
namespace {

RetryPolicy
noJitter()
{
    RetryPolicy p;
    p.baseDelayMs = 100;
    p.maxDelayMs = 1000;
    p.jitterPct = 0;
    return p;
}

TEST(Retry, BackoffDoublesAndSaturates)
{
    const RetryPolicy p = noJitter();
    EXPECT_EQ(backoffDelayMs(p, 0), 100u);
    EXPECT_EQ(backoffDelayMs(p, 1), 200u);
    EXPECT_EQ(backoffDelayMs(p, 2), 400u);
    EXPECT_EQ(backoffDelayMs(p, 3), 800u);
    EXPECT_EQ(backoffDelayMs(p, 4), 1000u) << "must cap at maxDelayMs";
    EXPECT_EQ(backoffDelayMs(p, 31), 1000u);
    // Shift widths past 63 are UB if computed naively; the saturation
    // path must make huge attempt indices safe.
    EXPECT_EQ(backoffDelayMs(p, 1000), 1000u);
}

TEST(Retry, ZeroBaseMeansZeroDelay)
{
    RetryPolicy p = noJitter();
    p.baseDelayMs = 0;
    EXPECT_EQ(backoffDelayMs(p, 0), 0u);
    EXPECT_EQ(backoffDelayMs(p, 7), 0u);
}

TEST(Retry, JitterIsDeterministicPerSeed)
{
    RetryPolicy p;
    p.baseDelayMs = 100;
    p.maxDelayMs = 10000;
    p.jitterPct = 25;
    p.seed = 0x1234;

    // Same (policy, index) twice: identical — the schedule is pure.
    for (std::uint32_t i = 0; i < 8; ++i)
        EXPECT_EQ(backoffDelayMs(p, i), backoffDelayMs(p, i))
            << "retry " << i;

    // A different seed should decorrelate at least one step of the
    // schedule (that is the point of the jitter).
    RetryPolicy q = p;
    q.seed = 0x9999;
    bool differs = false;
    for (std::uint32_t i = 0; i < 8; ++i)
        differs = differs || backoffDelayMs(p, i) != backoffDelayMs(q, i);
    EXPECT_TRUE(differs);
}

TEST(Retry, JitterStaysInsideBand)
{
    RetryPolicy p;
    p.baseDelayMs = 100;
    p.maxDelayMs = 100000;
    p.jitterPct = 25;
    for (std::uint64_t seed = 0; seed < 64; ++seed) {
        p.seed = seed;
        for (std::uint32_t i = 0; i < 6; ++i) {
            const std::uint64_t nominal =
                std::uint64_t{p.baseDelayMs} << i;
            const std::uint32_t d = backoffDelayMs(p, i);
            EXPECT_GE(d, nominal - nominal / 4) << "seed " << seed;
            EXPECT_LE(d, nominal + nominal / 4) << "seed " << seed;
        }
    }
}

TEST(Retry, TransientKindsAreIoAndWatchdog)
{
    EXPECT_TRUE(isTransientErrorKind(ErrorKind::Io));
    EXPECT_TRUE(isTransientErrorKind(ErrorKind::Watchdog));
    EXPECT_FALSE(isTransientErrorKind(ErrorKind::UserInput));
    EXPECT_FALSE(isTransientErrorKind(ErrorKind::Config));
    EXPECT_FALSE(isTransientErrorKind(ErrorKind::Internal));
    EXPECT_FALSE(isTransientErrorKind(ErrorKind::Cancelled));
}

RetryPolicy
fastPolicy(std::uint32_t attempts)
{
    RetryPolicy p;
    p.attempts = attempts;
    p.baseDelayMs = 1;
    p.maxDelayMs = 2;
    p.jitterPct = 0;
    return p;
}

TEST(Retry, TransientFailureRetriesUntilSuccess)
{
    int calls = 0;
    const bool ok = retryTransient(fastPolicy(3), "flaky", [&] {
        if (++calls < 3)
            throwIoError("transient blip %d", calls);
    });
    EXPECT_TRUE(ok);
    EXPECT_EQ(calls, 3) << "two failures then success within budget";
}

TEST(Retry, ExhaustedTransientReturnsFalseWithoutThrowing)
{
    int calls = 0;
    const bool ok = retryTransient(fastPolicy(3), "doomed", [&] {
        ++calls;
        throwIoError("always down");
    });
    EXPECT_FALSE(ok);
    EXPECT_EQ(calls, 3) << "policy.attempts bounds the total tries";
}

TEST(Retry, NonTransientPropagatesImmediately)
{
    int calls = 0;
    EXPECT_THROW(retryTransient(fastPolicy(5), "misconfigured",
                                [&] {
                                    ++calls;
                                    throwUserError("bad flag");
                                }),
                 SimError);
    EXPECT_EQ(calls, 1)
        << "a deterministic error must not burn retry attempts";
}

TEST(Retry, SuccessFirstTryNeverRetries)
{
    int calls = 0;
    EXPECT_TRUE(retryTransient(fastPolicy(5), "healthy",
                               [&] { ++calls; }));
    EXPECT_EQ(calls, 1);
}

} // namespace
} // namespace dtexl

/**
 * @file
 * Tests for the subtile-to-SC assignment schemes (Figure 8): validity
 * (always a permutation), the shared-edge property of the flip
 * schemes (adjacent subtiles of adjacent tiles land on the same SC),
 * and the fairness that distinguishes Flip2/Flip3 from Flip1.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "sched/subtile_assigner.hh"
#include "sfc/tile_order.hh"

namespace dtexl {
namespace {

constexpr std::uint32_t kSide = 16;

/**
 * Walk a traversal and verify the shared-edge property between every
 * adjacent pair of consecutive tiles: each subtile touching the shared
 * edge in the new tile is assigned to the same SC as its mirror
 * neighbour in the previous tile.
 *
 * @return Per-SC count of shared-edge adjacencies enjoyed.
 */
std::array<int, 4>
sharedEdgeCounts(QuadGrouping grouping, SubtileAssignment scheme,
                 TileOrder order, std::uint32_t tx, std::uint32_t ty,
                 bool expect_property)
{
    SubtileLayout layout(grouping, kSide);
    SubtileAssigner assigner(scheme, layout);
    const auto trav = makeTileOrder(order, tx, ty);

    std::array<int, 4> counts{};
    std::array<CoreId, 4> prev_perm{};
    Coord2 prev_coord{};
    bool have_prev = false;

    for (TileId tile : trav) {
        const Coord2 coord = tileCoord(tile, tx);
        const auto perm = assigner.next(coord);
        // Validity: a permutation of {0..3}.
        std::set<CoreId> scs(perm.begin(), perm.end());
        EXPECT_EQ(scs.size(), 4u);

        if (have_prev &&
            isEdgeAdjacent(prev_coord, coord)) {
            const Coord2 delta{coord.x - prev_coord.x,
                               coord.y - prev_coord.y};
            const auto &mirror = delta.x != 0 ? layout.mirrorX()
                                              : layout.mirrorY();
            // Subtiles whose mirror image differs sit on the shared
            // edge axis; check the SC follows the content.
            for (std::uint8_t s = 0; s < 4; ++s) {
                const std::uint8_t ms = mirror[s];
                // Is subtile s of the new tile adjacent to subtile ms
                // of the previous tile across the shared edge? With a
                // bijective mirror, yes by construction when s is on
                // the edge-facing side.
                const auto &c = layout.centroid(s);
                const double mid = (kSide - 1) / 2.0;
                const bool facing =
                    (delta.x > 0 && c.x < mid) ||
                    (delta.x < 0 && c.x > mid) ||
                    (delta.y > 0 && c.y < mid) ||
                    (delta.y < 0 && c.y > mid);
                if (!facing)
                    continue;
                if (expect_property) {
                    EXPECT_EQ(perm[s], prev_perm[ms])
                        << "tile (" << coord.x << "," << coord.y
                        << ")";
                }
                if (perm[s] == prev_perm[ms])
                    ++counts[perm[s]];
            }
        }
        prev_perm = perm;
        prev_coord = coord;
        have_prev = true;
    }
    return counts;
}

TEST(Assigner, ConstantIsIdentityEverywhere)
{
    SubtileLayout layout(QuadGrouping::CGSquare, kSide);
    SubtileAssigner a(SubtileAssignment::Constant, layout);
    const auto trav = makeTileOrder(TileOrder::RectHilbert, 8, 8);
    for (TileId t : trav) {
        const auto perm = a.next(tileCoord(t, 8));
        EXPECT_EQ(perm, (std::array<CoreId, 4>{0, 1, 2, 3}));
    }
}

TEST(Assigner, Flip1SharedEdgePropertyHilbert)
{
    sharedEdgeCounts(QuadGrouping::CGSquare, SubtileAssignment::Flip1,
                     TileOrder::RectHilbert, 8, 8, true);
}

TEST(Assigner, Flip1SharedEdgePropertySOrderYRect)
{
    sharedEdgeCounts(QuadGrouping::CGYRect, SubtileAssignment::Flip1,
                     TileOrder::SOrder, 12, 6, true);
}

TEST(Assigner, ConstantHasNoSharedEdges)
{
    // With the constant assignment on CG-square, mirrored neighbours
    // are never the same SC (Figure 8a/8c).
    const auto counts = sharedEdgeCounts(
        QuadGrouping::CGSquare, SubtileAssignment::Constant,
        TileOrder::RectHilbert, 8, 8, false);
    EXPECT_EQ(counts[0] + counts[1] + counts[2] + counts[3], 0);
}

TEST(Assigner, Flip1FavorsSomeSC)
{
    // Figure 8(d): Flip1 always gives the shared edge to the same SCs.
    const auto counts = sharedEdgeCounts(
        QuadGrouping::CGSquare, SubtileAssignment::Flip1,
        TileOrder::RectHilbert, 8, 8, false);
    int mn = counts[0], mx = counts[0];
    for (int c : counts) {
        mn = std::min(mn, c);
        mx = std::max(mx, c);
    }
    EXPECT_GT(mx, 0);
    // Strong skew: the most-favored SC gets a large multiple of the
    // least-favored.
    EXPECT_GT(mx, 2 * std::max(mn, 1));
}

TEST(Assigner, Flip2IsFairerThanFlip1)
{
    const auto f1 = sharedEdgeCounts(
        QuadGrouping::CGSquare, SubtileAssignment::Flip1,
        TileOrder::RectHilbert, 8, 8, false);
    const auto f2 = sharedEdgeCounts(
        QuadGrouping::CGSquare, SubtileAssignment::Flip2,
        TileOrder::RectHilbert, 8, 8, false);
    auto spread = [](const std::array<int, 4> &c) {
        int mn = c[0], mx = c[0];
        for (int x : c) {
            mn = std::min(mn, x);
            mx = std::max(mx, x);
        }
        return mx - mn;
    };
    EXPECT_LT(spread(f2), spread(f1));
    // Every SC gets some shared edges under Flip2.
    for (int c : f2)
        EXPECT_GT(c, 0);
}

TEST(Assigner, Flip3StaysValidAndFair)
{
    const auto f3 = sharedEdgeCounts(
        QuadGrouping::CGSquare, SubtileAssignment::Flip3,
        TileOrder::RectHilbert, 16, 16, false);
    for (int c : f3)
        EXPECT_GT(c, 0);
}

TEST(Assigner, ResetRestartsTraversal)
{
    SubtileLayout layout(QuadGrouping::CGSquare, kSide);
    SubtileAssigner a(SubtileAssignment::Flip2, layout);
    std::vector<std::array<CoreId, 4>> first;
    const auto trav = makeTileOrder(TileOrder::ZOrder, 4, 4);
    for (TileId t : trav)
        first.push_back(a.next(tileCoord(t, 4)));
    a.reset();
    for (std::size_t i = 0; i < trav.size(); ++i)
        EXPECT_EQ(a.next(tileCoord(trav[i], 4)), first[i]) << i;
}

TEST(Assigner, NonAdjacentJumpKeepsAssignment)
{
    SubtileLayout layout(QuadGrouping::CGSquare, kSide);
    SubtileAssigner a(SubtileAssignment::Flip1, layout);
    const auto p0 = a.next({0, 0});
    const auto p1 = a.next({5, 5});  // jump: no shared edge
    EXPECT_EQ(p0, p1);
}

TEST(Assigner, FlipSchemesDegradeGracefullyOnFG)
{
    // FG-xshift patterns have non-bijective vertical mirrors; the
    // assigner must still produce valid permutations.
    SubtileLayout layout(QuadGrouping::FGXShift1, kSide);
    SubtileAssigner a(SubtileAssignment::Flip2, layout);
    const auto trav = makeTileOrder(TileOrder::SOrder, 6, 6);
    for (TileId t : trav) {
        const auto perm = a.next(tileCoord(t, 6));
        std::set<CoreId> s(perm.begin(), perm.end());
        EXPECT_EQ(s.size(), 4u);
    }
}

} // namespace
} // namespace dtexl
